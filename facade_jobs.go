package fbcache

import (
	"io"

	"fbcache/internal/bundle"
	"fbcache/internal/jobs"
	"fbcache/internal/policy"
	"fbcache/internal/policy/offline"
	"fbcache/internal/store"
)

// Job service layer (§1's "job service policy").
type (
	// JobManager queues jobs, schedules them, and stages bundles through an
	// SRM with pinning.
	JobManager = jobs.Manager
	// JobConfig tunes workers and scheduling.
	JobConfig = jobs.Config
	// JobSpec is one submitted unit of work.
	JobSpec = jobs.Job
	// JobResult reports a completed job.
	JobResult = jobs.Result
)

// NewJobManager starts a job service over an SRM.
func NewJobManager(s *SRM, cfg JobConfig) *JobManager { return jobs.NewManager(s, cfg) }

// NewBelady returns the clairvoyant bundle-adapted Belady/MIN baseline for
// the given future request sequence — a hindsight reference no online
// policy should beat meaningfully.
func NewBelady(capacity Size, sizeOf SizeFunc, future []Bundle) Policy {
	conv := make([]bundle.Bundle, len(future))
	copy(conv, future)
	return offline.New(capacity, sizeOf, conv)
}

// File-backed staging (real bytes on the staging disk).
type (
	// Store materializes staged files on local disk with CRC verification.
	Store = store.Store
	// StoreSource produces file content for cache misses.
	StoreSource = store.Source
)

// NewStore creates a directory-backed store fetching misses from source.
func NewStore(dir string, source StoreSource) (*Store, error) { return store.New(dir, source) }

// FetchFromFunc adapts a reader-producing function to a StoreSource.
func FetchFromFunc(fn func(FileID) (io.ReadCloser, error)) StoreSource {
	return store.FetchFunc(fn)
}

// NewBypassPolicy wraps a policy with the §1 "file caching policy" filter:
// files larger than frac×capacity are served pass-through and never cached.
func NewBypassPolicy(inner Policy, sizeOf SizeFunc, frac float64) Policy {
	return policy.NewBypass(inner, sizeOf, frac)
}
