package fbcache

// One benchmark per paper artifact (Tables 1-2, Figures 5-9, the Theorem 4.1
// bound study) plus ablation benches for the design choices called out in
// DESIGN.md §4. Each bench iteration regenerates the artifact end to end at
// a reduced scale; `go test -bench=. -benchmem` therefore both times the
// harness and re-verifies that every experiment still runs. cmd/fbbench
// produces the full-scale tables.

import (
	"testing"

	"fbcache/internal/experiment"
	"fbcache/internal/simulate"
	"fbcache/internal/workload"
)

// benchConfig is deliberately small: benches must iterate, not showcase.
func benchConfig() experiment.Config {
	c := experiment.DefaultConfig()
	c.Jobs = 400
	c.NumFiles = 100
	c.NumRequests = 60
	return c
}

func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tab := experiment.Table1(); len(tab.Rows) != 7 {
			b.Fatal("bad table1")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tab := experiment.Table2(); len(tab.Rows) != 5 {
			b.Fatal("bad table2")
		}
	}
}

func BenchmarkFigure5HistoryLength(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Figure5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6SmallFiles(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Figure6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7LargeFiles(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Figure7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8CacheSize(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Figure8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9QueueLength(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Figure9(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBoundStudy(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.BoundStudy(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselinesTable(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Baselines(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHybridStudy(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.HybridStudy(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRequestSizeStudy(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.RequestSizeStudy(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSaturationStudy(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.SaturationStudy(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShardingStudy(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.ShardingStudy(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverlapStudy(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.OverlapStudy(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablation benches (DESIGN.md §4) ----

func ablationWorkload(b *testing.B) *Workload {
	b.Helper()
	spec := DefaultWorkloadSpec()
	spec.Jobs = 600
	spec.NumFiles = 120
	spec.NumRequests = 80
	spec.CacheSize = 2 * GB
	spec.MaxBundleFrac = 0.25
	spec.Popularity = Zipf
	w, err := Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func benchPolicyRun(b *testing.B, mk func(w *Workload) Policy) {
	w := ablationWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col, err := simulate.Run(w, mk(w), simulate.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if col.ByteMissRatio() <= 0 {
			b.Fatal("degenerate run")
		}
	}
}

// Ablation: the paper's Note (resort) greedy vs the literal Algorithm 1.
func BenchmarkAblationResortGreedy(b *testing.B) {
	benchPolicyRun(b, func(w *Workload) Policy {
		return NewCache(w.Spec.CacheSize, w.Catalog.SizeFunc())
	})
}

func BenchmarkAblationSeededK1(b *testing.B) {
	benchPolicyRun(b, func(w *Workload) Policy {
		return NewCache(w.Spec.CacheSize, w.Catalog.SizeFunc(), WithSeededSelection(1))
	})
}

// Ablation: cache-resident truncation vs windowed vs full history.
func BenchmarkAblationHistoryCacheResident(b *testing.B) {
	benchPolicyRun(b, func(w *Workload) Policy {
		return NewCache(w.Spec.CacheSize, w.Catalog.SizeFunc(), WithCacheResidentHistory())
	})
}

func BenchmarkAblationHistoryWindow64(b *testing.B) {
	benchPolicyRun(b, func(w *Workload) Policy {
		return NewCache(w.Spec.CacheSize, w.Catalog.SizeFunc(), WithHistoryWindow(64))
	})
}

func BenchmarkAblationHistoryFull(b *testing.B) {
	benchPolicyRun(b, func(w *Workload) Policy {
		return NewCache(w.Spec.CacheSize, w.Catalog.SizeFunc(), WithFullHistory())
	})
}

// Ablation: lazy vs literal eviction, and prefetch.
func BenchmarkAblationLiteralEvict(b *testing.B) {
	benchPolicyRun(b, func(w *Workload) Policy {
		return NewCache(w.Spec.CacheSize, w.Catalog.SizeFunc(), WithLiteralEviction())
	})
}

func BenchmarkAblationPrefetch(b *testing.B) {
	benchPolicyRun(b, func(w *Workload) Policy {
		return NewCache(w.Spec.CacheSize, w.Catalog.SizeFunc(), WithPrefetch())
	})
}

// Baseline policy throughput under the same workload, for context.
func BenchmarkAblationLandlord(b *testing.B) {
	benchPolicyRun(b, func(w *Workload) Policy {
		return NewLandlord(w.Spec.CacheSize, w.Catalog.SizeFunc())
	})
}

func BenchmarkAblationLRU(b *testing.B) {
	benchPolicyRun(b, func(w *Workload) Policy {
		return NewLRU(w.Spec.CacheSize, w.Catalog.SizeFunc())
	})
}

// Timed discrete-event simulation end to end.
func BenchmarkEventSimulation(b *testing.B) {
	w := ablationWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := RunEvents(w, NewCache(w.Spec.CacheSize, w.Catalog.SizeFunc()), EventOptions{
			ArrivalRate: 5,
			MSS:         DefaultMSSConfig(),
			Seed:        1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// Workload generation throughput.
func BenchmarkWorkloadGeneration(b *testing.B) {
	spec := DefaultWorkloadSpec()
	spec.Jobs = 2000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := workload.Generate(spec); err != nil {
			b.Fatal(err)
		}
	}
}
