package fbcache

import (
	"fbcache/internal/bitmapindex"
	"fbcache/internal/grid"
	"fbcache/internal/history"
	"fbcache/internal/queue"
	"fbcache/internal/replicate"
	"fbcache/internal/simulate"
)

// Data-grid fabric (§2): sites, links, replica catalogs.
type (
	// Topology is the multi-site grid with one local site.
	Topology = grid.Topology
	// SiteID indexes a site within a Topology.
	SiteID = grid.SiteID
	// Link is a WAN path between sites.
	Link = grid.Link
	// Replicas maps files to the sites holding copies.
	Replicas = grid.Replicas
	// GridConfig wires a topology and replicas into RunEvents.
	GridConfig = simulate.GridConfig
)

// NewTopology creates a grid with the given local site.
func NewTopology(localName string, localMSS MSSConfig) (*Topology, error) {
	return grid.NewTopology(localName, localMSS)
}

// NewReplicas returns an empty replica catalog.
func NewReplicas() *Replicas { return grid.NewReplicas() }

// Strategic replication (§1).
type (
	// ReplicationAction is one planned copy to the local site.
	ReplicationAction = replicate.Action
	// ReplicationResult is a computed plan plus the files that had no
	// reachable replica and were skipped.
	ReplicationResult = replicate.Result
	// History is the L(R) request-history structure.
	History = history.History
)

// PlanReplication plans which files to copy locally, greedy by expected
// staging-time savings per byte, within `budget` bytes. Hot files without a
// reachable replica are skipped and reported in the result, not fatal.
func PlanReplication(hist *History, topo *Topology, reps *Replicas, sizeOf SizeFunc, budget Size) (ReplicationResult, error) {
	return replicate.Plan(hist, topo, reps, sizeOf, budget)
}

// ApplyReplication commits a plan to the replica catalog.
func ApplyReplication(plan []ReplicationAction, topo *Topology, reps *Replicas) {
	replicate.Apply(plan, topo, reps)
}

// Hybrid execution model (§6 future work).
type (
	// HybridOptions configures RunHybrid.
	HybridOptions = simulate.HybridOptions
	// HybridStats reports a hybrid run per service model.
	HybridStats = simulate.HybridStats
	// ServiceModel selects bundle-at-a-time vs one-file-at-a-time service.
	ServiceModel = simulate.ServiceModel
)

// Service models.
const (
	BundleAtATime  = simulate.BundleAtATime
	OneFileAtATime = simulate.OneFileAtATime
)

// RunHybrid drives a workload under a mix of bundle-at-a-time and
// one-file-at-a-time jobs.
func RunHybrid(w *Workload, p Policy, opts HybridOptions) (*HybridStats, error) {
	return simulate.RunHybrid(w, p, opts)
}

// AgeLimitScheduler wraps a scheduler with the §5.2 request-lockout guard:
// any queued job passed over maxAge times is served next regardless of
// score.
func AgeLimitScheduler(sched Scheduler, maxAge int) Scheduler {
	return queue.AgeLimit(sched, maxAge)
}

// Bit-sliced indices (§1.1 third motivating application).
type (
	// BitmapIndex is a bit-sliced index whose bin files live in a Catalog.
	BitmapIndex = bitmapindex.Index
	// Bitmap is a row bitset.
	Bitmap = bitmapindex.Bitmap
	// QueryRange is one attribute-range predicate.
	QueryRange = bitmapindex.Range
)

// NewBitmapIndex builds an index over `rows` rows registering bin files in
// cat.
func NewBitmapIndex(rows int, cat *Catalog) *BitmapIndex {
	return bitmapindex.New(rows, cat)
}
