// Command srmd runs a Storage Resource Manager daemon: a disk cache managed
// by the OptFileBundle policy, exposed over the newline-delimited JSON TCP
// protocol of internal/srm. It also doubles as a protocol client so bundles
// can be staged from shell scripts.
//
// Server:
//
//	srmd -listen :7070 -cache-gb 10
//
// Client:
//
//	srmd -connect localhost:7070 -addfile evt-energy:2147483648
//	srmd -connect localhost:7070 -stage evt-energy,evt-momentum
//	srmd -connect localhost:7070 -release t1
//	srmd -connect localhost:7070 -stats
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"fbcache/internal/bundle"
	"fbcache/internal/core"
	"fbcache/internal/history"
	"fbcache/internal/policy"
	"fbcache/internal/srm"
)

func main() {
	var (
		listen   = flag.String("listen", "", "serve on this address (e.g. :7070)")
		httpAddr = flag.String("http", "", "also serve monitoring stats over HTTP on this address")
		cacheGB  = flag.Float64("cache-gb", 10, "cache size in GB (server)")
		connect  = flag.String("connect", "", "act as a client of this server")
		addfile  = flag.String("addfile", "", "client: register name:sizeBytes")
		stage    = flag.String("stage", "", "client: stage comma-separated file names")
		release  = flag.String("release", "", "client: release a stage token")
		stats    = flag.Bool("stats", false, "client: print server statistics")
	)
	flag.Parse()

	switch {
	case *listen != "":
		runServer(*listen, *httpAddr, *cacheGB)
	case *connect != "":
		runClient(*connect, *addfile, *stage, *release, *stats)
	default:
		fmt.Fprintln(os.Stderr, "srmd: need -listen (server) or -connect (client); see -h")
		os.Exit(2)
	}
}

func runServer(addr, httpAddr string, cacheGB float64) {
	cat := bundle.NewCatalog()
	pol := policy.WrapOptFileBundle(core.New(
		bundle.Size(cacheGB*float64(bundle.GB)), cat.SizeFunc(),
		core.Options{History: history.Config{Truncation: history.CacheResident}},
	))
	service := srm.New(pol, cat)
	server, err := srm.Serve(service, addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "srmd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("srmd: serving OptFileBundle cache (%.1f GB) on %s\n", cacheGB, server.Addr())
	if httpAddr != "" {
		go func() {
			fmt.Printf("srmd: monitoring stats on http://%s/stats\n", httpAddr)
			if err := http.ListenAndServe(httpAddr, srm.StatsHandler(service)); err != nil {
				fmt.Fprintf(os.Stderr, "srmd: http: %v\n", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("srmd: shutting down")
	service.Close()
	server.Close()
}

func runClient(addr, addfile, stage, release string, stats bool) {
	c, err := srm.Dial(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "srmd: %v\n", err)
		os.Exit(1)
	}
	defer c.Close()

	did := false
	if addfile != "" {
		did = true
		name, sizeStr, ok := strings.Cut(addfile, ":")
		if !ok {
			fmt.Fprintln(os.Stderr, "srmd: -addfile wants name:sizeBytes")
			os.Exit(2)
		}
		size, err := strconv.ParseInt(sizeStr, 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "srmd: bad size %q: %v\n", sizeStr, err)
			os.Exit(2)
		}
		if err := c.AddFile(name, bundle.Size(size)); err != nil {
			fmt.Fprintf(os.Stderr, "srmd: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("added %s (%s)\n", name, bundle.Size(size))
	}
	if stage != "" {
		did = true
		files := strings.Split(stage, ",")
		token, hit, loaded, err := c.Stage(files...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "srmd: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("staged token=%s hit=%v loaded=%v\n", token, hit, loaded)
		fmt.Println("note: the lease is dropped when this client exits; long-running jobs should keep the connection open")
	}
	if release != "" {
		did = true
		if err := c.Release(release); err != nil {
			fmt.Fprintf(os.Stderr, "srmd: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("released %s\n", release)
	}
	if stats {
		did = true
		st, err := c.Stats()
		if err != nil {
			fmt.Fprintf(os.Stderr, "srmd: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("policy          %s\n", st.Policy)
		fmt.Printf("jobs            %d\n", st.Jobs)
		fmt.Printf("hit ratio       %.4f\n", st.HitRatio)
		fmt.Printf("byte miss ratio %.4f\n", st.ByteMissRatio)
		fmt.Printf("bytes loaded    %v\n", st.BytesLoaded)
		fmt.Printf("active jobs     %d\n", st.ActiveJobs)
		fmt.Printf("pinned          %v\n", st.PinnedBytes)
		fmt.Printf("cache           %v / %v\n", st.CacheUsed, st.CacheCapacity)
	}
	if !did {
		fmt.Fprintln(os.Stderr, "srmd: client mode needs -addfile, -stage, -release or -stats")
		os.Exit(2)
	}
}
