// Command srmd runs a Storage Resource Manager daemon: a disk cache managed
// by the OptFileBundle policy, exposed over the newline-delimited JSON TCP
// protocol of internal/srm. It also doubles as a protocol client so bundles
// can be staged from shell scripts.
//
// Server:
//
//	srmd -listen :7070 -cache-gb 10
//	srmd -listen :7070 -debug-addr :7071   # adds /metrics, /debug/vars, /debug/pprof, /debug/flight
//	srmd -listen :7070 -flight-out flight.jsonl -slow 50ms
//
// The server always runs a span flight recorder: every request is traced,
// slow (-slow) or failed requests are kept at full fidelity and, with
// -flight-out, dumped as JSONL for offline analysis (fbtrace spans).
//
// Client:
//
//	srmd -connect localhost:7070 -addfile evt-energy:2147483648
//	srmd -connect localhost:7070 -stage evt-energy,evt-momentum
//	srmd -connect localhost:7070 -release t1
//	srmd -connect localhost:7070 -stats
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"fbcache/internal/bundle"
	"fbcache/internal/core"
	"fbcache/internal/history"
	"fbcache/internal/obs"
	"fbcache/internal/obs/span"
	"fbcache/internal/policy"
	"fbcache/internal/srm"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run parses args and dispatches to server or client mode. It returns the
// process exit code. The server path blocks until SIGINT/SIGTERM.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("srmd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen    = fs.String("listen", "", "serve on this address (e.g. :7070)")
		httpAddr  = fs.String("http", "", "also serve monitoring stats over HTTP on this address")
		debugAddr = fs.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
		cacheGB   = fs.Float64("cache-gb", 10, "cache size in GB (server)")
		drain     = fs.Duration("drain", 5*time.Second, "graceful-shutdown drain deadline for in-flight connections (server)")
		flightOut = fs.String("flight-out", "", "dump anomalous request spans to this JSONL file (server)")
		slow      = fs.Duration("slow", 100*time.Millisecond, "requests at least this slow are kept at full fidelity (server)")
		connect   = fs.String("connect", "", "act as a client of this server")
		addfile   = fs.String("addfile", "", "client: register name:sizeBytes")
		stage     = fs.String("stage", "", "client: stage comma-separated file names")
		release   = fs.String("release", "", "client: release a stage token")
		stats     = fs.Bool("stats", false, "client: print server statistics")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *listen != "":
		return runServer(*listen, *httpAddr, *debugAddr, *cacheGB, *drain, *flightOut, *slow, stdout, stderr)
	case *connect != "":
		return runClient(*connect, *addfile, *stage, *release, *stats, stdout, stderr)
	default:
		fmt.Fprintln(stderr, "srmd: need -listen (server) or -connect (client); see -h")
		return 2
	}
}

// testStop, when non-nil, lets tests trigger the shutdown path without
// delivering a real signal to the test process.
var testStop chan struct{}

func runServer(addr, httpAddr, debugAddr string, cacheGB float64, drain time.Duration, flightOut string, slow time.Duration, stdout, stderr io.Writer) int {
	cat := bundle.NewCatalog()
	pol := policy.WrapOptFileBundle(core.New(
		bundle.Size(cacheGB*float64(bundle.GB)), cat.SizeFunc(),
		core.Options{History: history.Config{Truncation: history.CacheResident}},
	))
	// The flight recorder is always on (disabled spans would hide exactly
	// the incidents it exists for); -flight-out adds the on-disk JSONL dump.
	opts := span.Options{SlowThreshold: slow}
	if flightOut != "" {
		sink, closer, err := span.FileDump(flightOut)
		if err != nil {
			fmt.Fprintf(stderr, "srmd: flight dump: %v\n", err)
			return 1
		}
		opts.Dump, opts.DumpCloser = sink, closer
		fmt.Fprintf(stdout, "srmd: dumping anomalous request spans to %s (slow >= %v)\n", flightOut, slow)
	}
	rec := span.New(opts)
	service := srm.New(pol, cat).WithSpans(rec)
	server, err := srm.Serve(service, addr)
	if err != nil {
		fmt.Fprintf(stderr, "srmd: %v\n", err)
		return 1
	}
	// Shutdown flushes the recorder's buffered dump after the drain window.
	server.CloseOnShutdown(rec)
	fmt.Fprintf(stdout, "srmd: serving OptFileBundle cache (%.1f GB) on %s\n", cacheGB, server.Addr())
	if httpAddr != "" {
		go func() {
			fmt.Fprintf(stdout, "srmd: monitoring stats on http://%s/stats\n", httpAddr)
			if err := http.ListenAndServe(httpAddr, srm.StatsHandler(service)); err != nil {
				fmt.Fprintf(stderr, "srmd: http: %v\n", err)
			}
		}()
	}
	if debugAddr != "" {
		// Listen synchronously so ":0" resolves to a concrete port that can
		// be announced (the smoke test scrapes it), then serve in background.
		ln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			fmt.Fprintf(stderr, "srmd: debug listener: %v\n", err)
			if err := server.Shutdown(0); err != nil {
				fmt.Fprintf(stderr, "srmd: shutdown: %v\n", err)
			}
			return 1
		}
		fmt.Fprintf(stdout, "srmd: debug endpoints (metrics, vars, pprof, flight) at http://%s/\n", ln.Addr())
		mux := obs.DebugMux(srm.NewRegistry(service))
		mux.Handle("/debug/flight", span.FlightHandler(rec))
		go func() {
			if err := http.Serve(ln, mux); err != nil {
				// The listener dies with the process; report anything else.
				fmt.Fprintf(stderr, "srmd: debug http: %v\n", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case <-sig:
	case <-testStop:
	}

	// Graceful teardown: stop accepting, give in-flight connections the
	// drain window to finish and release their bundles, then force-close
	// stragglers (dropping a connection releases its leases too).
	fmt.Fprintf(stdout, "srmd: shutting down (draining up to %v)\n", drain)
	if err := server.Shutdown(drain); err != nil {
		fmt.Fprintf(stderr, "srmd: shutdown: %v\n", err)
	}
	service.Close()
	fmt.Fprintln(stdout, "srmd: stopped")
	return 0
}

func runClient(addr, addfile, stage, release string, stats bool, stdout, stderr io.Writer) int {
	c, err := srm.Dial(addr)
	if err != nil {
		fmt.Fprintf(stderr, "srmd: %v\n", err)
		return 1
	}
	defer func() {
		_ = c.Close() // one-shot client; the commands below already reported
	}()

	did := false
	if addfile != "" {
		did = true
		name, sizeStr, ok := strings.Cut(addfile, ":")
		if !ok {
			fmt.Fprintln(stderr, "srmd: -addfile wants name:sizeBytes")
			return 2
		}
		size, err := strconv.ParseInt(sizeStr, 10, 64)
		if err != nil {
			fmt.Fprintf(stderr, "srmd: bad size %q: %v\n", sizeStr, err)
			return 2
		}
		if err := c.AddFile(name, bundle.Size(size)); err != nil {
			fmt.Fprintf(stderr, "srmd: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "added %s (%s)\n", name, bundle.Size(size))
	}
	if stage != "" {
		did = true
		files := strings.Split(stage, ",")
		token, hit, loaded, err := c.Stage(files...)
		if err != nil {
			fmt.Fprintf(stderr, "srmd: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "staged token=%s hit=%v loaded=%v\n", token, hit, loaded)
		fmt.Fprintln(stdout, "note: the lease is dropped when this client exits; long-running jobs should keep the connection open")
	}
	if release != "" {
		did = true
		if err := c.Release(release); err != nil {
			fmt.Fprintf(stderr, "srmd: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "released %s\n", release)
	}
	if stats {
		did = true
		st, err := c.Stats()
		if err != nil {
			fmt.Fprintf(stderr, "srmd: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "policy          %s\n", st.Policy)
		fmt.Fprintf(stdout, "jobs            %d\n", st.Jobs)
		fmt.Fprintf(stdout, "hit ratio       %.4f\n", st.HitRatio)
		fmt.Fprintf(stdout, "byte miss ratio %.4f\n", st.ByteMissRatio)
		fmt.Fprintf(stdout, "bytes loaded    %v\n", st.BytesLoaded)
		fmt.Fprintf(stdout, "active jobs     %d\n", st.ActiveJobs)
		fmt.Fprintf(stdout, "pinned          %v\n", st.PinnedBytes)
		fmt.Fprintf(stdout, "cache           %v / %v\n", st.CacheUsed, st.CacheCapacity)
	}
	if !did {
		fmt.Fprintln(stderr, "srmd: client mode needs -addfile, -stage, -release or -stats")
		return 2
	}
	return 0
}
