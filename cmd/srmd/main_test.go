package main

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"fbcache/internal/bundle"
	"fbcache/internal/core"
	"fbcache/internal/history"
	"fbcache/internal/policy"
	"fbcache/internal/srm"
)

// testServer starts a real SRM server on a loopback port and returns its
// address; shutdown is handled by t.Cleanup.
func testServer(t *testing.T) string {
	t.Helper()
	cat := bundle.NewCatalog()
	pol := policy.WrapOptFileBundle(core.New(
		64*bundle.MB, cat.SizeFunc(),
		core.Options{History: history.Config{Truncation: history.CacheResident}},
	))
	service := srm.New(pol, cat)
	server, err := srm.Serve(service, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		service.Close()
		_ = server.Close()
	})
	return server.Addr()
}

func TestRunModeAndFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no mode", nil, 2},
		{"unknown flag", []string{"-no-such-flag"}, 2},
		{"client without command", []string{"-connect", "127.0.0.1:1"}, 1}, // dial fails first
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != tc.want {
				t.Errorf("run(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.want, stderr.String())
			}
		})
	}
}

func TestRunClientLifecycle(t *testing.T) {
	addr := testServer(t)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-connect", addr, "-addfile", "evt-a:1048576"}, &stdout, &stderr); code != 0 {
		t.Fatalf("addfile: run = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "added evt-a") {
		t.Errorf("addfile output: %q", stdout.String())
	}

	stdout.Reset()
	if code := run([]string{"-connect", addr, "-stage", "evt-a"}, &stdout, &stderr); code != 0 {
		t.Fatalf("stage: run = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "staged token=") {
		t.Errorf("stage output: %q", stdout.String())
	}

	stdout.Reset()
	if code := run([]string{"-connect", addr, "-stats"}, &stdout, &stderr); code != 0 {
		t.Fatalf("stats: run = %d, stderr: %s", code, stderr.String())
	}
	for _, want := range []string{"policy", "jobs", "cache"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("stats output missing %q:\n%s", want, stdout.String())
		}
	}
}

// syncBuffer is a bytes.Buffer safe for the server goroutine and the test
// to share.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRunServerGracefulShutdown smoke-tests the full server mode through
// run(): boot on a loopback port, serve a real client, then shut down
// gracefully via the test hook that stands in for SIGINT/SIGTERM.
func TestRunServerGracefulShutdown(t *testing.T) {
	testStop = make(chan struct{})
	defer func() { testStop = nil }()

	var out, errOut syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-cache-gb", "0.1", "-drain", "2s"}, &out, &errOut)
	}()

	// The server prints its bound address once listening.
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; output: %q %q", out.String(), errOut.String())
		}
		if s := out.String(); strings.Contains(s, ") on ") {
			addr = strings.TrimSpace(s[strings.Index(s, ") on ")+len(") on "):])
			addr = strings.Fields(addr)[0]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	// A real staging round trip against the running server.
	c, err := srm.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddFile("evt-x", 1024); err != nil {
		t.Fatal(err)
	}
	token, _, _, err := c.Stage("evt-x")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Release(token); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Trigger the shutdown path (stands in for SIGINT/SIGTERM) and wait for
	// a clean exit.
	close(testStop)
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("server exit code %d; stderr: %s", code, errOut.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("server did not shut down; output: %q", out.String())
	}
	for _, want := range []string{"shutting down", "srmd: stopped"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("shutdown output missing %q:\n%s", want, out.String())
		}
	}

	// The listener must actually be gone.
	if _, err := srm.Dial(addr); err == nil {
		t.Error("server still accepting connections after shutdown")
	}
}

func TestRunClientBadInputs(t *testing.T) {
	addr := testServer(t)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-connect", addr, "-addfile", "missing-colon"}, &stdout, &stderr); code != 2 {
		t.Errorf("malformed addfile: run = %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"-connect", addr, "-addfile", "f:not-a-number"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad size: run = %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"-connect", addr, "-stage", "never-registered"}, &stdout, &stderr); code != 1 {
		t.Errorf("staging unknown file: run = %d, want 1", code)
	}
	stderr.Reset()
	if code := run([]string{"-connect", addr, "-release", "no-such-token"}, &stdout, &stderr); code != 1 {
		t.Errorf("releasing unknown token: run = %d, want 1", code)
	}
}
