package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"fbcache/internal/bundle"
	"fbcache/internal/core"
	"fbcache/internal/history"
	"fbcache/internal/policy"
	"fbcache/internal/srm"
)

// testServer starts a real SRM server on a loopback port and returns its
// address; shutdown is handled by t.Cleanup.
func testServer(t *testing.T) string {
	t.Helper()
	cat := bundle.NewCatalog()
	pol := policy.WrapOptFileBundle(core.New(
		64*bundle.MB, cat.SizeFunc(),
		core.Options{History: history.Config{Truncation: history.CacheResident}},
	))
	service := srm.New(pol, cat)
	server, err := srm.Serve(service, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		service.Close()
		_ = server.Close()
	})
	return server.Addr()
}

func TestRunModeAndFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no mode", nil, 2},
		{"unknown flag", []string{"-no-such-flag"}, 2},
		{"client without command", []string{"-connect", "127.0.0.1:1"}, 1}, // dial fails first
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != tc.want {
				t.Errorf("run(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.want, stderr.String())
			}
		})
	}
}

func TestRunClientLifecycle(t *testing.T) {
	addr := testServer(t)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-connect", addr, "-addfile", "evt-a:1048576"}, &stdout, &stderr); code != 0 {
		t.Fatalf("addfile: run = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "added evt-a") {
		t.Errorf("addfile output: %q", stdout.String())
	}

	stdout.Reset()
	if code := run([]string{"-connect", addr, "-stage", "evt-a"}, &stdout, &stderr); code != 0 {
		t.Fatalf("stage: run = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "staged token=") {
		t.Errorf("stage output: %q", stdout.String())
	}

	stdout.Reset()
	if code := run([]string{"-connect", addr, "-stats"}, &stdout, &stderr); code != 0 {
		t.Fatalf("stats: run = %d, stderr: %s", code, stderr.String())
	}
	for _, want := range []string{"policy", "jobs", "cache"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("stats output missing %q:\n%s", want, stdout.String())
		}
	}
}

// syncBuffer is a bytes.Buffer safe for the server goroutine and the test
// to share.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRunServerGracefulShutdown smoke-tests the full server mode through
// run(): boot on a loopback port, serve a real client, then shut down
// gracefully via the test hook that stands in for SIGINT/SIGTERM.
func TestRunServerGracefulShutdown(t *testing.T) {
	testStop = make(chan struct{})
	defer func() { testStop = nil }()

	var out, errOut syncBuffer
	done := make(chan int, 1)
	// -slow 1ns keeps every request at full fidelity so /debug/flight and
	// the -flight-out dump are deterministic.
	flight := filepath.Join(t.TempDir(), "flight.jsonl")
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0",
			"-cache-gb", "0.1", "-drain", "2s",
			"-flight-out", flight, "-slow", "1ns",
		}, &out, &errOut)
	}()

	// The server prints its bound addresses once listening.
	var addr, debugURL string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" || debugURL == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its addresses; output: %q %q", out.String(), errOut.String())
		}
		s := out.String()
		if addr == "" && strings.Contains(s, ") on ") {
			addr = strings.TrimSpace(s[strings.Index(s, ") on ")+len(") on "):])
			addr = strings.Fields(addr)[0]
		}
		if debugURL == "" && strings.Contains(s, ") at ") {
			debugURL = strings.TrimSpace(s[strings.Index(s, ") at ")+len(") at "):])
			debugURL = strings.Fields(debugURL)[0]
		}
		if addr == "" || debugURL == "" {
			time.Sleep(5 * time.Millisecond)
		}
	}

	// A real staging round trip against the running server.
	c, err := srm.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddFile("evt-x", 1024); err != nil {
		t.Fatal(err)
	}
	token, _, _, err := c.Stage("evt-x")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Release(token); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// The acceptance check: a /metrics scrape of the running server is valid
	// Prometheus text and carries hit-ratio, byte-traffic and resilience
	// counters reflecting the round trip above.
	scrape := scrapeMetrics(t, debugURL)
	for _, want := range []string{
		"# TYPE fbcache_hit_ratio gauge",
		"# TYPE fbcache_byte_miss_ratio gauge",
		"# TYPE fbcache_bytes_loaded_total counter",
		"fbcache_bytes_loaded_total 1024",
		"fbcache_jobs_total 1",
		"fbcache_resilience_retries_total 0",
		"fbcache_resilience_timeouts_total 0",
		`fbcache_info{policy="optfilebundle"} 1`,
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("/metrics missing %q:\n%s", want, scrape)
		}
	}
	// The span telemetry rides on the same scrape.
	for _, want := range []string{
		`fbcache_op_latency_seconds_count{op="stage"} 1`,
		`fbcache_op_errors_total{op="stage"} 0`,
		"fbcache_flight_requests_total 3",
		"fbcache_spans_inflight 0",
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("/metrics missing span telemetry %q:\n%s", want, scrape)
		}
	}

	// /debug/flight serves the kept requests as reconstructed span trees;
	// the stage request carries its admit leg and bundle attributes.
	flightBody := httpGet(t, debugURL+"debug/flight")
	for _, want := range []string{
		`"requests"`, `"op": "stage"`, `"op": "stage.admit"`,
		`"files": 1`, `"bytes": 1024`, `"anomalies": 3`,
	} {
		if !strings.Contains(flightBody, want) {
			t.Errorf("/debug/flight missing %q:\n%s", want, flightBody)
		}
	}
	// CI uploads the flight snapshot as an artifact when this is set.
	if dest := os.Getenv("SRMD_FLIGHT_OUT"); dest != "" {
		if err := os.WriteFile(dest, []byte(flightBody), 0o644); err != nil {
			t.Fatalf("writing flight artifact: %v", err)
		}
	}

	// /debug/vars and pprof ride on the same mux.
	for _, path := range []string{"/debug/vars", "/debug/pprof/cmdline"} {
		resp, err := http.Get(debugURL + strings.TrimPrefix(path, "/"))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatalf("%s: read: %v", path, err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
	}
	// CI uploads the scrape as an artifact when this is set.
	if dest := os.Getenv("SRMD_METRICS_OUT"); dest != "" {
		if err := os.WriteFile(dest, []byte(scrape), 0o644); err != nil {
			t.Fatalf("writing metrics artifact: %v", err)
		}
	}

	// Trigger the shutdown path (stands in for SIGINT/SIGTERM) and wait for
	// a clean exit.
	close(testStop)
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("server exit code %d; stderr: %s", code, errOut.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("server did not shut down; output: %q", out.String())
	}
	for _, want := range []string{"shutting down", "srmd: stopped"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("shutdown output missing %q:\n%s", want, out.String())
		}
	}

	// The listener must actually be gone.
	if _, err := srm.Dial(addr); err == nil {
		t.Error("server still accepting connections after shutdown")
	}

	// Shutdown flushed the flight recorder: the anomaly dump is on disk and
	// every line is a span record (fbtrace spans consumes this file).
	raw, err := os.ReadFile(flight)
	if err != nil {
		t.Fatalf("flight dump: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 3 {
		t.Fatalf("flight dump has %d line(s), want >= 3 (addfile, stage, release):\n%s", len(lines), raw)
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, `{"kind":"span",`) {
			t.Errorf("flight dump line is not a span record: %s", line)
		}
	}
}

// httpGet fetches a URL and returns the body, failing the test on any error
// or non-200 status.
func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(body)
}

// scrapeMetrics GETs <base>metrics and returns the body.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "metrics")
	if err != nil {
		t.Fatalf("scraping /metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	return string(body)
}

func TestRunClientBadInputs(t *testing.T) {
	addr := testServer(t)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-connect", addr, "-addfile", "missing-colon"}, &stdout, &stderr); code != 2 {
		t.Errorf("malformed addfile: run = %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"-connect", addr, "-addfile", "f:not-a-number"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad size: run = %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"-connect", addr, "-stage", "never-registered"}, &stdout, &stderr); code != 1 {
		t.Errorf("staging unknown file: run = %d, want 1", code)
	}
	stderr.Reset()
	if code := run([]string{"-connect", addr, "-release", "no-such-token"}, &stdout, &stderr); code != 1 {
		t.Errorf("releasing unknown token: run = %d, want 1", code)
	}
}
