package main

import (
	"bytes"
	"strings"
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/core"
	"fbcache/internal/history"
	"fbcache/internal/policy"
	"fbcache/internal/srm"
)

// testServer starts a real SRM server on a loopback port and returns its
// address; shutdown is handled by t.Cleanup.
func testServer(t *testing.T) string {
	t.Helper()
	cat := bundle.NewCatalog()
	pol := policy.WrapOptFileBundle(core.New(
		64*bundle.MB, cat.SizeFunc(),
		core.Options{History: history.Config{Truncation: history.CacheResident}},
	))
	service := srm.New(pol, cat)
	server, err := srm.Serve(service, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		service.Close()
		_ = server.Close()
	})
	return server.Addr()
}

func TestRunModeAndFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no mode", nil, 2},
		{"unknown flag", []string{"-no-such-flag"}, 2},
		{"client without command", []string{"-connect", "127.0.0.1:1"}, 1}, // dial fails first
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != tc.want {
				t.Errorf("run(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.want, stderr.String())
			}
		})
	}
}

func TestRunClientLifecycle(t *testing.T) {
	addr := testServer(t)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-connect", addr, "-addfile", "evt-a:1048576"}, &stdout, &stderr); code != 0 {
		t.Fatalf("addfile: run = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "added evt-a") {
		t.Errorf("addfile output: %q", stdout.String())
	}

	stdout.Reset()
	if code := run([]string{"-connect", addr, "-stage", "evt-a"}, &stdout, &stderr); code != 0 {
		t.Fatalf("stage: run = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "staged token=") {
		t.Errorf("stage output: %q", stdout.String())
	}

	stdout.Reset()
	if code := run([]string{"-connect", addr, "-stats"}, &stdout, &stderr); code != 0 {
		t.Fatalf("stats: run = %d, stderr: %s", code, stderr.String())
	}
	for _, want := range []string{"policy", "jobs", "cache"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("stats output missing %q:\n%s", want, stdout.String())
		}
	}
}

func TestRunClientBadInputs(t *testing.T) {
	addr := testServer(t)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-connect", addr, "-addfile", "missing-colon"}, &stdout, &stderr); code != 2 {
		t.Errorf("malformed addfile: run = %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"-connect", addr, "-addfile", "f:not-a-number"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad size: run = %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"-connect", addr, "-stage", "never-registered"}, &stdout, &stderr); code != 1 {
		t.Errorf("staging unknown file: run = %d, want 1", code)
	}
	stderr.Reset()
	if code := run([]string{"-connect", addr, "-release", "no-such-token"}, &stdout, &stderr); code != 1 {
		t.Errorf("releasing unknown token: run = %d, want 1", code)
	}
}
