// Command fbtrace analyzes the JSONL event traces written by cachesim
// -trace-out and srmbench -trace-out (cache/policy/simulator events: loads,
// evicts, admissions, stagings, servings). For the other trace format in
// this repo — workload traces holding file catalogs and request streams, as
// written by tracegen — use the traceinfo command instead.
//
// Subcommands:
//
//	fbtrace summary [-lenient] [-window N] [-top K] trace.jsonl
//	    Per-policy hit/byte-miss ratios, residency-time and inter-eviction
//	    percentiles (jobs clock), eviction churn, windowed hit-ratio curve.
//	fbtrace validate [-lenient] [-capacity BYTES] trace.jsonl
//	    Replays the trace, reconstructing cache residency and re-checking
//	    the invariant properties offline (exit 1 on any violation).
//	fbtrace critical-path [-lenient] [-top K] trace.jsonl
//	    Per-job queue-wait / transfer / process breakdown from event-driven
//	    runs, with the top-K slowest jobs and the misses that blocked them.
//	fbtrace diff [-lenient] a.jsonl b.jsonl
//	    First diverging event, per-kind counts, and stat deltas between two
//	    traces (exit 1 when they differ, diff(1)-style).
//	fbtrace spans [-lenient] [-top K] [-trees] flight.jsonl
//	    Per-op latency table (p50/p90/p99/max from exact durations), the
//	    slowest requests, and reconstructed request trees from the span
//	    events dumped by the flight recorder (srmd -flight-out).
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"time"

	"fbcache/internal/obs"
	"fbcache/internal/obs/analyze"
	"fbcache/internal/obs/span"
	"fbcache/internal/obs/traceio"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

const usageText = `usage: fbtrace <command> [flags] <trace.jsonl> [trace2.jsonl]

commands:
  summary        hit ratios, residency percentiles, churn, windowed curves
  validate       replay the trace and re-check cache invariants offline
  critical-path  per-job queue/transfer/process breakdown, slowest jobs
  diff           compare two traces event-by-event (exit 1 when they differ)
  spans          per-op latency table, slowest requests, request trees

fbtrace reads event traces (cachesim -trace-out); for workload traces
(tracegen output) use traceinfo.
`

// run dispatches the subcommand and returns the process exit code:
// 0 success, 1 analysis failure (invariant violation, differing traces,
// unreadable input), 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprint(stderr, usageText)
		return 2
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "summary":
		return runSummary(rest, stdout, stderr)
	case "validate":
		return runValidate(rest, stdout, stderr)
	case "critical-path":
		return runCritical(rest, stdout, stderr)
	case "diff":
		return runDiff(rest, stdout, stderr)
	case "spans":
		return runSpans(rest, stdout, stderr)
	case "-h", "-help", "--help", "help":
		fmt.Fprint(stdout, usageText)
		return 0
	default:
		fmt.Fprintf(stderr, "fbtrace: unknown command %q\n\n%s", cmd, usageText)
		return 2
	}
}

// newFlagSet builds the shared flag scaffolding; every subcommand takes
// -lenient (skip undecodable lines instead of failing).
func newFlagSet(name string, stderr io.Writer, lenient *bool) *flag.FlagSet {
	fs := flag.NewFlagSet("fbtrace "+name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.BoolVar(lenient, "lenient", false, "skip undecodable lines instead of failing")
	return fs
}

// load reads one trace, honouring -lenient, and reports skips to stderr.
func load(path string, lenient bool, stderr io.Writer) ([]traceio.Event, error) {
	mode := traceio.Strict
	if lenient {
		mode = traceio.Lenient
	}
	events, skipped, err := traceio.ReadFile(path, mode)
	if err != nil {
		return nil, err
	}
	if skipped > 0 {
		fmt.Fprintf(stderr, "fbtrace: %s: skipped %d undecodable line(s)\n", path, skipped)
	}
	return events, nil
}

func runSummary(args []string, stdout, stderr io.Writer) int {
	var lenient bool
	fs := newFlagSet("summary", stderr, &lenient)
	window := fs.Int("window", 100, "jobs per hit-ratio curve point")
	top := fs.Int("top", 5, "most-evicted files to list")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: fbtrace summary [-lenient] [-window N] [-top K] <trace.jsonl>")
		return 2
	}
	events, err := load(fs.Arg(0), lenient, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "fbtrace: %v\n", err)
		return 1
	}
	s := analyze.Summarize(events, analyze.SummaryOptions{Window: *window, TopChurn: *top})

	fmt.Fprintf(stdout, "trace: %s (%d events)\n\n", fs.Arg(0), len(events))
	st := s.Stats
	fmt.Fprintf(stdout, "events: %d admits, %d loads, %d evicts, %d select rounds, %d jobs served\n",
		st.Admits, st.Loads, st.Evicts, st.SelectRounds, st.JobsServed)
	if st.ReplicaPlans > 0 {
		fmt.Fprintf(stdout, "replication: %d plan epoch(s), %d bytes re-replicated\n",
			st.ReplicaPlans, st.BytesReplicated)
	}
	for _, p := range s.Policies {
		fmt.Fprintf(stdout, "\npolicy %s:\n", p.Policy)
		fmt.Fprintf(stdout, "  admissions       %d (%d hits, %d unserviceable)\n",
			p.Admits, p.Hits, p.Unserviceable)
		fmt.Fprintf(stdout, "  hit ratio        %.4f\n", p.HitRatio())
		fmt.Fprintf(stdout, "  byte miss ratio  %.4f (%d / %d bytes)\n",
			p.ByteMissRatio(), p.BytesLoaded, p.BytesRequested)
	}

	printHist := func(name string, m obs.Metric) {
		if m.Count == 0 {
			fmt.Fprintf(stdout, "\n%s: no observations\n", name)
			return
		}
		p50, p90, p99 := m.P50P90P99()
		fmt.Fprintf(stdout, "\n%s (jobs clock, %d observations):\n", name, m.Count)
		fmt.Fprintf(stdout, "  p50 %s  p90 %s  p99 %s  mean %.1f\n",
			fmtJobs(p50), fmtJobs(p90), fmtJobs(p99), m.Sum/float64(m.Count))
	}
	printHist("residency before eviction", s.Residency)
	printHist("inter-eviction gap", s.InterEviction)

	if len(s.Churn) > 0 {
		fmt.Fprintf(stdout, "\neviction churn: %d file(s) evicted more than once, %d reload(s)\n",
			s.ChurnedFiles, s.Reloads)
		for _, c := range s.Churn {
			fmt.Fprintf(stdout, "  file %-8d %d evictions, %d reloads\n", c.File, c.Evictions, c.Reloads)
		}
	}

	if len(s.Windows) > 0 {
		fmt.Fprintf(stdout, "\nhit-ratio curve (window %d jobs):\n", *window)
		fmt.Fprintf(stdout, "  %8s  %9s  %13s\n", "jobs", "hit-ratio", "byte-hit-ratio")
		for _, w := range s.Windows {
			fmt.Fprintf(stdout, "  %8d  %9.4f  %13.4f\n", w.Jobs, w.HitRatio, w.ByteHitRatio)
		}
	}
	return 0
}

// fmtJobs renders a jobs-clock quantile; NaN (estimate in the +Inf bucket's
// open end) prints as ">max".
func fmtJobs(v float64) string {
	if math.IsNaN(v) {
		return "?"
	}
	return fmt.Sprintf("%.1f", v)
}

func runValidate(args []string, stdout, stderr io.Writer) int {
	var lenient bool
	fs := newFlagSet("validate", stderr, &lenient)
	capacity := fs.Int64("capacity", 0, "cache capacity in bytes (0 skips the capacity check)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: fbtrace validate [-lenient] [-capacity BYTES] <trace.jsonl>")
		return 2
	}
	events, err := load(fs.Arg(0), lenient, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "fbtrace: %v\n", err)
		return 1
	}
	res := analyze.Replay(events, *capacity)
	fmt.Fprintf(stdout, "%s: %d events, %d admissions, %d distinct files\n",
		fs.Arg(0), res.Events, res.Admits, res.DistinctFiles)
	fmt.Fprintf(stdout, "residency: peak %d bytes, final %d bytes in %d file(s)\n",
		res.MaxUsedBytes, res.EndUsedBytes, res.EndResident)
	if res.OK() {
		fmt.Fprintln(stdout, "replay: OK — no invariant violations")
		return 0
	}
	fmt.Fprintf(stdout, "replay: %d violation(s)\n", len(res.Violations))
	for _, v := range res.Violations {
		fmt.Fprintf(stdout, "  %s\n", v)
	}
	return 1
}

func runCritical(args []string, stdout, stderr io.Writer) int {
	var lenient bool
	fs := newFlagSet("critical-path", stderr, &lenient)
	top := fs.Int("top", 10, "slowest jobs to list")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: fbtrace critical-path [-lenient] [-top K] <trace.jsonl>")
		return 2
	}
	events, err := load(fs.Arg(0), lenient, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "fbtrace: %v\n", err)
		return 1
	}
	cp := analyze.CriticalPaths(events, *top)
	fmt.Fprintf(stdout, "%s: %d job(s) served\n", fs.Arg(0), cp.Jobs)
	if cp.Jobs == 0 {
		return 0
	}
	if !cp.Timed {
		fmt.Fprintln(stdout, "trace has no timing (trace-driven run); no breakdown available")
		return 0
	}
	fmt.Fprintf(stdout, "mean response %.3fs = queue %.3fs + transfer %.3fs + process %.3fs\n",
		cp.MeanResponse, cp.MeanQueueWait, cp.MeanTransfer, cp.MeanProcess)
	fmt.Fprintf(stdout, "\nslowest %d job(s):\n", len(cp.Top))
	fmt.Fprintf(stdout, "  %6s %10s %8s %9s %8s %7s %6s  %s\n",
		"job", "response", "queue", "transfer", "process", "retries", "fails", "blocking files")
	for _, p := range cp.Top {
		fmt.Fprintf(stdout, "  %6d %9.3fs %7.3fs %8.3fs %7.3fs %7d %6d  %s\n",
			p.Job, p.Response, p.QueueWait, p.Transfer, p.Process,
			p.Retries, p.FailedAttempts, fmtFiles(p.BlockingFiles))
	}
	return 0
}

// fmtFiles renders a blocking-file list compactly (at most 6 IDs).
func fmtFiles(files []int64) string {
	if len(files) == 0 {
		return "-"
	}
	sorted := append([]int64(nil), files...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := ""
	for i, f := range sorted {
		if i == 6 {
			return fmt.Sprintf("%s +%d more", out, len(sorted)-6)
		}
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%d", f)
	}
	return out
}

func runSpans(args []string, stdout, stderr io.Writer) int {
	var lenient bool
	fs := newFlagSet("spans", stderr, &lenient)
	top := fs.Int("top", 10, "slowest requests to list")
	trees := fs.Bool("trees", false, "print every reconstructed request tree")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: fbtrace spans [-lenient] [-top K] [-trees] <trace.jsonl>")
		return 2
	}
	events, err := load(fs.Arg(0), lenient, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "fbtrace: %v\n", err)
		return 1
	}
	rep := analyze.Spans(events, *top)
	fmt.Fprintf(stdout, "%s: %d span(s) in %d request(s)\n", fs.Arg(0), rep.Spans, rep.Requests)
	if rep.Spans == 0 {
		return 0
	}

	fmt.Fprintln(stdout, "\nper-op latency (wall clock):")
	fmt.Fprintf(stdout, "  %-14s %7s %7s %12s %12s %12s %12s\n",
		"op", "count", "errors", "p50", "p90", "p99", "max")
	for _, o := range rep.Ops {
		fmt.Fprintf(stdout, "  %-14s %7d %7d %12s %12s %12s %12s\n",
			o.Op, o.Count, o.Errors, fmtDur(o.P50), fmtDur(o.P90), fmtDur(o.P99), fmtDur(o.Max))
	}

	fmt.Fprintf(stdout, "\nslowest %d request(s):\n", len(rep.Slowest))
	fmt.Fprintf(stdout, "  %8s %-14s %12s %6s  %s\n", "req", "op", "duration", "spans", "err")
	for _, s := range rep.Slowest {
		errs := s.Err
		if errs == "" {
			errs = "-"
		}
		fmt.Fprintf(stdout, "  %8d %-14s %12s %6d  %s\n", s.Req, s.Op, fmtDur(s.DurSec), s.Spans, errs)
	}

	if *trees {
		fmt.Fprintln(stdout, "\nrequest trees:")
		for _, t := range rep.Trees {
			printTree(stdout, t, 1)
		}
	}
	return 0
}

// fmtDur renders a span duration in seconds as a human duration, rounded
// to the microsecond so table columns stay narrow.
func fmtDur(sec float64) string {
	return time.Duration(sec * float64(time.Second)).Round(time.Microsecond).String()
}

// printTree renders one request tree, indenting two spaces per level; the
// root line carries the request ID.
func printTree(w io.Writer, n *span.Node, depth int) {
	fmt.Fprintf(w, "%*s%s %s", depth*2, "", n.Op, fmtDur(n.DurSec))
	if depth == 1 {
		fmt.Fprintf(w, " (req %d)", n.Req)
	}
	if n.Bytes > 0 {
		fmt.Fprintf(w, " bytes=%d", n.Bytes)
	}
	if n.Files > 0 {
		fmt.Fprintf(w, " files=%d", n.Files)
	}
	if n.Hit {
		fmt.Fprint(w, " hit")
	}
	if n.Err != "" {
		fmt.Fprintf(w, " err=%s", n.Err)
	}
	fmt.Fprintln(w)
	for _, c := range n.Children {
		printTree(w, c, depth+1)
	}
}

func runDiff(args []string, stdout, stderr io.Writer) int {
	var lenient bool
	fs := newFlagSet("diff", stderr, &lenient)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: fbtrace diff [-lenient] <a.jsonl> <b.jsonl>")
		return 2
	}
	a, err := load(fs.Arg(0), lenient, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "fbtrace: %v\n", err)
		return 1
	}
	b, err := load(fs.Arg(1), lenient, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "fbtrace: %v\n", err)
		return 1
	}
	d := analyze.Diff(a, b)
	if d.Identical() {
		fmt.Fprintf(stdout, "traces identical: %d events\n", d.LenA)
		return 0
	}
	fmt.Fprintf(stdout, "traces differ: %d vs %d events, first divergence at event %d\n",
		d.LenA, d.LenB, d.FirstDiverge)
	if d.DivergeA != "" {
		fmt.Fprintf(stdout, "  a: %s\n", d.DivergeA)
	} else {
		fmt.Fprintln(stdout, "  a: <trace ended>")
	}
	if d.DivergeB != "" {
		fmt.Fprintf(stdout, "  b: %s\n", d.DivergeB)
	} else {
		fmt.Fprintln(stdout, "  b: <trace ended>")
	}
	fmt.Fprintln(stdout, "\nevent counts:")
	fmt.Fprintf(stdout, "  %-14s %8s %8s\n", "kind", "a", "b")
	for _, k := range d.Kinds {
		fmt.Fprintf(stdout, "  %-14s %8d %8d\n", k.Kind, k.A, k.B)
	}
	if len(d.StatDeltas) > 0 {
		fmt.Fprintln(stdout, "\nstat deltas:")
		for _, sd := range d.StatDeltas {
			fmt.Fprintf(stdout, "  %-14s %8d %8d\n", sd.Name, sd.A, sd.B)
		}
	}
	return 1
}
