package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fbcache/internal/obs/span"
)

const golden = "../../internal/simulate/testdata/golden_trace.jsonl"

// exec runs the command and captures both streams.
func exec(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestUsageAndHelp(t *testing.T) {
	if code, _, stderr := exec(t); code != 2 || !strings.Contains(stderr, "usage:") {
		t.Errorf("no args: code %d, stderr %q", code, stderr)
	}
	if code, _, stderr := exec(t, "frobnicate"); code != 2 || !strings.Contains(stderr, "unknown command") {
		t.Errorf("unknown command: code %d, stderr %q", code, stderr)
	}
	code, stdout, _ := exec(t, "help")
	if code != 0 || !strings.Contains(stdout, "traceinfo") {
		t.Errorf("help: code %d; usage must cross-reference traceinfo, got %q", code, stdout)
	}
	// Each subcommand rejects a missing positional argument.
	for _, sub := range []string{"summary", "validate", "critical-path", "diff", "spans"} {
		if code, _, _ := exec(t, sub); code != 2 {
			t.Errorf("%s with no file: code %d, want 2", sub, code)
		}
	}
}

// TestSpansSubcommand drives a real flight-recorder dump through the spans
// analysis: an always-anomalous recorder records one request, the JSONL dump
// is flushed, and the subcommand must reconstruct the latency table and tree.
func TestSpansSubcommand(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	sink, closer, err := span.FileDump(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := span.New(span.Options{
		SlowThreshold: time.Nanosecond, // everything is anomalous
		SampleEvery:   1 << 62,
		Dump:          sink,
		DumpCloser:    closer,
	})
	root := rec.StartRequest(span.Context{}, span.OpStage)
	root.SetFiles(2)
	child := rec.StartChild(root.Context(), span.OpStageAdmit)
	child.SetBytes(4096)
	child.Finish(span.ErrNone)
	busy := rec.StartChild(root.Context(), span.OpStageWait)
	busy.Finish(span.ErrBusy)
	root.Finish(span.ErrBusy)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	code, stdout, stderr := exec(t, "spans", "-trees", path)
	if code != 0 {
		t.Fatalf("code %d, stderr %q, stdout:\n%s", code, stderr, stdout)
	}
	for _, want := range []string{
		"3 span(s) in 1 request(s)",
		"per-op latency (wall clock):",
		"stage.admit",
		"slowest 1 request(s):",
		"busy",
		"request trees:",
		"bytes=4096",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("spans output missing %q:\n%s", want, stdout)
		}
	}

	// A trace without span events reports zero and exits clean.
	code, stdout, _ = exec(t, "spans", golden)
	if code != 0 || !strings.Contains(stdout, "0 span(s)") {
		t.Errorf("spans on span-free trace: code %d, output:\n%s", code, stdout)
	}
}

func TestValidateGolden(t *testing.T) {
	code, stdout, _ := exec(t, "validate", "-capacity", "7", golden)
	if code != 0 {
		t.Fatalf("code %d, output:\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "no invariant violations") {
		t.Errorf("output:\n%s", stdout)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	// Capacity 6 is one byte short of the golden run's peak residency.
	code, stdout, _ := exec(t, "validate", "-capacity", "6", golden)
	if code != 1 {
		t.Fatalf("code %d, want 1; output:\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "exceeds capacity") {
		t.Errorf("output:\n%s", stdout)
	}
}

func TestSummaryGolden(t *testing.T) {
	code, stdout, _ := exec(t, "summary", "-window", "2", golden)
	if code != 0 {
		t.Fatalf("code %d, output:\n%s", code, stdout)
	}
	for _, want := range []string{
		"policy optfilebundle",
		"byte miss ratio  0.6842",
		"residency before eviction",
		"hit-ratio curve",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("summary missing %q:\n%s", want, stdout)
		}
	}
}

func TestCriticalPathUntimedTrace(t *testing.T) {
	code, stdout, _ := exec(t, "critical-path", golden)
	if code != 0 {
		t.Fatalf("code %d, output:\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "no timing") {
		t.Errorf("ordinal-clock trace must report missing timing:\n%s", stdout)
	}
}

func TestDiffSameAndDiffering(t *testing.T) {
	code, stdout, _ := exec(t, "diff", golden, golden)
	if code != 0 || !strings.Contains(stdout, "identical") {
		t.Fatalf("self-diff: code %d, output:\n%s", code, stdout)
	}

	// Truncate the last two lines into a second file: diverges at the tail.
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	short := filepath.Join(t.TempDir(), "short.jsonl")
	if err := os.WriteFile(short, []byte(strings.Join(lines[:len(lines)-2], "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ = exec(t, "diff", golden, short)
	if code != 1 {
		t.Fatalf("diff against truncation: code %d, output:\n%s", code, stdout)
	}
	for _, want := range []string{"first divergence", "<trace ended>", "event counts:"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("diff output missing %q:\n%s", want, stdout)
		}
	}
}

func TestLenientSkipsGarbage(t *testing.T) {
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	dirty := filepath.Join(t.TempDir(), "dirty.jsonl")
	if err := os.WriteFile(dirty, append([]byte("this is not json\n"), data...), 0o644); err != nil {
		t.Fatal(err)
	}

	if code, _, stderr := exec(t, "validate", "-capacity", "7", dirty); code != 1 ||
		!strings.Contains(stderr, "line 1") {
		t.Errorf("strict mode must fail on garbage naming the line: code %d, stderr %q", code, stderr)
	}
	code, stdout, stderr := exec(t, "validate", "-lenient", "-capacity", "7", dirty)
	if code != 0 {
		t.Fatalf("lenient: code %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stderr, "skipped 1") || !strings.Contains(stdout, "no invariant violations") {
		t.Errorf("lenient output:\nstdout %s\nstderr %s", stdout, stderr)
	}
}
