// Command cachesim is the Go counterpart of the paper's C++ cacheSim: it
// drives one replacement policy with a synthetic or replayed workload and
// prints the §1.2 metrics. With -events it runs the timed discrete-event
// grid simulation (MSS transfer channels, pinning, bounded concurrency) and
// also reports throughput and response times.
//
// Examples:
//
//	cachesim -policy optfilebundle -popularity zipf -jobs 10000
//	cachesim -policy landlord -trace run.trace.json
//	cachesim -policy optfilebundle -queue 100           # Fig 9 discipline
//	cachesim -policy optfilebundle -events -rate 2
//	cachesim -trace-out run.jsonl -metrics-out run.prom # JSONL event trace
//	                                                    # + Prometheus text
//
// -trace-out streams one typed event per line (admit, load, evict,
// select_round, credit_decay, job_served; stage events in -events mode) —
// deterministic per seed, never wall-clock-stamped. See README.md
// "Observability" for the event vocabulary and EXPERIMENTS.md for worked
// examples.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fbcache/internal/bundle"
	"fbcache/internal/core"
	"fbcache/internal/history"
	"fbcache/internal/metrics"
	"fbcache/internal/mss"
	"fbcache/internal/obs"
	"fbcache/internal/policy"
	"fbcache/internal/policy/classic"
	"fbcache/internal/policy/landlord"
	"fbcache/internal/policy/offline"
	"fbcache/internal/queue"
	"fbcache/internal/simulate"
	"fbcache/internal/trace"
	"fbcache/internal/workload"
)

func main() {
	var (
		policyName = flag.String("policy", "optfilebundle", "replacement policy: optfilebundle, landlord, lru, lfu, gdsf, fifo, mru, random")
		cacheGB    = flag.Float64("cache-gb", 4, "cache size in GB")
		files      = flag.Int("files", 300, "file pool size")
		requests   = flag.Int("requests", 150, "request pool size")
		jobs       = flag.Int("jobs", 10000, "number of job arrivals")
		popularity = flag.String("popularity", "uniform", "request popularity: uniform or zipf")
		zipfS      = flag.Float64("zipf-s", 1, "Zipf exponent")
		maxFilePct = flag.Float64("max-file-pct", 0.05, "max file size as a fraction of the cache")
		bundleMax  = flag.Int("bundle-files", 6, "max files per request")
		seed       = flag.Int64("seed", 1, "workload seed")
		queueLen   = flag.Int("queue", 1, "admission queue length (>1 enables Fig 9 batching)")
		tracePath  = flag.String("trace", "", "replay a trace file instead of generating (json or gob by extension)")
		compare    = flag.Bool("compare", false, "run every policy on the same workload and print a comparison table")
		series     = flag.Int("series", 0, "emit a time-series point every N jobs")
		events     = flag.Bool("events", false, "run the timed discrete-event simulation")
		rate       = flag.Float64("rate", 2, "events: mean job arrival rate (jobs/s)")
		slots      = flag.Int("slots", 4, "events: concurrent job slots")
		mssLatency = flag.Float64("mss-latency", 10, "events: MSS per-transfer latency (s)")
		mssBW      = flag.Float64("mss-bw-mbps", 50, "events: MSS per-channel bandwidth (MB/s)")
		mssCh      = flag.Int("mss-channels", 4, "events: MSS transfer channels")
		traceOut   = flag.String("trace-out", "", "write a JSONL event trace (admits, loads, evicts, select rounds, staging, jobs) to this file; ignored with -compare")
		metricsOut = flag.String("metrics-out", "", "write the final metrics in Prometheus text format to this file")
	)
	flag.Parse()

	w, err := loadWorkload(*tracePath, workload.Spec{
		Seed:           *seed,
		CacheSize:      bundle.Size(*cacheGB * float64(bundle.GB)),
		NumFiles:       *files,
		MinFileSize:    bundle.MB,
		MaxFilePct:     *maxFilePct,
		NumRequests:    *requests,
		MaxBundleFiles: *bundleMax,
		MaxBundleFrac:  0.5,
		Popularity:     parsePopularity(*popularity),
		ZipfS:          *zipfS,
		Jobs:           *jobs,
	})
	if err != nil {
		die("%v", err)
	}

	capacity := w.Spec.CacheSize
	if *compare {
		runComparison(w, capacity, *seed)
		return
	}
	p, opt := buildPolicy(*policyName, capacity, w.Catalog.SizeFunc(), *seed)

	var tracer obs.Tracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			die("%v", err)
		}
		sink := obs.NewJSONLSink(f)
		defer func() {
			if err := sink.Err(); err != nil {
				die("trace-out: %v", err)
			}
			if err := f.Close(); err != nil {
				die("trace-out: %v", err)
			}
		}()
		tracer = sink
		installTracer(p, tracer)
	}

	fmt.Printf("workload: %d files, %d pooled requests, %d jobs, cache %v (~%.1f requests)\n",
		w.Catalog.Len(), len(w.Requests), len(w.Jobs), capacity, w.CacheSizeInRequests())
	fmt.Printf("policy: %s\n\n", p.Name())

	if *events {
		st, err := simulate.RunEvents(w, p, simulate.EventOptions{
			ArrivalRate: *rate,
			Slots:       *slots,
			Seed:        *seed,
			MSS: mss.Config{
				Name:         "mss",
				LatencySec:   *mssLatency,
				BandwidthBps: *mssBW * 1e6,
				Channels:     *mssCh,
			},
			Tracer: tracer,
		})
		if err != nil {
			die("%v", err)
		}
		if *metricsOut != "" {
			reg := obs.NewRegistry()
			reg.GaugeFunc("fbcache_sim_hit_ratio",
				"Request-hit ratio over completed jobs.",
				func() float64 { return st.HitRatio })
			reg.GaugeFunc("fbcache_sim_byte_miss_ratio",
				"Bytes loaded / bytes requested.",
				func() float64 { return st.ByteMissRatio })
			reg.CounterFunc("fbcache_sim_bytes_loaded_total",
				"Total miss traffic in bytes.",
				func() float64 { return float64(st.BytesLoaded) })
			metrics.ExportResilience(reg, func() metrics.Resilience { return st.Resilience })
			writeProm(*metricsOut, reg)
		}
		fmt.Printf("jobs completed     %d\n", st.Jobs)
		fmt.Printf("makespan           %.1f s\n", st.Makespan)
		fmt.Printf("throughput         %.3f jobs/s\n", st.Throughput)
		fmt.Printf("mean response      %.2f s\n", st.MeanResponse)
		fmt.Printf("p95 response       %.2f s\n", st.P95Response)
		fmt.Printf("mean staging       %.2f s\n", st.MeanStaging)
		fmt.Printf("request hit ratio  %.4f\n", st.HitRatio)
		fmt.Printf("byte miss ratio    %.4f\n", st.ByteMissRatio)
		fmt.Printf("bytes loaded       %v\n", st.BytesLoaded)
		fmt.Printf("MSS utilization    %.3f\n", st.MSSUtilization)
		return
	}

	opts := simulate.Options{QueueLength: *queueLen, SeriesInterval: *series, Tracer: tracer}
	if *queueLen > 1 && opt != nil {
		opts.Scheduler = queue.ByScore("relative-value", opt.RelativeValue)
	}
	col, err := simulate.Run(w, p, opts)
	if err != nil {
		die("%v", err)
	}
	if *metricsOut != "" {
		reg := obs.NewRegistry()
		col.ExportTo(reg)
		writeProm(*metricsOut, reg)
	}
	fmt.Printf("jobs               %d (unserviceable %d)\n", col.Jobs(), col.Unserviceable())
	fmt.Printf("request hit ratio  %.4f\n", col.HitRatio())
	fmt.Printf("byte miss ratio    %.4f\n", col.ByteMissRatio())
	fmt.Printf("byte hit ratio     %.4f\n", col.ByteHitRatio())
	fmt.Printf("data per request   %v\n", bundle.Size(col.BytesPerRequest()))
	fmt.Printf("bytes loaded       %v\n", col.BytesLoaded())
	fmt.Printf("files loaded       %d, evicted %d\n", col.FilesLoaded(), col.FilesEvicted())
	if *series > 0 {
		fmt.Println("\njobs  hit-ratio  byte-miss")
		for _, pt := range col.Series() {
			fmt.Printf("%5d  %9.4f  %9.4f\n", pt.Jobs, pt.HitRatio, pt.ByteMissRatio)
		}
	}
}

func loadWorkload(path string, spec workload.Spec) (*workload.Workload, error) {
	if path == "" {
		return workload.Generate(spec)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".gob") {
		return trace.ReadGob(f)
	}
	return trace.ReadJSON(f)
}

func parsePopularity(s string) workload.Popularity {
	if strings.EqualFold(s, "zipf") {
		return workload.Zipf
	}
	return workload.Uniform
}

// buildPolicy returns the policy and, for optfilebundle, the concrete type
// (needed for relative-value queue scheduling).
func buildPolicy(name string, capacity bundle.Size, sizeOf bundle.SizeFunc, seed int64) (policy.Policy, *core.OptFileBundle) {
	switch strings.ToLower(name) {
	case "optfilebundle", "opt":
		opt := core.New(capacity, sizeOf, core.Options{
			History: history.Config{Truncation: history.CacheResident},
		})
		return policy.WrapOptFileBundle(opt), opt
	case "landlord":
		return landlord.New(capacity, sizeOf), nil
	case "lru":
		return classic.NewLRU(capacity, sizeOf), nil
	case "lfu":
		return classic.NewLFU(capacity, sizeOf), nil
	case "gdsf":
		return classic.NewGDSF(capacity, sizeOf), nil
	case "fifo":
		return classic.NewFIFO(capacity, sizeOf), nil
	case "mru":
		return classic.NewMRU(capacity, sizeOf), nil
	case "random":
		return classic.NewRandom(capacity, sizeOf, seed), nil
	default:
		die("unknown policy %q", name)
		return nil, nil
	}
}

// runComparison drives every implemented policy (plus the clairvoyant
// Belady reference) over the same workload and prints one row each.
func runComparison(w *workload.Workload, capacity bundle.Size, seed int64) {
	fmt.Printf("workload: %d files, %d pooled requests, %d jobs, cache %v (~%.1f requests)\n\n",
		w.Catalog.Len(), len(w.Requests), len(w.Jobs), capacity, w.CacheSizeInRequests())
	fmt.Printf("%-16s %-10s %-11s %-14s\n", "policy", "hit-ratio", "byte-miss", "data/request")

	names := []string{"optfilebundle", "landlord", "gdsf", "lru", "lfu", "fifo", "random", "mru"}
	for _, name := range names {
		p, _ := buildPolicy(name, capacity, w.Catalog.SizeFunc(), seed)
		col, err := simulate.Run(w, p, simulate.Options{})
		if err != nil {
			die("%v", err)
		}
		printRow(p.Name(), col)
	}
	// Hindsight reference.
	future := make([]bundle.Bundle, len(w.Jobs))
	for i := range w.Jobs {
		future[i] = w.JobBundle(i)
	}
	bel := offline.New(capacity, w.Catalog.SizeFunc(), future)
	col, err := simulate.Run(w, bel, simulate.Options{})
	if err != nil {
		die("%v", err)
	}
	printRow(bel.Name(), col)
}

func printRow(name string, col *metrics.Collector) {
	fmt.Printf("%-16s %-10.4f %-11.4f %-14v\n",
		name, col.HitRatio(), col.ByteMissRatio(), bundle.Size(col.BytesPerRequest()))
}

// installTracer wires a tracer into p: policies with their own emit sites
// (OptFileBundle, Landlord) install it on themselves and their cache; any
// other policy still gets per-file Load/Evict events from the cache.
func installTracer(p policy.Policy, t obs.Tracer) {
	if st, ok := p.(interface{ SetTracer(obs.Tracer) }); ok {
		st.SetTracer(t)
		return
	}
	p.Cache().SetTracer(t)
}

// writeProm writes reg's snapshot in Prometheus text format to path.
func writeProm(path string, reg *obs.Registry) {
	f, err := os.Create(path)
	if err != nil {
		die("%v", err)
	}
	if err := reg.Snapshot().WritePrometheus(f); err != nil {
		die("metrics-out: %v", err)
	}
	if err := f.Close(); err != nil {
		die("metrics-out: %v", err)
	}
}

func die(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "cachesim: "+format+"\n", args...)
	os.Exit(1)
}
