package main

import (
	"os"
	"path/filepath"
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/trace"
	"fbcache/internal/workload"
)

func TestParsePopularity(t *testing.T) {
	if parsePopularity("zipf") != workload.Zipf || parsePopularity("ZIPF") != workload.Zipf {
		t.Error("zipf not recognized")
	}
	if parsePopularity("uniform") != workload.Uniform || parsePopularity("junk") != workload.Uniform {
		t.Error("default not uniform")
	}
}

func TestBuildPolicyAllNames(t *testing.T) {
	sizeOf := func(bundle.FileID) bundle.Size { return 1 }
	names := []string{"optfilebundle", "opt", "landlord", "lru", "lfu", "gdsf", "fifo", "mru", "random"}
	for _, n := range names {
		p, opt := buildPolicy(n, 100, sizeOf, 1)
		if p == nil {
			t.Fatalf("%s: nil policy", n)
		}
		if (n == "optfilebundle" || n == "opt") != (opt != nil) {
			t.Errorf("%s: concrete handle = %v", n, opt)
		}
		p.Admit(bundle.New(1, 2))
	}
}

func TestLoadWorkloadGenerateAndReplay(t *testing.T) {
	spec := workload.DefaultSpec()
	spec.Jobs = 50
	spec.NumFiles = 20
	spec.NumRequests = 10
	w, err := loadWorkload("", spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 50 {
		t.Fatalf("jobs = %d", len(w.Jobs))
	}

	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "t.json")
	f, err := os.Create(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteJSON(f, w); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := loadWorkload(jsonPath, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != 50 {
		t.Errorf("replayed jobs = %d", len(got.Jobs))
	}

	gobPath := filepath.Join(dir, "t.gob")
	g, err := os.Create(gobPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteGob(g, w); err != nil {
		t.Fatal(err)
	}
	g.Close()
	got, err = loadWorkload(gobPath, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != 50 {
		t.Errorf("gob replayed jobs = %d", len(got.Jobs))
	}

	if _, err := loadWorkload(filepath.Join(dir, "missing.json"), spec); err == nil {
		t.Error("missing trace accepted")
	}
}
