// Command tracegen generates a synthetic file-bundle workload (the §5.1
// model) and writes it as a trace file for later replay with cachesim
// -trace. JSON (default) is diff-friendly; -gob writes the compact binary
// form.
//
// Example:
//
//	tracegen -jobs 10000 -popularity zipf -o zipf10k.trace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fbcache/internal/bundle"
	"fbcache/internal/trace"
	"fbcache/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run parses args and generates the trace, writing the trace to -o (or
// stdout) and the summary line to stderr. It returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out        = fs.String("o", "", "output path (default stdout)")
		useGob     = fs.Bool("gob", false, "write compact binary format")
		cacheGB    = fs.Float64("cache-gb", 4, "reference cache size in GB")
		files      = fs.Int("files", 300, "file pool size")
		requests   = fs.Int("requests", 150, "request pool size")
		jobs       = fs.Int("jobs", 10000, "number of job arrivals")
		popularity = fs.String("popularity", "uniform", "uniform or zipf")
		zipfS      = fs.Float64("zipf-s", 1, "Zipf exponent")
		maxFilePct = fs.Float64("max-file-pct", 0.05, "max file size as a fraction of the cache")
		bundleMax  = fs.Int("bundle-files", 6, "max files per request")
		seed       = fs.Int64("seed", 1, "generation seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	pop := workload.Uniform
	if strings.EqualFold(*popularity, "zipf") {
		pop = workload.Zipf
	}
	w, err := workload.Generate(workload.Spec{
		Seed:           *seed,
		CacheSize:      bundle.Size(*cacheGB * float64(bundle.GB)),
		NumFiles:       *files,
		MinFileSize:    bundle.MB,
		MaxFilePct:     *maxFilePct,
		NumRequests:    *requests,
		MaxBundleFiles: *bundleMax,
		MaxBundleFrac:  0.5,
		Popularity:     pop,
		ZipfS:          *zipfS,
		Jobs:           *jobs,
	})
	if err != nil {
		fmt.Fprintf(stderr, "tracegen: %v\n", err)
		return 1
	}

	dst := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "tracegen: %v\n", err)
			return 1
		}
		defer func() {
			_ = f.Close() // write errors surface through write() below
		}()
		dst = f
	}
	write := trace.WriteJSON
	if *useGob {
		write = trace.WriteGob
	}
	if err := write(dst, w); err != nil {
		fmt.Fprintf(stderr, "tracegen: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "tracegen: %d files, %d requests, %d jobs (mean request %v, cache ~%.1f requests)\n",
		w.Catalog.Len(), len(w.Requests), len(w.Jobs), w.MeanRequestBytes(), w.CacheSizeInRequests())
	return 0
}
