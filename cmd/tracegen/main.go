// Command tracegen generates a synthetic file-bundle workload (the §5.1
// model) and writes it as a trace file for later replay with cachesim
// -trace. JSON (default) is diff-friendly; -gob writes the compact binary
// form.
//
// Example:
//
//	tracegen -jobs 10000 -popularity zipf -o zipf10k.trace.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fbcache/internal/bundle"
	"fbcache/internal/trace"
	"fbcache/internal/workload"
)

func main() {
	var (
		out        = flag.String("o", "", "output path (default stdout)")
		useGob     = flag.Bool("gob", false, "write compact binary format")
		cacheGB    = flag.Float64("cache-gb", 4, "reference cache size in GB")
		files      = flag.Int("files", 300, "file pool size")
		requests   = flag.Int("requests", 150, "request pool size")
		jobs       = flag.Int("jobs", 10000, "number of job arrivals")
		popularity = flag.String("popularity", "uniform", "uniform or zipf")
		zipfS      = flag.Float64("zipf-s", 1, "Zipf exponent")
		maxFilePct = flag.Float64("max-file-pct", 0.05, "max file size as a fraction of the cache")
		bundleMax  = flag.Int("bundle-files", 6, "max files per request")
		seed       = flag.Int64("seed", 1, "generation seed")
	)
	flag.Parse()

	pop := workload.Uniform
	if strings.EqualFold(*popularity, "zipf") {
		pop = workload.Zipf
	}
	w, err := workload.Generate(workload.Spec{
		Seed:           *seed,
		CacheSize:      bundle.Size(*cacheGB * float64(bundle.GB)),
		NumFiles:       *files,
		MinFileSize:    bundle.MB,
		MaxFilePct:     *maxFilePct,
		NumRequests:    *requests,
		MaxBundleFiles: *bundleMax,
		MaxBundleFrac:  0.5,
		Popularity:     pop,
		ZipfS:          *zipfS,
		Jobs:           *jobs,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}
	write := trace.WriteJSON
	if *useGob {
		write = trace.WriteGob
	}
	if err := write(dst, w); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d files, %d requests, %d jobs (mean request %v, cache ~%.1f requests)\n",
		w.Catalog.Len(), len(w.Requests), len(w.Jobs), w.MeanRequestBytes(), w.CacheSizeInRequests())
}
