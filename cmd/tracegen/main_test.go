package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fbcache/internal/trace"
)

func TestRunGeneratesReadableTrace(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "tiny.trace.json")
	var stdout, stderr bytes.Buffer
	args := []string{"-jobs", "50", "-files", "10", "-requests", "8", "-seed", "7", "-o", out}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "10 files") {
		t.Errorf("summary line missing file count: %q", stderr.String())
	}

	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := trace.ReadJSON(f)
	if err != nil {
		t.Fatalf("generated trace does not parse: %v", err)
	}
	if w.Catalog.Len() != 10 || len(w.Jobs) != 50 {
		t.Errorf("trace has %d files, %d jobs; want 10, 50", w.Catalog.Len(), len(w.Jobs))
	}
}

// Same seed, same bytes: the generator must be deterministic.
func TestRunDeterministicAcrossRuns(t *testing.T) {
	gen := func() []byte {
		var stdout, stderr bytes.Buffer
		args := []string{"-jobs", "30", "-files", "8", "-requests", "6", "-seed", "42"}
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("run = %d, stderr: %s", code, stderr.String())
		}
		return stdout.Bytes()
	}
	a, b := gen(), gen()
	if !bytes.Equal(a, b) {
		t.Fatal("two runs with the same seed produced different traces")
	}
}

func TestRunFlagErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: run = %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"-o", filepath.Join(t.TempDir(), "missing", "dir", "x")}, &stdout, &stderr); code != 1 {
		t.Errorf("uncreatable output: run = %d, want 1", code)
	}
}
