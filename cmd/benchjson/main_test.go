package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: fbcache/internal/core
cpu: Example CPU @ 2.00GHz
BenchmarkOptCacheSelect/n=1000-8   	     100	    987654 ns/op	  123456 B/op	     789 allocs/op
BenchmarkOptCacheSelect/n=5000-8   	      20	   5432109 ns/op	  654321 B/op	    4321 allocs/op
PASS
ok  	fbcache/internal/core	1.234s
pkg: fbcache/internal/policy/landlord
BenchmarkLandlordAdmit-8   	   10000	      1234 ns/op
PASS
ok  	fbcache/internal/policy/landlord	0.5s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != Schema || doc.GOOS != "linux" || doc.GOARCH != "amd64" {
		t.Errorf("header = %+v", doc)
	}
	if doc.CPU != "Example CPU @ 2.00GHz" {
		t.Errorf("cpu = %q", doc.CPU)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %+v", doc.Benchmarks)
	}
	b := doc.Benchmarks[0]
	if b.Pkg != "fbcache/internal/core" || b.Name != "BenchmarkOptCacheSelect/n=1000-8" {
		t.Errorf("attribution: %+v", b)
	}
	if b.Iterations != 100 || b.NsPerOp != 987654 || b.BPerOp != 123456 || b.AllocsPerOp != 789 {
		t.Errorf("values: %+v", b)
	}
	// The landlord line has no -benchmem columns and a different pkg.
	ll := doc.Benchmarks[2]
	if ll.Pkg != "fbcache/internal/policy/landlord" || ll.NsPerOp != 1234 || ll.BPerOp != 0 {
		t.Errorf("landlord entry: %+v", ll)
	}
}

func TestParseSkipsNonResultLines(t *testing.T) {
	doc, err := Parse(strings.NewReader("Benchmarking is fun\nBenchmarkX notanumber ns/op\nPASS\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Errorf("parsed phantom results: %+v", doc.Benchmarks)
	}
}

func TestParseRejectsCorruptValues(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkX-8 100 abc ns/op\n")); err == nil {
		t.Error("corrupt ns/op accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-out", out, "-require", "OptCacheSelect", "-require", "Landlord"},
		strings.NewReader(sample), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("code %d, stderr %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc File
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "fbcache-bench/v1" || len(doc.Benchmarks) != 3 {
		t.Errorf("round-tripped doc: %+v", doc)
	}
}

func TestRunRequireUnmatched(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-require", "NoSuchBenchmark"}, strings.NewReader(sample), &stdout, &stderr)
	if code != 1 || !strings.Contains(stderr.String(), "NoSuchBenchmark") {
		t.Errorf("code %d, stderr %q", code, stderr.String())
	}
}

func TestRunEmptyInput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, strings.NewReader("PASS\n"), &stdout, &stderr); code != 1 {
		t.Errorf("empty input: code %d", code)
	}
}

func TestRunStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, strings.NewReader(sample), &stdout, &stderr); code != 0 {
		t.Fatalf("code %d, stderr %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), `"schema": "fbcache-bench/v1"`) {
		t.Errorf("stdout: %s", stdout.String())
	}
}
