package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: fbcache/internal/core
cpu: Example CPU @ 2.00GHz
BenchmarkOptCacheSelect/n=1000-8   	     100	    987654 ns/op	  123456 B/op	     789 allocs/op
BenchmarkOptCacheSelect/n=5000-8   	      20	   5432109 ns/op	  654321 B/op	    4321 allocs/op
PASS
ok  	fbcache/internal/core	1.234s
pkg: fbcache/internal/policy/landlord
BenchmarkLandlordAdmit-8   	   10000	      1234 ns/op
PASS
ok  	fbcache/internal/policy/landlord	0.5s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != Schema || doc.GOOS != "linux" || doc.GOARCH != "amd64" {
		t.Errorf("header = %+v", doc)
	}
	if doc.CPU != "Example CPU @ 2.00GHz" {
		t.Errorf("cpu = %q", doc.CPU)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %+v", doc.Benchmarks)
	}
	b := doc.Benchmarks[0]
	if b.Pkg != "fbcache/internal/core" || b.Name != "BenchmarkOptCacheSelect/n=1000-8" {
		t.Errorf("attribution: %+v", b)
	}
	if b.Iterations != 100 || b.NsPerOp != 987654 || b.BPerOp != 123456 || b.AllocsPerOp != 789 {
		t.Errorf("values: %+v", b)
	}
	// The landlord line has no -benchmem columns and a different pkg.
	ll := doc.Benchmarks[2]
	if ll.Pkg != "fbcache/internal/policy/landlord" || ll.NsPerOp != 1234 || ll.BPerOp != 0 {
		t.Errorf("landlord entry: %+v", ll)
	}
}

func TestParseSkipsNonResultLines(t *testing.T) {
	doc, err := Parse(strings.NewReader("Benchmarking is fun\nBenchmarkX notanumber ns/op\nPASS\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Errorf("parsed phantom results: %+v", doc.Benchmarks)
	}
}

func TestParseRejectsCorruptValues(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkX-8 100 abc ns/op\n")); err == nil {
		t.Error("corrupt ns/op accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-out", out, "-require", "OptCacheSelect", "-require", "Landlord"},
		strings.NewReader(sample), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("code %d, stderr %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc File
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "fbcache-bench/v1" || len(doc.Benchmarks) != 3 {
		t.Errorf("round-tripped doc: %+v", doc)
	}
}

func TestRunRequireUnmatched(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-require", "NoSuchBenchmark"}, strings.NewReader(sample), &stdout, &stderr)
	if code != 1 || !strings.Contains(stderr.String(), "NoSuchBenchmark") {
		t.Errorf("code %d, stderr %q", code, stderr.String())
	}
}

func TestRunEmptyInput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, strings.NewReader("PASS\n"), &stdout, &stderr); code != 1 {
		t.Errorf("empty input: code %d", code)
	}
}

func TestRunStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, strings.NewReader(sample), &stdout, &stderr); code != 0 {
		t.Fatalf("code %d, stderr %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), `"schema": "fbcache-bench/v1"`) {
		t.Errorf("stdout: %s", stdout.String())
	}
}

func bench(pkg, name string, ns float64, allocs int64) Benchmark {
	return Benchmark{Pkg: pkg, Name: name, NsPerOp: ns, AllocsPerOp: allocs}
}

// TestCompare pins the regression semantics: exact on allocs, ratio-gated
// on time, missing benchmarks always fatal, new benchmarks never flagged.
func TestCompare(t *testing.T) {
	base := File{Schema: Schema, Benchmarks: []Benchmark{
		bench("p", "BenchmarkA-8", 100, 5),
		bench("p", "BenchmarkB-8", 100, 0),
		bench("q", "BenchmarkGone-8", 100, 1),
	}}
	cur := File{Schema: Schema, Benchmarks: []Benchmark{
		bench("p", "BenchmarkA-8", 250, 6),  // alloc +1, time 2.5x
		bench("p", "BenchmarkB-8", 90, 0),   // improved
		bench("p", "BenchmarkNew-8", 10, 3), // new coverage, not a regression
	}}

	regs, compared := Compare(base, cur, 0, 1.0)
	if compared != 2 {
		t.Errorf("compared = %d, want 2", compared)
	}
	if len(regs) != 2 {
		t.Fatalf("ratio off: regs = %q, want alloc + missing", regs)
	}
	joined := strings.Join(regs, "\n")
	if !strings.Contains(joined, "allocs/op 5 -> 6") || !strings.Contains(joined, "BenchmarkGone") {
		t.Errorf("regs = %q", regs)
	}
	if strings.Contains(joined, "ns/op") {
		t.Errorf("timing flagged with ratio disabled: %q", regs)
	}

	// The +1 alloc (5 -> 6, +20%) slips under a 1.25 slack but not 1.1.
	regs, _ = Compare(base, cur, 0, 1.25)
	if strings.Contains(strings.Join(regs, "\n"), "allocs/op") {
		t.Errorf("alloc within slack still flagged: %q", regs)
	}
	regs, _ = Compare(base, cur, 0, 1.1)
	if !strings.Contains(strings.Join(regs, "\n"), "allocs/op 5 -> 6") {
		t.Errorf("alloc above slack not flagged: %q", regs)
	}

	regs, _ = Compare(base, cur, 2.0, 1.0)
	if !strings.Contains(strings.Join(regs, "\n"), "ns/op 100.0 -> 250.0") {
		t.Errorf("2.5x slowdown not flagged at ratio 2: %q", regs)
	}
	regs, _ = Compare(base, cur, 3.0, 1.0)
	for _, r := range regs {
		if strings.Contains(r, "ns/op") {
			t.Errorf("2.5x slowdown flagged at ratio 3: %q", r)
		}
	}
}

// TestRunBaseline drives the flag end to end: a run is its own baseline
// (exit 0), and a doctored slower/fatter baseline comparison fails.
func TestRunBaseline(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-out", basePath}, strings.NewReader(sample), &stdout, &stderr); code != 0 {
		t.Fatalf("writing baseline: code %d, stderr %s", code, stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	code := run([]string{"-baseline", basePath, "-max-ns-ratio", "1.5", "-out", filepath.Join(dir, "new.json")},
		strings.NewReader(sample), &stdout, &stderr)
	if code != 0 || !strings.Contains(stderr.String(), "no regressions") {
		t.Fatalf("self-comparison: code %d, stderr %s", code, stderr.String())
	}

	// Shrink the baseline's allocs so the same input now regresses.
	data, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	doctored := strings.Replace(string(data), `"allocs_per_op": 789`, `"allocs_per_op": 788`, 1)
	if doctored == string(data) {
		t.Fatal("test fixture drifted: allocs_per_op 789 not found in baseline")
	}
	if err := os.WriteFile(basePath, []byte(doctored), 0o644); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	code = run([]string{"-baseline", basePath}, strings.NewReader(sample), &stdout, &stderr)
	if code != 1 || !strings.Contains(stderr.String(), "allocs/op 788 -> 789") {
		t.Fatalf("doctored baseline: code %d, stderr %s", code, stderr.String())
	}
}

// TestMarkdown pins the table layout: baseline order preserved, deltas
// computed from ns/op, new benchmarks appended, missing ones called out, and
// regressions listed after the table.
func TestMarkdown(t *testing.T) {
	base := File{Schema: Schema, Benchmarks: []Benchmark{
		bench("fbcache/internal/core", "BenchmarkA-8", 100, 5),
		bench("fbcache/internal/core", "BenchmarkGone-8", 50, 1),
	}}
	cur := File{Schema: Schema, Benchmarks: []Benchmark{
		bench("fbcache/internal/core", "BenchmarkA-8", 80, 5),
		bench("fbcache/internal/core", "BenchmarkNew-8", 10, 0),
	}}
	md := string(Markdown(&base, cur, []string{"core BenchmarkGone-8: missing"}))
	for _, want := range []string{
		"| core.BenchmarkA-8 | 100 | 80 | -20.0% | 5 | 5 |",
		"| core.BenchmarkGone-8 | 50 | *missing* |",
		"| core.BenchmarkNew-8 | *new* | 10 |",
		"## Regressions",
		"- core BenchmarkGone-8: missing",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	if clean := string(Markdown(&base, cur, nil)); !strings.Contains(clean, "No regressions") {
		t.Errorf("clean comparison lacks the all-clear line:\n%s", clean)
	}

	single := string(Markdown(nil, cur, nil))
	if !strings.Contains(single, "| core.BenchmarkA-8 | 80 | 0 | 5 |") {
		t.Errorf("single-run table: %s", single)
	}
}

// TestRunMarkdown drives -markdown end to end, including the property the CI
// artifact depends on: the table is written even when the comparison fails.
func TestRunMarkdown(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	mdPath := filepath.Join(dir, "compare.md")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-out", basePath}, strings.NewReader(sample), &stdout, &stderr); code != 0 {
		t.Fatalf("writing baseline: code %d, stderr %s", code, stderr.String())
	}

	stderr.Reset()
	code := run([]string{"-baseline", basePath, "-markdown", mdPath, "-out", filepath.Join(dir, "new.json")},
		strings.NewReader(sample), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("self-comparison: code %d, stderr %s", code, stderr.String())
	}
	md, err := os.ReadFile(mdPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "core.BenchmarkOptCacheSelect/n=1000-8") ||
		!strings.Contains(string(md), "No regressions") {
		t.Errorf("markdown: %s", md)
	}

	// Doctor the baseline into a regression; the table must still land.
	data, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	doctored := strings.Replace(string(data), `"allocs_per_op": 789`, `"allocs_per_op": 788`, 1)
	if err := os.WriteFile(basePath, []byte(doctored), 0o644); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	code = run([]string{"-baseline", basePath, "-markdown", mdPath}, strings.NewReader(sample), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("doctored baseline: code %d, stderr %s", code, stderr.String())
	}
	if md, err = os.ReadFile(mdPath); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "## Regressions") {
		t.Errorf("failed comparison left no regression section: %s", md)
	}

	// -markdown without -baseline writes the single-run table.
	if code := run([]string{"-markdown", mdPath}, strings.NewReader(sample), &stdout, &stderr); code != 0 {
		t.Fatalf("single-run markdown: code %d, stderr %s", code, stderr.String())
	}
	if md, err = os.ReadFile(mdPath); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(md), "before") {
		t.Errorf("single-run table has before/after columns: %s", md)
	}
}

// TestRunBaselineBadFile checks the failure modes before comparison.
func TestRunBaselineBadFile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-baseline", filepath.Join(t.TempDir(), "absent.json")},
		strings.NewReader(sample), &stdout, &stderr); code != 1 {
		t.Errorf("missing baseline: code %d", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if code := run([]string{"-baseline", bad}, strings.NewReader(sample), &stdout, &stderr); code != 1 ||
		!strings.Contains(stderr.String(), "schema") {
		t.Errorf("wrong schema: code %d, stderr %s", code, stderr.String())
	}
}
