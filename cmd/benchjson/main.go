// Command benchjson converts `go test -bench` text output into the
// schema-versioned JSON consumed by the benchmark-trajectory harness
// (`make bench-json` writes BENCH_core.json). Reading from stdin or a file:
//
//	go test -bench . -benchmem ./internal/core/ | benchjson -out BENCH_core.json
//
// Each -require PATTERN asserts that at least one parsed benchmark name
// matches the regular expression; a run whose output lost an expected
// benchmark (build failure, renamed function) fails loudly instead of
// writing a silently thinner file.
//
// -baseline FILE compares the parsed run against a previous benchjson
// document and exits 1 on regression: any benchmark that disappeared, any
// allocs/op above baseline×-max-alloc-ratio (default 1.0 = exact), and —
// when -max-ns-ratio is above 0 — any ns/op exceeding baseline×ratio.
// Timing on shared CI runners is noisy, so the ns gate defaults off and CI
// runs it with a generous bound; allocs/op is the load-bearing check, with
// a hair of slack (CI uses 1.01) for benchmarks whose amortized map growth
// lands a ±1 jitter at small -benchtime.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Schema identifies the output format; bump on breaking changes.
const Schema = "fbcache-bench/v1"

// Benchmark is one parsed result line.
type Benchmark struct {
	Pkg         string  `json:"pkg"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// File is the full output document. It deliberately carries no wall-clock
// timestamp: two runs of the same toolchain on the same code produce
// byte-identical files, so the trajectory diffs cleanly in version control.
type File struct {
	Schema     string      `json:"schema"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// multiFlag collects repeated -require values.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "", "output file (default stdout)")
	baseline := fs.String("baseline", "", "previous benchjson file to compare against; regressions exit 1")
	markdown := fs.String("markdown", "", "write a Markdown before/after table to FILE (before/after needs -baseline)")
	maxNsRatio := fs.Float64("max-ns-ratio", 0, "with -baseline, fail when ns/op > baseline*ratio (0 disables the timing gate)")
	maxAllocRatio := fs.Float64("max-alloc-ratio", 1.0, "with -baseline, fail when allocs/op > baseline*ratio")
	var require multiFlag
	fs.Var(&require, "require", "regexp at least one benchmark name must match (repeatable)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: benchjson [-out FILE] [-baseline FILE [-max-ns-ratio R]] [-require RE]... [bench-output.txt]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	in := stdin
	switch fs.NArg() {
	case 0:
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 1
		}
		defer func() {
			_ = f.Close() // read-only handle
		}()
		in = f
	default:
		fs.Usage()
		return 2
	}

	doc, err := Parse(in)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark results in input")
		return 1
	}
	for _, pat := range require {
		re, err := regexp.Compile(pat)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: bad -require %q: %v\n", pat, err)
			return 2
		}
		found := false
		for _, b := range doc.Benchmarks {
			if re.MatchString(b.Name) {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(stderr, "benchjson: no benchmark matches -require %q\n", pat)
			return 1
		}
	}

	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 1
		}
		var base File
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(stderr, "benchjson: %s: %v\n", *baseline, err)
			return 1
		}
		if base.Schema != Schema {
			fmt.Fprintf(stderr, "benchjson: %s has schema %q, want %q\n", *baseline, base.Schema, Schema)
			return 1
		}
		regressions, compared := Compare(base, doc, *maxNsRatio, *maxAllocRatio)
		// The Markdown table is written before the regression exit so a
		// failing CI gate still uploads a reviewable artifact showing what
		// moved — the whole point of the comparison when the news is bad.
		if *markdown != "" {
			if err := os.WriteFile(*markdown, Markdown(&base, doc, regressions), 0o644); err != nil {
				fmt.Fprintf(stderr, "benchjson: %v\n", err)
				return 1
			}
		}
		for _, r := range regressions {
			fmt.Fprintf(stderr, "benchjson: regression: %s\n", r)
		}
		if len(regressions) > 0 {
			return 1
		}
		fmt.Fprintf(stderr, "benchjson: no regressions vs %s (%d benchmarks compared)\n", *baseline, compared)
	} else if *markdown != "" {
		if err := os.WriteFile(*markdown, Markdown(nil, doc, nil), 0o644); err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 1
		}
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err = stdout.Write(enc)
	} else {
		err = os.WriteFile(*out, enc, 0o644)
	}
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	return 0
}

// Compare reports every regression of cur against base, plus how many
// benchmarks were actually compared. A benchmark is matched by package and
// name (including the -P GOMAXPROCS suffix); benchmarks present only in cur
// are new coverage and never a regression, but every baseline benchmark
// must still exist. Allocations regress when they exceed base×allocRatio
// (1.0 = exact; the hot loops are single-goroutine and near-deterministic,
// but amortized map growth can jitter large counts by ±1 at small
// -benchtime). ns/op is gated only when nsRatio > 0, because wall time on
// shared runners is not reproducible enough for a tight bound.
func Compare(base, cur File, nsRatio, allocRatio float64) (regressions []string, compared int) {
	key := func(b Benchmark) string { return b.Pkg + " " + b.Name }
	current := make(map[string]Benchmark, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		current[key(b)] = b
	}
	for _, old := range base.Benchmarks {
		now, ok := current[key(old)]
		if !ok {
			regressions = append(regressions,
				fmt.Sprintf("%s %s: present in baseline but missing from this run", old.Pkg, old.Name))
			continue
		}
		compared++
		if float64(now.AllocsPerOp) > float64(old.AllocsPerOp)*allocRatio {
			regressions = append(regressions,
				fmt.Sprintf("%s %s: allocs/op %d -> %d (limit %.2fx)",
					old.Pkg, old.Name, old.AllocsPerOp, now.AllocsPerOp, allocRatio))
		}
		if nsRatio > 0 && now.NsPerOp > old.NsPerOp*nsRatio {
			regressions = append(regressions,
				fmt.Sprintf("%s %s: ns/op %.1f -> %.1f (limit %.1fx = %.1f)",
					old.Pkg, old.Name, old.NsPerOp, now.NsPerOp, nsRatio, old.NsPerOp*nsRatio))
		}
	}
	return regressions, compared
}

// Markdown renders cur as a GitHub-flavored Markdown table. With a baseline
// it is a before/after comparison — ns/op and allocs/op side by side with the
// timing delta — ordered by the baseline's benchmark order, with benchmarks
// new in cur appended; without one it is a plain single-run table. Any
// regressions from Compare are listed after the table so the CI artifact
// tells the whole story on its own.
func Markdown(base *File, cur File, regressions []string) []byte {
	var sb strings.Builder
	shortPkg := func(pkg string) string {
		if i := strings.LastIndexByte(pkg, '/'); i >= 0 {
			return pkg[i+1:]
		}
		return pkg
	}
	name := func(b Benchmark) string { return shortPkg(b.Pkg) + "." + b.Name }
	sb.WriteString("# Benchmark comparison\n\n")
	if base == nil {
		sb.WriteString("| Benchmark | ns/op | B/op | allocs/op |\n")
		sb.WriteString("|---|---:|---:|---:|\n")
		for _, b := range cur.Benchmarks {
			fmt.Fprintf(&sb, "| %s | %.0f | %d | %d |\n", name(b), b.NsPerOp, b.BPerOp, b.AllocsPerOp)
		}
		return []byte(sb.String())
	}

	key := func(b Benchmark) string { return b.Pkg + " " + b.Name }
	inBase := make(map[string]bool, len(base.Benchmarks))
	current := make(map[string]Benchmark, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		current[key(b)] = b
	}
	sb.WriteString("| Benchmark | ns/op before | ns/op after | Δ ns/op | allocs/op before | allocs/op after |\n")
	sb.WriteString("|---|---:|---:|---:|---:|---:|\n")
	for _, old := range base.Benchmarks {
		inBase[key(old)] = true
		now, ok := current[key(old)]
		if !ok {
			fmt.Fprintf(&sb, "| %s | %.0f | *missing* | — | %d | *missing* |\n",
				name(old), old.NsPerOp, old.AllocsPerOp)
			continue
		}
		delta := "—"
		if old.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", (now.NsPerOp-old.NsPerOp)/old.NsPerOp*100)
		}
		fmt.Fprintf(&sb, "| %s | %.0f | %.0f | %s | %d | %d |\n",
			name(old), old.NsPerOp, now.NsPerOp, delta, old.AllocsPerOp, now.AllocsPerOp)
	}
	for _, b := range cur.Benchmarks {
		if inBase[key(b)] {
			continue
		}
		fmt.Fprintf(&sb, "| %s | *new* | %.0f | — | *new* | %d |\n", name(b), b.NsPerOp, b.AllocsPerOp)
	}
	if len(regressions) > 0 {
		sb.WriteString("\n## Regressions\n\n")
		for _, r := range regressions {
			fmt.Fprintf(&sb, "- %s\n", r)
		}
	} else {
		sb.WriteString("\nNo regressions against the checked-in baseline.\n")
	}
	return []byte(sb.String())
}

// Parse reads `go test -bench` text output. Context lines (goos/goarch/
// pkg/cpu) update the current attribution; Benchmark result lines become
// entries. Unrecognized lines (PASS, ok, test logs) are skipped.
func Parse(r io.Reader) (File, error) {
	doc := File{
		Schema:    Schema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok, err := parseResult(line)
			if err != nil {
				return doc, err
			}
			if ok {
				b.Pkg = pkg
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	return doc, sc.Err()
}

// parseResult decodes one result line:
//
//	BenchmarkName-8   1234   987.6 ns/op   123 B/op   7 allocs/op
//
// ok=false for "Benchmark..." lines that are not results (e.g. a benchmark
// function's own log output starting with the word Benchmark).
func parseResult(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !hasUnit(fields, "ns/op") {
		return Benchmark{}, false, nil
	}
	var b Benchmark
	b.Name = fields[0]
	iter, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil
	}
	b.Iterations = iter
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if b.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
				return b, false, fmt.Errorf("bad ns/op %q in %q", val, line)
			}
		case "B/op":
			if b.BPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return b, false, fmt.Errorf("bad B/op %q in %q", val, line)
			}
		case "allocs/op":
			if b.AllocsPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return b, false, fmt.Errorf("bad allocs/op %q in %q", val, line)
			}
		}
	}
	return b, true, nil
}

// hasUnit reports whether any field equals the unit — result lines always
// carry ns/op somewhere after the iteration count.
func hasUnit(fields []string, unit string) bool {
	for _, f := range fields {
		if f == unit {
			return true
		}
	}
	return false
}
