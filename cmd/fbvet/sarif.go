package main

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"

	"fbcache/internal/analyzers"
	"fbcache/internal/analyzers/perf"
)

// The SARIF 2.1.0 subset fbvet emits. Field names follow the spec
// (https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html);
// omitempty is avoided on required properties so an empty run still
// serializes them explicitly.

const (
	sarifVersion = "2.1.0"
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
)

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// ruleMeta is the suite-independent rule description the SARIF emitter
// needs: the go/types suite and the perf-contract suite have distinct
// Analyzer types, but both reduce to (name, doc) pairs here.
type ruleMeta struct {
	Name, Doc string
}

// baseRules adapts the go/types suite to rule metadata.
func baseRules(suite []*analyzers.Analyzer) []ruleMeta {
	rules := make([]ruleMeta, len(suite))
	for i, a := range suite {
		rules[i] = ruleMeta{Name: a.Name, Doc: a.Doc}
	}
	return rules
}

// perfRules adapts the perf-contract suite to rule metadata.
func perfRules(suite []*perf.Analyzer) []ruleMeta {
	rules := make([]ruleMeta, len(suite))
	for i, a := range suite {
		rules[i] = ruleMeta{Name: a.Name, Doc: a.Doc}
	}
	return rules
}

// writeSARIF renders one run covering the whole invocation. Every analyzer
// in the suite appears as a rule even when it found nothing, so consumers
// can distinguish "checked and clean" from "not checked". Paths are made
// relative to root (the directory fbvet loaded packages from) and
// slash-separated, per the spec's preference for portable URIs.
func writeSARIF(w io.Writer, suite []ruleMeta, diags []analyzers.Diagnostic, root string) error {
	rules := make([]sarifRule, len(suite))
	index := make(map[string]int, len(suite))
	for i, a := range suite {
		rules[i] = sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}}
		index[a.Name] = i
	}

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		uri := d.Pos.Filename
		if rel, err := filepath.Rel(root, uri); err == nil {
			uri = rel
		}
		uri = filepath.ToSlash(uri)
		idx, ok := index[d.Analyzer]
		if !ok {
			// A diagnostic from outside the suite (should not happen);
			// -1 is the spec's "no rule metadata" sentinel.
			idx = -1
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: idx,
			Level:     "warning",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: uri},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	sort.SliceStable(results, func(i, j int) bool {
		a, b := results[i], results[j]
		if a.RuleID != b.RuleID {
			return a.RuleID < b.RuleID
		}
		la, lb := a.Locations[0].PhysicalLocation, b.Locations[0].PhysicalLocation
		if la.ArtifactLocation.URI != lb.ArtifactLocation.URI {
			return la.ArtifactLocation.URI < lb.ArtifactLocation.URI
		}
		return la.Region.StartLine < lb.Region.StartLine
	})

	log := sarifLog{
		Version: sarifVersion,
		Schema:  sarifSchema,
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "fbvet", Rules: rules}}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// validateSARIF structurally checks a SARIF document against the 2.1.0
// requirements fbvet relies on — an offline stand-in for full JSON-schema
// validation (the container has no network and no schema validator). It
// decodes generically so it exercises the emitted bytes, not the Go types.
func validateSARIF(data []byte) error {
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if v, _ := doc["version"].(string); v != sarifVersion {
		return fmt.Errorf("version = %q, want %q", doc["version"], sarifVersion)
	}
	runs, ok := doc["runs"].([]any)
	if !ok {
		return fmt.Errorf("runs is %T, want array", doc["runs"])
	}
	for ri, rv := range runs {
		run, ok := rv.(map[string]any)
		if !ok {
			return fmt.Errorf("runs[%d] is not an object", ri)
		}
		tool, _ := run["tool"].(map[string]any)
		driver, _ := tool["driver"].(map[string]any)
		name, _ := driver["name"].(string)
		if name == "" {
			return fmt.Errorf("runs[%d].tool.driver.name missing", ri)
		}
		nRules := -1
		if rules, ok := driver["rules"].([]any); ok {
			nRules = len(rules)
			for qi, qv := range rules {
				rule, ok := qv.(map[string]any)
				if !ok {
					return fmt.Errorf("runs[%d] rules[%d] is not an object", ri, qi)
				}
				if id, _ := rule["id"].(string); id == "" {
					return fmt.Errorf("runs[%d] rules[%d].id missing", ri, qi)
				}
			}
		}
		results, ok := run["results"].([]any)
		if !ok {
			return fmt.Errorf("runs[%d].results is %T, want array", ri, run["results"])
		}
		for xi, xv := range results {
			res, ok := xv.(map[string]any)
			if !ok {
				return fmt.Errorf("runs[%d].results[%d] is not an object", ri, xi)
			}
			if id, _ := res["ruleId"].(string); id == "" {
				return fmt.Errorf("runs[%d].results[%d].ruleId missing", ri, xi)
			}
			switch lvl, _ := res["level"].(string); lvl {
			case "none", "note", "warning", "error":
			default:
				return fmt.Errorf("runs[%d].results[%d].level = %q invalid", ri, xi, lvl)
			}
			msg, _ := res["message"].(map[string]any)
			if text, _ := msg["text"].(string); text == "" {
				return fmt.Errorf("runs[%d].results[%d].message.text missing", ri, xi)
			}
			if fidx, ok := res["ruleIndex"].(float64); ok && nRules >= 0 {
				if idx := int(fidx); idx < -1 || idx >= nRules {
					return fmt.Errorf("runs[%d].results[%d].ruleIndex %d outside %d rules", ri, xi, idx, nRules)
				}
			}
			locs, _ := res["locations"].([]any)
			for li, lv := range locs {
				loc, _ := lv.(map[string]any)
				phys, _ := loc["physicalLocation"].(map[string]any)
				art, _ := phys["artifactLocation"].(map[string]any)
				if uri, _ := art["uri"].(string); uri == "" {
					return fmt.Errorf("runs[%d].results[%d].locations[%d] missing artifactLocation.uri", ri, xi, li)
				}
				if region, ok := phys["region"].(map[string]any); ok {
					if line, ok := region["startLine"].(float64); ok && line < 1 {
						return fmt.Errorf("runs[%d].results[%d].locations[%d].region.startLine = %v, want >= 1", ri, xi, li, line)
					}
				}
			}
		}
	}
	return nil
}
