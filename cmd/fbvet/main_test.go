package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"fbcache/internal/analyzers"
)

func sampleDiags() []analyzers.Diagnostic {
	return []analyzers.Diagnostic{
		{
			Pos:      token.Position{Filename: "internal/srm/srm.go", Line: 42, Column: 3},
			Analyzer: "guardedby",
			Message:  "write to field (SRM).active without holding mu (//fbvet:guardedby)",
		},
		{
			Pos:      token.Position{Filename: "internal/cluster/cluster.go", Line: 7, Column: 1},
			Analyzer: "lockorder",
			Message:  "potential deadlock: lock cycle",
		},
	}
}

// TestWriteSARIFValidates proves the emitter and the validator agree: the
// exact bytes fbvet would upload pass the structural 2.1.0 check.
func TestWriteSARIFValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := writeSARIF(&buf, baseRules(analyzers.All()), sampleDiags(), "."); err != nil {
		t.Fatalf("writeSARIF: %v", err)
	}
	if err := validateSARIF(buf.Bytes()); err != nil {
		t.Fatalf("emitted SARIF does not validate: %v", err)
	}
}

// TestWriteSARIFShape pins the parts of the log CI consumers depend on:
// version, driver name, one rule per suite analyzer, resolvable ruleIndex,
// and slash-separated relative URIs.
func TestWriteSARIFShape(t *testing.T) {
	var buf bytes.Buffer
	suite := baseRules(analyzers.All())
	if err := writeSARIF(&buf, suite, sampleDiags(), "."); err != nil {
		t.Fatalf("writeSARIF: %v", err)
	}
	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("decoding emitted log: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("version/schema = %q / %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "fbvet" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(suite) {
		t.Errorf("got %d rules, want %d (one per analyzer)", len(run.Tool.Driver.Rules), len(suite))
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	for _, res := range run.Results {
		if res.RuleIndex < 0 || res.RuleIndex >= len(run.Tool.Driver.Rules) {
			t.Errorf("result %q ruleIndex %d out of range", res.RuleID, res.RuleIndex)
			continue
		}
		if got := run.Tool.Driver.Rules[res.RuleIndex].ID; got != res.RuleID {
			t.Errorf("ruleIndex %d resolves to %q, want %q", res.RuleIndex, got, res.RuleID)
		}
		uri := res.Locations[0].PhysicalLocation.ArtifactLocation.URI
		if strings.Contains(uri, "\\") || strings.HasPrefix(uri, "/") {
			t.Errorf("URI %q should be relative and slash-separated", uri)
		}
	}
	// Results are sorted by rule then location, so runs are byte-for-byte
	// reproducible regardless of package iteration order.
	if run.Results[0].RuleID != "guardedby" || run.Results[1].RuleID != "lockorder" {
		t.Errorf("results not sorted by rule: %q, %q", run.Results[0].RuleID, run.Results[1].RuleID)
	}
}

// TestWriteSARIFEmpty checks a clean run still carries the full rule set
// and an explicit empty results array — "checked and found nothing".
func TestWriteSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := writeSARIF(&buf, baseRules(analyzers.All()), nil, "."); err != nil {
		t.Fatalf("writeSARIF: %v", err)
	}
	if err := validateSARIF(buf.Bytes()); err != nil {
		t.Fatalf("empty run does not validate: %v", err)
	}
	if !strings.Contains(buf.String(), `"results": []`) {
		t.Errorf("empty results should serialize as [], got:\n%s", buf.String())
	}
}

// TestValidateSARIFRejects drives the validator through the malformed
// documents it exists to catch.
func TestValidateSARIFRejects(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"not json", `{`, "not valid JSON"},
		{"wrong version", `{"version":"2.0.0","runs":[]}`, "version"},
		{"runs missing", `{"version":"2.1.0"}`, "runs"},
		{"driver name missing",
			`{"version":"2.1.0","runs":[{"tool":{"driver":{}},"results":[]}]}`,
			"driver.name"},
		{"ruleId missing",
			`{"version":"2.1.0","runs":[{"tool":{"driver":{"name":"x"}},"results":[{"level":"warning","message":{"text":"m"}}]}]}`,
			"ruleId"},
		{"bad level",
			`{"version":"2.1.0","runs":[{"tool":{"driver":{"name":"x"}},"results":[{"ruleId":"r","level":"fatal","message":{"text":"m"}}]}]}`,
			"level"},
		{"message text missing",
			`{"version":"2.1.0","runs":[{"tool":{"driver":{"name":"x"}},"results":[{"ruleId":"r","level":"warning","message":{}}]}]}`,
			"message.text"},
		{"ruleIndex out of range",
			`{"version":"2.1.0","runs":[{"tool":{"driver":{"name":"x","rules":[{"id":"r"}]}},"results":[{"ruleId":"r","ruleIndex":5,"level":"warning","message":{"text":"m"}}]}]}`,
			"ruleIndex"},
		{"location without uri",
			`{"version":"2.1.0","runs":[{"tool":{"driver":{"name":"x"}},"results":[{"ruleId":"r","level":"warning","message":{"text":"m"},"locations":[{"physicalLocation":{"region":{"startLine":1}}}]}]}]}`,
			"artifactLocation.uri"},
		{"startLine zero",
			`{"version":"2.1.0","runs":[{"tool":{"driver":{"name":"x"}},"results":[{"ruleId":"r","level":"warning","message":{"text":"m"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"a.go"},"region":{"startLine":0}}}]}]}]}`,
			"startLine"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateSARIF([]byte(tc.doc))
			if err == nil {
				t.Fatalf("validator accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
	ok := `{"version":"2.1.0","runs":[{"tool":{"driver":{"name":"x","rules":[{"id":"r","shortDescription":{"text":"d"}}]}},"results":[{"ruleId":"r","ruleIndex":0,"level":"warning","message":{"text":"m"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"a.go"},"region":{"startLine":3}}}]}]}]}`
	if err := validateSARIF([]byte(ok)); err != nil {
		t.Errorf("validator rejected a minimal valid log: %v", err)
	}
}
