// Command fbvet runs the repository's custom static-analysis suite
// (internal/analyzers) over the packages matching the given patterns:
//
//	go run ./cmd/fbvet ./...          # whole repo, all analyzers
//	go run ./cmd/fbvet -run mapiter,floateq ./internal/core
//	go run ./cmd/fbvet -list          # describe the suite
//	go run ./cmd/fbvet -format=sarif ./... > fbvet.sarif
//	go run ./cmd/fbvet -validate fbvet.sarif
//
// fbvet exits 0 when no diagnostics are reported, 1 when findings exist,
// and 2 on load or usage errors. Findings can be suppressed — with a
// justification — by a `//fbvet:allow <analyzer>` comment on or directly
// above the flagged line.
//
// -format=sarif writes the findings to stdout as a SARIF 2.1.0 log (one
// run, one rule per analyzer in the suite) for CI code-scanning uploads;
// the exit-code contract is unchanged, and the human summary still goes
// to stderr. -validate structurally checks an existing SARIF file and
// exits 0 (valid) or 2.
//
// -perf switches to the performance-contract suite (internal/analyzers/perf):
//
//	go run ./cmd/fbvet -perf ./...
//	go run ./cmd/fbvet -perf -format=sarif ./... > fbvet-perf.sarif
//
// It compiles the target packages with -gcflags='-m -m -d=ssa/check_bce/debug=1'
// and enforces the //fbvet:noescape, //fbvet:inline, and //fbvet:nobce
// function annotations against the compiler's own escape/inline/BCE
// diagnostics, plus the hotcomplexity sort-in-hot-loop check. It is a
// separate mode because it executes real builds; the default suite stays a
// pure go/types pass. Exit codes, -run, -list, and -format behave the same
// in both modes.
package main

import (
	"flag"
	"fmt"
	"os"

	"fbcache/internal/analyzers"
	"fbcache/internal/analyzers/perf"
)

func main() {
	var (
		runList  = flag.String("run", "", "comma-separated analyzers to run (default: all)")
		describe = flag.Bool("list", false, "list available analyzers and exit")
		format   = flag.String("format", "text", "output format: text or sarif")
		validate = flag.String("validate", "", "validate a SARIF file and exit (no analysis)")
		perfMode = flag.Bool("perf", false, "run the performance-contract suite (compiles with -gcflags diagnostics)")
	)
	flag.Parse()

	if *describe {
		if *perfMode {
			for _, a := range perf.All() {
				fmt.Printf("%-14s %s\n", a.Name, a.Doc)
			}
			return
		}
		for _, a := range analyzers.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fbvet: %v\n", err)
			os.Exit(2)
		}
		if err := validateSARIF(data); err != nil {
			fmt.Fprintf(os.Stderr, "fbvet: %s: invalid SARIF: %v\n", *validate, err)
			os.Exit(2)
		}
		fmt.Printf("%s: valid SARIF %s\n", *validate, sarifVersion)
		return
	}

	if *format != "text" && *format != "sarif" {
		fmt.Fprintf(os.Stderr, "fbvet: unknown -format %q (want text or sarif)\n", *format)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analyzers.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}

	var diags []analyzers.Diagnostic
	var rules []ruleMeta
	if *perfMode {
		suite := perf.All()
		if *runList != "" {
			suite, err = perf.ByName(*runList)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fbvet: %v\n", err)
				os.Exit(2)
			}
		}
		rules = perfRules(suite)
		sw, err := perf.SweepPackages(".", patterns)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fbvet: %v\n", err)
			os.Exit(2)
		}
		for _, pkg := range pkgs {
			diags = append(diags, perf.Run(pkg, sw, suite)...)
		}
	} else {
		suite := analyzers.All()
		if *runList != "" {
			suite, err = analyzers.ByName(*runList)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fbvet: %v\n", err)
				os.Exit(2)
			}
		}
		rules = baseRules(suite)
		for _, pkg := range pkgs {
			diags = append(diags, analyzers.Run(pkg, suite)...)
		}
	}

	switch *format {
	case "sarif":
		// Load reports absolute positions; Rel against an absolute root
		// is what makes the emitted URIs repo-relative.
		root, err := os.Getwd()
		if err != nil {
			root = "."
		}
		if err := writeSARIF(os.Stdout, rules, diags, root); err != nil {
			fmt.Fprintf(os.Stderr, "fbvet: writing SARIF: %v\n", err)
			os.Exit(2)
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "fbvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
