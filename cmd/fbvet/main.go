// Command fbvet runs the repository's custom static-analysis suite
// (internal/analyzers) over the packages matching the given patterns:
//
//	go run ./cmd/fbvet ./...          # whole repo, all analyzers
//	go run ./cmd/fbvet -run mapiter,floateq ./internal/core
//	go run ./cmd/fbvet -list          # describe the suite
//
// fbvet exits 0 when no diagnostics are reported, 1 when findings exist,
// and 2 on load or usage errors. Findings can be suppressed — with a
// justification — by a `//fbvet:allow <analyzer>` comment on or directly
// above the flagged line.
package main

import (
	"flag"
	"fmt"
	"os"

	"fbcache/internal/analyzers"
)

func main() {
	var (
		runList  = flag.String("run", "", "comma-separated analyzers to run (default: all)")
		describe = flag.Bool("list", false, "list available analyzers and exit")
	)
	flag.Parse()

	if *describe {
		for _, a := range analyzers.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	suite := analyzers.All()
	if *runList != "" {
		var err error
		suite, err = analyzers.ByName(*runList)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fbvet: %v\n", err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analyzers.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}

	found := 0
	for _, pkg := range pkgs {
		for _, d := range analyzers.Run(pkg, suite) {
			fmt.Println(d)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "fbvet: %d finding(s) in %d package(s)\n", found, len(pkgs))
		os.Exit(1)
	}
}
