// Command traceinfo inspects a workload trace (tracegen output: a file
// catalog plus a request stream): file and request pool statistics,
// popularity concentration, file-sharing degree (the d of Theorem 4.1),
// and the reference cache size in requests.
//
//	tracegen -jobs 10000 -popularity zipf -o run.trace.json
//	traceinfo run.trace.json
//
// For the other trace format in this repo — JSONL event traces recording
// what a simulation did (loads, evictions, admissions), as written by
// cachesim -trace-out — use the fbtrace command instead.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fbcache/internal/trace"
	"fbcache/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run parses args, reads the trace named by the single positional argument,
// and renders its description to stdout. It returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("traceinfo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: traceinfo <trace-file>")
		fmt.Fprintln(stderr, "inspects workload traces (tracegen output); for JSONL event traces use fbtrace")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	path := fs.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(stderr, "traceinfo: %v\n", err)
		return 1
	}
	defer func() {
		_ = f.Close() // read-only handle
	}()

	var w *workload.Workload
	if strings.HasSuffix(path, ".gob") {
		w, err = trace.ReadGob(f)
	} else {
		w, err = trace.ReadJSON(f)
	}
	if err != nil {
		fmt.Fprintf(stderr, "traceinfo: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "trace: %s\n\n", path)
	workload.Describe(w).Render(stdout)
	return 0
}
