// Command traceinfo inspects a workload trace: file and request pool
// statistics, popularity concentration, file-sharing degree (the d of
// Theorem 4.1), and the reference cache size in requests.
//
//	tracegen -jobs 10000 -popularity zipf -o run.trace.json
//	traceinfo run.trace.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fbcache/internal/trace"
	"fbcache/internal/workload"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: traceinfo <trace-file>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceinfo: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()

	var w *workload.Workload
	if strings.HasSuffix(path, ".gob") {
		w, err = trace.ReadGob(f)
	} else {
		w, err = trace.ReadJSON(f)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceinfo: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("trace: %s\n\n", path)
	workload.Describe(w).Render(os.Stdout)
}
