package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/trace"
	"fbcache/internal/workload"
)

// tinyTrace writes a small generated workload to disk and returns its path.
func tinyTrace(t *testing.T) string {
	t.Helper()
	w, err := workload.Generate(workload.Spec{
		Seed:           3,
		CacheSize:      64 * bundle.MB,
		NumFiles:       6,
		MinFileSize:    bundle.MB,
		MaxFilePct:     0.2,
		NumRequests:    5,
		MaxBundleFiles: 3,
		MaxBundleFrac:  0.5,
		Popularity:     workload.Uniform,
		Jobs:           20,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tiny.trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteJSON(f, w); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunDescribesTrace(t *testing.T) {
	path := tinyTrace(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{path}, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"trace: " + path, "files", "jobs"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunUsageAndErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no args: run = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "usage: traceinfo") {
		t.Errorf("usage not printed: %q", stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"does-not-exist.trace.json"}, &stdout, &stderr); code != 1 {
		t.Errorf("missing file: run = %d, want 1", code)
	}
	stderr.Reset()
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: run = %d, want 2", code)
	}
}
