package main

import (
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/core"
	"fbcache/internal/history"
	"fbcache/internal/policy"
	"fbcache/internal/srm"
	"fbcache/internal/workload"
)

// End-to-end over a real TCP socket: spin up an in-process srmd-equivalent
// server, drive it with runBench, verify the numbers add up.
func TestRunBenchEndToEnd(t *testing.T) {
	cat := bundle.NewCatalog()
	pol := policy.WrapOptFileBundle(core.New(2*bundle.GB, cat.SizeFunc(), core.Options{
		History: history.Config{Truncation: history.CacheResident},
	}))
	service := srm.New(pol, cat)
	server, err := srm.Serve(service, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	const clients, jobsPerClient = 3, 15
	w, err := workload.Generate(workload.Spec{
		Seed:           7,
		CacheSize:      2 * bundle.GB,
		NumFiles:       40,
		MinFileSize:    bundle.MB,
		MaxFilePct:     0.05,
		NumRequests:    25,
		MaxBundleFiles: 4,
		MaxBundleFrac:  0.25,
		Popularity:     workload.Zipf,
		ZipfS:          1,
		Jobs:           clients * jobsPerClient,
	})
	if err != nil {
		t.Fatal(err)
	}

	sum, err := runBench(server.Addr(), w, clients, jobsPerClient, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.ops != clients*jobsPerClient {
		t.Errorf("ops = %d, want %d", sum.ops, clients*jobsPerClient)
	}
	if sum.errors != 0 {
		t.Errorf("errors = %d", sum.errors)
	}
	if len(sum.latencies) != sum.ops {
		t.Errorf("latencies = %d", len(sum.latencies))
	}
	if sum.serverSnap.Jobs != int64(sum.ops) {
		t.Errorf("server saw %d jobs, client did %d", sum.serverSnap.Jobs, sum.ops)
	}
	if sum.serverSnap.ActiveJobs != 0 || sum.serverSnap.PinnedBytes != 0 {
		t.Errorf("leaked leases: %+v", sum.serverSnap)
	}
	if sum.serverSnap.HitRatio <= 0 {
		t.Errorf("no hits across a Zipf stream: %+v", sum.serverSnap)
	}
}

func TestRunBenchUnreachableServer(t *testing.T) {
	w, err := workload.Generate(workload.Spec{
		Seed: 1, CacheSize: bundle.GB, NumFiles: 4, MinFileSize: bundle.MB,
		MaxFilePct: 0.1, NumRequests: 2, MaxBundleFiles: 2, MaxBundleFrac: 0.5,
		Jobs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runBench("127.0.0.1:1", w, 1, 1, 1, nil); err == nil {
		t.Error("unreachable server accepted")
	}
}
