package main

import (
	"bytes"
	"io"
	"strconv"
	"strings"
	"testing"
	"time"

	"fbcache/internal/bundle"
	"fbcache/internal/core"
	"fbcache/internal/history"
	"fbcache/internal/policy"
	"fbcache/internal/srm"
	"fbcache/internal/workload"
)

// End-to-end over a real TCP socket: spin up an in-process srmd-equivalent
// server, drive it with runBench, verify the numbers add up.
func TestRunBenchEndToEnd(t *testing.T) {
	cat := bundle.NewCatalog()
	pol := policy.WrapOptFileBundle(core.New(2*bundle.GB, cat.SizeFunc(), core.Options{
		History: history.Config{Truncation: history.CacheResident},
	}))
	service := srm.New(pol, cat)
	server, err := srm.Serve(service, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	const clients, jobsPerClient = 3, 15
	w, err := workload.Generate(workload.Spec{
		Seed:           7,
		CacheSize:      2 * bundle.GB,
		NumFiles:       40,
		MinFileSize:    bundle.MB,
		MaxFilePct:     0.05,
		NumRequests:    25,
		MaxBundleFiles: 4,
		MaxBundleFrac:  0.25,
		Popularity:     workload.Zipf,
		ZipfS:          1,
		Jobs:           clients * jobsPerClient,
	})
	if err != nil {
		t.Fatal(err)
	}

	sum, err := runBench(server.Addr(), w, clients, jobsPerClient, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.ops != clients*jobsPerClient {
		t.Errorf("ops = %d, want %d", sum.ops, clients*jobsPerClient)
	}
	if sum.errors != 0 {
		t.Errorf("errors = %d", sum.errors)
	}
	if len(sum.latencies) != sum.ops {
		t.Errorf("latencies = %d", len(sum.latencies))
	}
	if sum.serverSnap.Jobs != int64(sum.ops) {
		t.Errorf("server saw %d jobs, client did %d", sum.serverSnap.Jobs, sum.ops)
	}
	if sum.serverSnap.ActiveJobs != 0 || sum.serverSnap.PinnedBytes != 0 {
		t.Errorf("leaked leases: %+v", sum.serverSnap)
	}
	if sum.serverSnap.HitRatio <= 0 {
		t.Errorf("no hits across a Zipf stream: %+v", sum.serverSnap)
	}
}

// TestSelfServeLatencyMode drives the -self -latency path: bench an
// in-process server and check the go-bench output parses the way benchjson
// expects (one result line per quantile, ns/op present).
func TestSelfServeLatencyMode(t *testing.T) {
	server, stop, err := selfServe(2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	const clients, jobsPerClient = 2, 10
	w, err := workload.Generate(workload.Spec{
		Seed: 3, CacheSize: 2 * bundle.GB, NumFiles: 30, MinFileSize: bundle.MB,
		MaxFilePct: 0.05, NumRequests: 20, MaxBundleFiles: 4, MaxBundleFrac: 0.25,
		Popularity: workload.Zipf, ZipfS: 1, Jobs: clients * jobsPerClient,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := runBench(server.Addr(), w, clients, jobsPerClient, 3, nil)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := sum.printBench(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "pkg: fbcache/cmd/srmbench") {
		t.Errorf("missing pkg attribution line:\n%s", out)
	}
	for _, name := range []string{"BenchmarkSRMStageP50 ", "BenchmarkSRMStageP99 ", "BenchmarkSRMThroughput "} {
		line := ""
		for _, l := range strings.Split(out, "\n") {
			if strings.HasPrefix(l, name) {
				line = l
			}
		}
		if line == "" {
			t.Errorf("no %s result line:\n%s", strings.TrimSpace(name), out)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			t.Errorf("%s line is not go-bench format: %q", strings.TrimSpace(name), line)
			continue
		}
		if ns, err := strconv.ParseFloat(fields[2], 64); err != nil || ns <= 0 {
			t.Errorf("%s ns/op = %q (%v), want positive", strings.TrimSpace(name), fields[2], err)
		}
	}
	if !strings.Contains(out, "req/s") {
		t.Errorf("throughput line lost its req/s extra metric:\n%s", out)
	}

	// An all-error run must fail loudly rather than emit an empty gate file.
	empty := &benchSummary{ops: 3, errors: 3, elapsed: time.Second}
	if err := empty.printBench(io.Discard); err == nil {
		t.Error("printBench with no latencies did not error")
	}
}

func TestRunBenchUnreachableServer(t *testing.T) {
	w, err := workload.Generate(workload.Spec{
		Seed: 1, CacheSize: bundle.GB, NumFiles: 4, MinFileSize: bundle.MB,
		MaxFilePct: 0.1, NumRequests: 2, MaxBundleFiles: 2, MaxBundleFrac: 0.5,
		Jobs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runBench("127.0.0.1:1", w, 1, 1, 1, nil); err == nil {
		t.Error("unreachable server accepted")
	}
}
