// Command srmbench load-tests an srmd server over the TCP protocol: it
// registers a synthetic §5.1 workload's files, then drives concurrent
// clients staging and releasing bundles, reporting client-observed latency
// percentiles and server-side cache statistics.
//
//	srmd -listen :7070 -cache-gb 4 &
//	srmbench -addr localhost:7070 -clients 8 -jobs 200
//
// With -degraded it instead runs the (serverless) degraded-mode experiment:
// the timed simulator staging across a 2-site grid with a mid-run
// remote-archive outage, under rising per-transfer failure rates, tabling
// hit ratio, mean job slowdown, outage recovery time and re-replication
// bytes per policy. With -replication it sweeps the adaptive planner's
// byte budget over the same outage (static grid vs rising budgets). Both
// tables are deterministic for a given -seed:
//
//	srmbench -degraded
//	srmbench -degraded -jobs 500 -seed 7 -csv
//	srmbench -replication
//
// With -latency it reports the closed-loop run in `go test -bench` text
// format instead of the human summary, so benchjson can ingest the
// client-observed stage+release quantiles (make bench-srm writes
// BENCH_srm_latency.json). -self serves an in-process SRM (with the span
// flight recorder attached, so the measured path is the instrumented one)
// on a loopback port first, so the latency gate needs no external srmd:
//
//	srmbench -self -latency -clients 4 -jobs 50 | benchjson -require SRMStage
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"fbcache/internal/bundle"
	"fbcache/internal/core"
	"fbcache/internal/experiment"
	"fbcache/internal/history"
	"fbcache/internal/obs"
	"fbcache/internal/obs/span"
	"fbcache/internal/policy"
	"fbcache/internal/srm"
	"fbcache/internal/stats"
	"fbcache/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", "localhost:7070", "srmd server address")
		clients    = flag.Int("clients", 4, "concurrent client connections")
		jobs       = flag.Int("jobs", 100, "stage/release operations per client (per simulation point with -degraded)")
		files      = flag.Int("files", 200, "file pool size")
		requests   = flag.Int("requests", 100, "request pool size")
		cacheGB    = flag.Float64("cache-gb", 4, "reference cache size for workload sizing (match the server)")
		popularity = flag.String("popularity", "zipf", "uniform or zipf")
		seed       = flag.Int64("seed", 1, "workload seed")
		retries    = flag.Int("retries", 1, "client stage attempts when the server answers busy/retryable (1 = no retry)")
		degraded   = flag.Bool("degraded", false, "run the degraded-mode fault experiment instead of benching a server")
		replSweep  = flag.Bool("replication", false, "run the replication-budget recovery experiment instead of benching a server")
		csv        = flag.Bool("csv", false, "with -degraded/-replication: emit CSV instead of the aligned table")
		traceOut   = flag.String("trace-out", "", "write a JSONL event trace: simulator events with -degraded/-replication, client-observed job records otherwise")
		latency    = flag.Bool("latency", false, "emit go-bench result lines (p50/p99 ns/op, req/s) for benchjson instead of the summary")
		self       = flag.Bool("self", false, "bench an in-process SRM server on a loopback port instead of -addr")
	)
	flag.Parse()

	var tracer *obs.JSONLSink
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		tracer = obs.NewJSONLSink(f)
		defer func() {
			if err := tracer.Err(); err != nil {
				fail(fmt.Errorf("trace-out: %w", err))
			}
			if err := f.Close(); err != nil {
				fail(fmt.Errorf("trace-out: %w", err))
			}
		}()
	}

	if *degraded || *replSweep {
		if err := runExperiment(*replSweep, *jobs, *clients, *files, *requests, *cacheGB, *seed, *csv, tracer, os.Stdout); err != nil {
			fail(err)
		}
		return
	}

	pop := workload.Zipf
	if *popularity == "uniform" {
		pop = workload.Uniform
	}
	w, err := workload.Generate(workload.Spec{
		Seed:           *seed,
		CacheSize:      bundle.Size(*cacheGB * float64(bundle.GB)),
		NumFiles:       *files,
		MinFileSize:    bundle.MB,
		MaxFilePct:     0.05,
		NumRequests:    *requests,
		MaxBundleFiles: 6,
		MaxBundleFrac:  0.25,
		Popularity:     pop,
		ZipfS:          1,
		Jobs:           *clients * *jobs,
	})
	if err != nil {
		fail(err)
	}

	target := *addr
	if *self {
		server, stop, err := selfServe(*cacheGB)
		if err != nil {
			fail(err)
		}
		defer stop()
		target = server.Addr()
	}

	sum, err := runBench(target, w, *clients, *jobs, *retries, tracer)
	if err != nil {
		fail(err)
	}
	if *latency {
		if err := sum.printBench(os.Stdout); err != nil {
			fail(err)
		}
		return
	}
	sum.print(os.Stdout)
}

// selfServe boots an in-process SRM server on a loopback port, with the
// span flight recorder attached so the benched serving path carries the
// same telemetry overhead a production srmd does.
func selfServe(cacheGB float64) (*srm.Server, func(), error) {
	cat := bundle.NewCatalog()
	pol := policy.WrapOptFileBundle(core.New(
		bundle.Size(cacheGB*float64(bundle.GB)), cat.SizeFunc(),
		core.Options{History: history.Config{Truncation: history.CacheResident}},
	))
	service := srm.New(pol, cat).WithSpans(span.New(span.Options{}))
	server, err := srm.Serve(service, "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	return server, func() {
		_ = server.Close() // benchmark exit; leases are gone with the clients
		service.Close()
	}, nil
}

// runExperiment runs one of the serverless fault experiments — the
// replication-budget recovery sweep (replication=true) or the degraded-mode
// failure-rate sweep — and writes the table. jobs is per simulation point;
// the remaining knobs mirror the bench workload so all modes describe the
// same traffic.
func runExperiment(replication bool, jobs, clients, files, requests int, cacheGB float64, seed int64, csv bool, tracer *obs.JSONLSink, out *os.File) error {
	cfg := experiment.DefaultConfig()
	cfg.Seed = seed
	cfg.Jobs = jobs * clients
	cfg.NumFiles = files
	cfg.NumRequests = requests
	cfg.CacheSize = bundle.Size(cacheGB * float64(bundle.GB))
	cfg.Progress = os.Stderr
	if tracer != nil {
		cfg.Tracer = tracer
	}
	run := cfg.DegradedMode
	if replication {
		run = cfg.ReplicationStudy
	}
	t, err := run()
	if err != nil {
		return err
	}
	if csv {
		return t.CSV(out)
	}
	return t.Render(out)
}

// benchSummary aggregates a load-test run.
type benchSummary struct {
	ops        int
	errors     int
	elapsed    time.Duration
	latencies  []float64 // seconds per stage+release
	serverSnap srm.Snapshot
}

// runBench registers the workload's files on the server and drives the
// client fleet. Each client's jobs are a disjoint slice of w.Jobs.
// stageAttempts >= 2 retries busy/retryable server answers with the
// server's own retry-after pacing. tracer, when non-nil, receives one
// client-observed JobServed record per operation (At is wall seconds since
// the bench started — this is a live load test, not a simulation).
func runBench(addr string, w *workload.Workload, clients, jobsPerClient, stageAttempts int, tracer *obs.JSONLSink) (*benchSummary, error) {
	setup, err := srm.Dial(addr)
	if err != nil {
		return nil, err
	}
	for _, f := range w.Catalog.Files() {
		if err := setup.AddFile(w.Catalog.Name(f.ID), f.Size); err != nil {
			_ = setup.Close() // the AddFile error is the one worth returning
			return nil, err
		}
	}

	names := func(b bundle.Bundle) []string {
		out := make([]string, len(b))
		for i, id := range b {
			out[i] = w.Catalog.Name(id)
		}
		return out
	}

	sum := &benchSummary{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := srm.Dial(addr)
			if err != nil {
				mu.Lock()
				sum.errors++
				mu.Unlock()
				return
			}
			defer conn.Close()
			for j := 0; j < jobsPerClient; j++ {
				idx := c*jobsPerClient + j
				if idx >= len(w.Jobs) {
					return
				}
				b := w.Requests[w.Jobs[idx]]
				t0 := time.Now()
				token, hit, _, err := conn.StageRetry(stageAttempts, names(b)...)
				if err == nil {
					err = conn.Release(token)
				}
				lat := time.Since(t0).Seconds()
				mu.Lock()
				sum.ops++
				if err != nil {
					sum.errors++
				} else {
					sum.latencies = append(sum.latencies, lat)
				}
				mu.Unlock()
				if tracer != nil && err == nil {
					tracer.JobServed(obs.JobServedEvent{
						At: time.Since(start).Seconds(), Job: idx, Hit: hit,
						ResponseSec:    lat,
						BytesRequested: int64(b.TotalSize(w.Catalog.SizeFunc())),
					})
				}
			}
		}(c)
	}
	wg.Wait()
	sum.elapsed = time.Since(start)

	snap, err := setup.Stats()
	_ = setup.Close() // stats already fetched; nothing depends on the close
	if err != nil {
		return nil, err
	}
	sum.serverSnap = snap
	sort.Float64s(sum.latencies)
	return sum, nil
}

// printBench renders the run as `go test -bench` result lines — the format
// benchjson parses — so the closed-loop latency quantiles land in the same
// trajectory files as the microbenchmarks. The synthetic benchmark names
// carry the quantile; iterations are the successful operations measured.
func (s *benchSummary) printBench(out io.Writer) error {
	if len(s.latencies) == 0 {
		return fmt.Errorf("latency mode: no successful operations (%d errors)", s.errors)
	}
	n := len(s.latencies)
	fmt.Fprintln(out, "pkg: fbcache/cmd/srmbench")
	fmt.Fprintf(out, "BenchmarkSRMStageP50 \t%d\t%.1f ns/op\n", n, 1e9*stats.Quantile(s.latencies, 0.5))
	fmt.Fprintf(out, "BenchmarkSRMStageP99 \t%d\t%.1f ns/op\n", n, 1e9*stats.Quantile(s.latencies, 0.99))
	fmt.Fprintf(out, "BenchmarkSRMThroughput \t%d\t%.1f ns/op\t%.1f req/s\n",
		s.ops, float64(s.elapsed.Nanoseconds())/float64(s.ops),
		float64(s.ops)/s.elapsed.Seconds())
	return nil
}

func (s *benchSummary) print(out *os.File) {
	fmt.Fprintf(out, "operations        %d (%d errors) in %v\n", s.ops, s.errors, s.elapsed.Round(time.Millisecond))
	if s.elapsed > 0 {
		fmt.Fprintf(out, "throughput        %.1f ops/s\n", float64(s.ops)/s.elapsed.Seconds())
	}
	if len(s.latencies) > 0 {
		fmt.Fprintf(out, "latency p50       %.3f ms\n", 1000*stats.Quantile(s.latencies, 0.5))
		fmt.Fprintf(out, "latency p95       %.3f ms\n", 1000*stats.Quantile(s.latencies, 0.95))
		fmt.Fprintf(out, "latency p99       %.3f ms\n", 1000*stats.Quantile(s.latencies, 0.99))
	}
	fmt.Fprintf(out, "server policy     %s\n", s.serverSnap.Policy)
	fmt.Fprintf(out, "server hit ratio  %.4f\n", s.serverSnap.HitRatio)
	fmt.Fprintf(out, "server byte miss  %.4f\n", s.serverSnap.ByteMissRatio)
	fmt.Fprintf(out, "server cache      %v / %v\n", s.serverSnap.CacheUsed, s.serverSnap.CacheCapacity)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "srmbench:", err)
	os.Exit(1)
}
