package main

import (
	"os"
	"path/filepath"
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/experiment"
)

func tinyConfig() experiment.Config {
	return experiment.Config{
		Seed:        1,
		Jobs:        200,
		NumFiles:    60,
		NumRequests: 40,
		CacheSize:   1 * bundle.GB,
	}
}

func TestRunDispatch(t *testing.T) {
	cfg := tinyConfig()
	for which, wantTables := range map[string]int{
		"table1": 1,
		"table2": 1,
		"fig6":   2,
		"fig9":   2,
		"bounds": 1,
	} {
		tables, err := run(cfg, which)
		if err != nil {
			t.Fatalf("%s: %v", which, err)
		}
		if len(tables) != wantTables {
			t.Errorf("%s: %d tables, want %d", which, len(tables), wantTables)
		}
	}
	if _, err := run(cfg, "nonsense"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	tab := experiment.Table1()
	if err := writeCSV(dir, tab); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty csv")
	}
	// Nested dir is created on demand.
	if err := writeCSV(filepath.Join(dir, "a", "b"), tab); err != nil {
		t.Fatal(err)
	}
}
