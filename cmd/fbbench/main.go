// Command fbbench regenerates the paper's evaluation: Tables 1-2, Figures
// 5-9, the Theorem 4.1 bound study and the extended baseline comparison.
// Results render as aligned text on stdout and, with -out, as one CSV per
// experiment.
//
// Usage:
//
//	fbbench                       # everything, laptop scale
//	fbbench -jobs 10000           # paper-scale job counts
//	fbbench -experiment fig6      # one experiment
//	fbbench -out results/         # also write CSV files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fbcache/internal/bundle"
	"fbcache/internal/experiment"
)

func main() {
	var (
		jobs     = flag.Int("jobs", 4000, "jobs per simulation point (paper used 10000)")
		seed     = flag.Int64("seed", 1, "workload generation seed")
		files    = flag.Int("files", 300, "file pool size")
		requests = flag.Int("requests", 150, "request pool size")
		cacheGB  = flag.Float64("cache-gb", 4, "reference cache size in GB")
		exp      = flag.String("experiment", "all", "which experiment: all, table1, table2, fig5, fig6, fig7, fig8, fig9, bounds, baselines, hybrid, reqsize, saturation, sharding, overlap")
		reps     = flag.Int("reps", 1, "average each Fig 6-8 point over N independent workloads")
		out      = flag.String("out", "", "directory for CSV output (optional)")
		quiet    = flag.Bool("q", false, "suppress progress lines")
	)
	flag.Parse()

	cfg := experiment.Config{
		Seed:         *seed,
		Jobs:         *jobs,
		NumFiles:     *files,
		NumRequests:  *requests,
		CacheSize:    bundle.Size(*cacheGB * float64(bundle.GB)),
		Replications: *reps,
	}
	if !*quiet {
		cfg.Progress = os.Stderr
	}

	tables, err := run(cfg, strings.ToLower(*exp))
	if err != nil {
		fmt.Fprintf(os.Stderr, "fbbench: %v\n", err)
		os.Exit(1)
	}

	for _, t := range tables {
		if err := t.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "fbbench: render: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		if *out != "" {
			if err := writeCSV(*out, t); err != nil {
				fmt.Fprintf(os.Stderr, "fbbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

func run(cfg experiment.Config, which string) ([]*experiment.Table, error) {
	one := func(t *experiment.Table, err error) ([]*experiment.Table, error) {
		if err != nil {
			return nil, err
		}
		return []*experiment.Table{t}, nil
	}
	switch which {
	case "all":
		return cfg.All()
	case "table1":
		return []*experiment.Table{experiment.Table1()}, nil
	case "table2":
		return []*experiment.Table{experiment.Table2()}, nil
	case "fig5":
		return one(cfg.Figure5())
	case "fig6":
		return cfg.Figure6()
	case "fig7":
		return cfg.Figure7()
	case "fig8":
		return one(cfg.Figure8())
	case "fig9":
		return cfg.Figure9()
	case "bounds":
		return one(cfg.BoundStudy())
	case "baselines":
		return one(cfg.Baselines())
	case "hybrid":
		return one(cfg.HybridStudy())
	case "reqsize":
		return one(cfg.RequestSizeStudy())
	case "saturation":
		return one(cfg.SaturationStudy())
	case "sharding":
		return one(cfg.ShardingStudy())
	case "overlap":
		return one(cfg.OverlapStudy())
	default:
		return nil, fmt.Errorf("unknown experiment %q", which)
	}
}

func writeCSV(dir string, t *experiment.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, t.ID+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.CSV(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}
