module fbcache

go 1.22
