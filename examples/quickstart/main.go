// Quickstart: the smallest useful fbcache session, plus the paper's §3
// worked example showing why bundle-aware caching beats file popularity.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"fbcache"
)

func main() {
	// --- 1. A cache in five lines -------------------------------------
	cat := fbcache.NewCatalog()
	energy := cat.Add("evt-energy", 2*fbcache.GB)
	momentum := cat.Add("evt-momentum", 1*fbcache.GB)
	particles := cat.Add("evt-particles", 2*fbcache.GB)

	cache := fbcache.NewCache(4*fbcache.GB, cat.SizeFunc())

	res := cache.Admit(fbcache.NewBundle(energy, momentum))
	fmt.Printf("admit {energy,momentum}: hit=%v loaded=%v\n", res.Hit, res.BytesLoaded)

	res = cache.Admit(fbcache.NewBundle(energy, momentum))
	fmt.Printf("admit again:             hit=%v loaded=%v\n", res.Hit, res.BytesLoaded)

	res = cache.Admit(fbcache.NewBundle(momentum, particles))
	fmt.Printf("admit {momentum,particles}: hit=%v loaded=%v evicted=%d file(s)\n\n",
		res.Hit, res.BytesLoaded, res.FilesEvicted)

	// --- 2. The paper's example: popularity vs combinations ------------
	// Seven unit files, cache of three, six equally likely requests.
	// The three most POPULAR files {f5,f6,f7} satisfy only one request;
	// the best COMBINATION {f1,f3,f5} satisfies three.
	example := fbcache.NewCatalog()
	f := make([]fbcache.FileID, 8)
	for i := 1; i <= 7; i++ {
		f[i] = example.Add(fmt.Sprintf("f%d", i), 1)
	}
	requests := []fbcache.Bundle{
		fbcache.NewBundle(f[1], f[3], f[5]),       // r1
		fbcache.NewBundle(f[2], f[4], f[6], f[7]), // r2
		fbcache.NewBundle(f[1], f[5]),             // r3
		fbcache.NewBundle(f[4], f[6], f[7]),       // r4
		fbcache.NewBundle(f[3], f[5]),             // r5
		fbcache.NewBundle(f[5], f[6], f[7]),       // r6
	}

	popular := fbcache.NewBundle(f[5], f[6], f[7])
	best := fbcache.NewBundle(f[1], f[3], f[5])
	fmt.Println("paper example (6 equally likely requests, cache holds 3 of 7 files):")
	fmt.Printf("  most popular files %s support %d/6 requests\n", names(example, popular), supports(requests, popular))
	fmt.Printf("  OptCacheSelect's   %s support %d/6 requests\n", names(example, best), supports(requests, best))

	// Drive the real policy over the mix and watch it converge. Full
	// history + prefetch + literal eviction is the paper's analytical
	// Algorithm 2; the defaults (cache-resident history, lazy eviction) are
	// the cheaper production variant of §5.3.
	opt := fbcache.NewCache(3, example.SizeFunc(),
		fbcache.WithFullHistory(), fbcache.WithLiteralEviction(), fbcache.WithPrefetch())
	for round := 0; round < 4; round++ {
		for _, r := range requests {
			opt.Admit(r)
		}
	}
	opt.Admit(fbcache.NewBundle(f[1], f[5]))
	fmt.Printf("  OptFileBundle converged to resident set %s\n", names(example, opt.Cache().Resident()))
}

func names(cat *fbcache.Catalog, b fbcache.Bundle) string {
	out := "{"
	for i, id := range b {
		if i > 0 {
			out += ","
		}
		out += cat.Name(id)
	}
	return out + "}"
}

func supports(requests []fbcache.Bundle, content fbcache.Bundle) int {
	n := 0
	for _, r := range requests {
		if r.SubsetOf(content) {
			n++
		}
	}
	return n
}
