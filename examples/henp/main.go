// HENP event analysis (the paper's first motivating application, §1.1).
//
// A High Energy and Nuclear Physics experiment stores each event attribute
// (total energy, momentum, particle multiplicity, ...) in its own file,
// vertically partitioned across runs. A physicist's analysis reads SEVERAL
// attributes of the same run simultaneously — selecting "interesting events"
// by comparing, say, energy against momentum and multiplicity. Every
// analysis is therefore a file-bundle request against the lab's SRM staging
// disk.
//
// This example builds a realistic attribute/run catalog, synthesizes a
// Zipf-popular mix of analyses (hot physics topics get re-run constantly),
// and compares OptFileBundle with Landlord and LRU on the staging disk.
//
//	go run ./examples/henp
package main

import (
	"fmt"
	"math/rand"
	"os"

	"fbcache"
)

const (
	numRuns      = 24 // beam-time runs, each vertically partitioned
	numAttrs     = 12 // attributes recorded per event
	cacheSize    = 40 * fbcache.GB
	numAnalyses  = 160 // distinct analysis jobs in the physics group
	jobArrivals  = 6000
	analysisSeed = 20040607 // SC 2004 submission season
)

var attrNames = []string{
	"energy", "momentum", "multiplicity", "charge", "rapidity",
	"pt", "phi", "eta", "vertex", "centrality", "trigger", "timing",
}

func main() {
	rng := rand.New(rand.NewSource(analysisSeed))

	// Catalog: one file per (run, attribute). Attribute files differ in
	// size — energy sums are small, per-particle vectors are large.
	cat := fbcache.NewCatalog()
	fileOf := make([][]fbcache.FileID, numRuns)
	for run := 0; run < numRuns; run++ {
		fileOf[run] = make([]fbcache.FileID, numAttrs)
		for a := 0; a < numAttrs; a++ {
			size := fbcache.Size(200+rng.Intn(1800)) * fbcache.MB
			name := fmt.Sprintf("run%02d/%s.root", run, attrNames[a])
			fileOf[run][a] = cat.Add(name, size)
		}
	}

	// Analyses: each correlates 2-5 attributes within one run. Popularity
	// is Zipf — a handful of hot analyses (new trigger studies) dominate.
	analyses := make([]fbcache.Bundle, numAnalyses)
	for i := range analyses {
		run := rng.Intn(numRuns)
		k := 2 + rng.Intn(4)
		ids := make([]fbcache.FileID, 0, k)
		perm := rng.Perm(numAttrs)
		for _, a := range perm[:k] {
			ids = append(ids, fileOf[run][a])
		}
		analyses[i] = fbcache.NewBundle(ids...)
	}

	// Zipf(1) over analysis ranks, as in the paper's workload model.
	weights := make([]float64, numAnalyses)
	total := 0.0
	for i := range weights {
		total += 1 / float64(i+1)
		weights[i] = total
	}
	drawAnalysis := func() fbcache.Bundle {
		u := rng.Float64() * total
		for i, w := range weights {
			if u <= w {
				return analyses[i]
			}
		}
		return analyses[numAnalyses-1]
	}

	jobs := make([]fbcache.Bundle, jobArrivals)
	for i := range jobs {
		jobs[i] = drawAnalysis()
	}

	fmt.Printf("HENP staging disk: %v cache, %d runs x %d attributes (%d files, %v total)\n",
		fbcache.Size(cacheSize), numRuns, numAttrs, cat.Len(), cat.TotalSize())
	fmt.Printf("%d distinct analyses, %d job arrivals (Zipf popularity)\n\n", numAnalyses, jobArrivals)

	policies := []fbcache.Policy{
		fbcache.NewCache(cacheSize, cat.SizeFunc()),
		fbcache.NewLandlord(cacheSize, cat.SizeFunc()),
		fbcache.NewLRU(cacheSize, cat.SizeFunc()),
	}
	fmt.Printf("%-15s %-10s %-11s %-14s\n", "policy", "hit-ratio", "byte-miss", "data/analysis")
	for _, p := range policies {
		var hits int
		var reqBytes, missBytes fbcache.Size
		for _, b := range jobs {
			res := p.Admit(b)
			if res.Unserviceable {
				fmt.Fprintln(os.Stderr, "unserviceable analysis — cache too small")
				os.Exit(1)
			}
			if res.Hit {
				hits++
			}
			reqBytes += res.BytesRequested
			missBytes += res.BytesLoaded
		}
		fmt.Printf("%-15s %-10.4f %-11.4f %-14v\n",
			p.Name(),
			float64(hits)/float64(len(jobs)),
			float64(missBytes)/float64(reqBytes),
			fbcache.Size(int64(missBytes)/int64(len(jobs))))
	}
	fmt.Println("\nOptFileBundle keeps whole attribute bundles of hot analyses resident;")
	fmt.Println("per-file policies keep popular attributes from clashing analyses and miss on the bundle.")
}
