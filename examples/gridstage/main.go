// Multi-site data-grid staging with strategic replication (§1, §2): an SRM
// at the local lab pulls files from whichever site holds the cheapest
// replica — the archive of record is a remote tape system across a WAN.
// After observing the workload, the replication planner copies the hottest
// files to the local disk archive and the same query stream runs again.
//
//	go run ./examples/gridstage
package main

import (
	"fmt"
	"os"

	"fbcache"
)

const (
	numFiles  = 200
	cacheGB   = 2
	jobs      = 1500
	replicaGB = 4 // local replica space budget
)

func main() {
	// Workload: Zipf-popular bundle requests over the file pool.
	spec := fbcache.DefaultWorkloadSpec()
	spec.NumFiles = numFiles
	spec.NumRequests = 100
	spec.Jobs = jobs
	spec.CacheSize = cacheGB * fbcache.GB
	spec.MaxFilePct = 0.05
	spec.MaxBundleFrac = 0.4
	spec.Popularity = fbcache.Zipf
	w, err := fbcache.Generate(spec)
	if err != nil {
		fail(err)
	}

	// Grid: local disk archive (fast, small) + remote tape (slow, holds
	// everything) across a 20 MB/s WAN.
	topo, err := fbcache.NewTopology("lbl-disk", fbcache.MSSConfig{
		Name: "lbl-disk", LatencySec: 0.2, BandwidthBps: 200e6, Channels: 4,
	})
	if err != nil {
		fail(err)
	}
	tape, err := topo.AddSite("bnl-tape", fbcache.MSSConfig{
		Name: "bnl-tape", LatencySec: 12, BandwidthBps: 60e6, Channels: 3,
	})
	if err != nil {
		fail(err)
	}
	if err := topo.Connect(topo.Local(), tape, fbcache.Link{LatencySec: 0.8, BandwidthBps: 20e6}); err != nil {
		fail(err)
	}
	reps := fbcache.NewReplicas()
	for _, f := range w.Catalog.Files() {
		reps.Add(f.ID, tape)
	}

	runOnce := func(label string) fbcache.EventStats {
		p := fbcache.NewCache(spec.CacheSize, w.Catalog.SizeFunc())
		st, err := fbcache.RunEvents(w, p, fbcache.EventOptions{
			ArrivalRate: 0.5,
			Slots:       4,
			Seed:        11,
			Grid:        &fbcache.GridConfig{Topology: topo, Replicas: reps},
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-22s mean-resp %8.1fs   p95 %8.1fs   throughput %6.1f jobs/h\n",
			label, st.MeanResponse, st.P95Response, st.Throughput*3600)
		return st
	}

	fmt.Printf("grid: local %q + remote %q over WAN; %d files (%v), cache %v\n\n",
		"lbl-disk", "bnl-tape", w.Catalog.Len(), w.Catalog.TotalSize(), fbcache.Size(spec.CacheSize))

	before := runOnce("remote-only replicas")

	// Observe the workload to build a history for the planner. (An online
	// SRM would use its live history; here we replay the trace into one.)
	opt := fbcache.NewOptFileBundle(spec.CacheSize, w.Catalog.SizeFunc(), fbcache.WithFullHistory())
	for i := range w.Jobs {
		opt.Admit(w.JobBundle(i))
	}
	plan, err := fbcache.PlanReplication(opt.History(), topo, reps, w.Catalog.SizeFunc(), replicaGB*fbcache.GB)
	if err != nil {
		fail(err)
	}
	var planned fbcache.Size
	for _, a := range plan.Actions {
		planned += a.Size
	}
	fmt.Printf("\nreplication plan: %d hot files (%v) copied to lbl-disk (budget %v)\n\n",
		len(plan.Actions), planned, fbcache.Size(replicaGB*fbcache.GB))
	fbcache.ApplyReplication(plan.Actions, topo, reps)

	after := runOnce("with local replicas")

	fmt.Printf("\nmean response improved %.1fx; the cache policy is identical —\n", before.MeanResponse/after.MeanResponse)
	fmt.Println("replication attacks staging latency, OptFileBundle attacks staging volume.")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gridstage:", err)
	os.Exit(1)
}
