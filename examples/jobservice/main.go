// Job service with real bytes: the full §1 policy trio working together —
// the job service policy (queue + scheduler with the lockout guard), the
// file caching policy (bypass for oversized one-offs), and the cache
// replacement policy (OptFileBundle) — over an on-disk store, so staged
// bundles are actual files the jobs read.
//
//	go run ./examples/jobservice
package main

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync/atomic"

	"fbcache"
)

func main() {
	// Catalog: analysis inputs plus one giant raw dump that should never be
	// cached.
	cat := fbcache.NewCatalog()
	events := cat.Add("events.root", 3*fbcache.MB)
	tracks := cat.Add("tracks.root", 2*fbcache.MB)
	calib := cat.Add("calib.db", 1*fbcache.MB)
	rawDump := cat.Add("raw-dump.bin", 9*fbcache.MB)

	// Replacement policy + caching policy (bypass files > 50% of cache).
	inner := fbcache.NewCache(12*fbcache.MB, cat.SizeFunc())
	guarded := fbcache.NewBypassPolicy(inner, cat.SizeFunc(), 0.5)

	// Real bytes: a source that synthesizes content per file.
	dir, err := os.MkdirTemp("", "fbcache-jobservice-*")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dir)
	st, err := fbcache.NewStore(dir, fbcache.FetchFromFunc(func(f fbcache.FileID) (io.ReadCloser, error) {
		payload := strings.Repeat(cat.Name(f)+"\n", 64)
		return io.NopCloser(strings.NewReader(payload)), nil
	}))
	if err != nil {
		fail(err)
	}

	service := fbcache.NewSRM(guarded, cat).WithStore(st)
	mgr := fbcache.NewJobManager(service, fbcache.JobConfig{
		Workers:   3,
		Scheduler: fbcache.AgeLimitScheduler(fbcache.FCFSScheduler(), 8),
	})
	defer mgr.Close()

	var bytesRead atomic.Int64
	submit := func(name string, b fbcache.Bundle) <-chan fbcache.JobResult {
		done, err := mgr.Submit(fbcache.JobSpec{
			Bundle: b,
			Process: func() error {
				// The job really reads its staged inputs from disk.
				for _, f := range b {
					if cat.Size(f) > 6*fbcache.MB {
						continue // bypassed: not on the staging disk
					}
					rc, err := service.OpenStaged(f)
					if err != nil {
						return fmt.Errorf("%s: %w", name, err)
					}
					n, err := io.Copy(io.Discard, rc)
					rc.Close()
					if err != nil {
						return err
					}
					bytesRead.Add(n)
				}
				return nil
			},
		})
		if err != nil {
			fail(err)
		}
		return done
	}

	fmt.Println("submitting analysis jobs (3 workers, FCFS + age guard)...")
	var waits []<-chan fbcache.JobResult
	for i := 0; i < 6; i++ {
		waits = append(waits, submit("correlate", fbcache.NewBundle(events, tracks)))
		waits = append(waits, submit("calibrate", fbcache.NewBundle(tracks, calib)))
	}
	waits = append(waits, submit("export", fbcache.NewBundle(events, rawDump)))

	hits := 0
	for _, ch := range waits {
		res := <-ch
		if res.Err != nil {
			fail(res.Err)
		}
		if res.Hit {
			hits++
		}
	}

	snap := service.Stats()
	fmt.Printf("jobs completed    %d (%d bundle hits)\n", snap.Jobs, hits)
	fmt.Printf("byte miss ratio   %.4f\n", snap.ByteMissRatio)
	fmt.Printf("staging dir usage %v (cache accounting %v / %v)\n",
		st.DiskUsage(), snap.CacheUsed, snap.CacheCapacity)
	fmt.Printf("bytes read by jobs from staged files: %d\n", bytesRead.Load())
	if st.Contains(rawDump) {
		fail(fmt.Errorf("BUG: bypassed raw dump was cached"))
	}
	fmt.Println("raw-dump.bin was served pass-through and never touched the staging disk.")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "jobservice:", err)
	os.Exit(1)
}
