// Bit-sliced index queries (the paper's third motivating application, §1.1,
// after Wu et al. [15]): each attribute's value range is divided into bins
// and every bin's bitmap is stored in its own file. A range query ORs the
// bitmaps of the bins it touches and ANDs across attributes — so every
// query is a file-bundle that must be cache-resident simultaneously.
//
// Unlike a synthetic workload, this example builds a REAL bit-sliced index
// over simulated physics events, derives each stored query's file-bundle
// from the index itself, evaluates the queries (so the counts printed are
// true answers), and then compares how OptFileBundle and Landlord manage
// the staging cache for the same query stream.
//
//	go run ./examples/bitmap
package main

import (
	"fmt"
	"math/rand"

	"fbcache"
)

const (
	numEvents  = 200000
	cacheFrac  = 0.35 // cache holds ~35% of the index
	numQueries = 120
	arrivals   = 4000
)

func main() {
	rng := rand.New(rand.NewSource(15))

	// Build the index: six event attributes, binned.
	cat := fbcache.NewCatalog()
	ix := fbcache.NewBitmapIndex(numEvents, cat)
	attrs := []struct {
		name   string
		lo, hi float64
		bins   int
		dist   func() float64
	}{
		{"energy", 0, 500, 20, func() float64 { return rng.ExpFloat64() * 80 }},
		{"pt", 0, 100, 16, func() float64 { return rng.ExpFloat64() * 20 }},
		{"eta", -5, 5, 20, func() float64 { return rng.NormFloat64() * 1.5 }},
		{"phi", 0, 6.2832, 12, func() float64 { return rng.Float64() * 6.2832 }},
		{"ntracks", 0, 200, 10, func() float64 { return float64(rng.Intn(200)) }},
		{"centrality", 0, 1, 10, func() float64 { return rng.Float64() }},
	}
	ids := make([]int, len(attrs))
	for i, a := range attrs {
		ids[i] = ix.AddAttribute(a.name, a.lo, a.hi, a.bins)
	}
	for row := 0; row < numEvents; row++ {
		for i, a := range attrs {
			ix.SetValue(row, ids[i], a.dist())
		}
	}
	ix.Finalize()

	cacheSize := fbcache.Size(float64(cat.TotalSize()) * cacheFrac)
	fmt.Printf("bit-sliced index: %d events, %d attributes, %d bin files (%v); cache %v\n",
		numEvents, len(attrs), cat.Len(), cat.TotalSize(), cacheSize)

	// Stored queries: physics cuts touching 1-3 attributes.
	type storedQuery struct {
		ranges []fbcache.QueryRange
		files  fbcache.Bundle
	}
	queries := make([]storedQuery, numQueries)
	for q := range queries {
		n := 1 + rng.Intn(3)
		perm := rng.Perm(len(attrs))[:n]
		var ranges []fbcache.QueryRange
		for _, ai := range perm {
			a := attrs[ai]
			width := (a.hi - a.lo) / float64(a.bins)
			loBin := rng.Intn(a.bins - 2)
			wBins := 1 + rng.Intn(3)
			ranges = append(ranges, fbcache.QueryRange{
				Attr: ids[ai],
				Lo:   a.lo + float64(loBin)*width,
				Hi:   a.lo + float64(loBin+wBins)*width,
			})
		}
		files, err := ix.QueryFiles(ranges)
		if err != nil {
			panic(err)
		}
		queries[q] = storedQuery{ranges: ranges, files: files}
	}

	// Show three real answers — the index genuinely evaluates.
	fmt.Println("\nsample query answers (query -> matching events):")
	for q := 0; q < 3; q++ {
		bm, err := ix.Evaluate(queries[q].ranges)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  q%d over %d bin files -> %d events\n",
			q, queries[q].files.Len(), bm.Count())
	}

	// Zipf-popular query stream against the staging cache.
	zipfCum := make([]float64, numQueries)
	total := 0.0
	for i := range zipfCum {
		total += 1 / float64(i+1)
		zipfCum[i] = total
	}
	jobs := make([]fbcache.Bundle, arrivals)
	for i := range jobs {
		u := rng.Float64() * total
		j := numQueries - 1
		for k, c := range zipfCum {
			if u <= c {
				j = k
				break
			}
		}
		jobs[i] = queries[j].files
	}

	fmt.Printf("\n%d query arrivals (Zipf popularity over %d stored queries):\n\n", arrivals, numQueries)
	fmt.Printf("%-15s %-10s %-11s %-14s\n", "policy", "hit-ratio", "byte-miss", "data/query")
	for _, p := range []fbcache.Policy{
		fbcache.NewCache(cacheSize, cat.SizeFunc()),
		fbcache.NewLandlord(cacheSize, cat.SizeFunc()),
		fbcache.NewLRU(cacheSize, cat.SizeFunc()),
	} {
		hits := 0
		var reqBytes, missBytes fbcache.Size
		for _, b := range jobs {
			res := p.Admit(b)
			if res.Hit {
				hits++
			}
			reqBytes += res.BytesRequested
			missBytes += res.BytesLoaded
		}
		fmt.Printf("%-15s %-10.4f %-11.4f %-14v\n",
			p.Name(), float64(hits)/float64(arrivals),
			float64(missBytes)/float64(reqBytes),
			fbcache.Size(int64(missBytes)/int64(arrivals)))
	}
	fmt.Println("\nthe hot queries' complete bin sets stay resident under OptFileBundle;")
	fmt.Println("per-file policies fracture them and re-stage bins on every arrival.")
}
