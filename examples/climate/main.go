// Climate-model analysis (the paper's second motivating application, §1.1
// and Fig. 1): a simulation writes one file per (variable, time-chunk) —
// temperature, humidity, and the three wind components, vertically
// partitioned across time steps. Visualization and correlation jobs need
// several variables for the same period in the cache at once.
//
// This example exercises the concurrent SRM service layer: a team of
// analysts (goroutines) stages variable bundles through one shared SRM,
// which pins each bundle while its job "renders" and replaces cache content
// with OptFileBundle between jobs.
//
//	go run ./examples/climate
package main

import (
	"fmt"
	"math/rand"
	"os"
	"sync"

	"fbcache"
)

const (
	years       = 10 // simulated decades, one time-chunk per year
	cacheSize   = 24 * fbcache.GB
	numAnalysts = 6
	jobsPerUser = 150
)

var variables = []string{"temperature", "humidity", "wind-u", "wind-v", "wind-w", "pressure", "salinity"}

// studies are the recurring analysis patterns; weights make storm-track
// studies (all wind components + pressure) the hot topic.
var studies = []struct {
	name   string
	vars   []int
	weight int
}{
	{"storm-tracks", []int{2, 3, 4, 5}, 6},
	{"heat-budget", []int{0, 1}, 4},
	{"monsoon", []int{0, 1, 2, 3}, 3},
	{"ocean-mixing", []int{5, 6}, 2},
	{"full-state", []int{0, 1, 2, 3, 4, 5, 6}, 1},
}

func main() {
	cat := fbcache.NewCatalog()
	fileOf := make([][]fbcache.FileID, years)
	rng := rand.New(rand.NewSource(7))
	for y := 0; y < years; y++ {
		fileOf[y] = make([]fbcache.FileID, len(variables))
		for v, name := range variables {
			size := fbcache.Size(400+rng.Intn(800)) * fbcache.MB
			fileOf[y][v] = cat.Add(fmt.Sprintf("y%02d/%s.nc", y, name), size)
		}
	}

	service := fbcache.NewSRM(fbcache.NewCache(cacheSize, cat.SizeFunc()), cat)

	fmt.Printf("climate SRM: %v cache over %d years x %d variables (%v archived)\n",
		fbcache.Size(cacheSize), years, len(variables), cat.TotalSize())
	fmt.Printf("%d analysts x %d jobs each, staged concurrently\n\n", numAnalysts, jobsPerUser)

	// Cumulative study weights for sampling.
	totalWeight := 0
	for _, s := range studies {
		totalWeight += s.weight
	}

	var wg sync.WaitGroup
	for a := 0; a < numAnalysts; a++ {
		wg.Add(1)
		go func(analyst int) {
			defer wg.Done()
			arng := rand.New(rand.NewSource(int64(100 + analyst)))
			for j := 0; j < jobsPerUser; j++ {
				// Pick a study by weight, and a year with recency bias
				// (recent years analysed most).
				pick := arng.Intn(totalWeight)
				var study int
				for i, s := range studies {
					if pick < s.weight {
						study = i
						break
					}
					pick -= s.weight
				}
				year := years - 1 - min(arng.Intn(years), arng.Intn(years))
				ids := make([]fbcache.FileID, 0, len(studies[study].vars))
				for _, v := range studies[study].vars {
					ids = append(ids, fileOf[year][v])
				}
				release, _, err := service.Stage(fbcache.NewBundle(ids...))
				if err != nil {
					fmt.Fprintf(os.Stderr, "analyst %d: %v\n", analyst, err)
					return
				}
				// "Process" the staged, pinned bundle (correlate, render...).
				release()
			}
		}(a)
	}
	wg.Wait()

	st := service.Stats()
	fmt.Printf("policy            %s\n", st.Policy)
	fmt.Printf("jobs serviced     %d\n", st.Jobs)
	fmt.Printf("request hit ratio %.4f\n", st.HitRatio)
	fmt.Printf("byte miss ratio   %.4f\n", st.ByteMissRatio)
	fmt.Printf("data staged       %v\n", st.BytesLoaded)
	fmt.Printf("cache in use      %v / %v\n", st.CacheUsed, st.CacheCapacity)
	if st.ActiveJobs != 0 || st.PinnedBytes != 0 {
		fmt.Fprintln(os.Stderr, "BUG: pins leaked")
		os.Exit(1)
	}
	fmt.Println("\nthe storm-track bundle (wind-u,v,w + pressure of recent years) stays resident —")
	fmt.Println("a per-file policy would keep popular variables of MIXED years and miss the bundle.")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
