// Package store gives the staging cache real bytes: a directory-backed
// object store that materializes staged files on local disk, verifies them
// with CRC-32 checksums, and deletes them on eviction. The policies and
// simulators in this repository track residency only; an SRM deployment
// wires a Store underneath so that "file f is resident" means an actual,
// checksummed file exists under the cache directory — the staging disk of
// §1.1 made concrete.
//
// Sources abstract where bytes come from (an MSS mover, HTTP, another
// site); FetchFunc adapts any reader-producing function.
package store

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"fbcache/internal/bundle"
)

// Source produces the content of a file, e.g. by reading from a mass
// storage system.
type Source interface {
	// Open returns a reader for the file's content. The caller closes it.
	Open(f bundle.FileID) (io.ReadCloser, error)
}

// FetchFunc adapts a function to the Source interface.
type FetchFunc func(f bundle.FileID) (io.ReadCloser, error)

// Open implements Source.
func (fn FetchFunc) Open(f bundle.FileID) (io.ReadCloser, error) { return fn(f) }

// Store is a directory-backed object store. It is safe for concurrent use;
// concurrent stages of the same file are serialized per file.
type Store struct {
	dir    string
	source Source

	mu    sync.Mutex
	files map[bundle.FileID]*entry //fbvet:guardedby mu
}

type entry struct {
	mu       sync.Mutex  // serializes stage/remove of one file
	path     string      //fbvet:guardedby mu
	size     bundle.Size //fbvet:guardedby mu
	checksum uint32      //fbvet:guardedby mu
	present  bool        //fbvet:guardedby mu
}

// New creates (or reuses) a store rooted at dir, fetching misses from
// source.
func New(dir string, source Source) (*Store, error) {
	if source == nil {
		return nil, fmt.Errorf("store: nil source")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir, source: source, files: make(map[bundle.FileID]*entry)}, nil
}

// Dir reports the cache directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) entryFor(f bundle.FileID) *entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.files[f]
	if !ok {
		e = &entry{path: filepath.Join(s.dir, fmt.Sprintf("f%08d.dat", f))}
		s.files[f] = e
	}
	return e
}

// Stage materializes f in the cache directory (idempotent) and returns its
// size and checksum. Content is written to a temp file and renamed, so
// crashes never leave a half-staged file under the final name.
func (s *Store) Stage(f bundle.FileID) (bundle.Size, uint32, error) {
	e := s.entryFor(f)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.present {
		return e.size, e.checksum, nil
	}
	rc, err := s.source.Open(f)
	if err != nil {
		return 0, 0, fmt.Errorf("store: open source for %d: %w", f, err)
	}
	defer rc.Close()

	tmp, err := os.CreateTemp(s.dir, "staging-*")
	if err != nil {
		return 0, 0, fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename

	h := crc32.NewIEEE()
	n, err := io.Copy(io.MultiWriter(tmp, h), rc)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, 0, fmt.Errorf("store: stage %d: %w", f, err)
	}
	if err := os.Rename(tmp.Name(), e.path); err != nil {
		return 0, 0, fmt.Errorf("store: %w", err)
	}
	e.size = bundle.Size(n)
	e.checksum = h.Sum32()
	e.present = true
	return e.size, e.checksum, nil
}

// StageBundle stages every file of b, returning the total bytes written
// (files already present cost nothing).
func (s *Store) StageBundle(b bundle.Bundle) (bundle.Size, error) {
	var total bundle.Size
	for _, f := range b {
		before := s.Contains(f)
		size, _, err := s.Stage(f)
		if err != nil {
			return total, err
		}
		if !before {
			total += size
		}
	}
	return total, nil
}

// Contains reports whether f is materialized.
func (s *Store) Contains(f bundle.FileID) bool {
	e := s.entryFor(f)
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.present
}

// Open returns a reader over the staged content of f.
func (s *Store) Open(f bundle.FileID) (io.ReadCloser, error) {
	e := s.entryFor(f)
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.present {
		return nil, fmt.Errorf("store: file %d not staged", f)
	}
	return os.Open(e.path)
}

// Verify re-reads f from disk and checks its CRC-32 against the stage-time
// checksum, detecting bit rot or external modification.
func (s *Store) Verify(f bundle.FileID) error {
	e := s.entryFor(f)
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.present {
		return fmt.Errorf("store: file %d not staged", f)
	}
	rc, err := os.Open(e.path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer rc.Close()
	h := crc32.NewIEEE()
	n, err := io.Copy(h, rc)
	if err != nil {
		return fmt.Errorf("store: verify %d: %w", f, err)
	}
	if bundle.Size(n) != e.size || h.Sum32() != e.checksum {
		return fmt.Errorf("store: file %d corrupted (size %d/%d, crc %08x/%08x)",
			f, n, e.size, h.Sum32(), e.checksum)
	}
	return nil
}

// Remove deletes f's bytes (eviction). Removing an absent file is a no-op.
func (s *Store) Remove(f bundle.FileID) error {
	e := s.entryFor(f)
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.present {
		return nil
	}
	if err := os.Remove(e.path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	e.present = false
	return nil
}

// DiskUsage sums the sizes of materialized files.
func (s *Store) DiskUsage() bundle.Size {
	s.mu.Lock()
	entries := make([]*entry, 0, len(s.files))
	for _, e := range s.files {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	var total bundle.Size
	for _, e := range entries {
		e.mu.Lock()
		if e.present {
			total += e.size
		}
		e.mu.Unlock()
	}
	return total
}
