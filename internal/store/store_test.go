package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"testing"

	"fbcache/internal/bundle"
)

// fakeSource serves deterministic content per file.
func fakeSource() Source {
	return FetchFunc(func(f bundle.FileID) (io.ReadCloser, error) {
		content := strings.Repeat(fmt.Sprintf("file-%d|", f), int(f)+1)
		return io.NopCloser(bytes.NewReader([]byte(content))), nil
	})
}

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := New(t.TempDir(), fakeSource())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStageAndOpen(t *testing.T) {
	s := newStore(t)
	size, sum, err := s.Stage(3)
	if err != nil {
		t.Fatal(err)
	}
	if size <= 0 || sum == 0 {
		t.Errorf("size=%d sum=%x", size, sum)
	}
	if !s.Contains(3) {
		t.Error("not contained after stage")
	}
	rc, err := s.Open(3)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "file-3|") {
		t.Errorf("content = %q", data)
	}
	if bundle.Size(len(data)) != size {
		t.Errorf("len = %d, staged size %d", len(data), size)
	}
}

func TestStageIdempotent(t *testing.T) {
	s := newStore(t)
	s1, c1, err := s.Stage(2)
	if err != nil {
		t.Fatal(err)
	}
	s2, c2, err := s.Stage(2)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 || c1 != c2 {
		t.Errorf("restage changed identity: %d/%x vs %d/%x", s1, c1, s2, c2)
	}
}

func TestStageBundleCountsOnlyNewBytes(t *testing.T) {
	s := newStore(t)
	if _, _, err := s.Stage(1); err != nil {
		t.Fatal(err)
	}
	total, err := s.StageBundle(bundle.New(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	size2, _, _ := s.Stage(2)
	if total != size2 {
		t.Errorf("total = %d, want only file 2's %d", total, size2)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	s := newStore(t)
	if _, _, err := s.Stage(4); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(4); err != nil {
		t.Fatalf("fresh file failed verify: %v", err)
	}
	// Corrupt the on-disk bytes behind the store's back.
	path := s.entryFor(4).path
	if err := os.WriteFile(path, []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(4); err == nil {
		t.Error("corruption not detected")
	}
}

func TestRemove(t *testing.T) {
	s := newStore(t)
	if _, _, err := s.Stage(5); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(5); err != nil {
		t.Fatal(err)
	}
	if s.Contains(5) {
		t.Error("contained after remove")
	}
	if _, err := s.Open(5); err == nil {
		t.Error("opened removed file")
	}
	if err := s.Remove(5); err != nil { // idempotent
		t.Errorf("double remove: %v", err)
	}
	// Restaging works.
	if _, _, err := s.Stage(5); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(5); err != nil {
		t.Error(err)
	}
}

func TestDiskUsage(t *testing.T) {
	s := newStore(t)
	if s.DiskUsage() != 0 {
		t.Error("fresh store has usage")
	}
	var want bundle.Size
	for f := bundle.FileID(1); f <= 3; f++ {
		size, _, err := s.Stage(f)
		if err != nil {
			t.Fatal(err)
		}
		want += size
	}
	if got := s.DiskUsage(); got != want {
		t.Errorf("DiskUsage = %d, want %d", got, want)
	}
	s.Remove(2)
	if got := s.DiskUsage(); got >= want {
		t.Errorf("DiskUsage = %d after remove", got)
	}
}

func TestSourceErrorPropagates(t *testing.T) {
	boom := errors.New("tape drive on fire")
	s, err := New(t.TempDir(), FetchFunc(func(bundle.FileID) (io.ReadCloser, error) {
		return nil, boom
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Stage(1); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	if s.Contains(1) {
		t.Error("failed stage left residue")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(t.TempDir(), nil); err == nil {
		t.Error("nil source accepted")
	}
}

func TestConcurrentStaging(t *testing.T) {
	s := newStore(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				f := bundle.FileID(i % 5)
				if _, _, err := s.Stage(f); err != nil {
					t.Errorf("stage: %v", err)
					return
				}
				if err := s.Verify(f); err != nil {
					t.Errorf("verify: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for f := bundle.FileID(0); f < 5; f++ {
		if !s.Contains(f) {
			t.Errorf("file %d missing", f)
		}
	}
}
