package store

import (
	"sync"
	"testing"

	"fbcache/internal/bundle"
)

// TestConcurrentStageRemove drives overlapping Stage / Remove / Contains /
// Verify / DiskUsage traffic from many goroutines. The assertions are mild;
// the point is the interleavings under -race (per-entry staging locks vs
// the store-wide bookkeeping mutex).
func TestConcurrentStageRemove(t *testing.T) {
	s := newStore(t)

	const workers = 8
	const iters = 30
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				f := bundle.FileID((g + i) % 5)
				switch i % 4 {
				case 0:
					if _, _, err := s.Stage(f); err != nil {
						t.Errorf("Stage(%d): %v", f, err)
						return
					}
				case 1:
					if s.Contains(f) {
						// Verify may race a Remove; losing the file between
						// the check and the hash is a legal interleaving.
						_ = s.Verify(f)
					}
				case 2:
					_ = s.Remove(f)
				case 3:
					if du := s.DiskUsage(); du < 0 {
						t.Errorf("negative disk usage %d", du)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Quiesced store must be internally consistent: restage everything and
	// check the accounting adds up.
	var want bundle.Size
	for f := bundle.FileID(0); f < 5; f++ {
		size, _, err := s.Stage(f)
		if err != nil {
			t.Fatalf("final Stage(%d): %v", f, err)
		}
		want += size
	}
	if got := s.DiskUsage(); got != want {
		t.Errorf("disk usage %d after quiesce, want %d", got, want)
	}
}

// TestConcurrentStageBundleSameFiles stages the same bundle from many
// goroutines at once; every staging must succeed and the file must land
// exactly once.
func TestConcurrentStageBundleSameFiles(t *testing.T) {
	s := newStore(t)
	b := bundle.New(1, 2, 3)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.StageBundle(b); err != nil {
				t.Errorf("StageBundle: %v", err)
			}
		}()
	}
	wg.Wait()

	for _, f := range b {
		if !s.Contains(f) {
			t.Errorf("file %d missing after concurrent staging", f)
		}
		if err := s.Verify(f); err != nil {
			t.Errorf("Verify(%d): %v", f, err)
		}
	}
}
