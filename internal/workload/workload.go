// Package workload implements the paper's synthetic workload model (§5.1):
// a pool of files whose sizes are uniform between a minimum (1MB in the
// paper) and a percentage of the cache size, a pool of candidate requests
// each bundling a random set of files that fits in the cache, and a job
// arrival sequence drawn from the pool under a Uniform or Zipf popularity
// law.
//
// Every stochastic choice is driven by the Spec's seed, so a Spec is a
// complete, reproducible description of an experiment's input.
package workload

import (
	"errors"
	"fmt"
	"math/rand"

	"fbcache/internal/bundle"
	"fbcache/internal/stats"
)

// Popularity selects the request popularity law.
type Popularity int

const (
	// Uniform makes every pooled request equally likely (the paper's
	// "purely random distribution").
	Uniform Popularity = iota
	// Zipf assigns the i-th most popular request probability ∝ 1/i^S.
	Zipf
)

func (p Popularity) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case Zipf:
		return "zipf"
	}
	return fmt.Sprintf("Popularity(%d)", int(p))
}

// Spec describes a synthetic workload. The zero value is not valid; use
// DefaultSpec as a starting point.
type Spec struct {
	// Seed drives all random choices.
	Seed int64
	// CacheSize is the reference cache capacity files are sized against.
	CacheSize bundle.Size
	// NumFiles is the size of the file pool.
	NumFiles int
	// MinFileSize is the smallest file (paper: 1MB).
	MinFileSize bundle.Size
	// MaxFilePct caps file sizes at this fraction of CacheSize
	// (paper: 1% to 10%).
	MaxFilePct float64
	// NumRequests is the size of the request pool.
	NumRequests int
	// MaxBundleFiles caps the number of files per request; each request
	// draws its bundle size uniformly from [1, MaxBundleFiles].
	MaxBundleFiles int
	// MaxBundleFrac caps a request's total bytes at this fraction of
	// CacheSize (paper: total requested size smaller than the cache).
	MaxBundleFrac float64
	// Popularity selects Uniform or Zipf job sampling.
	Popularity Popularity
	// ZipfS is the Zipf exponent (paper: 1).
	ZipfS float64
	// Jobs is the number of job arrivals to generate (paper: 10000).
	Jobs int
	// Clusters, when > 0, partitions the file pool into this many disjoint
	// clusters and draws each request's files within a single cluster —
	// modelling the file sharing real vertical partitioning produces
	// (analyses over the same dataset reuse the same attribute files). The
	// paper's generator (Clusters = 0) picks files uniformly from the whole
	// pool, which understates sharing.
	Clusters int
}

// DefaultSpec returns the baseline configuration used across experiments:
// a 10GB cache, 1MB minimum files capped at 5% of the cache, bundles of at
// most 6 files filling at most 50% of the cache, 10000 jobs.
func DefaultSpec() Spec {
	return Spec{
		Seed:           1,
		CacheSize:      10 * bundle.GB,
		NumFiles:       400,
		MinFileSize:    bundle.MB,
		MaxFilePct:     0.05,
		NumRequests:    200,
		MaxBundleFiles: 6,
		MaxBundleFrac:  0.5,
		Popularity:     Uniform,
		ZipfS:          1,
		Jobs:           10000,
	}
}

// Validate reports the first problem with the spec, or nil.
func (s Spec) Validate() error {
	switch {
	case s.CacheSize <= 0:
		return errors.New("workload: CacheSize must be positive")
	case s.NumFiles <= 0:
		return errors.New("workload: NumFiles must be positive")
	case s.MinFileSize <= 0:
		return errors.New("workload: MinFileSize must be positive")
	case s.MaxFilePct <= 0 || s.MaxFilePct > 1:
		return errors.New("workload: MaxFilePct must be in (0,1]")
	case bundle.Size(s.MaxFilePct*float64(s.CacheSize)) < s.MinFileSize:
		return errors.New("workload: MaxFilePct*CacheSize below MinFileSize")
	case s.NumRequests <= 0:
		return errors.New("workload: NumRequests must be positive")
	case s.MaxBundleFiles <= 0:
		return errors.New("workload: MaxBundleFiles must be positive")
	case s.MaxBundleFrac <= 0 || s.MaxBundleFrac > 1:
		return errors.New("workload: MaxBundleFrac must be in (0,1]")
	case s.Popularity == Zipf && s.ZipfS < 0:
		return errors.New("workload: ZipfS must be >= 0")
	case s.Jobs < 0:
		return errors.New("workload: Jobs must be >= 0")
	case s.Clusters < 0 || s.Clusters > s.NumFiles:
		return errors.New("workload: Clusters must be in [0, NumFiles]")
	}
	return nil
}

// Workload is a generated workload: the file catalog, the request pool and
// the job arrival sequence (indices into Requests).
type Workload struct {
	Spec     Spec
	Catalog  *bundle.Catalog
	Requests []bundle.Bundle
	Jobs     []int
}

// Generate builds a workload from the spec.
func Generate(spec Spec) (*Workload, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	cat := bundle.NewCatalog()
	maxFile := bundle.Size(spec.MaxFilePct * float64(spec.CacheSize))
	for i := 0; i < spec.NumFiles; i++ {
		span := int64(maxFile - spec.MinFileSize)
		size := spec.MinFileSize
		if span > 0 {
			size += bundle.Size(rng.Int63n(span + 1))
		}
		cat.AddAnonymous(size)
	}
	sizeOf := cat.SizeFunc()

	budget := bundle.Size(spec.MaxBundleFrac * float64(spec.CacheSize))
	requests := make([]bundle.Bundle, 0, spec.NumRequests)
	seen := make(map[string]bool, spec.NumRequests)
	const maxAttempts = 64
	for len(requests) < spec.NumRequests {
		b, ok := genBundle(rng, spec, sizeOf, budget)
		if !ok {
			return nil, fmt.Errorf("workload: cannot build a bundle within %v", budget)
		}
		key := b.Key()
		if seen[key] {
			// Retry a bounded number of times, then accept duplicates — tiny
			// pools (e.g. NumFiles=2) cannot yield NumRequests distinct sets.
			dup := 0
			for seen[key] && dup < maxAttempts {
				b, ok = genBundle(rng, spec, sizeOf, budget)
				if !ok {
					return nil, fmt.Errorf("workload: cannot build a bundle within %v", budget)
				}
				key = b.Key()
				dup++
			}
		}
		seen[key] = true
		requests = append(requests, b)
	}

	var sampler stats.Sampler
	switch spec.Popularity {
	case Zipf:
		sampler = stats.NewZipf(rng, len(requests), spec.ZipfS)
	default:
		sampler = stats.NewUniform(rng, len(requests))
	}
	jobs := make([]int, spec.Jobs)
	for i := range jobs {
		jobs[i] = sampler.Next()
	}

	return &Workload{Spec: spec, Catalog: cat, Requests: requests, Jobs: jobs}, nil
}

// genBundle draws one candidate bundle that fits the byte budget. With
// Clusters > 0 the files come from one randomly chosen cluster (files are
// assigned to clusters round-robin by ID).
func genBundle(rng *rand.Rand, spec Spec, sizeOf bundle.SizeFunc, budget bundle.Size) (bundle.Bundle, bool) {
	n := 1 + rng.Intn(spec.MaxBundleFiles)
	drawFile := func() bundle.FileID {
		return bundle.FileID(rng.Intn(spec.NumFiles))
	}
	if spec.Clusters > 0 {
		cluster := rng.Intn(spec.Clusters)
		clusterSize := (spec.NumFiles + spec.Clusters - 1) / spec.Clusters
		if n > clusterSize {
			n = clusterSize
		}
		drawFile = func() bundle.FileID {
			// Files of cluster c are ids with id % Clusters == c.
			k := rng.Intn(clusterSize)
			id := k*spec.Clusters + cluster
			if id >= spec.NumFiles {
				id = cluster
			}
			return bundle.FileID(id)
		}
	}
	picked := make(map[bundle.FileID]bool, n)
	var ids []bundle.FileID
	var total bundle.Size
	for attempts := 0; len(ids) < n && attempts < 16*n; attempts++ {
		f := drawFile()
		if picked[f] {
			continue
		}
		if total+sizeOf(f) > budget {
			continue
		}
		picked[f] = true
		ids = append(ids, f)
		total += sizeOf(f)
	}
	if len(ids) == 0 {
		return nil, false
	}
	return bundle.FromSlice(ids), true
}

// JobBundle returns the bundle of the i-th job arrival.
func (w *Workload) JobBundle(i int) bundle.Bundle { return w.Requests[w.Jobs[i]] }

// MeanRequestBytes reports the mean total size of the pooled requests.
func (w *Workload) MeanRequestBytes() bundle.Size {
	if len(w.Requests) == 0 {
		return 0
	}
	var total bundle.Size
	sizeOf := w.Catalog.SizeFunc()
	for _, r := range w.Requests {
		total += r.TotalSize(sizeOf)
	}
	return total / bundle.Size(len(w.Requests))
}

// CacheSizeInRequests reports the cache capacity divided by the mean request
// size — the paper's unit for reporting cache sizes (§5: "we measure cache
// sizes by the number of requests that can be accommodated in the cache").
func (w *Workload) CacheSizeInRequests() float64 {
	mean := w.MeanRequestBytes()
	if mean == 0 {
		return 0
	}
	return float64(w.Spec.CacheSize) / float64(mean)
}
