package workload

import (
	"fmt"
	"io"
	"sort"

	"fbcache/internal/bundle"
	"fbcache/internal/stats"
)

// Description summarizes a workload — the §5.1/§5.2 parameters as actually
// realized, for trace inspection (cmd/traceinfo) and experiment logs.
type Description struct {
	Files      int
	TotalBytes bundle.Size
	FileSize   stats.Summary

	Requests    int
	BundleFiles stats.Summary
	BundleBytes stats.Summary
	MaxDegree   int // most requests sharing one file (Theorem 4.1's d)
	SharedFiles int // files used by >= 2 pooled requests

	Jobs          int
	DistinctJobs  int     // distinct requests actually referenced
	TopShare      float64 // fraction of jobs going to the most popular request
	Top10Share    float64 // fraction going to the 10 most popular
	CacheRequests float64 // reference cache size in mean requests
}

// Describe computes summary statistics of w.
func Describe(w *Workload) Description {
	var d Description
	d.Files = w.Catalog.Len()
	for _, f := range w.Catalog.Files() {
		d.TotalBytes += f.Size
		d.FileSize.Add(float64(f.Size))
	}

	d.Requests = len(w.Requests)
	sizeOf := w.Catalog.SizeFunc()
	degree := make(map[bundle.FileID]int)
	for _, r := range w.Requests {
		d.BundleFiles.Add(float64(r.Len()))
		d.BundleBytes.Add(float64(r.TotalSize(sizeOf)))
		for _, f := range r {
			degree[f]++
		}
	}
	for _, deg := range degree {
		if deg > d.MaxDegree {
			d.MaxDegree = deg
		}
		if deg >= 2 {
			d.SharedFiles++
		}
	}

	d.Jobs = len(w.Jobs)
	counts := make(map[int]int)
	for _, j := range w.Jobs {
		counts[j]++
	}
	d.DistinctJobs = len(counts)
	if d.Jobs > 0 {
		sorted := make([]int, 0, len(counts))
		for _, c := range counts {
			sorted = append(sorted, c)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
		d.TopShare = float64(sorted[0]) / float64(d.Jobs)
		top10 := 0
		for i := 0; i < len(sorted) && i < 10; i++ {
			top10 += sorted[i]
		}
		d.Top10Share = float64(top10) / float64(d.Jobs)
	}
	d.CacheRequests = w.CacheSizeInRequests()
	return d
}

// Render writes the description as aligned text.
func (d Description) Render(w io.Writer) {
	fmt.Fprintf(w, "files              %d (%v total)\n", d.Files, d.TotalBytes)
	fmt.Fprintf(w, "file size          mean %v, min %v, max %v\n",
		bundle.Size(d.FileSize.Mean()), bundle.Size(d.FileSize.Min()), bundle.Size(d.FileSize.Max()))
	fmt.Fprintf(w, "pooled requests    %d\n", d.Requests)
	fmt.Fprintf(w, "bundle size        mean %.2f files / %v\n",
		d.BundleFiles.Mean(), bundle.Size(d.BundleBytes.Mean()))
	fmt.Fprintf(w, "file sharing       max degree d=%d, %d files shared by >=2 requests\n",
		d.MaxDegree, d.SharedFiles)
	fmt.Fprintf(w, "jobs               %d over %d distinct requests\n", d.Jobs, d.DistinctJobs)
	fmt.Fprintf(w, "popularity         top request %.1f%%, top-10 %.1f%% of jobs\n",
		100*d.TopShare, 100*d.Top10Share)
	fmt.Fprintf(w, "reference cache    ~%.1f mean requests\n", d.CacheRequests)
}
