package workload

import (
	"strings"
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/stats"
)

func TestGenerateDefaultSpec(t *testing.T) {
	w, err := Generate(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	spec := w.Spec
	if w.Catalog.Len() != spec.NumFiles {
		t.Errorf("catalog has %d files, want %d", w.Catalog.Len(), spec.NumFiles)
	}
	if len(w.Requests) != spec.NumRequests {
		t.Errorf("%d requests, want %d", len(w.Requests), spec.NumRequests)
	}
	if len(w.Jobs) != spec.Jobs {
		t.Errorf("%d jobs, want %d", len(w.Jobs), spec.Jobs)
	}
	sizeOf := w.Catalog.SizeFunc()
	maxFile := bundle.Size(spec.MaxFilePct * float64(spec.CacheSize))
	budget := bundle.Size(spec.MaxBundleFrac * float64(spec.CacheSize))
	for _, f := range w.Catalog.Files() {
		if f.Size < spec.MinFileSize || f.Size > maxFile {
			t.Fatalf("file size %v outside [%v,%v]", f.Size, spec.MinFileSize, maxFile)
		}
	}
	for i, r := range w.Requests {
		if r.Len() == 0 || r.Len() > spec.MaxBundleFiles {
			t.Fatalf("request %d has %d files", i, r.Len())
		}
		if ts := r.TotalSize(sizeOf); ts > budget {
			t.Fatalf("request %d totals %v > budget %v", i, ts, budget)
		}
	}
	for i, j := range w.Jobs {
		if j < 0 || j >= len(w.Requests) {
			t.Fatalf("job %d references request %d", i, j)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := DefaultSpec()
	spec.Jobs = 500
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Requests {
		if !a.Requests[i].Equal(b.Requests[i]) {
			t.Fatalf("request %d differs", i)
		}
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs", i)
		}
	}
	// A different seed must change something.
	spec.Seed = 2
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Jobs {
		if a.Jobs[i] != c.Jobs[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical job sequences")
	}
}

func TestZipfJobsSkewed(t *testing.T) {
	spec := DefaultSpec()
	spec.Popularity = Zipf
	spec.Jobs = 20000
	w, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(w.Requests))
	for _, j := range w.Jobs {
		counts[j]++
	}
	// Rank 0 should dominate the tail decisively under 1/i.
	if counts[0] <= counts[len(counts)-1]*3 {
		t.Errorf("rank 0 count %d not clearly above tail %d", counts[0], counts[len(counts)-1])
	}
	// Uniform for contrast: max/min ratio should be modest.
	spec.Popularity = Uniform
	w2, _ := Generate(spec)
	counts2 := make([]int64, len(w2.Requests))
	for _, j := range w2.Jobs {
		counts2[j]++
	}
	probs := make([]float64, len(counts2))
	for i := range probs {
		probs[i] = 1 / float64(len(counts2))
	}
	// chi-square df=199; 99.99th pct ≈ 292. Allow slack.
	if chi2 := stats.ChiSquare(counts2, probs); chi2 > 350 {
		t.Errorf("uniform jobs chi-square = %v", chi2)
	}
}

func TestSpecValidation(t *testing.T) {
	base := DefaultSpec()
	mutations := map[string]func(*Spec){
		"cache":       func(s *Spec) { s.CacheSize = 0 },
		"files":       func(s *Spec) { s.NumFiles = 0 },
		"minsize":     func(s *Spec) { s.MinFileSize = 0 },
		"pct-zero":    func(s *Spec) { s.MaxFilePct = 0 },
		"pct-big":     func(s *Spec) { s.MaxFilePct = 1.5 },
		"pct-tiny":    func(s *Spec) { s.MaxFilePct = 1e-9 },
		"requests":    func(s *Spec) { s.NumRequests = 0 },
		"bundlefiles": func(s *Spec) { s.MaxBundleFiles = 0 },
		"bundlefrac":  func(s *Spec) { s.MaxBundleFrac = 0 },
		"zipfs":       func(s *Spec) { s.Popularity = Zipf; s.ZipfS = -1 },
		"jobs":        func(s *Spec) { s.Jobs = -1 },
	}
	for name, mut := range mutations {
		s := base
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad spec", name)
		}
		if _, err := Generate(s); err == nil {
			t.Errorf("%s: Generate accepted bad spec", name)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("default spec invalid: %v", err)
	}
}

func TestTinyPoolsStillGenerate(t *testing.T) {
	spec := DefaultSpec()
	spec.NumFiles = 2
	spec.NumRequests = 10 // forces duplicate bundles
	spec.MaxBundleFiles = 2
	spec.Jobs = 50
	w, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Requests) != 10 {
		t.Errorf("requests = %d", len(w.Requests))
	}
}

func TestMeanRequestBytesAndCacheSizeInRequests(t *testing.T) {
	spec := DefaultSpec()
	spec.Jobs = 10
	w, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	mean := w.MeanRequestBytes()
	if mean <= 0 {
		t.Fatalf("mean = %v", mean)
	}
	csr := w.CacheSizeInRequests()
	want := float64(spec.CacheSize) / float64(mean)
	if csr != want {
		t.Errorf("CacheSizeInRequests = %v, want %v", csr, want)
	}
	if csr < 1 {
		t.Errorf("default spec cache holds %v requests — too small for experiments", csr)
	}
}

func TestJobBundle(t *testing.T) {
	spec := DefaultSpec()
	spec.Jobs = 5
	w, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Jobs {
		if !w.JobBundle(i).Equal(w.Requests[w.Jobs[i]]) {
			t.Fatalf("JobBundle(%d) mismatch", i)
		}
	}
}

func TestPopularityString(t *testing.T) {
	if Uniform.String() != "uniform" || Zipf.String() != "zipf" {
		t.Error("Popularity.String broken")
	}
	if Popularity(5).String() != "Popularity(5)" {
		t.Error("unknown Popularity.String broken")
	}
}

func BenchmarkGenerate(b *testing.B) {
	spec := DefaultSpec()
	spec.Jobs = 1000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(spec); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDescribe(t *testing.T) {
	spec := DefaultSpec()
	spec.Jobs = 1000
	spec.Popularity = Zipf
	w, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	d := Describe(w)
	if d.Files != spec.NumFiles || d.Requests != spec.NumRequests || d.Jobs != 1000 {
		t.Errorf("counts: %+v", d)
	}
	if d.TotalBytes != w.Catalog.TotalSize() {
		t.Errorf("TotalBytes = %v", d.TotalBytes)
	}
	if d.BundleFiles.Mean() < 1 || d.BundleFiles.Mean() > float64(spec.MaxBundleFiles) {
		t.Errorf("mean bundle files = %v", d.BundleFiles.Mean())
	}
	if d.MaxDegree < 1 {
		t.Errorf("MaxDegree = %d", d.MaxDegree)
	}
	if d.DistinctJobs < 1 || d.DistinctJobs > spec.NumRequests {
		t.Errorf("DistinctJobs = %d", d.DistinctJobs)
	}
	// Zipf concentration: the top request dominates a uniform share.
	if d.TopShare <= 1.0/float64(spec.NumRequests) {
		t.Errorf("TopShare = %v not concentrated", d.TopShare)
	}
	if d.Top10Share < d.TopShare || d.Top10Share > 1 {
		t.Errorf("Top10Share = %v", d.Top10Share)
	}
	var sb strings.Builder
	d.Render(&sb)
	for _, want := range []string{"files", "bundle size", "max degree", "top request"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Render missing %q:\n%s", want, sb.String())
		}
	}
}

func TestDescribeEmptyJobs(t *testing.T) {
	spec := DefaultSpec()
	spec.Jobs = 0
	w, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	d := Describe(w)
	if d.Jobs != 0 || d.TopShare != 0 || d.DistinctJobs != 0 {
		t.Errorf("%+v", d)
	}
}

func TestClusteredBundles(t *testing.T) {
	spec := DefaultSpec()
	spec.NumFiles = 100
	spec.Clusters = 10
	spec.NumRequests = 60
	spec.Jobs = 10
	w, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Every request's files must share one cluster (id % Clusters).
	for i, r := range w.Requests {
		c := int(r[0]) % spec.Clusters
		for _, f := range r {
			if int(f)%spec.Clusters != c {
				t.Fatalf("request %d spans clusters: %v", i, r)
			}
		}
	}
	// Clustering leaves expected file degree unchanged (same incidences
	// over the same pool) but concentrates CO-OCCURRENCE: many more request
	// pairs share two or more files.
	unclustered := spec
	unclustered.Clusters = 0
	w2, err := Generate(unclustered)
	if err != nil {
		t.Fatal(err)
	}
	overlapPairs := func(w *Workload) int {
		n := 0
		for i := 0; i < len(w.Requests); i++ {
			for j := i + 1; j < len(w.Requests); j++ {
				if w.Requests[i].Intersect(w.Requests[j]).Len() >= 2 {
					n++
				}
			}
		}
		return n
	}
	pc, pu := overlapPairs(w), overlapPairs(w2)
	t.Logf("request pairs sharing >=2 files: clustered %d, unclustered %d", pc, pu)
	if pc <= pu {
		t.Errorf("clustering did not concentrate co-occurrence: %d <= %d", pc, pu)
	}
	// Validation bounds.
	bad := spec
	bad.Clusters = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative clusters accepted")
	}
	bad.Clusters = spec.NumFiles + 1
	if err := bad.Validate(); err == nil {
		t.Error("clusters > files accepted")
	}
}
