package jobs

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fbcache/internal/bundle"
	"fbcache/internal/core"
	"fbcache/internal/policy"
	"fbcache/internal/queue"
	"fbcache/internal/srm"
)

func newService(capacity bundle.Size, fileSizes ...bundle.Size) *srm.SRM {
	cat := bundle.NewCatalog()
	for _, s := range fileSizes {
		cat.AddAnonymous(s)
	}
	pol := policy.WrapOptFileBundle(core.New(capacity, cat.SizeFunc(), core.Options{}))
	return srm.New(pol, cat)
}

func TestSubmitAndComplete(t *testing.T) {
	s := newService(100, 10, 20)
	m := NewManager(s, Config{Workers: 2})
	defer m.Close()

	var ran atomic.Bool
	done, err := m.Submit(Job{
		Bundle:  bundle.New(0, 1),
		Process: func() error { ran.Store(true); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	res := <-done
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Hit {
		t.Error("cold job reported hit")
	}
	if !ran.Load() {
		t.Error("Process did not run")
	}
	// Second submission of the same bundle hits.
	done, _ = m.Submit(Job{Bundle: bundle.New(0, 1)})
	if res := <-done; !res.Hit {
		t.Error("warm job missed")
	}
	sub, comp, failed, pending := m.Stats()
	if sub != 2 || comp != 2 || failed != 0 || pending != 0 {
		t.Errorf("stats = %d %d %d %d", sub, comp, failed, pending)
	}
}

func TestProcessErrorReported(t *testing.T) {
	s := newService(100, 10)
	m := NewManager(s, Config{Workers: 1})
	defer m.Close()
	boom := errors.New("boom")
	done, _ := m.Submit(Job{Bundle: bundle.New(0), Process: func() error { return boom }})
	res := <-done
	if !errors.Is(res.Err, boom) {
		t.Errorf("err = %v", res.Err)
	}
	_, _, failed, _ := func() (int64, int64, int64, int) { return m.Stats() }()
	if failed != 1 {
		t.Errorf("failed = %d", failed)
	}
}

func TestStageErrorReported(t *testing.T) {
	s := newService(5, 10) // file bigger than cache
	m := NewManager(s, Config{Workers: 1})
	defer m.Close()
	done, _ := m.Submit(Job{Bundle: bundle.New(0)})
	res := <-done
	if !errors.Is(res.Err, srm.ErrTooLarge) {
		t.Errorf("err = %v", res.Err)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	s := newService(100, 10)
	m := NewManager(s, Config{})
	m.Close()
	if _, err := m.Submit(Job{Bundle: bundle.New(0)}); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v", err)
	}
}

func TestCloseDrainsQueuedJobs(t *testing.T) {
	s := newService(100, 10, 10, 10, 10)
	m := NewManager(s, Config{Workers: 1})
	var chans []<-chan Result
	for i := 0; i < 4; i++ {
		done, err := m.Submit(Job{
			Bundle:  bundle.New(bundle.FileID(i)),
			Process: func() error { time.Sleep(time.Millisecond); return nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, done)
	}
	m.Close() // must wait for all four
	for i, ch := range chans {
		select {
		case res := <-ch:
			if res.Err != nil {
				t.Errorf("job %d: %v", i, res.Err)
			}
		default:
			t.Fatalf("job %d not completed by Close", i)
		}
	}
}

func TestSchedulerOrderRespected(t *testing.T) {
	// One worker, SJF ordering: the pending queue drains smallest first.
	s := newService(100, 30, 10, 20)
	var order []bundle.FileID
	var mu sync.Mutex
	record := func(f bundle.FileID) func() error {
		return func() error {
			mu.Lock()
			order = append(order, f)
			mu.Unlock()
			return nil
		}
	}
	// Block the single worker with a long first job so the others queue up.
	gate := make(chan struct{})
	m := NewManager(s, Config{
		Workers:   1,
		Scheduler: queue.SJF(func(f bundle.FileID) bundle.Size { return []bundle.Size{30, 10, 20}[f] }),
	})
	defer m.Close()
	first, _ := m.Submit(Job{Bundle: bundle.New(0), Process: func() error { <-gate; return nil }})
	time.Sleep(20 * time.Millisecond) // let the worker grab job 0
	d1, _ := m.Submit(Job{Bundle: bundle.New(1), Process: record(1)})
	d2, _ := m.Submit(Job{Bundle: bundle.New(2), Process: record(2)})
	close(gate)
	<-first
	<-d1
	<-d2
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("order = %v, want [1 2] (smallest first)", order)
	}
}

func TestConcurrentSubmitters(t *testing.T) {
	cat := bundle.NewCatalog()
	for i := 0; i < 16; i++ {
		cat.AddAnonymous(5)
	}
	pol := policy.WrapOptFileBundle(core.New(100, cat.SizeFunc(), core.Options{}))
	s := srm.New(pol, cat)
	m := NewManager(s, Config{Workers: 4, Scheduler: queue.AgeLimit(queue.FCFS(), 8)})
	defer m.Close()

	var wg sync.WaitGroup
	var hits atomic.Int64
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				b := bundle.New(bundle.FileID((g*5+i)%16), bundle.FileID((g+3*i)%16))
				done, err := m.Submit(Job{Bundle: b})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if res := <-done; res.Err != nil {
					t.Errorf("job: %v", res.Err)
					return
				} else if res.Hit {
					hits.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	sub, comp, failed, pending := m.Stats()
	if sub != 180 || comp != 180 || failed != 0 || pending != 0 {
		t.Errorf("stats = %d %d %d %d", sub, comp, failed, pending)
	}
	if hits.Load() == 0 {
		t.Error("no hits across 180 overlapping jobs")
	}
	if err := pol.Cache().CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestNilSRMPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewManager(nil, Config{})
}
