// Package jobs implements the job service layer of §1: the SRM's operation
// "is governed by a set of policies such as the job service (or scheduling)
// policy, the file caching policy, and the cache replacement policy". This
// package supplies the first of the three — an asynchronous job manager
// that queues submitted jobs, orders them with a pluggable queue.Scheduler
// (FCFS, SJF, relative value, with the AgeLimit lockout guard), stages each
// job's bundle through the SRM (which owns the other two policies), runs
// the job's work with the bundle pinned, and releases it afterwards.
package jobs

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"fbcache/internal/bundle"
	"fbcache/internal/queue"
	"fbcache/internal/srm"
)

// ErrClosed reports a manager that no longer accepts jobs.
var ErrClosed = errors.New("jobs: manager closed")

// Job is one unit of work.
type Job struct {
	// Bundle is the file set the job needs staged and pinned.
	Bundle bundle.Bundle
	// Process runs with the bundle pinned; nil means no work (staging
	// only). Its error is reported in the Result.
	Process func() error
}

// Result reports a completed job.
type Result struct {
	// Hit reports whether the bundle was fully resident at staging time.
	Hit bool
	// Wait is the time from Submit until staging began.
	Wait time.Duration
	// Err is the staging or processing error, if any.
	Err error
}

// Config tunes the manager.
type Config struct {
	// Workers bounds concurrently running jobs (default 4).
	Workers int
	// Scheduler orders the pending queue (default FCFS).
	Scheduler queue.Scheduler
}

type pendingJob struct {
	job       Job
	submitted time.Time
	age       int
	done      chan Result
}

// Manager is the asynchronous job service. Create with NewManager; Close
// stops intake and waits for running jobs.
type Manager struct {
	service *srm.SRM
	cfg     Config

	mu      sync.Mutex
	cond    *sync.Cond
	pending []*pendingJob
	closed  bool
	wg      sync.WaitGroup

	submitted int64
	completed int64
	failed    int64
}

// NewManager starts a manager over the given SRM.
func NewManager(service *srm.SRM, cfg Config) *Manager {
	if service == nil {
		panic("jobs: nil SRM")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Scheduler == nil {
		cfg.Scheduler = queue.FCFS()
	}
	m := &Manager{service: service, cfg: cfg}
	m.cond = sync.NewCond(&m.mu)
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Submit enqueues a job and returns a channel delivering its Result.
// The channel is buffered; the caller may drop it.
func (m *Manager) Submit(j Job) (<-chan Result, error) {
	p := &pendingJob{job: j, submitted: time.Now(), done: make(chan Result, 1)}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	m.pending = append(m.pending, p)
	m.submitted++
	m.cond.Signal()
	return p.done, nil
}

// Close stops intake, lets queued and running jobs finish, and returns once
// every worker has exited.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
	m.wg.Wait()
}

// Stats reports manager counters.
func (m *Manager) Stats() (submitted, completed, failed int64, pending int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.submitted, m.completed, m.failed, len(m.pending)
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		p := m.next()
		if p == nil {
			return
		}
		res := m.run(p)
		m.mu.Lock()
		m.completed++
		if res.Err != nil {
			m.failed++
		}
		m.mu.Unlock()
		p.done <- res
	}
}

// next blocks for the next job chosen by the scheduler, or nil at shutdown
// with an empty queue.
func (m *Manager) next() *pendingJob {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.pending) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.pending) == 0 {
		return nil // closed and drained
	}
	view := make([]queue.Pending, len(m.pending))
	for i, p := range m.pending {
		view[i] = queue.Pending{Bundle: p.job.Bundle, Age: p.age}
	}
	i := m.cfg.Scheduler.Pick(view)
	if i < 0 || i >= len(m.pending) {
		panic(fmt.Sprintf("jobs: scheduler %q picked %d of %d", m.cfg.Scheduler.Name(), i, len(m.pending)))
	}
	p := m.pending[i]
	m.pending = append(m.pending[:i], m.pending[i+1:]...)
	for _, rest := range m.pending {
		rest.age++
	}
	return p
}

// run stages, processes and releases one job.
func (m *Manager) run(p *pendingJob) Result {
	release, stageRes, err := m.service.Stage(p.job.Bundle)
	wait := time.Since(p.submitted)
	if err != nil {
		return Result{Wait: wait, Err: fmt.Errorf("jobs: stage: %w", err)}
	}
	defer release()
	res := Result{Hit: stageRes.Hit, Wait: wait}
	if p.job.Process != nil {
		if perr := p.job.Process(); perr != nil {
			res.Err = fmt.Errorf("jobs: process: %w", perr)
		}
	}
	return res
}
