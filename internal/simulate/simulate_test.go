package simulate

import (
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/core"
	"fbcache/internal/metrics"
	"fbcache/internal/policy"
	"fbcache/internal/policy/classic"
	"fbcache/internal/policy/landlord"
	"fbcache/internal/queue"
	"fbcache/internal/workload"
)

func smallWorkload(t testing.TB, pop workload.Popularity, jobs int) *workload.Workload {
	t.Helper()
	spec := workload.DefaultSpec()
	spec.Popularity = pop
	spec.Jobs = jobs
	spec.NumFiles = 120
	spec.NumRequests = 80
	spec.CacheSize = 2 * bundle.GB
	spec.MaxFilePct = 0.05
	spec.MaxBundleFrac = 0.4
	w, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func optFactory() policy.Factory {
	return policy.OptFileBundleFactory(core.Options{})
}

func TestRunBasics(t *testing.T) {
	w := smallWorkload(t, workload.Uniform, 500)
	p := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
	col, err := Run(w, p, Options{Paranoid: true})
	if err != nil {
		t.Fatal(err)
	}
	if col.Jobs() != 500 {
		t.Errorf("jobs = %d", col.Jobs())
	}
	bmr := col.ByteMissRatio()
	if bmr <= 0 || bmr > 1 {
		t.Errorf("byte miss ratio = %v, want (0,1]", bmr)
	}
	if col.HitRatio() < 0 || col.HitRatio() > 1 {
		t.Errorf("hit ratio = %v", col.HitRatio())
	}
}

func TestRunNilArgs(t *testing.T) {
	w := smallWorkload(t, workload.Uniform, 10)
	if _, err := Run(nil, nil, Options{}); err == nil {
		t.Error("nil args accepted")
	}
	if _, err := Run(w, nil, Options{}); err == nil {
		t.Error("nil policy accepted")
	}
}

func TestRunMaxJobs(t *testing.T) {
	w := smallWorkload(t, workload.Uniform, 500)
	p := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
	col, err := Run(w, p, Options{MaxJobs: 50})
	if err != nil {
		t.Fatal(err)
	}
	if col.Jobs() != 50 {
		t.Errorf("jobs = %d, want 50", col.Jobs())
	}
}

func TestRunDeterministic(t *testing.T) {
	w := smallWorkload(t, workload.Zipf, 800)
	run := func() float64 {
		p := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
		col, err := Run(w, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return col.ByteMissRatio()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic: %v vs %v", a, b)
	}
}

// The paper's headline claim, as an integration test: OptFileBundle beats
// Landlord on byte miss ratio for both distributions, and warm caches beat
// popularity-blind baselines under Zipf.
func TestOptFileBundleBeatsLandlord(t *testing.T) {
	for _, pop := range []workload.Popularity{workload.Uniform, workload.Zipf} {
		w := smallWorkload(t, pop, 3000)
		results, err := Compare(w, []policy.Factory{
			optFactory(), landlord.Factory(),
		}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		opt := results["optfilebundle"].ByteMissRatio()
		ll := results["landlord"].ByteMissRatio()
		if opt >= ll {
			t.Errorf("%v: optfilebundle %.4f not below landlord %.4f", pop, opt, ll)
		}
		t.Logf("%v: optfilebundle=%.4f landlord=%.4f", pop, opt, ll)
	}
}

func TestZipfMissRatioBelowUniform(t *testing.T) {
	// Paper §5.3: byte miss ratios are much lower under Zipf than uniform.
	mk := optFactory()
	run := func(pop workload.Popularity) float64 {
		w := smallWorkload(t, pop, 3000)
		p := mk(w.Spec.CacheSize, w.Catalog.SizeFunc())
		col, err := Run(w, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return col.ByteMissRatio()
	}
	u, z := run(workload.Uniform), run(workload.Zipf)
	if z >= u {
		t.Errorf("zipf %.4f not below uniform %.4f", z, u)
	}
}

func TestCompareRejectsDuplicateNames(t *testing.T) {
	w := smallWorkload(t, workload.Uniform, 10)
	if _, err := Compare(w, []policy.Factory{optFactory(), optFactory()}, Options{}); err == nil {
		t.Error("duplicate names accepted")
	}
}

func TestQueuedRunServesEverything(t *testing.T) {
	w := smallWorkload(t, workload.Zipf, 1000)
	sizeOf := w.Catalog.SizeFunc()
	opt := core.New(w.Spec.CacheSize, sizeOf, core.Options{})
	p := policy.WrapOptFileBundle(opt)
	sched := queue.ByScore("relvalue", opt.RelativeValue)
	col, err := Run(w, p, Options{QueueLength: 25, Scheduler: sched})
	if err != nil {
		t.Fatal(err)
	}
	if col.Jobs() != 1000 {
		t.Errorf("jobs = %d, want all 1000 served (flush included)", col.Jobs())
	}
}

func TestQueueingHelpsZipf(t *testing.T) {
	// Fig. 9(b): larger queues lower the byte miss ratio under Zipf.
	w := smallWorkload(t, workload.Zipf, 4000)
	sizeOf := w.Catalog.SizeFunc()
	run := func(q int) float64 {
		opt := core.New(w.Spec.CacheSize, sizeOf, core.Options{})
		p := policy.WrapOptFileBundle(opt)
		col, err := Run(w, p, Options{QueueLength: q, Scheduler: queue.ByScore("rv", opt.RelativeValue)})
		if err != nil {
			t.Fatal(err)
		}
		return col.ByteMissRatio()
	}
	q1, q100 := run(1), run(100)
	if q100 > q1*1.02 { // must not be meaningfully worse
		t.Errorf("q=100 miss %.4f worse than q=1 %.4f", q100, q1)
	}
	t.Logf("zipf: q1=%.4f q100=%.4f", q1, q100)
}

func TestSeriesCollection(t *testing.T) {
	w := smallWorkload(t, workload.Uniform, 300)
	p := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
	col, err := Run(w, p, Options{SeriesInterval: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(col.Series()); got != 3 {
		t.Errorf("series points = %d, want 3", got)
	}
}

func TestAllPoliciesComplete(t *testing.T) {
	w := smallWorkload(t, workload.Zipf, 1000)
	factories := []policy.Factory{
		optFactory(), landlord.Factory(), classic.LRUFactory(),
		classic.LFUFactory(), classic.GDSFFactory(), classic.FIFOFactory(),
		classic.MRUFactory(), classic.RandomFactory(42),
	}
	results, err := Compare(w, factories, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(factories) {
		t.Fatalf("got %d results", len(results))
	}
	var best string
	bestMiss := 2.0
	for name, col := range results {
		bmr := col.ByteMissRatio()
		if bmr <= 0 || bmr > 1 {
			t.Errorf("%s: byte miss ratio %v out of range", name, bmr)
		}
		if bmr < bestMiss {
			best, bestMiss = name, bmr
		}
	}
	t.Logf("best policy: %s at %.4f", best, bestMiss)
}

var benchSink *metrics.Collector

func BenchmarkRunOptFileBundle1000(b *testing.B) {
	w := smallWorkload(b, workload.Zipf, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
		col, err := Run(w, p, Options{})
		if err != nil {
			b.Fatal(err)
		}
		benchSink = col
	}
}

func BenchmarkRunLandlord1000(b *testing.B) {
	w := smallWorkload(b, workload.Zipf, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := landlord.Factory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
		col, err := Run(w, p, Options{})
		if err != nil {
			b.Fatal(err)
		}
		benchSink = col
	}
}

func TestWarmupExcludesRampFromMetrics(t *testing.T) {
	w := smallWorkload(t, workload.Zipf, 2000)
	run := func(warmup int) (float64, int64) {
		p := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
		col, err := Run(w, p, Options{Warmup: warmup})
		if err != nil {
			t.Fatal(err)
		}
		return col.ByteMissRatio(), col.Jobs()
	}
	cold, jobsCold := run(0)
	warm, jobsWarm := run(500)
	if jobsCold != 2000 || jobsWarm != 1500 {
		t.Fatalf("jobs: cold=%d warm=%d", jobsCold, jobsWarm)
	}
	// The compulsory-miss ramp inflates the cold ratio.
	if warm >= cold {
		t.Errorf("steady-state miss %.4f not below cold-start %.4f", warm, cold)
	}
}

// Property: for every policy (no speculative prefetch), the collector's byte
// accounting matches the cache's own load counters exactly.
func TestByteAccountingConsistency(t *testing.T) {
	w := smallWorkload(t, workload.Zipf, 800)
	factories := []policy.Factory{
		optFactory(), landlord.Factory(), classic.LRUFactory(),
		classic.LFUFactory(), classic.GDSFFactory(), classic.FIFOFactory(),
	}
	for _, mk := range factories {
		p := mk(w.Spec.CacheSize, w.Catalog.SizeFunc())
		col, err := Run(w, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		loaded, _, loads, _ := p.Cache().Counters()
		if loaded != col.BytesLoaded() {
			t.Errorf("%s: collector %d bytes != cache %d", p.Name(), col.BytesLoaded(), loaded)
		}
		if loads != col.FilesLoaded() {
			t.Errorf("%s: collector %d files != cache %d", p.Name(), col.FilesLoaded(), loads)
		}
	}
}
