package simulate

import (
	"reflect"
	"testing"

	"fbcache/internal/mss"
	"fbcache/internal/policy/landlord"
	"fbcache/internal/workload"
)

func fastMSS() mss.Config {
	return mss.Config{Name: "test", LatencySec: 0.1, BandwidthBps: 200e6, Channels: 4}
}

func TestRunEventsBasics(t *testing.T) {
	w := smallWorkload(t, workload.Zipf, 400)
	p := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
	st, err := RunEvents(w, p, EventOptions{
		ArrivalRate: 5,
		MSS:         fastMSS(),
		Slots:       4,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Jobs != 400 {
		t.Errorf("jobs = %d, want 400", st.Jobs)
	}
	if st.Throughput <= 0 {
		t.Errorf("throughput = %v", st.Throughput)
	}
	if st.MeanResponse <= 0 || st.P95Response < st.MeanResponse*0.1 {
		t.Errorf("responses: mean=%v p95=%v", st.MeanResponse, st.P95Response)
	}
	if st.MeanStaging < 0 {
		t.Errorf("staging = %v", st.MeanStaging)
	}
	if st.ByteMissRatio <= 0 || st.ByteMissRatio > 1 {
		t.Errorf("byte miss = %v", st.ByteMissRatio)
	}
	if st.MSSUtilization < 0 || st.MSSUtilization > 1 {
		t.Errorf("utilization = %v", st.MSSUtilization)
	}
	if err := p.Cache().CheckInvariants(); err != nil {
		t.Error(err)
	}
	// All pins must be released at the end.
	for _, f := range p.Cache().Resident() {
		if p.Cache().Pinned(f) {
			t.Fatalf("file %d still pinned after run", f)
		}
	}
}

func TestRunEventsValidation(t *testing.T) {
	w := smallWorkload(t, workload.Uniform, 10)
	p := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
	if _, err := RunEvents(nil, p, EventOptions{ArrivalRate: 1, MSS: fastMSS()}); err == nil {
		t.Error("nil workload accepted")
	}
	if _, err := RunEvents(w, p, EventOptions{ArrivalRate: 0, MSS: fastMSS()}); err == nil {
		t.Error("zero arrival rate accepted")
	}
	if _, err := RunEvents(w, p, EventOptions{ArrivalRate: 1, MSS: mss.Config{}}); err == nil {
		t.Error("bad MSS accepted")
	}
}

func TestRunEventsDeterministic(t *testing.T) {
	w := smallWorkload(t, workload.Zipf, 200)
	run := func() EventStats {
		p := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
		st, err := RunEvents(w, p, EventOptions{ArrivalRate: 3, MSS: fastMSS(), Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("nondeterministic event sim:\n%+v\n%+v", a, b)
	}
}

func TestRunEventsBetterCachingMeansBetterResponse(t *testing.T) {
	// A slow archive makes miss traffic dominate response time, so the
	// policy with the lower byte miss ratio must win on mean response.
	w := smallWorkload(t, workload.Zipf, 600)
	slow := mss.Config{Name: "tape", LatencySec: 5, BandwidthBps: 20e6, Channels: 2}
	opts := EventOptions{ArrivalRate: 0.5, MSS: slow, Slots: 2, Seed: 3}

	pOpt := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
	stOpt, err := RunEvents(w, pOpt, opts)
	if err != nil {
		t.Fatal(err)
	}
	pLL := landlord.Factory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
	stLL, err := RunEvents(w, pLL, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("opt: miss=%.4f mean=%.2fs  landlord: miss=%.4f mean=%.2fs",
		stOpt.ByteMissRatio, stOpt.MeanResponse, stLL.ByteMissRatio, stLL.MeanResponse)
	if stOpt.ByteMissRatio >= stLL.ByteMissRatio {
		t.Errorf("opt byte miss %.4f not below landlord %.4f", stOpt.ByteMissRatio, stLL.ByteMissRatio)
	}
	if stOpt.MeanResponse >= stLL.MeanResponse {
		t.Errorf("opt mean response %.2f not below landlord %.2f", stOpt.MeanResponse, stLL.MeanResponse)
	}
}

func TestRunEventsEmptyJobs(t *testing.T) {
	w := smallWorkload(t, workload.Uniform, 10)
	w.Jobs = nil
	p := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
	st, err := RunEvents(w, p, EventOptions{ArrivalRate: 1, MSS: fastMSS()})
	if err != nil {
		t.Fatal(err)
	}
	if st.Jobs != 0 {
		t.Errorf("jobs = %d", st.Jobs)
	}
}

func TestRunEventsMaxJobs(t *testing.T) {
	w := smallWorkload(t, workload.Uniform, 100)
	p := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
	st, err := RunEvents(w, p, EventOptions{ArrivalRate: 10, MSS: fastMSS(), MaxJobs: 25})
	if err != nil {
		t.Fatal(err)
	}
	if st.Jobs != 25 {
		t.Errorf("jobs = %d, want 25", st.Jobs)
	}
}

func BenchmarkRunEvents(b *testing.B) {
	w := smallWorkload(b, workload.Zipf, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
		if _, err := RunEvents(w, p, EventOptions{ArrivalRate: 5, MSS: fastMSS(), Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
