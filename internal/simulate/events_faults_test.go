package simulate

import (
	"reflect"
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/faults"
	"fbcache/internal/workload"
)

// TestFaultsZeroScenarioBitIdentical is the acceptance gate for the fault
// layer: arming the injector with the zero scenario must reproduce the
// fault-free run bit for bit — same timings, same stats, no RNG drift.
func TestFaultsZeroScenarioBitIdentical(t *testing.T) {
	w := smallWorkload(t, workload.Zipf, 300)
	run := func(sc *faults.Scenario, cfg *GridConfig) EventStats {
		p := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
		opts := EventOptions{ArrivalRate: 3, Seed: 11, Faults: sc}
		if cfg != nil {
			opts.Grid = cfg
		} else {
			opts.MSS = fastMSS()
		}
		st, err := RunEvents(w, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	plain := run(nil, nil)
	armed := run(&faults.Scenario{}, nil)
	if !armed.Resilience.Zero() {
		t.Errorf("zero scenario recorded resilience events: %v", armed.Resilience)
	}
	if !reflect.DeepEqual(plain, armed) {
		t.Errorf("zero-scenario MSS run diverged:\n%+v\n%+v", plain, armed)
	}

	gplain := run(nil, buildGrid(t, w, func(f bundle.FileID) bool { return f%2 == 0 }))
	garmed := run(&faults.Scenario{}, buildGrid(t, w, func(f bundle.FileID) bool { return f%2 == 0 }))
	// The armed grid run reports a (all-zero) downtime vector; everything
	// else must match exactly.
	for i, d := range garmed.SiteDowntime {
		if d != 0 {
			t.Errorf("zero scenario reported downtime at site %d: %v", i, d)
		}
	}
	garmed.SiteDowntime = nil
	if !reflect.DeepEqual(gplain, garmed) {
		t.Errorf("zero-scenario grid run diverged:\n%+v\n%+v", gplain, garmed)
	}
}

// TestFaultsDeterministic: two runs sharing workload, policy and fault
// scenario must agree on every statistic, including the resilience counters.
func TestFaultsDeterministic(t *testing.T) {
	w := smallWorkload(t, workload.Zipf, 300)
	sc := faults.Scenario{
		Seed:                99,
		TransferFailureProb: 0.2,
		Sites: map[int]faults.SiteFaults{
			1: {
				Outages:   []faults.Window{{Start: 40, End: 70}},
				Brownouts: []faults.Brownout{{Window: faults.Window{Start: 90, End: 130}, Factor: 2.5}},
			},
		},
		MaxJobAttempts: 3,
	}
	run := func() EventStats {
		p := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
		cfg := buildGrid(t, w, func(f bundle.FileID) bool { return f%3 == 0 })
		st, err := RunEvents(w, p, EventOptions{ArrivalRate: 2, Grid: cfg, Seed: 5, Faults: &sc})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("fault run not reproducible:\n%+v\n%+v", a, b)
	}
	if a.Resilience.Retries == 0 {
		t.Errorf("20%% failure probability produced no retries: %v", a.Resilience)
	}
	if len(a.SiteDowntime) != 2 || a.SiteDowntime[1] <= 0 {
		t.Errorf("downtime not reported for the faulty site: %v", a.SiteDowntime)
	}
}

// TestFaultsFailover: with the local site dark for the whole run, every
// locally-replicated file must be pulled from the remote replica instead —
// the run completes, and each fallback is counted as a failover.
func TestFaultsFailover(t *testing.T) {
	w := smallWorkload(t, workload.Zipf, 200)
	sc := faults.Scenario{
		Sites: map[int]faults.SiteFaults{
			0: {Outages: []faults.Window{{Start: 0, End: 1e9}}},
		},
	}
	p := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
	cfg := buildGrid(t, w, func(bundle.FileID) bool { return true }) // everything has a local replica
	st, err := RunEvents(w, p, EventOptions{ArrivalRate: 2, Grid: cfg, Seed: 5, Faults: &sc})
	if err != nil {
		t.Fatal(err)
	}
	if st.Jobs != 200 {
		t.Errorf("jobs = %d, want all 200 to complete via the remote replica", st.Jobs)
	}
	if st.Resilience.Failovers == 0 {
		t.Error("no failovers counted despite the local site being down")
	}
	if st.Resilience.FailedJobs != 0 {
		t.Errorf("failover path failed %d jobs", st.Resilience.FailedJobs)
	}
	if len(st.SiteDowntime) == 0 || st.SiteDowntime[0] < st.Makespan-1e-9 {
		t.Errorf("site 0 downtime = %v, want the whole makespan %v", st.SiteDowntime, st.Makespan)
	}
}

// TestFaultsBudgetExhaustion: an archive that is down longer than the
// staging budget allows must fail jobs (after the configured requeues), and
// every submitted job must still be accounted for.
func TestFaultsBudgetExhaustion(t *testing.T) {
	w := smallWorkload(t, workload.Zipf, 150)
	sc := faults.Scenario{
		Sites: map[int]faults.SiteFaults{
			0: {Outages: []faults.Window{{Start: 0, End: 1e9}}},
		},
		StageBudgetSec: 30,
		MaxJobAttempts: 2,
	}
	p := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
	st, err := RunEvents(w, p, EventOptions{ArrivalRate: 2, MSS: fastMSS(), Seed: 9, Faults: &sc})
	if err != nil {
		t.Fatal(err)
	}
	if st.Resilience.FailedJobs == 0 {
		t.Errorf("permanent outage with a 30s budget failed no jobs: %v", st.Resilience)
	}
	if st.Resilience.Timeouts == 0 {
		t.Errorf("budget exhaustion recorded no timeouts: %v", st.Resilience)
	}
	if st.Resilience.Requeues == 0 {
		t.Errorf("MaxJobAttempts=2 recorded no requeues: %v", st.Resilience)
	}
	total := st.Jobs + st.Resilience.FailedJobs + st.UnservedOversized
	if total != 150 {
		t.Errorf("job accounting: completed %d + failed %d + oversized %d != 150",
			st.Jobs, st.Resilience.FailedJobs, st.UnservedOversized)
	}
}

// TestFaultsRetriesRecover: a moderate per-transfer failure probability with
// no schedule faults should slow the run down (backoff delays show up in
// response times) but not lose jobs, since retries and requeues are
// plentiful.
func TestFaultsRetriesRecover(t *testing.T) {
	w := smallWorkload(t, workload.Zipf, 200)
	run := func(prob float64) EventStats {
		p := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
		sc := faults.Scenario{Seed: 3, TransferFailureProb: prob, MaxJobAttempts: 4}
		st, err := RunEvents(w, p, EventOptions{ArrivalRate: 1, MSS: fastMSS(), Seed: 9, Faults: &sc})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	clean := run(0)
	faulty := run(0.3)
	if faulty.Resilience.Retries == 0 {
		t.Fatalf("no retries at 30%% failure probability: %v", faulty.Resilience)
	}
	if faulty.Jobs != clean.Jobs {
		t.Errorf("retry path lost jobs: %d vs %d (resilience %v)", faulty.Jobs, clean.Jobs, faulty.Resilience)
	}
	if faulty.MeanResponse <= clean.MeanResponse {
		t.Errorf("backoff did not slow responses: faulty %.2fs <= clean %.2fs",
			faulty.MeanResponse, clean.MeanResponse)
	}
}
