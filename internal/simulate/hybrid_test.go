package simulate

import (
	"testing"

	"fbcache/internal/workload"
)

func TestRunHybridPureBundleMatchesRun(t *testing.T) {
	w := smallWorkload(t, workload.Zipf, 800)
	p1 := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
	col, err := Run(w, p1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p2 := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
	st, err := RunHybrid(w, p2, HybridOptions{BundleFraction: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.PerFileJobs != 0 || st.BundleJobs != 800 {
		t.Fatalf("job split = %d/%d", st.BundleJobs, st.PerFileJobs)
	}
	if got, want := st.Combined.ByteMissRatio(), col.ByteMissRatio(); got != want {
		t.Errorf("pure-bundle hybrid %.6f != Run %.6f", got, want)
	}
}

func TestRunHybridPurePerFile(t *testing.T) {
	w := smallWorkload(t, workload.Zipf, 600)
	p := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
	st, err := RunHybrid(w, p, HybridOptions{BundleFraction: 0, Seed: 5, Paranoid: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.BundleJobs != 0 || st.PerFileJobs != 600 {
		t.Fatalf("job split = %d/%d", st.BundleJobs, st.PerFileJobs)
	}
	bmr := st.Combined.ByteMissRatio()
	if bmr <= 0 || bmr > 1 {
		t.Errorf("byte miss = %v", bmr)
	}
	// Bytes requested must equal the bundle totals regardless of model.
	if st.Combined.BytesRequested() == 0 {
		t.Error("no bytes accounted")
	}
}

func TestRunHybridMixSplitsJobs(t *testing.T) {
	w := smallWorkload(t, workload.Uniform, 1000)
	p := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
	st, err := RunHybrid(w, p, HybridOptions{BundleFraction: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if st.BundleJobs+st.PerFileJobs != 1000 {
		t.Fatalf("lost jobs: %d + %d", st.BundleJobs, st.PerFileJobs)
	}
	// Roughly half each (binomial, generous bounds).
	if st.BundleJobs < 400 || st.BundleJobs > 600 {
		t.Errorf("bundle jobs = %d, expected ~500", st.BundleJobs)
	}
	if st.Bundle.Jobs() != st.BundleJobs || st.PerFile.Jobs() != st.PerFileJobs {
		t.Error("per-class collectors inconsistent")
	}
}

func TestRunHybridPerFileJobHitSemantics(t *testing.T) {
	// A per-file job is a request-hit only if every task hit. Warm the
	// cache with the bundle, then run per-file: all tasks hit.
	w := smallWorkload(t, workload.Uniform, 10)
	p := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
	b := w.Requests[w.Jobs[0]]
	p.Admit(b)
	w2 := *w
	w2.Jobs = []int{w.Jobs[0]}
	st, err := RunHybrid(&w2, p, HybridOptions{BundleFraction: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.PerFile.HitRatio() != 1 {
		t.Errorf("warm per-file job hit ratio = %v, want 1", st.PerFile.HitRatio())
	}
}

func TestRunHybridValidation(t *testing.T) {
	w := smallWorkload(t, workload.Uniform, 10)
	p := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
	if _, err := RunHybrid(nil, p, HybridOptions{}); err == nil {
		t.Error("nil workload accepted")
	}
	if _, err := RunHybrid(w, p, HybridOptions{BundleFraction: 1.5}); err == nil {
		t.Error("bad fraction accepted")
	}
}

func TestRunHybridBundleServiceBeatsPerFileOnByteMiss(t *testing.T) {
	// Bundle-at-a-time gives the policy full combination information;
	// one-file-at-a-time starves it (every request is a singleton, so
	// request values never capture co-access). Expect the pure-bundle mix
	// to achieve an equal or lower byte miss ratio.
	w := smallWorkload(t, workload.Zipf, 2000)
	run := func(frac float64) float64 {
		p := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
		st, err := RunHybrid(w, p, HybridOptions{BundleFraction: frac, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return st.Combined.ByteMissRatio()
	}
	pure, perFile := run(1), run(0)
	t.Logf("byte miss: bundle-service=%.4f per-file-service=%.4f", pure, perFile)
	if pure > perFile*1.05 {
		t.Errorf("bundle service %.4f clearly worse than per-file %.4f", pure, perFile)
	}
}

func TestServiceModelString(t *testing.T) {
	if BundleAtATime.String() != "bundle-at-a-time" ||
		OneFileAtATime.String() != "one-file-at-a-time" ||
		ServiceModel(9).String() != "ServiceModel(9)" {
		t.Error("ServiceModel.String broken")
	}
}
