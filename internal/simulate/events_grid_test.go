package simulate

import (
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/grid"
	"fbcache/internal/mss"
	"fbcache/internal/workload"
)

// buildGrid creates a two-site grid: a fast local disk archive and a slow
// remote tape archive across a WAN, and registers replicas per the split
// function (true -> local replica exists, false -> remote only).
func buildGrid(t *testing.T, w *workload.Workload, localReplica func(f bundle.FileID) bool) *GridConfig {
	t.Helper()
	topo, err := grid.NewTopology("local", mss.Config{
		Name: "local-disk", LatencySec: 0.2, BandwidthBps: 200e6, Channels: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	remote, err := topo.AddSite("remote", mss.Config{
		Name: "remote-tape", LatencySec: 8, BandwidthBps: 60e6, Channels: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Connect(topo.Local(), remote, grid.Link{LatencySec: 0.5, BandwidthBps: 30e6}); err != nil {
		t.Fatal(err)
	}
	reps := grid.NewReplicas()
	for _, f := range w.Catalog.Files() {
		reps.Add(f.ID, remote) // the archive of record holds everything
		if localReplica(f.ID) {
			reps.Add(f.ID, topo.Local())
		}
	}
	return &GridConfig{Topology: topo, Replicas: reps}
}

func TestRunEventsGridBasics(t *testing.T) {
	w := smallWorkload(t, workload.Zipf, 300)
	p := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
	cfg := buildGrid(t, w, func(f bundle.FileID) bool { return f%2 == 0 })
	st, err := RunEvents(w, p, EventOptions{ArrivalRate: 2, Grid: cfg, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Jobs != 300 {
		t.Errorf("jobs = %d", st.Jobs)
	}
	if st.MeanResponse <= 0 || st.Throughput <= 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRunEventsGridLocalReplicasHelp(t *testing.T) {
	// Identical workload and policy; the grid with full local replication
	// must deliver clearly faster responses than the remote-only grid.
	w := smallWorkload(t, workload.Zipf, 400)
	run := func(local func(bundle.FileID) bool) EventStats {
		p := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
		st, err := RunEvents(w, p, EventOptions{
			ArrivalRate: 1, Grid: buildGrid(t, w, local), Seed: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	allLocal := run(func(bundle.FileID) bool { return true })
	remoteOnly := run(func(bundle.FileID) bool { return false })
	t.Logf("mean response: all-local=%.1fs remote-only=%.1fs", allLocal.MeanResponse, remoteOnly.MeanResponse)
	if allLocal.MeanResponse >= remoteOnly.MeanResponse {
		t.Errorf("local replicas did not help: %.1f vs %.1f", allLocal.MeanResponse, remoteOnly.MeanResponse)
	}
	// Note: byte miss ratios can legitimately differ slightly — staging
	// speed changes slot contention and therefore the order in which jobs
	// reach the policy. Only the response-time ordering is asserted.
}

func TestRunEventsGridMissingReplicaFails(t *testing.T) {
	w := smallWorkload(t, workload.Uniform, 50)
	p := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
	topo, err := grid.NewTopology("local", mss.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := &GridConfig{Topology: topo, Replicas: grid.NewReplicas()} // empty catalog
	if _, err := RunEvents(w, p, EventOptions{ArrivalRate: 1, Grid: cfg, Seed: 1}); err == nil {
		t.Error("missing replicas accepted")
	}
}

func TestRunEventsGridValidation(t *testing.T) {
	w := smallWorkload(t, workload.Uniform, 10)
	p := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
	if _, err := RunEvents(w, p, EventOptions{ArrivalRate: 1, Grid: &GridConfig{}}); err == nil {
		t.Error("empty GridConfig accepted")
	}
}
