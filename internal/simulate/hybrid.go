package simulate

import (
	"fmt"
	"math/rand"

	"fbcache/internal/bundle"
	"fbcache/internal/metrics"
	"fbcache/internal/policy"
	"fbcache/internal/workload"
)

// ServiceModel selects how a job's files are serviced (§2).
type ServiceModel int

const (
	// BundleAtATime stages the whole file-bundle before the job runs —
	// the model this paper is about.
	BundleAtATime ServiceModel = iota
	// OneFileAtATime issues each file as its own request; the job
	// completes after all per-file tasks — the model of the authors' prior
	// work [8], and one leg of the §6 hybrid execution model.
	OneFileAtATime
)

func (m ServiceModel) String() string {
	switch m {
	case BundleAtATime:
		return "bundle-at-a-time"
	case OneFileAtATime:
		return "one-file-at-a-time"
	}
	return fmt.Sprintf("ServiceModel(%d)", int(m))
}

// HybridOptions configures RunHybrid.
type HybridOptions struct {
	// BundleFraction is the probability a job uses BundleAtATime service;
	// the rest run OneFileAtATime. 1.0 degenerates to Run, 0.0 to a pure
	// single-file workload.
	BundleFraction float64
	// Seed drives the per-job model assignment.
	Seed int64
	// MaxJobs truncates the workload when > 0.
	MaxJobs int
	// Paranoid verifies cache invariants after every admission.
	Paranoid bool
}

// HybridStats reports a hybrid run, per service model and combined.
type HybridStats struct {
	Bundle   metrics.Collector // jobs serviced bundle-at-a-time
	PerFile  metrics.Collector // jobs serviced one-file-at-a-time
	Combined metrics.Collector // all jobs (per-file jobs folded to job level)

	BundleJobs  int64
	PerFileJobs int64
}

// RunHybrid drives w through p under the §6 hybrid execution model: each
// job is independently assigned a service model. Bundle jobs admit their
// whole bundle at once; per-file jobs admit each file as a singleton
// request, in file-ID order, and count as a request-hit only if every task
// hit. Byte accounting is identical across models, so the byte miss ratios
// are directly comparable.
func RunHybrid(w *workload.Workload, p policy.Policy, opts HybridOptions) (*HybridStats, error) {
	if w == nil || p == nil {
		return nil, fmt.Errorf("simulate: nil workload or policy")
	}
	if opts.BundleFraction < 0 || opts.BundleFraction > 1 {
		return nil, fmt.Errorf("simulate: BundleFraction %v outside [0,1]", opts.BundleFraction)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	st := &HybridStats{}

	jobs := w.Jobs
	if opts.MaxJobs > 0 && opts.MaxJobs < len(jobs) {
		jobs = jobs[:opts.MaxJobs]
	}

	check := func() error {
		if !opts.Paranoid {
			return nil
		}
		return p.Cache().CheckInvariants()
	}

	for _, j := range jobs {
		b := w.Requests[j]
		if rng.Float64() < opts.BundleFraction {
			res := p.Admit(b)
			st.Bundle.Record(res)
			st.Combined.Record(res)
			st.BundleJobs++
			if err := check(); err != nil {
				return nil, err
			}
			continue
		}
		// One file at a time: fold the per-task results into one job-level
		// result so job metrics stay comparable.
		var jobRes policy.Result
		jobRes.Hit = true
		for _, f := range b {
			res := p.Admit(bundle.New(f))
			if res.Unserviceable {
				jobRes.Unserviceable = true
			}
			jobRes.Hit = jobRes.Hit && res.Hit
			jobRes.BytesRequested += res.BytesRequested
			jobRes.BytesLoaded += res.BytesLoaded
			jobRes.FilesLoaded += res.FilesLoaded
			jobRes.FilesEvicted += res.FilesEvicted
			if err := check(); err != nil {
				return nil, err
			}
		}
		st.PerFile.Record(jobRes)
		st.Combined.Record(jobRes)
		st.PerFileJobs++
	}
	return st, nil
}
