package simulate

import (
	"strings"
	"testing"

	"fbcache/internal/policy"
	"fbcache/internal/policy/classic"
	"fbcache/internal/policy/landlord"
	"fbcache/internal/workload"
)

// evictionTrace drives every job of w through a fresh policy from mk and
// returns the per-job load/eviction decisions as one string. Capturing the
// full sequence (not just aggregate ratios) is the point: map-iteration
// nondeterminism typically preserves totals while reordering victims.
func evictionTrace(t *testing.T, w *workload.Workload, mk policy.Factory) string {
	t.Helper()
	p := mk(w.Spec.CacheSize, w.Catalog.SizeFunc())
	var sb strings.Builder
	for _, j := range w.Jobs {
		res := p.Admit(w.Requests[j])
		sb.WriteString("L")
		sb.WriteString(res.Loaded.Key())
		sb.WriteString("/E")
		sb.WriteString(res.Evicted.Key())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestEvictionSequenceDeterministic is the regression test for the map-order
// bugs fbvet's mapiter analyzer exists to catch (core.setToBundle,
// solver.dfs): two runs of the same policy over the same workload must make
// bit-for-bit identical eviction and load decisions at every single job.
func TestEvictionSequenceDeterministic(t *testing.T) {
	w := smallWorkload(t, workload.Zipf, 600)
	for _, tc := range []struct {
		name string
		mk   policy.Factory
	}{
		{"optfilebundle", optFactory()},
		{"landlord", landlord.Factory()},
		{"gdsf", classic.GDSFFactory()},
		{"lru", classic.LRUFactory()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := evictionTrace(t, w, tc.mk)
			b := evictionTrace(t, w, tc.mk)
			if a == b {
				return
			}
			// Report the first diverging job, not two megabyte blobs.
			la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
			for i := range la {
				if i >= len(lb) || la[i] != lb[i] {
					t.Fatalf("eviction sequences diverge at job %d:\n  run1: %s\n  run2: %s", i, la[i], lb[i])
				}
			}
			t.Fatal("eviction sequences differ in length")
		})
	}
}
