package simulate

import (
	"reflect"
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/faults"
	"fbcache/internal/workload"
)

// TestReplicationZeroBudgetBitIdentical is the tentpole's inertness gate:
// arming the epoch re-planner with a zero budget over a zero fault scenario
// must reproduce the plain fault-free run bit for bit — the machinery runs
// every epoch but may not perturb staging, stats or RNG streams.
func TestReplicationZeroBudgetBitIdentical(t *testing.T) {
	w := smallWorkload(t, workload.Zipf, 300)
	run := func(sc *faults.Scenario, repl *ReplicationConfig) EventStats {
		p := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
		cfg := buildGrid(t, w, func(f bundle.FileID) bool { return f%2 == 0 })
		st, err := RunEvents(w, p, EventOptions{
			ArrivalRate: 3, Seed: 11, Grid: cfg, Faults: sc, Replication: repl,
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	plain := run(nil, nil)
	armed := run(&faults.Scenario{}, &ReplicationConfig{
		EpochSec: 10, Budget: 0, RetireBelow: 0.01, RiskHorizonSec: 30,
	})

	if armed.Replication.Epochs == 0 {
		t.Fatal("replication armed but no epoch ever ran")
	}
	moved := armed.Replication
	moved.Epochs = 0
	if moved != (ReplicationStats{}) {
		t.Errorf("zero-budget planner did work: %+v", armed.Replication)
	}
	if armed.Recoveries != nil {
		t.Errorf("zero scenario produced recovery records: %+v", armed.Recoveries)
	}
	for i, d := range armed.SiteDowntime {
		if d != 0 {
			t.Errorf("zero scenario reported downtime at site %d: %v", i, d)
		}
	}
	// The epoch counter and the armed-run downtime vector are the only
	// permitted differences; everything the planner could have perturbed must
	// match exactly.
	armed.SiteDowntime = nil
	armed.Replication = ReplicationStats{}
	if !reflect.DeepEqual(plain, armed) {
		t.Errorf("zero-budget replication run diverged:\n%+v\n%+v", plain, armed)
	}
}

// TestAdaptiveReplicationBeatsStaticUnderOutage is the headline acceptance
// test: under a seeded mid-run outage of the only replica site, the adaptive
// planner — which sees the outage coming through the risk horizon and
// emergency-replicates hot files to the local site — must recover strictly
// faster than the static grid, and hold a strictly higher windowed hit ratio
// at the moment the outage ends.
func TestAdaptiveReplicationBeatsStaticUnderOutage(t *testing.T) {
	w := smallWorkload(t, workload.Zipf, 800)
	sc := faults.Scenario{Sites: map[int]faults.SiteFaults{
		1: {Outages: []faults.Window{{Start: 150, End: 210}}},
	}}
	run := func(repl *ReplicationConfig) EventStats {
		p := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
		// Remote-only replicas: every miss must cross the WAN, and the outage
		// darkens the grid's only source.
		cfg := buildGrid(t, w, func(bundle.FileID) bool { return false })
		st, err := RunEvents(w, p, EventOptions{
			ArrivalRate: 2, Grid: cfg, Seed: 7, Faults: &sc, Replication: repl,
			RecoveryWindowJobs: 100, RecoveryEpsilon: 0.08,
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	static := run(nil)
	adaptive := run(&ReplicationConfig{
		EpochSec: 20, Budget: 64 * bundle.GB, RiskHorizonSec: 100,
	})

	if adaptive.Replication.Emergency == 0 || adaptive.Replication.Bytes == 0 {
		t.Fatalf("risk horizon saw the outage but planned no emergencies: %+v", adaptive.Replication)
	}
	if len(static.Recoveries) != 1 || len(adaptive.Recoveries) != 1 {
		t.Fatalf("recovery records: static %d adaptive %d, want 1 each",
			len(static.Recoveries), len(adaptive.Recoveries))
	}
	rs, ra := static.Recoveries[0], adaptive.Recoveries[0]
	t.Logf("static:   %+v", rs)
	t.Logf("adaptive: %+v", ra)

	if !ra.Recovered {
		t.Fatalf("adaptive run never recovered: %+v", ra)
	}
	if rs.Recovered && ra.RecoverySec >= rs.RecoverySec {
		t.Errorf("adaptive recovery %.1fs not strictly faster than static %.1fs",
			ra.RecoverySec, rs.RecoverySec)
	}
	// Post-outage health is compared on the time-weighted mean windowed hit
	// ratio: an instantaneous reading is confounded by the static run's
	// backlog reordering completions, but the integral over the whole
	// post-outage period must favor the planner that kept jobs flowing.
	if ra.PostMeanRatio <= rs.PostMeanRatio {
		t.Errorf("adaptive post-outage hit ratio %.3f not strictly above static %.3f",
			ra.PostMeanRatio, rs.PostMeanRatio)
	}
	// The planner's copies also shorten the backlog: the adaptive run must
	// not finish later than the static one.
	if adaptive.Makespan > static.Makespan {
		t.Errorf("adaptive makespan %.1fs exceeds static %.1fs", adaptive.Makespan, static.Makespan)
	}
}

// TestReplicationDeterministic: two adaptive runs sharing every seed must
// agree on all statistics, including the epoch and recovery records.
func TestReplicationDeterministic(t *testing.T) {
	w := smallWorkload(t, workload.Zipf, 250)
	sc := faults.Scenario{
		Seed:                3,
		TransferFailureProb: 0.1,
		Sites: map[int]faults.SiteFaults{
			1: {Outages: []faults.Window{{Start: 40, End: 90}}},
		},
		MaxJobAttempts: 3,
	}
	run := func() EventStats {
		p := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
		cfg := buildGrid(t, w, func(f bundle.FileID) bool { return f%4 == 0 })
		st, err := RunEvents(w, p, EventOptions{
			ArrivalRate: 2, Grid: cfg, Seed: 13, Faults: &sc,
			Replication: &ReplicationConfig{
				EpochSec: 15, Budget: 8 * bundle.GB, RetireBelow: 0.05, RiskHorizonSec: 30,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("adaptive run not reproducible:\n%+v\n%+v", a, b)
	}
	if a.Replication.Epochs == 0 || a.Replication.Actions == 0 {
		t.Errorf("adaptive run planned nothing: %+v", a.Replication)
	}
	if len(a.Recoveries) == 0 {
		t.Error("outage produced no recovery record")
	}
}

// TestReplicationValidation: the config is rejected up front, not mid-run.
func TestReplicationValidation(t *testing.T) {
	w := smallWorkload(t, workload.Zipf, 50)
	p := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
	// No grid.
	_, err := RunEvents(w, p, EventOptions{
		ArrivalRate: 1, MSS: fastMSS(), Replication: &ReplicationConfig{EpochSec: 10},
	})
	if err == nil {
		t.Error("Replication without Grid accepted")
	}
	// No epoch.
	cfg := buildGrid(t, w, func(bundle.FileID) bool { return true })
	_, err = RunEvents(w, p, EventOptions{
		ArrivalRate: 1, Grid: cfg, Replication: &ReplicationConfig{},
	})
	if err == nil {
		t.Error("zero EpochSec accepted")
	}
}
