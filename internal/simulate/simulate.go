// Package simulate is the Go counterpart of the paper's cacheSim: it drives
// replacement policies with generated (or replayed) workloads and collects
// the §1.2 metrics.
//
// Two simulators are provided:
//
//   - Run: the trace-driven simulator behind every byte-miss-ratio figure.
//     Jobs are served one at a time (optionally through the §5.2 admission
//     queue) and only cache traffic is modelled.
//   - RunEvents (events.go): a discrete-event simulator that adds time —
//     MSS transfer channels, staging delays, job processing, pinning and
//     bounded concurrency — and reports throughput and response times.
package simulate

import (
	"fmt"

	"fbcache/internal/bundle"
	"fbcache/internal/metrics"
	"fbcache/internal/obs"
	"fbcache/internal/policy"
	"fbcache/internal/queue"
	"fbcache/internal/workload"
)

// Options configures a trace-driven run.
type Options struct {
	// QueueLength aggregates jobs into batches of this size served in
	// scheduler order (paper Fig. 9). <= 1 means pure FCFS.
	QueueLength int
	// Scheduler orders batched jobs; nil defaults to FCFS order within the
	// batch. Ignored when QueueLength <= 1.
	Scheduler queue.Scheduler
	// SeriesInterval, if > 0, samples a time-series point every N jobs.
	SeriesInterval int
	// Paranoid verifies cache invariants after every admission (slow).
	Paranoid bool
	// MaxJobs truncates the workload's job list when > 0.
	MaxJobs int
	// Warmup excludes the first N jobs from the returned metrics (they
	// still drive the cache), isolating steady-state behaviour from the
	// compulsory-miss ramp.
	Warmup int
	// Tracer, when non-nil, receives a JobServedEvent per job (stamped with
	// the job ordinal — the trace-driven simulator has no clock). Policy- and
	// cache-level events are installed separately via SetTracer on the policy.
	Tracer obs.Tracer
}

// Run drives every job of w through p and returns the collected metrics.
func Run(w *workload.Workload, p policy.Policy, opts Options) (*metrics.Collector, error) {
	if w == nil || p == nil {
		return nil, fmt.Errorf("simulate: nil workload or policy")
	}
	col := &metrics.Collector{Interval: opts.SeriesInterval}

	served := 0
	serve := func(b bundle.Bundle) {
		res := p.Admit(b)
		served++
		if opts.Tracer != nil {
			// No queueing is modelled here, so queue entry and first stage
			// coincide with service: the critical-path queue wait is zero.
			opts.Tracer.JobServed(obs.JobServedEvent{
				At:             float64(served),
				Job:            served - 1,
				Hit:            res.Hit,
				QueuedAt:       float64(served),
				FirstStageAt:   float64(served),
				BytesRequested: int64(res.BytesRequested),
				BytesLoaded:    int64(res.BytesLoaded),
			})
		}
		if served > opts.Warmup {
			col.Record(res)
		}
		if opts.Paranoid {
			if err := p.Cache().CheckInvariants(); err != nil {
				panic(fmt.Sprintf("simulate: invariant violated after %d jobs: %v", served, err))
			}
		}
	}

	jobs := w.Jobs
	if opts.MaxJobs > 0 && opts.MaxJobs < len(jobs) {
		jobs = jobs[:opts.MaxJobs]
	}

	if opts.QueueLength <= 1 {
		for _, j := range jobs {
			serve(w.Requests[j])
		}
		return col, nil
	}

	sched := opts.Scheduler
	if sched == nil {
		sched = queue.FCFS()
	}
	batcher := queue.NewBatcher(opts.QueueLength, sched, serve)
	for _, j := range jobs {
		batcher.Submit(w.Requests[j])
	}
	batcher.Flush()
	return col, nil
}

// Compare runs the same workload through several policy factories (fresh
// instances each) and returns the collectors keyed by policy name.
func Compare(w *workload.Workload, factories []policy.Factory, opts Options) (map[string]*metrics.Collector, error) {
	out := make(map[string]*metrics.Collector, len(factories))
	for _, mk := range factories {
		p := mk(w.Spec.CacheSize, w.Catalog.SizeFunc())
		col, err := Run(w, p, opts)
		if err != nil {
			return nil, err
		}
		if _, dup := out[p.Name()]; dup {
			return nil, fmt.Errorf("simulate: duplicate policy name %q", p.Name())
		}
		out[p.Name()] = col
	}
	return out, nil
}
