package simulate

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/core"
	"fbcache/internal/obs"
	"fbcache/internal/policy"
	"fbcache/internal/workload"
)

// tinyWorkload is a fully hand-built 3-job run whose every cache decision is
// worked out in the comments below, so the JSONL trace it produces is an
// exact, reviewable artifact rather than a seed-dependent blob.
func tinyWorkload() *workload.Workload {
	cat := bundle.NewCatalog()
	f0 := cat.Add("f0", 4)
	f1 := cat.Add("f1", 3)
	f2 := cat.Add("f2", 2)
	return &workload.Workload{
		Spec:    workload.Spec{CacheSize: 7},
		Catalog: cat,
		Requests: []bundle.Bundle{
			bundle.New(f0, f1), // r0: 7 bytes — exactly fills the cache
			bundle.New(f1, f2), // r1: 5 bytes — forces an eviction round
		},
		Jobs: []int{0, 1, 0},
		// job 0 (r0): cold start, loads f0+f1 (7 bytes), cache full.
		// job 1 (r1): f1 resident, needs f2 (2 bytes) -> OptCacheSelect keeps
		//             r1's files and evicts f0.
		// job 2 (r0): f1 resident, reloads f0 -> evicts f2.
	}
}

// TestGoldenTrace runs the tiny workload under OptFileBundle with a JSONL
// sink installed at both levels (policy + simulator) and compares the trace
// byte-for-byte against the checked-in golden file. It pins three contracts
// at once: the event vocabulary (field names, lowercase kinds), the emit
// ordering (loads/evicts/select rounds inside an admission, then the
// admission, then the job record), and determinism (same workload, same
// bytes — events carry ordinals and sim time, never wall clock).
//
// Regenerate after an intentional format change with:
//
//	UPDATE_GOLDEN=1 go test ./internal/simulate -run TestGoldenTrace
func TestGoldenTrace(t *testing.T) {
	trace := func() []byte {
		w := tinyWorkload()
		opt := core.New(w.Spec.CacheSize, w.Catalog.SizeFunc(), core.Options{})
		var buf bytes.Buffer
		sink := obs.NewJSONLSink(&buf)
		opt.SetTracer(sink)
		p := policy.WrapOptFileBundle(opt)
		if _, err := Run(w, p, Options{Tracer: sink}); err != nil {
			t.Fatal(err)
		}
		if err := sink.Err(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	got := trace()
	if again := trace(); !bytes.Equal(got, again) {
		t.Fatal("two identical runs produced different traces")
	}

	golden := filepath.Join("testdata", "golden_trace.jsonl")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace differs from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}
