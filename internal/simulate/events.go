package simulate

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"

	"fbcache/internal/bundle"
	"fbcache/internal/grid"
	"fbcache/internal/mss"
	"fbcache/internal/policy"
	"fbcache/internal/stats"
	"fbcache/internal/workload"
)

// EventOptions configures the discrete-event simulation.
type EventOptions struct {
	// ArrivalRate is the mean job arrival rate (jobs/second); arrivals are
	// Poisson. Must be positive.
	ArrivalRate float64
	// ProcessSeconds is the compute time of a job once its bundle is staged
	// and pinned; nil means a fixed 1 second.
	ProcessSeconds func(b bundle.Bundle) float64
	// MSS describes the archive misses are fetched from. Ignored when Grid
	// is set.
	MSS mss.Config
	// Grid, when non-nil, replaces the single MSS with a multi-site fetch
	// model: each file is pulled from its cheapest reachable replica,
	// queueing on that site's MSS channels and paying the WAN transfer on
	// top (§2's data-grid setting).
	Grid *GridConfig
	// Slots bounds concurrently executing jobs (default 4).
	Slots int
	// Seed drives the arrival process.
	Seed int64
	// MaxJobs truncates the workload when > 0.
	MaxJobs int
}

// GridConfig wires a topology and replica catalog into the simulation.
type GridConfig struct {
	Topology *grid.Topology
	Replicas *grid.Replicas
}

// stager models where miss traffic comes from and how long it takes.
type stager interface {
	// stage schedules transfers for files at time now and returns when the
	// last one lands in the cache.
	stage(now float64, files bundle.Bundle, sizeOf bundle.SizeFunc) (float64, error)
	// utilization reports mean transfer-channel utilization over [0, horizon].
	utilization(horizon float64) float64
}

// mssStager is the single-archive model.
type mssStager struct{ sys *mss.System }

func (s mssStager) stage(now float64, files bundle.Bundle, sizeOf bundle.SizeFunc) (float64, error) {
	return s.sys.FetchBundle(now, files, sizeOf), nil
}

func (s mssStager) utilization(h float64) float64 { return s.sys.Utilization(h) }

// gridStager pulls each file from its cheapest replica: the source site's
// MSS channels queue the read; the WAN hop adds latency + size/bandwidth on
// top (WAN links are modelled as uncontended).
type gridStager struct {
	topo  *grid.Topology
	reps  *grid.Replicas
	sites []*mss.System // indexed by SiteID
}

func newGridStager(cfg *GridConfig) (*gridStager, error) {
	if cfg.Topology == nil || cfg.Replicas == nil {
		return nil, fmt.Errorf("simulate: GridConfig needs Topology and Replicas")
	}
	g := &gridStager{topo: cfg.Topology, reps: cfg.Replicas}
	for i := 0; i < cfg.Topology.NumSites(); i++ {
		site, err := cfg.Topology.Site(grid.SiteID(i))
		if err != nil {
			return nil, err
		}
		sys, err := mss.NewSystem(site.MSS)
		if err != nil {
			return nil, err
		}
		g.sites = append(g.sites, sys)
	}
	return g, nil
}

func (g *gridStager) stage(now float64, files bundle.Bundle, sizeOf bundle.SizeFunc) (float64, error) {
	finish := now
	for _, f := range files {
		size := sizeOf(f)
		src, _, ok := g.reps.BestSource(g.topo, f, size)
		if !ok {
			return 0, fmt.Errorf("simulate: no reachable replica for file %d", f)
		}
		mssDone := g.sites[src].Fetch(now, size)
		done := mssDone + g.wanSeconds(src, size)
		if done > finish {
			finish = done
		}
	}
	return finish, nil
}

func (g *gridStager) wanSeconds(from grid.SiteID, size bundle.Size) float64 {
	if from == g.topo.Local() {
		return 0
	}
	// TransferSeconds = MSS + WAN; subtract the MSS part to isolate WAN.
	total := g.topo.TransferSeconds(from, size)
	site, err := g.topo.Site(from)
	if err != nil {
		return 0
	}
	return total - site.MSS.TransferSeconds(size)
}

func (g *gridStager) utilization(h float64) float64 {
	if len(g.sites) == 0 || h <= 0 {
		return 0
	}
	total := 0.0
	for _, s := range g.sites {
		total += s.Utilization(h)
	}
	return total / float64(len(g.sites))
}

// EventStats summarizes a discrete-event run.
type EventStats struct {
	Jobs              int64
	Makespan          float64 // seconds from first arrival to last completion
	Throughput        float64 // jobs per second
	MeanResponse      float64 // arrival -> completion
	P95Response       float64
	MeanStaging       float64 // arrival -> bundle fully staged
	HitRatio          float64
	ByteMissRatio     float64
	BytesLoaded       bundle.Size
	MSSUtilization    float64
	UnservedOversized int64
}

type eventKind int

const (
	evArrival eventKind = iota
	evCompletion
)

type event struct {
	at   float64
	kind eventKind
	job  int // index into jobs (arrival) or running-job handle (completion)
}

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// RunEvents runs the timed data-grid simulation: jobs arrive (Poisson),
// queue for an execution slot, have their bundle admitted by the policy,
// stage missing files through the MSS transfer channels, pin their bundle
// while processing, and release it on completion. Response time spans
// arrival to completion, so both cache misses and slot contention show up —
// the throughput view of "optimal service" from §2.
func RunEvents(w *workload.Workload, p policy.Policy, opts EventOptions) (EventStats, error) {
	if w == nil || p == nil {
		return EventStats{}, fmt.Errorf("simulate: nil workload or policy")
	}
	if opts.ArrivalRate <= 0 {
		return EventStats{}, fmt.Errorf("simulate: ArrivalRate must be positive")
	}
	if opts.Slots <= 0 {
		opts.Slots = 4
	}
	proc := opts.ProcessSeconds
	if proc == nil {
		proc = func(bundle.Bundle) float64 { return 1 }
	}
	var archive stager
	if opts.Grid != nil {
		g, err := newGridStager(opts.Grid)
		if err != nil {
			return EventStats{}, err
		}
		archive = g
	} else {
		sys, err := mss.NewSystem(opts.MSS)
		if err != nil {
			return EventStats{}, err
		}
		archive = mssStager{sys: sys}
	}

	jobs := w.Jobs
	if opts.MaxJobs > 0 && opts.MaxJobs < len(jobs) {
		jobs = jobs[:opts.MaxJobs]
	}
	if len(jobs) == 0 {
		return EventStats{}, nil
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	sizeOf := w.Catalog.SizeFunc()
	capacity := p.Cache().Capacity()

	// Pre-draw arrival times.
	arrivals := make([]float64, len(jobs))
	t := 0.0
	for i := range arrivals {
		t += rng.ExpFloat64() / opts.ArrivalRate
		arrivals[i] = t
	}

	type running struct {
		bundleRef bundle.Bundle
		arrival   float64
	}

	var (
		h           eventHeap
		waiting     []int // job indices queued for a slot, FIFO
		inFlight    = make(map[int]running)
		nextHandle  int
		slotsFree   = opts.Slots
		pinnedBytes bundle.Size

		responses []float64
		stagings  []float64
		hits      int64
		bytesReq  bundle.Size
		bytesMiss bundle.Size
		oversized int64
		lastDone  float64
		stageErr  error
	)

	for i := range jobs {
		heap.Push(&h, event{at: arrivals[i], kind: evArrival, job: i})
	}

	dispatch := func(now float64) {
		for slotsFree > 0 && len(waiting) > 0 {
			// Find the first waiting job whose bundle can coexist with the
			// currently pinned bytes (otherwise the policy could be forced
			// to evict pinned files). FIFO among eligible jobs.
			pick := -1
			for i, j := range waiting {
				b := w.Requests[jobs[j]]
				if b.TotalSize(sizeOf)+pinnedBytes <= capacity {
					pick = i
					break
				}
			}
			if pick < 0 {
				return
			}
			j := waiting[pick]
			waiting = append(waiting[:pick], waiting[pick+1:]...)

			b := w.Requests[jobs[j]]
			res := p.Admit(b)
			bytesReq += res.BytesRequested
			bytesMiss += res.BytesLoaded
			if res.Unserviceable {
				oversized++
				continue
			}
			if res.Hit {
				hits++
			}
			staged := now
			if len(res.Loaded) > 0 {
				var err error
				staged, err = archive.stage(now, res.Loaded, sizeOf)
				if err != nil {
					stageErr = err
					return
				}
			}
			stagings = append(stagings, staged-arrivals[j])

			if err := p.Cache().PinBundle(b); err != nil {
				// The eligibility check above should prevent this.
				panic(fmt.Sprintf("simulate: pin failed: %v", err))
			}
			pinnedBytes += b.TotalSize(sizeOf)
			slotsFree--
			done := staged + proc(b)
			handle := nextHandle
			nextHandle++
			inFlight[handle] = running{bundleRef: b, arrival: arrivals[j]}
			heap.Push(&h, event{at: done, kind: evCompletion, job: handle})
		}
	}

	for h.Len() > 0 && stageErr == nil {
		e := heap.Pop(&h).(event)
		switch e.kind {
		case evArrival:
			waiting = append(waiting, e.job)
			dispatch(e.at)
		case evCompletion:
			r := inFlight[e.job]
			delete(inFlight, e.job)
			if err := p.Cache().UnpinBundle(r.bundleRef); err != nil {
				panic(fmt.Sprintf("simulate: unpin failed: %v", err))
			}
			pinnedBytes -= r.bundleRef.TotalSize(sizeOf)
			slotsFree++
			responses = append(responses, e.at-r.arrival)
			if e.at > lastDone {
				lastDone = e.at
			}
			dispatch(e.at)
		}
	}

	st := EventStats{
		Jobs:              int64(len(responses)),
		Makespan:          lastDone,
		BytesLoaded:       bytesMiss,
		UnservedOversized: oversized,
	}
	if stageErr != nil {
		return EventStats{}, stageErr
	}
	if lastDone > 0 {
		st.Throughput = float64(len(responses)) / lastDone
		st.MSSUtilization = archive.utilization(lastDone)
	}
	if len(responses) > 0 {
		var sum stats.Summary
		for _, r := range responses {
			sum.Add(r)
		}
		st.MeanResponse = sum.Mean()
		st.P95Response = stats.Quantile(responses, 0.95)
		st.HitRatio = float64(hits) / float64(len(responses))
	}
	if len(stagings) > 0 {
		var sum stats.Summary
		for _, s := range stagings {
			sum.Add(s)
		}
		st.MeanStaging = sum.Mean()
	}
	if bytesReq > 0 {
		st.ByteMissRatio = float64(bytesMiss) / float64(bytesReq)
	}
	sort.Float64s(responses) // determinism of downstream consumers
	return st, nil
}
