package simulate

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"fbcache/internal/bundle"
	"fbcache/internal/faults"
	"fbcache/internal/grid"
	"fbcache/internal/metrics"
	"fbcache/internal/mss"
	"fbcache/internal/obs"
	"fbcache/internal/policy"
	"fbcache/internal/replicate"
	"fbcache/internal/stats"
	"fbcache/internal/workload"
)

// EventOptions configures the discrete-event simulation.
type EventOptions struct {
	// ArrivalRate is the mean job arrival rate (jobs/second); arrivals are
	// Poisson. Must be positive.
	ArrivalRate float64
	// ProcessSeconds is the compute time of a job once its bundle is staged
	// and pinned; nil means a fixed 1 second.
	ProcessSeconds func(b bundle.Bundle) float64
	// MSS describes the archive misses are fetched from. Ignored when Grid
	// is set.
	MSS mss.Config
	// Grid, when non-nil, replaces the single MSS with a multi-site fetch
	// model: each file is pulled from its cheapest reachable replica,
	// queueing on that site's MSS channels and paying the WAN transfer on
	// top (§2's data-grid setting).
	Grid *GridConfig
	// Slots bounds concurrently executing jobs (default 4).
	Slots int
	// Seed drives the arrival process.
	Seed int64
	// MaxJobs truncates the workload when > 0.
	MaxJobs int
	// Faults, when non-nil, arms the deterministic fault injector:
	// scheduled MSS outages, WAN link-down windows, bandwidth brownouts and
	// seeded per-transfer failures, answered by capped-exponential-backoff
	// retries, ranked-replica failover and per-job staging budgets. A
	// zero-valued scenario reproduces the fault-free simulation bit for
	// bit; see internal/faults.
	Faults *faults.Scenario
	// Tracer, when non-nil, receives Stage (start/retry/failover/done),
	// JobServed and ReplicaPlan events stamped with sim-time seconds. Policy-
	// and cache-level events are installed separately via SetTracer on the
	// policy.
	Tracer obs.Tracer
	// Replication, when non-nil, arms the adaptive epoch re-planner
	// (grid runs only): every EpochSec of sim-time the replica plan is
	// recomputed against the current catalog and fault state — cold
	// planner-installed replicas retire, down sites are skipped as sources,
	// and files whose every live source is about to go dark are
	// emergency-replicated ahead of the outage. See internal/replicate.
	Replication *ReplicationConfig
	// RecoveryWindowJobs and RecoveryEpsilon tune the per-outage recovery
	// measurement armed alongside fault windows: the windowed hit ratio uses
	// the last RecoveryWindowJobs completions (default 50), and recovery is
	// declared when it returns within RecoveryEpsilon (default 0.02) of the
	// pre-outage baseline. See metrics.RecoveryTracker.
	RecoveryWindowJobs int
	RecoveryEpsilon    float64
}

// ReplicationConfig tunes the adaptive replication subsystem of RunEvents.
type ReplicationConfig struct {
	// EpochSec is the re-planning interval in sim seconds (required > 0).
	EpochSec float64
	// Budget is the local replica space the planner may occupy (bytes). A
	// zero budget runs the epochs without ever copying — useful to prove the
	// machinery itself perturbs nothing.
	Budget bundle.Size
	// HalfLifeSec is the predictor's EWMA half-life (default 4×EpochSec).
	HalfLifeSec float64
	// RetireBelow retires a planner-installed replica whose decayed heat
	// falls under it (<= 0 never retires).
	RetireBelow float64
	// RiskHorizonSec is the emergency-replication lookahead (default
	// EpochSec): copy a file now when all its live sources go dark within it.
	RiskHorizonSec float64
	// Assoc, when non-nil, sharpens the predictor with co-occurrence
	// predictions (e.g. *prefetch.Model).
	Assoc replicate.Associations
}

// ReplicationStats summarizes the epoch re-planner's work over a run. All
// zero unless EventOptions.Replication was set.
type ReplicationStats struct {
	// Epochs is how many re-plans ran.
	Epochs int64
	// Actions is the number of committed replications, of which Emergency
	// were planned to outrun a scheduled outage.
	Actions   int64
	Emergency int64
	// Bytes is the re-replication traffic moved to the local site.
	Bytes bundle.Size
	// Retired counts cold planner replicas removed, freeing RetiredBytes.
	Retired      int64
	RetiredBytes bundle.Size
	// Unreachable counts hot files that had no live source at some epoch.
	Unreachable int64
}

// GridConfig wires a topology and replica catalog into the simulation.
type GridConfig struct {
	Topology *grid.Topology
	Replicas *grid.Replicas
}

// stageOutcome is one bundle's staging result: the finish time on success,
// or the moment staging was abandoned (retries, failovers and budget
// exhausted) on failure. remote records whether any file came from a
// non-local site — the recovery tracker's "locally served" flag is its
// negation.
type stageOutcome struct {
	at     float64
	ok     bool
	remote bool
}

// stager models where miss traffic comes from and how long it takes.
type stager interface {
	// stage schedules transfers for job's files at time now and reports when
	// the last one lands in the cache — or that staging failed and when.
	// job only labels trace events.
	stage(now float64, job int, files bundle.Bundle, sizeOf bundle.SizeFunc) (stageOutcome, error)
	// utilization reports mean transfer-channel utilization over [0, horizon].
	utilization(horizon float64) float64
}

// resilient is the retry/failover engine shared by both stagers. With a
// zero scenario every transfer succeeds on its first attempt against the
// cheapest source, so the timing math reduces exactly to the fault-free
// model.
type resilient struct {
	inj    *faults.Injector
	budget float64 // per-job staging budget (seconds; 0 = unlimited)
	res    metrics.Resilience
	tr     obs.Tracer // nil unless EventOptions.Tracer was set
}

func (r *resilient) deadline(now float64) float64 {
	if r.budget > 0 {
		return now + r.budget
	}
	return math.Inf(1)
}

// stageFile schedules one file's transfer: bounded retries per source
// (capped exponential backoff, jitter from the injector's seeded RNG),
// failover across srcs cheapest-first, and bounded waits for the grid to
// recover when every source is dark. fetch schedules one attempt against
// srcs[k] at time t and returns its landing time; a failed attempt still
// occupied its MSS channel — the transfer broke, it wasn't free.
func (r *resilient) stageFile(now, deadline float64, job int, srcs []int, fetch func(k int, t float64) float64) (float64, bool) {
	retry := r.inj.Retry()
	t := now
	// One outer round per recovery wait; bounded so a permanently dark grid
	// cannot spin the event loop.
	for round := 0; round < retry.MaxAttempts; round++ {
		attempted := false
		for k, site := range srcs {
			if !r.inj.Up(site, t) {
				continue
			}
			attempted = true
			if k > 0 {
				// Staging moved past the cheapest replica — whether it was
				// down or its attempts were exhausted.
				r.res.Failovers++
				if r.tr != nil {
					r.tr.Stage(obs.StageEvent{
						At: t, Phase: obs.StageFailover, Job: job, Site: fmt.Sprint(site),
					})
				}
			}
			for attempt := 0; attempt < retry.MaxAttempts; attempt++ {
				done := fetch(k, t)
				if done > deadline {
					r.res.Timeouts++
					return deadline, false
				}
				if !r.inj.TransferFails() {
					return done, true
				}
				r.res.Retries++
				if r.tr != nil {
					r.tr.Stage(obs.StageEvent{
						At: done, Phase: obs.StageRetry, Job: job, Site: fmt.Sprint(site),
					})
				}
				t = done + retry.Backoff(attempt, r.inj.RNG())
				if t > deadline {
					r.res.Timeouts++
					return deadline, false
				}
			}
		}
		if attempted {
			// Every reachable replica exhausted its attempt budget.
			return t, false
		}
		// Grid dark at t: wait for the earliest recovery among the sources.
		next := math.Inf(1)
		for _, site := range srcs {
			if u := r.inj.NextUp(site, t); u < next {
				next = u
			}
		}
		if math.IsInf(next, 1) {
			return t, false
		}
		if next > deadline {
			r.res.Timeouts++
			return deadline, false
		}
		t = next
	}
	return t, false
}

// mssStager is the single-archive model (site index 0 in fault scenarios).
type mssStager struct {
	sys *mss.System
	rs  *resilient
}

var mssOnlySource = []int{0}

func (s *mssStager) stage(now float64, job int, files bundle.Bundle, sizeOf bundle.SizeFunc) (stageOutcome, error) {
	deadline := s.rs.deadline(now)
	finish := now
	// The single-MSS model has no local replica tier: any staging is a trip
	// to the archive.
	remote := len(files) > 0
	for _, f := range files {
		size := sizeOf(f)
		at, ok := s.rs.stageFile(now, deadline, job, mssOnlySource, func(_ int, t float64) float64 {
			return s.sys.Fetch(t, size)
		})
		if !ok {
			if at < finish {
				at = finish
			}
			return stageOutcome{at: at, remote: remote}, nil
		}
		if at > finish {
			finish = at
		}
	}
	return stageOutcome{at: finish, ok: true, remote: remote}, nil
}

func (s *mssStager) utilization(h float64) float64 { return s.sys.Utilization(h) }

// gridStager pulls each file from its cheapest reachable replica: the
// source site's MSS channels queue the read; the WAN hop adds latency +
// size/bandwidth on top (WAN links are modelled as uncontended). Under
// faults, staging retries against a source with backoff and fails over
// along Replicas.RankedSources when a site is down or its attempts are
// exhausted.
type gridStager struct {
	topo  *grid.Topology
	reps  *grid.Replicas
	sites []*mss.System // indexed by SiteID
	rs    *resilient

	// srcs is the ranked-source scratch reused across stage calls (one
	// ranking happens per staged file; stageFile only reads the slice).
	srcs []int
}

// siteAvailability adapts the injector's per-site schedule (outages,
// brownouts) to the mss.Availability hook. Link-down windows are handled by
// the failover walk instead — an unreachable site is skipped, not queued on.
type siteAvailability struct {
	inj  *faults.Injector
	site int
}

func (a siteAvailability) NextUp(at float64) float64   { return a.inj.SiteNextUp(a.site, at) }
func (a siteAvailability) Slowdown(at float64) float64 { return a.inj.Slowdown(a.site, at) }

func newGridStager(cfg *GridConfig, rs *resilient, armed bool) (*gridStager, error) {
	if cfg.Topology == nil || cfg.Replicas == nil {
		return nil, fmt.Errorf("simulate: GridConfig needs Topology and Replicas")
	}
	g := &gridStager{topo: cfg.Topology, reps: cfg.Replicas, rs: rs}
	for i := 0; i < cfg.Topology.NumSites(); i++ {
		site, err := cfg.Topology.Site(grid.SiteID(i))
		if err != nil {
			return nil, err
		}
		sys, err := mss.NewSystem(site.MSS)
		if err != nil {
			return nil, err
		}
		if armed {
			sys.SetAvailability(siteAvailability{inj: rs.inj, site: i})
		}
		g.sites = append(g.sites, sys)
	}
	return g, nil
}

func (g *gridStager) stage(now float64, job int, files bundle.Bundle, sizeOf bundle.SizeFunc) (stageOutcome, error) {
	deadline := g.rs.deadline(now)
	finish := now
	remote := false
	local := g.topo.Local()
	for _, f := range files {
		size := sizeOf(f)
		ranked := g.reps.RankedSources(g.topo, f, size)
		if len(ranked) == 0 {
			return stageOutcome{}, fmt.Errorf("simulate: no reachable replica for file %d", f)
		}
		g.srcs = g.srcs[:0]
		for _, s := range ranked {
			g.srcs = append(g.srcs, int(s.Site))
		}
		// fetched tracks the site of the last attempt; on success that is the
		// source the file actually came from.
		fetched := local
		at, ok := g.rs.stageFile(now, deadline, job, g.srcs, func(k int, t float64) float64 {
			site := ranked[k].Site
			fetched = site
			return g.sites[site].Fetch(t, size) + g.wanSeconds(site, size)
		})
		if fetched != local {
			remote = true
		}
		if !ok {
			if at < finish {
				at = finish
			}
			return stageOutcome{at: at, remote: remote}, nil
		}
		if at > finish {
			finish = at
		}
	}
	return stageOutcome{at: finish, ok: true, remote: remote}, nil
}

func (g *gridStager) wanSeconds(from grid.SiteID, size bundle.Size) float64 {
	if from == g.topo.Local() {
		return 0
	}
	// TransferSeconds = MSS + WAN; subtract the MSS part to isolate WAN.
	total := g.topo.TransferSeconds(from, size)
	site, err := g.topo.Site(from)
	if err != nil {
		return 0
	}
	return total - site.MSS.TransferSeconds(size)
}

func (g *gridStager) utilization(h float64) float64 {
	if len(g.sites) == 0 || h <= 0 {
		return 0
	}
	total := 0.0
	for _, s := range g.sites {
		total += s.Utilization(h)
	}
	return total / float64(len(g.sites))
}

// EventStats summarizes a discrete-event run.
type EventStats struct {
	Jobs              int64
	Makespan          float64 // seconds from first arrival to last completion
	Throughput        float64 // jobs per second
	MeanResponse      float64 // arrival -> completion
	P95Response       float64
	MeanStaging       float64 // arrival -> bundle fully staged
	HitRatio          float64
	ByteMissRatio     float64
	BytesLoaded       bundle.Size
	MSSUtilization    float64
	UnservedOversized int64

	// Resilience counts the fault-handling work done during the run
	// (retries, failovers, timeouts, requeues, failed jobs). All zero in
	// fault-free runs.
	Resilience metrics.Resilience
	// SiteDowntime is per-site unusable seconds (MSS outage or link down)
	// over [0, Makespan]; nil unless the run was a grid run with faults
	// armed.
	SiteDowntime []float64
	// Replication summarizes the adaptive epoch re-planner's work; all zero
	// unless EventOptions.Replication was set.
	Replication ReplicationStats
	// Recoveries holds one per-outage recovery record (time for the windowed
	// hit ratio to return to its pre-outage baseline; see
	// metrics.RecoveryTracker). Nil unless faults with outage or link-down
	// windows were armed.
	Recoveries []metrics.Recovery
}

type eventKind int

const (
	evArrival eventKind = iota
	evCompletion
	evFailed // a job's staging was abandoned; its slot frees and it requeues or fails
	evReplan // periodic adaptive-replication epoch; job field unused
)

type event struct {
	at   float64
	kind eventKind
	job  int // index into jobs (arrival) or running-job handle (completion)
}

// eventQueue is a binary min-heap of events ordered by time. It replaces
// container/heap, whose interface{} Push/Pop boxed one event per queue
// operation — two heap allocations per simulated event. The sift loops
// reproduce container/heap's comparison order exactly, so the relative order
// of equal-timestamp events — and therefore golden traces and the
// determinism gates — is unchanged.
type eventQueue struct {
	ev []event
}

func (q *eventQueue) len() int { return len(q.ev) }

// running is the in-flight record of one dispatched job: what RunEvents
// needs at completion time to unpin, account and emit the JobServed event.
type running struct {
	bundleRef bundle.Bundle
	arrival   float64
	jobIdx    int  // index into jobs, for trace events
	hit       bool // request-hit on this (final) dispatch
	// localServe is the recovery tracker's health flag: the job was
	// served from the cache or staged entirely from the local site —
	// nothing crossed the WAN.
	localServe bool
	staged     float64 // when the bundle was fully staged
	loaded     bundle.Size
}

// runScratch is the pooled per-run storage of RunEvents (DESIGN.md §13):
// the event array, the per-job tables, the FIFO, and the response/staging
// records. One run owns one instance for its whole duration and returns it
// emptied, so sweeps and benchmarks that call RunEvents in a loop stop
// paying the per-run slice and map churn that used to dominate the
// allocation profile.
type runScratch struct {
	ev         []event
	arrivals   []float64
	waiting    []int
	responses  []float64
	stagings   []float64
	attempts   []int
	firstStage []float64
	inFlight   map[int]running
	restage    map[int]bundle.Bundle
}

// runPool recycles runScratch instances across RunEvents calls.
var runPool = sync.Pool{New: func() any {
	return &runScratch{
		inFlight: make(map[int]running),
		restage:  make(map[int]bundle.Bundle),
	}
}}

// getRunScratch returns pooled run storage with the indexed per-job tables
// sized for n jobs (attempts zeroed; firstStage left for the caller's -1
// fill) and every append-driven slice empty.
func getRunScratch(n int) *runScratch {
	sc := runPool.Get().(*runScratch)
	if cap(sc.attempts) < n {
		sc.attempts = make([]int, n)
	}
	sc.attempts = sc.attempts[:n]
	clear(sc.attempts)
	if cap(sc.firstStage) < n {
		sc.firstStage = make([]float64, n)
	}
	sc.firstStage = sc.firstStage[:n]
	return sc
}

// push inserts e, sifting it up. One push happens per simulated event, so it
// carries perf contracts (the sift holds e and shifts parents down, which
// performs the same comparisons as container/heap's swap loop and leaves the
// same array).
//
//fbvet:noescape
//fbvet:nobce parent index (j-1)/2 < j stays provably in range
func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	ev := q.ev
	// Unsigned indices: j starts at len-1 < len and only ever moves to the
	// parent (j-1)/2 < j, so every access stays in range and prove can drop
	// the bounds checks.
	j := uint(len(ev) - 1)
	for j > 0 && j < uint(len(ev)) {
		i := (j - 1) / 2 // parent
		if !(e.at < ev[i].at) {
			break
		}
		ev[j] = ev[i]
		j = i
	}
	if j < uint(len(ev)) {
		ev[j] = e
	}
}

// pop removes and returns the earliest event, sifting the displaced tail
// element down with container/heap's exact comparison order. Calling pop on
// an empty queue returns the zero event (the run loop guards on len).
//
//fbvet:noescape
//fbvet:nobce child indices are guarded against n before use
func (q *eventQueue) pop() event {
	ev := q.ev
	n := len(ev) - 1
	if n < 0 {
		return event{}
	}
	ev[0], ev[n] = ev[n], ev[0]
	// Unsigned child indices: 2*i+1 can overflow a signed int, which is why
	// container/heap carries a j1 < 0 guard; with uint arithmetic the wrap
	// lands above un and the same >= test covers it, so prove can drop the
	// bounds checks inside the loop.
	un := uint(n)
	i := uint(0)
	for {
		j1 := 2*i + 1
		if j1 >= un {
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < un && ev[j2].at < ev[j1].at {
			j = j2 // right child is earlier
		}
		if j >= un || i >= un {
			break // unreachable: j ∈ {j1, j2} < un and i is a previous j
		}
		if !(ev[j].at < ev[i].at) {
			break
		}
		ev[i], ev[j] = ev[j], ev[i]
		i = j
	}
	e := ev[n]
	q.ev = ev[:n]
	return e
}

// RunEvents runs the timed data-grid simulation: jobs arrive (Poisson),
// queue for an execution slot, have their bundle admitted by the policy,
// stage missing files through the MSS transfer channels, pin their bundle
// while processing, and release it on completion. Response time spans
// arrival to completion, so both cache misses and slot contention show up —
// the throughput view of "optimal service" from §2.
func RunEvents(w *workload.Workload, p policy.Policy, opts EventOptions) (EventStats, error) {
	if w == nil || p == nil {
		return EventStats{}, fmt.Errorf("simulate: nil workload or policy")
	}
	if opts.ArrivalRate <= 0 {
		return EventStats{}, fmt.Errorf("simulate: ArrivalRate must be positive")
	}
	if opts.Slots <= 0 {
		opts.Slots = 4
	}
	proc := opts.ProcessSeconds
	if proc == nil {
		proc = func(bundle.Bundle) float64 { return 1 }
	}
	var scenario faults.Scenario
	if opts.Faults != nil {
		scenario = *opts.Faults
	}
	inj, err := faults.NewInjector(scenario)
	if err != nil {
		return EventStats{}, err
	}
	rs := &resilient{inj: inj, budget: inj.Scenario().StageBudgetSec, tr: opts.Tracer}
	armed := opts.Faults != nil

	// Arm per-outage recovery measurement when the scenario schedules any
	// unusable windows. A zero scenario has none, so fault-free runs carry
	// nil Recoveries and stay bit-identical.
	var recovery *metrics.RecoveryTracker
	if armed {
		siteIDs := make([]int, 0, len(inj.Scenario().Sites))
		for s := range inj.Scenario().Sites {
			siteIDs = append(siteIDs, s)
		}
		sort.Ints(siteIDs)
		var outs []metrics.Outage
		for _, s := range siteIDs {
			for _, win := range inj.UnusableWindows(s) {
				outs = append(outs, metrics.Outage{Site: s, Start: win.Start, End: win.End})
			}
		}
		if len(outs) > 0 {
			recovery = metrics.NewRecoveryTracker(outs, opts.RecoveryWindowJobs, opts.RecoveryEpsilon)
		}
	}
	var archive stager
	var gridArchive *gridStager
	if opts.Grid != nil {
		g, err := newGridStager(opts.Grid, rs, armed)
		if err != nil {
			return EventStats{}, err
		}
		archive, gridArchive = g, g
	} else {
		sys, err := mss.NewSystem(opts.MSS)
		if err != nil {
			return EventStats{}, err
		}
		if armed {
			sys.SetAvailability(siteAvailability{inj: inj, site: 0})
		}
		archive = &mssStager{sys: sys, rs: rs}
	}

	jobs := w.Jobs
	if opts.MaxJobs > 0 && opts.MaxJobs < len(jobs) {
		jobs = jobs[:opts.MaxJobs]
	}
	if len(jobs) == 0 {
		return EventStats{}, nil
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	sizeOf := w.Catalog.SizeFunc()
	capacity := p.Cache().Capacity()

	// Per-run bookkeeping comes from the run-scratch pool (see runScratch):
	// repeated runs — sweeps, benchmarks, srmbench load loops — reuse the
	// event array, the per-job tables and the response/staging records
	// instead of reallocating them per run.
	sc := getRunScratch(len(jobs))

	// Pre-draw arrival times.
	arrivals := sc.arrivals
	t := 0.0
	for range jobs {
		t += rng.ExpFloat64() / opts.ArrivalRate
		arrivals = append(arrivals, t)
	}
	var (
		h           eventQueue
		waiting     = sc.waiting
		inFlight    = sc.inFlight
		nextHandle  int
		slotsFree   = opts.Slots
		pinnedBytes bundle.Size

		responses = sc.responses
		stagings  = sc.stagings
		hits      int64
		bytesReq  bundle.Size
		bytesMiss bundle.Size
		oversized int64
		lastDone  float64
		stageErr  error

		// attempts counts dispatches per job so repeat Admits after a failed
		// staging don't distort the demand-side stats; restage carries the
		// files a failed attempt loaded but never finished transferring, so
		// the retry stages them again even though they look resident.
		attempts = sc.attempts
		restage  = sc.restage
		// firstStage records when each job first won a slot (its bundle's
		// first Admit); requeued attempts keep the original stamp so the
		// JobServed critical path separates queue wait from retry churn.
		firstStage = sc.firstStage
	)
	h.ev = sc.ev
	defer func() {
		// Return the (possibly grown) backing storage to the pool, emptied.
		sc.ev = h.ev[:0]
		sc.arrivals = arrivals[:0]
		sc.waiting = waiting[:0]
		sc.responses = responses[:0]
		sc.stagings = stagings[:0]
		sc.attempts = attempts[:0]
		sc.firstStage = firstStage[:0]
		clear(sc.inFlight)
		clear(sc.restage)
		runPool.Put(sc)
	}()
	for i := range firstStage {
		firstStage[i] = -1
	}
	maxJobAttempts := inj.Scenario().MaxJobAttempts

	// All arrivals are known up front; one backing array sized for them plus
	// the in-flight completions and the single pending replan epoch serves
	// the whole run.
	for i := range jobs {
		h.push(event{at: arrivals[i], kind: evArrival, job: i})
	}

	// Adaptive replication: a predictor fed by arriving bundles and an epoch
	// planner re-run against the live catalog and fault state. At most one
	// replan event is pending at a time; it stops rescheduling once the rest
	// of the queue drains, so the loop always terminates.
	var (
		pred      *replicate.Predictor
		planner   *replicate.Planner
		replStats ReplicationStats
		epochN    int // trace-facing epoch ordinal; replStats.Epochs mirrors it
	)
	if rc := opts.Replication; rc != nil {
		if opts.Grid == nil {
			return EventStats{}, fmt.Errorf("simulate: Replication requires Grid")
		}
		if rc.EpochSec <= 0 {
			return EventStats{}, fmt.Errorf("simulate: Replication.EpochSec must be positive")
		}
		halfLife := rc.HalfLifeSec
		if halfLife <= 0 {
			halfLife = 4 * rc.EpochSec
		}
		horizon := rc.RiskHorizonSec
		if horizon <= 0 {
			horizon = rc.EpochSec
		}
		pred = replicate.NewPredictor(replicate.PredictorConfig{
			HalfLifeSec: halfLife, Assoc: rc.Assoc,
		})
		planner, err = replicate.NewPlanner(opts.Grid.Topology, opts.Grid.Replicas, sizeOf, pred, replicate.PlannerConfig{
			Budget: rc.Budget, RetireBelow: rc.RetireBelow, RiskHorizonSec: horizon,
		})
		if err != nil {
			return EventStats{}, err
		}
		h.push(event{at: rc.EpochSec, kind: evReplan})
	}

	dispatch := func(now float64) {
		for slotsFree > 0 && len(waiting) > 0 {
			// Find the first waiting job whose bundle can coexist with the
			// currently pinned bytes (otherwise the policy could be forced
			// to evict pinned files). FIFO among eligible jobs.
			pick := -1
			for i, j := range waiting {
				b := w.Requests[jobs[j]]
				if b.TotalSize(sizeOf)+pinnedBytes <= capacity {
					pick = i
					break
				}
			}
			if pick < 0 {
				return
			}
			j := waiting[pick]
			waiting = append(waiting[:pick], waiting[pick+1:]...)
			if firstStage[j] < 0 {
				firstStage[j] = now
			}

			b := w.Requests[jobs[j]]
			res := p.Admit(b)
			if attempts[j] == 0 {
				bytesReq += res.BytesRequested
				bytesMiss += res.BytesLoaded
				if res.Unserviceable {
					oversized++
					continue
				}
				if res.Hit {
					hits++
				}
			} else {
				// A retried job's demand was already counted; only new miss
				// traffic (evicted between attempts) adds to the byte flow.
				bytesMiss += res.BytesLoaded
				if res.Unserviceable {
					oversized++
					continue
				}
			}
			toStage := res.Loaded
			if carry, ok := restage[j]; ok {
				toStage = toStage.Union(carry)
				delete(restage, j)
			}
			staged := now
			localServe := true
			if len(toStage) > 0 {
				if opts.Tracer != nil {
					opts.Tracer.Stage(obs.StageEvent{
						At: now, Phase: obs.StageStart, Job: j,
						Files: len(toStage), Bytes: int64(toStage.TotalSize(sizeOf)),
					})
				}
				out, err := archive.stage(now, j, toStage, sizeOf)
				if err != nil {
					stageErr = err
					return
				}
				if !out.ok {
					if opts.Tracer != nil {
						opts.Tracer.Stage(obs.StageEvent{
							At: out.at, Phase: obs.StageDone, Job: j, Files: len(toStage),
						})
					}
					// Staging abandoned: hold the slot until the failure is
					// discovered, then requeue or fail the job from evFailed.
					// Clone: toStage may alias the policy's Result scratch,
					// which the next Admit overwrites.
					restage[j] = toStage.Clone()
					slotsFree--
					h.push(event{at: out.at, kind: evFailed, job: j})
					continue
				}
				staged = out.at
				localServe = !out.remote
				if opts.Tracer != nil {
					opts.Tracer.Stage(obs.StageEvent{
						At: staged, Phase: obs.StageDone, Job: j,
						Files: len(toStage), OK: true,
					})
				}
			}
			stagings = append(stagings, staged-arrivals[j])

			if err := p.Cache().PinBundle(b); err != nil {
				// The eligibility check above should prevent this.
				panic(fmt.Sprintf("simulate: pin failed: %v", err))
			}
			pinnedBytes += b.TotalSize(sizeOf)
			slotsFree--
			done := staged + proc(b)
			handle := nextHandle
			nextHandle++
			inFlight[handle] = running{
				bundleRef: b, arrival: arrivals[j],
				jobIdx: j, hit: res.Hit, localServe: localServe,
				staged: staged, loaded: res.BytesLoaded,
			}
			h.push(event{at: done, kind: evCompletion, job: handle})
		}
	}

	for h.len() > 0 && stageErr == nil {
		e := h.pop()
		switch e.kind {
		case evArrival:
			if pred != nil {
				pred.Observe(e.at, w.Requests[jobs[e.job]], 1)
			}
			waiting = append(waiting, e.job)
			dispatch(e.at)
		case evCompletion:
			r := inFlight[e.job]
			delete(inFlight, e.job)
			if err := p.Cache().UnpinBundle(r.bundleRef); err != nil {
				panic(fmt.Sprintf("simulate: unpin failed: %v", err))
			}
			pinnedBytes -= r.bundleRef.TotalSize(sizeOf)
			slotsFree++
			if opts.Tracer != nil {
				opts.Tracer.JobServed(obs.JobServedEvent{
					At: e.at, Job: r.jobIdx, Hit: r.hit,
					ResponseSec:    e.at - r.arrival,
					StagingSec:     r.staged - r.arrival,
					QueuedAt:       r.arrival,
					FirstStageAt:   firstStage[r.jobIdx],
					BytesRequested: int64(r.bundleRef.TotalSize(sizeOf)),
					BytesLoaded:    int64(r.loaded),
				})
			}
			responses = append(responses, e.at-r.arrival)
			if recovery != nil {
				// The tracker's "hit" is the local-service flag: outages hurt
				// by forcing (or stalling) WAN staging, and that is exactly
				// what this ratio watches.
				recovery.ObserveJob(e.at, r.localServe)
			}
			if e.at > lastDone {
				lastDone = e.at
			}
			dispatch(e.at)
		case evFailed:
			slotsFree++
			attempts[e.job]++
			if attempts[e.job] < maxJobAttempts {
				rs.res.Requeues++
				waiting = append(waiting, e.job)
			} else {
				rs.res.FailedJobs++
				delete(restage, e.job)
				if e.at > lastDone {
					lastDone = e.at
				}
			}
			dispatch(e.at)
		case evReplan:
			if h.len() == 0 {
				// Everything else has drained: the run is over and a fresh
				// plan has nothing left to serve. Not rescheduling here is
				// what terminates the loop.
				break
			}
			ep := planner.Replan(e.at, inj)
			epochN++
			replStats.Epochs++
			replStats.Actions += int64(len(ep.Actions))
			replStats.Emergency += int64(ep.Emergency)
			replStats.Bytes += ep.PlannedBytes
			replStats.Retired += int64(len(ep.Retired))
			replStats.RetiredBytes += ep.RetiredBytes
			replStats.Unreachable += int64(len(ep.Unreachable))
			if opts.Tracer != nil {
				opts.Tracer.ReplicaPlan(obs.ReplicaPlanEvent{
					At: e.at, Epoch: epochN,
					Actions: len(ep.Actions), Emergency: ep.Emergency,
					Bytes:   int64(ep.PlannedBytes),
					Retired: len(ep.Retired), RetiredBytes: int64(ep.RetiredBytes),
					Unreachable: len(ep.Unreachable),
				})
			}
			h.push(event{at: e.at + opts.Replication.EpochSec, kind: evReplan})
		}
	}

	st := EventStats{
		Jobs:              int64(len(responses)),
		Makespan:          lastDone,
		BytesLoaded:       bytesMiss,
		UnservedOversized: oversized,
		Resilience:        rs.res,
		Replication:       replStats,
	}
	if recovery != nil {
		st.Recoveries = recovery.Finish()
	}
	if stageErr != nil {
		return EventStats{}, stageErr
	}
	if armed && gridArchive != nil {
		st.SiteDowntime = make([]float64, len(gridArchive.sites))
		for i := range st.SiteDowntime {
			st.SiteDowntime[i] = inj.DowntimeSeconds(i, lastDone)
		}
	}
	if lastDone > 0 {
		st.Throughput = float64(len(responses)) / lastDone
		st.MSSUtilization = archive.utilization(lastDone)
	}
	if len(responses) > 0 {
		var sum stats.Summary
		for _, r := range responses {
			sum.Add(r)
		}
		st.MeanResponse = sum.Mean()
		st.P95Response = stats.Quantile(responses, 0.95)
		st.HitRatio = float64(hits) / float64(len(responses))
	}
	if len(stagings) > 0 {
		var sum stats.Summary
		for _, s := range stagings {
			sum.Add(s)
		}
		st.MeanStaging = sum.Mean()
	}
	if bytesReq > 0 {
		st.ByteMissRatio = float64(bytesMiss) / float64(bytesReq)
	}
	sort.Float64s(responses) // determinism of downstream consumers
	return st, nil
}
