package simulate

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/faults"
	"fbcache/internal/obs"
	"fbcache/internal/workload"
)

// replicaOnlyTracer forwards only replica_plan events to the sink, keeping
// the golden file a reviewable record of the planner's epoch decisions
// rather than a full simulator trace.
type replicaOnlyTracer struct {
	obs.NopTracer
	sink *obs.JSONLSink
}

func (t replicaOnlyTracer) ReplicaPlan(e obs.ReplicaPlanEvent) { t.sink.ReplicaPlan(e) }

// TestGoldenReplicaTrace pins the replica_plan event vocabulary and the
// epoch re-planner's decision sequence under a seeded outage: field names,
// epoch ordinals, emergency counts, and byte totals must all reproduce
// byte-for-byte. Regenerate after an intentional change with:
//
//	UPDATE_GOLDEN=1 go test ./internal/simulate -run TestGoldenReplicaTrace
func TestGoldenReplicaTrace(t *testing.T) {
	trace := func() []byte {
		w := smallWorkload(t, workload.Zipf, 120)
		sc := faults.Scenario{Sites: map[int]faults.SiteFaults{
			1: {Outages: []faults.Window{{Start: 30, End: 60}}},
		}}
		p := optFactory()(w.Spec.CacheSize, w.Catalog.SizeFunc())
		cfg := buildGrid(t, w, func(bundle.FileID) bool { return false })
		var buf bytes.Buffer
		sink := obs.NewJSONLSink(&buf)
		_, err := RunEvents(w, p, EventOptions{
			ArrivalRate: 2, Seed: 5, Grid: cfg, Faults: &sc,
			Replication: &ReplicationConfig{
				EpochSec: 10, Budget: 16 * bundle.GB,
				RetireBelow: 0.02, RiskHorizonSec: 40,
			},
			Tracer: replicaOnlyTracer{sink: sink},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Err(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	got := trace()
	if again := trace(); !bytes.Equal(got, again) {
		t.Fatal("two identical runs produced different replica traces")
	}

	golden := filepath.Join("testdata", "golden_replica_trace.jsonl")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("replica trace differs from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}
