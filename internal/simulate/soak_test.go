package simulate

import (
	"math/rand"
	"reflect"
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/core"
	"fbcache/internal/faults"
	"fbcache/internal/history"
	"fbcache/internal/policy"
	"fbcache/internal/policy/classic"
	"fbcache/internal/policy/landlord"
	"fbcache/internal/workload"
)

// TestSoakAllPoliciesAllModes is the long mixed stress run: every policy
// variant crossed with every service mode (plain, queued, hybrid, timed)
// over a churning workload, with cache invariants checked throughout. It
// exists to catch interaction bugs none of the focused tests provoke.
func TestSoakAllPoliciesAllModes(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	spec := workload.DefaultSpec()
	spec.Jobs = 1200
	spec.NumFiles = 150
	spec.NumRequests = 90
	spec.CacheSize = 1 * bundle.GB // tight: heavy replacement churn
	spec.MaxFilePct = 0.08
	spec.MaxBundleFrac = 0.5
	spec.Popularity = workload.Zipf
	spec.Clusters = 15
	w, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}

	factories := map[string]policy.Factory{
		"opt-cache-resident": policy.OptFileBundleFactory(core.Options{
			History: history.Config{Truncation: history.CacheResident},
		}),
		"opt-window-decay": policy.OptFileBundleFactory(core.Options{
			History:     history.Config{Truncation: history.Window, Limit: 48},
			DecayEvery:  100,
			DecayFactor: 0.7,
		}),
		"opt-prefetch-literal": policy.OptFileBundleFactory(core.Options{
			History:      history.Config{Truncation: history.CacheResident},
			Prefetch:     true,
			LiteralEvict: true,
		}),
		"landlord": landlord.Factory(),
		"gdsf":     classic.GDSFFactory(),
		"lru":      classic.LRUFactory(),
	}

	for name, mk := range factories {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			// Plain paranoid run.
			p := mk(spec.CacheSize, w.Catalog.SizeFunc())
			col, err := Run(w, p, Options{Paranoid: true, Warmup: 100})
			if err != nil {
				t.Fatal(err)
			}
			if bmr := col.ByteMissRatio(); bmr <= 0 || bmr > 1 {
				t.Errorf("plain: byte miss %v", bmr)
			}

			// Queued run.
			p2 := mk(spec.CacheSize, w.Catalog.SizeFunc())
			col2, err := Run(w, p2, Options{QueueLength: 20, Paranoid: true})
			if err != nil {
				t.Fatal(err)
			}
			if col2.Jobs() != int64(spec.Jobs) {
				t.Errorf("queued: served %d of %d", col2.Jobs(), spec.Jobs)
			}

			// Hybrid run.
			p3 := mk(spec.CacheSize, w.Catalog.SizeFunc())
			st, err := RunHybrid(w, p3, HybridOptions{BundleFraction: 0.6, Seed: 5, Paranoid: true})
			if err != nil {
				t.Fatal(err)
			}
			if st.BundleJobs+st.PerFileJobs != int64(spec.Jobs) {
				t.Errorf("hybrid: lost jobs")
			}

			// Timed run with pinning.
			p4 := mk(spec.CacheSize, w.Catalog.SizeFunc())
			ev, err := RunEvents(w, p4, EventOptions{ArrivalRate: 4, MSS: fastMSS(), Seed: 2, MaxJobs: 600})
			if err != nil {
				t.Fatal(err)
			}
			if ev.Jobs != 600 {
				t.Errorf("events: %d jobs", ev.Jobs)
			}
			for _, f := range p4.Cache().Resident() {
				if p4.Cache().Pinned(f) {
					t.Fatalf("events: leaked pin on %d", f)
				}
			}
		})
	}

	// Adversarial bundle stream straight at one policy: random duplicates,
	// singletons, giant unserviceable bundles, empty bundles.
	p := factories["opt-cache-resident"](spec.CacheSize, w.Catalog.SizeFunc())
	rng := rand.New(rand.NewSource(123))
	for i := 0; i < 2000; i++ {
		var ids []bundle.FileID
		for k := 0; k < rng.Intn(12); k++ {
			ids = append(ids, bundle.FileID(rng.Intn(spec.NumFiles)))
		}
		res := p.Admit(bundle.New(ids...))
		if !res.Unserviceable && !p.Cache().Supports(bundle.New(ids...)) {
			t.Fatalf("step %d: serviced bundle not resident", i)
		}
		if err := p.Cache().CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

// TestFaultSoak is the fault-schedule stress run: a grid sim under a dense
// scenario (outages, link-down windows, brownouts, per-transfer failures,
// staging budgets, requeues) for each policy family. It asserts the event
// loop terminates, every submitted job is accounted for (completed + failed
// + oversized), pins are released, and two runs sharing a seed are
// byte-identical. CI runs it with -tags fbinvariant so the cache's
// invariant checks are armed throughout.
func TestFaultSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	spec := workload.DefaultSpec()
	spec.Jobs = 800
	spec.NumFiles = 150
	spec.NumRequests = 90
	spec.CacheSize = 1 * bundle.GB
	spec.MaxFilePct = 0.08
	spec.MaxBundleFrac = 0.5
	spec.Popularity = workload.Zipf
	spec.Clusters = 15
	w, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}

	sc := faults.Scenario{
		Seed:                41,
		TransferFailureProb: 0.15,
		Sites: map[int]faults.SiteFaults{
			0: {
				Outages:   []faults.Window{{Start: 30, End: 60}, {Start: 200, End: 230}},
				Brownouts: []faults.Brownout{{Window: faults.Window{Start: 100, End: 180}, Factor: 3}},
			},
			1: {
				Outages:  []faults.Window{{Start: 50, End: 90}},
				LinkDown: []faults.Window{{Start: 140, End: 170}, {Start: 300, End: 320}},
			},
		},
		Retry:          faults.RetryPolicy{MaxAttempts: 3, BaseDelaySec: 0.5, MaxDelaySec: 10, Multiplier: 2, JitterFrac: 0.25},
		StageBudgetSec: 120,
		MaxJobAttempts: 3,
	}

	factories := map[string]policy.Factory{
		"opt-cache-resident": policy.OptFileBundleFactory(core.Options{
			History: history.Config{Truncation: history.CacheResident},
		}),
		"landlord": landlord.Factory(),
		"lru":      classic.LRUFactory(),
	}
	for name, mk := range factories {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			run := func() EventStats {
				p := mk(spec.CacheSize, w.Catalog.SizeFunc())
				cfg := buildGrid(t, w, func(f bundle.FileID) bool { return f%2 == 0 })
				st, err := RunEvents(w, p, EventOptions{ArrivalRate: 3, Grid: cfg, Seed: 17, Faults: &sc})
				if err != nil {
					t.Fatal(err)
				}
				if err := p.Cache().CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				for _, f := range p.Cache().Resident() {
					if p.Cache().Pinned(f) {
						t.Fatalf("leaked pin on %d", f)
					}
				}
				return st
			}
			a, b := run(), run()
			if !reflect.DeepEqual(a, b) {
				t.Errorf("fault soak not reproducible:\n%+v\n%+v", a, b)
			}
			if got := a.Jobs + a.Resilience.FailedJobs + a.UnservedOversized; got != int64(spec.Jobs) {
				t.Errorf("job accounting: completed %d + failed %d + oversized %d = %d, want %d",
					a.Jobs, a.Resilience.FailedJobs, a.UnservedOversized, got, spec.Jobs)
			}
			if a.Resilience.Retries == 0 {
				t.Errorf("soak scenario exercised no retries: %v", a.Resilience)
			}
			t.Logf("%s: %+v downtime=%v", name, a.Resilience, a.SiteDowntime)
		})
	}
}

// TestFaultSoakChurnCorrelated crosses the generated scenario shapes —
// correlated rack-group failures, site churn, diurnal brownouts — with the
// epoch re-planner armed. The composed schedule is drawn once from seeded
// generators, so the whole soak (fault draws, replication epochs, recovery
// records) must be byte-reproducible; job accounting and pin hygiene are
// checked as in TestFaultSoak.
func TestFaultSoakChurnCorrelated(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	spec := workload.DefaultSpec()
	spec.Jobs = 700
	spec.NumFiles = 150
	spec.NumRequests = 90
	spec.CacheSize = 1 * bundle.GB
	spec.MaxFilePct = 0.08
	spec.MaxBundleFrac = 0.5
	spec.Popularity = workload.Zipf
	spec.Clusters = 15
	w, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}

	sites := faults.GenCorrelated(faults.CorrelatedConfig{
		Seed: 71, Groups: [][]int{{1}}, OutagesPerGroup: 2,
		MeanOutageSec: 25, HorizonSec: 300,
	})
	sites = faults.MergeSites(sites, faults.GenChurn(faults.ChurnConfig{
		Seed: 72, Sites: []int{1}, MeanUpSec: 80, MeanDownSec: 15, HorizonSec: 300,
	}))
	sites = faults.MergeSites(sites, faults.GenDiurnal(faults.DiurnalConfig{
		Seed: 73, Sites: []int{0, 1}, PeriodSec: 100, BusyFrac: 0.3,
		Factor: 2.5, HorizonSec: 300, PhaseJitter: true,
	}))
	sc := faults.Scenario{
		Seed:                74,
		TransferFailureProb: 0.1,
		Sites:               sites,
		Retry:               faults.RetryPolicy{MaxAttempts: 3, BaseDelaySec: 0.5, MaxDelaySec: 10, Multiplier: 2, JitterFrac: 0.25},
		StageBudgetSec:      150,
		MaxJobAttempts:      3,
	}
	if err := sc.Validate(); err != nil {
		t.Fatalf("generated scenario invalid: %v", err)
	}

	run := func() EventStats {
		p := policy.OptFileBundleFactory(core.Options{
			History: history.Config{Truncation: history.CacheResident},
		})(spec.CacheSize, w.Catalog.SizeFunc())
		cfg := buildGrid(t, w, func(f bundle.FileID) bool { return f%3 == 0 })
		st, err := RunEvents(w, p, EventOptions{
			ArrivalRate: 3, Grid: cfg, Seed: 19, Faults: &sc,
			Replication: &ReplicationConfig{
				EpochSec: 15, Budget: 4 * bundle.GB,
				RetireBelow: 0.05, RiskHorizonSec: 30,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Cache().CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		for _, f := range p.Cache().Resident() {
			if p.Cache().Pinned(f) {
				t.Fatalf("leaked pin on %d", f)
			}
		}
		return st
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("churn soak not reproducible:\n%+v\n%+v", a, b)
	}
	if got := a.Jobs + a.Resilience.FailedJobs + a.UnservedOversized; got != int64(spec.Jobs) {
		t.Errorf("job accounting: completed %d + failed %d + oversized %d = %d, want %d",
			a.Jobs, a.Resilience.FailedJobs, a.UnservedOversized, got, spec.Jobs)
	}
	if a.Replication.Epochs == 0 {
		t.Error("re-planner never ran under the churn scenario")
	}
	if len(a.Recoveries) == 0 {
		t.Error("generated outages produced no recovery records")
	}
	t.Logf("resilience=%+v replication=%+v recoveries=%d downtime=%v",
		a.Resilience, a.Replication, len(a.Recoveries), a.SiteDowntime)
}
