package replicate

import (
	"reflect"
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/grid"
	"fbcache/internal/history"
	"fbcache/internal/mss"
)

// testGrid: local fast site + slow remote site holding everything.
func testGrid(t *testing.T, files []bundle.FileID) (*grid.Topology, *grid.Replicas) {
	t.Helper()
	topo, err := grid.NewTopology("local", mss.Config{
		Name: "disk", LatencySec: 0.1, BandwidthBps: 200e6, Channels: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	remote, err := topo.AddSite("remote", mss.Config{
		Name: "tape", LatencySec: 10, BandwidthBps: 50e6, Channels: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Connect(topo.Local(), remote, grid.Link{LatencySec: 1, BandwidthBps: 20e6}); err != nil {
		t.Fatal(err)
	}
	reps := grid.NewReplicas()
	for _, f := range files {
		reps.Add(f, remote)
	}
	return topo, reps
}

func sizeConst(s bundle.Size) bundle.SizeFunc {
	return func(bundle.FileID) bundle.Size { return s }
}

func TestPlanPrefersHotFiles(t *testing.T) {
	topo, reps := testGrid(t, []bundle.FileID{1, 2, 3})
	h := history.New(history.Config{})
	for i := 0; i < 10; i++ {
		h.Observe(bundle.New(1)) // f1 hot
	}
	h.Observe(bundle.New(2)) // f2 lukewarm
	h.Observe(bundle.New(3))

	// Budget for exactly one file.
	res, err := Plan(h, topo, reps, sizeConst(100*bundle.MB), 100*bundle.MB)
	if err != nil {
		t.Fatal(err)
	}
	plan := res.Actions
	if len(plan) != 1 {
		t.Fatalf("plan = %+v", plan)
	}
	if plan[0].File != 1 {
		t.Errorf("replicated f%d, want hot f1", plan[0].File)
	}
	if plan[0].Heat != 10 || plan[0].SavingsSec <= 0 {
		t.Errorf("action = %+v", plan[0])
	}
}

func TestPlanRespectsBudget(t *testing.T) {
	topo, reps := testGrid(t, []bundle.FileID{1, 2, 3, 4})
	h := history.New(history.Config{})
	h.Observe(bundle.New(1, 2, 3, 4))
	res, err := Plan(h, topo, reps, sizeConst(bundle.MB), 2*bundle.MB+bundle.MB/2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Actions) != 2 {
		t.Fatalf("plan length = %d, want 2 within 2.5MB budget", len(res.Actions))
	}
	if TotalBytes(res.Actions) > 2*bundle.MB+bundle.MB/2 {
		t.Errorf("plan overruns budget: %v", TotalBytes(res.Actions))
	}
	// Zero budget -> empty plan.
	res, err = Plan(h, topo, reps, sizeConst(bundle.MB), 0)
	if err != nil || len(res.Actions) != 0 {
		t.Errorf("zero budget plan = %v, %v", res.Actions, err)
	}
}

func TestPlanSkipsAlreadyLocal(t *testing.T) {
	topo, reps := testGrid(t, []bundle.FileID{1, 2})
	reps.Add(1, topo.Local())
	h := history.New(history.Config{})
	for i := 0; i < 5; i++ {
		h.Observe(bundle.New(1, 2))
	}
	res, err := Plan(h, topo, reps, sizeConst(bundle.MB), 10*bundle.MB)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Actions) != 1 || res.Actions[0].File != 2 {
		t.Errorf("plan = %+v, want only f2", res.Actions)
	}
}

func TestPlanReportsUnreachable(t *testing.T) {
	topo, reps := testGrid(t, []bundle.FileID{1})
	h := history.New(history.Config{})
	h.Observe(bundle.New(1, 9)) // f9 not in any catalog
	h.Observe(bundle.New(7))    // f7 also unknown
	res, err := Plan(h, topo, reps, sizeConst(bundle.MB), 10*bundle.MB)
	if err != nil {
		t.Fatalf("missing replica must degrade, not abort: %v", err)
	}
	// The reachable hot file is still planned.
	if len(res.Actions) != 1 || res.Actions[0].File != 1 {
		t.Errorf("actions = %+v, want f1 planned despite unreachable peers", res.Actions)
	}
	// The unreachable files are reported, sorted.
	want := []bundle.FileID{7, 9}
	if !reflect.DeepEqual(res.Unreachable, want) {
		t.Errorf("unreachable = %v, want %v", res.Unreachable, want)
	}
}

func TestPlanNilInputs(t *testing.T) {
	if _, err := Plan(nil, nil, nil, nil, 1); err == nil {
		t.Error("nil inputs accepted")
	}
}

func TestApplyAndSavings(t *testing.T) {
	topo, reps := testGrid(t, []bundle.FileID{1, 2})
	h := history.New(history.Config{})
	for i := 0; i < 4; i++ {
		h.Observe(bundle.New(1, 2))
	}
	res, err := Plan(h, topo, reps, sizeConst(bundle.MB), 10*bundle.MB)
	if err != nil {
		t.Fatal(err)
	}
	if TotalSavings(res.Actions) <= 0 {
		t.Error("no savings reported")
	}
	Apply(res.Actions, topo, reps)
	for _, f := range []bundle.FileID{1, 2} {
		src, _, ok := reps.BestSource(topo, f, bundle.MB)
		if !ok || src != topo.Local() {
			t.Errorf("f%d best source = %v after Apply", f, src)
		}
	}
	// Re-planning now yields nothing.
	res, err = Plan(h, topo, reps, sizeConst(bundle.MB), 10*bundle.MB)
	if err != nil || len(res.Actions) != 0 {
		t.Errorf("second plan = %v, %v", res.Actions, err)
	}
}

func TestPlanEmptyHistory(t *testing.T) {
	topo, reps := testGrid(t, []bundle.FileID{1})
	h := history.New(history.Config{})
	res, err := Plan(h, topo, reps, sizeConst(bundle.MB), bundle.MB)
	if err != nil || len(res.Actions) != 0 {
		t.Errorf("plan = %v, %v", res.Actions, err)
	}
}

// Regression for the greedy loop fixes: the scan stops once the budget is
// exactly consumed, and equal-density ties prefer the larger Size so
// zero-size files cannot starve large high-saving candidates.
func TestGreedyBudgetStopAndSizeTieBreak(t *testing.T) {
	// Two candidates with identical density (same heat, saving and size) and
	// one with a distinct larger size at the same per-byte density.
	mk := func(f bundle.FileID, size bundle.Size, heat, saving float64) Action {
		return Action{File: f, Size: size, Heat: heat, SavingsSec: saving}
	}
	// density = heat*saving/size: a (2MB) and b (1MB) both at density 8.
	a := mk(1, 2*bundle.MB, 4, float64(4*bundle.MB))
	b := mk(2, bundle.MB, 4, float64(2*bundle.MB))
	plan := greedy([]Action{b, a}, 2*bundle.MB)
	if len(plan) != 1 || plan[0].File != 1 {
		t.Errorf("equal density must prefer larger size first: %+v", plan)
	}

	// Exact-fit budget: once used == budget the scan must stop, not keep
	// walking the tail (which an overrun candidate list would pollute).
	c := mk(3, bundle.MB, 100, 1e6)
	d := mk(4, bundle.MB, 1, 1e6)
	plan = greedy([]Action{c, d}, bundle.MB)
	if len(plan) != 1 || plan[0].File != 3 {
		t.Errorf("exact-fit budget plan = %+v, want just f3", plan)
	}

	// Zero-size files rank first (density +Inf) but consume no budget, so
	// the large candidate still lands.
	z := mk(5, 0, 1, 1)
	plan = greedy([]Action{d, z}, bundle.MB)
	if len(plan) != 2 || plan[0].File != 5 || plan[1].File != 4 {
		t.Errorf("zero-size + large plan = %+v", plan)
	}
}
