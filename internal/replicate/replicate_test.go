package replicate

import (
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/grid"
	"fbcache/internal/history"
	"fbcache/internal/mss"
)

// testGrid: local fast site + slow remote site holding everything.
func testGrid(t *testing.T, files []bundle.FileID) (*grid.Topology, *grid.Replicas) {
	t.Helper()
	topo, err := grid.NewTopology("local", mss.Config{
		Name: "disk", LatencySec: 0.1, BandwidthBps: 200e6, Channels: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	remote, err := topo.AddSite("remote", mss.Config{
		Name: "tape", LatencySec: 10, BandwidthBps: 50e6, Channels: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Connect(topo.Local(), remote, grid.Link{LatencySec: 1, BandwidthBps: 20e6}); err != nil {
		t.Fatal(err)
	}
	reps := grid.NewReplicas()
	for _, f := range files {
		reps.Add(f, remote)
	}
	return topo, reps
}

func sizeConst(s bundle.Size) bundle.SizeFunc {
	return func(bundle.FileID) bundle.Size { return s }
}

func TestPlanPrefersHotFiles(t *testing.T) {
	topo, reps := testGrid(t, []bundle.FileID{1, 2, 3})
	h := history.New(history.Config{})
	for i := 0; i < 10; i++ {
		h.Observe(bundle.New(1)) // f1 hot
	}
	h.Observe(bundle.New(2)) // f2 lukewarm
	h.Observe(bundle.New(3))

	// Budget for exactly one file.
	plan, err := Plan(h, topo, reps, sizeConst(100*bundle.MB), 100*bundle.MB)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 1 {
		t.Fatalf("plan = %+v", plan)
	}
	if plan[0].File != 1 {
		t.Errorf("replicated f%d, want hot f1", plan[0].File)
	}
	if plan[0].Heat != 10 || plan[0].SavingsSec <= 0 {
		t.Errorf("action = %+v", plan[0])
	}
}

func TestPlanRespectsBudget(t *testing.T) {
	topo, reps := testGrid(t, []bundle.FileID{1, 2, 3, 4})
	h := history.New(history.Config{})
	h.Observe(bundle.New(1, 2, 3, 4))
	plan, err := Plan(h, topo, reps, sizeConst(bundle.MB), 2*bundle.MB+bundle.MB/2)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 2 {
		t.Fatalf("plan length = %d, want 2 within 2.5MB budget", len(plan))
	}
	if TotalBytes(plan) > 2*bundle.MB+bundle.MB/2 {
		t.Errorf("plan overruns budget: %v", TotalBytes(plan))
	}
	// Zero budget -> empty plan.
	plan, err = Plan(h, topo, reps, sizeConst(bundle.MB), 0)
	if err != nil || len(plan) != 0 {
		t.Errorf("zero budget plan = %v, %v", plan, err)
	}
}

func TestPlanSkipsAlreadyLocal(t *testing.T) {
	topo, reps := testGrid(t, []bundle.FileID{1, 2})
	reps.Add(1, topo.Local())
	h := history.New(history.Config{})
	for i := 0; i < 5; i++ {
		h.Observe(bundle.New(1, 2))
	}
	plan, err := Plan(h, topo, reps, sizeConst(bundle.MB), 10*bundle.MB)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 1 || plan[0].File != 2 {
		t.Errorf("plan = %+v, want only f2", plan)
	}
}

func TestPlanErrorsOnMissingReplica(t *testing.T) {
	topo, reps := testGrid(t, []bundle.FileID{1})
	h := history.New(history.Config{})
	h.Observe(bundle.New(1, 9)) // f9 not in any catalog
	if _, err := Plan(h, topo, reps, sizeConst(bundle.MB), bundle.MB); err == nil {
		t.Error("missing replica accepted")
	}
}

func TestPlanNilInputs(t *testing.T) {
	if _, err := Plan(nil, nil, nil, nil, 1); err == nil {
		t.Error("nil inputs accepted")
	}
}

func TestApplyAndSavings(t *testing.T) {
	topo, reps := testGrid(t, []bundle.FileID{1, 2})
	h := history.New(history.Config{})
	for i := 0; i < 4; i++ {
		h.Observe(bundle.New(1, 2))
	}
	plan, err := Plan(h, topo, reps, sizeConst(bundle.MB), 10*bundle.MB)
	if err != nil {
		t.Fatal(err)
	}
	if TotalSavings(plan) <= 0 {
		t.Error("no savings reported")
	}
	Apply(plan, topo, reps)
	for _, f := range []bundle.FileID{1, 2} {
		src, _, ok := reps.BestSource(topo, f, bundle.MB)
		if !ok || src != topo.Local() {
			t.Errorf("f%d best source = %v after Apply", f, src)
		}
	}
	// Re-planning now yields nothing.
	plan, err = Plan(h, topo, reps, sizeConst(bundle.MB), 10*bundle.MB)
	if err != nil || len(plan) != 0 {
		t.Errorf("second plan = %v, %v", plan, err)
	}
}

func TestPlanEmptyHistory(t *testing.T) {
	topo, reps := testGrid(t, []bundle.FileID{1})
	h := history.New(history.Config{})
	plan, err := Plan(h, topo, reps, sizeConst(bundle.MB), bundle.MB)
	if err != nil || len(plan) != 0 {
		t.Errorf("plan = %v, %v", plan, err)
	}
}
