package replicate

import (
	"fmt"
	"math"
	"sort"

	"fbcache/internal/bundle"
	"fbcache/internal/grid"
)

// Availability is the planner's view of the fault state: which sites can
// serve as copy sources right now, and which are scheduled to go dark soon.
// *faults.Injector satisfies it; a nil Availability means every site is up
// forever.
type Availability interface {
	// Up reports whether the site is usable as a transfer source at time at.
	Up(site int, at float64) bool
	// DownWithin reports whether the site is scheduled to become unusable at
	// any point in [from, from+horizon).
	DownWithin(site int, from, horizon float64) bool
}

// PlannerConfig tunes the epoch re-planner.
type PlannerConfig struct {
	// Budget is the local replica space the planner may occupy (bytes).
	Budget bundle.Size
	// RetireBelow retires a planner-installed local replica when its decayed
	// heat falls below this threshold, reclaiming budget. <= 0 never retires.
	RetireBelow float64
	// RiskHorizonSec is the lookahead for emergency replication: a file whose
	// every live source goes dark within this horizon is copied now,
	// bypassing the heat ranking. <= 0 disables emergencies.
	RiskHorizonSec float64
}

// Epoch is the outcome of one Replan call.
type Epoch struct {
	// At is the sim-time the epoch ran.
	At float64
	// Actions are the replications applied this epoch (already committed to
	// the catalog), emergencies first.
	Actions []Action
	// Retired lists planner-installed replicas removed for coldness, sorted
	// by file ID.
	Retired []bundle.FileID
	// Unreachable lists hot files with no live source this epoch, sorted.
	Unreachable []bundle.FileID
	// Emergency counts Actions planned to outrun a scheduled outage.
	Emergency int
	// PlannedBytes and RetiredBytes are the byte totals moved and reclaimed.
	PlannedBytes bundle.Size
	RetiredBytes bundle.Size
}

// Planner re-plans replication each epoch against the current replica
// catalog and fault state. It owns a byte budget of local replica space:
// replicas it installs are tracked, cold ones are retired to reclaim budget,
// and an original (non-planted) replica is never removed — retirement can
// only undo the planner's own copies. Not safe for concurrent use.
type Planner struct {
	topo    *grid.Topology
	reps    *grid.Replicas
	sizeOf  bundle.SizeFunc
	pred    *Predictor
	cfg     PlannerConfig
	planted map[bundle.FileID]bundle.Size
	used    bundle.Size
}

// NewPlanner wires a planner over the live topology, catalog and predictor.
func NewPlanner(topo *grid.Topology, reps *grid.Replicas, sizeOf bundle.SizeFunc, pred *Predictor, cfg PlannerConfig) (*Planner, error) {
	if topo == nil || reps == nil || sizeOf == nil || pred == nil {
		return nil, fmt.Errorf("replicate: nil planner input")
	}
	if cfg.Budget < 0 {
		cfg.Budget = 0
	}
	return &Planner{
		topo: topo, reps: reps, sizeOf: sizeOf, pred: pred, cfg: cfg,
		planted: make(map[bundle.FileID]bundle.Size),
	}, nil
}

// PlantedBytes reports the budget currently occupied by planner replicas.
func (pl *Planner) PlantedBytes() bundle.Size { return pl.used }

// Replan runs one epoch at sim-time now: retire cold planted replicas,
// emergency-replicate files whose every live source is about to go dark,
// then fill the remaining budget densest-first from the predictor's decayed
// heat. Down sites are skipped as sources; files with no live source are
// reported, not fatal. The returned epoch's actions are already applied to
// the replica catalog.
func (pl *Planner) Replan(now float64, avail Availability) Epoch {
	ep := Epoch{At: now}
	heat := pl.pred.Snapshot(now)
	local := pl.topo.Local()

	// Retirement first, so the reclaimed budget is available this epoch.
	if pl.cfg.RetireBelow > 0 {
		var retire []bundle.FileID
		for f := range pl.planted {
			if pl.pred.Heat(now, f) < pl.cfg.RetireBelow {
				retire = append(retire, f)
			}
		}
		sort.Slice(retire, func(i, j int) bool { return retire[i] < retire[j] })
		for _, f := range retire {
			// Never drop the last copy: planted replicas are copies of a
			// remote original, but guard against a catalog that lost it.
			if len(pl.reps.Sites(f)) <= 1 {
				continue
			}
			pl.reps.Remove(f, local)
			size := pl.planted[f]
			delete(pl.planted, f)
			pl.used -= size
			ep.Retired = append(ep.Retired, f)
			ep.RetiredBytes += size
		}
	}

	// Candidates: hot, not yet local, with a live source. Snapshot order is
	// sorted by file ID, so the scan is deterministic.
	var emergencies, normal []Action
	for _, fh := range heat {
		f := fh.File
		if fh.Heat <= 0 || hasLocal(pl.reps, f, local) {
			continue
		}
		// Hysteresis: a file too cold to keep is too cold to plant, or the
		// same epoch would retire it and copy it straight back.
		if pl.cfg.RetireBelow > 0 && fh.Heat < pl.cfg.RetireBelow {
			continue
		}
		size := pl.sizeOf(f)
		src, cost, live := pl.bestLiveSource(f, size, now, avail)
		if !live {
			// No registered replica, or every holder is dark right now.
			ep.Unreachable = append(ep.Unreachable, f)
			continue
		}
		a := Action{File: f, From: src, Size: size, Heat: fh.Heat}
		localCost := pl.topo.TransferSeconds(local, size)
		if !math.IsInf(cost, 0) && !math.IsInf(localCost, 0) {
			a.SavingsSec = cost - localCost
		}
		if pl.atRisk(f, size, now, avail) {
			a.Emergency = true
			emergencies = append(emergencies, a)
			continue
		}
		// Normal candidates must actually save staging time.
		if a.SavingsSec <= 0 {
			continue
		}
		normal = append(normal, a)
	}

	// Emergencies bypass the heat ranking: hottest first so the budget
	// protects the files that hurt most to lose, ties on file ID.
	sort.Slice(emergencies, func(i, j int) bool {
		if emergencies[i].Heat != emergencies[j].Heat { //fbvet:allow floateq — strict ordering only; ties fall through to file ID
			return emergencies[i].Heat > emergencies[j].Heat
		}
		return emergencies[i].File < emergencies[j].File
	})
	remaining := pl.cfg.Budget - pl.used
	for _, a := range emergencies {
		if a.Size > remaining {
			continue
		}
		remaining -= a.Size
		ep.Actions = append(ep.Actions, a)
		ep.Emergency++
	}

	ep.Actions = append(ep.Actions, greedy(normal, remaining)...)

	// Commit: the epoch's actions become planted local replicas.
	for _, a := range ep.Actions {
		pl.reps.Add(a.File, local)
		pl.planted[a.File] = a.Size
		pl.used += a.Size
		ep.PlannedBytes += a.Size
	}
	return ep
}

// bestLiveSource picks the cheapest reachable source that is up at now.
func (pl *Planner) bestLiveSource(f bundle.FileID, size bundle.Size, now float64, avail Availability) (grid.SiteID, float64, bool) {
	for _, s := range pl.reps.RankedSources(pl.topo, f, size) {
		if avail == nil || avail.Up(int(s.Site), now) {
			return s.Site, s.Cost, true
		}
	}
	return 0, 0, false
}

// atRisk reports whether every currently-live source of f is scheduled to go
// dark within the risk horizon — the emergency-replication trigger.
func (pl *Planner) atRisk(f bundle.FileID, size bundle.Size, now float64, avail Availability) bool {
	if avail == nil || pl.cfg.RiskHorizonSec <= 0 {
		return false
	}
	anyLive := false
	for _, s := range pl.reps.RankedSources(pl.topo, f, size) {
		if !avail.Up(int(s.Site), now) {
			continue
		}
		anyLive = true
		if !avail.DownWithin(int(s.Site), now, pl.cfg.RiskHorizonSec) {
			return false // at least one source rides out the horizon
		}
	}
	return anyLive
}
