package replicate

import (
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/grid"
	"fbcache/internal/history"
	"fbcache/internal/mss"
)

// benchGrid builds a 2-site topology with n files on the remote site,
// mirroring testGrid without the *testing.T plumbing.
func benchGrid(b *testing.B, n int) (*grid.Topology, *grid.Replicas) {
	b.Helper()
	topo, err := grid.NewTopology("local", mss.Config{
		Name: "disk", LatencySec: 0.1, BandwidthBps: 200e6, Channels: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	remote, err := topo.AddSite("remote", mss.Config{
		Name: "tape", LatencySec: 10, BandwidthBps: 50e6, Channels: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := topo.Connect(topo.Local(), remote, grid.Link{LatencySec: 1, BandwidthBps: 20e6}); err != nil {
		b.Fatal(err)
	}
	reps := grid.NewReplicas()
	for f := 0; f < n; f++ {
		reps.Add(bundle.FileID(f), remote)
	}
	return topo, reps
}

// BenchmarkPlan exercises the one-shot static planner over a 1000-file
// history with a budget admitting roughly half the candidates.
func BenchmarkPlan(b *testing.B) {
	const n = 1000
	topo, reps := benchGrid(b, n)
	h := history.New(history.Config{})
	for f := 0; f < n; f++ {
		h.Observe(bundle.New(bundle.FileID(f), bundle.FileID((f+1)%n)))
	}
	sizeOf := sizeConst(bundle.MB)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Plan(h, topo, reps, sizeOf, n/2*bundle.MB); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictorObserve measures the per-arrival cost of folding a
// 4-file bundle into the decayed heat table.
func BenchmarkPredictorObserve(b *testing.B) {
	p := NewPredictor(PredictorConfig{HalfLifeSec: 100})
	bun := bundle.New(1, 2, 3, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Observe(float64(i)*0.1, bun, 1)
	}
}

// BenchmarkReplan measures one planner epoch over 1000 hot files: snapshot,
// retirement scan, candidate ranking, greedy fill, catalog commit. The
// planted state is reset each iteration so every epoch does full work.
func BenchmarkReplan(b *testing.B) {
	const n = 1000
	topo, reps := benchGrid(b, n)
	pred := NewPredictor(PredictorConfig{HalfLifeSec: 500})
	for f := 0; f < n; f++ {
		pred.Observe(0, bundle.New(bundle.FileID(f)), float64(1+f%7))
	}
	sizeOf := sizeConst(bundle.MB)
	local := topo.Local()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl, err := NewPlanner(topo, reps, sizeOf, pred, PlannerConfig{
			Budget: n / 2 * bundle.MB, RetireBelow: 0.01, RiskHorizonSec: 10,
		})
		if err != nil {
			b.Fatal(err)
		}
		ep := pl.Replan(1, nil)
		b.StopTimer()
		for _, a := range ep.Actions {
			reps.Remove(a.File, local)
		}
		b.StartTimer()
	}
}
