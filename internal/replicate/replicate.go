// Package replicate implements the "strategic data replication" building
// block of §1: given the observed request history, the grid topology and
// the current replica catalog, it plans which files to copy to the local
// site so that future staging is cheap — greedy by expected transfer-time
// savings per replicated byte, under a replication-space budget.
//
// Two planning modes are provided. Plan is the original offline pass over a
// request history's cumulative heat. Planner runs the same greedy core
// online: an EWMA Predictor replaces raw cumulative heat so popularity
// drift shows up, each epoch re-plans against the current replica catalog
// and fault state (down sites are skipped as sources), cold planner-installed
// replicas are retired to reclaim budget, and files whose every live source
// is about to go dark are emergency-replicated ahead of the outage.
//
// The planners are advisory: Plan returns actions, Apply commits them to
// the replica catalog (Planner.Replan applies its own epoch directly).
// Deployments would run them periodically off the SRM's history.
package replicate

import (
	"fmt"
	"math"
	"sort"

	"fbcache/internal/bundle"
	"fbcache/internal/floats"
	"fbcache/internal/grid"
	"fbcache/internal/history"
)

// Action is one planned replication: copy File from From to the local site.
type Action struct {
	File bundle.FileID
	From grid.SiteID
	Size bundle.Size
	// SavingsSec is the expected staging-time saving per future access.
	SavingsSec float64
	// Heat is the file's observed access weight (sum of request values of
	// the history entries using it, or the predictor's decayed heat).
	Heat float64
	// Emergency marks an action planned to outrun a scheduled outage rather
	// than won on heat×savings density (see Planner.Replan).
	Emergency bool
}

// Result is a computed replication plan plus its diagnostics.
type Result struct {
	// Actions is the planned copy list, densest-first.
	Actions []Action
	// Unreachable lists hot files that currently have no reachable replica,
	// sorted by file ID. Mid-outage planning must degrade, not abort: such
	// files are skipped and reported so the caller can decide — they become
	// candidates again once a holder resurfaces.
	Unreachable []bundle.FileID
}

// Plan computes a replication plan within `budget` bytes of local replica
// space. Files already replicated locally are skipped; files without any
// reachable replica are skipped and reported in Result.Unreachable.
func Plan(hist *history.History, topo *grid.Topology, reps *grid.Replicas, sizeOf bundle.SizeFunc, budget bundle.Size) (Result, error) {
	if hist == nil || topo == nil || reps == nil || sizeOf == nil {
		return Result{}, fmt.Errorf("replicate: nil input")
	}
	if budget < 0 {
		budget = 0
	}

	// File heat: Σ value of history entries using the file.
	heat := make(map[bundle.FileID]float64)
	for _, e := range hist.Candidates() {
		for _, f := range e.Bundle {
			heat[f] += e.Value
		}
	}

	var res Result
	local := topo.Local()
	files := make([]bundle.FileID, 0, len(heat))
	for f := range heat {
		files = append(files, f)
	}
	sort.Slice(files, func(i, j int) bool { return files[i] < files[j] })
	var candidates []Action
	for _, f := range files {
		h := heat[f]
		size := sizeOf(f)
		if hasLocal(reps, f, local) {
			continue
		}
		src, cost, ok := reps.BestSource(topo, f, size)
		if !ok {
			res.Unreachable = append(res.Unreachable, f)
			continue
		}
		localCost := topo.TransferSeconds(local, size)
		saving := cost - localCost
		if saving <= 0 || math.IsInf(saving, 0) {
			continue
		}
		candidates = append(candidates, Action{
			File: f, From: src, Size: size,
			SavingsSec: saving, Heat: h,
		})
	}
	sort.Slice(res.Unreachable, func(i, j int) bool { return res.Unreachable[i] < res.Unreachable[j] })

	res.Actions = greedy(candidates, budget)
	return res, nil
}

// greedy fills the byte budget densest-first. Ties on density go to the
// larger Size first (equal per-byte efficiency, more absolute saving — and
// zero-size files, whose density is +Inf, cannot starve large high-saving
// candidates of their budget), then to the smaller FileID so the order is a
// strict total one.
func greedy(candidates []Action, budget bundle.Size) []Action {
	sort.Slice(candidates, func(i, j int) bool {
		di := density(candidates[i])
		dj := density(candidates[j])
		if !floats.AlmostEqual(di, dj) {
			return di > dj
		}
		if candidates[i].Size != candidates[j].Size {
			return candidates[i].Size > candidates[j].Size
		}
		return candidates[i].File < candidates[j].File
	})

	var plan []Action
	var used bundle.Size
	for _, a := range candidates {
		if used == budget {
			break // budget exactly consumed; no candidate can fit
		}
		if used+a.Size > budget {
			continue
		}
		used += a.Size
		plan = append(plan, a)
	}
	return plan
}

// density is heat-weighted saving per byte; zero-size files rank first.
func density(a Action) float64 {
	total := a.Heat * a.SavingsSec
	if a.Size <= 0 {
		return math.Inf(1)
	}
	return total / float64(a.Size)
}

func hasLocal(reps *grid.Replicas, f bundle.FileID, local grid.SiteID) bool {
	for _, s := range reps.Sites(f) {
		if s == local {
			return true
		}
	}
	return false
}

// Apply commits a plan to the replica catalog (adds local replicas).
func Apply(plan []Action, topo *grid.Topology, reps *grid.Replicas) {
	for _, a := range plan {
		reps.Add(a.File, topo.Local())
	}
}

// TotalBytes reports the replica space a plan consumes.
func TotalBytes(plan []Action) bundle.Size {
	var total bundle.Size
	for _, a := range plan {
		total += a.Size
	}
	return total
}

// TotalSavings reports the heat-weighted staging-time savings of a plan
// (seconds, summed over expected future accesses at observed heat).
func TotalSavings(plan []Action) float64 {
	total := 0.0
	for _, a := range plan {
		total += a.Heat * a.SavingsSec
	}
	return total
}
