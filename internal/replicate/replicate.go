// Package replicate implements the "strategic data replication" building
// block of §1: given the observed request history, the grid topology and
// the current replica catalog, it plans which files to copy to the local
// site so that future staging is cheap — greedy by expected transfer-time
// savings per replicated byte, under a replication-space budget.
//
// The planner is advisory: Plan returns actions, Apply commits them to the
// replica catalog. Deployments would run it periodically off the SRM's
// history.
package replicate

import (
	"fmt"
	"math"
	"sort"

	"fbcache/internal/bundle"
	"fbcache/internal/floats"
	"fbcache/internal/grid"
	"fbcache/internal/history"
)

// Action is one planned replication: copy File from From to the local site.
type Action struct {
	File bundle.FileID
	From grid.SiteID
	Size bundle.Size
	// SavingsSec is the expected staging-time saving per future access.
	SavingsSec float64
	// Heat is the file's observed access weight (sum of request values of
	// the history entries using it).
	Heat float64
}

// Plan computes a replication plan within `budget` bytes of local replica
// space. Files already replicated locally are skipped; files without any
// reachable replica are reported as an error (the catalog is inconsistent).
func Plan(hist *history.History, topo *grid.Topology, reps *grid.Replicas, sizeOf bundle.SizeFunc, budget bundle.Size) ([]Action, error) {
	if hist == nil || topo == nil || reps == nil || sizeOf == nil {
		return nil, fmt.Errorf("replicate: nil input")
	}
	if budget < 0 {
		budget = 0
	}

	// File heat: Σ value of history entries using the file.
	heat := make(map[bundle.FileID]float64)
	for _, e := range hist.Candidates() {
		for _, f := range e.Bundle {
			heat[f] += e.Value
		}
	}

	local := topo.Local()
	var candidates []Action
	for f, h := range heat {
		size := sizeOf(f)
		if hasLocal(reps, f, local) {
			continue
		}
		src, cost, ok := reps.BestSource(topo, f, size)
		if !ok {
			return nil, fmt.Errorf("replicate: no reachable replica for file %d", f)
		}
		localCost := topo.TransferSeconds(local, size)
		saving := cost - localCost
		if saving <= 0 || math.IsInf(saving, 0) {
			continue
		}
		candidates = append(candidates, Action{
			File: f, From: src, Size: size,
			SavingsSec: saving, Heat: h,
		})
	}

	// Greedy: highest expected total saving per replicated byte first.
	sort.Slice(candidates, func(i, j int) bool {
		di := density(candidates[i])
		dj := density(candidates[j])
		if !floats.AlmostEqual(di, dj) {
			return di > dj
		}
		return candidates[i].File < candidates[j].File
	})

	var plan []Action
	var used bundle.Size
	for _, a := range candidates {
		if used+a.Size > budget {
			continue
		}
		used += a.Size
		plan = append(plan, a)
	}
	return plan, nil
}

// density is heat-weighted saving per byte; zero-size files rank first.
func density(a Action) float64 {
	total := a.Heat * a.SavingsSec
	if a.Size <= 0 {
		return math.Inf(1)
	}
	return total / float64(a.Size)
}

func hasLocal(reps *grid.Replicas, f bundle.FileID, local grid.SiteID) bool {
	for _, s := range reps.Sites(f) {
		if s == local {
			return true
		}
	}
	return false
}

// Apply commits a plan to the replica catalog (adds local replicas).
func Apply(plan []Action, topo *grid.Topology, reps *grid.Replicas) {
	for _, a := range plan {
		reps.Add(a.File, topo.Local())
	}
}

// TotalBytes reports the replica space a plan consumes.
func TotalBytes(plan []Action) bundle.Size {
	var total bundle.Size
	for _, a := range plan {
		total += a.Size
	}
	return total
}

// TotalSavings reports the heat-weighted staging-time savings of a plan
// (seconds, summed over expected future accesses at observed heat).
func TotalSavings(plan []Action) float64 {
	total := 0.0
	for _, a := range plan {
		total += a.Heat * a.SavingsSec
	}
	return total
}
