package replicate

import (
	"math"
	"reflect"
	"testing"

	"fbcache/internal/bundle"
)

func TestPredictorEWMADecay(t *testing.T) {
	p := NewPredictor(PredictorConfig{HalfLifeSec: 100})
	p.Observe(0, bundle.New(1), 1)
	for _, c := range []struct{ at, want float64 }{
		{0, 1}, {100, 0.5}, {200, 0.25}, {300, 0.125},
	} {
		if got := p.Heat(c.at, 1); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("heat(%v) = %v, want %v", c.at, got, c.want)
		}
	}
	// Heat is a read: asking at t=300 must not have folded the decay in.
	if got := p.Heat(0, 1); got != 1 {
		t.Errorf("Heat mutated the predictor: heat(0) = %v after later reads", got)
	}
	// A second observation folds onto the decayed value.
	p.Observe(100, bundle.New(1), 1)
	if got := p.Heat(100, 1); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("heat after refresh = %v, want 1.5", got)
	}
	// Unknown files are cold, not errors.
	if got := p.Heat(50, 99); got != 0 {
		t.Errorf("unknown file heat = %v", got)
	}
}

func TestPredictorSnapshotSortedAndPrune(t *testing.T) {
	p := NewPredictor(PredictorConfig{HalfLifeSec: 10})
	p.Observe(0, bundle.New(5, 2, 9), 1)
	p.Observe(0, bundle.New(2), 1)
	snap := p.Snapshot(0)
	want := []FileHeat{{File: 2, Heat: 2}, {File: 5, Heat: 1}, {File: 9, Heat: 1}}
	if !reflect.DeepEqual(snap, want) {
		t.Errorf("snapshot = %v, want %v", snap, want)
	}
	// After three half-lives the singletons are at 0.125: prune them.
	if n := p.Prune(30, 0.2); n != 2 {
		t.Errorf("pruned %d files, want 2", n)
	}
	if p.Len() != 1 || p.Heat(30, 2) == 0 {
		t.Errorf("survivor set wrong: len=%d", p.Len())
	}
}

// fakeAssoc is a canned co-occurrence model: file 1 predicts file 2 with
// confidence 0.8.
type fakeAssoc struct{}

func (fakeAssoc) Related(f bundle.FileID, k int, minConf float64) []bundle.FileID {
	if f == 1 && k > 0 && minConf <= 0.8 {
		return []bundle.FileID{2}
	}
	return nil
}

func (fakeAssoc) Confidence(f, g bundle.FileID) float64 {
	if f == 1 && g == 2 {
		return 0.8
	}
	return 0
}

func TestPredictorAssociationSharpening(t *testing.T) {
	p := NewPredictor(PredictorConfig{HalfLifeSec: 100, Assoc: fakeAssoc{}})
	p.Observe(0, bundle.New(1), 1)
	if got := p.Heat(0, 1); got != 1 {
		t.Errorf("direct heat = %v, want 1", got)
	}
	// f2 was never requested but is warmed by AssocBoost·confidence = 0.5·0.8.
	if got := p.Heat(0, 2); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("associated heat = %v, want 0.4", got)
	}
	// Without the model, no sharpening happens.
	q := NewPredictor(PredictorConfig{HalfLifeSec: 100})
	q.Observe(0, bundle.New(1), 1)
	if got := q.Heat(0, 2); got != 0 {
		t.Errorf("assoc-free predictor warmed f2 to %v", got)
	}
}
