package replicate

import (
	"math"
	"sort"

	"fbcache/internal/bundle"
)

// Associations is the optional co-occurrence model the predictor can use to
// sharpen heat: files strongly associated with a requested file gain a
// fraction of its observed value even before they are requested themselves.
// *prefetch.Model satisfies it.
type Associations interface {
	// Related returns up to k files associated with f at confidence >=
	// minConfidence, strongest first, deterministically ordered.
	Related(f bundle.FileID, k int, minConfidence float64) []bundle.FileID
	// Confidence reports P(g requested | f requested) as observed.
	Confidence(f, g bundle.FileID) float64
}

// PredictorConfig tunes the online heat estimator.
type PredictorConfig struct {
	// HalfLifeSec is the EWMA half-life: a file's heat halves every
	// HalfLifeSec seconds without an access. Must be positive (default 300).
	HalfLifeSec float64
	// Assoc, when non-nil, sharpens heat with co-occurrence predictions:
	// observing a bundle also warms files associated with its members.
	Assoc Associations
	// AssocBoost scales the associated-file contribution: an associated file
	// g gains AssocBoost·Confidence(f→g)·value heat per observation of f
	// (default 0.5).
	AssocBoost float64
	// AssocFanOut bounds associated files warmed per observed file (default 2).
	AssocFanOut int
	// AssocMinConfidence is the association threshold (default 0.5).
	AssocMinConfidence float64
}

func (c PredictorConfig) withDefaults() PredictorConfig {
	if c.HalfLifeSec <= 0 {
		c.HalfLifeSec = 300
	}
	if c.AssocBoost <= 0 {
		c.AssocBoost = 0.5
	}
	if c.AssocFanOut <= 0 {
		c.AssocFanOut = 2
	}
	if c.AssocMinConfidence <= 0 {
		c.AssocMinConfidence = 0.5
	}
	return c
}

// FileHeat is one predictor reading: a file and its decayed heat.
type FileHeat struct {
	File bundle.FileID
	Heat float64
}

type heatState struct {
	heat float64 // value as of last
	last float64 // sim-time of last fold
}

// Predictor estimates per-file request heat online with exponential decay:
// heat(t) = Σ over observations v·2^-((t-t_obs)/halfLife). Unlike the raw
// cumulative heat Plan derives from history, a burst of old popularity fades
// within a few half-lives, so epoch re-planning tracks workload drift. Time
// is simulation seconds (never the wall clock); all methods are
// deterministic, so same-seed runs reproduce identical plans.
//
// Not safe for concurrent use; the discrete-event simulator is
// single-goroutine.
type Predictor struct {
	cfg  PredictorConfig
	heat map[bundle.FileID]heatState
}

// NewPredictor returns an empty predictor (defaults applied).
func NewPredictor(cfg PredictorConfig) *Predictor {
	return &Predictor{cfg: cfg.withDefaults(), heat: make(map[bundle.FileID]heatState)}
}

// decayTo folds s forward to time now. Observations arrive in nondecreasing
// time order from the simulator; a reading earlier than the last fold (which
// only a misuse could produce) leaves the value undecayed rather than
// amplifying it.
func (p *Predictor) decayTo(s heatState, now float64) heatState {
	dt := now - s.last
	if dt > 0 {
		s.heat *= math.Exp2(-dt / p.cfg.HalfLifeSec)
		s.last = now
	}
	return s
}

func (p *Predictor) add(now float64, f bundle.FileID, v float64) {
	s := p.decayTo(p.heat[f], now)
	s.heat += v
	if s.last < now {
		s.last = now
	}
	p.heat[f] = s
}

// Observe folds one request for b with weight value (1 for unweighted
// requests) at sim-time now. With an association model configured, files
// related to b's members are warmed by AssocBoost·confidence·value as well —
// the "sharpening" that lets the planner replicate a file shortly before its
// first direct request.
func (p *Predictor) Observe(now float64, b bundle.Bundle, value float64) {
	for _, f := range b {
		p.add(now, f, value)
	}
	if p.cfg.Assoc == nil {
		return
	}
	for _, f := range b {
		for _, g := range p.cfg.Assoc.Related(f, p.cfg.AssocFanOut, p.cfg.AssocMinConfidence) {
			p.add(now, g, p.cfg.AssocBoost*p.cfg.Assoc.Confidence(f, g)*value)
		}
	}
}

// Heat reports f's decayed heat as of now without mutating the predictor.
func (p *Predictor) Heat(now float64, f bundle.FileID) float64 {
	return p.decayTo(p.heat[f], now).heat
}

// Snapshot returns every tracked file's decayed heat as of now, sorted by
// file ID — map order never leaks into plans.
func (p *Predictor) Snapshot(now float64) []FileHeat {
	out := make([]FileHeat, 0, len(p.heat))
	for f, s := range p.heat {
		out = append(out, FileHeat{File: f, Heat: p.decayTo(s, now).heat})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].File < out[j].File })
	return out
}

// Prune drops files whose decayed heat fell below floor, bounding the
// predictor's memory over long runs. Returns how many were dropped.
func (p *Predictor) Prune(now float64, floor float64) int {
	var drop []bundle.FileID
	for f, s := range p.heat {
		if p.decayTo(s, now).heat < floor {
			drop = append(drop, f)
		}
	}
	for _, f := range drop {
		delete(p.heat, f)
	}
	return len(drop)
}

// Len reports the number of files currently tracked.
func (p *Predictor) Len() int { return len(p.heat) }
