package replicate

import (
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/grid"
)

// fakeAvail is a static availability view for planner tests.
type fakeAvail struct {
	down  map[int]bool // Up = !down
	risky map[int]bool // DownWithin
}

func (a fakeAvail) Up(site int, at float64) bool                    { return !a.down[site] }
func (a fakeAvail) DownWithin(site int, from, horizon float64) bool { return a.risky[site] }

func newTestPlanner(t *testing.T, topo *grid.Topology, reps *grid.Replicas, pred *Predictor, cfg PlannerConfig) *Planner {
	t.Helper()
	pl, err := NewPlanner(topo, reps, sizeConst(bundle.MB), pred, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestReplanPlantsHotFilesWithinBudget(t *testing.T) {
	topo, reps := testGrid(t, []bundle.FileID{1, 2, 3})
	pred := NewPredictor(PredictorConfig{HalfLifeSec: 1000})
	for i := 0; i < 5; i++ {
		pred.Observe(0, bundle.New(1), 1) // f1 hottest
	}
	pred.Observe(0, bundle.New(2), 1)

	pl := newTestPlanner(t, topo, reps, pred, PlannerConfig{Budget: bundle.MB})
	ep := pl.Replan(10, nil)
	if len(ep.Actions) != 1 || ep.Actions[0].File != 1 {
		t.Fatalf("epoch actions = %+v, want just hot f1 within 1MB", ep.Actions)
	}
	if ep.PlannedBytes != bundle.MB || pl.PlantedBytes() != bundle.MB {
		t.Errorf("planned=%v planted=%v", ep.PlannedBytes, pl.PlantedBytes())
	}
	if !hasLocal(reps, 1, topo.Local()) {
		t.Error("action not committed to the catalog")
	}
	// Second epoch: budget full, f1 already local -> nothing to do.
	ep = pl.Replan(20, nil)
	if len(ep.Actions) != 0 {
		t.Errorf("second epoch re-planned: %+v", ep.Actions)
	}
}

func TestReplanRetiresColdReplicas(t *testing.T) {
	topo, reps := testGrid(t, []bundle.FileID{1, 2})
	pred := NewPredictor(PredictorConfig{HalfLifeSec: 10})
	pred.Observe(0, bundle.New(1), 1)

	pl := newTestPlanner(t, topo, reps, pred, PlannerConfig{Budget: 2 * bundle.MB, RetireBelow: 0.1})
	if ep := pl.Replan(1, nil); len(ep.Actions) != 1 {
		t.Fatalf("seed epoch = %+v", ep)
	}

	// Five half-lives later f1's heat is ~0.03 < RetireBelow: the planted
	// replica retires and its budget comes back.
	ep := pl.Replan(51, nil)
	if len(ep.Retired) != 1 || ep.Retired[0] != 1 || ep.RetiredBytes != bundle.MB {
		t.Fatalf("retired = %v (%v bytes), want f1 (1MB)", ep.Retired, ep.RetiredBytes)
	}
	if hasLocal(reps, 1, topo.Local()) {
		t.Error("retired replica still in the catalog")
	}
	if pl.PlantedBytes() != 0 {
		t.Errorf("planted bytes = %v after retirement", pl.PlantedBytes())
	}
}

func TestReplanNeverRetiresLastCopy(t *testing.T) {
	topo, reps := testGrid(t, []bundle.FileID{1})
	pred := NewPredictor(PredictorConfig{HalfLifeSec: 10})
	pred.Observe(0, bundle.New(1), 1)

	pl := newTestPlanner(t, topo, reps, pred, PlannerConfig{Budget: bundle.MB, RetireBelow: 0.1})
	if ep := pl.Replan(1, nil); len(ep.Actions) != 1 {
		t.Fatalf("seed epoch = %+v", ep)
	}
	// The remote original vanishes (catalog corruption, decommission): the
	// planted local replica is now the last copy and must survive retirement.
	remote := grid.SiteID(1)
	if !reps.Remove(1, remote) {
		t.Fatal("test setup: remote copy not removed")
	}
	ep := pl.Replan(51, nil)
	if len(ep.Retired) != 0 {
		t.Fatalf("retired the last copy: %v", ep.Retired)
	}
	if !hasLocal(reps, 1, topo.Local()) {
		t.Error("last copy gone from the catalog")
	}
}

func TestReplanSkipsDownSitesAndReportsUnreachable(t *testing.T) {
	topo, reps := testGrid(t, []bundle.FileID{1})
	pred := NewPredictor(PredictorConfig{HalfLifeSec: 1000})
	pred.Observe(0, bundle.New(1), 1)

	pl := newTestPlanner(t, topo, reps, pred, PlannerConfig{Budget: bundle.MB})
	// The only source (remote site 1) is dark: no action, file reported.
	ep := pl.Replan(1, fakeAvail{down: map[int]bool{1: true}})
	if len(ep.Actions) != 0 {
		t.Errorf("planned from a dark site: %+v", ep.Actions)
	}
	if len(ep.Unreachable) != 1 || ep.Unreachable[0] != 1 {
		t.Errorf("unreachable = %v, want [1]", ep.Unreachable)
	}
	// Site back up: the same file plans normally.
	ep = pl.Replan(2, fakeAvail{})
	if len(ep.Actions) != 1 || ep.Actions[0].Emergency {
		t.Errorf("post-recovery epoch = %+v", ep.Actions)
	}
}

func TestReplanEmergencyReplicatesAtRiskFiles(t *testing.T) {
	topo, reps := testGrid(t, []bundle.FileID{1, 2})
	pred := NewPredictor(PredictorConfig{HalfLifeSec: 1000})
	pred.Observe(0, bundle.New(1), 1)
	pred.Observe(0, bundle.New(2), 1)
	pred.Observe(0, bundle.New(2), 1) // f2 hotter

	pl := newTestPlanner(t, topo, reps, pred, PlannerConfig{Budget: bundle.MB, RiskHorizonSec: 60})
	// Remote site 1 is up now but scheduled to go dark within the horizon:
	// every candidate is at risk, and the 1MB budget protects the hottest.
	ep := pl.Replan(1, fakeAvail{risky: map[int]bool{1: true}})
	if ep.Emergency != 1 || len(ep.Actions) != 1 {
		t.Fatalf("epoch = %+v, want one emergency action", ep)
	}
	if a := ep.Actions[0]; a.File != 2 || !a.Emergency {
		t.Errorf("emergency picked %+v, want hottest f2", a)
	}
	// Without the risk flag the same availability plans no emergencies.
	pl2 := newTestPlanner(t, topo, grid.NewReplicas(), pred, PlannerConfig{Budget: bundle.MB, RiskHorizonSec: 60})
	_ = pl2 // separate planner: fresh catalog unused beyond construction
	ep = pl.Replan(2, fakeAvail{})
	if ep.Emergency != 0 {
		t.Errorf("calm epoch reported %d emergencies", ep.Emergency)
	}
}
