package experiment

import (
	"math"
	"strings"
	"testing"
)

func replicationTestConfig() Config {
	c := DefaultConfig()
	c.Jobs = 400
	c.NumFiles = 100
	c.NumRequests = 60
	return c
}

func TestReplicationStudyShape(t *testing.T) {
	c := replicationTestConfig()
	tab, err := c.ReplicationStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 || tab.Rows[0].Label != "static" {
		t.Fatalf("rows = %+v, want static + 3 budgets", tab.Rows)
	}
	rerepl, err := tab.SeriesValues("rerepl GB")
	if err != nil {
		t.Fatal(err)
	}
	if rerepl[0] != 0 {
		t.Errorf("static row re-replicated %v GB", rerepl[0])
	}
	for i, g := range rerepl[1:] {
		if g <= 0 {
			t.Errorf("budget row %d re-replicated nothing", i+1)
		}
	}
	// The largest budget must beat the static grid on post-outage health:
	// recover (static may not) and hold a higher post-outage ratio.
	rec, err := tab.SeriesValues("recovery sec")
	if err != nil {
		t.Fatal(err)
	}
	post, err := tab.SeriesValues("post-outage ratio")
	if err != nil {
		t.Fatal(err)
	}
	best := len(tab.Rows) - 1
	if math.IsNaN(rec[best]) {
		t.Errorf("largest budget never recovered: %+v", tab.Rows[best])
	}
	if !math.IsNaN(rec[0]) && rec[best] > rec[0] {
		t.Errorf("largest budget recovery %.1fs slower than static %.1fs", rec[best], rec[0])
	}
	if post[best] <= post[0] {
		t.Errorf("largest budget post-outage ratio %.3f not above static %.3f", post[best], post[0])
	}
}

func TestReplicationStudyDeterministic(t *testing.T) {
	c := replicationTestConfig()
	a, err := c.ReplicationStudy()
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.ReplicationStudy()
	if err != nil {
		t.Fatal(err)
	}
	// Compare rendered output: DeepEqual would reject the identical tables
	// over NaN ("-") cells, since NaN != NaN.
	var ra, rb strings.Builder
	if err := a.Render(&ra); err != nil {
		t.Fatal(err)
	}
	if err := b.Render(&rb); err != nil {
		t.Fatal(err)
	}
	if ra.String() != rb.String() {
		t.Fatalf("same config produced different replication tables:\n%s\n%s", ra.String(), rb.String())
	}
}
