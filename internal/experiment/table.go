// Package experiment regenerates every table and figure of the paper's
// evaluation (§3 Tables 1–2, §5.3 Figures 5–9) plus the Theorem 4.1 bound
// study, over the synthetic workload model of §5.1. Each experiment returns
// a Table that renders as aligned text or CSV; cmd/fbbench drives them all
// and EXPERIMENTS.md records paper-vs-measured shapes.
package experiment

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is one experiment's output: labelled rows by named series columns.
type Table struct {
	// ID matches the paper artifact ("table1", "fig6a", ...).
	ID string
	// Title describes the experiment.
	Title string
	// ColLabel names the row label column (the x-axis).
	ColLabel string
	// Series names the value columns.
	Series []string
	// Rows holds the data.
	Rows []Row
	// Notes carries free-form observations appended below the table.
	Notes []string
}

// Row is one x-axis point.
type Row struct {
	// Label renders in the first column.
	Label string
	// X is the numeric x-value (NaN-free; used by CSV consumers and tests).
	X float64
	// Values holds one value per series; NaN renders as "-".
	Values []float64
}

// AddRow appends a row, enforcing series arity.
func (t *Table) AddRow(label string, x float64, values ...float64) {
	if len(values) != len(t.Series) {
		panic(fmt.Sprintf("experiment: table %s row %q has %d values for %d series",
			t.ID, label, len(values), len(t.Series)))
	}
	t.Rows = append(t.Rows, Row{Label: label, X: x, Values: values})
}

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)

	headers := append([]string{t.ColLabel}, t.Series...)
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	cells := make([][]string, len(t.Rows))
	for r, row := range t.Rows {
		cells[r] = make([]string, len(headers))
		cells[r][0] = row.Label
		if len(row.Label) > widths[0] {
			widths[0] = len(row.Label)
		}
		for c, v := range row.Values {
			s := formatValue(v)
			cells[r][c+1] = s
			if len(s) > widths[c+1] {
				widths[c+1] = len(s)
			}
		}
	}
	writeRow := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values with a header row.
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(csvEscape(t.ColLabel))
	b.WriteString(",x")
	for _, s := range t.Series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(csvEscape(row.Label))
		fmt.Fprintf(&b, ",%g", row.X)
		for _, v := range row.Values {
			fmt.Fprintf(&b, ",%s", formatValue(v))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatValue(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	switch {
	case v == 0: //fbvet:allow floateq — formatting exact zero, not a rank decision
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.1f", v)
	case v >= 1:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// SeriesValues extracts one named series as a slice, for tests.
func (t *Table) SeriesValues(name string) ([]float64, error) {
	idx := -1
	for i, s := range t.Series {
		if s == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("experiment: table %s has no series %q", t.ID, name)
	}
	out := make([]float64, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = r.Values[idx]
	}
	return out, nil
}
