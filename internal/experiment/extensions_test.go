package experiment

import (
	"testing"

	"fbcache/internal/workload"
)

func TestHybridStudyShapes(t *testing.T) {
	tab, err := testConfig().HybridStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, series := range []string{"uniform", "zipf"} {
		vals, err := tab.SeriesValues(series)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range vals {
			if v <= 0 || v > 1 {
				t.Errorf("%s row %d: byte miss %v out of range", series, i, v)
			}
		}
		// The two service extremes must be in the same regime (within 2x) —
		// byte accounting is model-independent.
		if vals[0] > 2*vals[len(vals)-1] || vals[len(vals)-1] > 2*vals[0] {
			t.Errorf("%s: service model changed byte miss regime: %v", series, vals)
		}
	}
}

func TestRequestSizeStudyShapes(t *testing.T) {
	tab, err := testConfig().RequestSizeStudy()
	if err != nil {
		t.Fatal(err)
	}
	opt, _ := tab.SeriesValues("optfilebundle")
	ll, _ := tab.SeriesValues("landlord")
	csr, _ := tab.SeriesValues("cache size (requests)")
	for i := range opt {
		if opt[i] >= ll[i] {
			t.Errorf("row %d: opt %.4f not below landlord %.4f", i, opt[i], ll[i])
		}
	}
	// Bigger bundles -> fewer requests fit -> miss ratio rises (tolerantly
	// monotone) and cache-size-in-requests falls.
	if opt[0] >= opt[len(opt)-1] {
		t.Errorf("opt miss did not rise with bundle size: %v", opt)
	}
	if csr[0] <= csr[len(csr)-1] {
		t.Errorf("cache size in requests did not fall: %v", csr)
	}
}

func TestSaturationStudyShapes(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 600
	tab, err := cfg.SaturationStudy()
	if err != nil {
		t.Fatal(err)
	}
	opt, _ := tab.SeriesValues("optfilebundle")
	ll, _ := tab.SeriesValues("landlord")
	// Responses grow with load for both policies.
	if opt[len(opt)-1] <= opt[0] {
		t.Errorf("opt response did not grow with load: %v", opt)
	}
	// At the highest load the better cache policy responds faster.
	last := len(opt) - 1
	if opt[last] >= ll[last] {
		t.Errorf("at saturation opt %.1fs not below landlord %.1fs", opt[last], ll[last])
	}
}

func TestShardingStudyShapes(t *testing.T) {
	tab, err := testConfig().ShardingStudy()
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{"uniform", "zipf"} {
		vals, _ := tab.SeriesValues(series)
		// More nodes never helps byte miss (same total bytes, fragmented).
		if vals[len(vals)-1] < vals[0]*0.98 {
			t.Errorf("%s: 8-node miss %.4f below monolithic %.4f", series, vals[len(vals)-1], vals[0])
		}
	}
}

func TestReplicationsAverage(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 400
	one, err := cfg.missVsCacheSize("rep1", "x", workload.Zipf, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Replications = 3
	avg, err := cfg.missVsCacheSize("rep3", "x", workload.Zipf, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := one.SeriesValues("optfilebundle")
	b, _ := avg.SeriesValues("optfilebundle")
	if len(a) != len(b) {
		t.Fatal("row mismatch")
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if b[i] <= 0 || b[i] > 1 {
			t.Errorf("averaged miss %v out of range", b[i])
		}
	}
	if same {
		t.Error("averaging over 3 seeds produced identical values to 1 seed")
	}
}

func TestOverlapStudyShapes(t *testing.T) {
	tab, err := testConfig().OverlapStudy()
	if err != nil {
		t.Fatal(err)
	}
	opt, _ := tab.SeriesValues("optfilebundle")
	ll, _ := tab.SeriesValues("landlord")
	for i := range opt {
		if opt[i] >= ll[i] {
			t.Errorf("row %s: opt %.4f not below landlord %.4f", tab.Rows[i].Label, opt[i], ll[i])
		}
	}
}
