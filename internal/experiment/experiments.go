package experiment

import (
	"fmt"
	"io"
	"math"

	"fbcache/internal/bundle"
	"fbcache/internal/core"
	"fbcache/internal/history"
	"fbcache/internal/obs"
	"fbcache/internal/policy"
	"fbcache/internal/policy/classic"
	"fbcache/internal/policy/landlord"
	"fbcache/internal/policy/offline"
	"fbcache/internal/queue"
	"fbcache/internal/simulate"
	"fbcache/internal/workload"
)

// Config scales the simulation experiments. The paper ran 10000 jobs per
// point for ~1000 CPU-hours on a 2004 Opteron cluster; DefaultConfig
// reproduces every qualitative shape in seconds. Raise Jobs (cmd/fbbench
// -jobs) for tighter curves.
type Config struct {
	// Seed drives workload generation.
	Seed int64
	// Jobs per simulation point.
	Jobs int
	// NumFiles / NumRequests size the pools (§5.1).
	NumFiles    int
	NumRequests int
	// CacheSize is the reference capacity files are sized against.
	CacheSize bundle.Size
	// Replications averages each simulated point over this many independent
	// workloads (seeds Seed, Seed+1, ...). <= 1 means a single run — the
	// default, since the paper's qualitative shapes are stable at one seed.
	Replications int
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer
	// Tracer, when non-nil, receives the timed simulator's Stage and
	// JobServed events from experiments that run RunEvents (DegradedMode,
	// ReplicationStudy). With several policies and failure rates in one sweep,
	// expect interleaved streams; each policy/rate run is emitted in order.
	Tracer obs.Tracer
}

// DefaultConfig returns the laptop-scale configuration.
func DefaultConfig() Config {
	return Config{
		Seed:        1,
		Jobs:        4000,
		NumFiles:    300,
		NumRequests: 150,
		CacheSize:   4 * bundle.GB,
	}
}

func (c Config) progress(format string, args ...interface{}) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format+"\n", args...)
	}
}

// baseSpec instantiates the §5.1 workload model for this config. The file
// pool is scaled up when files are small so that its total size always
// exceeds the cache severalfold — otherwise every policy converges to the
// compulsory-miss floor and the comparison degenerates.
func (c Config) baseSpec(pop workload.Popularity, maxFilePct float64) workload.Spec {
	numFiles := c.NumFiles
	if min := int(6 / maxFilePct); numFiles < min {
		numFiles = min
	}
	return workload.Spec{
		Seed:           c.Seed,
		CacheSize:      c.CacheSize,
		NumFiles:       numFiles,
		MinFileSize:    bundle.MB,
		MaxFilePct:     maxFilePct,
		NumRequests:    c.NumRequests,
		MaxBundleFiles: 6,
		MaxBundleFrac:  0.25,
		Popularity:     pop,
		ZipfS:          1,
		Jobs:           c.Jobs,
	}
}

// optFactory is the OptFileBundle configuration used throughout the
// evaluation: the practical resort variant with the §5.3 cache-resident
// history truncation.
func optFactory() policy.Factory {
	return policy.OptFileBundleFactory(core.Options{
		History: history.Config{Truncation: history.CacheResident},
	})
}

// PaperExampleRequests returns the request pool of the §3 worked example
// (Fig. 3), reconstructed from the constraints of Tables 1 and 2.
func PaperExampleRequests() []bundle.Bundle {
	return []bundle.Bundle{
		bundle.New(1, 3, 5),    // r1
		bundle.New(2, 4, 6, 7), // r2
		bundle.New(1, 5),       // r3
		bundle.New(4, 6, 7),    // r4
		bundle.New(3, 5),       // r5
		bundle.New(5, 6, 7),    // r6
	}
}

// Table1 regenerates the paper's Table 1: per-file request counts and the
// probability that a random request needs the file.
func Table1() *Table {
	reqs := PaperExampleRequests()
	t := &Table{
		ID:       "table1",
		Title:    "File request probabilities (6 equally likely requests)",
		ColLabel: "file",
		Series:   []string{"requests", "probability"},
	}
	for f := bundle.FileID(1); f <= 7; f++ {
		count := 0
		for _, r := range reqs {
			if r.Contains(f) {
				count++
			}
		}
		t.AddRow(fmt.Sprintf("f%d", f), float64(f), float64(count), float64(count)/6)
	}
	t.Notes = append(t.Notes, "most popular file is f5 (4 of 6 requests), then f6 and f7")
	return t
}

// Table2 regenerates the paper's Table 2: request-hit probabilities for the
// five cache contents discussed in §3, and verifies OptCacheSelect finds the
// best one.
func Table2() *Table {
	reqs := PaperExampleRequests()
	contents := []bundle.Bundle{
		bundle.New(5, 6, 7),
		bundle.New(1, 3, 5),
		bundle.New(1, 5, 6),
		bundle.New(3, 5, 6),
		bundle.New(1, 2, 3),
	}
	t := &Table{
		ID:       "table2",
		Title:    "Request-hit probabilities for candidate cache contents (capacity 3)",
		ColLabel: "cache contents",
		Series:   []string{"requests supported", "request-hit probability"},
	}
	for i, c := range contents {
		hits := 0
		for _, r := range reqs {
			if r.SubsetOf(c) {
				hits++
			}
		}
		t.AddRow(c.String(), float64(i), float64(hits), float64(hits)/6)
	}

	// OptCacheSelect on the same instance.
	cands := make([]core.Candidate, len(reqs))
	for i, r := range reqs {
		cands[i] = core.Candidate{Bundle: r, Value: 1}
	}
	deg := map[bundle.FileID]int{1: 2, 2: 1, 3: 2, 4: 2, 5: 4, 6: 3, 7: 3}
	sel := core.Select(cands, 3, core.SelectOptions{
		SizeOf:   func(bundle.FileID) bundle.Size { return 1 },
		DegreeOf: func(f bundle.FileID) int { return deg[f] },
		Resort:   true,
	})
	t.Notes = append(t.Notes,
		fmt.Sprintf("OptCacheSelect chooses %v supporting %d requests (hit probability %.3f)",
			sel.Files, len(sel.Chosen), float64(len(sel.Chosen))/6))
	return t
}

// capacitySweep returns the simulated cache capacities for Figures 6–8 as
// fractions of the reference cache, smallest first.
func capacitySweep(ref bundle.Size) []bundle.Size {
	fracs := []float64{0.25, 0.375, 0.5, 0.625, 0.75, 1.0}
	out := make([]bundle.Size, len(fracs))
	for i, f := range fracs {
		out[i] = bundle.Size(f * float64(ref))
	}
	return out
}

// runPoint simulates one (workload, policy, capacity) point.
func runPoint(w *workload.Workload, mk policy.Factory, capacity bundle.Size, opts simulate.Options) (byteMiss, bytesPerReq float64, err error) {
	p := mk(capacity, w.Catalog.SizeFunc())
	col, err := simulate.Run(w, p, opts)
	if err != nil {
		return 0, 0, err
	}
	return col.ByteMissRatio(), col.BytesPerRequest(), nil
}

// replicatedWorkloads generates the independent workloads each point is
// averaged over (Config.Replications; at least one).
func (c Config) replicatedWorkloads(pop workload.Popularity, maxFilePct float64) ([]*workload.Workload, error) {
	reps := c.Replications
	if reps < 1 {
		reps = 1
	}
	out := make([]*workload.Workload, 0, reps)
	for r := 0; r < reps; r++ {
		spec := c.baseSpec(pop, maxFilePct)
		spec.Seed = c.Seed + int64(r)
		w, err := workload.Generate(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// avgMiss averages the byte miss ratio of a policy at one capacity across
// replicated workloads.
func avgMiss(ws []*workload.Workload, mk policy.Factory, capacity bundle.Size) (float64, error) {
	total := 0.0
	for _, w := range ws {
		miss, _, err := runPoint(w, mk, capacity, simulate.Options{})
		if err != nil {
			return 0, err
		}
		total += miss
	}
	return total / float64(len(ws)), nil
}

// missVsCacheSize builds one Fig-6/7-style table: byte miss ratio versus
// cache size (in requests) for OptFileBundle and Landlord, averaged over
// Config.Replications workloads.
func (c Config) missVsCacheSize(id, title string, pop workload.Popularity, maxFilePct float64) (*Table, error) {
	ws, err := c.replicatedWorkloads(pop, maxFilePct)
	if err != nil {
		return nil, err
	}
	mean := float64(ws[0].MeanRequestBytes())
	t := &Table{
		ID:       id,
		Title:    title,
		ColLabel: "cache size (requests)",
		Series:   []string{"optfilebundle", "landlord"},
	}
	for _, capacity := range capacitySweep(c.CacheSize) {
		x := float64(capacity) / mean
		opt, err := avgMiss(ws, optFactory(), capacity)
		if err != nil {
			return nil, err
		}
		ll, err := avgMiss(ws, landlord.Factory(), capacity)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.1f", x), x, opt, ll)
		c.progress("%s: cache=%.1f req: opt=%.4f landlord=%.4f", id, x, opt, ll)
	}
	return t, nil
}

// Figure5 regenerates Fig. 5: byte miss ratio as the request-history length
// offered to OptCacheSelect varies from cache-resident-only to the full
// history. The paper's finding: truncation effects are negligible.
func (c Config) Figure5() (*Table, error) {
	variants := []struct {
		label string
		cfg   history.Config
	}{
		{"cache-resident", history.Config{Truncation: history.CacheResident}},
		{"window-16", history.Config{Truncation: history.Window, Limit: 16}},
		{"window-64", history.Config{Truncation: history.Window, Limit: 64}},
		{"window-256", history.Config{Truncation: history.Window, Limit: 256}},
		{"full", history.Config{Truncation: history.Full}},
	}
	t := &Table{
		ID:       "fig5",
		Title:    "Effect of varying the history length (byte miss ratio)",
		ColLabel: "history",
		Series:   []string{"uniform", "zipf"},
	}
	workloads := make(map[workload.Popularity]*workload.Workload)
	for _, pop := range []workload.Popularity{workload.Uniform, workload.Zipf} {
		w, err := workload.Generate(c.baseSpec(pop, 0.05))
		if err != nil {
			return nil, err
		}
		workloads[pop] = w
	}
	for i, v := range variants {
		var vals []float64
		for _, pop := range []workload.Popularity{workload.Uniform, workload.Zipf} {
			mk := policy.OptFileBundleFactory(core.Options{History: v.cfg})
			miss, _, err := runPoint(workloads[pop], mk, c.CacheSize, simulate.Options{})
			if err != nil {
				return nil, err
			}
			vals = append(vals, miss)
		}
		t.AddRow(v.label, float64(i), vals...)
		c.progress("fig5: %s uniform=%.4f zipf=%.4f", v.label, vals[0], vals[1])
	}
	t.Notes = append(t.Notes, "paper: truncation effects are negligible; spread across rows should be small")
	return t, nil
}

// Figure6 regenerates Fig. 6(a)/(b): byte miss ratio for SMALL files (max
// file size 1% of the cache), uniform and Zipf request distributions.
func (c Config) Figure6() ([]*Table, error) {
	a, err := c.missVsCacheSize("fig6a", "Byte miss ratio, small files (1% cap), uniform requests", workload.Uniform, 0.01)
	if err != nil {
		return nil, err
	}
	b, err := c.missVsCacheSize("fig6b", "Byte miss ratio, small files (1% cap), Zipf requests", workload.Zipf, 0.01)
	if err != nil {
		return nil, err
	}
	return []*Table{a, b}, nil
}

// Figure7 regenerates Fig. 7: byte miss ratio for LARGE files (max file size
// 10% of the cache), uniform and Zipf request distributions.
func (c Config) Figure7() ([]*Table, error) {
	a, err := c.missVsCacheSize("fig7a", "Byte miss ratio, large files (10% cap), uniform requests", workload.Uniform, 0.10)
	if err != nil {
		return nil, err
	}
	b, err := c.missVsCacheSize("fig7b", "Byte miss ratio, large files (10% cap), Zipf requests", workload.Zipf, 0.10)
	if err != nil {
		return nil, err
	}
	return []*Table{a, b}, nil
}

// Figure8 regenerates Fig. 8: the average volume of data moved into the
// cache per request as the cache size (in requests) varies, for both
// policies and both distributions.
func (c Config) Figure8() (*Table, error) {
	t := &Table{
		ID:       "fig8",
		Title:    "Average data moved per request (MB) vs cache size",
		ColLabel: "cache size (requests)",
		Series:   []string{"opt/uniform", "landlord/uniform", "opt/zipf", "landlord/zipf"},
	}
	wu, err := workload.Generate(c.baseSpec(workload.Uniform, 0.05))
	if err != nil {
		return nil, err
	}
	wz, err := workload.Generate(c.baseSpec(workload.Zipf, 0.05))
	if err != nil {
		return nil, err
	}
	mean := float64(wu.MeanRequestBytes())
	for _, capacity := range capacitySweep(c.CacheSize) {
		x := float64(capacity) / mean
		var vals []float64
		for _, w := range []*workload.Workload{wu, wz} {
			_, optBpr, err := runPoint(w, optFactory(), capacity, simulate.Options{})
			if err != nil {
				return nil, err
			}
			_, llBpr, err := runPoint(w, landlord.Factory(), capacity, simulate.Options{})
			if err != nil {
				return nil, err
			}
			vals = append(vals, optBpr/float64(bundle.MB), llBpr/float64(bundle.MB))
		}
		t.AddRow(fmt.Sprintf("%.1f", x), x, vals...)
		c.progress("fig8: cache=%.1f req done", x)
	}
	return t, nil
}

// Figure9 regenerates Fig. 9(a)/(b): byte miss ratio as the incoming queue
// length grows from 1 to 100, served highest-relative-value-first.
func (c Config) Figure9() ([]*Table, error) {
	qs := []int{1, 5, 10, 25, 50, 100}
	var out []*Table
	for _, pop := range []workload.Popularity{workload.Uniform, workload.Zipf} {
		id, name := "fig9a", "uniform"
		if pop == workload.Zipf {
			id, name = "fig9b", "zipf"
		}
		// The request pool must be large relative to the longest queue, or
		// queueing trivially groups duplicate requests even under uniform
		// popularity and the distributions stop differing.
		spec := c.baseSpec(pop, 0.05)
		if spec.NumRequests < 4*qs[len(qs)-1] {
			spec.NumRequests = 4 * qs[len(qs)-1]
		}
		w, err := workload.Generate(spec)
		if err != nil {
			return nil, err
		}
		t := &Table{
			ID:       id,
			Title:    fmt.Sprintf("Effect of queue length, %s requests (byte miss ratio)", name),
			ColLabel: "queue length",
			Series:   []string{"optfilebundle"},
		}
		for _, q := range qs {
			opt := core.New(c.CacheSize, w.Catalog.SizeFunc(), core.Options{
				History: history.Config{Truncation: history.CacheResident},
			})
			p := policy.WrapOptFileBundle(opt)
			col, err := simulate.Run(w, p, simulate.Options{
				QueueLength: q,
				Scheduler:   queue.ByScore("relative-value", opt.RelativeValue),
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("q%d", q), float64(q), col.ByteMissRatio())
			c.progress("%s: q=%d miss=%.4f", id, q, col.ByteMissRatio())
		}
		out = append(out, t)
	}
	return out, nil
}

// Baselines goes beyond the paper: every implemented policy on the same
// workloads, the quantitative form of the §1 claim that popularity-based
// policies underperform on bundle workloads.
func (c Config) Baselines() (*Table, error) {
	factories := []struct {
		name string
		mk   policy.Factory
	}{
		{"optfilebundle", optFactory()},
		{"landlord", landlord.Factory()},
		{"gdsf", classic.GDSFFactory()},
		{"lru", classic.LRUFactory()},
		{"lfu", classic.LFUFactory()},
		{"fifo", classic.FIFOFactory()},
		{"random", classic.RandomFactory(7)},
		{"mru", classic.MRUFactory()},
	}
	t := &Table{
		ID:       "baselines",
		Title:    "Byte miss ratio across all policies (extension of the paper's comparison)",
		ColLabel: "policy",
		Series:   []string{"uniform", "zipf"},
	}
	wu, err := workload.Generate(c.baseSpec(workload.Uniform, 0.05))
	if err != nil {
		return nil, err
	}
	wz, err := workload.Generate(c.baseSpec(workload.Zipf, 0.05))
	if err != nil {
		return nil, err
	}
	for i, f := range factories {
		u, _, err := runPoint(wu, f.mk, c.CacheSize, simulate.Options{})
		if err != nil {
			return nil, err
		}
		z, _, err := runPoint(wz, f.mk, c.CacheSize, simulate.Options{})
		if err != nil {
			return nil, err
		}
		t.AddRow(f.name, float64(i), u, z)
		c.progress("baselines: %s uniform=%.4f zipf=%.4f", f.name, u, z)
	}

	// Clairvoyant reference: Belady's MIN adapted to bundles, built with
	// the full future (not part of the paper; a hindsight floor).
	beladyMiss := func(w *workload.Workload) (float64, error) {
		future := make([]bundle.Bundle, len(w.Jobs))
		for i := range w.Jobs {
			future[i] = w.JobBundle(i)
		}
		p := offline.New(c.CacheSize, w.Catalog.SizeFunc(), future)
		col, err := simulate.Run(w, p, simulate.Options{})
		if err != nil {
			return 0, err
		}
		return col.ByteMissRatio(), nil
	}
	bu, err := beladyMiss(wu)
	if err != nil {
		return nil, err
	}
	bz, err := beladyMiss(wz)
	if err != nil {
		return nil, err
	}
	t.AddRow("belady-offline", float64(len(factories)), bu, bz)
	c.progress("baselines: belady uniform=%.4f zipf=%.4f", bu, bz)

	t.Notes = append(t.Notes,
		"paper compares only Landlord; frequency-aware single-file policies (gdsf, lfu) can be competitive at some operating points",
		"belady-offline sees the whole future (hindsight reference, not in the paper)")
	return t, nil
}

// All runs every experiment and returns the tables in paper order.
func (c Config) All() ([]*Table, error) {
	var out []*Table
	out = append(out, Table1(), Table2())
	f5, err := c.Figure5()
	if err != nil {
		return nil, err
	}
	out = append(out, f5)
	for _, gen := range []func() ([]*Table, error){c.Figure6, c.Figure7} {
		ts, err := gen()
		if err != nil {
			return nil, err
		}
		out = append(out, ts...)
	}
	f8, err := c.Figure8()
	if err != nil {
		return nil, err
	}
	out = append(out, f8)
	f9, err := c.Figure9()
	if err != nil {
		return nil, err
	}
	out = append(out, f9...)
	bs, err := c.BoundStudy()
	if err != nil {
		return nil, err
	}
	out = append(out, bs)
	bl, err := c.Baselines()
	if err != nil {
		return nil, err
	}
	out = append(out, bl)
	for _, gen := range []func() (*Table, error){c.HybridStudy, c.RequestSizeStudy, c.SaturationStudy, c.ShardingStudy, c.OverlapStudy, c.DegradedMode} {
		tab, err := gen()
		if err != nil {
			return nil, err
		}
		out = append(out, tab)
	}
	return out, nil
}

// monotoneNonIncreasing is a helper for tests: true if vals never rise by
// more than tol (relative).
func monotoneNonIncreasing(vals []float64, tol float64) bool {
	for i := 1; i < len(vals); i++ {
		if vals[i] > vals[i-1]*(1+tol) {
			return false
		}
	}
	return true
}

var _ = math.NaN // referenced by tests
