package experiment

import (
	"fmt"

	"fbcache/internal/bundle"
	"fbcache/internal/cluster"
	"fbcache/internal/mss"
	"fbcache/internal/policy/landlord"
	"fbcache/internal/simulate"
	"fbcache/internal/workload"
)

// HybridStudy sweeps the §6 hybrid execution model: the byte miss ratio as
// the fraction of jobs serviced bundle-at-a-time grows from 0 (pure
// one-file-at-a-time, the authors' prior work [8]) to 1 (this paper's
// model), under both popularity laws.
func (c Config) HybridStudy() (*Table, error) {
	fractions := []float64{0, 0.25, 0.5, 0.75, 1}
	t := &Table{
		ID:       "hybrid",
		Title:    "Hybrid execution model: byte miss ratio vs bundle-service fraction (§6 future work)",
		ColLabel: "bundle fraction",
		Series:   []string{"uniform", "zipf"},
	}
	workloads := make(map[workload.Popularity]*workload.Workload)
	for _, pop := range []workload.Popularity{workload.Uniform, workload.Zipf} {
		w, err := workload.Generate(c.baseSpec(pop, 0.05))
		if err != nil {
			return nil, err
		}
		workloads[pop] = w
	}
	for _, frac := range fractions {
		var vals []float64
		for _, pop := range []workload.Popularity{workload.Uniform, workload.Zipf} {
			w := workloads[pop]
			p := optFactory()(c.CacheSize, w.Catalog.SizeFunc())
			st, err := simulate.RunHybrid(w, p, simulate.HybridOptions{
				BundleFraction: frac,
				Seed:           c.Seed + 77,
			})
			if err != nil {
				return nil, err
			}
			vals = append(vals, st.Combined.ByteMissRatio())
		}
		t.AddRow(fmt.Sprintf("%.2f", frac), frac, vals...)
		c.progress("hybrid: frac=%.2f uniform=%.4f zipf=%.4f", frac, vals[0], vals[1])
	}
	t.Notes = append(t.Notes, "per-file service gives the policy finer popularity signals but no co-access structure; byte ratios stay comparable while only bundle service guarantees co-residency")
	return t, nil
}

// SaturationStudy runs the timed simulator across arrival rates and reports
// mean response time for OptFileBundle vs Landlord on a slow archive — the
// §2 "maximize throughput / minimize response time" framing that the paper
// leaves as future work.
func (c Config) SaturationStudy() (*Table, error) {
	rates := []float64{0.2, 0.4, 0.8, 1.6}
	archive := mss.Config{Name: "tape", LatencySec: 8, BandwidthBps: 80e6, Channels: 4}
	w, err := workload.Generate(c.baseSpec(workload.Zipf, 0.05))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:       "saturation",
		Title:    "Mean response time (s) vs arrival rate, Zipf requests, tape archive",
		ColLabel: "arrival rate (jobs/s)",
		Series:   []string{"optfilebundle", "landlord"},
	}
	// Timed runs are slower; cap the jobs per point.
	maxJobs := c.Jobs
	if maxJobs > 1500 {
		maxJobs = 1500
	}
	for _, rate := range rates {
		opts := simulate.EventOptions{
			ArrivalRate: rate, MSS: archive, Slots: 4, Seed: c.Seed, MaxJobs: maxJobs,
		}
		pOpt := optFactory()(c.CacheSize, w.Catalog.SizeFunc())
		stOpt, err := simulate.RunEvents(w, pOpt, opts)
		if err != nil {
			return nil, err
		}
		pLL := landlord.Factory()(c.CacheSize, w.Catalog.SizeFunc())
		stLL, err := simulate.RunEvents(w, pLL, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.1f", rate), rate, stOpt.MeanResponse, stLL.MeanResponse)
		c.progress("saturation: rate=%.1f opt=%.1fs landlord=%.1fs", rate, stOpt.MeanResponse, stLL.MeanResponse)
	}
	t.Notes = append(t.Notes, "lower byte miss ratio defers saturation: the landlord curve blows up at lower arrival rates")
	return t, nil
}

// RequestSizeStudy sweeps the §5.2 "Request Size" parameter directly: with
// the cache fixed, growing bundles mean fewer requests fit simultaneously
// and the byte miss ratio rises for every policy; OptFileBundle must stay
// below Landlord throughout.
func (c Config) RequestSizeStudy() (*Table, error) {
	bundleSizes := []int{2, 4, 6, 8, 10}
	t := &Table{
		ID:       "reqsize",
		Title:    "Byte miss ratio vs max bundle size (files), Zipf requests",
		ColLabel: "max files/request",
		Series:   []string{"optfilebundle", "landlord", "cache size (requests)"},
	}
	for _, n := range bundleSizes {
		spec := c.baseSpec(workload.Zipf, 0.05)
		spec.MaxBundleFiles = n
		w, err := workload.Generate(spec)
		if err != nil {
			return nil, err
		}
		opt, _, err := runPoint(w, optFactory(), c.CacheSize, simulate.Options{})
		if err != nil {
			return nil, err
		}
		ll, _, err := runPoint(w, landlord.Factory(), c.CacheSize, simulate.Options{})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", n), float64(n), opt, ll, w.CacheSizeInRequests())
		c.progress("reqsize: files=%d opt=%.4f landlord=%.4f", n, opt, ll)
	}
	return t, nil
}

// ShardingStudy quantifies the §2 cluster deployment: the same total cache
// bytes, monolithic versus distributed over 2/4/8 independent node disks
// (files hashed to nodes). Fragmentation and load imbalance raise the byte
// miss ratio as the node count grows.
func (c Config) ShardingStudy() (*Table, error) {
	t := &Table{
		ID:       "sharding",
		Title:    "Cluster-distributed cache: byte miss ratio vs node count (same total bytes)",
		ColLabel: "nodes",
		Series:   []string{"uniform", "zipf", "imbalance (zipf)"},
	}
	workloads := make(map[workload.Popularity]*workload.Workload)
	for _, pop := range []workload.Popularity{workload.Uniform, workload.Zipf} {
		w, err := workload.Generate(c.baseSpec(pop, 0.05))
		if err != nil {
			return nil, err
		}
		workloads[pop] = w
	}
	for _, nodes := range []int{1, 2, 4, 8} {
		var vals []float64
		var imbalance float64
		for _, pop := range []workload.Popularity{workload.Uniform, workload.Zipf} {
			w := workloads[pop]
			s, err := cluster.New(c.CacheSize, nodes, w.Catalog.SizeFunc(), optFactory(), nil)
			if err != nil {
				return nil, err
			}
			col, err := cluster.Run(w, s, 0)
			if err != nil {
				return nil, err
			}
			vals = append(vals, col.ByteMissRatio())
			if pop == workload.Zipf {
				imbalance = s.Imbalance()
			}
		}
		t.AddRow(fmt.Sprintf("%d", nodes), float64(nodes), vals[0], vals[1], imbalance)
		c.progress("sharding: nodes=%d uniform=%.4f zipf=%.4f", nodes, vals[0], vals[1])
	}
	t.Notes = append(t.Notes, "node count 1 equals the monolithic cache; unserviceable shards count as full misses")
	return t, nil
}

var _ = bundle.MB // keep bundle imported for future studies

// OverlapStudy probes how file sharing drives OptFileBundle's advantage:
// the workload's file pool is partitioned into clusters (requests draw
// within one cluster), concentrating co-occurrence the §5.1 uniform
// generator lacks. More sharing means richer bundle structure for
// OptCacheSelect to exploit.
func (c Config) OverlapStudy() (*Table, error) {
	clusterCounts := []int{0, 20, 10, 5} // 0 = paper's unstructured generator
	t := &Table{
		ID:       "overlap",
		Title:    "Byte miss ratio vs file-sharing structure (clustered bundles), Zipf requests",
		ColLabel: "clusters",
		Series:   []string{"optfilebundle", "landlord", "advantage"},
	}
	for _, clusters := range clusterCounts {
		spec := c.baseSpec(workload.Zipf, 0.05)
		spec.Clusters = clusters
		w, err := workload.Generate(spec)
		if err != nil {
			return nil, err
		}
		opt, _, err := runPoint(w, optFactory(), c.CacheSize, simulate.Options{})
		if err != nil {
			return nil, err
		}
		ll, _, err := runPoint(w, landlord.Factory(), c.CacheSize, simulate.Options{})
		if err != nil {
			return nil, err
		}
		adv := 0.0
		if ll > 0 {
			adv = (ll - opt) / ll
		}
		label := "none"
		if clusters > 0 {
			label = fmt.Sprintf("%d", clusters)
		}
		t.AddRow(label, float64(clusters), opt, ll, adv)
		c.progress("overlap: clusters=%d opt=%.4f landlord=%.4f adv=%.3f", clusters, opt, ll, adv)
	}
	t.Notes = append(t.Notes, "'advantage' is Landlord's relative excess byte miss; fewer clusters = denser intra-cluster sharing")
	return t, nil
}
