package experiment

import (
	"fmt"
	"math"

	"fbcache/internal/bundle"
	"fbcache/internal/faults"
	"fbcache/internal/grid"
	"fbcache/internal/metrics"
	"fbcache/internal/mss"
	"fbcache/internal/simulate"
	"fbcache/internal/workload"
)

// studyGrid builds the experiments' 2-site data grid: a fast local disk
// archive and a slow remote tape archive across a WAN. The remote site is
// the archive of record (every file), and localReplica selects which files
// additionally start with a local copy.
func studyGrid(w *workload.Workload, localReplica func(bundle.FileID) bool) (*simulate.GridConfig, error) {
	topo, err := grid.NewTopology("local", mss.Config{
		Name: "local-disk", LatencySec: 0.2, BandwidthBps: 200e6, Channels: 4,
	})
	if err != nil {
		return nil, err
	}
	remote, err := topo.AddSite("remote", mss.Config{
		Name: "remote-tape", LatencySec: 8, BandwidthBps: 60e6, Channels: 2,
	})
	if err != nil {
		return nil, err
	}
	if err := topo.Connect(topo.Local(), remote, grid.Link{LatencySec: 0.5, BandwidthBps: 30e6}); err != nil {
		return nil, err
	}
	reps := grid.NewReplicas()
	for _, f := range w.Catalog.Files() {
		reps.Add(f.ID, remote)
		if localReplica != nil && localReplica(f.ID) {
			reps.Add(f.ID, topo.Local())
		}
	}
	return &simulate.GridConfig{Topology: topo, Replicas: reps}, nil
}

// firstRecovery reduces a run's recovery records to the table columns:
// recovery time (NaN when the run never recovered — renders as "-") and the
// time-weighted post-outage mean of the windowed local-service ratio.
func firstRecovery(recs []metrics.Recovery) (recoverySec, postMean float64) {
	if len(recs) == 0 {
		return math.NaN(), math.NaN()
	}
	r := recs[0]
	if !r.Recovered {
		return math.NaN(), r.PostMeanRatio
	}
	return r.RecoverySec, r.PostMeanRatio
}

// ReplicationStudy sweeps the adaptive planner's byte budget over a seeded
// mid-run outage of the remote archive — the PR's self-healing experiment.
// Row 0 is the static grid (no re-planning); each following row arms the
// epoch re-planner with a rising budget. Columns report the recovery time
// of the windowed local-service ratio (from outage start; "-" when the run
// ends unrecovered), the time-weighted post-outage mean of that ratio, the
// bytes the planner moved, its emergency-replication count, and the run's
// makespan. Fully deterministic per Config.Seed.
func (c Config) ReplicationStudy() (*Table, error) {
	w, err := workload.Generate(c.baseSpec(workload.Zipf, 0.05))
	if err != nil {
		return nil, err
	}

	const arrivalRate = 2.0
	// The outage darkens the archive of record for a tenth of the expected
	// horizon, a quarter of the way in — late enough for heat to accumulate,
	// early enough that recovery is observable.
	horizon := float64(c.Jobs) / arrivalRate
	outage := faults.Window{Start: 0.25 * horizon, End: 0.35 * horizon}
	epoch := horizon / 50

	budgets := []bundle.Size{0, c.CacheSize, 4 * c.CacheSize, 16 * c.CacheSize}
	t := &Table{
		ID:       "replication",
		Title:    "Self-healing grid: recovery from a remote-archive outage vs replication budget",
		ColLabel: "budget",
		Series:   []string{"recovery sec", "post-outage ratio", "rerepl GB", "emergency", "makespan"},
	}

	for _, budget := range budgets {
		sc := faults.Scenario{Sites: map[int]faults.SiteFaults{
			1: {Outages: []faults.Window{outage}},
		}}
		var repl *simulate.ReplicationConfig
		label := "static"
		if budget > 0 {
			repl = &simulate.ReplicationConfig{
				EpochSec: epoch, Budget: budget, RiskHorizonSec: 2 * epoch,
			}
			label = fmt.Sprintf("%.0fxCache", float64(budget)/float64(c.CacheSize))
		}
		// Remote-only replicas: every miss crosses the WAN, so the outage is
		// load-bearing and the planner's copies are what keep service local.
		cfg, err := studyGrid(w, nil)
		if err != nil {
			return nil, err
		}
		p := optFactory()(c.CacheSize, w.Catalog.SizeFunc())
		st, err := simulate.RunEvents(w, p, simulate.EventOptions{
			ArrivalRate: arrivalRate,
			Grid:        cfg,
			Seed:        c.Seed,
			Faults:      &sc,
			Replication: repl,
			Tracer:      c.Tracer,

			RecoveryWindowJobs: maxInt(20, c.Jobs/8),
			RecoveryEpsilon:    0.08,
		})
		if err != nil {
			return nil, err
		}
		rec, post := firstRecovery(st.Recoveries)
		t.AddRow(label, float64(budget)/float64(bundle.GB),
			rec, post, float64(st.Replication.Bytes)/float64(bundle.GB),
			float64(st.Replication.Emergency), st.Makespan)
		c.progress("replication: %s recovery=%.1fs post=%.3f rerepl=%.2fGB emergencies=%d",
			label, rec, post, float64(st.Replication.Bytes)/float64(bundle.GB),
			st.Replication.Emergency)
	}
	t.Notes = append(t.Notes,
		"recovery sec counts from outage start until the windowed local-service ratio re-enters (and stays within) eps of its pre-outage baseline; '-' = never recovered before the run ended",
		"post-outage ratio is the time-weighted mean of that windowed ratio from outage end to the last completion",
		fmt.Sprintf("outage: remote archive dark over [%.0fs, %.0fs); re-plan epoch %.0fs, risk horizon %.0fs", outage.Start, outage.End, epoch, 2*epoch),
		"reproduce: go run ./cmd/srmbench -replication   (add -jobs/-seed to rescale; table is deterministic per seed)")
	return t, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
