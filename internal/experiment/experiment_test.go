package experiment

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// testConfig is small enough to keep the whole suite fast while preserving
// every qualitative shape.
func testConfig() Config {
	c := DefaultConfig()
	c.Jobs = 1200
	c.NumFiles = 150
	c.NumRequests = 80
	return c
}

func TestTable1MatchesPaper(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	wantCounts := []float64{2, 1, 2, 2, 4, 3, 3}
	counts, err := tab.SeriesValues("requests")
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range wantCounts {
		if counts[i] != w {
			t.Errorf("f%d count = %v, want %v", i+1, counts[i], w)
		}
	}
	probs, _ := tab.SeriesValues("probability")
	// Table 1: f5 has probability 2/3; f6,f7 have 1/2.
	if math.Abs(probs[4]-2.0/3) > 1e-12 {
		t.Errorf("P(f5) = %v", probs[4])
	}
	if math.Abs(probs[5]-0.5) > 1e-12 || math.Abs(probs[6]-0.5) > 1e-12 {
		t.Errorf("P(f6),P(f7) = %v,%v", probs[5], probs[6])
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	tab := Table2()
	probs, err := tab.SeriesValues("request-hit probability")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.0 / 6, 0.5, 1.0 / 6, 1.0 / 6, 0}
	for i, w := range want {
		if math.Abs(probs[i]-w) > 1e-12 {
			t.Errorf("row %d hit probability = %v, want %v", i, probs[i], w)
		}
	}
	// The note must confirm OptCacheSelect found the 1/2 optimum.
	joined := strings.Join(tab.Notes, " ")
	if !strings.Contains(joined, "0.500") {
		t.Errorf("OptCacheSelect note missing optimum: %q", joined)
	}
}

func TestFigure5TruncationNegligible(t *testing.T) {
	tab, err := testConfig().Figure5()
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{"uniform", "zipf"} {
		vals, err := tab.SeriesValues(series)
		if err != nil {
			t.Fatal(err)
		}
		min, max := vals[0], vals[0]
		for _, v := range vals {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		// Paper: "the effects of such truncation are negligible". Allow a
		// modest band — the shapes must not diverge wildly.
		if min <= 0 {
			t.Fatalf("%s: non-positive miss ratio", series)
		}
		if (max-min)/min > 0.35 {
			t.Errorf("%s: truncation spread too large: min=%.4f max=%.4f", series, min, max)
		}
	}
}

func TestFigure6SmallFiles(t *testing.T) {
	tabs, err := testConfig().Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 || tabs[0].ID != "fig6a" || tabs[1].ID != "fig6b" {
		t.Fatalf("tables = %v", tabs)
	}
	for _, tab := range tabs {
		assertOptBeatsLandlord(t, tab)
		assertLargerCachesMiss(t, tab, "optfilebundle")
	}
	// Zipf (6b) miss ratios lower than uniform (6a) for the same policy.
	ua, _ := tabs[0].SeriesValues("optfilebundle")
	za, _ := tabs[1].SeriesValues("optfilebundle")
	if mean(za) >= mean(ua) {
		t.Errorf("zipf mean miss %.4f not below uniform %.4f", mean(za), mean(ua))
	}
}

func TestFigure7LargeFiles(t *testing.T) {
	tabs, err := testConfig().Figure7()
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tabs {
		assertOptBeatsLandlord(t, tab)
	}
}

func TestFigure6GapLargerThanFigure7(t *testing.T) {
	// Paper: "the superiority of OptFileBundle over Landlord is even more
	// significant for smaller file sizes". Compare mean relative gaps.
	cfg := testConfig()
	small, err := cfg.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	large, err := cfg.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	gap := func(tab *Table) float64 {
		opt, _ := tab.SeriesValues("optfilebundle")
		ll, _ := tab.SeriesValues("landlord")
		total := 0.0
		for i := range opt {
			if ll[i] > 0 {
				total += (ll[i] - opt[i]) / ll[i]
			}
		}
		return total / float64(len(opt))
	}
	gSmall := (gap(small[0]) + gap(small[1])) / 2
	gLarge := (gap(large[0]) + gap(large[1])) / 2
	t.Logf("mean relative gap: small files %.3f, large files %.3f", gSmall, gLarge)
	if gSmall <= gLarge*0.8 {
		t.Errorf("small-file gap %.3f not clearly above large-file gap %.3f", gSmall, gLarge)
	}
}

func TestFigure8DataMovedShrinksWithCache(t *testing.T) {
	tab, err := testConfig().Figure8()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tab.Series {
		vals, _ := tab.SeriesValues(s)
		if !monotoneNonIncreasing(vals, 0.15) {
			t.Errorf("%s: data moved per request not shrinking with cache size: %v", s, vals)
		}
	}
	// Opt below landlord at every point, both distributions.
	ou, _ := tab.SeriesValues("opt/uniform")
	lu, _ := tab.SeriesValues("landlord/uniform")
	oz, _ := tab.SeriesValues("opt/zipf")
	lz, _ := tab.SeriesValues("landlord/zipf")
	for i := range ou {
		if ou[i] >= lu[i] {
			t.Errorf("uniform row %d: opt %.2f >= landlord %.2f", i, ou[i], lu[i])
		}
		if oz[i] >= lz[i] {
			t.Errorf("zipf row %d: opt %.2f >= landlord %.2f", i, oz[i], lz[i])
		}
	}
}

func TestFigure9QueueEffects(t *testing.T) {
	tabs, err := testConfig().Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 {
		t.Fatalf("tables = %d", len(tabs))
	}
	uni, _ := tabs[0].SeriesValues("optfilebundle")
	zipf, _ := tabs[1].SeriesValues("optfilebundle")
	// Paper: queueing helps Zipf clearly (q100 << q1); uniform effect minor.
	if zipf[len(zipf)-1] >= zipf[0] {
		t.Errorf("zipf q100 %.4f not below q1 %.4f", zipf[len(zipf)-1], zipf[0])
	}
	relDropUni := (uni[0] - uni[len(uni)-1]) / uni[0]
	relDropZipf := (zipf[0] - zipf[len(zipf)-1]) / zipf[0]
	t.Logf("queue-100 relative improvement: uniform %.3f, zipf %.3f", relDropUni, relDropZipf)
	if relDropZipf <= relDropUni {
		t.Errorf("queueing should help zipf (%.3f) more than uniform (%.3f)", relDropZipf, relDropUni)
	}
}

func TestBoundStudyNeverViolates(t *testing.T) {
	tab, err := testConfig().BoundStudy()
	if err != nil {
		t.Fatal(err) // BoundStudy errors on violation
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestBaselinesOptWins(t *testing.T) {
	tab, err := testConfig().Baselines()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's claims: OptFileBundle beats Landlord and the classic
	// popularity/recency policies it argues against. Frequency-aware GDSF
	// and LFU (not evaluated in the paper) can be competitive at some
	// operating points, so for those we only require opt to stay close.
	mustBeat := map[string]bool{"landlord": true, "lru": true, "fifo": true, "random": true, "mru": true}
	for _, series := range []string{"uniform", "zipf"} {
		vals, _ := tab.SeriesValues(series)
		bestOnline := vals[0]
		belady := -1.0
		for i := 1; i < len(vals); i++ {
			name := tab.Rows[i].Label
			if name == "belady-offline" {
				belady = vals[i]
				continue
			}
			if mustBeat[name] && vals[0] >= vals[i] {
				t.Errorf("%s: optfilebundle %.4f not below %s %.4f", series, vals[0], name, vals[i])
			}
			if vals[i] < bestOnline {
				bestOnline = vals[i]
			}
		}
		if vals[0] > bestOnline*1.15 {
			t.Errorf("%s: optfilebundle %.4f more than 15%% above best online policy %.4f", series, vals[0], bestOnline)
		}
		// The clairvoyant reference must floor every online policy.
		if belady < 0 {
			t.Fatalf("%s: belady-offline row missing", series)
		}
		if belady > bestOnline {
			t.Errorf("%s: belady %.4f above best online %.4f — hindsight lost", series, belady, bestOnline)
		}
	}
}

func TestRenderAndCSV(t *testing.T) {
	tab := Table1()
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"table1", "f5", "requests", "note:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8 { // header + 7 files
		t.Errorf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "file,x,requests,") {
		t.Errorf("csv header = %q", lines[0])
	}
}

func TestTableAddRowArity(t *testing.T) {
	tab := &Table{ID: "x", Series: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tab.AddRow("bad", 0, 1.0)
}

func TestSeriesValuesUnknown(t *testing.T) {
	tab := Table1()
	if _, err := tab.SeriesValues("nope"); err == nil {
		t.Error("unknown series accepted")
	}
}

// assertOptBeatsLandlord checks the paper's headline ordering on every row.
func assertOptBeatsLandlord(t *testing.T, tab *Table) {
	t.Helper()
	opt, err := tab.SeriesValues("optfilebundle")
	if err != nil {
		t.Fatal(err)
	}
	ll, err := tab.SeriesValues("landlord")
	if err != nil {
		t.Fatal(err)
	}
	for i := range opt {
		if opt[i] >= ll[i] {
			t.Errorf("%s row %s: optfilebundle %.4f not below landlord %.4f",
				tab.ID, tab.Rows[i].Label, opt[i], ll[i])
		}
	}
}

// assertLargerCachesMiss checks that the named series' miss ratio does not
// grow as the cache grows.
func assertLargerCachesMiss(t *testing.T, tab *Table, series string) {
	t.Helper()
	vals, err := tab.SeriesValues(series)
	if err != nil {
		t.Fatal(err)
	}
	if !monotoneNonIncreasing(vals, 0.10) {
		t.Errorf("%s/%s: miss ratio not shrinking with cache size: %v", tab.ID, series, vals)
	}
}

func mean(vals []float64) float64 {
	total := 0.0
	for _, v := range vals {
		total += v
	}
	return total / float64(len(vals))
}
