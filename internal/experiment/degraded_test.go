package experiment

import (
	"math"
	"reflect"
	"testing"
)

func degradedTestConfig() Config {
	c := DefaultConfig()
	c.Jobs = 300
	c.NumFiles = 100
	c.NumRequests = 60
	return c
}

func TestDegradedModeShapeAndBaseline(t *testing.T) {
	c := degradedTestConfig()
	tab, err := c.DegradedMode()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(degradedFailureRates) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(degradedFailureRates))
	}
	if len(tab.Series) != 12 {
		t.Fatalf("series = %v, want 3 policies x (hit, slowdown, recovery, rerepl GB)", tab.Series)
	}

	for _, name := range []string{"opt", "landlord", "gdsf"} {
		hits, err := tab.SeriesValues(name + " hit")
		if err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h < 0 || h > 1 {
				t.Errorf("%s hit[%d] = %v, outside [0,1]", name, i, h)
			}
		}
		slow, err := tab.SeriesValues(name + " slowdown")
		if err != nil {
			t.Fatal(err)
		}
		// Row p=0.00 is the baseline: slowdown exactly 1 by construction.
		if slow[0] != 1 { //fbvet:allow floateq — x/x for nonzero x is exactly 1 in IEEE 754
			t.Errorf("%s slowdown at p=0 = %v, want exactly 1", name, slow[0])
		}
		// Failures only ever add retries and backoff waits; the heaviest
		// failure rate cannot make jobs faster than the zero-rate run.
		last := slow[len(slow)-1]
		if math.IsNaN(last) || last < 1 {
			t.Errorf("%s slowdown at p=%v = %v, want >= 1", name,
				degradedFailureRates[len(degradedFailureRates)-1], last)
		}
		// The re-planner is armed in every row and the outage forces WAN
		// staging, so it must have moved bytes.
		rerepl, err := tab.SeriesValues(name + " rerepl GB")
		if err != nil {
			t.Fatal(err)
		}
		for i, g := range rerepl {
			if g <= 0 {
				t.Errorf("%s rerepl[%d] = %v, want > 0", name, i, g)
			}
		}
	}
}

func TestDegradedModeDeterministic(t *testing.T) {
	c := degradedTestConfig()
	a, err := c.DegradedMode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.DegradedMode()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different degraded-mode tables")
	}
}
