package experiment

import (
	"fmt"

	"fbcache/internal/faults"
	"fbcache/internal/mss"
	"fbcache/internal/policy"
	"fbcache/internal/policy/classic"
	"fbcache/internal/policy/landlord"
	"fbcache/internal/simulate"
	"fbcache/internal/workload"
)

// degradedFailureRates is the per-transfer failure probability sweep of the
// degraded-mode experiment; 0 is the fault-free reference row.
var degradedFailureRates = []float64{0, 0.05, 0.1, 0.2, 0.3}

// DegradedMode re-runs the paper's policy comparison with the grid
// misbehaving: the timed simulator under a rising per-transfer failure
// probability (retries with capped exponential backoff, bounded requeues).
// For each policy it tables the request hit ratio and the mean job slowdown —
// mean response time divided by the same policy's fault-free mean response —
// so the cost of retry storms is visible per policy. Fully deterministic:
// fault draws come from a seeded injector (seed derived from Config.Seed),
// so the table is bit-reproducible for a given config.
func (c Config) DegradedMode() (*Table, error) {
	factories := []struct {
		name string
		mk   policy.Factory
	}{
		{"opt", optFactory()},
		{"landlord", landlord.Factory()},
		{"gdsf", classic.GDSFFactory()},
	}

	w, err := workload.Generate(c.baseSpec(workload.Zipf, 0.05))
	if err != nil {
		return nil, err
	}
	// An archive slow enough that staging (and therefore retries and
	// backoff) dominates response time, as in the paper's data-grid setting.
	archive := mss.Config{Name: "degraded-mss", LatencySec: 1, BandwidthBps: 100e6, Channels: 4}

	series := make([]string, 0, 2*len(factories))
	for _, f := range factories {
		series = append(series, f.name+" hit", f.name+" slowdown")
	}
	t := &Table{
		ID:       "degraded",
		Title:    "Degraded mode: hit ratio and mean job slowdown vs transfer failure rate",
		ColLabel: "failure prob",
		Series:   series,
	}

	baseline := make([]float64, len(factories)) // fault-free mean response per policy
	for _, rate := range degradedFailureRates {
		vals := make([]float64, 0, len(series))
		for i, f := range factories {
			sc := faults.Scenario{
				Seed:                c.Seed + 1000, // independent of the workload seed
				TransferFailureProb: rate,
				MaxJobAttempts:      3,
			}
			p := f.mk(c.CacheSize, w.Catalog.SizeFunc())
			st, err := simulate.RunEvents(w, p, simulate.EventOptions{
				ArrivalRate: 2,
				MSS:         archive,
				Seed:        c.Seed,
				Faults:      &sc,
				Tracer:      c.Tracer,
			})
			if err != nil {
				return nil, err
			}
			if rate == 0 { //fbvet:allow floateq — the literal 0 in the sweep, not a computed float
				baseline[i] = st.MeanResponse
			}
			slowdown := 0.0
			if baseline[i] > 0 {
				slowdown = st.MeanResponse / baseline[i]
			}
			vals = append(vals, st.HitRatio, slowdown)
			c.progress("degraded: p=%.2f %s hit=%.4f slowdown=%.2f (resilience %v)",
				rate, f.name, st.HitRatio, slowdown, st.Resilience)
		}
		t.AddRow(fmt.Sprintf("p=%.2f", rate), rate, vals...)
	}
	t.Notes = append(t.Notes,
		"slowdown = mean response / the same policy's fault-free mean response (row p=0.00 is 1 by construction)",
		"reproduce: go run ./cmd/srmbench -degraded   (add -jobs/-seed to rescale; table is deterministic per seed)")
	return t, nil
}
