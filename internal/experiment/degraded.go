package experiment

import (
	"fmt"
	"math"

	"fbcache/internal/bundle"
	"fbcache/internal/faults"
	"fbcache/internal/policy"
	"fbcache/internal/policy/classic"
	"fbcache/internal/policy/landlord"
	"fbcache/internal/simulate"
	"fbcache/internal/workload"
)

// degradedFailureRates is the per-transfer failure probability sweep of the
// degraded-mode experiment; 0 is the fault-free-transfer reference row.
var degradedFailureRates = []float64{0, 0.05, 0.1, 0.2, 0.3}

// DegradedMode re-runs the paper's policy comparison with the grid
// misbehaving: the timed simulator stages misses across a 2-site data grid
// whose remote archive suffers a mid-run outage, under a rising per-transfer
// failure probability (retries with capped exponential backoff, bounded
// requeues), with the epoch re-planner healing around the outage. For each
// policy it tables the request hit ratio, the mean job slowdown — mean
// response time divided by the same policy's zero-failure-rate mean response
// — the recovery time of the windowed local-service ratio after the outage
// ("-" when the run never recovered), and the bytes the re-planner moved.
// Fully deterministic: fault draws come from a seeded injector (seed derived
// from Config.Seed), so the table is bit-reproducible for a given config.
func (c Config) DegradedMode() (*Table, error) {
	factories := []struct {
		name string
		mk   policy.Factory
	}{
		{"opt", optFactory()},
		{"landlord", landlord.Factory()},
		{"gdsf", classic.GDSFFactory()},
	}

	w, err := workload.Generate(c.baseSpec(workload.Zipf, 0.05))
	if err != nil {
		return nil, err
	}

	const arrivalRate = 2.0
	horizon := float64(c.Jobs) / arrivalRate
	outage := faults.Window{Start: 0.25 * horizon, End: 0.35 * horizon}
	epoch := horizon / 50

	series := make([]string, 0, 4*len(factories))
	for _, f := range factories {
		series = append(series, f.name+" hit", f.name+" slowdown",
			f.name+" recovery", f.name+" rerepl GB")
	}
	t := &Table{
		ID:       "degraded",
		Title:    "Degraded mode: hit ratio, slowdown, outage recovery and re-replication vs transfer failure rate",
		ColLabel: "failure prob",
		Series:   series,
	}

	baseline := make([]float64, len(factories)) // zero-rate mean response per policy
	for _, rate := range degradedFailureRates {
		vals := make([]float64, 0, len(series))
		for i, f := range factories {
			sc := faults.Scenario{
				Seed:                c.Seed + 1000, // independent of the workload seed
				TransferFailureProb: rate,
				Sites: map[int]faults.SiteFaults{
					1: {Outages: []faults.Window{outage}},
				},
				MaxJobAttempts: 3,
			}
			// Half the catalog starts with a local replica; the other half
			// rides the WAN, so the outage and the failure rate both bite.
			cfg, err := studyGrid(w, func(f bundle.FileID) bool { return f%2 == 0 })
			if err != nil {
				return nil, err
			}
			p := f.mk(c.CacheSize, w.Catalog.SizeFunc())
			st, err := simulate.RunEvents(w, p, simulate.EventOptions{
				ArrivalRate: arrivalRate,
				Grid:        cfg,
				Seed:        c.Seed,
				Faults:      &sc,
				Replication: &simulate.ReplicationConfig{
					EpochSec: epoch, Budget: 4 * c.CacheSize, RiskHorizonSec: 2 * epoch,
				},
				Tracer: c.Tracer,

				RecoveryWindowJobs: maxInt(20, c.Jobs/8),
				RecoveryEpsilon:    0.08,
			})
			if err != nil {
				return nil, err
			}
			if rate == 0 { //fbvet:allow floateq — the literal 0 in the sweep, not a computed float
				baseline[i] = st.MeanResponse
			}
			slowdown := math.NaN()
			if baseline[i] > 0 {
				slowdown = st.MeanResponse / baseline[i]
			}
			rec, _ := firstRecovery(st.Recoveries)
			rerepl := float64(st.Replication.Bytes) / float64(bundle.GB)
			vals = append(vals, st.HitRatio, slowdown, rec, rerepl)
			c.progress("degraded: p=%.2f %s hit=%.4f slowdown=%.2f recovery=%.1fs rerepl=%.2fGB (resilience %v)",
				rate, f.name, st.HitRatio, slowdown, rec, rerepl, st.Resilience)
		}
		t.AddRow(fmt.Sprintf("p=%.2f", rate), rate, vals...)
	}
	t.Notes = append(t.Notes,
		"slowdown = mean response / the same policy's zero-failure-rate mean response (row p=0.00 is 1 by construction)",
		"recovery = seconds from outage start until the windowed local-service ratio re-enters (and stays within) eps of its pre-outage baseline; '-' = never recovered",
		fmt.Sprintf("every row includes a remote-archive outage over [%.0fs, %.0fs) with the epoch re-planner armed (budget 4x cache)", outage.Start, outage.End),
		"reproduce: go run ./cmd/srmbench -degraded   (add -jobs/-seed to rescale; table is deterministic per seed)")
	return t, nil
}
