package experiment

import (
	"fmt"
	"math"
	"math/rand"

	"fbcache/internal/bundle"
	"fbcache/internal/core"
	"fbcache/internal/floats"
	"fbcache/internal/solver"
)

// BoundStudy validates Theorem 4.1 empirically: on random small FBC
// instances grouped by the file-sharing degree d, it reports the worst
// observed greedy/OPT and seeded/OPT ratios against the theoretical bounds
// ½(1−e^{−1/d}) and (1−e^{−1/d}). Observed ratios sit far above the bounds
// in practice — the table shows both how loose the worst case is and that
// the guarantee is never violated.
func (c Config) BoundStudy() (*Table, error) {
	const trialsPerBucket = 60
	rng := rand.New(rand.NewSource(c.Seed + 424242))

	t := &Table{
		ID:       "bounds",
		Title:    "Theorem 4.1: observed worst-case approximation ratios vs bounds",
		ColLabel: "max degree d",
		Series:   []string{"greedy worst", "seeded-k2 worst", "bound 1/2(1-e^-1/d)", "bound (1-e^-1/d)"},
	}

	buckets := map[int][2]float64{} // d -> worst (greedy, seeded)
	for trial := 0; trial < trialsPerBucket*4; trial++ {
		cands, capacity, sizeOf := randomInstance(rng)
		opt := solver.SolveExact(cands, capacity, sizeOf)
		if floats.AlmostZero(opt.Value) {
			continue
		}
		d := solver.MaxDegree(cands)
		if d < 1 {
			d = 1
		}
		deg := make(map[bundle.FileID]int)
		for _, cand := range cands {
			for _, f := range cand.Bundle {
				deg[f]++
			}
		}
		opts := core.SelectOptions{
			SizeOf:   sizeOf,
			DegreeOf: func(f bundle.FileID) int { return deg[f] },
			Resort:   true,
		}
		g := core.Select(cands, capacity, opts).Value / opt.Value
		s := core.SelectSeeded(cands, capacity, 2, opts).Value / opt.Value

		worst, ok := buckets[d]
		if !ok {
			worst = [2]float64{math.Inf(1), math.Inf(1)}
		}
		if g < worst[0] {
			worst[0] = g
		}
		if s < worst[1] {
			worst[1] = s
		}
		buckets[d] = worst
	}

	for d := 1; d <= 8; d++ {
		worst, ok := buckets[d]
		if !ok {
			continue
		}
		half := 0.5 * (1 - math.Exp(-1/float64(d)))
		full := 1 - math.Exp(-1/float64(d))
		t.AddRow(fmt.Sprintf("d=%d", d), float64(d), worst[0], worst[1], half, full)
		if worst[0] < half {
			return nil, fmt.Errorf("experiment: greedy ratio %.4f violates bound %.4f at d=%d", worst[0], half, d)
		}
		if worst[1] < full {
			return nil, fmt.Errorf("experiment: seeded ratio %.4f violates bound %.4f at d=%d", worst[1], full, d)
		}
		c.progress("bounds: d=%d greedy>=%.3f seeded>=%.3f", d, worst[0], worst[1])
	}
	t.Notes = append(t.Notes, "no observed ratio may fall below its column's bound (checked programmatically)")
	return t, nil
}

// randomInstance draws a small FBC instance for the bound study.
func randomInstance(rng *rand.Rand) ([]core.Candidate, bundle.Size, bundle.SizeFunc) {
	nFiles := 4 + rng.Intn(8)
	sizes := make([]bundle.Size, nFiles)
	for i := range sizes {
		sizes[i] = bundle.Size(1 + rng.Intn(6))
	}
	n := 2 + rng.Intn(9)
	cands := make([]core.Candidate, n)
	for i := range cands {
		k := 1 + rng.Intn(3)
		ids := make([]bundle.FileID, k)
		for j := range ids {
			ids[j] = bundle.FileID(rng.Intn(nFiles))
		}
		cands[i] = core.Candidate{
			Bundle: bundle.New(ids...),
			Value:  float64(1 + rng.Intn(10)),
		}
	}
	capacity := bundle.Size(3 + rng.Intn(18))
	return cands, capacity, func(f bundle.FileID) bundle.Size { return sizes[f] }
}
