// Package bundle defines the basic vocabulary of the file-bundle caching
// problem (§1.1, §2): files with sizes, bundles (the set of files a job must
// have in cache simultaneously), and requests (a bundle plus an importance
// value). Every other package — history, cache, the policies, the
// simulators — speaks in these types.
//
// A Bundle is stored in canonical form — sorted, duplicate-free — so that two
// jobs asking for the same set of files compare equal and share one history
// entry, exactly as the L(R) structure of §3 requires.
package bundle

import (
	"fmt"
	"slices"
	"strings"
)

// FileID identifies a file in a Catalog. IDs are dense small integers so the
// hot paths (degree maps, residency sets) can use slices instead of maps.
type FileID uint32

// Size is a file or transfer size in bytes.
type Size int64

// Common size units.
const (
	KB Size = 1 << 10
	MB Size = 1 << 20
	GB Size = 1 << 30
	TB Size = 1 << 40
)

func (s Size) String() string {
	switch {
	case s >= TB:
		return fmt.Sprintf("%.2fTB", float64(s)/float64(TB))
	case s >= GB:
		return fmt.Sprintf("%.2fGB", float64(s)/float64(GB))
	case s >= MB:
		return fmt.Sprintf("%.2fMB", float64(s)/float64(MB))
	case s >= KB:
		return fmt.Sprintf("%.2fKB", float64(s)/float64(KB))
	}
	return fmt.Sprintf("%dB", int64(s))
}

// File pairs a FileID with its size.
type File struct {
	ID   FileID
	Size Size
}

// Bundle is a canonical (sorted, deduplicated) set of FileIDs — the files a
// job needs in cache at the same time.
type Bundle []FileID

// New builds a canonical Bundle from the given ids. The input slice is not
// retained.
func New(ids ...FileID) Bundle {
	b := make(Bundle, len(ids))
	copy(b, ids)
	return b.normalize()
}

// FromSlice canonicalizes ids in place and returns it as a Bundle. The caller
// must not reuse ids afterwards.
func FromSlice(ids []FileID) Bundle {
	return Bundle(ids).normalize()
}

func (b Bundle) normalize() Bundle {
	if len(b) < 2 {
		return b
	}
	// slices.Sort, not sort.Slice: the reflection-based swapper allocates,
	// and normalize runs on every Bundle construction, including the
	// per-admission Loaded/Evicted scratch canonicalization.
	slices.Sort(b)
	out := b[:1]
	for _, id := range b[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

// Len reports the number of files in the bundle.
func (b Bundle) Len() int { return len(b) }

// Contains reports whether id is a member of the bundle.
// The bundle is sorted, so this is a binary search.
func (b Bundle) Contains(id FileID) bool {
	// slices.BinarySearch, not sort.Search: no closure to materialize on
	// per-file membership tests inside eviction scans.
	_, ok := slices.BinarySearch(b, id)
	return ok
}

// SubsetOf reports whether every file of b is also in other.
func (b Bundle) SubsetOf(other Bundle) bool {
	if len(b) > len(other) {
		return false
	}
	i := 0
	for _, id := range b {
		for i < len(other) && other[i] < id {
			i++
		}
		if i >= len(other) || other[i] != id {
			return false
		}
		i++
	}
	return true
}

// Equal reports whether two canonical bundles contain the same files.
func (b Bundle) Equal(other Bundle) bool {
	if len(b) != len(other) {
		return false
	}
	for i := range b {
		if b[i] != other[i] {
			return false
		}
	}
	return true
}

// Union returns a new canonical bundle with the files of both bundles.
func (b Bundle) Union(other Bundle) Bundle {
	out := make(Bundle, 0, len(b)+len(other))
	i, j := 0, 0
	for i < len(b) && j < len(other) {
		switch {
		case b[i] < other[j]:
			out = append(out, b[i])
			i++
		case b[i] > other[j]:
			out = append(out, other[j])
			j++
		default:
			out = append(out, b[i])
			i++
			j++
		}
	}
	out = append(out, b[i:]...)
	out = append(out, other[j:]...)
	return out
}

// Intersect returns the files common to both bundles.
func (b Bundle) Intersect(other Bundle) Bundle {
	var out Bundle
	i, j := 0, 0
	for i < len(b) && j < len(other) {
		switch {
		case b[i] < other[j]:
			i++
		case b[i] > other[j]:
			j++
		default:
			out = append(out, b[i])
			i++
			j++
		}
	}
	return out
}

// Minus returns the files of b that are not in other.
func (b Bundle) Minus(other Bundle) Bundle {
	var out Bundle
	j := 0
	for _, id := range b {
		for j < len(other) && other[j] < id {
			j++
		}
		if j < len(other) && other[j] == id {
			continue
		}
		out = append(out, id)
	}
	return out
}

// Clone returns an independent copy of the bundle.
func (b Bundle) Clone() Bundle {
	out := make(Bundle, len(b))
	copy(out, b)
	return out
}

// Key returns a compact canonical string key for use in history hash tables.
func (b Bundle) Key() string {
	if len(b) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.Grow(len(b) * 6)
	for i, id := range b {
		if i > 0 {
			sb.WriteByte(',')
		}
		// Manual uint formatting; avoids fmt in the hot path.
		sb.WriteString(utoa(uint64(id)))
	}
	return sb.String()
}

// AppendKey appends the Key representation of b to dst and returns the
// extended slice — the allocation-free form of Key for hot-path callers
// (history lookups) that reuse a scratch buffer and probe the hash table
// with string(buf), which Go compiles to a no-copy lookup.
func (b Bundle) AppendKey(dst []byte) []byte {
	for i, id := range b {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendUint(dst, uint64(id))
	}
	return dst
}

// appendUint appends the decimal digits of u to dst (utoa without the string
// allocation).
func appendUint(dst []byte, u uint64) []byte {
	if u == 0 {
		return append(dst, '0')
	}
	var buf [20]byte
	i := len(buf)
	for u > 0 {
		i--
		buf[i] = byte('0' + u%10) //fbvet:allow sizeunits — u%10 < 10 always fits a byte
		u /= 10
	}
	return append(dst, buf[i:]...)
}

func utoa(u uint64) string {
	if u == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for u > 0 {
		i--
		buf[i] = byte('0' + u%10) //fbvet:allow sizeunits — u%10 < 10 always fits a byte
		u /= 10
	}
	return string(buf[i:])
}

func (b Bundle) String() string {
	parts := make([]string, len(b))
	for i, id := range b {
		parts[i] = fmt.Sprintf("f%d", id)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Request is a job's file demand: a bundle plus a value reflecting its
// importance (in the paper, a popularity counter, but priorities work too).
type Request struct {
	Bundle Bundle
	Value  float64
}

// SizeFunc reports the size of a file. It abstracts the Catalog so algorithm
// packages need not depend on it.
type SizeFunc func(FileID) Size

// TotalSize sums the sizes of the files in b under sizeOf.
func (b Bundle) TotalSize(sizeOf SizeFunc) Size {
	var total Size
	for _, id := range b {
		total += sizeOf(id)
	}
	return total
}
