package bundle

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Catalog maps human-readable file names to dense FileIDs and records file
// sizes. It is the system's view of "all files that exist in the grid";
// workload generators, SRMs and simulators all share one catalog.
//
// A Catalog is safe for concurrent use.
type Catalog struct {
	// snap is a lazily built copy-on-write snapshot of sizes: mutations
	// invalidate it (Store(nil) under mu), and the first Size call after a
	// mutation rebuilds it under mu. Steady-state Size calls — the per-file
	// SizeFunc reads on every selection round — then run lock-free on the
	// immutable snapshot, which profiling showed removes the RWMutex from
	// the admission hot path entirely. Declared before mu because it is
	// atomically self-synchronized, not mutex-guarded.
	snap atomic.Pointer[[]Size]

	mu    sync.RWMutex
	names []string
	sizes []Size
	index map[string]FileID
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{index: make(map[string]FileID)}
}

// Add registers a file with the given name and size and returns its ID.
// Adding an existing name updates its size and returns the existing ID.
func (c *Catalog) Add(name string, size Size) FileID {
	if size < 0 {
		panic(fmt.Sprintf("bundle: negative size %d for file %q", size, name))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if id, ok := c.index[name]; ok {
		c.sizes[id] = size
		c.snap.Store(nil)
		return id
	}
	id := FileID(len(c.names))
	c.names = append(c.names, name)
	c.sizes = append(c.sizes, size)
	c.index[name] = id
	c.snap.Store(nil)
	return id
}

// AddAnonymous registers a file with a generated name ("file-<id>").
func (c *Catalog) AddAnonymous(size Size) FileID {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := FileID(len(c.names))
	name := fmt.Sprintf("file-%d", id)
	c.names = append(c.names, name)
	c.sizes = append(c.sizes, size)
	c.index[name] = id
	c.snap.Store(nil)
	return id
}

// Lookup returns the ID for name, if registered.
func (c *Catalog) Lookup(name string) (FileID, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	id, ok := c.index[name]
	return id, ok
}

// Name returns the name of file id. It panics on unknown IDs.
func (c *Catalog) Name(id FileID) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.names[id]
}

// Size returns the size of file id. It panics on unknown IDs. The fast path
// reads the lock-free snapshot; only the first call after a mutation takes
// the lock (to rebuild it).
func (c *Catalog) Size(id FileID) Size {
	if p := c.snap.Load(); p != nil {
		return (*p)[id]
	}
	return c.sizeSlow(id)
}

// sizeSlow rebuilds the snapshot under the lock and answers from it.
func (c *Catalog) sizeSlow(id FileID) Size {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := make([]Size, len(c.sizes))
	copy(snap, c.sizes)
	c.snap.Store(&snap)
	return snap[id]
}

// SizeFunc returns a SizeFunc backed by the catalog.
func (c *Catalog) SizeFunc() SizeFunc { return c.Size }

// Len reports the number of registered files.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.names)
}

// Files returns a snapshot of all files in ID order.
func (c *Catalog) Files() []File {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]File, len(c.names))
	for i := range c.names {
		out[i] = File{ID: FileID(i), Size: c.sizes[i]}
	}
	return out
}

// TotalSize reports the combined size of all registered files.
func (c *Catalog) TotalSize() Size {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var total Size
	for _, s := range c.sizes {
		total += s
	}
	return total
}
