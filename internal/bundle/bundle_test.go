package bundle

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewCanonicalizes(t *testing.T) {
	tests := []struct {
		name string
		in   []FileID
		want Bundle
	}{
		{"empty", nil, Bundle{}},
		{"single", []FileID{7}, Bundle{7}},
		{"sorted", []FileID{1, 2, 3}, Bundle{1, 2, 3}},
		{"reverse", []FileID{3, 2, 1}, Bundle{1, 2, 3}},
		{"dups", []FileID{5, 1, 5, 1, 5}, Bundle{1, 5}},
		{"all same", []FileID{9, 9, 9}, Bundle{9}},
		{"mixed", []FileID{4, 0, 4, 2, 0, 8}, Bundle{0, 2, 4, 8}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := New(tt.in...)
			if len(got) == 0 && len(tt.want) == 0 {
				return
			}
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("New(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestNewDoesNotRetainInput(t *testing.T) {
	in := []FileID{3, 1, 2}
	b := New(in...)
	in[0] = 99
	if !b.Equal(Bundle{1, 2, 3}) {
		t.Errorf("Bundle mutated by caller's slice: %v", b)
	}
}

func TestContains(t *testing.T) {
	b := New(2, 4, 6, 8)
	for _, id := range []FileID{2, 4, 6, 8} {
		if !b.Contains(id) {
			t.Errorf("Contains(%d) = false, want true", id)
		}
	}
	for _, id := range []FileID{0, 1, 3, 5, 7, 9, 100} {
		if b.Contains(id) {
			t.Errorf("Contains(%d) = true, want false", id)
		}
	}
	var empty Bundle
	if empty.Contains(0) {
		t.Error("empty bundle Contains(0) = true")
	}
}

func TestSubsetOf(t *testing.T) {
	tests := []struct {
		a, b Bundle
		want bool
	}{
		{New(), New(1, 2), true},
		{New(1), New(1, 2), true},
		{New(1, 2), New(1, 2), true},
		{New(1, 3), New(1, 2, 3), true},
		{New(1, 2, 3), New(1, 2), false},
		{New(4), New(1, 2, 3), false},
		{New(1, 5), New(1, 2, 3, 4), false},
		{New(), New(), true},
	}
	for _, tt := range tests {
		if got := tt.a.SubsetOf(tt.b); got != tt.want {
			t.Errorf("%v.SubsetOf(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestSetOperations(t *testing.T) {
	a := New(1, 2, 3, 5)
	b := New(2, 4, 5, 6)

	if got := a.Union(b); !got.Equal(New(1, 2, 3, 4, 5, 6)) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(New(2, 5)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); !got.Equal(New(1, 3)) {
		t.Errorf("Minus = %v", got)
	}
	if got := b.Minus(a); !got.Equal(New(4, 6)) {
		t.Errorf("Minus reversed = %v", got)
	}
	var empty Bundle
	if got := a.Union(empty); !got.Equal(a) {
		t.Errorf("Union with empty = %v", got)
	}
	if got := empty.Minus(a); got.Len() != 0 {
		t.Errorf("empty.Minus = %v", got)
	}
}

func TestKeyUniqueAndStable(t *testing.T) {
	a := New(3, 1, 2)
	b := New(1, 2, 3)
	if a.Key() != b.Key() {
		t.Errorf("equal bundles have different keys: %q vs %q", a.Key(), b.Key())
	}
	c := New(1, 23)
	d := New(12, 3)
	if c.Key() == d.Key() {
		t.Errorf("distinct bundles share key %q", c.Key())
	}
	if New().Key() != "" {
		t.Errorf("empty bundle key = %q, want empty", New().Key())
	}
}

func TestTotalSize(t *testing.T) {
	sizes := map[FileID]Size{1: 10, 2: 20, 3: 30}
	sizeOf := func(id FileID) Size { return sizes[id] }
	if got := New(1, 2, 3).TotalSize(sizeOf); got != 60 {
		t.Errorf("TotalSize = %d, want 60", got)
	}
	if got := New().TotalSize(sizeOf); got != 0 {
		t.Errorf("TotalSize(empty) = %d, want 0", got)
	}
}

func TestSizeString(t *testing.T) {
	tests := []struct {
		s    Size
		want string
	}{
		{512, "512B"},
		{KB, "1.00KB"},
		{3 * MB / 2, "1.50MB"},
		{2 * GB, "2.00GB"},
		{5 * TB, "5.00TB"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("Size(%d).String() = %q, want %q", tt.s, got, tt.want)
		}
	}
}

// Property: canonicalization is idempotent and order-insensitive.
func TestQuickCanonical(t *testing.T) {
	f := func(raw []uint32) bool {
		ids := make([]FileID, len(raw))
		for i, v := range raw {
			ids[i] = FileID(v % 64)
		}
		b1 := New(ids...)
		// Shuffle and rebuild.
		r := rand.New(rand.NewSource(42))
		r.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		b2 := New(ids...)
		if !b1.Equal(b2) {
			return false
		}
		// Sorted and unique.
		if !sort.SliceIsSorted(b1, func(i, j int) bool { return b1[i] < b1[j] }) {
			return false
		}
		for i := 1; i < len(b1); i++ {
			if b1[i] == b1[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: algebraic identities of set operations.
func TestQuickSetAlgebra(t *testing.T) {
	mk := func(raw []uint32) Bundle {
		ids := make([]FileID, len(raw))
		for i, v := range raw {
			ids[i] = FileID(v % 32)
		}
		return New(ids...)
	}
	f := func(ra, rb []uint32) bool {
		a, b := mk(ra), mk(rb)
		u := a.Union(b)
		if !a.SubsetOf(u) || !b.SubsetOf(u) {
			return false
		}
		inter := a.Intersect(b)
		if !inter.SubsetOf(a) || !inter.SubsetOf(b) {
			return false
		}
		// |A∪B| = |A| + |B| - |A∩B|
		if u.Len() != a.Len()+b.Len()-inter.Len() {
			return false
		}
		// A\B and A∩B partition A.
		diff := a.Minus(b)
		if diff.Len()+inter.Len() != a.Len() {
			return false
		}
		if diff.Intersect(b).Len() != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCatalogBasics(t *testing.T) {
	c := NewCatalog()
	if c.Len() != 0 {
		t.Fatalf("new catalog Len = %d", c.Len())
	}
	a := c.Add("alpha", 100)
	b := c.Add("beta", 200)
	if a == b {
		t.Fatal("distinct names share ID")
	}
	if got := c.Name(a); got != "alpha" {
		t.Errorf("Name(a) = %q", got)
	}
	if got := c.Size(b); got != 200 {
		t.Errorf("Size(b) = %d", got)
	}
	if id, ok := c.Lookup("alpha"); !ok || id != a {
		t.Errorf("Lookup(alpha) = %d, %v", id, ok)
	}
	if _, ok := c.Lookup("gamma"); ok {
		t.Error("Lookup(gamma) found")
	}
	// Re-adding updates size, keeps ID.
	a2 := c.Add("alpha", 150)
	if a2 != a {
		t.Errorf("re-Add changed ID: %d vs %d", a2, a)
	}
	if got := c.Size(a); got != 150 {
		t.Errorf("Size after update = %d", got)
	}
	if got := c.TotalSize(); got != 350 {
		t.Errorf("TotalSize = %d, want 350", got)
	}
	anon := c.AddAnonymous(42)
	if got := c.Size(anon); got != 42 {
		t.Errorf("anonymous size = %d", got)
	}
	files := c.Files()
	if len(files) != 3 {
		t.Fatalf("Files len = %d", len(files))
	}
	for i, f := range files {
		if f.ID != FileID(i) {
			t.Errorf("Files()[%d].ID = %d", i, f.ID)
		}
	}
}

func TestCatalogAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add with negative size did not panic")
		}
	}()
	NewCatalog().Add("bad", -1)
}

func TestCatalogConcurrent(t *testing.T) {
	c := NewCatalog()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				id := c.AddAnonymous(Size(i))
				_ = c.Name(id)
				_ = c.Size(id)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if c.Len() != 800 {
		t.Errorf("Len = %d, want 800", c.Len())
	}
}

func BenchmarkBundleKey(b *testing.B) {
	bd := New(1, 5, 9, 200, 4000, 80000, 1600000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = bd.Key()
	}
}

func BenchmarkSubsetOf(b *testing.B) {
	big := make([]FileID, 256)
	for i := range big {
		big[i] = FileID(i * 3)
	}
	super := New(big...)
	sub := New(3, 30, 300, 600)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = sub.SubsetOf(super)
	}
}
