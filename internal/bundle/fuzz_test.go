package bundle

import "testing"

// FuzzBundleCanonical checks that canonicalization is idempotent, sorted,
// duplicate-free, and that Key collisions imply bundle equality for
// arbitrary byte-derived ID lists.
func FuzzBundleCanonical(f *testing.F) {
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{})
	f.Add([]byte{255, 0, 255, 0})
	f.Add([]byte{7, 7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, raw []byte) {
		ids := make([]FileID, len(raw))
		for i, b := range raw {
			ids[i] = FileID(b)
		}
		bd := New(ids...)
		// Idempotent.
		if again := New(bd...); !again.Equal(bd) {
			t.Fatalf("not idempotent: %v vs %v", bd, again)
		}
		// Sorted, unique, and every input member present.
		for i := 1; i < len(bd); i++ {
			if bd[i] <= bd[i-1] {
				t.Fatalf("not sorted/unique at %d: %v", i, bd)
			}
		}
		for _, id := range ids {
			if !bd.Contains(id) {
				t.Fatalf("lost member %d: %v", id, bd)
			}
		}
		// Key round-trip discrimination: a bundle missing one element must
		// have a different key.
		if len(bd) > 0 {
			smaller := bd.Minus(New(bd[0]))
			if smaller.Key() == bd.Key() {
				t.Fatalf("key collision: %v vs %v", smaller, bd)
			}
		}
	})
}

// FuzzSetAlgebra cross-checks Union/Intersect/Minus against a map-based
// model.
func FuzzSetAlgebra(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{3, 4})
	f.Add([]byte{}, []byte{9})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		mk := func(raw []byte) (Bundle, map[FileID]bool) {
			ids := make([]FileID, len(raw))
			set := make(map[FileID]bool)
			for i, b := range raw {
				ids[i] = FileID(b % 32)
				set[FileID(b%32)] = true
			}
			return New(ids...), set
		}
		a, sa := mk(rawA)
		b, sb := mk(rawB)
		check := func(name string, got Bundle, want func(FileID) bool) {
			seen := make(map[FileID]bool)
			for _, id := range got {
				if !want(id) {
					t.Fatalf("%s: unexpected member %d", name, id)
				}
				seen[id] = true
			}
			for id := FileID(0); id < 32; id++ {
				if want(id) && !seen[id] {
					t.Fatalf("%s: missing member %d", name, id)
				}
			}
		}
		check("union", a.Union(b), func(id FileID) bool { return sa[id] || sb[id] })
		check("intersect", a.Intersect(b), func(id FileID) bool { return sa[id] && sb[id] })
		check("minus", a.Minus(b), func(id FileID) bool { return sa[id] && !sb[id] })
	})
}
