package queue

import (
	"testing"

	"fbcache/internal/bundle"
)

func pend(bundles ...bundle.Bundle) []Pending {
	out := make([]Pending, len(bundles))
	for i, b := range bundles {
		out[i] = Pending{Bundle: b}
	}
	return out
}

func TestFCFSAlwaysPicksFirst(t *testing.T) {
	s := FCFS()
	pending := pend(bundle.New(1), bundle.New(2), bundle.New(3))
	if got := s.Pick(pending); got != 0 {
		t.Errorf("Pick = %d", got)
	}
	if s.Name() != "fcfs" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestByScorePicksMaxWithFCFSTieBreak(t *testing.T) {
	scores := map[string]float64{
		bundle.New(1).Key(): 1,
		bundle.New(2).Key(): 5,
		bundle.New(3).Key(): 5,
	}
	s := ByScore("test", func(b bundle.Bundle) float64 { return scores[b.Key()] })
	pending := pend(bundle.New(1), bundle.New(2), bundle.New(3))
	if got := s.Pick(pending); got != 1 {
		t.Errorf("Pick = %d, want 1 (first of the tied maxima)", got)
	}
}

func TestSJF(t *testing.T) {
	sizeOf := func(f bundle.FileID) bundle.Size { return bundle.Size(f) }
	s := SJF(sizeOf)
	pending := pend(bundle.New(10), bundle.New(2), bundle.New(5))
	if got := s.Pick(pending); got != 1 {
		t.Errorf("SJF picked %d, want 1 (smallest)", got)
	}
}

func TestAgeLimitGuardsLockout(t *testing.T) {
	// A scheduler that always prefers bundle {9} would starve others; the
	// age guard must force the starved job out after maxAge passes.
	favorite := ByScore("fav", func(b bundle.Bundle) float64 {
		if b.Contains(9) {
			return 1
		}
		return 0
	})
	s := AgeLimit(favorite, 3)
	pending := []Pending{
		{Bundle: bundle.New(1), Age: 0},
		{Bundle: bundle.New(9), Age: 0},
	}
	if got := s.Pick(pending); got != 1 {
		t.Errorf("young queue: Pick = %d, want favorite", got)
	}
	pending[0].Age = 3 // passed over three times
	if got := s.Pick(pending); got != 0 {
		t.Errorf("aged queue: Pick = %d, want starved job", got)
	}
	// Oldest over-age job wins among several.
	pending = append(pending, Pending{Bundle: bundle.New(2), Age: 7})
	if got := s.Pick(pending); got != 2 {
		t.Errorf("Pick = %d, want oldest over-age", got)
	}
	if s.Name() != "fav+age3" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestAgeLimitClamps(t *testing.T) {
	s := AgeLimit(FCFS(), 0)
	// maxAge clamps to 1: any job with Age >= 1 is served immediately.
	pending := []Pending{{Bundle: bundle.New(1), Age: 0}, {Bundle: bundle.New(2), Age: 1}}
	if got := s.Pick(pending); got != 1 {
		t.Errorf("Pick = %d", got)
	}
}

func TestBatcherDrainsInScoreOrder(t *testing.T) {
	var served []bundle.FileID
	score := func(b bundle.Bundle) float64 { return float64(b[0]) }
	b := NewBatcher(3, ByScore("desc", score), func(r bundle.Bundle) {
		served = append(served, r[0])
	})
	b.Submit(bundle.New(1))
	b.Submit(bundle.New(3))
	if len(served) != 0 {
		t.Fatalf("served before queue full: %v", served)
	}
	if b.Pending() != 2 {
		t.Errorf("Pending = %d", b.Pending())
	}
	b.Submit(bundle.New(2)) // queue reaches 3 -> full drain
	want := []bundle.FileID{3, 2, 1}
	if len(served) != 3 {
		t.Fatalf("served = %v", served)
	}
	for i := range want {
		if served[i] != want[i] {
			t.Errorf("served = %v, want %v", served, want)
		}
	}
	if b.Pending() != 0 {
		t.Errorf("Pending after drain = %d", b.Pending())
	}
}

func TestBatcherAgesPendingJobs(t *testing.T) {
	// With an aggressive age limit, a permanently-low-scoring job still
	// gets served within maxAge picks of the drain.
	served := []bundle.FileID{}
	score := func(b bundle.Bundle) float64 { return float64(b[0]) }
	b := NewBatcher(4, AgeLimit(ByScore("desc", score), 2), func(r bundle.Bundle) {
		served = append(served, r[0])
	})
	for _, id := range []bundle.FileID{1, 8, 9, 7} {
		b.Submit(bundle.New(id))
	}
	// Unguarded order would be 9,8,7,1; with maxAge=2 job 1 reaches age 2
	// after two picks and preempts 7.
	want := []bundle.FileID{9, 8, 1, 7}
	for i := range want {
		if served[i] != want[i] {
			t.Fatalf("served = %v, want %v", served, want)
		}
	}
}

func TestBatcherLengthOneIsImmediate(t *testing.T) {
	var served int
	b := NewBatcher(1, FCFS(), func(bundle.Bundle) { served++ })
	b.Submit(bundle.New(1))
	if served != 1 {
		t.Errorf("served = %d", served)
	}
	b2 := NewBatcher(0, FCFS(), func(bundle.Bundle) { served++ })
	if b2.Length() != 1 {
		t.Errorf("Length = %d", b2.Length())
	}
}

func TestBatcherFlush(t *testing.T) {
	var served int
	b := NewBatcher(10, FCFS(), func(bundle.Bundle) { served++ })
	b.Submit(bundle.New(1))
	b.Submit(bundle.New(2))
	b.Flush()
	if served != 2 || b.Pending() != 0 {
		t.Errorf("served=%d pending=%d", served, b.Pending())
	}
	b.Flush() // idempotent
	if served != 2 {
		t.Errorf("double flush served extra jobs")
	}
}

func TestBatcherDynamicScoresReevaluatedEachPick(t *testing.T) {
	// Scores that change as jobs are served (like RelativeValue, which
	// depends on cache state) must be re-read on every pick.
	current := map[string]float64{
		bundle.New(1).Key(): 1,
		bundle.New(2).Key(): 2,
		bundle.New(3).Key(): 3,
	}
	var served []bundle.FileID
	var b *Batcher
	b = NewBatcher(3, ByScore("dyn", func(r bundle.Bundle) float64 { return current[r.Key()] }),
		func(r bundle.Bundle) {
			served = append(served, r[0])
			if r[0] == 3 {
				current[bundle.New(1).Key()] = 10 // serving 3 boosts 1
			}
		})
	b.Submit(bundle.New(1))
	b.Submit(bundle.New(2))
	b.Submit(bundle.New(3))
	want := []bundle.FileID{3, 1, 2}
	for i := range want {
		if served[i] != want[i] {
			t.Fatalf("served = %v, want %v", served, want)
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"nil score":     func() { ByScore("x", nil) },
		"nil size":      func() { SJF(nil) },
		"nil sched":     func() { NewBatcher(1, nil, func(bundle.Bundle) {}) },
		"nil serve":     func() { NewBatcher(1, FCFS(), nil) },
		"nil age inner": func() { AgeLimit(nil, 3) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		})
	}
}
