// Package queue implements the admission-queue scheduling of §5.2/§5.3
// ("Incoming Queue Length"): instead of serving jobs strictly first come
// first serve, up to q pending jobs are aggregated and drained in an order
// chosen by a Scheduler — in the paper, highest relative value first,
// repeated on the remaining jobs until the queue empties.
//
// §5.2 also asks for "a fair effective scheduling algorithm, i.e., one that
// avoids request lockout but at the same time minimizes the byte miss
// ratio"; AgeLimit wraps any scheduler with a hard service deadline that
// guarantees no request waits forever.
package queue

import (
	"fmt"

	"fbcache/internal/bundle"
)

// Pending is one queued job as seen by a Scheduler.
type Pending struct {
	// Bundle is the job's file demand.
	Bundle bundle.Bundle
	// Age counts scheduling decisions made since this job was enqueued —
	// the currency of lockout avoidance.
	Age int
}

// Scheduler picks which pending job to serve next. Pick must return a valid
// index into pending (callers guarantee len(pending) > 0).
type Scheduler interface {
	Name() string
	Pick(pending []Pending) int
}

// fcfs serves jobs in arrival order.
type fcfs struct{}

func (fcfs) Name() string       { return "fcfs" }
func (fcfs) Pick([]Pending) int { return 0 }

// FCFS returns the first-come-first-serve scheduler.
func FCFS() Scheduler { return fcfs{} }

// byScore serves the pending job with the highest score; ties go to the
// earliest arrival.
type byScore struct {
	name  string
	score func(bundle.Bundle) float64
}

func (s byScore) Name() string { return s.name }

func (s byScore) Pick(pending []Pending) int {
	best, bestScore := 0, s.score(pending[0].Bundle)
	for i := 1; i < len(pending); i++ {
		if sc := s.score(pending[i].Bundle); sc > bestScore {
			best, bestScore = i, sc
		}
	}
	return best
}

// ByScore returns a scheduler serving the highest-scoring job first.
// The paper's queued experiments use the OptFileBundle relative value as the
// score.
func ByScore(name string, score func(bundle.Bundle) float64) Scheduler {
	if score == nil {
		panic("queue: nil score")
	}
	return byScore{name: name, score: score}
}

// SJF returns shortest-job-first scheduling by total bundle bytes — one of
// the service orders mentioned in §1.1.
func SJF(sizeOf bundle.SizeFunc) Scheduler {
	if sizeOf == nil {
		panic("queue: nil SizeFunc")
	}
	return ByScore("sjf", func(b bundle.Bundle) float64 {
		return -float64(b.TotalSize(sizeOf))
	})
}

// ageLimit decorates a scheduler with a lockout guard.
type ageLimit struct {
	inner  Scheduler
	maxAge int
}

func (a ageLimit) Name() string { return fmt.Sprintf("%s+age%d", a.inner.Name(), a.maxAge) }

func (a ageLimit) Pick(pending []Pending) int {
	// Serve the oldest job once it has been passed over maxAge times;
	// among over-age jobs, the oldest wins.
	best, bestAge := -1, a.maxAge-1
	for i, p := range pending {
		if p.Age > bestAge {
			best, bestAge = i, p.Age
		}
	}
	if best >= 0 {
		return best
	}
	return a.inner.Pick(pending)
}

// AgeLimit wraps sched so that any job passed over maxAge times is served
// next regardless of score — the §5.2 request-lockout guard. maxAge < 1 is
// clamped to 1 (degenerates to FCFS).
func AgeLimit(sched Scheduler, maxAge int) Scheduler {
	if sched == nil {
		panic("queue: nil Scheduler")
	}
	if maxAge < 1 {
		maxAge = 1
	}
	return ageLimit{inner: sched, maxAge: maxAge}
}

// Batcher implements the paper's queue discipline: jobs accumulate until the
// queue holds Length jobs (or input ends), then the whole batch drains in
// scheduler order before new arrivals are admitted.
type Batcher struct {
	length  int
	sched   Scheduler
	serve   func(bundle.Bundle)
	pending []Pending
}

// NewBatcher builds a batcher; length <= 1 degenerates to immediate service.
func NewBatcher(length int, sched Scheduler, serve func(bundle.Bundle)) *Batcher {
	if sched == nil {
		panic("queue: nil Scheduler")
	}
	if serve == nil {
		panic("queue: nil serve func")
	}
	if length < 1 {
		length = 1
	}
	return &Batcher{length: length, sched: sched, serve: serve}
}

// Length reports the configured queue length.
func (b *Batcher) Length() int { return b.length }

// Pending reports the number of queued jobs.
func (b *Batcher) Pending() int { return len(b.pending) }

// Submit enqueues one job, draining the batch when the queue fills.
func (b *Batcher) Submit(req bundle.Bundle) {
	if b.length == 1 {
		b.serve(req)
		return
	}
	b.pending = append(b.pending, Pending{Bundle: req})
	if len(b.pending) >= b.length {
		b.drain()
	}
}

// Flush serves all remaining queued jobs (call at end of input).
func (b *Batcher) Flush() { b.drain() }

func (b *Batcher) drain() {
	for len(b.pending) > 0 {
		i := b.sched.Pick(b.pending)
		if i < 0 || i >= len(b.pending) {
			panic(fmt.Sprintf("queue: scheduler %q picked %d of %d", b.sched.Name(), i, len(b.pending)))
		}
		req := b.pending[i].Bundle
		b.pending = append(b.pending[:i], b.pending[i+1:]...)
		for j := range b.pending {
			b.pending[j].Age++
		}
		b.serve(req)
	}
}
