package floats

import (
	"math"
	"sort"
	"testing"
)

func TestAlmostEqual(t *testing.T) {
	tests := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1, 1, true},
		{1, 1 + 1e-12, true},              // below tolerance
		{1, 1 + 1e-6, false},              // above tolerance
		{1e12, 1e12 * (1 + 1e-12), true},  // relative tolerance engages
		{1e12, 1e12 * (1 + 1e-6), false},  // relative difference too large
		{0, 1e-12, true},                  // absolute tolerance near zero
		{0, 1e-6, false},                  //
		{math.Inf(1), math.Inf(1), true},  // same-sign infinity
		{math.Inf(1), math.Inf(-1), false},
		{math.NaN(), math.NaN(), false},   // NaN equals nothing
		{math.NaN(), 1, false},
		{-1, 1, false},
	}
	for _, tt := range tests {
		if got := AlmostEqual(tt.a, tt.b); got != tt.want {
			t.Errorf("AlmostEqual(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestAlmostZero(t *testing.T) {
	if !AlmostZero(0) || !AlmostZero(1e-12) || !AlmostZero(-1e-12) {
		t.Error("AlmostZero should absorb sub-epsilon values")
	}
	if AlmostZero(1e-6) || AlmostZero(-1e-6) || AlmostZero(math.NaN()) {
		t.Error("AlmostZero should reject distinguishable values and NaN")
	}
}

func TestLessGreater(t *testing.T) {
	if Less(1, 1+1e-12) {
		t.Error("Less must treat sub-epsilon differences as ties")
	}
	if !Less(1, 2) || Less(2, 1) {
		t.Error("Less must order distinguishable values")
	}
	if Greater(1+1e-12, 1) {
		t.Error("Greater must treat sub-epsilon differences as ties")
	}
	if !Greater(2, 1) || Greater(1, 2) {
		t.Error("Greater must order distinguishable values")
	}
}

// TestTieBreaking exercises the intended usage: a comparator whose secondary
// key must decide whenever primary float keys differ only by round-off.
// Summing the same values in different orders yields primaries that are
// mathematically equal but bit-different; a deterministic sort must fall
// through to the ID.
func TestTieBreaking(t *testing.T) {
	// 0.1+0.2+0.3 != 0.3+0.2+0.1 in float64 (both ≈ 0.6).
	a := 0.1 + 0.2 + 0.3
	b := 0.3 + 0.2 + 0.1
	if a == b { //fbvet:allow floateq — asserting the premise of the test
		t.Skip("platform folded the sums identically; nothing to test")
	}

	type item struct {
		id    int
		value float64
	}
	items := []item{{2, a}, {1, b}, {3, a}}
	sort.Slice(items, func(i, j int) bool {
		if !AlmostEqual(items[i].value, items[j].value) {
			return items[i].value > items[j].value
		}
		return items[i].id < items[j].id
	})
	for i, want := range []int{1, 2, 3} {
		if items[i].id != want {
			t.Fatalf("tie-break order = %v, want IDs ascending [1 2 3]", items)
		}
	}
}
