// Package floats centralizes tolerant float64 comparison for the numeric
// quantities the algorithms rank and tie-break on — request values v(r),
// relative values v'(r), and Landlord credits. Exact == / != on such derived
// floats is a determinism hazard: two mathematically equal expressions
// computed along different paths (incremental vs. recomputed denominators,
// decayed vs. fresh credits) differ in the last ulps, so exact comparisons
// make tie-breaking depend on rounding accidents. The fbvet floateq analyzer
// flags exact float equality repo-wide; this package is the sanctioned
// replacement.
package floats

import "math"

// Epsilon is the default comparison tolerance. Values and credits in this
// codebase are O(1) (relative values, credits in [0,1]) or O(bytes) (up to
// ~2^40), so a mixed absolute/relative test at 1e-9 distinguishes genuinely
// different ranks while absorbing float round-off.
const Epsilon = 1e-9

// AlmostEqual reports whether a and b are equal within Epsilon, using an
// absolute tolerance near zero and a relative tolerance for large magnitudes.
// Infinities of the same sign compare equal; NaN compares unequal to
// everything, matching IEEE semantics.
func AlmostEqual(a, b float64) bool {
	return AlmostEqualTol(a, b, Epsilon)
}

// AlmostEqualTol is AlmostEqual with an explicit tolerance.
func AlmostEqualTol(a, b, tol float64) bool {
	if a == b { //fbvet:allow floateq — exact fast path, covers ±Inf
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false // distinct infinities, or one finite operand
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

// AlmostZero reports whether x is within Epsilon of zero.
func AlmostZero(x float64) bool {
	return math.Abs(x) <= Epsilon
}

// AlmostZeroTol is AlmostZero with an explicit tolerance.
func AlmostZeroTol(x, tol float64) bool {
	return math.Abs(x) <= tol
}

// Less reports whether a is smaller than b by more than Epsilon — i.e. the
// two are distinguishable and a ranks strictly below b. Use it in
// comparators whose secondary tie-break keys must engage whenever the
// primary float keys are equal up to round-off.
func Less(a, b float64) bool {
	return a < b && !AlmostEqual(a, b)
}

// Greater reports whether a is larger than b by more than Epsilon.
func Greater(a, b float64) bool {
	return a > b && !AlmostEqual(a, b)
}
