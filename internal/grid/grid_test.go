package grid

import (
	"math"
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/mss"
)

func fastMSS(name string) mss.Config {
	return mss.Config{Name: name, LatencySec: 1, BandwidthBps: 100, Channels: 1}
}

func buildTopo(t *testing.T) (*Topology, SiteID, SiteID) {
	t.Helper()
	topo, err := NewTopology("lbl", fastMSS("local"))
	if err != nil {
		t.Fatal(err)
	}
	cern, err := topo.AddSite("cern", mss.Config{Name: "cern", LatencySec: 5, BandwidthBps: 100, Channels: 2})
	if err != nil {
		t.Fatal(err)
	}
	slac, err := topo.AddSite("slac", fastMSS("slac"))
	if err != nil {
		t.Fatal(err)
	}
	// lbl <-> cern: slow WAN; lbl <-> slac: none (unreachable).
	if err := topo.Connect(topo.Local(), cern, Link{LatencySec: 2, BandwidthBps: 50}); err != nil {
		t.Fatal(err)
	}
	return topo, cern, slac
}

func TestTransferCosts(t *testing.T) {
	topo, cern, slac := buildTopo(t)
	// Local: 1 + 100/100 = 2.
	if got := topo.TransferSeconds(topo.Local(), 100); math.Abs(got-2) > 1e-12 {
		t.Errorf("local = %v, want 2", got)
	}
	// CERN: MSS 5 + 100/100 = 6, WAN 2 + 100/50 = 4 -> 10.
	if got := topo.TransferSeconds(cern, 100); math.Abs(got-10) > 1e-12 {
		t.Errorf("cern = %v, want 10", got)
	}
	// SLAC: no link -> +Inf.
	if got := topo.TransferSeconds(slac, 100); !math.IsInf(got, 1) {
		t.Errorf("slac = %v, want +Inf", got)
	}
	// Unknown site -> +Inf.
	if got := topo.TransferSeconds(99, 100); !math.IsInf(got, 1) {
		t.Errorf("unknown = %v, want +Inf", got)
	}
}

func TestTopologyValidation(t *testing.T) {
	topo, cern, _ := buildTopo(t)
	if err := topo.Connect(cern, cern, Link{LatencySec: 1, BandwidthBps: 1}); err == nil {
		t.Error("self-link accepted")
	}
	if err := topo.Connect(0, 99, Link{LatencySec: 1, BandwidthBps: 1}); err == nil {
		t.Error("unknown site accepted")
	}
	if err := topo.Connect(0, cern, Link{LatencySec: -1, BandwidthBps: 1}); err == nil {
		t.Error("negative latency accepted")
	}
	if err := topo.Connect(0, cern, Link{LatencySec: 0, BandwidthBps: 0}); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := topo.AddSite("bad", mss.Config{}); err == nil {
		t.Error("invalid MSS accepted")
	}
	if _, err := NewTopology("bad", mss.Config{}); err == nil {
		t.Error("invalid local MSS accepted")
	}
	if _, err := topo.Site(99); err == nil {
		t.Error("unknown Site accepted")
	}
	if s, err := topo.Site(cern); err != nil || s.Name != "cern" {
		t.Errorf("Site(cern) = %+v, %v", s, err)
	}
	if topo.NumSites() != 3 {
		t.Errorf("NumSites = %d", topo.NumSites())
	}
}

func TestReplicaSelection(t *testing.T) {
	topo, cern, slac := buildTopo(t)
	reps := NewReplicas()
	f := bundle.FileID(7)
	// No replicas yet.
	if _, _, ok := reps.BestSource(topo, f, 100); ok {
		t.Error("BestSource found phantom replica")
	}
	reps.Add(f, cern)
	site, cost, ok := reps.BestSource(topo, f, 100)
	if !ok || site != cern || math.Abs(cost-10) > 1e-12 {
		t.Errorf("BestSource = %v %v %v", site, cost, ok)
	}
	// A local replica beats CERN.
	reps.Add(f, topo.Local())
	site, cost, ok = reps.BestSource(topo, f, 100)
	if !ok || site != topo.Local() || math.Abs(cost-2) > 1e-12 {
		t.Errorf("BestSource with local = %v %v %v", site, cost, ok)
	}
	// Idempotent Add.
	reps.Add(f, cern)
	if got := len(reps.Sites(f)); got != 2 {
		t.Errorf("Sites = %d, want 2", got)
	}
	// Unreachable-only replica: not ok.
	g := bundle.FileID(8)
	reps.Add(g, slac)
	if _, _, ok := reps.BestSource(topo, g, 100); ok {
		t.Error("unreachable replica returned ok")
	}
}

func TestStageBundleCost(t *testing.T) {
	topo, cern, _ := buildTopo(t)
	reps := NewReplicas()
	sizeOf := func(bundle.FileID) bundle.Size { return 100 }
	reps.Add(1, topo.Local()) // cost 2
	reps.Add(2, cern)         // cost 10
	total, bottleneck, err := reps.StageBundleCost(topo, bundle.New(1, 2), sizeOf)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-12) > 1e-12 || math.Abs(bottleneck-10) > 1e-12 {
		t.Errorf("total=%v bottleneck=%v", total, bottleneck)
	}
	// Missing replica -> error.
	if _, _, err := reps.StageBundleCost(topo, bundle.New(1, 3), sizeOf); err == nil {
		t.Error("missing replica accepted")
	}
}
