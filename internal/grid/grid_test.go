package grid

import (
	"math"
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/mss"
)

func fastMSS(name string) mss.Config {
	return mss.Config{Name: name, LatencySec: 1, BandwidthBps: 100, Channels: 1}
}

func buildTopo(t *testing.T) (*Topology, SiteID, SiteID) {
	t.Helper()
	topo, err := NewTopology("lbl", fastMSS("local"))
	if err != nil {
		t.Fatal(err)
	}
	cern, err := topo.AddSite("cern", mss.Config{Name: "cern", LatencySec: 5, BandwidthBps: 100, Channels: 2})
	if err != nil {
		t.Fatal(err)
	}
	slac, err := topo.AddSite("slac", fastMSS("slac"))
	if err != nil {
		t.Fatal(err)
	}
	// lbl <-> cern: slow WAN; lbl <-> slac: none (unreachable).
	if err := topo.Connect(topo.Local(), cern, Link{LatencySec: 2, BandwidthBps: 50}); err != nil {
		t.Fatal(err)
	}
	return topo, cern, slac
}

func TestTransferCosts(t *testing.T) {
	topo, cern, slac := buildTopo(t)
	// Local: 1 + 100/100 = 2.
	if got := topo.TransferSeconds(topo.Local(), 100); math.Abs(got-2) > 1e-12 {
		t.Errorf("local = %v, want 2", got)
	}
	// CERN: MSS 5 + 100/100 = 6, WAN 2 + 100/50 = 4 -> 10.
	if got := topo.TransferSeconds(cern, 100); math.Abs(got-10) > 1e-12 {
		t.Errorf("cern = %v, want 10", got)
	}
	// SLAC: no link -> +Inf.
	if got := topo.TransferSeconds(slac, 100); !math.IsInf(got, 1) {
		t.Errorf("slac = %v, want +Inf", got)
	}
	// Unknown site -> +Inf.
	if got := topo.TransferSeconds(99, 100); !math.IsInf(got, 1) {
		t.Errorf("unknown = %v, want +Inf", got)
	}
}

func TestTopologyValidation(t *testing.T) {
	topo, cern, _ := buildTopo(t)
	if err := topo.Connect(cern, cern, Link{LatencySec: 1, BandwidthBps: 1}); err == nil {
		t.Error("self-link accepted")
	}
	if err := topo.Connect(0, 99, Link{LatencySec: 1, BandwidthBps: 1}); err == nil {
		t.Error("unknown site accepted")
	}
	if err := topo.Connect(0, cern, Link{LatencySec: -1, BandwidthBps: 1}); err == nil {
		t.Error("negative latency accepted")
	}
	if err := topo.Connect(0, cern, Link{LatencySec: 0, BandwidthBps: 0}); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := topo.AddSite("bad", mss.Config{}); err == nil {
		t.Error("invalid MSS accepted")
	}
	if _, err := NewTopology("bad", mss.Config{}); err == nil {
		t.Error("invalid local MSS accepted")
	}
	if _, err := topo.Site(99); err == nil {
		t.Error("unknown Site accepted")
	}
	if s, err := topo.Site(cern); err != nil || s.Name != "cern" {
		t.Errorf("Site(cern) = %+v, %v", s, err)
	}
	if topo.NumSites() != 3 {
		t.Errorf("NumSites = %d", topo.NumSites())
	}
}

func TestReplicaSelection(t *testing.T) {
	topo, cern, slac := buildTopo(t)
	reps := NewReplicas()
	f := bundle.FileID(7)
	// No replicas yet.
	if _, _, ok := reps.BestSource(topo, f, 100); ok {
		t.Error("BestSource found phantom replica")
	}
	reps.Add(f, cern)
	site, cost, ok := reps.BestSource(topo, f, 100)
	if !ok || site != cern || math.Abs(cost-10) > 1e-12 {
		t.Errorf("BestSource = %v %v %v", site, cost, ok)
	}
	// A local replica beats CERN.
	reps.Add(f, topo.Local())
	site, cost, ok = reps.BestSource(topo, f, 100)
	if !ok || site != topo.Local() || math.Abs(cost-2) > 1e-12 {
		t.Errorf("BestSource with local = %v %v %v", site, cost, ok)
	}
	// Idempotent Add.
	reps.Add(f, cern)
	if got := len(reps.Sites(f)); got != 2 {
		t.Errorf("Sites = %d, want 2", got)
	}
	// Unreachable-only replica: not ok.
	g := bundle.FileID(8)
	reps.Add(g, slac)
	if _, _, ok := reps.BestSource(topo, g, 100); ok {
		t.Error("unreachable replica returned ok")
	}
}

// TestSitesReturnsCopy is the regression test for the catalog-aliasing bug:
// Sites used to hand out its internal slice, so a caller could rewrite the
// replica locations in place.
func TestSitesReturnsCopy(t *testing.T) {
	topo, cern, slac := buildTopo(t)
	reps := NewReplicas()
	f := bundle.FileID(3)
	reps.Add(f, cern)
	reps.Add(f, slac)

	got := reps.Sites(f)
	if len(got) != 2 {
		t.Fatalf("Sites = %v", got)
	}
	got[0], got[1] = 99, 99 // attempt to corrupt the catalog through the return

	if again := reps.Sites(f); again[0] != cern || again[1] != slac {
		t.Fatalf("catalog mutated through Sites' return value: %v", again)
	}
	if _, _, ok := reps.BestSource(topo, f, 100); !ok {
		t.Fatal("BestSource broken after caller scribbled on Sites' return")
	}
	if reps.Sites(bundle.FileID(404)) != nil {
		t.Error("unknown file should return nil")
	}
}

func TestRankedSources(t *testing.T) {
	topo, cern, slac := buildTopo(t)
	reps := NewReplicas()
	f := bundle.FileID(7)
	// Register in cost-descending order to prove sorting happens: cern (10),
	// local (2); slac is unreachable and must be omitted.
	reps.Add(f, cern)
	reps.Add(f, slac)
	reps.Add(f, topo.Local())

	ranked := reps.RankedSources(topo, f, 100)
	if len(ranked) != 2 {
		t.Fatalf("RankedSources = %v, want 2 reachable sources", ranked)
	}
	if ranked[0].Site != topo.Local() || math.Abs(ranked[0].Cost-2) > 1e-12 {
		t.Errorf("cheapest = %+v, want local @2", ranked[0])
	}
	if ranked[1].Site != cern || math.Abs(ranked[1].Cost-10) > 1e-12 {
		t.Errorf("second = %+v, want cern @10", ranked[1])
	}

	// The first ranked source and BestSource must always agree (failover
	// starts exactly where the fault-free path would have fetched).
	site, cost, ok := reps.BestSource(topo, f, 100)
	if !ok || site != ranked[0].Site || cost != ranked[0].Cost {
		t.Errorf("BestSource %v@%v disagrees with RankedSources[0] %+v", site, cost, ranked[0])
	}

	if got := reps.RankedSources(topo, bundle.FileID(404), 100); len(got) != 0 {
		t.Errorf("unknown file ranked = %v", got)
	}
}

// TestRankedSourcesTieOrder pins the tie-break: equal-cost replicas keep
// registration order, which is what makes the fault path bit-compatible
// with the old BestSource scan.
func TestRankedSourcesTieOrder(t *testing.T) {
	topo, err := NewTopology("lbl", fastMSS("local"))
	if err != nil {
		t.Fatal(err)
	}
	var twins []SiteID
	for _, name := range []string{"a", "b"} {
		id, err := topo.AddSite(name, fastMSS(name))
		if err != nil {
			t.Fatal(err)
		}
		if err := topo.Connect(topo.Local(), id, Link{LatencySec: 1, BandwidthBps: 100}); err != nil {
			t.Fatal(err)
		}
		twins = append(twins, id)
	}
	reps := NewReplicas()
	f := bundle.FileID(1)
	reps.Add(f, twins[1]) // register b first
	reps.Add(f, twins[0])
	ranked := reps.RankedSources(topo, f, 100)
	if len(ranked) != 2 || ranked[0].Site != twins[1] {
		t.Errorf("tie-break lost registration order: %+v", ranked)
	}
}

func TestStageBundleCost(t *testing.T) {
	topo, cern, _ := buildTopo(t)
	reps := NewReplicas()
	sizeOf := func(bundle.FileID) bundle.Size { return 100 }
	reps.Add(1, topo.Local()) // cost 2
	reps.Add(2, cern)         // cost 10
	total, bottleneck, err := reps.StageBundleCost(topo, bundle.New(1, 2), sizeOf)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-12) > 1e-12 || math.Abs(bottleneck-10) > 1e-12 {
		t.Errorf("total=%v bottleneck=%v", total, bottleneck)
	}
	// Missing replica -> error.
	if _, _, err := reps.StageBundleCost(topo, bundle.New(1, 3), sizeOf); err == nil {
		t.Error("missing replica accepted")
	}
}
