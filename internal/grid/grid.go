// Package grid models the data-grid fabric around an SRM (§2): sites
// hosting mass storage systems, wide-area links between them, and a replica
// catalog mapping files to the sites that hold copies. The SRM uses it to
// cost transfers and pick the cheapest replica — the "strategic data
// replication" building block of §1.
package grid

import (
	"fmt"
	"math"
	"sort"

	"fbcache/internal/bundle"
	"fbcache/internal/mss"
)

// SiteID indexes a site within a Topology.
type SiteID int

// Site is one storage location in the grid.
type Site struct {
	Name string
	MSS  mss.Config
}

// Link describes the WAN path between two sites.
type Link struct {
	LatencySec   float64
	BandwidthBps float64
}

// Topology is the set of sites and links, with one site designated local
// (where the SRM's disk cache lives).
type Topology struct {
	sites []Site
	links map[SiteID]map[SiteID]Link
	local SiteID
}

// NewTopology creates a topology with the given local site.
func NewTopology(localName string, localMSS mss.Config) (*Topology, error) {
	if err := localMSS.Validate(); err != nil {
		return nil, err
	}
	t := &Topology{links: make(map[SiteID]map[SiteID]Link)}
	t.sites = append(t.sites, Site{Name: localName, MSS: localMSS})
	t.local = 0
	return t, nil
}

// AddSite registers a remote site and returns its ID.
func (t *Topology) AddSite(name string, cfg mss.Config) (SiteID, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	id := SiteID(len(t.sites))
	t.sites = append(t.sites, Site{Name: name, MSS: cfg})
	return id, nil
}

// Connect sets the link between two sites (bidirectional).
func (t *Topology) Connect(a, b SiteID, link Link) error {
	if !t.valid(a) || !t.valid(b) {
		return fmt.Errorf("grid: connect %d-%d: unknown site", a, b)
	}
	if a == b {
		return fmt.Errorf("grid: cannot connect site %d to itself", a)
	}
	if link.BandwidthBps <= 0 || link.LatencySec < 0 {
		return fmt.Errorf("grid: bad link %+v", link)
	}
	set := func(x, y SiteID) {
		if t.links[x] == nil {
			t.links[x] = make(map[SiteID]Link)
		}
		t.links[x][y] = link
	}
	set(a, b)
	set(b, a)
	return nil
}

func (t *Topology) valid(id SiteID) bool { return id >= 0 && int(id) < len(t.sites) }

// Local returns the local site ID.
func (t *Topology) Local() SiteID { return t.local }

// Site returns site metadata.
func (t *Topology) Site(id SiteID) (Site, error) {
	if !t.valid(id) {
		return Site{}, fmt.Errorf("grid: unknown site %d", id)
	}
	return t.sites[id], nil
}

// NumSites reports the number of sites.
func (t *Topology) NumSites() int { return len(t.sites) }

// TransferSeconds estimates the time to move size bytes from site `from` to
// the local cache: MSS read cost at the source plus WAN cost (zero for the
// local site). Returns +Inf if the source is unreachable.
func (t *Topology) TransferSeconds(from SiteID, size bundle.Size) float64 {
	if !t.valid(from) {
		return math.Inf(1)
	}
	cost := t.sites[from].MSS.TransferSeconds(size)
	if from == t.local {
		return cost
	}
	link, ok := t.links[from][t.local]
	if !ok {
		return math.Inf(1)
	}
	return cost + link.LatencySec + float64(size)/link.BandwidthBps
}

// Replicas is the replica catalog: which sites hold which files.
type Replicas struct {
	locs map[bundle.FileID][]SiteID
}

// NewReplicas returns an empty catalog.
func NewReplicas() *Replicas {
	return &Replicas{locs: make(map[bundle.FileID][]SiteID)}
}

// Add registers a replica of f at site s (idempotent).
func (r *Replicas) Add(f bundle.FileID, s SiteID) {
	for _, have := range r.locs[f] {
		if have == s {
			return
		}
	}
	r.locs[f] = append(r.locs[f], s)
}

// Remove deregisters the replica of f at site s, reporting whether it was
// present. A file whose last replica is removed leaves the catalog entirely.
// The replica re-planner uses this to retire cold local copies; callers are
// responsible for never dropping the only copy of a file they still need.
func (r *Replicas) Remove(f bundle.FileID, s SiteID) bool {
	locs := r.locs[f]
	for i, have := range locs {
		if have != s {
			continue
		}
		locs = append(locs[:i], locs[i+1:]...)
		if len(locs) == 0 {
			delete(r.locs, f)
		} else {
			r.locs[f] = locs
		}
		return true
	}
	return false
}

// Sites returns the sites holding f (nil if unknown). The slice is a copy;
// mutating it cannot corrupt the catalog.
func (r *Replicas) Sites(f bundle.FileID) []SiteID {
	locs := r.locs[f]
	if locs == nil {
		return nil
	}
	out := make([]SiteID, len(locs))
	copy(out, locs)
	return out
}

// Source is one ranked replica option: a site holding the file and its
// transfer cost to the local cache.
type Source struct {
	Site SiteID
	Cost float64
}

// RankedSources returns the reachable replica sites of f ordered
// cheapest-first — the failover walk order when a transfer keeps failing.
// Unreachable replicas (no link) are omitted; cost ties keep registration
// order, so the first element is exactly BestSource's pick.
func (r *Replicas) RankedSources(t *Topology, f bundle.FileID, size bundle.Size) []Source {
	var out []Source
	for _, s := range r.locs[f] {
		c := t.TransferSeconds(s, size)
		if math.IsInf(c, 1) {
			continue
		}
		out = append(out, Source{Site: s, Cost: c})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cost < out[j].Cost })
	return out
}

// BestSource picks the replica site with the lowest transfer cost to the
// local cache. ok is false when no replica is registered or reachable.
func (r *Replicas) BestSource(t *Topology, f bundle.FileID, size bundle.Size) (SiteID, float64, bool) {
	ranked := r.RankedSources(t, f, size)
	if len(ranked) == 0 {
		return 0, 0, false
	}
	return ranked[0].Site, ranked[0].Cost, true
}

// StageBundleCost sums the best-replica transfer costs of all files of b,
// and reports the bottleneck (max single-file) cost; files without replicas
// yield an error.
func (r *Replicas) StageBundleCost(t *Topology, b bundle.Bundle, sizeOf bundle.SizeFunc) (total, bottleneck float64, err error) {
	for _, f := range b {
		_, c, ok := r.BestSource(t, f, sizeOf(f))
		if !ok {
			return 0, 0, fmt.Errorf("grid: no reachable replica for file %d", f)
		}
		total += c
		if c > bottleneck {
			bottleneck = c
		}
	}
	return total, bottleneck, nil
}
