package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZipfProbabilities(t *testing.T) {
	z := NewZipf(rand.New(rand.NewSource(1)), 4, 1)
	// Harmonic weights 1, 1/2, 1/3, 1/4 -> total 25/12.
	h := 1.0 + 0.5 + 1.0/3 + 0.25
	want := []float64{1 / h, 0.5 / h, (1.0 / 3) / h, 0.25 / h}
	sum := 0.0
	for i, w := range want {
		if got := z.Prob(i); math.Abs(got-w) > 1e-12 {
			t.Errorf("Prob(%d) = %v, want %v", i, got, w)
		}
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("probabilities sum to %v", sum)
	}
	if z.Prob(-1) != 0 || z.Prob(4) != 0 {
		t.Error("out-of-range Prob != 0")
	}
}

func TestZipfExponentZeroIsUniform(t *testing.T) {
	z := NewZipf(rand.New(rand.NewSource(1)), 10, 0)
	for i := 0; i < 10; i++ {
		if got := z.Prob(i); math.Abs(got-0.1) > 1e-12 {
			t.Errorf("Prob(%d) = %v, want 0.1", i, got)
		}
	}
}

func TestZipfSamplingMatchesDistribution(t *testing.T) {
	const n, draws = 20, 200000
	z := NewZipf(rand.New(rand.NewSource(7)), n, 1)
	counts := make([]int64, n)
	for i := 0; i < draws; i++ {
		r := z.Next()
		if r < 0 || r >= n {
			t.Fatalf("rank out of range: %d", r)
		}
		counts[r]++
	}
	probs := make([]float64, n)
	for i := range probs {
		probs[i] = z.Prob(i)
	}
	// chi-square with 19 dof: 99.9th percentile ~ 43.8. Be generous.
	if chi2 := ChiSquare(counts, probs); chi2 > 60 {
		t.Errorf("chi-square = %v, distribution mismatch", chi2)
	}
	// Monotone popularity: rank 0 strictly most frequent.
	if counts[0] <= counts[n-1] {
		t.Errorf("rank 0 count %d <= rank %d count %d", counts[0], n-1, counts[n-1])
	}
}

func TestUniformSampling(t *testing.T) {
	const n, draws = 8, 80000
	u := NewUniform(rand.New(rand.NewSource(3)), n)
	counts := make([]int64, n)
	for i := 0; i < draws; i++ {
		counts[u.Next()]++
	}
	probs := make([]float64, n)
	for i := range probs {
		probs[i] = u.Prob(i)
	}
	if chi2 := ChiSquare(counts, probs); chi2 > 30 {
		t.Errorf("chi-square = %v", chi2)
	}
}

func TestZipfPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, fn := range map[string]func(){
		"n=0":         func() { NewZipf(rng, 0, 1) },
		"s<0":         func() { NewZipf(rng, 3, -1) },
		"nil rng":     func() { NewZipf(nil, 3, 1) },
		"uniform n=0": func() { NewUniform(rng, 0) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.N() != 0 {
		t.Error("zero-value Summary not zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Sample variance of this classic set is 32/7.
	if math.Abs(s.Var()-32.0/7) > 1e-12 {
		t.Errorf("Var = %v, want %v", s.Var(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

// Property: Summary mean always within [min, max] and matches naive mean.
func TestQuickSummaryMean(t *testing.T) {
	f := func(xs []float64) bool {
		var s Summary
		sum := 0.0
		ok := true
		n := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				continue
			}
			s.Add(x)
			sum += x
			n++
		}
		if n == 0 {
			return true
		}
		naive := sum / float64(n)
		if math.Abs(s.Mean()-naive) > 1e-6*(1+math.Abs(naive)) {
			ok = false
		}
		if s.Mean() < s.Min()-1e-9 || s.Mean() > s.Max()+1e-9 {
			ok = false
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.999, 10, 42} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d", h.Total())
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Errorf("OutOfRange = %d,%d want 1,2", under, over)
	}
	wantBins := []int64{2, 1, 1, 0, 1}
	for i, w := range wantBins {
		if got := h.Bin(i); got != w {
			t.Errorf("Bin(%d) = %d, want %d", i, got, w)
		}
	}
	if h.NumBins() != 5 {
		t.Errorf("NumBins = %d", h.NumBins())
	}
}

func TestQuantile(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-0.5, 1}, {2, 5},
	}
	for _, tt := range tests {
		if got := Quantile(data, tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) not NaN")
	}
	// Input must not be reordered.
	in := []float64{3, 1, 2}
	Quantile(in, 0.5)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Quantile mutated input")
	}
}

func BenchmarkZipfNext(b *testing.B) {
	z := NewZipf(rand.New(rand.NewSource(1)), 10000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = z.Next()
	}
}
