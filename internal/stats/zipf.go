// Package stats provides the stochastic building blocks for workload
// generation and the summary statistics used by the experiment harness:
// a finite Zipf sampler (the 1/i popularity law of §5.1), uniform samplers,
// histograms and running summaries. Everything is seedable and deterministic.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Zipf samples ranks {0, 1, ..., n-1} with P(i) proportional to 1/(i+1)^s.
//
// The paper assigns the i-th most popular request probability proportional to
// 1/i, i.e. exponent s = 1 — which the standard library's rand.Zipf cannot
// express (it requires s > 1). This implementation supports any s >= 0 via an
// explicit cumulative table and binary search; s = 0 degenerates to uniform.
type Zipf struct {
	cum []float64 // cumulative probabilities, cum[n-1] == 1
	rng *rand.Rand
}

// NewZipf builds a sampler over n ranks with exponent s using rng.
// It panics if n <= 0, s < 0, or rng is nil.
func NewZipf(rng *rand.Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic(fmt.Sprintf("stats: Zipf needs n > 0, got %d", n))
	}
	if s < 0 || math.IsNaN(s) {
		panic(fmt.Sprintf("stats: Zipf needs s >= 0, got %v", s))
	}
	if rng == nil {
		panic("stats: nil rng")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	cum[n-1] = 1 // guard against FP slack
	return &Zipf{cum: cum, rng: rng}
}

// N reports the number of ranks.
func (z *Zipf) N() int { return len(z.cum) }

// Next draws a rank in [0, N).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cum, u)
}

// Prob returns the probability of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cum) {
		return 0
	}
	if i == 0 {
		return z.cum[0]
	}
	return z.cum[i] - z.cum[i-1]
}

// Uniform samples {0, ..., n-1} equiprobably. It satisfies the same Sampler
// interface as Zipf so workloads can switch popularity laws transparently.
type Uniform struct {
	n   int
	rng *rand.Rand
}

// NewUniform builds a uniform sampler over n ranks.
func NewUniform(rng *rand.Rand, n int) *Uniform {
	if n <= 0 {
		panic(fmt.Sprintf("stats: Uniform needs n > 0, got %d", n))
	}
	if rng == nil {
		panic("stats: nil rng")
	}
	return &Uniform{n: n, rng: rng}
}

// N reports the number of ranks.
func (u *Uniform) N() int { return u.n }

// Next draws a rank in [0, N).
func (u *Uniform) Next() int { return u.rng.Intn(u.n) }

// Prob returns the probability of rank i.
func (u *Uniform) Prob(i int) float64 {
	if i < 0 || i >= u.n {
		return 0
	}
	return 1 / float64(u.n)
}

// Sampler draws ranks from a finite popularity distribution.
type Sampler interface {
	Next() int
	N() int
	Prob(i int) float64
}

var (
	_ Sampler = (*Zipf)(nil)
	_ Sampler = (*Uniform)(nil)
)
