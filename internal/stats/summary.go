package stats

import (
	"fmt"
	"math"
	"sort"

	"fbcache/internal/floats"
)

// Summary accumulates running statistics of a stream of float64 observations
// using Welford's algorithm, so mean and variance are numerically stable even
// over millions of samples.
type Summary struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N reports the number of observations.
func (s *Summary) N() int64 { return s.n }

// Mean reports the arithmetic mean, or 0 with no observations.
func (s *Summary) Mean() float64 { return s.mean }

// Var reports the sample variance (n-1 denominator), or 0 for n < 2.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev reports the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Var()) }

// Min reports the smallest observation, or 0 with no observations.
func (s *Summary) Min() float64 { return s.min }

// Max reports the largest observation, or 0 with no observations.
func (s *Summary) Max() float64 { return s.max }

func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		s.n, s.Mean(), s.Stddev(), s.min, s.max)
}

// Histogram counts observations into fixed-width bins over [lo, hi); values
// outside the range land in saturating edge bins. It is used by the harness
// to sanity-check generated workloads (file size and bundle size spreads).
type Histogram struct {
	lo, hi float64
	bins   []int64
	under  int64
	over   int64
	total  int64
}

// NewHistogram builds a histogram with nbins bins spanning [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: bad histogram [%v,%v) bins=%d", lo, hi, nbins))
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int64, nbins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.bins)))
		if i == len(h.bins) { // FP edge
			i--
		}
		h.bins[i]++
	}
}

// Total reports the number of observations, including out-of-range ones.
func (h *Histogram) Total() int64 { return h.total }

// Bin reports the count in bin i.
func (h *Histogram) Bin(i int) int64 { return h.bins[i] }

// NumBins reports the bin count.
func (h *Histogram) NumBins() int { return len(h.bins) }

// OutOfRange reports observations below lo and at or above hi.
func (h *Histogram) OutOfRange() (under, over int64) { return h.under, h.over }

// Quantile computes the q-quantile (0 <= q <= 1) of a data slice.
// The input is not modified. Linear interpolation between order statistics.
func Quantile(data []float64, q float64) float64 {
	if len(data) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s := make([]float64, len(data))
	copy(s, data)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	i := int(pos)
	if i >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := pos - float64(i)
	return s[i]*(1-frac) + s[i+1]*frac
}

// ChiSquare computes the chi-square statistic of observed counts against
// expected probabilities; used by tests to validate the Zipf sampler.
func ChiSquare(observed []int64, probs []float64) float64 {
	var n int64
	for _, o := range observed {
		n += o
	}
	var chi2 float64
	for i, o := range observed {
		e := probs[i] * float64(n)
		if floats.AlmostZero(e) {
			continue
		}
		d := float64(o) - e
		chi2 += d * d / e
	}
	return chi2
}
