package policy

import (
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/core"
)

func unit(bundle.FileID) bundle.Size { return 1 }

func TestAdapterPreservesResultFields(t *testing.T) {
	p := WrapOptFileBundle(core.New(10, unit, core.Options{}))
	res := p.Admit(bundle.New(1, 2, 3))
	if res.Hit {
		t.Error("cold admit hit")
	}
	if res.BytesRequested != 3 || res.BytesLoaded != 3 || res.FilesLoaded != 3 {
		t.Errorf("res = %+v", res)
	}
	if !res.Loaded.Equal(bundle.New(1, 2, 3)) {
		t.Errorf("Loaded = %v", res.Loaded)
	}
	res = p.Admit(bundle.New(1, 2, 3))
	if !res.Hit || len(res.Loaded) != 0 {
		t.Errorf("hit res = %+v", res)
	}
}

func TestAdapterUnserviceable(t *testing.T) {
	p := WrapOptFileBundle(core.New(2, unit, core.Options{}))
	res := p.Admit(bundle.New(1, 2, 3))
	if !res.Unserviceable {
		t.Errorf("res = %+v", res)
	}
}

func TestAdapterNameAndCache(t *testing.T) {
	p := WrapOptFileBundle(core.New(10, unit, core.Options{}))
	if p.Name() != "optfilebundle" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.Cache() == nil || p.Cache().Capacity() != 10 {
		t.Error("Cache not exposed")
	}
}

func TestFactoryIsolation(t *testing.T) {
	mk := OptFileBundleFactory(core.Options{})
	a := mk(10, unit)
	b := mk(10, unit)
	a.Admit(bundle.New(1))
	if b.Cache().Len() != 0 {
		t.Error("factory instances share cache state")
	}
}

func TestBypassPassesThroughOversizedFiles(t *testing.T) {
	sizes := map[bundle.FileID]bundle.Size{1: 1, 2: 1, 3: 8} // 3 is huge
	sizeOf := func(f bundle.FileID) bundle.Size { return sizes[f] }
	inner := WrapOptFileBundle(core.New(10, sizeOf, core.Options{}))
	p := NewBypass(inner, sizeOf, 0.5) // files > 5 bypass

	res := p.Admit(bundle.New(1, 2, 3))
	if res.Hit {
		t.Error("pass-through reported hit")
	}
	if res.BytesRequested != 10 || res.BytesLoaded != 10 {
		t.Errorf("res = %+v", res)
	}
	if p.Cache().Contains(3) {
		t.Error("oversized file was cached")
	}
	if !p.Cache().Supports(bundle.New(1, 2)) {
		t.Error("cacheable remainder not cached")
	}
	// Second request: cacheable part hits, oversized re-transfers.
	res = p.Admit(bundle.New(1, 2, 3))
	if res.Hit {
		t.Error("bundle with pass-through file reported hit")
	}
	if res.BytesLoaded != 8 {
		t.Errorf("reload = %d, want only the bypassed 8", res.BytesLoaded)
	}
	bytes, files := p.Bypassed()
	if bytes != 16 || files != 2 {
		t.Errorf("bypassed = %d/%d", bytes, files)
	}
	// Pure cacheable bundle still hits normally.
	if res := p.Admit(bundle.New(1, 2)); !res.Hit {
		t.Error("cacheable bundle missed")
	}
	if p.Name() != "optfilebundle+bypass" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestBypassProtectsWorkingSet(t *testing.T) {
	// Without bypass, a giant one-off file evicts the hot bundle; with
	// bypass the hot bundle survives.
	sizes := map[bundle.FileID]bundle.Size{1: 2, 2: 2, 9: 9}
	sizeOf := func(f bundle.FileID) bundle.Size { return sizes[f] }

	plain := WrapOptFileBundle(core.New(10, sizeOf, core.Options{}))
	for i := 0; i < 5; i++ {
		plain.Admit(bundle.New(1, 2))
	}
	plain.Admit(bundle.New(9)) // evicts the hot pair (needs 9 of 10)
	if res := plain.Admit(bundle.New(1, 2)); res.Hit {
		t.Skip("inner policy kept the pair anyway; scenario needs tuning")
	}

	guarded := NewBypass(WrapOptFileBundle(core.New(10, sizeOf, core.Options{})), sizeOf, 0.5)
	for i := 0; i < 5; i++ {
		guarded.Admit(bundle.New(1, 2))
	}
	guarded.Admit(bundle.New(9)) // passes through
	if res := guarded.Admit(bundle.New(1, 2)); !res.Hit {
		t.Error("bypass failed to protect the working set")
	}
}

func TestBypassPanics(t *testing.T) {
	sizeOf := func(bundle.FileID) bundle.Size { return 1 }
	inner := WrapOptFileBundle(core.New(10, sizeOf, core.Options{}))
	for name, fn := range map[string]func(){
		"nil inner": func() { NewBypass(nil, sizeOf, 0.5) },
		"bad frac":  func() { NewBypass(inner, sizeOf, 0) },
		"frac >1":   func() { NewBypass(inner, sizeOf, 1.5) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		})
	}
}
