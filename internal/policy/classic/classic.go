// Package classic implements the traditional popularity/recency replacement
// policies the paper's introduction (§1, §1.2) argues are insensitive to
// inter-file dependencies: LRU, MRU, LFU, FIFO, GDSF and Random — each
// adapted to bundle admissions (whole bundles load, files of the current
// request are never victims). They are the comparison floor for the
// baselines table in EXPERIMENTS.md.
//
// They share one engine: a scorer ranks resident files and the lowest score
// outside the incoming bundle is evicted until the missing files fit.
package classic

import (
	"math/rand"

	"fbcache/internal/bundle"
	"fbcache/internal/cache"
	"fbcache/internal/floats"
	"fbcache/internal/policy"
)

// scorer ranks files for eviction: lower score evicts first.
type scorer interface {
	name() string
	// onTouch is called for every file of an admitted bundle (hit or load).
	onTouch(f bundle.FileID, now int64)
	// onInsert is called when a file becomes resident.
	onInsert(f bundle.FileID, now int64)
	// onEvict is called when a file leaves.
	onEvict(f bundle.FileID)
	// score returns the eviction priority of a resident file.
	score(f bundle.FileID) float64
}

// Base is the shared bundle-admission engine parameterized by a scorer.
type Base struct {
	cache  *cache.Cache
	sizeOf bundle.SizeFunc
	sc     scorer
	clock  int64
}

func newBase(capacity bundle.Size, sizeOf bundle.SizeFunc, sc scorer) *Base {
	if sizeOf == nil {
		panic("classic: nil SizeFunc")
	}
	return &Base{cache: cache.New(capacity), sizeOf: sizeOf, sc: sc}
}

// Name implements policy.Policy.
func (p *Base) Name() string { return p.sc.name() }

// Cache implements policy.Policy.
func (p *Base) Cache() *cache.Cache { return p.cache }

// Admit implements policy.Policy.
func (p *Base) Admit(b bundle.Bundle) policy.Result {
	p.clock++
	res := policy.Result{BytesRequested: b.TotalSize(p.sizeOf)}
	if res.BytesRequested > p.cache.Capacity() {
		res.Unserviceable = true
		return res
	}

	if p.cache.Supports(b) {
		res.Hit = true
		for _, f := range b {
			p.sc.onTouch(f, p.clock)
		}
		return res
	}

	missing := p.cache.Missing(b)
	needed := missing.TotalSize(p.sizeOf)

	for p.cache.Free() < needed {
		victim, ok := p.victim(b)
		if !ok {
			break // only pinned/demanded files remain
		}
		if err := p.cache.Evict(victim); err != nil {
			break
		}
		p.sc.onEvict(victim)
		res.FilesEvicted++
		res.Evicted = append(res.Evicted, victim)
	}

	for _, f := range missing {
		if err := p.cache.Insert(f, p.sizeOf(f)); err != nil {
			continue
		}
		p.sc.onInsert(f, p.clock)
		res.FilesLoaded++
		res.BytesLoaded += p.sizeOf(f)
		res.Loaded = append(res.Loaded, f)
	}
	for _, f := range b {
		if p.cache.Contains(f) {
			p.sc.onTouch(f, p.clock)
		}
	}
	res.Evicted = bundle.FromSlice(res.Evicted)
	return res
}

// victim picks the lowest-scoring resident file outside b; ties break toward
// the smaller FileID for determinism.
func (p *Base) victim(b bundle.Bundle) (bundle.FileID, bool) {
	resident := p.cache.Resident()
	var best bundle.FileID
	bestScore := 0.0
	found := false
	for _, f := range resident {
		if b.Contains(f) || p.cache.Pinned(f) {
			continue
		}
		s := p.sc.score(f)
		if !found || floats.Less(s, bestScore) || (floats.AlmostEqual(s, bestScore) && f < best) {
			best, bestScore, found = f, s, true
		}
	}
	return best, found
}

var _ policy.Policy = (*Base)(nil)

// ---- LRU ----

type lruScorer struct{ last map[bundle.FileID]int64 }

func (s *lruScorer) name() string                        { return "lru" }
func (s *lruScorer) onTouch(f bundle.FileID, now int64)  { s.last[f] = now }
func (s *lruScorer) onInsert(f bundle.FileID, now int64) { s.last[f] = now }
func (s *lruScorer) onEvict(f bundle.FileID)             { delete(s.last, f) }
func (s *lruScorer) score(f bundle.FileID) float64       { return float64(s.last[f]) }

// NewLRU returns a least-recently-used policy.
func NewLRU(capacity bundle.Size, sizeOf bundle.SizeFunc) *Base {
	return newBase(capacity, sizeOf, &lruScorer{last: make(map[bundle.FileID]int64)})
}

// ---- MRU ----

type mruScorer struct{ lruScorer }

func (s *mruScorer) name() string                  { return "mru" }
func (s *mruScorer) score(f bundle.FileID) float64 { return -float64(s.last[f]) }

// NewMRU returns a most-recently-used policy (a pathological baseline that
// shows bundle workloads punish recency inversion).
func NewMRU(capacity bundle.Size, sizeOf bundle.SizeFunc) *Base {
	return newBase(capacity, sizeOf, &mruScorer{lruScorer{last: make(map[bundle.FileID]int64)}})
}

// ---- LFU ----

type lfuScorer struct {
	count map[bundle.FileID]int64
	last  map[bundle.FileID]int64
}

func (s *lfuScorer) name() string { return "lfu" }
func (s *lfuScorer) onTouch(f bundle.FileID, now int64) {
	s.count[f]++
	s.last[f] = now
}
func (s *lfuScorer) onInsert(f bundle.FileID, now int64) {
	// Frequency persists across evictions? Classic in-cache LFU forgets; we
	// forget on evict (see onEvict), so insert starts at zero and onTouch
	// immediately bumps it.
	s.last[f] = now
}
func (s *lfuScorer) onEvict(f bundle.FileID) {
	delete(s.count, f)
	delete(s.last, f)
}
func (s *lfuScorer) score(f bundle.FileID) float64 {
	// Primary: frequency. Secondary: recency (scaled far below one count).
	return float64(s.count[f]) + float64(s.last[f])*1e-12
}

// NewLFU returns a least-frequently-used policy with LRU tie-breaking.
func NewLFU(capacity bundle.Size, sizeOf bundle.SizeFunc) *Base {
	return newBase(capacity, sizeOf, &lfuScorer{
		count: make(map[bundle.FileID]int64),
		last:  make(map[bundle.FileID]int64),
	})
}

// ---- FIFO ----

type fifoScorer struct{ in map[bundle.FileID]int64 }

func (s *fifoScorer) name() string                        { return "fifo" }
func (s *fifoScorer) onTouch(bundle.FileID, int64)        {}
func (s *fifoScorer) onInsert(f bundle.FileID, now int64) { s.in[f] = now }
func (s *fifoScorer) onEvict(f bundle.FileID)             { delete(s.in, f) }
func (s *fifoScorer) score(f bundle.FileID) float64       { return float64(s.in[f]) }

// NewFIFO returns a first-in-first-out policy.
func NewFIFO(capacity bundle.Size, sizeOf bundle.SizeFunc) *Base {
	return newBase(capacity, sizeOf, &fifoScorer{in: make(map[bundle.FileID]int64)})
}

// ---- GDSF ----

type gdsfScorer struct {
	sizeOf bundle.SizeFunc
	pri    map[bundle.FileID]float64
	freq   map[bundle.FileID]int64
	l      float64 // inflation level: priority of the last eviction
}

func (s *gdsfScorer) name() string { return "gdsf" }
func (s *gdsfScorer) recompute(f bundle.FileID) {
	size := float64(s.sizeOf(f))
	if size <= 0 {
		size = 1
	}
	// Greedy-Dual-Size-Frequency with cost = size: H = L + freq*cost/size
	// = L + freq.
	s.pri[f] = s.l + float64(s.freq[f])*float64(s.sizeOf(f))/size
}
func (s *gdsfScorer) onTouch(f bundle.FileID, _ int64) {
	s.freq[f]++
	s.recompute(f)
}
func (s *gdsfScorer) onInsert(f bundle.FileID, _ int64) {
	s.recompute(f)
}
func (s *gdsfScorer) onEvict(f bundle.FileID) {
	if p := s.pri[f]; p > s.l {
		s.l = p
	}
	delete(s.pri, f)
	delete(s.freq, f)
}
func (s *gdsfScorer) score(f bundle.FileID) float64 { return s.pri[f] }

// NewGDSF returns a Greedy-Dual-Size-Frequency policy (Cao & Irani's
// cost-aware family, the web-caching state of the art cited as [1]).
func NewGDSF(capacity bundle.Size, sizeOf bundle.SizeFunc) *Base {
	return newBase(capacity, sizeOf, &gdsfScorer{
		sizeOf: sizeOf,
		pri:    make(map[bundle.FileID]float64),
		freq:   make(map[bundle.FileID]int64),
	})
}

// ---- Random ----

type randomScorer struct {
	rng *rand.Rand
	pri map[bundle.FileID]float64
}

func (s *randomScorer) name() string                 { return "random" }
func (s *randomScorer) onTouch(bundle.FileID, int64) {}
func (s *randomScorer) onInsert(f bundle.FileID, _ int64) {
	s.pri[f] = s.rng.Float64()
}
func (s *randomScorer) onEvict(f bundle.FileID)       { delete(s.pri, f) }
func (s *randomScorer) score(f bundle.FileID) float64 { return s.pri[f] }

// NewRandom returns a random-replacement policy seeded deterministically.
func NewRandom(capacity bundle.Size, sizeOf bundle.SizeFunc, seed int64) *Base {
	return newBase(capacity, sizeOf, &randomScorer{
		rng: rand.New(rand.NewSource(seed)),
		pri: make(map[bundle.FileID]float64),
	})
}

// Factories for the experiment harness.

// LRUFactory returns a policy.Factory for LRU.
func LRUFactory() policy.Factory {
	return func(c bundle.Size, s bundle.SizeFunc) policy.Policy { return NewLRU(c, s) }
}

// MRUFactory returns a policy.Factory for MRU.
func MRUFactory() policy.Factory {
	return func(c bundle.Size, s bundle.SizeFunc) policy.Policy { return NewMRU(c, s) }
}

// LFUFactory returns a policy.Factory for LFU.
func LFUFactory() policy.Factory {
	return func(c bundle.Size, s bundle.SizeFunc) policy.Policy { return NewLFU(c, s) }
}

// FIFOFactory returns a policy.Factory for FIFO.
func FIFOFactory() policy.Factory {
	return func(c bundle.Size, s bundle.SizeFunc) policy.Policy { return NewFIFO(c, s) }
}

// GDSFFactory returns a policy.Factory for GDSF.
func GDSFFactory() policy.Factory {
	return func(c bundle.Size, s bundle.SizeFunc) policy.Policy { return NewGDSF(c, s) }
}

// RandomFactory returns a policy.Factory for Random with the given seed.
func RandomFactory(seed int64) policy.Factory {
	return func(c bundle.Size, s bundle.SizeFunc) policy.Policy { return NewRandom(c, s, seed) }
}
