package classic

import (
	"math/rand"
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/policy"
)

func unit(bundle.FileID) bundle.Size { return 1 }

func TestLRUEvictsOldest(t *testing.T) {
	p := NewLRU(3, unit)
	p.Admit(bundle.New(1))
	p.Admit(bundle.New(2))
	p.Admit(bundle.New(3))
	p.Admit(bundle.New(1)) // refresh 1; 2 is now LRU
	res := p.Admit(bundle.New(4))
	if res.FilesEvicted != 1 {
		t.Fatalf("evicted %d", res.FilesEvicted)
	}
	if p.Cache().Contains(2) {
		t.Errorf("LRU kept 2; resident = %v", p.Cache().Resident())
	}
	if !p.Cache().Contains(1) || !p.Cache().Contains(3) || !p.Cache().Contains(4) {
		t.Errorf("resident = %v", p.Cache().Resident())
	}
}

func TestMRUEvictsNewest(t *testing.T) {
	p := NewMRU(2, unit)
	p.Admit(bundle.New(1))
	p.Admit(bundle.New(2))
	p.Admit(bundle.New(3))
	// MRU evicts the most recently used outside the request: 2.
	if p.Cache().Contains(2) {
		t.Errorf("MRU kept 2; resident = %v", p.Cache().Resident())
	}
	if !p.Cache().Contains(1) {
		t.Errorf("MRU evicted 1; resident = %v", p.Cache().Resident())
	}
}

func TestLFUEvictsLeastFrequent(t *testing.T) {
	p := NewLFU(3, unit)
	p.Admit(bundle.New(1, 2, 3))
	for i := 0; i < 5; i++ {
		p.Admit(bundle.New(1))
		p.Admit(bundle.New(2))
	}
	p.Admit(bundle.New(4))
	if p.Cache().Contains(3) {
		t.Errorf("LFU kept cold file 3; resident = %v", p.Cache().Resident())
	}
	if !p.Cache().Contains(1) || !p.Cache().Contains(2) {
		t.Errorf("LFU evicted hot file; resident = %v", p.Cache().Resident())
	}
}

func TestFIFOIgnoresTouches(t *testing.T) {
	p := NewFIFO(3, unit)
	p.Admit(bundle.New(1))
	p.Admit(bundle.New(2))
	p.Admit(bundle.New(3))
	for i := 0; i < 10; i++ {
		p.Admit(bundle.New(1)) // touches must not save 1 under FIFO
	}
	p.Admit(bundle.New(4))
	if p.Cache().Contains(1) {
		t.Errorf("FIFO kept first-in file; resident = %v", p.Cache().Resident())
	}
}

func TestGDSFFavorsFrequencyAndAges(t *testing.T) {
	p := NewGDSF(3, unit)
	p.Admit(bundle.New(1, 2, 3))
	p.Admit(bundle.New(1))
	p.Admit(bundle.New(1)) // freq(1)=3, freq(2)=freq(3)=1
	p.Admit(bundle.New(4))
	if p.Cache().Contains(2) && p.Cache().Contains(3) {
		t.Errorf("GDSF evicted nothing cold; resident = %v", p.Cache().Resident())
	}
	if !p.Cache().Contains(1) {
		t.Errorf("GDSF evicted hottest file; resident = %v", p.Cache().Resident())
	}
	// Aging: after evictions, newly inserted cold files should not be
	// immediately re-victimized ahead of long-resident hot files forever;
	// exercise a longer mix for invariants.
	rng := rand.New(rand.NewSource(5))
	for step := 0; step < 500; step++ {
		ids := []bundle.FileID{bundle.FileID(rng.Intn(10))}
		p.Admit(bundle.New(ids...))
		if err := p.Cache().CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRandomIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) bundle.Bundle {
		p := NewRandom(3, unit, seed)
		for i := bundle.FileID(1); i <= 8; i++ {
			p.Admit(bundle.New(i))
		}
		return p.Cache().Resident()
	}
	a, b := run(7), run(7)
	if !a.Equal(b) {
		t.Errorf("same seed, different residents: %v vs %v", a, b)
	}
}

func TestBundleFilesNeverVictims(t *testing.T) {
	for name, mk := range map[string]func() *Base{
		"lru":    func() *Base { return NewLRU(4, unit) },
		"mru":    func() *Base { return NewMRU(4, unit) },
		"lfu":    func() *Base { return NewLFU(4, unit) },
		"fifo":   func() *Base { return NewFIFO(4, unit) },
		"gdsf":   func() *Base { return NewGDSF(4, unit) },
		"random": func() *Base { return NewRandom(4, unit, 1) },
	} {
		p := mk()
		p.Admit(bundle.New(1, 2, 3, 4))
		// Admit a bundle replacing two files; its own files must survive.
		res := p.Admit(bundle.New(1, 2, 5, 6))
		if res.Unserviceable {
			t.Errorf("%s: unserviceable", name)
			continue
		}
		if !p.Cache().Supports(bundle.New(1, 2, 5, 6)) {
			t.Errorf("%s: request files evicted; resident = %v", name, p.Cache().Resident())
		}
	}
}

func TestAllPoliciesRandomizedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	sizes := make([]bundle.Size, 30)
	for i := range sizes {
		sizes[i] = bundle.Size(1 + rng.Intn(7))
	}
	sizeOf := func(f bundle.FileID) bundle.Size { return sizes[f] }
	factories := []policy.Factory{
		LRUFactory(), MRUFactory(), LFUFactory(), FIFOFactory(),
		GDSFFactory(), RandomFactory(99),
	}
	for _, mk := range factories {
		p := mk(40, sizeOf)
		for step := 0; step < 600; step++ {
			n := 1 + rng.Intn(4)
			ids := make([]bundle.FileID, n)
			for i := range ids {
				ids[i] = bundle.FileID(rng.Intn(30))
			}
			b := bundle.New(ids...)
			res := p.Admit(b)
			if !res.Unserviceable && !p.Cache().Supports(b) {
				t.Fatalf("%s step %d: serviced bundle not resident", p.Name(), step)
			}
			if err := p.Cache().CheckInvariants(); err != nil {
				t.Fatalf("%s step %d: %v", p.Name(), step, err)
			}
		}
	}
}

func TestNames(t *testing.T) {
	want := map[string]policy.Policy{
		"lru":    NewLRU(1, unit),
		"mru":    NewMRU(1, unit),
		"lfu":    NewLFU(1, unit),
		"fifo":   NewFIFO(1, unit),
		"gdsf":   NewGDSF(1, unit),
		"random": NewRandom(1, unit, 0),
	}
	for name, p := range want {
		if p.Name() != name {
			t.Errorf("Name = %q, want %q", p.Name(), name)
		}
	}
}

func BenchmarkLRUAdmit(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	p := NewLRU(200, unit)
	bundles := make([]bundle.Bundle, 128)
	for i := range bundles {
		ids := make([]bundle.FileID, 1+rng.Intn(5))
		for j := range ids {
			ids[j] = bundle.FileID(rng.Intn(500))
		}
		bundles[i] = bundle.New(ids...)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Admit(bundles[i%len(bundles)])
	}
}
