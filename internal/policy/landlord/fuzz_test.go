package landlord_test

// Invariant fuzzing of the bundle-adapted Landlord policy (Algorithm 3):
// arbitrary admission sequences must keep the underlying cache structurally
// consistent and every resident credit non-negative (up to round-off) — the
// property Landlord's competitive-ratio potential argument rests on. Run
// with -tags fbinvariant to additionally arm the in-line invariant.Check
// probes on the decay loop and cache mutations.

import (
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/floats"
	"fbcache/internal/policy/landlord"
)

// FuzzLandlordInvariants decodes a catalog plus a request sequence from the
// fuzz input and replays it against a fresh Landlord instance.
func FuzzLandlordInvariants(f *testing.F) {
	f.Add([]byte("0123456789abcdefghijklmnop"))
	f.Add([]byte("\x20\x05\x03\x00\x02\x04\x01\x02\x00\x01\x03\x02\x00\x04"))
	f.Add([]byte("landlord-credit-decay-seed-00000"))
	f.Fuzz(func(t *testing.T, data []byte) {
		pos := 0
		next := func() (byte, bool) {
			if pos >= len(data) {
				return 0, false
			}
			b := data[pos]
			pos++
			return b, true
		}

		hdr, ok := next()
		if !ok {
			t.Skip("input too short to decode")
		}
		capacity := bundle.Size(4 + hdr%60)

		nb, ok := next()
		if !ok {
			t.Skip("input too short to decode")
		}
		nFiles := 1 + int(nb%12)
		sizes := make([]bundle.Size, nFiles)
		for i := range sizes {
			v, okv := next()
			if !okv {
				t.Skip("input too short to decode")
			}
			// Zero-size files are legal and exercise the resetCredit guard.
			sizes[i] = bundle.Size(v % 8)
		}
		sizeOf := func(f bundle.FileID) bundle.Size { return sizes[f] }

		l := landlord.New(capacity, sizeOf)
		for step := 0; ; step++ {
			kb, okk := next()
			if !okk {
				break // request stream exhausted; sequence complete
			}
			k := 1 + int(kb%4)
			ids := make([]bundle.FileID, 0, k)
			for j := 0; j < k; j++ {
				id, oki := next()
				if !oki {
					break
				}
				ids = append(ids, bundle.FileID(int(id)%nFiles))
			}
			if len(ids) == 0 {
				break
			}
			b := bundle.New(ids...)

			res := l.Admit(b)

			if err := l.Cache().CheckInvariants(); err != nil {
				t.Fatalf("step %d: Admit(%v) broke cache invariants: %v", step, b, err)
			}
			if res.BytesLoaded > res.BytesRequested {
				t.Fatalf("step %d: Admit(%v) loaded %d bytes for a %d-byte request",
					step, b, res.BytesLoaded, res.BytesRequested)
			}
			for _, f := range l.Cache().Resident() {
				if c := l.Credit(f); c < 0 && !floats.AlmostZero(c) {
					t.Fatalf("step %d: resident file %d has negative credit %g", step, f, c)
				}
			}
		}
	})
}
