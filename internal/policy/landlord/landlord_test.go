package landlord

import (
	"math/rand"
	"testing"

	"fbcache/internal/bundle"
)

func unit(bundle.FileID) bundle.Size { return 1 }

func TestColdMissAndHit(t *testing.T) {
	l := New(10, unit)
	res := l.Admit(bundle.New(1, 2, 3))
	if res.Hit || res.BytesLoaded != 3 {
		t.Errorf("cold: %+v", res)
	}
	res = l.Admit(bundle.New(1, 2, 3))
	if !res.Hit || res.BytesLoaded != 0 {
		t.Errorf("hit: %+v", res)
	}
}

func TestCreditsInUnitRange(t *testing.T) {
	// With cost = size, credits are exactly 1 on insert/refresh.
	l := New(10, unit)
	l.Admit(bundle.New(1, 2))
	for _, f := range []bundle.FileID{1, 2} {
		if c := l.Credit(f); c != 1 {
			t.Errorf("Credit(%d) = %v, want 1", f, c)
		}
	}
	if c := l.Credit(9); c != 0 {
		t.Errorf("Credit(absent) = %v", c)
	}
}

func TestDecayEviction(t *testing.T) {
	// Capacity 3 unit files: {1,2,3} resident, admit {4,5}: two victims decay
	// out; the refreshed file survives.
	l := New(3, unit)
	l.Admit(bundle.New(1, 2, 3))
	l.Admit(bundle.New(3)) // refresh 3's credit
	res := l.Admit(bundle.New(4, 5))
	// All three outside files share credit 1 (3 was refreshed back to 1), so
	// one decay round zeroes them all and Landlord evicts every zero-credit
	// file — at least the two needed, possibly all three.
	if res.FilesEvicted < 2 {
		t.Errorf("evicted %d, want >= 2", res.FilesEvicted)
	}
	if !l.Cache().Supports(bundle.New(4, 5)) {
		t.Error("request not serviced")
	}
	// All credits were equal (1), so all of {1,2,3} reached zero together;
	// eviction removes zero-credit files — both 1 and 2 go; 3 was also at
	// zero but was re-credited... actually 3's refresh set it to 1 again and
	// the decay subtracts the same min from every outside file, so 3 ends at
	// 0 too and may be evicted. The guarantee is only that 4,5 fit.
	if err := l.Cache().CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRecentlyRefreshedSurvives(t *testing.T) {
	// Give file 3 a bigger credit via a non-uniform cost function so decay
	// evicts 1 and 2 first.
	cost := func(f bundle.FileID) float64 {
		if f == 3 {
			return 5
		}
		return 1
	}
	l := NewWithCost(3, unit, cost)
	l.Admit(bundle.New(1, 2, 3))
	res := l.Admit(bundle.New(4, 5))
	if res.FilesEvicted != 2 {
		t.Errorf("evicted %d, want 2", res.FilesEvicted)
	}
	if !l.Cache().Contains(3) {
		t.Errorf("high-cost file evicted; resident = %v", l.Cache().Resident())
	}
}

func TestRequestFilesNeverEvicted(t *testing.T) {
	l := New(3, unit)
	l.Admit(bundle.New(1, 2))
	// Admit {1,2,3}: needs 1 more; victims must come from outside the bundle,
	// but there are none — free space (1) suffices anyway.
	res := l.Admit(bundle.New(1, 2, 3))
	if res.FilesEvicted != 0 {
		t.Errorf("evicted %d from own bundle", res.FilesEvicted)
	}
	if !l.Cache().Supports(bundle.New(1, 2, 3)) {
		t.Error("bundle not resident")
	}
}

func TestUnserviceable(t *testing.T) {
	l := New(2, unit)
	res := l.Admit(bundle.New(1, 2, 3))
	if !res.Unserviceable || l.Cache().Len() != 0 {
		t.Errorf("res=%+v len=%d", res, l.Cache().Len())
	}
}

func TestZeroSizeFileCredit(t *testing.T) {
	sizeOf := func(f bundle.FileID) bundle.Size {
		if f == 1 {
			return 0
		}
		return 1
	}
	l := New(2, sizeOf)
	l.Admit(bundle.New(1, 2))
	if l.Credit(1) != 0 { // cost = size = 0 -> credit 0
		t.Errorf("Credit(zero-size) = %v", l.Credit(1))
	}
	if err := l.Cache().CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestFactoryProducesFreshInstances(t *testing.T) {
	f := Factory()
	a := f(10, unit)
	b := f(10, unit)
	a.Admit(bundle.New(1))
	if b.Cache().Len() != 0 {
		t.Error("factory instances share state")
	}
	if a.Name() != "landlord" {
		t.Errorf("Name = %q", a.Name())
	}
}

func TestNilSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(1, nil)
}

func TestRandomizedInvariantsAndService(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	sizes := make([]bundle.Size, 40)
	for i := range sizes {
		sizes[i] = bundle.Size(1 + rng.Intn(9))
	}
	sizeOf := func(f bundle.FileID) bundle.Size { return sizes[f] }
	l := New(50, sizeOf)
	for step := 0; step < 1000; step++ {
		n := 1 + rng.Intn(4)
		ids := make([]bundle.FileID, n)
		for i := range ids {
			ids[i] = bundle.FileID(rng.Intn(40))
		}
		b := bundle.New(ids...)
		res := l.Admit(b)
		if !res.Unserviceable && !l.Cache().Supports(b) {
			t.Fatalf("step %d: serviced bundle not resident", step)
		}
		if res.Hit && res.BytesLoaded != 0 {
			t.Fatalf("step %d: hit with traffic", step)
		}
		if err := l.Cache().CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		// Credits bounded by max cost/size = max size / size... with cost =
		// size the reset value is exactly 1 and decay only lowers it.
		for _, f := range l.Cache().Resident() {
			if c := l.Credit(f); c < -1e-9 || c > 1+1e-9 {
				t.Fatalf("step %d: credit(%d) = %v outside [0,1]", step, f, c)
			}
		}
	}
}

func BenchmarkLandlordAdmit(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	l := New(200, unit)
	bundles := make([]bundle.Bundle, 128)
	for i := range bundles {
		ids := make([]bundle.FileID, 1+rng.Intn(5))
		for j := range ids {
			ids[j] = bundle.FileID(rng.Intn(500))
		}
		bundles[i] = bundle.New(ids...)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Admit(bundles[i%len(bundles)])
	}
}
