// Package landlord implements the bundle-adapted Landlord cache replacement
// algorithm (the paper's Algorithm 3, after Young [16] and Cao/Irani [1]),
// the strongest single-file baseline the paper compares OptFileBundle
// against.
//
// Every resident file carries a credit. When space is needed, the minimum
// credit among resident files not demanded by the incoming request is
// subtracted from all of them and zero-credit files are evicted; files of
// the admitted request have their credit reset to cost(f)/size(f). With the
// default cost(f) = size(f) — appropriate when the optimization target is
// the byte miss ratio — credits live in [0, 1], matching Algorithm 3.
package landlord

import (
	"fbcache/internal/bundle"
	"fbcache/internal/cache"
	"fbcache/internal/floats"
	"fbcache/internal/invariant"
	"fbcache/internal/obs"
	"fbcache/internal/policy"
)

// CostFunc assigns a retrieval cost to a file. The default is its size.
type CostFunc func(bundle.FileID) float64

// Landlord is a bundle-adapted Landlord policy instance.
type Landlord struct {
	cache   *cache.Cache
	sizeOf  bundle.SizeFunc
	cost    CostFunc
	credits map[bundle.FileID]float64

	// admissions counts Admit calls; it stamps trace events (the policy has
	// no clock). tracer, when non-nil, receives an AdmitEvent per Admit and a
	// CreditDecayEvent per decay round of Algorithm 3 Step 3.
	admissions int64
	tracer     obs.Tracer

	// evictScratch backs evictableOutside's result; Step 3 rebuilds it every
	// decay-and-evict round, so reusing one slice keeps the eviction loop
	// allocation-free in steady state. missScratch, loadedScratch and
	// evictedScratch back the per-admission missing list and the returned
	// Result's Loaded/Evicted (which alias them — see policy.Result).
	evictScratch   bundle.Bundle
	missScratch    bundle.Bundle
	loadedScratch  []bundle.FileID
	evictedScratch []bundle.FileID
}

// New returns a Landlord policy with cost(f) = size(f).
func New(capacity bundle.Size, sizeOf bundle.SizeFunc) *Landlord {
	return NewWithCost(capacity, sizeOf, nil)
}

// NewWithCost returns a Landlord policy with an explicit cost function.
// A nil cost defaults to cost(f) = size(f).
func NewWithCost(capacity bundle.Size, sizeOf bundle.SizeFunc, cost CostFunc) *Landlord {
	if sizeOf == nil {
		panic("landlord: nil SizeFunc")
	}
	if cost == nil {
		cost = func(f bundle.FileID) float64 { return float64(sizeOf(f)) }
	}
	return &Landlord{
		cache:   cache.New(capacity),
		sizeOf:  sizeOf,
		cost:    cost,
		credits: make(map[bundle.FileID]float64),
	}
}

// Factory returns a policy.Factory for Landlord with default cost.
func Factory() policy.Factory {
	return func(capacity bundle.Size, sizeOf bundle.SizeFunc) policy.Policy {
		return New(capacity, sizeOf)
	}
}

// Name implements policy.Policy.
func (l *Landlord) Name() string { return "landlord" }

// Cache implements policy.Policy.
func (l *Landlord) Cache() *cache.Cache { return l.cache }

// SetTracer installs t on the policy and its cache (nil disables tracing).
// The policy emits Admit and CreditDecay events; the cache emits per-file
// Load and Evict events.
func (l *Landlord) SetTracer(t obs.Tracer) {
	l.tracer = t
	l.cache.SetTracer(t)
}

// emitAdmit publishes one AdmitEvent for res, stamped with the admission
// ordinal.
func (l *Landlord) emitAdmit(res policy.Result, files int) {
	l.tracer.Admit(obs.AdmitEvent{
		At:             float64(l.admissions),
		Policy:         l.Name(),
		Files:          files,
		BytesRequested: int64(res.BytesRequested),
		BytesLoaded:    int64(res.BytesLoaded),
		FilesLoaded:    res.FilesLoaded,
		FilesEvicted:   res.FilesEvicted,
		Hit:            res.Hit,
		Unserviceable:  res.Unserviceable,
	})
}

// Credit reports the current credit of f (0 if not resident). It sits on
// the min-credit scan of every decay round, so it carries perf contracts:
// it must inline and must not force its receiver onto the heap.
//
//fbvet:inline
//fbvet:noescape
func (l *Landlord) Credit(f bundle.FileID) float64 { return l.credits[f] }

// resetCredit gives f its full credit: cost(f)/size(f); zero-size files get
// the raw cost so they are not immortal at 0 nor divide by zero.
func (l *Landlord) resetCredit(f bundle.FileID) {
	s := l.sizeOf(f)
	if s > 0 {
		l.credits[f] = l.cost(f) / float64(s)
		return
	}
	l.credits[f] = l.cost(f)
}

// Admit implements Algorithm 3 for one request.
func (l *Landlord) Admit(b bundle.Bundle) policy.Result {
	l.admissions++
	res := policy.Result{BytesRequested: b.TotalSize(l.sizeOf)}
	if res.BytesRequested > l.cache.Capacity() {
		res.Unserviceable = true
		if l.tracer != nil {
			l.emitAdmit(res, len(b))
		}
		return res
	}

	if l.cache.Supports(b) {
		res.Hit = true
		// Step 4's refresh: a reference renews the bundle's credits.
		for _, f := range b {
			l.resetCredit(f)
		}
		if l.tracer != nil {
			l.emitAdmit(res, len(b))
		}
		return res
	}

	l.missScratch = l.cache.MissingAppend(l.missScratch[:0], b)
	missing := l.missScratch
	needed := missing.TotalSize(l.sizeOf)
	l.loadedScratch = l.loadedScratch[:0]
	l.evictedScratch = l.evictedScratch[:0]

	// Step 3: decay-and-evict until the missing files fit.
	for l.cache.Free() < needed {
		evictable := l.evictableOutside(b)
		if len(evictable) == 0 {
			// Everything else is pinned; nothing more can be done here. The
			// SRM layer prevents this by serializing pinned admissions.
			break
		}
		min := l.credits[evictable[0]]
		for _, f := range evictable[1:] {
			if c := l.credits[f]; c < min {
				min = c
			}
		}
		// Credits are decayed by repeated subtraction, so "reached zero" must
		// be an epsilon test: the minimum-credit file lands within round-off
		// of zero, not exactly on it.
		if !floats.AlmostZero(min) {
			for _, f := range evictable {
				l.credits[f] -= min
			}
			if l.tracer != nil {
				l.tracer.CreditDecay(obs.CreditDecayEvent{
					At: float64(l.admissions), Min: min, Files: len(evictable),
				})
			}
		}
		if invariant.Enabled {
			// Landlord's potential argument needs credit(f) ≥ 0 throughout;
			// subtracting the minimum can undershoot only by round-off.
			for _, f := range evictable {
				invariant.Check(l.credits[f] >= 0 || floats.AlmostZero(l.credits[f]),
					"landlord: credit of file %d decayed to %g < 0", f, l.credits[f])
			}
		}
		evicted := false
		for _, f := range evictable {
			if floats.AlmostZero(l.credits[f]) {
				if err := l.cache.Evict(f); err == nil {
					delete(l.credits, f)
					res.FilesEvicted++
					l.evictedScratch = append(l.evictedScratch, f)
					evicted = true
				}
			}
		}
		if !evicted {
			// Defensive: with exact arithmetic the minimum-credit file always
			// reaches zero; force the minimum out to guarantee progress.
			victim := evictable[0]
			for _, f := range evictable[1:] {
				if l.credits[f] < l.credits[victim] {
					victim = f
				}
			}
			if err := l.cache.Evict(victim); err != nil {
				break
			}
			delete(l.credits, victim)
			res.FilesEvicted++
			l.evictedScratch = append(l.evictedScratch, victim)
		}
	}

	// Step 4: bring the request in and set full credits.
	for _, f := range missing {
		if err := l.cache.Insert(f, l.sizeOf(f)); err != nil {
			// Pinned files blocked eviction; admit what fits.
			continue
		}
		res.FilesLoaded++
		res.BytesLoaded += l.sizeOf(f)
		l.loadedScratch = append(l.loadedScratch, f)
	}
	for _, f := range b {
		if l.cache.Contains(f) {
			l.resetCredit(f)
		}
	}
	// FromSlice canonicalizes the scratch in place — no copy; the Result's
	// Loaded/Evicted are valid until the next Admit (policy.Result docs).
	res.Loaded = bundle.FromSlice(l.loadedScratch)
	res.Evicted = bundle.FromSlice(l.evictedScratch)
	if l.tracer != nil {
		l.emitAdmit(res, len(b))
	}
	return res
}

// evictableOutside returns resident, unpinned files not in b — the paper's
// F(C') = F(C) \ F(r_new). The result aliases evictScratch and is valid
// until the next call (Admit consumes it within one decay round).
func (l *Landlord) evictableOutside(b bundle.Bundle) []bundle.FileID {
	l.evictScratch = l.cache.ResidentAppend(l.evictScratch[:0])
	out := l.evictScratch[:0] // in-place filter: write index trails read index
	for _, f := range l.evictScratch {
		if b.Contains(f) || l.cache.Pinned(f) {
			continue
		}
		out = append(out, f)
	}
	return out
}

var _ policy.Policy = (*Landlord)(nil)
