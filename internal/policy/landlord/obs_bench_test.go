package landlord

import (
	"math/rand"
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/obs"
)

// BenchmarkLandlord measures the Landlord Admit hot loop (credit decay,
// eviction scan, credit reset) with and without a tracer installed. The
// /baseline and /nop variants must be within noise of each other — emit
// sites are nil-guarded and allocate nothing when untraced. CI's bench-guard
// job runs this to keep it true.
func BenchmarkLandlord(b *testing.B) {
	run := func(b *testing.B, tracer obs.Tracer) {
		rng := rand.New(rand.NewSource(3))
		l := New(200, unit)
		if tracer != nil {
			l.SetTracer(tracer)
		}
		bundles := make([]bundle.Bundle, 128)
		for i := range bundles {
			ids := make([]bundle.FileID, 1+rng.Intn(5))
			for j := range ids {
				ids[j] = bundle.FileID(rng.Intn(500))
			}
			bundles[i] = bundle.New(ids...)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l.Admit(bundles[i%len(bundles)])
		}
	}
	b.Run("baseline", func(b *testing.B) { run(b, nil) })
	b.Run("nop", func(b *testing.B) { run(b, obs.NopTracer{}) })
}
