package landlord_test

import (
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/policy/landlord"
)

// Zero-size files must not divide by zero in credit(f) = cost(f)/size(f):
// resetCredit falls back to the raw cost, and admission/eviction keep the
// cache consistent.
func TestLandlordZeroSizeFiles(t *testing.T) {
	sizes := map[bundle.FileID]bundle.Size{1: 0, 2: 0, 3: 4}
	sizeOf := func(f bundle.FileID) bundle.Size { return sizes[f] }

	cases := []struct {
		name     string
		cost     landlord.CostFunc
		admit    []bundle.Bundle
		wantHits int
		// wantCredit pins the credit of file 1 after the sequence.
		wantCredit float64
	}{
		{
			name:       "default cost leaves zero-size credit at zero",
			admit:      []bundle.Bundle{bundle.New(1), bundle.New(1)},
			wantHits:   1,
			wantCredit: 0, // cost(1) = size(1) = 0; evictable for free, never divides
		},
		{
			name:       "explicit cost keeps zero-size file creditworthy",
			cost:       func(bundle.FileID) float64 { return 3 },
			admit:      []bundle.Bundle{bundle.New(1, 2), bundle.New(1, 2)},
			wantHits:   1,
			wantCredit: 3, // raw cost, not cost/0
		},
		{
			name:       "mixed bundle with sized files",
			cost:       nil,
			admit:      []bundle.Bundle{bundle.New(1, 3), bundle.New(1, 3)},
			wantHits:   1,
			wantCredit: 0,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := landlord.NewWithCost(10, sizeOf, tc.cost)
			hits := 0
			for _, b := range tc.admit {
				res := l.Admit(b)
				if res.Hit {
					hits++
				}
				if err := l.Cache().CheckInvariants(); err != nil {
					t.Fatalf("Admit(%v) broke invariants: %v", b, err)
				}
			}
			if hits != tc.wantHits {
				t.Fatalf("hits = %d, want %d", hits, tc.wantHits)
			}
			if got := l.Credit(1); got != tc.wantCredit {
				t.Fatalf("Credit(1) = %g, want %g", got, tc.wantCredit)
			}
		})
	}
}
