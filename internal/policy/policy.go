// Package policy defines the replacement-policy abstraction shared by the
// simulator, the SRM service and the experiment harness, plus an adapter for
// the core OptFileBundle policy. Concrete baselines live in the landlord and
// classic subpackages.
//
// Every policy is bundle-aware in the sense required by the paper: Admit
// receives a whole file-bundle, a request-hit needs every file resident, and
// a policy never evicts files of the request it is currently admitting.
package policy

import (
	"fbcache/internal/bundle"
	"fbcache/internal/cache"
	"fbcache/internal/core"
	"fbcache/internal/obs"
)

// Result reports the effect of admitting one request. It is structurally
// identical to core.Result so the adapter is a plain conversion.
type Result struct {
	Hit            bool
	BytesRequested bundle.Size
	BytesLoaded    bundle.Size
	FilesLoaded    int
	FilesEvicted   int
	Unserviceable  bool
	// Loaded lists the files fetched by this admission, for timed simulators.
	// It may alias per-policy scratch: valid until the next Admit on the same
	// policy. Callers that retain it across admissions must Clone (the SRM
	// layer does; the simulators consume it within the admission).
	Loaded bundle.Bundle
	// Evicted lists the files pushed out, for store-backed deployments.
	// Same scratch lifetime as Loaded.
	Evicted bundle.Bundle
}

// Policy is a bundle-aware cache replacement policy bound to its own cache.
type Policy interface {
	// Name identifies the policy in experiment output (e.g. "landlord").
	Name() string
	// Admit processes one job request, performing any evictions and loads.
	Admit(b bundle.Bundle) Result
	// Cache exposes the policy's cache for inspection.
	Cache() *cache.Cache
}

// Factory builds a fresh policy instance over a new cache — experiments
// construct one instance per (policy, run) pair so state never leaks between
// sweep points.
type Factory func(capacity bundle.Size, sizeOf bundle.SizeFunc) Policy

// optAdapter lifts *core.OptFileBundle to the Policy interface.
type optAdapter struct{ p *core.OptFileBundle }

func (a optAdapter) Name() string        { return a.p.Name() }
func (a optAdapter) Cache() *cache.Cache { return a.p.Cache() }

// SetTracer forwards to the wrapped policy so installers probing for the
// optional SetTracer interface (cachesim's installTracer) reach the
// policy-level emit sites (Admit, SelectRound), not only the cache's
// Load/Evict stream.
func (a optAdapter) SetTracer(t obs.Tracer) { a.p.SetTracer(t) }

func (a optAdapter) Admit(b bundle.Bundle) Result {
	r := a.p.Admit(b)
	return Result{
		Hit:            r.Hit,
		BytesRequested: r.BytesRequested,
		BytesLoaded:    r.BytesLoaded,
		FilesLoaded:    r.FilesLoaded,
		FilesEvicted:   r.FilesEvicted,
		Unserviceable:  r.Unserviceable,
		Loaded:         r.Loaded,
		Evicted:        r.Evicted,
	}
}

// WrapOptFileBundle adapts a core.OptFileBundle to the Policy interface.
func WrapOptFileBundle(p *core.OptFileBundle) Policy { return optAdapter{p} }

// OptFileBundleFactory returns a Factory producing OptFileBundle policies
// with the given options.
func OptFileBundleFactory(opts core.Options) Factory {
	return func(capacity bundle.Size, sizeOf bundle.SizeFunc) Policy {
		return WrapOptFileBundle(core.New(capacity, sizeOf, opts))
	}
}
