package policy

import (
	"fmt"

	"fbcache/internal/bundle"
	"fbcache/internal/cache"
)

// Bypass is an admission filter implementing the "file caching policy" leg
// of §1's policy trio: files larger than a fraction of the cache are served
// as pass-through transfers — their bytes count as miss traffic, but they
// are never cached, so one giant cold file cannot wipe out a working set of
// hot bundles. The wrapped policy sees the bundle with the oversized files
// removed.
type Bypass struct {
	inner   Policy
	sizeOf  bundle.SizeFunc
	maxSize bundle.Size

	bypassedBytes bundle.Size
	bypassedFiles int64
}

// NewBypass wraps inner; files with size > frac×capacity bypass the cache.
// frac must be in (0, 1].
func NewBypass(inner Policy, sizeOf bundle.SizeFunc, frac float64) *Bypass {
	if inner == nil || sizeOf == nil {
		panic("policy: nil inner policy or SizeFunc")
	}
	if frac <= 0 || frac > 1 {
		panic(fmt.Sprintf("policy: bypass fraction %v outside (0,1]", frac))
	}
	return &Bypass{
		inner:   inner,
		sizeOf:  sizeOf,
		maxSize: bundle.Size(frac * float64(inner.Cache().Capacity())),
	}
}

// Name implements Policy.
func (p *Bypass) Name() string { return p.inner.Name() + "+bypass" }

// Cache implements Policy.
func (p *Bypass) Cache() *cache.Cache { return p.inner.Cache() }

// Bypassed reports cumulative pass-through traffic.
func (p *Bypass) Bypassed() (bundle.Size, int64) { return p.bypassedBytes, p.bypassedFiles }

// Admit implements Policy. Oversized files are charged as loaded bytes on
// every request (they are re-transferred each time) but never enter the
// cache; the request hits only if the cacheable remainder hits and no
// oversized file is present (a pass-through transfer is always a miss).
func (p *Bypass) Admit(b bundle.Bundle) Result {
	var cacheable []bundle.FileID
	var passBytes bundle.Size
	passFiles := 0
	for _, f := range b {
		if s := p.sizeOf(f); s > p.maxSize {
			passBytes += s
			passFiles++
			continue
		}
		cacheable = append(cacheable, f)
	}

	res := p.inner.Admit(bundle.FromSlice(cacheable))
	res.BytesRequested += passBytes
	res.BytesLoaded += passBytes
	res.FilesLoaded += passFiles
	if passFiles > 0 {
		res.Hit = false
	}
	p.bypassedBytes += passBytes
	p.bypassedFiles += int64(passFiles)
	return res
}

var _ Policy = (*Bypass)(nil)
