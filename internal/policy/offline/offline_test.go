package offline

import (
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/policy/classic"
	"fbcache/internal/workload"
)

func unit(bundle.FileID) bundle.Size { return 1 }

func TestBeladyClassicSequence(t *testing.T) {
	// The textbook MIN example: cache of 2, accesses 1,2,3,1,2.
	// On admitting 3, MIN evicts 2 (next used at t=4) vs 1 (t=3)? No:
	// farthest next use is evicted — 1 is next used at index 3, 2 at index
	// 4, so 2 is evicted and 1 survives.
	future := []bundle.Bundle{
		bundle.New(1), bundle.New(2), bundle.New(3), bundle.New(1), bundle.New(2),
	}
	b := New(2, unit, future)
	hits := 0
	for _, req := range future {
		if b.Admit(req).Hit {
			hits++
		}
	}
	// Misses: 1,2,3 compulsory; at 3, evict 2 (farthest). Then 1 hits,
	// 2 misses. Total hits = 1.
	if hits != 1 {
		t.Errorf("hits = %d, want 1", hits)
	}
	if !b.Cache().Contains(2) {
		t.Errorf("resident = %v", b.Cache().Resident())
	}
}

func TestBeladyEvictsNeverUsedFirst(t *testing.T) {
	future := []bundle.Bundle{
		bundle.New(1, 2, 3), // 3 never used again
		bundle.New(4),
		bundle.New(1, 2),
	}
	b := New(3, unit, future)
	b.Admit(future[0])
	b.Admit(future[1]) // must evict 3 (never used again)
	if b.Cache().Contains(3) {
		t.Errorf("kept dead file; resident = %v", b.Cache().Resident())
	}
	if !b.Admit(future[2]).Hit {
		t.Error("clairvoyance failed: {1,2} should hit")
	}
}

func TestBeladyPanicsBeyondFuture(t *testing.T) {
	b := New(2, unit, []bundle.Bundle{bundle.New(1)})
	b.Admit(bundle.New(1))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	b.Admit(bundle.New(1))
}

func TestBeladyUnserviceable(t *testing.T) {
	b := New(1, unit, []bundle.Bundle{bundle.New(1, 2)})
	if res := b.Admit(bundle.New(1, 2)); !res.Unserviceable {
		t.Errorf("res = %+v", res)
	}
}

// On single-file workloads Belady is offline-optimal: no online policy may
// achieve a (meaningfully) higher hit count.
func TestBeladyDominatesLRUOnSingleFileWorkload(t *testing.T) {
	spec := workload.DefaultSpec()
	spec.Jobs = 4000
	spec.NumFiles = 80
	spec.NumRequests = 120
	spec.MaxBundleFiles = 1 // single-file requests
	spec.CacheSize = 2 * bundle.GB
	spec.MaxFilePct = 0.05
	spec.Popularity = workload.Zipf
	w, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	future := make([]bundle.Bundle, len(w.Jobs))
	for i := range w.Jobs {
		future[i] = w.JobBundle(i)
	}
	bel := New(spec.CacheSize, w.Catalog.SizeFunc(), future)
	lru := classic.NewLRU(spec.CacheSize, w.Catalog.SizeFunc())
	var hitsBel, hitsLRU int
	for _, req := range future {
		if bel.Admit(req).Hit {
			hitsBel++
		}
		if lru.Admit(req).Hit {
			hitsLRU++
		}
	}
	t.Logf("hits: belady=%d lru=%d of %d", hitsBel, hitsLRU, len(future))
	if hitsBel < hitsLRU {
		t.Errorf("offline optimal (%d) below LRU (%d)", hitsBel, hitsLRU)
	}
}

func TestBeladyHandlesBundles(t *testing.T) {
	spec := workload.DefaultSpec()
	spec.Jobs = 1500
	spec.NumFiles = 100
	spec.NumRequests = 60
	spec.CacheSize = 2 * bundle.GB
	spec.Popularity = workload.Zipf
	w, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	future := make([]bundle.Bundle, len(w.Jobs))
	for i := range w.Jobs {
		future[i] = w.JobBundle(i)
	}
	b := New(spec.CacheSize, w.Catalog.SizeFunc(), future)
	for _, req := range future {
		res := b.Admit(req)
		if !res.Unserviceable && !b.Cache().Supports(req) {
			t.Fatal("serviced bundle not resident")
		}
		if err := b.Cache().CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}
