// Package offline implements a clairvoyant baseline: Belady's MIN rule
// adapted to file-bundles. The policy is constructed with the entire future
// request sequence and, when space is needed, evicts the resident file
// whose next use lies farthest in the future (never-used-again files first).
//
// For single-file requests this is the offline-optimal MIN; for bundles it
// is a strong heuristic, not an optimum (the offline bundle problem
// inherits the FBC NP-hardness of §4). It serves as a reference curve no
// online policy is expected to beat by much — the paper has no such
// baseline, and it contextualizes how close OptFileBundle gets to
// hindsight.
package offline

import (
	"sort"

	"fbcache/internal/bundle"
	"fbcache/internal/cache"
	"fbcache/internal/policy"
)

// Belady is the clairvoyant policy. Admissions must follow exactly the
// future sequence given at construction; Admit panics if called more times
// than the future has jobs.
type Belady struct {
	cache  *cache.Cache
	sizeOf bundle.SizeFunc

	// uses[f] holds the ascending job indices at which f is requested.
	uses map[bundle.FileID][]int
	// cursor[f] indexes the first entry of uses[f] not yet in the past.
	cursor map[bundle.FileID]int
	clock  int
	total  int
}

// New builds a Belady policy for the given future request sequence.
func New(capacity bundle.Size, sizeOf bundle.SizeFunc, future []bundle.Bundle) *Belady {
	if sizeOf == nil {
		panic("offline: nil SizeFunc")
	}
	b := &Belady{
		cache:  cache.New(capacity),
		sizeOf: sizeOf,
		uses:   make(map[bundle.FileID][]int),
		cursor: make(map[bundle.FileID]int),
		total:  len(future),
	}
	for i, req := range future {
		for _, f := range req {
			b.uses[f] = append(b.uses[f], i)
		}
	}
	return b
}

// Name implements policy.Policy.
func (b *Belady) Name() string { return "belady-offline" }

// Cache implements policy.Policy.
func (b *Belady) Cache() *cache.Cache { return b.cache }

// nextUse returns the first job index > now at which f is used, or a
// sentinel beyond the horizon when f is never used again.
func (b *Belady) nextUse(f bundle.FileID, now int) int {
	posts := b.uses[f]
	i := b.cursor[f]
	// Advance the cursor past positions <= now (amortized O(1)).
	for i < len(posts) && posts[i] <= now {
		i++
	}
	b.cursor[f] = i
	if i == len(posts) {
		return b.total + 1 // never again
	}
	return posts[i]
}

// Admit implements policy.Policy for the next job of the future sequence.
func (b *Belady) Admit(req bundle.Bundle) policy.Result {
	if b.clock >= b.total {
		panic("offline: Admit called beyond the provided future")
	}
	now := b.clock
	b.clock++

	res := policy.Result{BytesRequested: req.TotalSize(b.sizeOf)}
	if res.BytesRequested > b.cache.Capacity() {
		res.Unserviceable = true
		return res
	}
	if b.cache.Supports(req) {
		res.Hit = true
		return res
	}

	missing := b.cache.Missing(req)
	needed := missing.TotalSize(b.sizeOf)

	for b.cache.Free() < needed {
		victim, ok := b.victim(req, now)
		if !ok {
			break
		}
		if err := b.cache.Evict(victim); err != nil {
			break
		}
		res.FilesEvicted++
		res.Evicted = append(res.Evicted, victim)
	}
	for _, f := range missing {
		if err := b.cache.Insert(f, b.sizeOf(f)); err != nil {
			continue
		}
		res.FilesLoaded++
		res.BytesLoaded += b.sizeOf(f)
		res.Loaded = append(res.Loaded, f)
	}
	return res
}

// victim picks the resident file (outside req, unpinned) used farthest in
// the future; size breaks ties (evict the biggest), then FileID.
func (b *Belady) victim(req bundle.Bundle, now int) (bundle.FileID, bool) {
	resident := b.cache.Resident()
	bestIdx := -1
	bestNext := -1
	var bestSize bundle.Size
	candidates := make([]bundle.FileID, 0, len(resident))
	for _, f := range resident {
		if req.Contains(f) || b.cache.Pinned(f) {
			continue
		}
		candidates = append(candidates, f)
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	for i, f := range candidates {
		next := b.nextUse(f, now)
		size := b.sizeOf(f)
		if next > bestNext || (next == bestNext && size > bestSize) {
			bestIdx, bestNext, bestSize = i, next, size
		}
	}
	if bestIdx < 0 {
		return 0, false
	}
	return candidates[bestIdx], true
}

var _ policy.Policy = (*Belady)(nil)
