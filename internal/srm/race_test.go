package srm

import (
	"fmt"
	"sync"
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/core"
	"fbcache/internal/policy"
)

// TestConcurrentStageRelease hammers one SRM from many goroutines with
// overlapping bundles, interleaved Stats and catalog traffic. It exists to
// be run under -race: the assertions are mild, the interleavings are the
// test.
func TestConcurrentStageRelease(t *testing.T) {
	s, cat := newTestSRM(1000, 10, 10, 10, 10, 10, 10, 10, 10)
	defer s.Close()

	const workers = 8
	const iters = 40
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Overlapping two-file bundles so goroutines contend for
				// the same pins.
				a := bundle.FileID((g + i) % 8)
				b := bundle.FileID((g + i + 1) % 8)
				rel, _, err := s.Stage(bundle.New(a, b))
				if err != nil {
					t.Errorf("worker %d: %v", g, err)
					return
				}
				_ = s.Stats()
				rel()
			}
		}(g)
	}
	// Catalog mutators race against the stagers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := s.AddFile(fmt.Sprintf("extra-%d", i), 5); err != nil {
				t.Errorf("AddFile: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	st := s.Stats()
	if st.ActiveJobs != 0 || st.PinnedBytes != 0 {
		t.Errorf("leaked pins after all releases: %+v", st)
	}
	if _, ok := cat.Lookup("extra-0"); !ok {
		t.Error("concurrent AddFile lost a registration")
	}
}

// TestConcurrentStageNames exercises the name-resolution path (the one the
// TCP server uses) concurrently with direct FileID staging.
func TestConcurrentStageNames(t *testing.T) {
	cat := bundle.NewCatalog()
	for i := 0; i < 6; i++ {
		cat.Add(fmt.Sprintf("f%d", i), 10)
	}
	pol := policy.WrapOptFileBundle(core.New(1000, cat.SizeFunc(), core.Options{}))
	s2 := New(pol, cat)
	defer s2.Close()

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				names := []string{fmt.Sprintf("f%d", g%6), fmt.Sprintf("f%d", (g+1)%6)}
				rel, _, err := s2.StageNames(names)
				if err != nil {
					t.Errorf("StageNames: %v", err)
					return
				}
				rel()
			}
		}(g)
	}
	wg.Wait()
}
