package srm

import (
	"strings"
	"sync"
	"testing"
	"time"

	"fbcache/internal/bundle"
	"fbcache/internal/core"
	"fbcache/internal/policy"
)

func startServer(t *testing.T, capacity bundle.Size) (*Server, *SRM) {
	t.Helper()
	cat := bundle.NewCatalog()
	pol := policy.WrapOptFileBundle(core.New(capacity, cat.SizeFunc(), core.Options{}))
	s := New(pol, cat)
	srv, err := Serve(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, s
}

func TestProtocolRoundTrip(t *testing.T) {
	srv, _ := startServer(t, 100)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for name, size := range map[string]bundle.Size{"a": 10, "b": 20, "c": 30} {
		if err := c.AddFile(name, size); err != nil {
			t.Fatal(err)
		}
	}
	token, hit, loaded, err := c.Stage("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if hit || loaded != 30 || token == "" {
		t.Errorf("stage: token=%q hit=%v loaded=%d", token, hit, loaded)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ActiveJobs != 1 || st.Jobs != 1 || st.Policy != "optfilebundle" {
		t.Errorf("stats = %+v", st)
	}
	if err := c.Release(token); err != nil {
		t.Fatal(err)
	}
	st, _ = c.Stats()
	if st.ActiveJobs != 0 {
		t.Errorf("active after release = %d", st.ActiveJobs)
	}
	// Second stage is a hit.
	_, hit, loaded, err = c.Stage("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if !hit || loaded != 0 {
		t.Errorf("second stage: hit=%v loaded=%d", hit, loaded)
	}
}

func TestProtocolErrors(t *testing.T) {
	srv, _ := startServer(t, 100)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, _, _, err := c.Stage("ghost"); err == nil || !strings.Contains(err.Error(), "unknown file") {
		t.Errorf("stage unknown file: %v", err)
	}
	if err := c.Release("t999"); err == nil {
		t.Error("release of unknown token accepted")
	}
	if err := c.AddFile("", 1); err == nil {
		t.Error("empty name accepted")
	}
	if _, _, _, err := c.Stage(); err == nil {
		t.Error("empty stage accepted")
	}
	// Unknown op straight through roundTrip.
	if _, err := c.roundTrip(Request{Op: "nope"}); err == nil {
		t.Error("unknown op accepted")
	}
}

func TestDisconnectReleasesLeases(t *testing.T) {
	srv, s := startServer(t, 100)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddFile("x", 60); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Stage("x"); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.PinnedBytes != 60 {
		t.Fatalf("pinned = %d", st.PinnedBytes)
	}
	c.Close()
	// The server releases on disconnect asynchronously.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s.Stats().PinnedBytes == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("leases not released on disconnect: %+v", s.Stats())
}

func TestConcurrentClients(t *testing.T) {
	srv, s := startServer(t, 1000)
	setup, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := setup.AddFile(fileName(i), 10); err != nil {
			t.Fatal(err)
		}
	}
	setup.Close()

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			for i := 0; i < 30; i++ {
				a, b := fileName((g+i)%16), fileName((g*3+i*5)%16)
				token, _, _, err := c.Stage(a, b)
				if err != nil {
					t.Errorf("stage: %v", err)
					return
				}
				if err := c.Release(token); err != nil {
					t.Errorf("release: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Jobs != 180 {
		t.Errorf("jobs = %d, want 180", st.Jobs)
	}
	if st.PinnedBytes != 0 || st.ActiveJobs != 0 {
		t.Errorf("leaked: %+v", st)
	}
}

func fileName(i int) string {
	return string(rune('a'+i%26)) + "file"
}

func TestServerCloseStopsAccepting(t *testing.T) {
	srv, _ := startServer(t, 100)
	srv.Close()
	if _, err := Dial(srv.Addr()); err == nil {
		// A dial may still connect before the OS reaps the socket; try a
		// round trip which must fail.
		c, _ := Dial(srv.Addr())
		if c != nil {
			if _, err := c.Stats(); err == nil {
				t.Error("server still serving after Close")
			}
			c.Close()
		}
	}
}
