package srm

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// StatsHandler returns an http.Handler exposing the SRM's statistics for
// monitoring: JSON at /stats (and for Accept: application/json anywhere),
// a plain-text summary otherwise. srmd mounts it with -http.
func StatsHandler(s *SRM) http.Handler {
	if s == nil {
		panic("srm: nil SRM")
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		snap := s.Stats()
		if r.URL.Path == "/stats" || r.Header.Get("Accept") == "application/json" {
			w.Header().Set("Content-Type", "application/json")
			if err := json.NewEncoder(w).Encode(snap); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "policy          %s\n", snap.Policy)
		fmt.Fprintf(w, "jobs            %d\n", snap.Jobs)
		fmt.Fprintf(w, "hit ratio       %.4f\n", snap.HitRatio)
		fmt.Fprintf(w, "byte miss ratio %.4f\n", snap.ByteMissRatio)
		fmt.Fprintf(w, "bytes loaded    %v\n", snap.BytesLoaded)
		fmt.Fprintf(w, "active jobs     %d (waiting %d)\n", snap.ActiveJobs, snap.WaitingJobs)
		fmt.Fprintf(w, "pinned          %v\n", snap.PinnedBytes)
		fmt.Fprintf(w, "cache           %v / %v\n", snap.CacheUsed, snap.CacheCapacity)
	})
}
