package srm

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fbcache/internal/bundle"
	"fbcache/internal/core"
	"fbcache/internal/obs"
	"fbcache/internal/obs/span"
	"fbcache/internal/policy"
)

// startSpanServer is startServer with a flight recorder on the SRM,
// configured so every request is anomalous (kept at full fidelity).
func startSpanServer(t *testing.T, capacity bundle.Size, o span.Options) (*Server, *SRM, *span.Recorder) {
	t.Helper()
	cat := bundle.NewCatalog()
	pol := policy.WrapOptFileBundle(core.New(capacity, cat.SizeFunc(), core.Options{}))
	rec := span.New(o)
	s := New(pol, cat).WithSpans(rec)
	srv, err := Serve(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, s, rec
}

// keepAll makes every request anomalous so tests never miss a span.
func keepAll() span.Options {
	return span.Options{SlowThreshold: time.Nanosecond, SampleEvery: 1 << 62}
}

func TestWireSpansEndToEnd(t *testing.T) {
	srv, _, rec := startSpanServer(t, 100, keepAll())
	crec := span.New(keepAll())
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.WithSpans(crec)

	if err := c.AddFile("a", 10); err != nil {
		t.Fatal(err)
	}
	if err := c.AddFile("b", 20); err != nil {
		t.Fatal(err)
	}
	token, _, loaded, err := c.Stage("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Release(token); err != nil {
		t.Fatal(err)
	}

	// Server side: the stage request must have a root with an admit leg
	// parented under it, carrying the bundle attributes.
	kept := rec.Kept()
	byOp := map[span.Op][]span.Span{}
	for _, s := range kept {
		byOp[s.Op] = append(byOp[s.Op], s)
	}
	for _, op := range []span.Op{span.OpAddFile, span.OpStage, span.OpRelease} {
		if len(byOp[op]) == 0 {
			t.Errorf("no %s span on the server", op)
		}
	}
	if len(byOp[span.OpStage]) != 1 || len(byOp[span.OpStageAdmit]) != 1 {
		t.Fatalf("stage spans = %d roots / %d admits, want 1/1",
			len(byOp[span.OpStage]), len(byOp[span.OpStageAdmit]))
	}
	root, admit := byOp[span.OpStage][0], byOp[span.OpStageAdmit][0]
	if admit.Req != root.Req || admit.Parent != root.ID {
		t.Errorf("admit (req %d parent %d) not under stage root (req %d id %d)",
			admit.Req, admit.Parent, root.Req, root.ID)
	}
	if root.Files != 2 || root.Bytes != int64(loaded) {
		t.Errorf("root attributes files=%d bytes=%d, want 2/%d", root.Files, root.Bytes, loaded)
	}
	if admit.Bytes != int64(loaded) {
		t.Errorf("admit bytes = %d, want %d", admit.Bytes, loaded)
	}
	// The fast path never blocked, so no queue-wait span exists.
	if n := len(byOp[span.OpStageWait]); n != 0 {
		t.Errorf("%d wait spans on an uncontended stage, want 0", n)
	}
	// The server root's parent is the client's wire span ID.
	if root.Parent == 0 {
		t.Error("server stage root has no wire parent")
	}

	// Client side: the rpc.stage span adopted the server's request ID, so
	// both recorders agree on the request.
	var rpcStage *span.Span
	for _, s := range crec.Kept() {
		if s.Op == span.OpRPCStage {
			s := s
			rpcStage = &s
		}
	}
	if rpcStage == nil {
		t.Fatal("client recorded no rpc.stage span")
	}
	if rpcStage.Req != root.Req {
		t.Errorf("client rpc.stage req = %d, server req = %d; adoption failed",
			rpcStage.Req, root.Req)
	}
	if rpcStage.ID != root.Parent {
		t.Errorf("client span %d is not the server root's parent %d", rpcStage.ID, root.Parent)
	}
	if rpcStage.Bytes != int64(loaded) {
		t.Errorf("rpc.stage bytes = %d, want %d", rpcStage.Bytes, loaded)
	}
}

func TestWaitSpanOnContention(t *testing.T) {
	srv, s, rec := startSpanServer(t, 30, keepAll())
	s.WithStageTimeout(50 * time.Millisecond)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.AddFile("a", 30); err != nil {
		t.Fatal(err)
	}
	if err := c.AddFile("b", 30); err != nil {
		t.Fatal(err)
	}
	token, _, _, err := c.Stage("a")
	if err != nil {
		t.Fatal(err)
	}
	// Cache full of pins: this stage waits out the deadline and fails busy.
	if _, _, _, err := c.Stage("b"); err == nil || !isRetryable(err) {
		t.Fatalf("contended stage: %v, want retryable busy", err)
	}
	if err := c.Release(token); err != nil {
		t.Fatal(err)
	}

	var waits, busyRoots int
	for _, sp := range rec.Kept() {
		switch {
		case sp.Op == span.OpStageWait:
			waits++
			if sp.Err != span.ErrBusy {
				t.Errorf("wait span err = %v, want busy", sp.Err)
			}
			if sp.Duration() < 40*time.Millisecond {
				t.Errorf("wait span lasted %v, deadline is 50ms", sp.Duration())
			}
		case sp.Op == span.OpStage && sp.Err == span.ErrBusy:
			busyRoots++
		}
	}
	if waits != 1 || busyRoots != 1 {
		t.Errorf("wait/busy-root spans = %d/%d, want 1/1", waits, busyRoots)
	}
	if got := rec.OpErrors(span.OpStage); got != 1 {
		t.Errorf("OpErrors(stage) = %d, want 1", got)
	}
}

// TestShutdownFlushesFlightRecorder is the regression test for sinks losing
// tail events on SIGTERM: the anomaly dump is buffered, and only the
// Shutdown path (via CloseOnShutdown) flushes it.
func TestShutdownFlushesFlightRecorder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	sink, closer, err := span.FileDump(path)
	if err != nil {
		t.Fatal(err)
	}
	o := keepAll()
	o.Dump, o.DumpCloser = sink, closer

	srv, _, rec := startSpanServer(t, 100, o)
	srv.CloseOnShutdown(rec)

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.AddFile("a", 10); err != nil {
		t.Fatal(err)
	}
	token, _, _, err := c.Stage("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Release(token); err != nil {
		t.Fatal(err)
	}
	if rec.Counters().Anomalies == 0 {
		t.Fatal("no anomalies recorded; the flush test needs dumped spans")
	}

	// The tail is still sitting in the bufio buffer.
	if raw, _ := os.ReadFile(path); len(raw) != 0 {
		t.Skipf("dump already on disk (%d bytes); buffer smaller than expected", len(raw))
	}

	if err := srv.Shutdown(time.Second); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Fatal("Shutdown did not flush the flight-recorder dump")
	}
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if !strings.HasPrefix(line, `{"kind":"span",`) {
			t.Errorf("dump line is not a span record: %s", line)
		}
	}

	// Shutdown is idempotent over the closers; a second call must not
	// re-close (which would surface a double-close error).
	if err := srv.Shutdown(time.Second); err != nil {
		t.Errorf("second Shutdown = %v", err)
	}

	// Registering a closer after shutdown closes it immediately.
	late := &countingCloser{}
	srv.CloseOnShutdown(late)
	if late.n != 1 {
		t.Errorf("late closer ran %d times, want 1", late.n)
	}
}

type countingCloser struct{ n int }

func (c *countingCloser) Close() error { c.n++; return nil }

// TestStageRetryHonorsRetryAfterHint covers the retry-after path end to
// end: a busy server returns the hint (half the staging deadline), and
// StageRetry waits it out between attempts.
func TestStageRetryHonorsRetryAfterHint(t *testing.T) {
	srv, s, _ := startSpanServer(t, 30, keepAll())
	s.WithStageTimeout(200 * time.Millisecond) // hint = 100ms
	crec := span.New(keepAll())
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.WithSpans(crec)

	if err := c.AddFile("a", 30); err != nil {
		t.Fatal(err)
	}
	if err := c.AddFile("b", 30); err != nil {
		t.Fatal(err)
	}
	token, _, _, err := c.Stage("a")
	if err != nil {
		t.Fatal(err)
	}

	// Pins never release: every attempt waits out the 200ms deadline, and
	// between attempts the client must sleep the server's 100ms hint.
	start := time.Now()
	_, _, _, err = c.StageRetry(2, "b")
	elapsed := time.Since(start)
	if err == nil || !isRetryable(err) {
		t.Fatalf("StageRetry on a saturated cache: %v, want retryable busy", err)
	}
	var re *RetryableError
	if !errors.As(err, &re) {
		t.Fatal("error does not unwrap to RetryableError")
	}
	if re.RetryAfter != 100*time.Millisecond {
		t.Errorf("server hint = %v, want 100ms (half the 200ms deadline)", re.RetryAfter)
	}
	// Two 200ms server-side waits plus one 100ms client-side backoff.
	if elapsed < 450*time.Millisecond {
		t.Errorf("StageRetry returned after %v; hint not honored (want >= 500ms-ish)", elapsed)
	}

	// The retry is visible in the client's span telemetry.
	reg := obs.NewRegistry()
	crec.ExportTo(reg)
	if m, ok := reg.Snapshot().Get(`fbcache_op_retries_total{op="rpc.stage"}`); !ok || m.Value != 1 {
		t.Errorf("rpc.stage retries = %+v (ok=%v), want 1", m, ok)
	}
	if got := crec.OpErrors(span.OpRPCStage); got != 2 {
		t.Errorf("client rpc.stage errors = %d, want 2 (both attempts busy)", got)
	}

	if err := c.Release(token); err != nil {
		t.Fatal(err)
	}
}
