package srm

import (
	"fbcache/internal/metrics"
	"fbcache/internal/obs"
)

// NewRegistry builds an obs.Registry exposing s's live state under the
// fbcache_* metric names documented in README.md ("Observability"). Every
// value is read through Stats(), so each scrape sees a lock-consistent
// snapshot. Serve it with obs.DebugMux (see cmd/srmd's -debug-addr flag).
func NewRegistry(s *SRM) *obs.Registry {
	reg := obs.NewRegistry()
	stat := func(f func(Snapshot) float64) func() float64 {
		return func() float64 { return f(s.Stats()) }
	}
	reg.CounterFunc("fbcache_jobs_total",
		"Job requests admitted by the SRM (including unserviceable ones).",
		stat(func(sn Snapshot) float64 { return float64(sn.Jobs) }))
	reg.GaugeFunc("fbcache_jobs_active",
		"Jobs currently holding a staged, pinned bundle.",
		stat(func(sn Snapshot) float64 { return float64(sn.ActiveJobs) }))
	reg.GaugeFunc("fbcache_jobs_waiting",
		"Jobs blocked waiting for staging space.",
		stat(func(sn Snapshot) float64 { return float64(sn.WaitingJobs) }))
	reg.GaugeFunc("fbcache_hit_ratio",
		"Request-hit ratio over serviced jobs (every file resident).",
		stat(func(sn Snapshot) float64 { return sn.HitRatio }))
	reg.GaugeFunc("fbcache_byte_miss_ratio",
		"Bytes loaded / bytes requested — the paper's main metric.",
		stat(func(sn Snapshot) float64 { return sn.ByteMissRatio }))
	reg.CounterFunc("fbcache_bytes_loaded_total",
		"Total miss traffic staged into the cache, in bytes.",
		stat(func(sn Snapshot) float64 { return float64(sn.BytesLoaded) }))
	reg.GaugeFunc("fbcache_cache_used_bytes",
		"Bytes currently resident in the staging cache.",
		stat(func(sn Snapshot) float64 { return float64(sn.CacheUsed) }))
	reg.GaugeFunc("fbcache_cache_capacity_bytes",
		"Staging cache capacity in bytes.",
		stat(func(sn Snapshot) float64 { return float64(sn.CacheCapacity) }))
	reg.GaugeFunc("fbcache_pinned_bytes",
		"Bytes pinned by running jobs.",
		stat(func(sn Snapshot) float64 { return float64(sn.PinnedBytes) }))
	reg.RegisterHistogram("fbcache_request_bytes",
		"Requested bundle size per Stage call, in bytes.", s.reqBytes)
	quantile := func(q float64) func() float64 {
		return func() float64 {
			// NaN (empty histogram) would poison the /debug/vars JSON
			// rendering; scrape 0 until the first request arrives.
			if s.reqBytes.Count() == 0 {
				return 0
			}
			return s.reqBytes.Quantile(q)
		}
	}
	reg.GaugeFunc("fbcache_request_bytes_p50",
		"Median requested bundle size (histogram estimate), in bytes.", quantile(0.50))
	reg.GaugeFunc("fbcache_request_bytes_p90",
		"90th-percentile requested bundle size (histogram estimate), in bytes.", quantile(0.90))
	reg.GaugeFunc("fbcache_request_bytes_p99",
		"99th-percentile requested bundle size (histogram estimate), in bytes.", quantile(0.99))
	metrics.ExportResilience(reg, func() metrics.Resilience { return s.Stats().Resilience })
	reg.GaugeFunc(`fbcache_info{policy="`+s.Stats().Policy+`"}`,
		"Constant 1; the label carries the replacement policy in use.",
		func() float64 { return 1 })
	// Request-span telemetry (per-op wall-clock latency histograms and
	// quantiles, flight-recorder accounting); no-op when spans are off.
	s.Spans().ExportTo(reg)
	return reg
}
