package srm

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fbcache/internal/bundle"
)

func TestStatsHandlerJSON(t *testing.T) {
	s, _ := newTestSRM(100, 10, 20)
	rel, _, err := s.Stage(bundle.New(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	srv := httptest.NewServer(StatsHandler(s))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Jobs != 1 || snap.ActiveJobs != 1 || snap.PinnedBytes != 30 {
		t.Errorf("snapshot = %+v", snap)
	}
	if snap.Policy != "optfilebundle" {
		t.Errorf("policy = %q", snap.Policy)
	}
}

func TestStatsHandlerPlainText(t *testing.T) {
	s, _ := newTestSRM(100, 10)
	srv := httptest.NewServer(StatsHandler(s))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	for _, want := range []string{"policy", "hit ratio", "cache"} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in:\n%s", want, body)
		}
	}
}

func TestStatsHandlerRejectsNonGET(t *testing.T) {
	s, _ := newTestSRM(100)
	srv := httptest.NewServer(StatsHandler(s))
	defer srv.Close()
	resp, err := http.Post(srv.URL, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestStatsHandlerNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	StatsHandler(nil)
}
