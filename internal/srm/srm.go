// Package srm implements the Storage Resource Manager service layer of §2:
// the component that receives jobs' file-bundle requests, stages bundles
// into the disk cache through a replacement policy, pins them for the
// duration of processing, and releases them afterwards. It adds the
// concurrency control the bare policies (which are single-goroutine) do not
// have, plus a line-oriented TCP protocol (server.go) so remote clients can
// use an SRM like a service — the proxy-server role described in the paper.
package srm

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"fbcache/internal/bundle"
	"fbcache/internal/metrics"
	"fbcache/internal/obs"
	"fbcache/internal/obs/span"
	"fbcache/internal/policy"
	"fbcache/internal/store"
)

// ErrTooLarge reports a bundle that can never be staged in this cache.
var ErrTooLarge = errors.New("srm: bundle exceeds cache capacity")

// ErrClosed reports an SRM that has been shut down.
var ErrClosed = errors.New("srm: closed")

// ErrBusy reports a stage request that waited out its staging deadline while
// the cache was saturated with pinned bundles. It is a retryable condition:
// the wire protocol surfaces it with a retry-after hint.
var ErrBusy = errors.New("srm: busy: staging deadline exceeded")

// SRM is a thread-safe staging service over a replacement policy.
type SRM struct {
	// Immutable after New: cat is internally synchronized and sizeOf is a
	// pure function, so neither needs mu. Everything below mu does.
	cat    *bundle.Catalog
	sizeOf bundle.SizeFunc

	mu   sync.Mutex
	cond *sync.Cond    //fbvet:guardedby mu
	pol  policy.Policy //fbvet:guardedby mu

	pinnedBytes bundle.Size        //fbvet:guardedby mu
	active      int                //fbvet:guardedby mu
	waiting     int                //fbvet:guardedby mu
	closed      bool               //fbvet:guardedby mu
	col         metrics.Collector  //fbvet:guardedby mu
	res         metrics.Resilience //fbvet:guardedby mu
	store       *store.Store       //fbvet:guardedby mu — optional; see WithStore

	// reqBytes records the requested size of every Stage call (including
	// unserviceable ones). The histogram is atomic internally, so it is
	// observed here and scraped from NewRegistry without involving mu.
	reqBytes *obs.Histogram

	// rec is the request-span flight recorder; nil means spans are off
	// (the zero-cost default). Set it via WithSpans before Serve; readers
	// on the serving path load it once per connection. Recorder methods
	// are internally synchronized and lock-free on the start path, so leg
	// spans are started and finished while mu is held (the recorder's
	// stripe locks are leaves under mu — DESIGN.md §10).
	rec *span.Recorder //fbvet:guardedby mu

	// stageTimeout bounds how long one Stage may block waiting for pinned
	// capacity; 0 means wait forever. See WithStageTimeout.
	stageTimeout time.Duration //fbvet:guardedby mu
	// storeAttempts bounds tries per store operation (>= 1).
	storeAttempts int //fbvet:guardedby mu
}

// New builds an SRM over the given policy and catalog. The catalog provides
// name resolution for the wire protocol; programmatic callers may use
// FileIDs directly.
func New(pol policy.Policy, cat *bundle.Catalog) *SRM {
	if pol == nil || cat == nil {
		panic("srm: nil policy or catalog")
	}
	s := &SRM{
		pol: pol, cat: cat, sizeOf: cat.SizeFunc(), storeAttempts: 3,
		// 1 MB .. 32 GB in powers of two; larger requests land in +Inf.
		reqBytes: obs.NewHistogram(obs.ExpBuckets(float64(bundle.MB), 2, 16)),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// WithSpans attaches a request-span flight recorder: every Stage acquires
// wait/admit/store leg spans under the caller's span context (see StageCtx
// and Server.handle). Call it before the SRM serves traffic.
func (s *SRM) WithSpans(rec *span.Recorder) *SRM {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rec = rec
	return s
}

// Spans reports the attached flight recorder (nil when spans are off).
func (s *SRM) Spans() *span.Recorder {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec
}

// WithStageTimeout sets the per-request staging deadline: a Stage call that
// cannot pin its bundle within d fails with ErrBusy instead of blocking
// forever behind other jobs' pins. 0 restores unbounded waiting.
func (s *SRM) WithStageTimeout(d time.Duration) *SRM {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stageTimeout = d
	return s
}

// StageTimeout reports the configured staging deadline (0 = unbounded).
func (s *SRM) StageTimeout() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stageTimeout
}

// WithStoreRetries bounds attempts per store operation (default 3). Values
// below 1 are clamped to 1 (no retries).
func (s *SRM) WithStoreRetries(attempts int) *SRM {
	if attempts < 1 {
		attempts = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.storeAttempts = attempts
	return s
}

// Release undoes a successful Stage. It is safe to call exactly once.
type Release func()

// Stage admits b into the cache and pins it, blocking while the bundle
// cannot coexist with currently pinned bundles. On success the returned
// Release must be called when the job finishes processing.
func (s *SRM) Stage(b bundle.Bundle) (Release, policy.Result, error) {
	return s.StageCtx(span.Context{}, b)
}

// StageCtx is Stage under a request-span context: with a recorder attached
// (WithSpans) and a live ctx, the queue-wait, policy-admission and
// store-sync legs each become child spans, so per-request latency
// attribution survives into the flight recorder. Under the zero Context,
// or with no recorder, it is exactly Stage.
func (s *SRM) StageCtx(ctx span.Context, b bundle.Bundle) (Release, policy.Result, error) {
	size := b.TotalSize(s.sizeOf)
	s.reqBytes.Observe(float64(size))

	s.mu.Lock()
	defer s.mu.Unlock()
	if size > s.pol.Cache().Capacity() {
		res := policy.Result{BytesRequested: size, Unserviceable: true}
		s.col.Record(res)
		return nil, res, fmt.Errorf("%w: %v > %v", ErrTooLarge, size, s.pol.Cache().Capacity())
	}
	// The deadline is a timer flipping a bool under the mutex rather than a
	// wall-clock comparison, so no time value flows into SRM state.
	expired := false
	if s.stageTimeout > 0 {
		timer := time.AfterFunc(s.stageTimeout, func() {
			s.mu.Lock()
			expired = true
			s.cond.Broadcast()
			s.mu.Unlock()
		})
		defer timer.Stop()
	}
	if !s.closed && !expired && s.pinnedBytes+size > s.pol.Cache().Capacity() {
		// The wait span exists only when the request actually blocks, so
		// its histogram is the queue-wait distribution, not a spike at ~0.
		w := s.rec.StartChild(ctx, span.OpStageWait)
		for !s.closed && !expired && s.pinnedBytes+size > s.pol.Cache().Capacity() {
			s.waiting++
			s.cond.Wait()
			s.waiting--
		}
		switch {
		case s.closed:
			w.Finish(span.ErrClosed)
		case s.pinnedBytes+size > s.pol.Cache().Capacity():
			w.Finish(span.ErrBusy)
		default:
			w.Finish(span.ErrNone)
		}
	}
	if s.closed {
		return nil, policy.Result{}, ErrClosed
	}
	if s.pinnedBytes+size > s.pol.Cache().Capacity() {
		// Deadline passed and capacity still isn't there.
		s.res.Timeouts++
		return nil, policy.Result{}, fmt.Errorf("%w (waited %v)", ErrBusy, s.stageTimeout)
	}

	adm := s.rec.StartChild(ctx, span.OpStageAdmit)
	res := s.pol.Admit(b)
	// Result.Loaded/Evicted alias policy scratch valid only until the next
	// Admit; this res outlives the lock (it is returned to the caller), so
	// detach it while still serialized against other admissions.
	if len(res.Loaded) > 0 {
		res.Loaded = res.Loaded.Clone()
	}
	if len(res.Evicted) > 0 {
		res.Evicted = res.Evicted.Clone()
	}
	s.col.Record(res)
	adm.SetFiles(b.Len())
	adm.SetBytes(int64(res.BytesLoaded))
	adm.SetHit(res.Hit)
	if res.Unserviceable {
		adm.Finish(span.ErrTooLarge)
		return nil, res, ErrTooLarge
	}
	adm.Finish(span.ErrNone)
	if s.store != nil {
		st := s.rec.StartChild(ctx, span.OpStageStore)
		if err := s.syncStore(res); err != nil {
			st.Finish(span.ErrStore)
			return nil, res, err
		}
		st.Finish(span.ErrNone)
	}
	// Pin what is actually resident: with a pass-through (bypass) caching
	// policy some files of b are deliberately never cached, so only the
	// cacheable part is pinned.
	pinnable := b.Minus(s.pol.Cache().Missing(b))
	if err := s.pol.Cache().PinBundle(pinnable); err != nil {
		return nil, res, fmt.Errorf("srm: pin: %w", err)
	}
	pinnedSize := pinnable.TotalSize(s.sizeOf)
	s.pinnedBytes += pinnedSize
	s.active++

	var once sync.Once
	release := func() {
		once.Do(func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			// Ignore unpin errors after Close: the cache may be gone.
			_ = s.pol.Cache().UnpinBundle(pinnable)
			s.pinnedBytes -= pinnedSize
			s.active--
			s.cond.Broadcast()
		})
	}
	return release, res, nil
}

// StageWithTTL is Stage with a lease: if the caller has not released the
// bundle after ttl, the SRM reclaims the pins itself, so a crashed or hung
// job can never wedge the cache. Releasing after expiry is a harmless no-op.
func (s *SRM) StageWithTTL(b bundle.Bundle, ttl time.Duration) (Release, policy.Result, error) {
	release, res, err := s.Stage(b)
	if err != nil {
		return release, res, err
	}
	if ttl > 0 {
		timer := time.AfterFunc(ttl, release)
		inner := release
		release = func() {
			timer.Stop()
			inner()
		}
	}
	return release, res, nil
}

// StageNames resolves file names through the catalog and stages the bundle.
func (s *SRM) StageNames(names []string) (Release, policy.Result, error) {
	return s.StageNamesCtx(span.Context{}, names)
}

// StageNamesCtx is StageNames under a request-span context (see StageCtx).
func (s *SRM) StageNamesCtx(ctx span.Context, names []string) (Release, policy.Result, error) {
	ids := make([]bundle.FileID, 0, len(names))
	for _, n := range names {
		id, ok := s.cat.Lookup(n)
		if !ok {
			return nil, policy.Result{}, fmt.Errorf("srm: unknown file %q", n)
		}
		ids = append(ids, id)
	}
	return s.StageCtx(ctx, bundle.FromSlice(ids))
}

// AddFile registers a file in the catalog (size in bytes) and returns its ID.
func (s *SRM) AddFile(name string, size bundle.Size) (bundle.FileID, error) {
	if size < 0 {
		return 0, fmt.Errorf("srm: negative size for %q", name)
	}
	return s.cat.Add(name, size), nil
}

// Snapshot reports current service statistics.
type Snapshot struct {
	Jobs          int64
	HitRatio      float64
	ByteMissRatio float64
	BytesLoaded   bundle.Size
	ActiveJobs    int
	WaitingJobs   int
	PinnedBytes   bundle.Size
	CacheUsed     bundle.Size
	CacheCapacity bundle.Size
	Policy        string
	// Resilience counts fault-handling events: staging-deadline timeouts and
	// store-operation retries. All zero on a healthy, uncontended server.
	Resilience metrics.Resilience
}

// Stats returns a consistent snapshot of the SRM's metrics.
func (s *SRM) Stats() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Snapshot{
		Jobs:          s.col.Jobs(),
		HitRatio:      s.col.HitRatio(),
		ByteMissRatio: s.col.ByteMissRatio(),
		BytesLoaded:   s.col.BytesLoaded(),
		ActiveJobs:    s.active,
		WaitingJobs:   s.waiting,
		PinnedBytes:   s.pinnedBytes,
		CacheUsed:     s.pol.Cache().Used(),
		CacheCapacity: s.pol.Cache().Capacity(),
		Policy:        s.pol.Name(),
		Resilience:    s.res,
	}
}

// Close wakes all blocked stagers with ErrClosed. In-flight releases remain
// valid.
func (s *SRM) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.cond.Broadcast()
}
