package srm

import (
	"errors"
	"testing"
	"time"

	"fbcache/internal/bundle"
)

func TestStageTimeoutReturnsErrBusy(t *testing.T) {
	// Capacity 100; bundle 0 (60 bytes) pins the cache so bundle 1 (60
	// bytes) can never coexist with it.
	s, _ := newTestSRM(100, 60, 60)
	s.WithStageTimeout(30 * time.Millisecond)
	rel, _, err := s.Stage(bundle.New(0))
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	start := time.Now()
	_, _, err = s.Stage(bundle.New(1))
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("busy rejection took %v, deadline was 30ms", elapsed)
	}
	if st := s.Stats(); st.Resilience.Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1 (%v)", st.Resilience.Timeouts, st.Resilience)
	}

	// After the pin releases, the same request succeeds within the deadline.
	rel()
	rel2, _, err := s.Stage(bundle.New(1))
	if err != nil {
		t.Fatalf("stage after release: %v", err)
	}
	rel2()
}

func TestStageTimeoutZeroMeansUnbounded(t *testing.T) {
	s, _ := newTestSRM(100, 60, 60)
	s.WithStageTimeout(20 * time.Millisecond).WithStageTimeout(0)
	rel1, _, err := s.Stage(bundle.New(0))
	if err != nil {
		t.Fatal(err)
	}
	staged := make(chan error, 1)
	go func() {
		rel2, _, err := s.Stage(bundle.New(1))
		if err == nil {
			rel2()
		}
		staged <- err
	}()
	// Well past the (cleared) deadline the second stage must still be
	// waiting, not failed.
	select {
	case err := <-staged:
		t.Fatalf("second stage returned early: %v", err)
	case <-time.After(60 * time.Millisecond):
	}
	rel1()
	select {
	case err := <-staged:
		if err != nil {
			t.Fatalf("second stage: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("second stage never unblocked")
	}
}

// store.Store is a concrete type we can't fake through syncStore, so the
// bounded-retry engine is driven directly.
func TestRetryStoreBounded(t *testing.T) {
	s, _ := newTestSRM(100, 10)

	calls := 0
	err := s.retryStore(func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("retryStore: %v", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3 (two retries then success)", calls)
	}
	if got := s.Stats().Resilience.Retries; got != 2 {
		t.Errorf("retries counted = %d, want 2", got)
	}

	// A persistent failure surfaces after exactly storeAttempts tries.
	calls = 0
	persistent := errors.New("disk gone")
	if err := s.retryStore(func() error { calls++; return persistent }); !errors.Is(err, persistent) {
		t.Fatalf("err = %v", err)
	}
	if calls != 3 {
		t.Errorf("persistent failure tried %d times, want 3", calls)
	}

	// WithStoreRetries(1) means a single attempt, no retries.
	s.WithStoreRetries(1)
	calls = 0
	_ = s.retryStore(func() error { calls++; return persistent })
	if calls != 1 {
		t.Errorf("with retries disabled: %d calls, want 1", calls)
	}
	// Clamping: nonsense values fall back to one attempt.
	s.WithStoreRetries(-4)
	calls = 0
	_ = s.retryStore(func() error { calls++; return persistent })
	if calls != 1 {
		t.Errorf("clamped attempts: %d calls, want 1", calls)
	}
}

func TestServerBusyResponseIsRetryable(t *testing.T) {
	srv, s := startServer(t, 100)
	s.WithStageTimeout(30 * time.Millisecond)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, name := range []string{"a", "b"} {
		if err := c.AddFile(name, 60); err != nil {
			t.Fatal(err)
		}
	}

	tokenA, _, _, err := c.Stage("a")
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, err = c.Stage("b")
	var re *RetryableError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RetryableError", err)
	}
	if re.RetryAfter <= 0 {
		t.Errorf("retry-after hint = %v, want > 0", re.RetryAfter)
	}

	// StageRetry succeeds once the pin is released by a concurrent worker.
	go func() {
		time.Sleep(20 * time.Millisecond)
		_ = c.Release(tokenA)
	}()
	tokenB, _, _, err := c.StageRetry(10, "b")
	if err != nil {
		t.Fatalf("StageRetry: %v", err)
	}
	if err := c.Release(tokenB); err != nil {
		t.Fatal(err)
	}
}

func TestStageRetryGivesUpAfterMaxAttempts(t *testing.T) {
	srv, s := startServer(t, 100)
	s.WithStageTimeout(10 * time.Millisecond)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, name := range []string{"a", "b"} {
		if err := c.AddFile(name, 60); err != nil {
			t.Fatal(err)
		}
	}

	if _, _, _, err := c.Stage("a"); err != nil {
		t.Fatal(err)
	}
	// "a" stays pinned: every retry must come back busy, and the bounded
	// loop must eventually stop with the retryable error.
	_, _, _, err = c.StageRetry(3, "b")
	var re *RetryableError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RetryableError after exhausting retries", err)
	}
}

func TestServerShutdownDrains(t *testing.T) {
	s, _ := newTestSRM(100, 10)
	srv, err := Serve(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddFile("a", 10); err != nil {
		t.Fatal(err)
	}
	token, _, _, err := c.Stage("a")
	if err != nil {
		t.Fatal(err)
	}

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(2 * time.Second) }()

	// New connections must be refused while the old one still works.
	deadline := time.Now().Add(time.Second)
	for {
		if _, err := Dial(srv.Addr()); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting during drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The in-flight client finishes its business and disconnects.
	if err := c.Release(token); err != nil {
		t.Fatalf("release during drain: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	select {
	case <-shutdownDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return after the last client left")
	}
	if st := s.Stats(); st.PinnedBytes != 0 || st.ActiveJobs != 0 {
		t.Errorf("bundles still held after shutdown: %+v", st)
	}
	// Second Shutdown is a no-op.
	if err := srv.Shutdown(time.Millisecond); err != nil {
		t.Errorf("repeat shutdown: %v", err)
	}
}

func TestServerShutdownForceClosesStragglers(t *testing.T) {
	s, _ := newTestSRM(100, 10)
	srv, err := Serve(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.AddFile("a", 10); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Stage("a"); err != nil {
		t.Fatal(err)
	}

	// The client never disconnects; the drain deadline must cut it loose
	// and its lease must be released by the handler teardown.
	start := time.Now()
	if err := srv.Shutdown(50 * time.Millisecond); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("shutdown took %v despite a 50ms drain deadline", elapsed)
	}
	waitUntil(t, func() bool {
		st := s.Stats()
		return st.PinnedBytes == 0 && st.ActiveJobs == 0
	})
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
