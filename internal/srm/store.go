package srm

import (
	"fmt"

	"fbcache/internal/bundle"
	"fbcache/internal/policy"
	"fbcache/internal/store"
)

// WithStore attaches a file-backed store to the SRM: after every successful
// Stage, files the policy loaded are materialized on disk and files it
// evicted are deleted, so the cache directory always mirrors the policy's
// residency. Call before serving traffic.
func (s *SRM) WithStore(st *store.Store) *SRM {
	if st == nil {
		panic("srm: nil store")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.store = st
	return s
}

// syncStore applies one admission's movements to the attached store. Each
// operation gets storeAttempts bounded tries — transient filesystem errors
// (NFS hiccups, contended directories) are retried, persistent ones surface.
// Called with s.mu held.
func (s *SRM) syncStore(res policy.Result) error {
	if s.store == nil {
		return nil
	}
	for _, f := range res.Evicted {
		f := f
		if err := s.retryStore(func() error { return s.store.Remove(f) }); err != nil {
			return fmt.Errorf("srm: store evict %d: %w", f, err)
		}
	}
	for _, f := range res.Loaded {
		f := f
		if err := s.retryStore(func() error { _, _, err := s.store.Stage(f); return err }); err != nil {
			return fmt.Errorf("srm: store load %d: %w", f, err)
		}
	}
	return nil
}

// retryStore runs op up to storeAttempts times, counting each repeat in the
// resilience metrics. Called with s.mu held.
func (s *SRM) retryStore(op func() error) error {
	var err error
	for attempt := 0; attempt < s.storeAttempts; attempt++ {
		if attempt > 0 {
			s.res.Retries++
		}
		if err = op(); err == nil {
			return nil
		}
	}
	return err
}

// OpenStaged returns a reader over a staged file's bytes. Only valid while
// the caller holds a Stage lease covering the file; requires WithStore.
func (s *SRM) OpenStaged(f bundle.FileID) (storeReader, error) {
	s.mu.Lock()
	st := s.store
	s.mu.Unlock()
	if st == nil {
		return nil, fmt.Errorf("srm: no store attached")
	}
	return st.Open(f)
}

// storeReader is the reader type returned by OpenStaged.
type storeReader = interface {
	Read(p []byte) (int, error)
	Close() error
}
