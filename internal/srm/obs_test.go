package srm

import (
	"errors"
	"strings"
	"testing"

	"fbcache/internal/bundle"
)

func TestRegistryExposesLiveState(t *testing.T) {
	s, _ := newTestSRM(100, 60, 30)
	reg := NewRegistry(s)

	rel, res, err := s.Stage(bundle.New(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit {
		t.Fatal("first stage should miss")
	}

	snap := reg.Snapshot()
	expect := map[string]float64{
		"fbcache_jobs_total":           1,
		"fbcache_jobs_active":          1,
		"fbcache_bytes_loaded_total":   60,
		"fbcache_cache_used_bytes":     60,
		"fbcache_cache_capacity_bytes": 100,
		"fbcache_pinned_bytes":         60,
		"fbcache_byte_miss_ratio":      1,
		"fbcache_hit_ratio":            0,
	}
	for name, want := range expect {
		m, ok := snap.Get(name)
		if !ok {
			t.Errorf("metric %s missing", name)
			continue
		}
		if m.Value != want {
			t.Errorf("%s = %g, want %g", name, m.Value, want)
		}
	}
	if _, ok := snap.Get(`fbcache_info{policy="optfilebundle"}`); !ok {
		t.Error("fbcache_info with policy label missing")
	}
	rel()

	// Resilience counters flow through: two store retries then success.
	calls := 0
	if err := s.retryStore(func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if m, _ := reg.Snapshot().Get("fbcache_resilience_retries_total"); m.Value != 2 {
		t.Errorf("fbcache_resilience_retries_total = %g, want 2", m.Value)
	}
}

func TestRegistryPrometheusText(t *testing.T) {
	s, _ := newTestSRM(100, 10)
	rel, _, err := s.Stage(bundle.New(0))
	if err != nil {
		t.Fatal(err)
	}
	rel()

	var sb strings.Builder
	if err := NewRegistry(s).Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE fbcache_hit_ratio gauge",
		"# TYPE fbcache_byte_miss_ratio gauge",
		"# TYPE fbcache_bytes_loaded_total counter",
		"fbcache_bytes_loaded_total 10",
		"fbcache_resilience_retries_total 0",
		"fbcache_resilience_failovers_total 0",
		"fbcache_resilience_timeouts_total 0",
		`fbcache_info{policy="optfilebundle"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q:\n%s", want, text)
		}
	}
}

// Regression for the Resilience value-copy audit: Snapshot hands out a copy,
// and that copy must be isolated both ways — mutating it cannot leak into the
// live counters, and later live updates cannot retroactively change an
// already-taken snapshot.
func TestSnapshotResilienceIsolation(t *testing.T) {
	s, _ := newTestSRM(100, 10)
	transient := func(failures int) {
		calls := 0
		if err := s.retryStore(func() error {
			if calls++; calls <= failures {
				return errors.New("transient")
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	transient(2)
	snap := s.Stats()
	if snap.Resilience.Retries != 2 {
		t.Fatalf("retries = %d, want 2", snap.Resilience.Retries)
	}

	// Mutating the copy must not write through to the SRM.
	snap.Resilience.Retries = 999
	if got := s.Stats().Resilience.Retries; got != 2 {
		t.Errorf("snapshot mutation leaked into live counters: %d", got)
	}

	// Later activity must not change the earlier snapshot.
	before := s.Stats()
	transient(2)
	if before.Resilience.Retries != 2 {
		t.Errorf("earlier snapshot changed retroactively: %d", before.Resilience.Retries)
	}
	if got := s.Stats().Resilience.Retries; got != 4 {
		t.Errorf("live retries = %d, want 4", got)
	}
}

// The request-size histogram feeds both the Prometheus exposition and the
// quantile gauges; before any request the gauges must read 0, not NaN
// (NaN is unrepresentable in the /debug/vars JSON rendering).
func TestRegistryRequestBytesHistogram(t *testing.T) {
	s, _ := newTestSRM(100*bundle.MB, 4*bundle.MB, 12*bundle.MB)
	reg := NewRegistry(s)

	snap := reg.Snapshot()
	for _, name := range []string{"fbcache_request_bytes_p50", "fbcache_request_bytes_p90", "fbcache_request_bytes_p99"} {
		m, ok := snap.Get(name)
		if !ok {
			t.Fatalf("metric %s missing", name)
		}
		if m.Value != 0 {
			t.Errorf("%s = %g before any request, want 0", name, m.Value)
		}
	}
	if m, ok := snap.Get("fbcache_request_bytes"); !ok || m.Count != 0 {
		t.Fatalf("fbcache_request_bytes = %+v, want empty histogram", m)
	}

	rel, _, err := s.Stage(bundle.New(0, 1)) // 16 MB request
	if err != nil {
		t.Fatal(err)
	}
	rel()

	snap = reg.Snapshot()
	m, _ := snap.Get("fbcache_request_bytes")
	if m.Count != 1 || m.Sum != float64(16*bundle.MB) {
		t.Errorf("histogram count/sum = %d/%g, want 1/%d", m.Count, m.Sum, 16*bundle.MB)
	}
	p50, _ := snap.Get("fbcache_request_bytes_p50")
	// One observation in the (8 MB, 16 MB] bucket: the estimate stays
	// inside that bucket.
	if p50.Value <= float64(8*bundle.MB) || p50.Value > float64(16*bundle.MB) {
		t.Errorf("p50 = %g, want within (8MB, 16MB]", p50.Value)
	}

	var sb strings.Builder
	if err := snap.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE fbcache_request_bytes histogram",
		`fbcache_request_bytes_bucket{le="+Inf"} 1`,
		"fbcache_request_bytes_count 1",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}
