package srm

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"fbcache/internal/bundle"
	"fbcache/internal/core"
	"fbcache/internal/policy"
	"fbcache/internal/store"
)

func newTestSRM(capacity bundle.Size, fileSizes ...bundle.Size) (*SRM, *bundle.Catalog) {
	cat := bundle.NewCatalog()
	for _, s := range fileSizes {
		cat.AddAnonymous(s)
	}
	pol := policy.WrapOptFileBundle(core.New(capacity, cat.SizeFunc(), core.Options{}))
	return New(pol, cat), cat
}

func TestStageAndRelease(t *testing.T) {
	s, _ := newTestSRM(100, 10, 20, 30)
	rel, res, err := s.Stage(bundle.New(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit || res.BytesLoaded != 30 {
		t.Errorf("res = %+v", res)
	}
	st := s.Stats()
	if st.ActiveJobs != 1 || st.PinnedBytes != 30 {
		t.Errorf("stats = %+v", st)
	}
	rel()
	rel() // idempotent
	st = s.Stats()
	if st.ActiveJobs != 0 || st.PinnedBytes != 0 {
		t.Errorf("after release: %+v", st)
	}
	// Second stage is a hit.
	rel2, res2, err := s.Stage(bundle.New(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer rel2()
	if !res2.Hit {
		t.Error("expected hit")
	}
}

func TestStageTooLarge(t *testing.T) {
	s, _ := newTestSRM(10, 20)
	_, res, err := s.Stage(bundle.New(0))
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v", err)
	}
	if !res.Unserviceable {
		t.Error("not flagged unserviceable")
	}
}

func TestStageNamesUnknownFile(t *testing.T) {
	s, cat := newTestSRM(100, 10)
	cat.Add("known", 10)
	if _, _, err := s.StageNames([]string{"known", "missing"}); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestStageBlocksUntilPinsRelease(t *testing.T) {
	// Capacity 100; two bundles of 60 can't be pinned together.
	s, _ := newTestSRM(100, 60, 60)
	rel1, _, err := s.Stage(bundle.New(0))
	if err != nil {
		t.Fatal(err)
	}
	staged2 := make(chan struct{})
	go func() {
		rel2, _, err := s.Stage(bundle.New(1))
		if err != nil {
			t.Errorf("second stage: %v", err)
			close(staged2)
			return
		}
		defer rel2()
		close(staged2)
	}()
	select {
	case <-staged2:
		t.Fatal("second stage did not block on pinned bytes")
	case <-time.After(50 * time.Millisecond):
	}
	rel1()
	select {
	case <-staged2:
	case <-time.After(2 * time.Second):
		t.Fatal("second stage never unblocked")
	}
}

func TestCloseWakesBlockedStagers(t *testing.T) {
	s, _ := newTestSRM(100, 60, 60)
	rel1, _, err := s.Stage(bundle.New(0))
	if err != nil {
		t.Fatal(err)
	}
	defer rel1()
	errc := make(chan error, 1)
	go func() {
		_, _, err := s.Stage(bundle.New(1))
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	s.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked stager never woke")
	}
}

func TestConcurrentStaging(t *testing.T) {
	// Many goroutines staging overlapping bundles; -race is the real check.
	cat := bundle.NewCatalog()
	for i := 0; i < 32; i++ {
		cat.AddAnonymous(5)
	}
	pol := policy.WrapOptFileBundle(core.New(200, cat.SizeFunc(), core.Options{}))
	s := New(pol, cat)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				b := bundle.New(
					bundle.FileID((g*7+i)%32),
					bundle.FileID((g*3+2*i)%32),
					bundle.FileID((5*g+i)%32),
				)
				rel, _, err := s.Stage(b)
				if err != nil {
					t.Errorf("stage: %v", err)
					return
				}
				_ = s.Stats() // exercise Stats under concurrency
				rel()
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.ActiveJobs != 0 || st.PinnedBytes != 0 {
		t.Errorf("leaked pins: %+v", st)
	}
	if st.Jobs != 400 {
		t.Errorf("jobs = %d, want 400", st.Jobs)
	}
	if err := pol.Cache().CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestAddFile(t *testing.T) {
	s, cat := newTestSRM(100)
	id, err := s.AddFile("henp-energy", 42)
	if err != nil {
		t.Fatal(err)
	}
	if got := cat.Size(id); got != 42 {
		t.Errorf("size = %d", got)
	}
	if _, err := s.AddFile("bad", -1); err == nil {
		t.Error("negative size accepted")
	}
}

func TestNewPanicsOnNil(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(nil, nil)
}

func TestStageWithTTLAutoReleases(t *testing.T) {
	s, _ := newTestSRM(100, 60)
	rel, _, err := s.StageWithTTL(bundle.New(0), 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s.Stats().PinnedBytes == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.Stats().PinnedBytes; got != 0 {
		t.Fatalf("lease not reclaimed: pinned = %d", got)
	}
	rel() // post-expiry release is a no-op
	if st := s.Stats(); st.ActiveJobs != 0 {
		t.Errorf("active = %d after double release", st.ActiveJobs)
	}
}

func TestStageWithTTLEarlyReleaseCancelsTimer(t *testing.T) {
	s, _ := newTestSRM(100, 60)
	rel, _, err := s.StageWithTTL(bundle.New(0), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	if st := s.Stats(); st.PinnedBytes != 0 || st.ActiveJobs != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestWaitingJobsVisible(t *testing.T) {
	s, _ := newTestSRM(100, 60, 60)
	rel, _, err := s.Stage(bundle.New(0))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		rel2, _, err := s.Stage(bundle.New(1))
		if err == nil {
			rel2()
		}
		close(done)
	}()
	deadline := time.Now().Add(2 * time.Second)
	sawWaiting := false
	for time.Now().Before(deadline) {
		if s.Stats().WaitingJobs == 1 {
			sawWaiting = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !sawWaiting {
		t.Error("WaitingJobs never reported the blocked stager")
	}
	rel()
	<-done
	if st := s.Stats(); st.WaitingJobs != 0 {
		t.Errorf("WaitingJobs = %d after unblock", st.WaitingJobs)
	}
}

func TestWithStoreMirrorsResidency(t *testing.T) {
	// A tiny cache (2 unit files) over a real on-disk store: staged files
	// exist and verify; evicted files disappear from disk.
	cat := bundle.NewCatalog()
	for i := 0; i < 4; i++ {
		cat.AddAnonymous(1)
	}
	pol := policy.WrapOptFileBundle(core.New(2, cat.SizeFunc(), core.Options{}))
	st, err := store.New(t.TempDir(), store.FetchFunc(func(f bundle.FileID) (io.ReadCloser, error) {
		return io.NopCloser(strings.NewReader(fmt.Sprintf("payload-%d", f))), nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	s := New(pol, cat).WithStore(st)

	rel, _, err := s.Stage(bundle.New(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []bundle.FileID{0, 1} {
		if !st.Contains(f) {
			t.Errorf("file %d not materialized", f)
		}
		if err := st.Verify(f); err != nil {
			t.Error(err)
		}
	}
	rc, err := s.OpenStaged(0)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(rc)
	rc.Close()
	if string(data) != "payload-0" {
		t.Errorf("content = %q", data)
	}
	rel()

	// Staging {2,3} evicts {0,1}; their bytes must vanish.
	rel2, _, err := s.Stage(bundle.New(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer rel2()
	if st.Contains(0) || st.Contains(1) {
		t.Errorf("evicted files still on disk")
	}
	if !st.Contains(2) || !st.Contains(3) {
		t.Errorf("staged files missing from disk")
	}
	if got := st.DiskUsage(); got <= 0 {
		t.Errorf("disk usage = %d", got)
	}
}

func TestOpenStagedWithoutStore(t *testing.T) {
	s, _ := newTestSRM(10, 1)
	if _, err := s.OpenStaged(0); err == nil {
		t.Error("OpenStaged without store succeeded")
	}
}
