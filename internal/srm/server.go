package srm

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"fbcache/internal/bundle"
)

// The wire protocol is newline-delimited JSON over TCP. Each request is one
// object; each response is one object. Operations:
//
//	{"op":"addfile","name":"evt-energy","size":1048576}
//	{"op":"stage","files":["evt-energy","evt-momentum"]}   -> {"ok":true,"token":"t1","hit":false,...}
//	{"op":"release","token":"t1"}
//	{"op":"stats"}
//
// Tokens are per-connection; dropping the connection releases all bundles it
// still holds (lease semantics), so a crashed client cannot pin the cache
// forever.

// Request is one protocol request.
type Request struct {
	Op    string   `json:"op"`
	Name  string   `json:"name,omitempty"`
	Size  int64    `json:"size,omitempty"`
	Files []string `json:"files,omitempty"`
	Token string   `json:"token,omitempty"`
}

// Response is one protocol response.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Retryable marks transient failures (cache saturated with pins): the
	// client should back off RetryAfterMs and resend the same request.
	Retryable    bool   `json:"retryable,omitempty"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
	Token        string `json:"token,omitempty"`

	Hit         bool        `json:"hit,omitempty"`
	BytesLoaded bundle.Size `json:"bytes_loaded,omitempty"`

	Stats *Snapshot `json:"stats,omitempty"`
}

// Server exposes an SRM over TCP.
type Server struct {
	srm *SRM
	ln  net.Listener

	mu     sync.Mutex
	closed bool              //fbvet:guardedby mu
	conns  map[net.Conn]bool //fbvet:guardedby mu
	wg     sync.WaitGroup    // one count per live connection handler; internally synchronized
}

// Serve starts a server on addr (e.g. "127.0.0.1:0") and returns once the
// listener is bound; connections are handled in background goroutines.
func Serve(s *SRM, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("srm: listen: %w", err)
	}
	srv := &Server{srm: s, ln: ln, conns: make(map[net.Conn]bool)}
	go srv.acceptLoop()
	return srv, nil
}

// Addr reports the bound address.
func (srv *Server) Addr() string { return srv.ln.Addr().String() }

// Close stops the listener and closes all connections immediately. For a
// graceful stop that lets in-flight clients finish, use Shutdown.
func (srv *Server) Close() error {
	srv.mu.Lock()
	srv.closed = true
	for c := range srv.conns {
		_ = c.Close() // per-conn close errors don't outrank the listener's
	}
	srv.mu.Unlock()
	return srv.ln.Close()
}

// Shutdown stops the server gracefully: the listener closes first (no new
// connections), then in-flight connections get up to drain to finish their
// requests and disconnect on their own; stragglers are force-closed when the
// deadline passes. Dropping a connection releases its leases either way, so
// no bundle stays pinned past Shutdown. Safe to call once.
func (srv *Server) Shutdown(drain time.Duration) error {
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		return nil
	}
	srv.mu.Unlock()

	err := srv.ln.Close() // stop accepting; acceptLoop exits
	done := make(chan struct{})
	go func() {
		srv.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(drain):
	}

	srv.mu.Lock()
	srv.closed = true
	for c := range srv.conns {
		_ = c.Close() // drain deadline passed; cut the stragglers loose
	}
	srv.mu.Unlock()
	srv.wg.Wait() // handlers release their leases on the way out
	return err
}

func (srv *Server) acceptLoop() {
	for {
		conn, err := srv.ln.Accept()
		if err != nil {
			return
		}
		srv.mu.Lock()
		if srv.closed {
			srv.mu.Unlock()
			_ = conn.Close() // racing with Close; nothing to report the error to
			return
		}
		srv.conns[conn] = true
		srv.wg.Add(1)
		srv.mu.Unlock()
		go srv.handle(conn)
	}
}

func (srv *Server) handle(conn net.Conn) {
	defer func() {
		srv.mu.Lock()
		delete(srv.conns, conn)
		srv.mu.Unlock()
		_ = conn.Close() // handler teardown; the protocol reply already went out
		srv.wg.Done()
	}()

	leases := make(map[string]Release)
	nextToken := 0
	defer func() {
		for _, rel := range leases {
			rel()
		}
	}()

	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := srv.dispatch(&req, leases, &nextToken)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (srv *Server) dispatch(req *Request, leases map[string]Release, nextToken *int) Response {
	switch req.Op {
	case "addfile":
		if req.Name == "" {
			return Response{Error: "addfile: empty name"}
		}
		if _, err := srv.srm.AddFile(req.Name, bundle.Size(req.Size)); err != nil {
			return Response{Error: err.Error()}
		}
		return Response{OK: true}

	case "stage":
		if len(req.Files) == 0 {
			return Response{Error: "stage: no files"}
		}
		rel, res, err := srv.srm.StageNames(req.Files)
		if err != nil {
			resp := Response{Error: err.Error()}
			if errors.Is(err, ErrBusy) {
				resp.Retryable = true
				resp.RetryAfterMs = srv.retryAfterHintMs()
			}
			return resp
		}
		*nextToken++
		token := fmt.Sprintf("t%d", *nextToken)
		leases[token] = rel
		return Response{OK: true, Token: token, Hit: res.Hit, BytesLoaded: res.BytesLoaded}

	case "release":
		rel, ok := leases[req.Token]
		if !ok {
			return Response{Error: fmt.Sprintf("release: unknown token %q", req.Token)}
		}
		delete(leases, req.Token)
		rel()
		return Response{OK: true}

	case "stats":
		st := srv.srm.Stats()
		return Response{OK: true, Stats: &st}

	default:
		return Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// retryAfterHintMs suggests how long a busy-rejected client should wait:
// half the staging deadline (pins turn over on that scale), floored at
// 100ms, or 500ms when no deadline is configured.
func (srv *Server) retryAfterHintMs() int64 {
	if d := srv.srm.StageTimeout(); d > 0 {
		if ms := d.Milliseconds() / 2; ms >= 100 {
			return ms
		}
		return 100
	}
	return 500
}

// Client is a minimal protocol client.
type Client struct {
	conn net.Conn // Close may use conn concurrently with a round-trip
	mu   sync.Mutex
	dec  *json.Decoder //fbvet:guardedby mu
	enc  *json.Encoder //fbvet:guardedby mu
}

// Dial connects to an SRM server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("srm: dial: %w", err)
	}
	return &Client{
		conn: conn,
		dec:  json.NewDecoder(bufio.NewReader(conn)),
		enc:  json.NewEncoder(conn),
	}, nil
}

// Close drops the connection, releasing all leases held through it.
func (c *Client) Close() error { return c.conn.Close() }

// RetryableError is a server rejection the client may retry after waiting
// RetryAfter (e.g. the cache was saturated with pinned bundles).
type RetryableError struct {
	Msg        string
	RetryAfter time.Duration
}

func (e *RetryableError) Error() string {
	return fmt.Sprintf("srm: server (retryable, retry after %v): %s", e.RetryAfter, e.Msg)
}

func (c *Client) roundTrip(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("srm: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("srm: recv: %w", err)
	}
	if resp.Error != "" {
		if resp.Retryable {
			return resp, &RetryableError{
				Msg:        resp.Error,
				RetryAfter: time.Duration(resp.RetryAfterMs) * time.Millisecond,
			}
		}
		return resp, fmt.Errorf("srm: server: %s", resp.Error)
	}
	return resp, nil
}

// AddFile registers a file with the server's catalog.
func (c *Client) AddFile(name string, size bundle.Size) error {
	_, err := c.roundTrip(Request{Op: "addfile", Name: name, Size: int64(size)})
	return err
}

// Stage stages a bundle by file names; the returned token must be released.
func (c *Client) Stage(files ...string) (token string, hit bool, loaded bundle.Size, err error) {
	resp, err := c.roundTrip(Request{Op: "stage", Files: files})
	if err != nil {
		return "", false, 0, err
	}
	return resp.Token, resp.Hit, resp.BytesLoaded, nil
}

// StageRetry is Stage with bounded client-side retries: a RetryableError
// (server busy) is retried after the server's retry-after hint, up to
// maxAttempts total tries. Any other error returns immediately.
func (c *Client) StageRetry(maxAttempts int, files ...string) (token string, hit bool, loaded bundle.Size, err error) {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	for attempt := 0; attempt < maxAttempts; attempt++ {
		token, hit, loaded, err = c.Stage(files...)
		var re *RetryableError
		if err == nil || !errors.As(err, &re) {
			return token, hit, loaded, err
		}
		if attempt+1 < maxAttempts {
			time.Sleep(re.RetryAfter)
		}
	}
	return token, hit, loaded, err
}

// Release releases a staged bundle.
func (c *Client) Release(token string) error {
	_, err := c.roundTrip(Request{Op: "release", Token: token})
	return err
}

// Stats fetches a server snapshot.
func (c *Client) Stats() (Snapshot, error) {
	resp, err := c.roundTrip(Request{Op: "stats"})
	if err != nil {
		return Snapshot{}, err
	}
	if resp.Stats == nil {
		return Snapshot{}, fmt.Errorf("srm: stats: empty response")
	}
	return *resp.Stats, nil
}
