package srm

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"fbcache/internal/bundle"
	"fbcache/internal/obs/span"
)

// The wire protocol is newline-delimited JSON over TCP. Each request is one
// object; each response is one object. Operations:
//
//	{"op":"addfile","name":"evt-energy","size":1048576}
//	{"op":"stage","files":["evt-energy","evt-momentum"]}   -> {"ok":true,"token":"t1","hit":false,...}
//	{"op":"release","token":"t1"}
//	{"op":"stats"}
//
// Tokens are per-connection; dropping the connection releases all bundles it
// still holds (lease semantics), so a crashed client cannot pin the cache
// forever.

// Request is one protocol request.
type Request struct {
	Op    string   `json:"op"`
	Name  string   `json:"name,omitempty"`
	Size  int64    `json:"size,omitempty"`
	Files []string `json:"files,omitempty"`
	Token string   `json:"token,omitempty"`

	// Req continues a request labeled upstream (zero: the server assigns a
	// fresh ID); Span is the sender's span ID, which becomes the parent of
	// the server's root span. Both are span-telemetry propagation and are
	// ignored by servers without a recorder. A span ID is only meaningful
	// to the recorder that assigned it, so the cross-process parent link is
	// a best-effort join key for offline analysis.
	Req  uint64 `json:"req,omitempty"`
	Span uint64 `json:"span,omitempty"`
}

// Response is one protocol response.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Retryable marks transient failures (cache saturated with pins): the
	// client should back off RetryAfterMs and resend the same request.
	Retryable    bool   `json:"retryable,omitempty"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
	Token        string `json:"token,omitempty"`

	Hit         bool        `json:"hit,omitempty"`
	BytesLoaded bundle.Size `json:"bytes_loaded,omitempty"`

	Stats *Snapshot `json:"stats,omitempty"`

	// Req echoes the server-assigned request ID so the client can adopt it
	// (span.Active.AdoptRequest) and offline analysis can join the client's
	// RPC span with the server's request tree. Zero when spans are off.
	Req uint64 `json:"req,omitempty"`
}

// Server exposes an SRM over TCP.
type Server struct {
	srm *SRM
	ln  net.Listener

	mu      sync.Mutex
	closed  bool              //fbvet:guardedby mu
	conns   map[net.Conn]bool //fbvet:guardedby mu
	closers []io.Closer       //fbvet:guardedby mu — see CloseOnShutdown
	flushed bool              //fbvet:guardedby mu
	wg      sync.WaitGroup    // one count per live connection handler; internally synchronized
}

// Serve starts a server on addr (e.g. "127.0.0.1:0") and returns once the
// listener is bound; connections are handled in background goroutines.
func Serve(s *SRM, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("srm: listen: %w", err)
	}
	srv := &Server{srm: s, ln: ln, conns: make(map[net.Conn]bool)}
	go srv.acceptLoop()
	return srv, nil
}

// Addr reports the bound address.
func (srv *Server) Addr() string { return srv.ln.Addr().String() }

// CloseOnShutdown registers c to be closed when the server stops — after
// the drain in Shutdown, or immediately in Close. Use it for telemetry
// sinks whose buffers must flush before the process exits: the span flight
// recorder (span.Recorder.Close flushes its JSONL dump) and any standalone
// trace sinks. Closers run once, in registration order; a registration
// after shutdown closes c immediately.
func (srv *Server) CloseOnShutdown(c io.Closer) {
	srv.mu.Lock()
	late := srv.flushed
	if !late {
		srv.closers = append(srv.closers, c)
	}
	srv.mu.Unlock()
	if late {
		_ = c.Close() // server already stopped; flush now, nobody to report to
	}
}

// closeClosers runs the registered shutdown closers exactly once, outside
// srv.mu (a closer may flush through locks of its own). The first error
// wins.
func (srv *Server) closeClosers() error {
	srv.mu.Lock()
	var toClose []io.Closer
	if !srv.flushed {
		srv.flushed = true
		toClose = srv.closers
	}
	srv.mu.Unlock()
	var first error
	for _, c := range toClose {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close stops the listener and closes all connections immediately. For a
// graceful stop that lets in-flight clients finish, use Shutdown.
func (srv *Server) Close() error {
	srv.mu.Lock()
	srv.closed = true
	for c := range srv.conns {
		_ = c.Close() // per-conn close errors don't outrank the listener's
	}
	srv.mu.Unlock()
	err := srv.ln.Close()
	// No drain: flush immediately. A handler racing this may still emit —
	// closed telemetry sinks drop such late events safely (the recorder
	// nils its dump on Close), they are not worth blocking a hard stop.
	if ferr := srv.closeClosers(); err == nil {
		err = ferr
	}
	return err
}

// Shutdown stops the server gracefully: the listener closes first (no new
// connections), then in-flight connections get up to drain to finish their
// requests and disconnect on their own; stragglers are force-closed when the
// deadline passes. Dropping a connection releases its leases either way, so
// no bundle stays pinned past Shutdown. Safe to call once.
func (srv *Server) Shutdown(drain time.Duration) error {
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		return nil
	}
	srv.mu.Unlock()

	err := srv.ln.Close() // stop accepting; acceptLoop exits
	done := make(chan struct{})
	go func() {
		srv.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(drain):
	}

	srv.mu.Lock()
	srv.closed = true
	for c := range srv.conns {
		_ = c.Close() // drain deadline passed; cut the stragglers loose
	}
	srv.mu.Unlock()
	srv.wg.Wait() // handlers release their leases on the way out
	if ferr := srv.closeClosers(); err == nil {
		err = ferr
	}
	return err
}

func (srv *Server) acceptLoop() {
	for {
		conn, err := srv.ln.Accept()
		if err != nil {
			return
		}
		srv.mu.Lock()
		if srv.closed {
			srv.mu.Unlock()
			_ = conn.Close() // racing with Close; nothing to report the error to
			return
		}
		srv.conns[conn] = true
		srv.wg.Add(1)
		srv.mu.Unlock()
		go srv.handle(conn)
	}
}

func (srv *Server) handle(conn net.Conn) {
	defer func() {
		srv.mu.Lock()
		delete(srv.conns, conn)
		srv.mu.Unlock()
		_ = conn.Close() // handler teardown; the protocol reply already went out
		srv.wg.Done()
	}()

	leases := make(map[string]Release)
	nextToken := 0
	defer func() {
		for _, rel := range leases {
			rel()
		}
	}()

	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	rec := srv.srm.Spans()
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		// Every wire request gets a root span: the wire context (if the
		// client sent one) parents it; the response echoes the request ID
		// so the client can adopt it. All free when no recorder is set.
		root := rec.StartRequest(
			span.Context{Req: span.RequestID(req.Req), Parent: span.SpanID(req.Span)},
			serverOp(req.Op))
		resp, ec := srv.dispatch(&req, leases, &nextToken, &root)
		resp.Req = uint64(root.Req())
		root.Finish(ec)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// serverOp maps a wire op to its server-side span operation. Unknown ops
// trace as OpNone, which the recorder accepts but never exports.
func serverOp(op string) span.Op {
	switch op {
	case "stage":
		return span.OpStage
	case "release":
		return span.OpRelease
	case "addfile":
		return span.OpAddFile
	case "stats":
		return span.OpStats
	}
	return span.OpNone
}

// errCode classifies a serving-path error for span accounting.
func errCode(err error) span.ErrCode {
	switch {
	case err == nil:
		return span.ErrNone
	case errors.Is(err, ErrBusy):
		return span.ErrBusy
	case errors.Is(err, ErrTooLarge):
		return span.ErrTooLarge
	case errors.Is(err, ErrClosed):
		return span.ErrClosed
	}
	return span.ErrOther
}

// dispatch serves one request under root, the request's span; the returned
// ErrCode is the request's classification for the flight recorder (the
// caller finishes root with it, after stamping the response).
func (srv *Server) dispatch(req *Request, leases map[string]Release, nextToken *int, root *span.Active) (Response, span.ErrCode) {
	switch req.Op {
	case "addfile":
		if req.Name == "" {
			return Response{Error: "addfile: empty name"}, span.ErrOther
		}
		if _, err := srv.srm.AddFile(req.Name, bundle.Size(req.Size)); err != nil {
			return Response{Error: err.Error()}, errCode(err)
		}
		return Response{OK: true}, span.ErrNone

	case "stage":
		if len(req.Files) == 0 {
			return Response{Error: "stage: no files"}, span.ErrOther
		}
		root.SetFiles(len(req.Files))
		rel, res, err := srv.srm.StageNamesCtx(root.Context(), req.Files)
		root.SetBytes(int64(res.BytesLoaded))
		root.SetHit(res.Hit)
		if err != nil {
			resp := Response{Error: err.Error()}
			if errors.Is(err, ErrBusy) {
				resp.Retryable = true
				resp.RetryAfterMs = srv.retryAfterHintMs()
			}
			return resp, errCode(err)
		}
		*nextToken++
		token := fmt.Sprintf("t%d", *nextToken)
		leases[token] = rel
		return Response{OK: true, Token: token, Hit: res.Hit, BytesLoaded: res.BytesLoaded}, span.ErrNone

	case "release":
		rel, ok := leases[req.Token]
		if !ok {
			return Response{Error: fmt.Sprintf("release: unknown token %q", req.Token)}, span.ErrOther
		}
		delete(leases, req.Token)
		rel()
		return Response{OK: true}, span.ErrNone

	case "stats":
		st := srv.srm.Stats()
		return Response{OK: true, Stats: &st}, span.ErrNone

	default:
		return Response{Error: fmt.Sprintf("unknown op %q", req.Op)}, span.ErrOther
	}
}

// retryAfterHintMs suggests how long a busy-rejected client should wait:
// half the staging deadline (pins turn over on that scale), floored at
// 100ms, or 500ms when no deadline is configured.
func (srv *Server) retryAfterHintMs() int64 {
	if d := srv.srm.StageTimeout(); d > 0 {
		if ms := d.Milliseconds() / 2; ms >= 100 {
			return ms
		}
		return 100
	}
	return 500
}

// Client is a minimal protocol client.
type Client struct {
	conn net.Conn // Close may use conn concurrently with a round-trip
	// rec records client-observed RPC spans; nil = off. Immutable after
	// WithSpans, which must precede concurrent use (like srm.WithSpans).
	rec *span.Recorder
	mu  sync.Mutex
	dec *json.Decoder //fbvet:guardedby mu
	enc *json.Encoder //fbvet:guardedby mu
}

// WithSpans attaches a flight recorder to the client: every round trip
// becomes an rpc.* request span, carrying the wire context so the server's
// tree parents under it. Call before sharing the client across goroutines.
func (c *Client) WithSpans(rec *span.Recorder) *Client {
	c.rec = rec
	return c
}

// Dial connects to an SRM server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("srm: dial: %w", err)
	}
	return &Client{
		conn: conn,
		dec:  json.NewDecoder(bufio.NewReader(conn)),
		enc:  json.NewEncoder(conn),
	}, nil
}

// Close drops the connection, releasing all leases held through it.
func (c *Client) Close() error { return c.conn.Close() }

// RetryableError is a server rejection the client may retry after waiting
// RetryAfter (e.g. the cache was saturated with pinned bundles).
type RetryableError struct {
	Msg        string
	RetryAfter time.Duration
}

func (e *RetryableError) Error() string {
	return fmt.Sprintf("srm: server (retryable, retry after %v): %s", e.RetryAfter, e.Msg)
}

// rpcOp maps a wire op to its client-side span operation.
func rpcOp(op string) span.Op {
	switch op {
	case "stage":
		return span.OpRPCStage
	case "release":
		return span.OpRPCRelease
	case "addfile":
		return span.OpRPCAddFile
	case "stats":
		return span.OpRPCStats
	}
	return span.OpNone
}

func (c *Client) roundTrip(req Request) (Response, error) {
	// The RPC span brackets the whole round trip (encode, server, decode).
	// Its span ID rides the wire so the server parents under it; the
	// response's request ID is adopted back, joining both sides' trees.
	rpc := c.rec.StartRequest(span.Context{}, rpcOp(req.Op))
	if rpc.OK() {
		req.Span = uint64(rpc.ID())
	}
	resp, err := c.doRoundTrip(req)
	if resp.Req != 0 {
		rpc.AdoptRequest(span.RequestID(resp.Req))
	}
	rpc.SetHit(resp.Hit)
	rpc.SetBytes(int64(resp.BytesLoaded))
	switch {
	case err == nil:
		rpc.Finish(span.ErrNone)
	case isRetryable(err):
		rpc.Finish(span.ErrBusy)
	default:
		rpc.Finish(span.ErrOther)
	}
	return resp, err
}

// isRetryable reports whether err wraps a RetryableError (server busy).
func isRetryable(err error) bool {
	var re *RetryableError
	return errors.As(err, &re)
}

func (c *Client) doRoundTrip(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("srm: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("srm: recv: %w", err)
	}
	if resp.Error != "" {
		if resp.Retryable {
			return resp, &RetryableError{
				Msg:        resp.Error,
				RetryAfter: time.Duration(resp.RetryAfterMs) * time.Millisecond,
			}
		}
		return resp, fmt.Errorf("srm: server: %s", resp.Error)
	}
	return resp, nil
}

// AddFile registers a file with the server's catalog.
func (c *Client) AddFile(name string, size bundle.Size) error {
	_, err := c.roundTrip(Request{Op: "addfile", Name: name, Size: int64(size)})
	return err
}

// Stage stages a bundle by file names; the returned token must be released.
func (c *Client) Stage(files ...string) (token string, hit bool, loaded bundle.Size, err error) {
	resp, err := c.roundTrip(Request{Op: "stage", Files: files})
	if err != nil {
		return "", false, 0, err
	}
	return resp.Token, resp.Hit, resp.BytesLoaded, nil
}

// StageRetry is Stage with bounded client-side retries: a RetryableError
// (server busy) is retried after the server's retry-after hint, up to
// maxAttempts total tries. Any other error returns immediately.
func (c *Client) StageRetry(maxAttempts int, files ...string) (token string, hit bool, loaded bundle.Size, err error) {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	for attempt := 0; attempt < maxAttempts; attempt++ {
		token, hit, loaded, err = c.Stage(files...)
		var re *RetryableError
		if err == nil || !errors.As(err, &re) {
			return token, hit, loaded, err
		}
		if attempt+1 < maxAttempts {
			c.rec.Retry(span.OpRPCStage)
			time.Sleep(re.RetryAfter)
		}
	}
	return token, hit, loaded, err
}

// Release releases a staged bundle.
func (c *Client) Release(token string) error {
	_, err := c.roundTrip(Request{Op: "release", Token: token})
	return err
}

// Stats fetches a server snapshot.
func (c *Client) Stats() (Snapshot, error) {
	resp, err := c.roundTrip(Request{Op: "stats"})
	if err != nil {
		return Snapshot{}, err
	}
	if resp.Stats == nil {
		return Snapshot{}, fmt.Errorf("srm: stats: empty response")
	}
	return *resp.Stats, nil
}
