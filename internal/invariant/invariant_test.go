package invariant

import (
	"strings"
	"testing"
)

// TestCheckTrueNeverPanics holds under both build modes.
func TestCheckTrueNeverPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Check(true) panicked: %v", r)
		}
	}()
	Check(true, "should not fire")
}

// TestCheckFalse pins the tag contract: with fbinvariant a false condition
// panics with a Violation carrying the formatted message; without it the
// call is a no-op. The same test file covers both `go test` and
// `go test -tags fbinvariant`.
func TestCheckFalse(t *testing.T) {
	var got any
	func() {
		defer func() { got = recover() }()
		Check(false, "used %d exceeds capacity %d", 7, 5)
	}()
	if !Enabled {
		if got != nil {
			t.Fatalf("Check(false) panicked in a disabled build: %v", got)
		}
		return
	}
	v, ok := got.(Violation)
	if !ok {
		t.Fatalf("Check(false) panicked with %T (%v), want Violation", got, got)
	}
	if !strings.Contains(v.Error(), "used 7 exceeds capacity 5") {
		t.Fatalf("Violation message = %q, want the formatted condition", v.Error())
	}
	if !strings.HasPrefix(v.Error(), "invariant violated: ") {
		t.Fatalf("Violation message %q lacks the standard prefix", v.Error())
	}
}
