// Package invariant provides build-tag-gated runtime assertions for the
// paper's machine-checkable properties: capacity is never exceeded, bundle
// admission is all-or-nothing, Landlord credits never go negative, and the
// greedy's v'(r) ranking is monotone.
//
// The checks compile to nothing in normal builds. Building with
//
//	go test -tags fbinvariant ./...
//
// turns Enabled into a true constant, and every call site guarded by
// `if invariant.Enabled { ... }` becomes live; without the tag the guard is a
// constant-false branch the compiler deletes, so hot paths pay zero cost —
// not even argument construction.
//
// A failed check panics with a Violation, never returns an error: these are
// programming errors in the simulator itself, not conditions the caller can
// handle. The fuzz harnesses (internal/solver, internal/core,
// internal/policy/landlord) run under this tag in CI so every generated
// input doubles as an invariant probe.
package invariant

import "fmt"

// Violation is the panic value of a failed check, so tests and fuzzers can
// tell invariant failures apart from unrelated panics.
type Violation struct {
	Msg string
}

func (v Violation) Error() string { return "invariant violated: " + v.Msg }

// Check panics with a Violation when cond is false. Guard call sites with
// `if invariant.Enabled` so that disabled builds skip argument evaluation
// entirely.
func Check(cond bool, format string, args ...any) {
	if !Enabled || cond {
		return
	}
	panic(Violation{Msg: fmt.Sprintf(format, args...)})
}
