//go:build fbinvariant

package invariant

// Enabled reports whether invariant checks are compiled in. This build has
// the fbinvariant tag: checks are live.
const Enabled = true
