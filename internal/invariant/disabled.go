//go:build !fbinvariant

package invariant

// Enabled reports whether invariant checks are compiled in. Without the
// fbinvariant build tag every `if invariant.Enabled` guard is a
// constant-false branch the compiler removes.
const Enabled = false
