package core

import (
	"math"

	"fbcache/internal/bundle"
	"fbcache/internal/floats"
)

// selectResortFast is an incrementally-maintained implementation of the
// resort greedy with identical semantics to selectResortReference: instead
// of re-walking every candidate's bundle on every round (O(rounds·n·b)), it
// keeps each candidate's charged size and adjusted denominator up to date
// through an inverted file→candidates index, so each round costs O(n) plus
// the size of the newly-covered files' postings (O(total postings) across
// the whole run).
//
// Equivalence with the reference implementation is enforced by the
// TestQuickFastMatchesReference property test.
func selectResortFast(cands []Candidate, capacity bundle.Size, opts SelectOptions, seeds []int) Selection {
	n := len(cands)
	size := make([]bundle.Size, n) // charged bytes if picked now
	denom := make([]float64, n)    // Σ s'(f) over not-yet-covered files
	taken := make([]bool, n)

	// skip starts as the Free set; files become skipped as they are chosen.
	skip := make(map[bundle.FileID]bool, len(opts.Free))
	for _, f := range opts.Free {
		skip[f] = true
	}

	// Inverted index over the files that can still charge candidates.
	posting := make(map[bundle.FileID][]int)
	for i, c := range cands {
		for _, f := range c.Bundle {
			if skip[f] {
				continue
			}
			d := opts.DegreeOf(f)
			if d < 1 {
				d = 1
			}
			size[i] += opts.SizeOf(f)
			denom[i] += float64(opts.SizeOf(f)) / float64(d)
			posting[f] = append(posting[f], i)
		}
	}

	chosenFiles := make(map[bundle.FileID]bool)
	var sel Selection
	budget := capacity

	cover := func(f bundle.FileID) {
		if skip[f] {
			return
		}
		skip[f] = true
		d := opts.DegreeOf(f)
		if d < 1 {
			d = 1
		}
		s := opts.SizeOf(f)
		sp := float64(s) / float64(d)
		for _, i := range posting[f] {
			size[i] -= s
			denom[i] -= sp
			if denom[i] < 0 { // FP slack
				denom[i] = 0
			}
		}
		delete(posting, f)
	}

	pick := func(i int) bool {
		if size[i] > budget {
			return false
		}
		budget -= size[i]
		sel.BudgetUsed += size[i]
		sel.Chosen = append(sel.Chosen, i)
		sel.Value += cands[i].Value
		taken[i] = true
		for _, f := range cands[i].Bundle {
			chosenFiles[f] = true
			cover(f)
		}
		return true
	}

	for _, s := range seeds {
		if s < 0 || s >= n || taken[s] {
			continue
		}
		if !pick(s) {
			return Selection{} // seed does not fit
		}
	}

	for {
		bestIdx, bestV := -1, math.Inf(-1)
		for i := range cands {
			if taken[i] || size[i] > budget {
				continue
			}
			v := math.Inf(1)
			if denom[i] > 0 {
				v = cands[i].Value / denom[i]
			}
			// Mirror selectResortReference's tolerant tie-break exactly: the
			// incremental denominators here drift from the recomputed ones by
			// ulps, and only an epsilon comparison keeps the two in lockstep.
			if bestIdx < 0 || floats.Greater(v, bestV) ||
				(floats.AlmostEqual(v, bestV) && cands[i].Value > cands[bestIdx].Value) {
				bestIdx, bestV = i, v
			}
		}
		if bestIdx < 0 {
			break
		}
		pick(bestIdx)
	}

	sel.Files = setToBundle(chosenFiles)
	return applyStepThree(sel, cands, capacity, opts, freeSet(opts.Free))
}
