package core

import (
	"math"
	"slices"

	"fbcache/internal/bundle"
)

// candState is the per-candidate row of the incremental resort greedy: the
// ranking key v'(r) = v(r)/denom, the request value, and the charged size and
// adjusted denominator kept up to date as files are covered. One combined
// struct (rather than parallel slices) keeps every heap comparison and
// repair a single-slice access the compiler can prove bounds-free.
type candState struct {
	v      float64     // v'(r), the ranking key (+Inf when denom is 0)
	value  float64     // v(r)
	denom  float64     // Σ s'(f) over not-yet-covered files
	size   bundle.Size // charged bytes if picked now
	taken  bool        // selected (or forced as a seed)
	parked bool        // popped over budget; re-enters only via repair
}

// resortState holds the scratch of the resort greedy so steady-state
// admissions allocate nothing: the candidate table, the ranking heap, the
// epoch-stamped skip and chosen-file sets, the file→candidates postings and
// the result backing slices all survive across runs (OptFileBundle keeps one
// per policy instance; SelectSeeded reuses one across all seed trials). The
// returned Selection's Chosen and Files alias this scratch — valid until the
// next run on the same state; one-shot callers (Select) use a fresh state,
// and per-admission callers consume the Selection within the admission.
type resortState struct {
	st []candState
	rh rankHeap

	skip   fileSet // Free files plus every file covered so far
	chosen fileSet // files of chosen candidates (dedupe for files)

	// posting is the inverted file→candidates index, dense by FileID;
	// touched records which entries were populated so reset truncates only
	// those. A posting list is consumed (truncated) the round its file is
	// covered — a file charges nobody twice.
	posting [][]int32
	touched []bundle.FileID

	// dirty is the per-pick repair worklist, deduped by stamping dirtyMark
	// with the pick's generation; covered collects the pick's newly-covered
	// files before their postings are walked.
	dirty     []int32
	dirtyMark []uint32
	dirtyGen  uint32
	covered   []bundle.FileID

	// chosenList and files back the returned Selection.
	chosenList []int
	files      []bundle.FileID

	// Per-run file price table, dense by FileID and epoch-stamped: when
	// fstamp[f] == fgen, fsize[f] is s(f) and fsprime[f] is s'(f) =
	// s(f)/d(f). SizeOf and DegreeOf are fixed for the duration of one run,
	// so pricing each file once turns every later charge — the dominant term
	// of build and repair walks — into two loads instead of two dynamic
	// calls and a divide. fsprime stores the exact quotient the reference's
	// adjustedDenominator computes, so sums remain bit-identical.
	fsize   []bundle.Size
	fsprime []float64
	fstamp  []uint32
	fgen    uint32
}

// reset prepares the scratch for n candidates. Stamp sets advance their
// generation, postings are truncated in place, and every backing array feeds
// the next run.
func (s *resortState) reset(n int) {
	if cap(s.st) < n {
		// Geometric growth: the candidate set grows by one per new distinct
		// request, and exact-size reallocation here would turn every early
		// admission into a fresh copy of all scratch tables.
		s.st = make([]candState, n, max(n, 2*cap(s.st)))
	}
	s.st = s.st[:n]
	for i := range s.st {
		s.st[i] = candState{}
	}
	if cap(s.dirtyMark) < n {
		s.dirtyMark = make([]uint32, n, max(n, 2*cap(s.dirtyMark)))
	}
	s.dirtyMark = s.dirtyMark[:n]
	s.dirtyGen++
	if s.dirtyGen == 0 {
		clear(s.dirtyMark)
		s.dirtyGen = 1
	} else {
		// Stale marks from a previous, longer run could collide with this
		// run's generations; runs advance the generation per pick, so start
		// each run from a clean table instead of auditing for collisions.
		clear(s.dirtyMark)
	}
	s.rh.reset(n)
	s.skip.reset()
	s.chosen.reset()
	for _, f := range s.touched {
		s.posting[f] = s.posting[f][:0]
	}
	s.touched = s.touched[:0]
	s.chosenList = s.chosenList[:0]
	s.files = s.files[:0]
	s.fgen++
	if s.fgen == 0 {
		clear(s.fstamp)
		s.fgen = 1
	}
}

// priceFile computes and stamps f's price for this run, growing the dense
// tables on first sight of a larger FileID. The hot paths test the stamp
// inline and only land here once per file per run.
func (s *resortState) priceFile(f bundle.FileID, opts SelectOptions) {
	if int(f) >= len(s.fstamp) {
		n := max(int(f)+1, 2*len(s.fstamp))
		grown := make([]uint32, n)
		copy(grown, s.fstamp)
		s.fstamp = grown
		gsz := make([]bundle.Size, n)
		copy(gsz, s.fsize)
		s.fsize = gsz
		gsp := make([]float64, n)
		copy(gsp, s.fsprime)
		s.fsprime = gsp
	}
	d := opts.DegreeOf(f)
	if d < 1 {
		d = 1
	}
	sz := opts.SizeOf(f)
	s.fsize[f] = sz
	s.fsprime[f] = float64(sz) / float64(d)
	s.fstamp[f] = s.fgen
}

// rankOf is the paper's v'(r): value over the adjusted denominator, +Inf
// when every file of the request is already covered (denominator 0).
//
//fbvet:inline computed per repair; must disappear into callers
//fbvet:noescape
func rankOf(value, denom float64) float64 {
	if denom > 0 {
		return value / denom
	}
	return math.Inf(1)
}

// chargedSizeSkip is chargedSize against the epoch-stamped skip set: the
// bytes b adds beyond files already covered or Free. It runs per candidate
// on the step-three scan and per seed, so it stays allocation- and
// bounds-check-free.
//
//fbvet:noescape
//fbvet:nobce single-slice walk over the canonical bundle
func (s *resortState) chargedSizeSkip(b bundle.Bundle, sizeOf bundle.SizeFunc) bundle.Size {
	var total bundle.Size
	for _, f := range b {
		if s.skip.has(f) {
			continue
		}
		total += sizeOf(f)
	}
	return total
}

// repair recomputes candidate j's charged size, adjusted denominator and
// ranking key from its bundle, skipping covered files. Recomputing — rather
// than incrementally subtracting the covered file's contribution — performs
// the exact float operation sequence of the reference implementation's
// adjustedDenominator, so the two implementations rank candidates on
// bit-identical keys and the heap's exact comparator is safe (DESIGN.md
// §13). The walk is O(|bundle|), paid only by candidates that actually
// shared a file with the pick.
//
//fbvet:noescape the recompute must stay register/stack only
//fbvet:nobce the index guard below is the proof BCE needs
func (s *resortState) repair(j int32, b bundle.Bundle, opts SelectOptions) {
	var denom float64
	var size bundle.Size
	fst, fsz, fsp := s.fstamp, s.fsize, s.fsprime
	gen := s.fgen
	for _, f := range b {
		if s.skip.has(f) {
			continue
		}
		// Every uncovered file of a repairable candidate was priced during
		// the build walk (skip only grows), so the stamped fast path is the
		// common case; the slow path exists only for defensive completeness.
		if fi := int(f); uint(fi) < uint(len(fst)) && uint(fi) < uint(len(fsz)) &&
			uint(fi) < uint(len(fsp)) && fst[fi] == gen {
			size += fsz[fi]
			denom += fsp[fi]
			continue
		}
		d := opts.DegreeOf(f)
		if d < 1 {
			d = 1
		}
		sz := opts.SizeOf(f)
		size += sz
		denom += float64(sz) / float64(d)
	}
	st := s.st
	ji := int(j)
	if uint(ji) >= uint(len(st)) {
		return
	}
	row := &st[ji]
	row.denom = denom
	row.size = size
	row.v = rankOf(row.value, denom)
}

// postingAdd appends candidate i to file f's posting list, growing the dense
// index on first sight of a larger FileID.
func (s *resortState) postingAdd(f bundle.FileID, i int32) {
	if int(f) >= len(s.posting) {
		grown := make([][]int32, max(int(f)+1, 2*len(s.posting)))
		copy(grown, s.posting)
		s.posting = grown
	}
	if len(s.posting[f]) == 0 {
		s.touched = append(s.touched, f)
	}
	s.posting[f] = append(s.posting[f], i)
}

// run is the incrementally-maintained implementation of the resort greedy
// with identical semantics to selectResortReference. Instead of re-ranking
// every candidate on every round (O(rounds·n·b) walks), it keeps the v'(r)
// order in an index-tracking max-heap (rankHeap) that a pick *repairs*:
// only candidates sharing a newly-covered file — found through the inverted
// file→candidates index — recompute their rank and re-sift, so a round
// costs O(log n) for the pop plus O(Σ affected·b) for the repairs, which
// telescopes to O(total postings) across the whole run.
//
// Budget handling uses parking: a popped candidate whose charged size
// exceeds the remaining budget leaves the heap ("parked"). The budget only
// ever shrinks (at picks) and a parked candidate's charged size only ever
// shrinks (at repairs), so a parked candidate can become pickable again only
// when a repair lowers its size — which is exactly when it is re-pushed.
// The first popped candidate that fits is therefore the maximum over all
// fitting candidates, i.e. the reference's argmax.
//
// Equivalence with the reference implementation is enforced by the
// TestQuickFastMatchesReference property test and the
// FuzzSelectFastMatchesReference metamorphic fuzz.
func (s *resortState) run(cands []Candidate, capacity bundle.Size, opts SelectOptions, seeds []int) Selection {
	n := len(cands)
	s.reset(n)

	// skip starts as the Free set; files become skipped as they are chosen.
	for _, f := range opts.Free {
		s.skip.add(f)
	}

	// Step 3's single-request comparison, computed up front while skip is
	// exactly the Free set (the greedy below mutates it). Same inputs, same
	// answer as running applyStepThree at the end — minus a per-run map.
	soloIdx, soloVal := -1, 0.0
	var soloSize bundle.Size
	for i := range cands {
		if cands[i].Value <= soloVal {
			continue
		}
		sz := s.chargedSizeSkip(cands[i].Bundle, opts.SizeOf)
		if sz > capacity {
			continue
		}
		soloIdx, soloVal, soloSize = i, cands[i].Value, sz
	}

	var sel Selection
	budget := capacity

	// takeFiles records a pick's file effects: dedupe into the chosen set
	// (which backs Selection.Files) and cover uncovered files into skip,
	// collecting them for posting walks.
	takeFiles := func(b bundle.Bundle) {
		for _, f := range b {
			if !s.chosen.has(f) {
				s.chosen.add(f)
				s.files = append(s.files, f)
			}
			if !s.skip.has(f) {
				s.skip.add(f)
				s.covered = append(s.covered, f)
			}
		}
	}

	// Seeds are forced in before the heap is built: each pick covers files,
	// and building the candidate table afterwards prices every remaining
	// candidate against the post-seed skip set in one walk.
	for _, sd := range seeds {
		if sd < 0 || sd >= n || s.st[sd].taken {
			continue
		}
		sz := s.chargedSizeSkip(cands[sd].Bundle, opts.SizeOf)
		if sz > budget {
			return Selection{} // seed does not fit
		}
		budget -= sz
		sel.BudgetUsed += sz
		s.chosenList = append(s.chosenList, sd)
		sel.Value += cands[sd].Value
		s.st[sd].taken = true
		s.covered = s.covered[:0]
		takeFiles(cands[sd].Bundle)
	}

	// Price every untaken candidate and build the inverted index over the
	// files that can still charge them.
	for i := range cands {
		if s.st[i].taken {
			continue
		}
		row := &s.st[i]
		row.value = cands[i].Value
		for _, f := range cands[i].Bundle {
			if s.skip.has(f) {
				continue
			}
			if int(f) >= len(s.fstamp) || s.fstamp[f] != s.fgen {
				s.priceFile(f, opts)
			}
			row.size += s.fsize[f]
			row.denom += s.fsprime[f]
			s.postingAdd(f, int32(i))
		}
		row.v = rankOf(row.value, row.denom)
	}
	s.rh.build(s.st)
	s.rh.checkOrder(s.st)

	for s.rh.len() > 0 {
		i := s.rh.popTop()
		if i < 0 {
			break
		}
		row := &s.st[i]
		if row.size > budget {
			// Over budget: park. Only a repair (shrinking its size) can
			// bring it back; the budget never grows.
			row.parked = true
			continue
		}
		budget -= row.size
		sel.BudgetUsed += row.size
		s.chosenList = append(s.chosenList, int(i))
		sel.Value += row.value
		row.taken = true

		s.covered = s.covered[:0]
		takeFiles(cands[i].Bundle)

		// Collect the candidates this pick dirtied — the union of the
		// covered files' posting lists, deduped by generation stamp — then
		// truncate those postings: a covered file charges nobody again.
		s.dirty = s.dirty[:0]
		s.dirtyGen++
		if s.dirtyGen == 0 {
			clear(s.dirtyMark)
			s.dirtyGen = 1
		}
		for _, f := range s.covered {
			pl := s.posting[f]
			for _, j := range pl {
				if uint(uint32(j)) >= uint(len(s.st)) {
					continue
				}
				if s.st[j].taken || s.dirtyMark[j] == s.dirtyGen {
					continue
				}
				s.dirtyMark[j] = s.dirtyGen
				s.dirty = append(s.dirty, j)
			}
			s.posting[f] = pl[:0]
		}

		// Repair each dirty candidate once: recompute its rank, then either
		// re-sift it in place or un-park it if it now fits.
		for _, j := range s.dirty {
			s.repair(j, cands[j].Bundle, opts)
			if s.st[j].parked {
				if s.st[j].size <= budget {
					s.st[j].parked = false
					s.rh.push(s.st, j)
				}
				continue
			}
			s.rh.fix(s.st, int(s.rh.pos[j]))
		}
		s.rh.checkOrder(s.st)
	}

	// Files: sorted, deduplicated union of the chosen candidates' files —
	// the scratch-backed equivalent of the reference's setToBundle.
	slices.Sort(s.files)
	sel.Files = bundle.Bundle(s.files)
	sel.Chosen = s.chosenList

	// Step 3: the answer is the max of the greedy set and the single
	// highest-value request that fits by itself (precomputed above). The
	// solo winner's Files alias its candidate bundle — already canonical.
	if soloIdx >= 0 && soloVal > sel.Value {
		s.chosenList = append(s.chosenList[:0], soloIdx)
		return Selection{
			Chosen:       s.chosenList,
			Files:        cands[soloIdx].Bundle,
			Value:        soloVal,
			SingleWinner: true,
			BudgetUsed:   soloSize,
		}
	}
	return sel
}

// selectResortFast runs the incremental resort greedy with fresh scratch —
// the entry point for one-shot callers; per-admission callers hold a
// resortState and call run directly.
func selectResortFast(cands []Candidate, capacity bundle.Size, opts SelectOptions, seeds []int) Selection {
	var s resortState
	return s.run(cands, capacity, opts, seeds)
}
