package core

import (
	"math"

	"fbcache/internal/bundle"
	"fbcache/internal/floats"
)

// candState is the per-candidate row of the incremental resort greedy: the
// request value plus the charged size and adjusted denominator kept up to
// date as files are covered. One combined struct (rather than parallel
// slices) keeps the argmax scan a single-slice walk the compiler can prove
// bounds-free.
type candState struct {
	value float64     // v(r)
	denom float64     // Σ s'(f) over not-yet-covered files
	size  bundle.Size // charged bytes if picked now
	taken bool
}

// resortState holds the scratch of the resort greedy so steady-state
// admissions allocate nothing: the candidate table, the skip set, the
// file→candidates postings and the chosen-file set all survive across runs
// (OptFileBundle keeps one per policy instance; SelectSeeded reuses one
// across all seed trials). Results that escape to the caller (Chosen, Files)
// are still freshly allocated per run — only internal scratch is pooled.
type resortState struct {
	st          []candState
	skip        map[bundle.FileID]bool
	posting     map[bundle.FileID][]int
	chosenFiles map[bundle.FileID]bool
}

// reset prepares the scratch for n candidates. Postings are truncated in
// place, not deleted, so their backing arrays feed the next run; the key set
// converges on the candidate file universe and stops allocating.
func (s *resortState) reset(n int) {
	if cap(s.st) < n {
		s.st = make([]candState, n)
	}
	s.st = s.st[:n]
	for i := range s.st {
		s.st[i] = candState{}
	}
	if s.skip == nil {
		s.skip = make(map[bundle.FileID]bool)
		s.posting = make(map[bundle.FileID][]int)
		s.chosenFiles = make(map[bundle.FileID]bool)
		return
	}
	clear(s.skip)
	clear(s.chosenFiles)
	for f, p := range s.posting {
		s.posting[f] = p[:0]
	}
}

// argmax returns the index of the best pickable candidate (untaken, fits in
// budget, maximum v(r)/denom with the reference's tolerant tie-break), or -1
// when no candidate fits. This is the per-round inner loop of every
// admission; the contracts below keep a refactor from re-introducing heap
// traffic or per-element bounds checks.
//
//fbvet:noescape the scan must stay register/stack only
//fbvet:nobce single-slice walk; BCE must discharge every st[i]
func (s *resortState) argmax(budget bundle.Size) int {
	best := -1
	bestV := math.Inf(-1)
	bestVal := 0.0
	st := s.st
	for i := range st {
		if st[i].taken || st[i].size > budget {
			continue
		}
		v := math.Inf(1)
		if st[i].denom > 0 {
			v = st[i].value / st[i].denom
		}
		// Mirror selectResortReference's tolerant tie-break exactly: the
		// incremental denominators here drift from the recomputed ones by
		// ulps, and only an epsilon comparison keeps the two in lockstep.
		if best < 0 || floats.Greater(v, bestV) ||
			(floats.AlmostEqual(v, bestV) && st[i].value > bestVal) {
			best, bestV, bestVal = i, v, st[i].value
		}
	}
	return best
}

// chargeCovered discounts a newly-covered file from every candidate still
// holding it: sz off the charged size, sp = s'(f) off the denominator. The
// posting list is truncated so the file charges nobody twice and its backing
// array is reusable by the next run.
//
//fbvet:noescape posting updates must not spill scratch to the heap
//fbvet:nobce the index guard below is the proof BCE needs
func (s *resortState) chargeCovered(f bundle.FileID, sz bundle.Size, sp float64) {
	st := s.st
	for _, i := range s.posting[f] {
		if uint(i) >= uint(len(st)) {
			continue
		}
		st[i].size -= sz
		st[i].denom -= sp
		if st[i].denom < 0 { // FP slack
			st[i].denom = 0
		}
	}
	s.posting[f] = s.posting[f][:0]
}

// cover marks f as selected (skip) and discounts it from all candidates.
func (s *resortState) cover(f bundle.FileID, opts SelectOptions) {
	if s.skip[f] {
		return
	}
	s.skip[f] = true
	d := opts.DegreeOf(f)
	if d < 1 {
		d = 1
	}
	sz := opts.SizeOf(f)
	s.chargeCovered(f, sz, float64(sz)/float64(d))
}

// run is an incrementally-maintained implementation of the resort greedy
// with identical semantics to selectResortReference: instead of re-walking
// every candidate's bundle on every round (O(rounds·n·b)), it keeps each
// candidate's charged size and adjusted denominator up to date through an
// inverted file→candidates index, so each round costs O(n) plus the size of
// the newly-covered files' postings (O(total postings) across the whole
// run).
//
// Equivalence with the reference implementation is enforced by the
// TestQuickFastMatchesReference property test.
func (s *resortState) run(cands []Candidate, capacity bundle.Size, opts SelectOptions, seeds []int) Selection {
	n := len(cands)
	s.reset(n)

	// skip starts as the Free set; files become skipped as they are chosen.
	for _, f := range opts.Free {
		s.skip[f] = true
	}

	// Step 3's single-request comparison, computed up front while skip is
	// exactly the Free set (the greedy below mutates it). Same inputs, same
	// answer as running applyStepThree at the end — minus a per-run map.
	soloIdx, soloVal := -1, 0.0
	var soloSize bundle.Size
	for i, c := range cands {
		if c.Value <= soloVal {
			continue
		}
		sz := chargedSize(c.Bundle, opts.SizeOf, s.skip)
		if sz > capacity {
			continue
		}
		soloIdx, soloVal, soloSize = i, c.Value, sz
	}

	// Inverted index over the files that can still charge candidates.
	for i, c := range cands {
		s.st[i].value = c.Value
		for _, f := range c.Bundle {
			if s.skip[f] {
				continue
			}
			d := opts.DegreeOf(f)
			if d < 1 {
				d = 1
			}
			sz := opts.SizeOf(f)
			s.st[i].size += sz
			s.st[i].denom += float64(sz) / float64(d)
			s.posting[f] = append(s.posting[f], i)
		}
	}

	var sel Selection
	budget := capacity

	pick := func(i int) bool {
		if s.st[i].size > budget {
			return false
		}
		budget -= s.st[i].size
		sel.BudgetUsed += s.st[i].size
		sel.Chosen = append(sel.Chosen, i)
		sel.Value += cands[i].Value
		s.st[i].taken = true
		for _, f := range cands[i].Bundle {
			s.chosenFiles[f] = true
			s.cover(f, opts)
		}
		return true
	}

	for _, sd := range seeds {
		if sd < 0 || sd >= n || s.st[sd].taken {
			continue
		}
		if !pick(sd) {
			return Selection{} // seed does not fit
		}
	}

	for {
		i := s.argmax(budget)
		if i < 0 {
			break
		}
		pick(i)
	}

	sel.Files = setToBundle(s.chosenFiles)

	// Step 3: the answer is the max of the greedy set and the single
	// highest-value request that fits by itself (precomputed above).
	if soloIdx >= 0 && soloVal > sel.Value {
		files := make(map[bundle.FileID]bool)
		for _, f := range cands[soloIdx].Bundle {
			files[f] = true
		}
		return Selection{
			Chosen:       []int{soloIdx},
			Files:        setToBundle(files),
			Value:        soloVal,
			SingleWinner: true,
			BudgetUsed:   soloSize,
		}
	}
	return sel
}

// selectResortFast runs the incremental resort greedy with fresh scratch —
// the entry point for one-shot callers; per-admission callers hold a
// resortState and call run directly.
func selectResortFast(cands []Candidate, capacity bundle.Size, opts SelectOptions, seeds []int) Selection {
	var s resortState
	return s.run(cands, capacity, opts, seeds)
}
