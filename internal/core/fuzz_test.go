package core

// Metamorphic fuzzing of the two OptCacheSelect "Note"-variant
// implementations: selectResortFast (incremental, production) must be
// indistinguishable from selectResortReference (direct transcription of the
// paper). TestQuickFastMatchesReference samples the same property with a
// fixed generator; the fuzzer lets the mutation engine hunt for the corners
// a fixed distribution misses, with every interesting input persisted to
// testdata/fuzz.
//
// Like exactInstance, the decoder only emits instances whose adjusted sizes
// s(f)/d(f) are exactly representable (small integer sizes, power-of-two
// degrees), so both implementations make bit-identical ranking decisions and
// the comparison can demand equality rather than tolerance.

import (
	"testing"

	"fbcache/internal/bundle"
)

// byteCursor deals bounded values off the fuzz input; ok=false on exhaustion.
type byteCursor struct {
	data []byte
	pos  int
}

func (c *byteCursor) next() (byte, bool) {
	if c.pos >= len(c.data) {
		return 0, false
	}
	b := c.data[c.pos]
	c.pos++
	return b, true
}

// decodeSelectInstance builds an FBC instance from fuzz bytes. ok is false
// when the input is too short to finish decoding.
func decodeSelectInstance(data []byte) (cands []Candidate, capacity bundle.Size, opts SelectOptions, seeds []int, ok bool) {
	cur := &byteCursor{data: data}
	b := cur.next

	hdr, okh := b()
	if !okh {
		return nil, 0, opts, nil, false
	}
	nFiles := 1 + int(hdr%10)

	sizes := make([]bundle.Size, nFiles)
	degrees := make([]int, nFiles)
	pows := [4]int{1, 2, 4, 8}
	for i := range sizes {
		v, okv := b()
		if !okv {
			return nil, 0, opts, nil, false
		}
		sizes[i] = bundle.Size(1 + v%8)
		degrees[i] = pows[(v>>3)%4]
	}

	nb, okn := b()
	if !okn {
		return nil, 0, opts, nil, false
	}
	n := 1 + int(nb%10)
	cands = make([]Candidate, 0, n)
	for i := 0; i < n; i++ {
		kb, okk := b()
		if !okk {
			return nil, 0, opts, nil, false
		}
		k := 1 + int(kb%4)
		ids := make([]bundle.FileID, k)
		for j := range ids {
			id, oki := b()
			if !oki {
				return nil, 0, opts, nil, false
			}
			ids[j] = bundle.FileID(int(id) % nFiles)
		}
		vb, okv := b()
		if !okv {
			return nil, 0, opts, nil, false
		}
		cands = append(cands, Candidate{Bundle: bundle.New(ids...), Value: float64(1 + vb%16)})
	}

	cb, okc := b()
	if !okc {
		return nil, 0, opts, nil, false
	}
	capacity = bundle.Size(2 + cb%32)

	var free bundle.Bundle
	fb, okf := b()
	if !okf {
		return nil, 0, opts, nil, false
	}
	if fb%2 == 1 {
		free = bundle.New(bundle.FileID(int(fb>>1) % nFiles))
	}

	sb, oks := b()
	if !oks {
		return nil, 0, opts, nil, false
	}
	if sb%3 == 0 {
		seeds = []int{int(sb>>2) % n}
	}

	opts = SelectOptions{
		SizeOf:   func(f bundle.FileID) bundle.Size { return sizes[f] },
		DegreeOf: func(f bundle.FileID) int { return degrees[f] },
		Resort:   true,
		Free:     free,
	}
	return cands, capacity, opts, seeds, true
}

// FuzzSelectFastMatchesReference asserts the central metamorphic property of
// select_fast.go: for every decodable instance, the incremental greedy and
// the reference transcription return identical selections.
func FuzzSelectFastMatchesReference(f *testing.F) {
	f.Add([]byte("0123456789abcdef0123456789"))
	f.Add([]byte("\x05\x0a\x1b\x2c\x3d\x4e\x03\x01\x00\x05\x02\x01\x02\x07\x10\x09\x00"))
	f.Add([]byte("zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz"))
	f.Fuzz(func(t *testing.T, data []byte) {
		cands, capacity, opts, seeds, ok := decodeSelectInstance(data)
		if !ok {
			t.Skip("input too short to decode")
		}
		ref := selectResortReference(cands, capacity, opts, seeds)
		fast := selectResortFast(cands, capacity, opts, seeds)
		if !sameSelection(ref, fast) {
			t.Fatalf("fast/reference divergence:\ncands=%+v cap=%d seeds=%v\nref =%+v\nfast=%+v",
				cands, capacity, seeds, ref, fast)
		}
	})
}
