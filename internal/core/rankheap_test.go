package core

import (
	"math"
	"slices"
	"testing"

	"fbcache/internal/bundle"
)

// drainOrder pops the heap dry and returns the extraction order. checkOrder
// runs before every pop so fbinvariant builds audit the heap property, the
// position table and the inline-key sync at every step of every test.
func drainOrder(t *testing.T, h *rankHeap, st []candState) []int32 {
	t.Helper()
	var out []int32
	for h.len() > 0 {
		h.checkOrder(st)
		i := h.popTop()
		if i < 0 {
			t.Fatalf("popTop returned -1 with %d slots left", h.len())
		}
		out = append(out, i)
	}
	return out
}

// referenceOrder sorts the untaken candidate indices by the exact selection
// order (v desc, value desc, index asc) — the order the heap must reproduce.
func referenceOrder(st []candState) []int32 {
	var idx []int32
	for i := range st {
		if !st[i].taken {
			idx = append(idx, int32(i))
		}
	}
	slices.SortFunc(idx, func(a, b int32) int {
		ra, rb := &st[a], &st[b]
		switch {
		case ra.v > rb.v:
			return -1
		case ra.v < rb.v:
			return 1
		case ra.value > rb.value:
			return -1
		case ra.value < rb.value:
			return 1
		}
		return int(a - b)
	})
	return idx
}

// TestRankHeapExtractionOrder drives build+popTop through the edge cases the
// exact comparator has to get right: duplicate v'(r) keys falling through to
// the value tie-break, full three-way ties falling through to index order,
// and ±Inf ranks from zero-size files (denominator 0 → v'(r) = +Inf).
func TestRankHeapExtractionOrder(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name string
		st   []candState
	}{
		{
			name: "distinct ranks",
			st: []candState{
				{v: 1, value: 1}, {v: 3, value: 1}, {v: 2, value: 1},
			},
		},
		{
			name: "duplicate v prime ties broken by value",
			st: []candState{
				{v: 2, value: 1}, {v: 2, value: 5}, {v: 2, value: 3},
				{v: 7, value: 0},
			},
		},
		{
			name: "full ties broken by index",
			st: []candState{
				{v: 4, value: 2}, {v: 4, value: 2}, {v: 4, value: 2},
				{v: 4, value: 2}, {v: 4, value: 2},
			},
		},
		{
			name: "plus infinity ranks first and ties by value then index",
			st: []candState{
				{v: 9, value: 9}, {v: inf, value: 1}, {v: inf, value: 4},
				{v: inf, value: 4}, {v: 0.5, value: 2},
			},
		},
		{
			name: "taken candidates excluded from build",
			st: []candState{
				{v: 5, value: 1, taken: true}, {v: 1, value: 1},
				{v: 3, value: 1, taken: true}, {v: 2, value: 1},
			},
		},
		{
			name: "single element",
			st:   []candState{{v: 1, value: 1}},
		},
		{
			name: "empty",
			st:   nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var h rankHeap
			h.reset(len(tc.st))
			h.build(tc.st)
			got := drainOrder(t, &h, tc.st)
			want := referenceOrder(tc.st)
			if !slices.Equal(got, want) {
				t.Errorf("extraction order = %v, want %v", got, want)
			}
			if i := h.popTop(); i != -1 {
				t.Errorf("popTop on empty heap = %d, want -1", i)
			}
		})
	}
}

// TestRankHeapRootRemoval removes the current root repeatedly while checking
// that the displaced tail's position is recorded before its sift — the stale
// position table bug class popTop specifically defends against.
func TestRankHeapRootRemoval(t *testing.T) {
	st := []candState{
		{v: 10, value: 1}, {v: 9, value: 1}, {v: 8, value: 1},
		{v: 7, value: 1}, {v: 6, value: 1}, {v: 5, value: 1},
		{v: 4, value: 1}, {v: 3, value: 1},
	}
	var h rankHeap
	h.reset(len(st))
	h.build(st)
	for want := int32(0); want < int32(len(st)); want++ {
		h.checkOrder(st)
		// The heap must report every live candidate's position correctly
		// even right after a root removal moved the tail.
		for k, e := range h.heap {
			if int(h.pos[e.idx]) != k {
				t.Fatalf("pos[%d] = %d, want %d", e.idx, h.pos[e.idx], k)
			}
		}
		if got := h.popTop(); got != want {
			t.Fatalf("popTop = %d, want %d", got, want)
		}
		if h.pos[want] != -1 {
			t.Fatalf("pos[%d] = %d after pop, want -1", want, h.pos[want])
		}
	}
}

// TestRankHeapDecayReorder rewrites every candidate's keys — a full-window
// decay, the worst case for repair — and fixes each slot in place. The heap
// must converge to the new total order no matter how the rewrite permutes it.
func TestRankHeapDecayReorder(t *testing.T) {
	cases := []struct {
		name  string
		decay func(i int, row *candState)
	}{
		{
			// Uniform decay preserves relative order; no slot should move.
			name:  "uniform decay keeps order",
			decay: func(i int, row *candState) { row.v *= 0.5; row.value *= 0.5 },
		},
		{
			// Reversing the ranks forces every slot through a full sift.
			name:  "rank reversal",
			decay: func(i int, row *candState) { row.v = -row.v },
		},
		{
			// Collapsing every rank to one value exercises the index
			// tie-break across the whole window at once.
			name:  "collapse to ties",
			decay: func(i int, row *candState) { row.v = 1; row.value = 1 },
		},
		{
			// Zero-size coverage: half the window jumps to +Inf (all files
			// covered, denominator 0), the rest decays.
			name: "partial inf promotion",
			decay: func(i int, row *candState) {
				if i%2 == 0 {
					row.v = math.Inf(1)
				} else {
					row.v *= 0.25
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := []candState{
				{v: 1, value: 10}, {v: 7, value: 9}, {v: 3, value: 8},
				{v: 9, value: 7}, {v: 5, value: 6}, {v: 2, value: 5},
				{v: 8, value: 4}, {v: 6, value: 3}, {v: 4, value: 2},
			}
			var h rankHeap
			h.reset(len(st))
			h.build(st)
			for i := range st {
				tc.decay(i, &st[i])
				h.fix(st, int(h.pos[i]))
				h.checkOrder(st)
			}
			got := drainOrder(t, &h, st)
			want := referenceOrder(st)
			if !slices.Equal(got, want) {
				t.Errorf("post-decay extraction = %v, want %v", got, want)
			}
		})
	}
}

// TestRankHeapPushAfterPark re-inserts candidates after removal — the
// parking path: a popped candidate re-enters via push when a repair shrinks
// its charged size back under budget.
func TestRankHeapPushAfterPark(t *testing.T) {
	st := []candState{
		{v: 5, value: 1}, {v: 4, value: 1}, {v: 3, value: 1}, {v: 2, value: 1},
	}
	var h rankHeap
	h.reset(len(st))
	h.build(st)
	if got := h.popTop(); got != 0 {
		t.Fatalf("first pop = %d, want 0", got)
	}
	if got := h.popTop(); got != 1 {
		t.Fatalf("second pop = %d, want 1", got)
	}
	// Candidate 1 comes back with a repaired (higher) rank; candidate 0
	// comes back unchanged and must still outrank everything.
	st[1].v = 10
	h.push(st, 1)
	h.checkOrder(st)
	h.push(st, 0)
	h.checkOrder(st)
	want := []int32{1, 0, 2, 3}
	if got := drainOrder(t, &h, st); !slices.Equal(got, want) {
		t.Errorf("extraction after re-push = %v, want %v", got, want)
	}
}

// TestFastZeroSizeFiles runs the full incremental selection over bundles of
// zero-size files: every candidate prices to denominator 0 and rank +Inf, so
// the heap must fall back to the value/index tie-breaks and still match the
// reference.
func TestFastZeroSizeFiles(t *testing.T) {
	sizes := []bundle.Size{0, 0, 4, 0}
	opts := SelectOptions{
		SizeOf:   func(f bundle.FileID) bundle.Size { return sizes[f] },
		DegreeOf: func(bundle.FileID) int { return 2 },
		Resort:   true,
	}
	cands := []Candidate{
		{Bundle: bundle.New(0, 1), Value: 3}, // all zero-size → +Inf
		{Bundle: bundle.New(1, 3), Value: 3}, // all zero-size → +Inf, same value
		{Bundle: bundle.New(0, 2), Value: 9}, // finite rank
		{Bundle: bundle.New(3), Value: 1},    // zero-size → +Inf, lowest value
	}
	for _, capacity := range []bundle.Size{0, 3, 100} {
		ref := selectResortReference(cands, capacity, opts, nil)
		fast := selectResortFast(cands, capacity, opts, nil)
		if !sameSelection(ref, fast) {
			t.Errorf("capacity %d: fast %+v != reference %+v", capacity, fast, ref)
		}
	}
}
