package core

import (
	"math"
	"math/rand"
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/history"
)

func unitSize(bundle.FileID) bundle.Size { return 1 }

func TestAdmitColdMissLoadsAll(t *testing.T) {
	p := New(10, unitSize, Options{})
	res := p.Admit(bundle.New(1, 2, 3))
	if res.Hit {
		t.Error("cold request reported hit")
	}
	if res.BytesRequested != 3 || res.BytesLoaded != 3 || res.FilesLoaded != 3 {
		t.Errorf("res = %+v", res)
	}
	if !p.Cache().Supports(bundle.New(1, 2, 3)) {
		t.Error("files not resident after admit")
	}
}

func TestAdmitRepeatIsHit(t *testing.T) {
	p := New(10, unitSize, Options{})
	p.Admit(bundle.New(1, 2))
	res := p.Admit(bundle.New(2, 1))
	if !res.Hit || res.BytesLoaded != 0 || res.FilesLoaded != 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestAdmitPartialOverlapLoadsOnlyMissing(t *testing.T) {
	p := New(10, unitSize, Options{})
	p.Admit(bundle.New(1, 2))
	res := p.Admit(bundle.New(2, 3))
	if res.Hit {
		t.Error("partial overlap reported hit")
	}
	if res.BytesLoaded != 1 || res.FilesLoaded != 1 {
		t.Errorf("res = %+v, want 1 byte / 1 file loaded", res)
	}
}

func TestAdmitUnserviceable(t *testing.T) {
	p := New(2, unitSize, Options{})
	res := p.Admit(bundle.New(1, 2, 3))
	if !res.Unserviceable {
		t.Fatal("oversized bundle not flagged")
	}
	if res.BytesLoaded != 0 || p.Cache().Len() != 0 {
		t.Error("oversized bundle caused loading")
	}
	// It still informs the history.
	if p.History().Len() != 1 {
		t.Error("unserviceable request not recorded in history")
	}
}

func TestReplacementKeepsValuableBundle(t *testing.T) {
	// Cache of 4 unit files. Make {1,2} popular, then push {3,4}, then force
	// a replacement with {5,6}: the policy must evict {3,4}, not {1,2}.
	p := New(4, unitSize, Options{})
	for i := 0; i < 5; i++ {
		p.Admit(bundle.New(1, 2))
	}
	p.Admit(bundle.New(3, 4)) // cache now {1,2,3,4}, full
	res := p.Admit(bundle.New(5, 6))
	if res.Hit {
		t.Fatal("unexpected hit")
	}
	if !p.Cache().Supports(bundle.New(1, 2)) {
		t.Errorf("popular bundle evicted; resident = %v", p.Cache().Resident())
	}
	if !p.Cache().Supports(bundle.New(5, 6)) {
		t.Error("incoming bundle not resident")
	}
	if p.Cache().Contains(3) || p.Cache().Contains(4) {
		t.Errorf("cold files kept; resident = %v", p.Cache().Resident())
	}
	// The popular bundle still hits afterwards.
	if r := p.Admit(bundle.New(1, 2)); !r.Hit {
		t.Error("popular bundle lost after replacement")
	}
}

func TestReplacementPrefersCombinationOverPopularity(t *testing.T) {
	// Paper's central claim, end to end: after observing the Fig. 3 request
	// mix, a full cache of 3 must converge to holding {f1,f3,f5} — not the
	// most popular files {f5,f6,f7}. The strict convergence claim needs the
	// paper-literal rebuild (LiteralEvict) plus prefetch of the keep-set.
	p := NewWithOptions(3, unitSize, Options{Resort: true, LiteralEvict: true, Prefetch: true})
	reqs := []bundle.Bundle{
		bundle.New(1, 3, 5), bundle.New(2, 4, 6, 7), bundle.New(1, 5),
		bundle.New(4, 6, 7), bundle.New(3, 5), bundle.New(5, 6, 7),
	}
	// Warm the history with the full mix several times. Bundles of size > 3
	// are unserviceable in a capacity-3 cache, which is fine: they still
	// count toward values/degrees exactly as Table 1 requires.
	for round := 0; round < 4; round++ {
		for _, r := range reqs {
			p.Admit(r)
		}
	}
	// Drive with a serviceable request and inspect what the policy keeps.
	p.Admit(bundle.New(1, 5))
	resident := p.Cache().Resident()
	if !resident.Equal(bundle.New(1, 3, 5)) {
		t.Errorf("cache holds %v, want {f1,f3,f5}", resident)
	}
}

func TestLiteralEvictRebuildsCache(t *testing.T) {
	p := NewWithOptions(4, unitSize, Options{Resort: true, LiteralEvict: true})
	p.Admit(bundle.New(1, 2))
	p.Admit(bundle.New(3, 4))
	// With literal eviction, every admission that triggers replace rebuilds
	// the cache to keep-set only. Admit {1,2} again: hit, no rebuild.
	res := p.Admit(bundle.New(1, 2))
	if !res.Hit {
		t.Fatal("expected hit")
	}
	// New bundle {5}: replace runs even though 0 bytes are strictly needed
	// beyond free space (LiteralEvict forces the rebuild path).
	p.Admit(bundle.New(5))
	if err := p.Cache().CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPrefetchLoadsSelectedBundles(t *testing.T) {
	p := NewWithOptions(6, unitSize, Options{Resort: true, Prefetch: true, LiteralEvict: true})
	// Make {1,2,3} very popular.
	for i := 0; i < 10; i++ {
		p.Admit(bundle.New(1, 2, 3))
	}
	// Fill with junk so {1,2,3} gets evicted...
	p.Admit(bundle.New(4, 5, 6))
	// ...then request something small. Prefetch should pull {1,2,3} back.
	res := p.Admit(bundle.New(7))
	total := res.BytesLoaded
	if total < 1 {
		t.Fatalf("res = %+v", res)
	}
	if !p.Cache().Supports(bundle.New(1, 2, 3)) {
		t.Errorf("popular bundle not prefetched; resident = %v", p.Cache().Resident())
	}
}

func TestPinnedFilesSurviveReplacement(t *testing.T) {
	p := New(4, unitSize, Options{})
	p.Admit(bundle.New(1, 2))
	if err := p.Cache().PinBundle(bundle.New(1, 2)); err != nil {
		t.Fatal(err)
	}
	p.Admit(bundle.New(3, 4))
	// Replacement needed; pinned 1,2 must stay.
	p.Admit(bundle.New(5, 6))
	if !p.Cache().Supports(bundle.New(1, 2)) {
		t.Errorf("pinned files evicted; resident = %v", p.Cache().Resident())
	}
	if !p.Cache().Supports(bundle.New(5, 6)) {
		t.Error("request not serviced")
	}
}

func TestByteAccountingMatchesCacheCounters(t *testing.T) {
	sizes := map[bundle.FileID]bundle.Size{1: 5, 2: 7, 3: 11, 4: 13, 5: 17}
	sizeOf := func(f bundle.FileID) bundle.Size { return sizes[f] }
	p := New(30, sizeOf, Options{})
	var totalLoaded bundle.Size
	for _, b := range []bundle.Bundle{
		bundle.New(1, 2), bundle.New(2, 3), bundle.New(4, 5), bundle.New(1, 2),
	} {
		totalLoaded += p.Admit(b).BytesLoaded
	}
	loaded, _, _, _ := p.Cache().Counters()
	if loaded != totalLoaded {
		t.Errorf("policy counted %d loaded bytes, cache counted %d", totalLoaded, loaded)
	}
	if err := p.Cache().CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestNamesDistinguishVariants(t *testing.T) {
	if got := New(1, unitSize, Options{}).Name(); got != "optfilebundle" {
		t.Errorf("Name = %q", got)
	}
	if got := NewWithOptions(1, unitSize, Options{}).Name(); got != "optfilebundle-literal" {
		t.Errorf("literal Name = %q", got)
	}
	if got := New(1, unitSize, Options{SeedK: 2}).Name(); got != "optfilebundle-k2" {
		t.Errorf("seeded Name = %q", got)
	}
}

func TestNilSizeFuncPanics(t *testing.T) {
	for _, ctor := range []func(){
		func() { New(1, nil, Options{}) },
		func() { NewWithOptions(1, nil, Options{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			ctor()
		}()
	}
}

// Fuzz-style stress: random workloads must never violate cache invariants,
// never exceed capacity, and hits must never load bytes.
func TestRandomWorkloadInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	sizes := make([]bundle.Size, 64)
	for i := range sizes {
		sizes[i] = bundle.Size(1 + rng.Intn(20))
	}
	sizeOf := func(f bundle.FileID) bundle.Size { return sizes[f] }
	for _, opts := range []Options{
		{},
		{LiteralEvict: true},
		{Prefetch: true},
		{History: history.Config{Truncation: history.Window, Limit: 8}},
		{SeedK: 1, History: history.Config{Truncation: history.Window, Limit: 6}},
	} {
		p := NewWithOptions(60, sizeOf, func() Options { o := opts; o.Resort = true; return o }())
		for step := 0; step < 400; step++ {
			n := 1 + rng.Intn(4)
			ids := make([]bundle.FileID, n)
			for i := range ids {
				ids[i] = bundle.FileID(rng.Intn(64))
			}
			b := bundle.New(ids...)
			res := p.Admit(b)
			if res.Hit && res.BytesLoaded != 0 {
				t.Fatalf("opts %+v: hit loaded %d bytes", opts, res.BytesLoaded)
			}
			if !res.Unserviceable && !p.Cache().Supports(b) {
				t.Fatalf("opts %+v: serviced request not resident", opts)
			}
			if err := p.Cache().CheckInvariants(); err != nil {
				t.Fatalf("opts %+v step %d: %v", opts, step, err)
			}
		}
	}
}

func BenchmarkAdmitWindowHistory(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	p := New(1000, unitSize, Options{
		History: history.Config{Truncation: history.Window, Limit: 64},
	})
	bundles := make([]bundle.Bundle, 256)
	for i := range bundles {
		ids := make([]bundle.FileID, 1+rng.Intn(5))
		for j := range ids {
			ids[j] = bundle.FileID(rng.Intn(2000))
		}
		bundles[i] = bundle.New(ids...)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Admit(bundles[i%len(bundles)])
	}
}

func TestAdmitEmptyBundleIsHit(t *testing.T) {
	p := New(10, unitSize, Options{})
	res := p.Admit(bundle.New())
	if !res.Hit || res.BytesLoaded != 0 || res.BytesRequested != 0 {
		t.Errorf("empty bundle: %+v", res)
	}
}

func TestAdmitDuplicateIDsCanonicalized(t *testing.T) {
	p := New(10, unitSize, Options{})
	res := p.Admit(bundle.New(3, 3, 3))
	if res.BytesLoaded != 1 {
		t.Errorf("duplicate IDs loaded %d bytes, want 1", res.BytesLoaded)
	}
}

func TestRelativeValueSemantics(t *testing.T) {
	p := New(10, unitSize, Options{})
	p.Admit(bundle.New(1, 2)) // resident; value 1
	// Fully resident bundle scores +Inf.
	if v := p.RelativeValue(bundle.New(1, 2)); !math.IsInf(v, 1) {
		t.Errorf("resident relative value = %v, want +Inf", v)
	}
	// Unseen, absent bundle: value 1 over adjusted sizes.
	v := p.RelativeValue(bundle.New(7, 8))
	if v <= 0 || math.IsInf(v, 0) {
		t.Errorf("cold relative value = %v", v)
	}
	// Popular bundles outrank cold ones at equal cost.
	for i := 0; i < 5; i++ {
		p.Admit(bundle.New(5, 6))
	}
	if err := p.Cache().Evict(5); err != nil {
		t.Fatal(err)
	}
	if err := p.Cache().Evict(6); err != nil {
		t.Fatal(err)
	}
	hot := p.RelativeValue(bundle.New(5, 6))
	cold := p.RelativeValue(bundle.New(7, 8))
	if hot <= cold {
		t.Errorf("hot %v not above cold %v", hot, cold)
	}
}

func TestValueDecayTracksWorkloadDrift(t *testing.T) {
	// Phase 1 makes {1,2} hot; phase 2 shifts to {3,4}. With aggressive
	// aging the history forgets phase 1 so the stale entry stops dominating
	// selection values.
	p := New(4, unitSize, Options{DecayEvery: 10, DecayFactor: 0.1})
	for i := 0; i < 50; i++ {
		p.Admit(bundle.New(1, 2))
	}
	for i := 0; i < 50; i++ {
		p.Admit(bundle.New(3, 4))
	}
	hot, okHot := p.History().Lookup(bundle.New(3, 4))
	if !okHot {
		t.Fatal("current bundle not in history")
	}
	if stale, ok := p.History().Lookup(bundle.New(1, 2)); ok && stale.Value >= hot.Value {
		t.Errorf("stale value %v >= hot value %v despite decay", stale.Value, hot.Value)
	}
	if err := p.Cache().CheckInvariants(); err != nil {
		t.Error(err)
	}
}
