package core

// The incremental OptCacheSelect ranking structure (DESIGN.md §13): an
// index-tracking binary max-heap over the candidate table, ordered by the
// exact selection order (v'(r) descending, v(r) descending, candidate index
// ascending). The greedy's per-round argmax becomes a pop; a pick *repairs*
// the heap — only candidates sharing a newly-covered file re-rank — instead
// of rescanning every candidate. The comparator is an exact total order
// (no epsilon), which is what makes a heap legal at all: a tolerant
// comparison is not transitive, so sift decisions made through it could
// disagree with each other and silently break the heap invariant.

import (
	"fbcache/internal/bundle"
	"fbcache/internal/invariant"
)

// heapItem is one heap slot: the candidate's ranking keys copied next to its
// index. Keeping the keys inline means every sift comparison touches only the
// contiguous heap array — no indirection into the candidate table on the
// hottest loop of the selection. fix re-copies the keys whenever a repair
// changes them.
type heapItem struct {
	v     float64 // v'(r), the primary key
	value float64 // v(r), the first tie-break
	idx   int32   // candidate index (final tie-break, ascending)
}

// rankHeap is an index-tracking binary max-heap of candidates: heap holds
// (key, index) slots ordered by better, and pos[i] is candidate i's heap
// position (-1 when i is taken or parked). Tracking positions is what allows
// repair: when a pick changes candidate i's rank, fix re-sifts it from pos[i]
// in O(log n) instead of rebuilding the heap.
type rankHeap struct {
	heap []heapItem
	pos  []int32
}

// reset prepares the heap for n candidates with every position cleared.
func (h *rankHeap) reset(n int) {
	h.heap = h.heap[:0]
	if cap(h.pos) < n {
		h.pos = make([]int32, n, max(n, 2*cap(h.pos)))
	}
	h.pos = h.pos[:n]
	for i := range h.pos {
		h.pos[i] = -1
	}
}

// len reports the number of candidates currently in the heap.
func (h *rankHeap) len() int { return len(h.heap) }

// better reports whether slot a outranks slot b under the exact selection
// order: higher v'(r) first, then higher v(r), then lower index. It is the
// single comparator of every sift, so it must inline and must not spill the
// slots to the heap. The comparisons are strict (> / <): fbvet's floateq
// analyzer allows ordering comparisons, and ordering is all a total order
// needs — two slots tie on a float exactly when neither strict test fires.
//
//fbvet:inline the comparator must disappear into the sift loops
//fbvet:noescape
func better(a, b *heapItem) bool {
	if a.v > b.v {
		return true
	}
	if a.v < b.v {
		return false
	}
	if a.value > b.value {
		return true
	}
	if a.value < b.value {
		return false
	}
	return a.idx < b.idx
}

// item builds candidate i's heap slot from the candidate table.
//
//fbvet:inline
//fbvet:noescape
func item(st []candState, i int32) heapItem {
	ii := int(i)
	if uint(ii) >= uint(len(st)) {
		return heapItem{idx: i}
	}
	return heapItem{v: st[ii].v, value: st[ii].value, idx: i}
}

// push inserts candidate i and sifts it up. Used when a repair brings a
// parked candidate back under budget.
//
//fbvet:noescape the insert must stay register/stack only
//fbvet:nobce the tail index is len-1 and siftUp re-proves its own accesses
func (h *rankHeap) push(st []candState, i int32) {
	h.heap = append(h.heap, item(st, i))
	h.siftUp(len(h.heap) - 1)
}

// popTop removes and returns the best-ranked candidate, or -1 when the heap
// is empty. The displaced tail element sifts down with the same comparison
// order as container/heap, so the extraction sequence is exactly the sorted
// order of the comparator.
//
//fbvet:noescape
//fbvet:nobce child indices are guarded against the new length before use
func (h *rankHeap) popTop() int32 {
	hp := h.heap
	n := len(hp) - 1
	if n < 0 {
		return -1
	}
	top := hp[0].idx
	moved := hp[n]
	hp[0] = moved
	h.heap = hp[:n]
	if ti := int(top); uint(ti) < uint(len(h.pos)) {
		h.pos[ti] = -1
	}
	if n > 0 {
		// Record the displaced tail's new root position before sifting:
		// siftDown only rewrites pos on swaps, so an already-ordered root
		// would otherwise keep its stale tail position.
		if mi := int(moved.idx); uint(mi) < uint(len(h.pos)) {
			h.pos[mi] = 0
		}
		h.siftDown(0)
	}
	return top
}

// build heapifies every untaken candidate of st in O(n): positions are
// assigned in index order, then interior nodes sift down bottom-up. The
// resulting array layout depends on the build order, but the extraction
// order does not — better is a total order, so popTop yields the same
// sequence a fresh argmax scan per round would.
func (h *rankHeap) build(st []candState) {
	h.heap = h.heap[:0]
	for i := range st {
		if st[i].taken {
			continue
		}
		h.pos[i] = int32(len(h.heap))
		h.heap = append(h.heap, item(st, int32(i)))
	}
	for k := len(h.heap)/2 - 1; k >= 0; k-- {
		h.siftDown(k)
	}
}

// fix refreshes the keys of the slot at position k from the candidate table
// and restores the heap property around it. Repairs only ever shrink a
// candidate's denominator (covered files stop charging), which raises v'(r),
// so the up-sift almost always wins — but fix tries both directions so it
// stays correct for any rank change.
//
//fbvet:noescape
//fbvet:nobce both sifts re-prove their own accesses from the guarded k
func (h *rankHeap) fix(st []candState, k int) {
	hp := h.heap
	if uint(k) >= uint(len(hp)) {
		return
	}
	hp[k] = item(st, hp[k].idx)
	h.siftUp(k)
	h.siftDown(k)
}

// siftUp moves the element at position j toward the root while it outranks
// its parent, shifting parents down (container/heap's swap order) and
// updating pos for every displaced element.
//
//fbvet:noescape the sift must stay register/stack only
//fbvet:nobce parent index (j-1)/2 < j stays provably in range
func (h *rankHeap) siftUp(j int) {
	hp, pos := h.heap, h.pos
	if uint(j) >= uint(len(hp)) {
		return
	}
	e := hp[j]
	// Unsigned indices: ju starts below len and only ever moves to the
	// parent (ju-1)/2 < ju, so every access stays in range and prove can
	// drop the bounds checks.
	ju := uint(j)
	for ju > 0 && ju < uint(len(hp)) {
		iu := (ju - 1) / 2
		p := hp[iu]
		if !better(&e, &p) {
			break
		}
		hp[ju] = p
		if pi := int(p.idx); uint(pi) < uint(len(pos)) {
			pos[pi] = int32(ju)
		}
		ju = iu
	}
	if ju < uint(len(hp)) {
		hp[ju] = e
	}
	if ei := int(e.idx); uint(ei) < uint(len(pos)) {
		pos[ei] = int32(ju)
	}
}

// siftDown moves the element at position k toward the leaves while a child
// outranks it, following container/heap's exact child-selection order
// (left child, right child only when strictly better).
//
//fbvet:noescape
//fbvet:nobce unsigned child arithmetic: 2*i+1 wraps above un, the same >= test covers it
func (h *rankHeap) siftDown(k int) {
	hp, pos := h.heap, h.pos
	un := uint(len(hp))
	if uint(k) >= un {
		return
	}
	i := uint(k)
	for {
		j1 := 2*i + 1
		if j1 >= un {
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < un && better(&hp[j2], &hp[j1]) {
			j = j2 // right child outranks left
		}
		if j >= un || i >= un {
			break // unreachable: j ∈ {j1, j2} < un and i is a previous j
		}
		if !better(&hp[j], &hp[i]) {
			break
		}
		a, b := hp[i], hp[j]
		hp[i], hp[j] = b, a
		if ai := int(a.idx); uint(ai) < uint(len(pos)) {
			pos[ai] = int32(j)
		}
		if bi := int(b.idx); uint(bi) < uint(len(pos)) {
			pos[bi] = int32(i)
		}
		i = j
	}
}

// checkOrder verifies three heap invariants — every parent outranks (or ties
// by identity with) its children, pos is the exact inverse of heap, and every
// slot's inline keys agree with the candidate table. It is free unless the
// fbinvariant build tag armed the checks; run calls it after the initial
// build and after every repair round.
func (h *rankHeap) checkOrder(st []candState) {
	if invariant.Enabled {
		for k := 1; k < len(h.heap); k++ {
			parent, child := &h.heap[(k-1)/2], &h.heap[k]
			invariant.Check(!better(child, parent),
				"core: rank heap order violated: child %d at %d outranks parent %d",
				child.idx, k, parent.idx)
		}
		for k := range h.heap {
			e := &h.heap[k]
			invariant.Check(int(h.pos[e.idx]) == k,
				"core: rank heap position table stale: pos[%d]=%d, want %d",
				e.idx, h.pos[e.idx], k)
			row := &st[e.idx]
			// Strict-comparison equality: the floateq analyzer bans ==/!= on
			// floats, and "neither strictly above nor below" is the same test.
			invariant.Check(!(e.v < row.v || e.v > row.v),
				"core: rank heap key stale: slot %d has v=%g, table has %g",
				e.idx, e.v, row.v)
		}
	}
}

// fileSet is an epoch-stamped membership set over dense FileIDs: add stamps
// the file with the current generation, reset bumps the generation so the
// whole set empties in O(1). It replaces the per-run skip/chosen maps of the
// selection scratch — no hashing on the per-file hot path, no per-run
// clearing cost, no allocation once the stamp table has grown to the file
// universe.
type fileSet struct {
	stamp []uint32
	gen   uint32
}

// reset empties the set by advancing the generation; the stamp table is
// scrubbed only on the (once per 2^32 resets) generation wrap.
func (s *fileSet) reset() {
	s.gen++
	if s.gen == 0 {
		clear(s.stamp)
		s.gen = 1
	}
}

// add inserts f, growing the stamp table on first sight of a larger ID.
func (s *fileSet) add(f bundle.FileID) {
	i := int(f)
	if i >= len(s.stamp) {
		grown := make([]uint32, max(i+1, 2*len(s.stamp)))
		copy(grown, s.stamp)
		s.stamp = grown
	}
	s.stamp[i] = s.gen
}

// has reports whether f is in the set. It sits inside every per-file walk
// of the selection (build, repair, charged-size scans), so it must inline
// and must not spill its receiver.
//
//fbvet:inline per-file membership test on every selection walk
//fbvet:noescape
func (s *fileSet) has(f bundle.FileID) bool {
	i := int(f)
	return i < len(s.stamp) && s.stamp[i] == s.gen
}
