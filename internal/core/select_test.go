package core

import (
	"math"
	"testing"

	"fbcache/internal/bundle"
)

// paperExample returns the reconstructed Fig. 3 instance: six equally likely
// requests over seven unit-size files, cache capacity 3.
//
//	r1={f1,f3,f5} r2={f2,f4,f6,f7} r3={f1,f5} r4={f4,f6,f7} r5={f3,f5} r6={f5,f6,f7}
//
// File degrees (Table 1): d(f1)=2 d(f2)=1 d(f3)=2 d(f4)=2 d(f5)=4 d(f6)=3 d(f7)=3.
func paperExample() ([]Candidate, SelectOptions) {
	cands := []Candidate{
		{Bundle: bundle.New(1, 3, 5), Value: 1},
		{Bundle: bundle.New(2, 4, 6, 7), Value: 1},
		{Bundle: bundle.New(1, 5), Value: 1},
		{Bundle: bundle.New(4, 6, 7), Value: 1},
		{Bundle: bundle.New(3, 5), Value: 1},
		{Bundle: bundle.New(5, 6, 7), Value: 1},
	}
	degrees := map[bundle.FileID]int{1: 2, 2: 1, 3: 2, 4: 2, 5: 4, 6: 3, 7: 3}
	opts := SelectOptions{
		SizeOf:   func(bundle.FileID) bundle.Size { return 1 },
		DegreeOf: func(f bundle.FileID) int { return degrees[f] },
	}
	return cands, opts
}

func TestPaperExampleResortFindsOptimal(t *testing.T) {
	cands, opts := paperExample()
	opts.Resort = true
	sel := Select(cands, 3, opts)
	if !sel.Files.Equal(bundle.New(1, 3, 5)) {
		t.Errorf("Files = %v, want {f1,f3,f5} (paper Table 2 optimum)", sel.Files)
	}
	if sel.Value != 3 {
		t.Errorf("Value = %v, want 3 (supports r1,r3,r5)", sel.Value)
	}
	if sel.SingleWinner {
		t.Error("unexpected SingleWinner")
	}
	// Request-hit probability 1/2: 3 of 6 requests supported.
	hits := 0
	for _, c := range cands {
		if c.Bundle.SubsetOf(sel.Files) {
			hits++
		}
	}
	if hits != 3 {
		t.Errorf("supported requests = %d, want 3", hits)
	}
}

func TestPaperExamplePopularityIsWorse(t *testing.T) {
	// Table 2 row 1: the three most popular files {f5,f6,f7} support only r6.
	cands, _ := paperExample()
	popular := bundle.New(5, 6, 7)
	hits := 0
	for _, c := range cands {
		if c.Bundle.SubsetOf(popular) {
			hits++
		}
	}
	if hits != 1 {
		t.Errorf("popularity cache supports %d requests, paper says 1 (r6)", hits)
	}
}

func TestPaperExampleLiteralObeysBound(t *testing.T) {
	cands, opts := paperExample()
	opts.Resort = false
	sel := Select(cands, 3, opts)
	// The literal greedy picks r3={f1,f5} (v'=4/3), then every remaining
	// request's full size exceeds the leftover budget of 1.
	if sel.Value < 1 {
		t.Fatalf("Value = %v", sel.Value)
	}
	// Theorem 4.1: value >= 1/2(1-e^{-1/d}) * OPT with OPT=3, d=4.
	bound := 0.5 * (1 - math.Exp(-0.25)) * 3
	if sel.Value < bound {
		t.Errorf("Value %v below Theorem 4.1 bound %v", sel.Value, bound)
	}
}

func TestSelectEmptyCandidates(t *testing.T) {
	opts := SelectOptions{
		SizeOf:   func(bundle.FileID) bundle.Size { return 1 },
		DegreeOf: func(bundle.FileID) int { return 1 },
		Resort:   true,
	}
	sel := Select(nil, 100, opts)
	if sel.Value != 0 || len(sel.Chosen) != 0 || sel.Files.Len() != 0 {
		t.Errorf("empty selection = %+v", sel)
	}
}

func TestSelectZeroCapacity(t *testing.T) {
	cands := []Candidate{{Bundle: bundle.New(1), Value: 5}}
	opts := SelectOptions{
		SizeOf:   func(bundle.FileID) bundle.Size { return 10 },
		DegreeOf: func(bundle.FileID) int { return 1 },
		Resort:   true,
	}
	sel := Select(cands, 0, opts)
	if sel.Value != 0 {
		t.Errorf("zero-capacity selection picked value %v", sel.Value)
	}
	// Negative capacity clamps to zero rather than panicking.
	sel = Select(cands, -5, opts)
	if sel.Value != 0 {
		t.Errorf("negative-capacity selection picked value %v", sel.Value)
	}
}

func TestSelectStepThreeSingleWinner(t *testing.T) {
	// Greedy (by relative value) prefers many small low-value requests; a
	// single huge-value request must win via Step 3.
	cands := []Candidate{
		{Bundle: bundle.New(1), Value: 1},
		{Bundle: bundle.New(2), Value: 1},
		{Bundle: bundle.New(3, 4, 5, 6, 7, 8, 9, 10), Value: 100},
	}
	sizes := func(f bundle.FileID) bundle.Size {
		if f <= 2 {
			return 1
		}
		return 1 // all unit; big request needs 8 of 8 capacity
	}
	opts := SelectOptions{
		SizeOf:   sizes,
		DegreeOf: func(bundle.FileID) int { return 1 },
		Resort:   true,
	}
	// v'(small) = 1/1 = 1; v'(big) = 100/8 = 12.5 — big is picked first here,
	// so force the greedy away from it by capacity: cap 8 fits big alone; the
	// greedy picks big first anyway. Use resort=false with a crafted ranking
	// instead: degree inflation makes the small ones rank higher.
	deg := func(f bundle.FileID) int {
		if f <= 2 {
			return 100 // tiny adjusted size -> huge relative value
		}
		return 1
	}
	opts.DegreeOf = deg
	opts.Resort = false
	sel := Select(cands, 8, opts)
	if !sel.SingleWinner {
		t.Fatalf("expected SingleWinner, got %+v", sel)
	}
	if sel.Value != 100 {
		t.Errorf("Value = %v, want 100", sel.Value)
	}
	if !sel.Files.Equal(bundle.New(3, 4, 5, 6, 7, 8, 9, 10)) {
		t.Errorf("Files = %v", sel.Files)
	}
}

func TestSelectFreeFilesCostNothing(t *testing.T) {
	cands := []Candidate{
		{Bundle: bundle.New(1, 2), Value: 1}, // f1 free -> charges only f2
	}
	opts := SelectOptions{
		SizeOf:   func(bundle.FileID) bundle.Size { return 10 },
		DegreeOf: func(bundle.FileID) int { return 1 },
		Resort:   true,
		Free:     bundle.New(1),
	}
	sel := Select(cands, 10, opts)
	if len(sel.Chosen) != 1 {
		t.Fatalf("Chosen = %v, want the one candidate", sel.Chosen)
	}
	if sel.BudgetUsed != 10 {
		t.Errorf("BudgetUsed = %d, want 10 (only f2 charged)", sel.BudgetUsed)
	}
	// Without Free the candidate needs 20 > 10 and is skipped.
	opts.Free = nil
	sel = Select(cands, 10, opts)
	if len(sel.Chosen) != 0 {
		t.Errorf("Chosen = %v, want none", sel.Chosen)
	}
}

func TestSelectSharedFilesChargedOnceInResort(t *testing.T) {
	// Two requests share f1; the resort variant charges f1 once.
	cands := []Candidate{
		{Bundle: bundle.New(1, 2), Value: 2},
		{Bundle: bundle.New(1, 3), Value: 2},
	}
	opts := SelectOptions{
		SizeOf:   func(bundle.FileID) bundle.Size { return 4 },
		DegreeOf: func(bundle.FileID) int { return 1 },
		Resort:   true,
	}
	sel := Select(cands, 12, opts)
	if len(sel.Chosen) != 2 {
		t.Fatalf("resort selected %d candidates, want 2 (shared file charged once)", len(sel.Chosen))
	}
	if sel.BudgetUsed != 12 {
		t.Errorf("BudgetUsed = %d, want 12", sel.BudgetUsed)
	}
	// The literal variant double-charges and can only fit one.
	opts.Resort = false
	sel = Select(cands, 12, opts)
	if len(sel.Chosen) != 1 {
		t.Errorf("literal selected %d candidates, want 1", len(sel.Chosen))
	}
}

func TestSelectDegreeFloor(t *testing.T) {
	// DegreeOf returning 0 must not divide by zero.
	cands := []Candidate{{Bundle: bundle.New(1), Value: 1}}
	opts := SelectOptions{
		SizeOf:   func(bundle.FileID) bundle.Size { return 2 },
		DegreeOf: func(bundle.FileID) int { return 0 },
		Resort:   true,
	}
	sel := Select(cands, 2, opts)
	if len(sel.Chosen) != 1 {
		t.Errorf("Chosen = %v", sel.Chosen)
	}
}

func TestSelectZeroSizeFiles(t *testing.T) {
	// All-zero-size bundles have +Inf relative value and zero charge; every
	// candidate must be selected without looping forever.
	cands := []Candidate{
		{Bundle: bundle.New(1), Value: 1},
		{Bundle: bundle.New(2), Value: 2},
	}
	opts := SelectOptions{
		SizeOf:   func(bundle.FileID) bundle.Size { return 0 },
		DegreeOf: func(bundle.FileID) int { return 1 },
		Resort:   true,
	}
	sel := Select(cands, 0, opts)
	if len(sel.Chosen) != 2 || sel.Value != 3 {
		t.Errorf("sel = %+v", sel)
	}
}

func TestSelectPanicsWithoutFuncs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Select(nil, 1, SelectOptions{})
}

func TestSelectSeededAtLeastGreedy(t *testing.T) {
	cands, opts := paperExample()
	opts.Resort = true
	plain := Select(cands, 3, opts)
	for k := 0; k <= 2; k++ {
		seeded := SelectSeeded(cands, 3, k, opts)
		if seeded.Value < plain.Value {
			t.Errorf("k=%d seeded value %v < greedy %v", k, seeded.Value, plain.Value)
		}
	}
}

func TestSelectSeededBeatsGreedyOnAdversarialInstance(t *testing.T) {
	// Greedy takes the high relative-value bait and strands capacity;
	// seeding with the bulky pair recovers the optimum.
	//
	// cap = 10. bait: value 3, size 3 (v' = 1). bulky: two requests of value
	// 5, size 5 each (v' = 1 each, but break ties after bait via order).
	cands := []Candidate{
		{Bundle: bundle.New(1, 2, 3), Value: 4},      // size 3, v' = 4/3 — picked first
		{Bundle: bundle.New(4, 5, 6, 7), Value: 5},   // size 4
		{Bundle: bundle.New(8, 9, 10, 11), Value: 5}, // size 4
	}
	opts := SelectOptions{
		SizeOf:   func(bundle.FileID) bundle.Size { return 1 },
		DegreeOf: func(bundle.FileID) int { return 1 },
		Resort:   true,
	}
	// Greedy: picks bait (v'=1.33), then one bulky (budget 8-3=5 -> fits one
	// size-4), total 9, no room for third (4 > 1). Value = 9.
	plain := Select(cands, 8, opts)
	if plain.Value != 9 {
		t.Fatalf("greedy value = %v, want 9 (bait+one bulky)", plain.Value)
	}
	// Optimal: both bulky = 10.
	seeded := SelectSeeded(cands, 8, 2, opts)
	if seeded.Value != 10 {
		t.Errorf("seeded k=2 value = %v, want 10", seeded.Value)
	}
}

func TestSelectionOrderDeterministic(t *testing.T) {
	cands, opts := paperExample()
	opts.Resort = true
	a := Select(cands, 3, opts)
	b := Select(cands, 3, opts)
	if a.Value != b.Value || !a.Files.Equal(b.Files) || len(a.Chosen) != len(b.Chosen) {
		t.Error("Select is nondeterministic")
	}
	for i := range a.Chosen {
		if a.Chosen[i] != b.Chosen[i] {
			t.Error("selection order differs between runs")
		}
	}
}
