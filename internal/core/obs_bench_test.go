package core

import (
	"math/rand"
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/obs"
)

// BenchmarkOptCacheSelect measures the Admit hot loop (history update,
// OptCacheSelect round, eviction) with and without a tracer installed. The
// /baseline and /nop variants must be within noise of each other: the emit
// sites are a nil-interface check when untraced and event structs are built
// only inside that guard, so the no-op tracer's cost is seven empty dynamic
// calls per admission. CI's bench-guard job runs this to keep it true.
func BenchmarkOptCacheSelect(b *testing.B) {
	run := func(b *testing.B, tracer obs.Tracer) {
		rng := rand.New(rand.NewSource(7))
		p := New(1000, unitSize, Options{})
		if tracer != nil {
			p.SetTracer(tracer)
		}
		bundles := make([]bundle.Bundle, 256)
		for i := range bundles {
			ids := make([]bundle.FileID, 1+rng.Intn(5))
			for j := range ids {
				ids[j] = bundle.FileID(rng.Intn(2000))
			}
			bundles[i] = bundle.New(ids...)
		}
		// Warm-up pass: first-time observations insert history entries
		// (Entry, bundle clone, map growth), which is one-time setup cost.
		// The benchmark measures the steady state, which must be 0 allocs/op
		// (DESIGN.md §13) — the bench gate enforces that on every PR.
		for _, bd := range bundles {
			p.Admit(bd)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Admit(bundles[i%len(bundles)])
		}
	}
	b.Run("baseline", func(b *testing.B) { run(b, nil) })
	b.Run("nop", func(b *testing.B) { run(b, obs.NopTracer{}) })
}
