package core

import (
	"math"
	"testing"

	"fbcache/internal/bundle"
)

// Zero-size files are legal (catalogs can carry placeholder or metadata-only
// entries) and must not crash or skew the v'(r) = v(r)/Σ s'(f) ranking with a
// division by zero: an all-zero-size bundle has infinite relative value and
// costs no budget, so it is always selectable. TestSelectZeroSizeFiles
// (select_test.go) covers the basic resort case; this table also pins the
// literal Algorithm 1 path and budget accounting.
func TestSelectZeroSizeTable(t *testing.T) {
	sizes := map[bundle.FileID]bundle.Size{1: 0, 2: 0, 3: 4, 4: 6}
	opts := func(resort bool) SelectOptions {
		return SelectOptions{
			SizeOf:   func(f bundle.FileID) bundle.Size { return sizes[f] },
			DegreeOf: func(bundle.FileID) int { return 1 },
			Resort:   resort,
		}
	}

	cases := []struct {
		name       string
		cands      []Candidate
		capacity   bundle.Size
		wantChosen int
		wantValue  float64
		wantBudget bundle.Size
	}{
		{
			name:       "all zero-size fits in zero capacity",
			cands:      []Candidate{{Bundle: bundle.New(1, 2), Value: 5}},
			capacity:   0,
			wantChosen: 1,
			wantValue:  5,
			wantBudget: 0,
		},
		{
			name: "zero-size candidate never displaces budget",
			cands: []Candidate{
				{Bundle: bundle.New(1), Value: 1},
				{Bundle: bundle.New(3), Value: 8},
			},
			capacity:   4,
			wantChosen: 2,
			wantValue:  9,
			wantBudget: 4,
		},
		{
			name: "mixed bundle charged only its sized files",
			cands: []Candidate{
				{Bundle: bundle.New(2, 3), Value: 6},
			},
			capacity:   4,
			wantChosen: 1,
			wantValue:  6,
			wantBudget: 4,
		},
		{
			name: "zero-size zero-capacity beats nothing-fits",
			cands: []Candidate{
				{Bundle: bundle.New(4), Value: 100},
				{Bundle: bundle.New(1), Value: 2},
			},
			capacity:   0,
			wantChosen: 1,
			wantValue:  2,
			wantBudget: 0,
		},
	}

	for _, tc := range cases {
		for _, resort := range []bool{false, true} {
			name := tc.name + "/literal"
			if resort {
				name = tc.name + "/resort"
			}
			t.Run(name, func(t *testing.T) {
				sel := Select(tc.cands, tc.capacity, opts(resort))
				if len(sel.Chosen) != tc.wantChosen || sel.Value != tc.wantValue || sel.BudgetUsed != tc.wantBudget {
					t.Fatalf("Select = {Chosen:%v Value:%g BudgetUsed:%d}, want %d chosen, value %g, budget %d",
						sel.Chosen, sel.Value, sel.BudgetUsed, tc.wantChosen, tc.wantValue, tc.wantBudget)
				}
			})
		}
	}
}

// RelativeValue on a bundle whose missing files are all zero-size must be
// +Inf (serve immediately), not NaN.
func TestRelativeValueZeroSize(t *testing.T) {
	sizes := map[bundle.FileID]bundle.Size{1: 0, 2: 0}
	p := New(10, func(f bundle.FileID) bundle.Size { return sizes[f] }, Options{})
	v := p.RelativeValue(bundle.New(1, 2))
	if !math.IsInf(v, 1) {
		t.Fatalf("RelativeValue of all-zero-size bundle = %g, want +Inf", v)
	}
	if math.IsNaN(v) {
		t.Fatal("RelativeValue produced NaN")
	}
}
