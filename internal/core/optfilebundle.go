package core

import (
	"fmt"
	"math"
	"slices"

	"fbcache/internal/bundle"
	"fbcache/internal/cache"
	"fbcache/internal/floats"
	"fbcache/internal/history"
	"fbcache/internal/invariant"
	"fbcache/internal/obs"
)

// Options configures an OptFileBundle policy instance.
type Options struct {
	// History configures the L(R) structure (truncation, limits).
	History history.Config
	// Resort enables the "Note" variant of OptCacheSelect (default in all
	// constructors; the literal Algorithm 1 is used when false).
	Resort bool
	// Prefetch enables the literal Algorithm 2 Step 3: files of selected
	// historical requests that are not resident are fetched eagerly
	// (F(Opt) \ F(C)). When false (the default), the selection only decides
	// which resident files to keep — no speculative traffic.
	Prefetch bool
	// SeedK, when > 0, uses SelectSeeded with this k on every replacement
	// decision. Expensive; intended for small candidate sets and the bound
	// ablation.
	SeedK int
	// LiteralEvict evicts every resident file outside the keep-set even when
	// the incoming request would fit without those evictions (the literal
	// cache rebuild of Algorithm 2). When false (default) eviction is lazy:
	// non-keep files leave only until enough space is free, lowest file
	// degree first.
	LiteralEvict bool
	// DecayEvery, when > 0, ages the history every N admissions by
	// multiplying all request values by DecayFactor (default 0.5), dropping
	// entries below 0.01. The paper's counters never forget; aging lets a
	// long-running cache follow workload drift.
	DecayEvery  int
	DecayFactor float64
}

// Result reports what one Admit call did.
type Result struct {
	// Hit is the request-hit indicator: every file was already resident.
	Hit bool
	// BytesRequested is the total size of the request's bundle.
	BytesRequested bundle.Size
	// BytesLoaded is the miss traffic this admission caused (including
	// prefetch traffic when enabled). The byte miss ratio of a run is
	// Σ BytesLoaded / Σ BytesRequested.
	BytesLoaded bundle.Size
	// FilesLoaded and FilesEvicted count file movements.
	FilesLoaded  int
	FilesEvicted int
	// Loaded lists the files fetched by this admission (demand + prefetch),
	// so timed simulators can schedule the actual transfers. It aliases
	// per-policy scratch: valid until the next Admit on the same policy —
	// callers that retain it across admissions must Clone (the SRM layer
	// does exactly that before releasing its lock).
	Loaded bundle.Bundle
	// Evicted lists the files this admission pushed out, so store-backed
	// deployments can delete the bytes. Same scratch lifetime as Loaded.
	Evicted bundle.Bundle
	// Unserviceable marks requests whose bundle exceeds the cache capacity;
	// no loading is attempted for them.
	Unserviceable bool
}

// OptFileBundle is the paper's replacement policy (Algorithm 2) bound to a
// cache and a request history. Create instances with New; the zero value is
// not usable.
type OptFileBundle struct {
	cache  *cache.Cache
	hist   *history.History
	sizeOf bundle.SizeFunc
	opts   Options

	// Per-Admit scratch, written by replace. OptFileBundle is
	// single-goroutine by contract (the SRM layer serializes).
	lastEvicted      int
	lastEvictedFiles []bundle.FileID
	prefetchBytes    bundle.Size
	prefetchFiles    int
	prefetched       []bundle.FileID
	admissions       int64

	// Selection and eviction scratch reused across admissions, so the
	// steady-state Admit path allocates nothing (DESIGN.md §13); the perf
	// contracts on the selector internals keep it that way.
	selScratch      resortState
	candScratch     []Candidate
	entriesScratch  []*history.Entry
	missScratch     bundle.Bundle
	loadedScratch   []bundle.FileID
	keepScratch     fileSet
	residentScratch bundle.Bundle
	evictScratch    bundle.Bundle

	// tracer, when non-nil, receives an AdmitEvent per Admit and a
	// SelectRoundEvent per OptCacheSelect run, stamped with the admission
	// ordinal (the policy has no clock).
	tracer obs.Tracer
}

// New builds an OptFileBundle policy over a fresh cache of the given
// capacity. sizeOf must report the size of every file that can be requested.
func New(capacity bundle.Size, sizeOf bundle.SizeFunc, opts Options) *OptFileBundle {
	if sizeOf == nil {
		panic("core: nil SizeFunc")
	}
	opts.Resort = true // constructors default to the practical variant
	return &OptFileBundle{
		cache:  cache.New(capacity),
		hist:   history.New(opts.History),
		sizeOf: sizeOf,
		opts:   opts,
	}
}

// NewWithOptions is like New but honours opts.Resort as given, allowing the
// literal Algorithm 1 greedy to be selected for ablation studies.
func NewWithOptions(capacity bundle.Size, sizeOf bundle.SizeFunc, opts Options) *OptFileBundle {
	if sizeOf == nil {
		panic("core: nil SizeFunc")
	}
	return &OptFileBundle{
		cache:  cache.New(capacity),
		hist:   history.New(opts.History),
		sizeOf: sizeOf,
		opts:   opts,
	}
}

// Name identifies the policy in experiment output.
func (p *OptFileBundle) Name() string {
	if p.opts.SeedK > 0 {
		return fmt.Sprintf("optfilebundle-k%d", p.opts.SeedK)
	}
	if !p.opts.Resort {
		return "optfilebundle-literal"
	}
	return "optfilebundle"
}

// Cache exposes the underlying cache (read-mostly; used by the SRM layer and
// tests).
func (p *OptFileBundle) Cache() *cache.Cache { return p.cache }

// SetTracer installs t on the policy and its cache (nil disables tracing).
// The policy emits Admit and SelectRound events; the cache emits per-file
// Load and Evict events.
func (p *OptFileBundle) SetTracer(t obs.Tracer) {
	p.tracer = t
	p.cache.SetTracer(t)
}

// emitAdmit publishes one AdmitEvent for res, stamped with the admission
// ordinal (Admit bumps it via maybeDecay before returning).
func (p *OptFileBundle) emitAdmit(res Result, files int) {
	p.tracer.Admit(obs.AdmitEvent{
		At:             float64(p.admissions),
		Policy:         p.Name(),
		Files:          files,
		BytesRequested: int64(res.BytesRequested),
		BytesLoaded:    int64(res.BytesLoaded),
		FilesLoaded:    res.FilesLoaded,
		FilesEvicted:   res.FilesEvicted,
		Hit:            res.Hit,
		Unserviceable:  res.Unserviceable,
	})
}

// History exposes the underlying L(R) structure.
func (p *OptFileBundle) History() *history.History { return p.hist }

// Admit processes one job request (Algorithm 2). On a request-hit nothing
// moves. On a miss the policy reserves space for the bundle, re-selects the
// most valuable historical requests for the remaining capacity via
// OptCacheSelect, evicts accordingly, and loads the missing files.
func (p *OptFileBundle) Admit(b bundle.Bundle) Result {
	res := Result{BytesRequested: b.TotalSize(p.sizeOf)}

	if res.BytesRequested > p.cache.Capacity() {
		res.Unserviceable = true
		p.hist.Observe(b) // the request still informs popularity
		p.maybeDecay()
		if p.tracer != nil {
			p.emitAdmit(res, len(b))
		}
		return res
	}

	if p.cache.Supports(b) {
		res.Hit = true
		p.hist.Observe(b)
		p.maybeDecay()
		if p.tracer != nil {
			p.emitAdmit(res, len(b))
		}
		return res
	}

	p.missScratch = p.cache.MissingAppend(p.missScratch[:0], b)
	missing := p.missScratch
	needed := missing.TotalSize(p.sizeOf)

	// Reset the per-admission scratch here, not in replace(): a miss with
	// enough free space skips replace entirely, and without the reset it
	// would report the previous admission's evictions and prefetches.
	p.lastEvicted = 0
	p.lastEvictedFiles = p.lastEvictedFiles[:0]
	p.prefetchBytes = 0
	p.prefetchFiles = 0
	p.prefetched = p.prefetched[:0]
	p.loadedScratch = p.loadedScratch[:0]

	if p.cache.Free() < needed || p.opts.LiteralEvict {
		p.replace(b, needed)
	}

	for _, f := range missing {
		if err := p.cache.Insert(f, p.sizeOf(f)); err != nil {
			// Space was sized above; an error here means pinned files block
			// the replacement. Surface loudly: the SRM layer must serialize.
			panic(fmt.Sprintf("core: load after replacement failed: %v", err))
		}
		res.FilesLoaded++
		res.BytesLoaded += p.sizeOf(f)
		p.loadedScratch = append(p.loadedScratch, f)
	}
	res.FilesEvicted = p.lastEvicted
	// FromSlice canonicalizes the scratch in place — no copy; Result
	// documents the aliasing.
	res.Evicted = bundle.FromSlice(p.lastEvictedFiles)

	if p.opts.Prefetch {
		res.BytesLoaded += p.prefetchBytes
		res.FilesLoaded += p.prefetchFiles
		p.loadedScratch = append(p.loadedScratch, p.prefetched...)
	}
	res.Loaded = bundle.FromSlice(p.loadedScratch)

	if invariant.Enabled {
		// All-or-nothing admission: a serviceable miss ends with the whole
		// bundle resident — Algorithm 2 never leaves a partial request behind.
		invariant.Check(p.cache.Supports(b),
			"core: Admit left bundle %v partially resident (missing %v)",
			b, p.cache.Missing(b))
		invariant.Check(p.cache.Used() <= p.cache.Capacity(),
			"core: Admit overfilled the cache: used %d > capacity %d",
			p.cache.Used(), p.cache.Capacity())
	}

	// Step 4: update L(R) after the replacement decision, as printed.
	p.hist.Observe(b)
	p.maybeDecay()
	if p.tracer != nil {
		p.emitAdmit(res, len(b))
	}
	return res
}

// maybeDecay ages the history on the configured cadence.
func (p *OptFileBundle) maybeDecay() {
	p.admissions++
	if p.opts.DecayEvery <= 0 || p.admissions%int64(p.opts.DecayEvery) != 0 {
		return
	}
	factor := p.opts.DecayFactor
	if factor <= 0 || factor > 1 {
		factor = 0.5
	}
	p.hist.Decay(factor, 0.01)
}

// replace frees space for an incoming bundle b whose missing files need
// `needed` bytes, using OptCacheSelect to decide what to keep.
func (p *OptFileBundle) replace(b bundle.Bundle, needed bundle.Size) {
	sel := p.runSelection(b)

	keep := &p.keepScratch
	keep.reset()
	for _, f := range sel.Files {
		keep.add(f)
	}
	for _, f := range b {
		keep.add(f)
	}

	p.residentScratch = p.cache.ResidentAppend(p.residentScratch[:0])
	p.evictScratch = p.evictScratch[:0]
	evictable := p.evictScratch
	for _, f := range p.residentScratch {
		if !keep.has(f) && !p.cache.Pinned(f) {
			evictable = append(evictable, f)
		}
	}
	p.evictScratch = evictable

	if p.opts.LiteralEvict {
		for _, f := range evictable {
			if err := p.cache.Evict(f); err == nil {
				p.lastEvicted++
				p.lastEvictedFiles = append(p.lastEvictedFiles, f)
			}
		}
	} else {
		p.evictLazy(evictable, needed)
	}

	// If pinned non-keep files block the space we need, shed unpinned
	// keep-set files (cheapest first) as a last resort.
	if p.cache.Free() < needed {
		p.shedKeep(b, needed)
	}

	if p.opts.Prefetch {
		for _, f := range sel.Files {
			// Files of the incoming bundle are demand-loaded by Admit;
			// prefetch only pulls other selected files.
			if b.Contains(f) || p.cache.Contains(f) {
				continue
			}
			size := p.sizeOf(f)
			// Never consume the space reserved for the incoming bundle's
			// missing files.
			if p.cache.Free()-size < needed {
				continue
			}
			if err := p.cache.Insert(f, size); err == nil {
				p.prefetchBytes += size
				p.prefetchFiles++
				p.prefetched = append(p.prefetched, f)
			}
		}
	}
}

// runSelection converts the (possibly truncated) history candidates into
// Select inputs and runs OptCacheSelect with the incoming bundle's space
// reserved (Free = b, capacity reduced by s(F(b))).
func (p *OptFileBundle) runSelection(b bundle.Bundle) Selection {
	p.entriesScratch = p.hist.CandidatesAppend(p.entriesScratch[:0])
	entries := p.entriesScratch
	if p.opts.History.Truncation == history.CacheResident {
		// §5.3: offer only the requests the cache currently supports (plus
		// whatever overlaps the incoming bundle, which is Free anyway).
		// Degrees and values still come from the global history.
		filtered := entries[:0]
		for _, e := range entries {
			if p.cache.Supports(e.Bundle.Minus(b)) {
				filtered = append(filtered, e)
			}
		}
		entries = filtered
	}
	cands := p.candScratch[:0]
	for _, e := range entries {
		cands = append(cands, Candidate{Bundle: e.Bundle, Value: e.Value})
	}
	p.candScratch = cands
	opts := SelectOptions{
		SizeOf:   p.sizeOf,
		DegreeOf: p.hist.CandidateDegreeFunc(entries),
		Resort:   p.opts.Resort,
		Free:     b,
	}
	budget := p.cache.Capacity() - b.TotalSize(p.sizeOf)
	var sel Selection
	if p.opts.SeedK > 0 {
		sel = selectSeededScratch(&p.selScratch, cands, budget, p.opts.SeedK, opts)
	} else {
		sel = selectScratch(&p.selScratch, cands, budget, opts)
	}
	if p.tracer != nil {
		// maybeDecay has not bumped the ordinal yet for this admission;
		// +1 keeps the round and its AdmitEvent on the same stamp.
		p.tracer.SelectRound(obs.SelectRoundEvent{
			At:           float64(p.admissions + 1),
			Candidates:   len(cands),
			Chosen:       len(sel.Chosen),
			Files:        len(sel.Files),
			Value:        sel.Value,
			Budget:       int64(budget),
			BudgetUsed:   int64(sel.BudgetUsed),
			SingleWinner: sel.SingleWinner,
		})
	}
	return sel
}

// RelativeValue scores a pending request for queue scheduling (§5.2
// "Incoming Queue Length", §5.3 queued experiments): the request's history
// value (1 if unseen) divided by the adjusted sizes of its files *not yet in
// the cache*. Fully resident requests score +Inf, so a queue drained in
// decreasing RelativeValue order serves request-hits first, then the
// cheapest valuable misses — exactly the paper's "serve the request of
// highest relative value in the queue" rule.
//
// It runs once per queued request per drain decision, so it carries perf
// contracts: no heap traffic, no residual bounds checks.
//
//fbvet:noescape
//fbvet:nobce
func (p *OptFileBundle) RelativeValue(b bundle.Bundle) float64 {
	value := 1.0
	if e, ok := p.hist.Lookup(b); ok {
		value = e.Value
	}
	deg := p.hist.DegreeFunc()
	denom := 0.0
	for _, f := range b {
		if p.cache.Contains(f) {
			continue
		}
		denom += float64(p.sizeOf(f)) / float64(deg(f))
	}
	if floats.AlmostZero(denom) {
		return math.Inf(1)
	}
	return value / denom
}

// evictLazy removes files from evictable, lowest degree first, until the
// cache can absorb `needed` bytes.
func (p *OptFileBundle) evictLazy(evictable bundle.Bundle, needed bundle.Size) {
	if p.cache.Free() >= needed {
		return
	}
	deg := p.hist.DegreeFunc()
	// slices.SortFunc, not sort.Slice: the reflection-based swapper
	// allocates per eviction round. The (degree, ID) key is a total order,
	// so the sort's instability cannot introduce nondeterminism.
	slices.SortFunc(evictable, func(a, b bundle.FileID) int {
		da, db := deg(a), deg(b)
		switch {
		case da < db:
			return -1
		case da > db:
			return 1
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	})
	for _, f := range evictable {
		if p.cache.Free() >= needed {
			return
		}
		if err := p.cache.Evict(f); err == nil {
			p.lastEvicted++
			p.lastEvictedFiles = append(p.lastEvictedFiles, f)
		}
	}
}

// shedKeep evicts unpinned keep-set files not required by b, smallest value
// first, until `needed` bytes are free. This only triggers when pins
// prevented normal replacement.
func (p *OptFileBundle) shedKeep(b bundle.Bundle, needed bundle.Size) {
	p.residentScratch = p.cache.ResidentAppend(p.residentScratch[:0])
	resident := p.residentScratch
	deg := p.hist.DegreeFunc()
	// The ID tie-break makes the (degree, ID) key a total order, so the
	// shed sequence is deterministic even under equal degrees.
	slices.SortFunc(resident, func(a, b bundle.FileID) int {
		da, db := deg(a), deg(b)
		switch {
		case da < db:
			return -1
		case da > db:
			return 1
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	})
	for _, f := range resident {
		if p.cache.Free() >= needed {
			return
		}
		if b.Contains(f) || p.cache.Pinned(f) {
			continue
		}
		if err := p.cache.Evict(f); err == nil {
			p.lastEvicted++
			p.lastEvictedFiles = append(p.lastEvictedFiles, f)
		}
	}
}
