// Package core implements the paper's primary contribution: the
// OptCacheSelect greedy selection heuristic (Algorithm 1) and the
// OptFileBundle cache replacement policy (Algorithm 2).
//
// OptCacheSelect solves (approximately) the File-Bundle Caching problem:
// given requests r with values v(r) over files f with sizes s(f), pick a
// subset of requests of maximum total value whose files fit in a cache of
// size s(C). The greedy ranks requests by adjusted relative value
//
//	v'(r) = v(r) / Σ_{f ∈ F(r)} s'(f),   s'(f) = s(f)/d(f)
//
// where d(f) is the number of distinct requests needing f. Theorem 4.1 in
// the paper shows the greedy (with the Step-3 single-request guard) achieves
// at least ½(1 − e^{−1/d}) of the optimal value, and the k-seeded variant
// (SelectSeeded) achieves (1 − e^{−1/d}).
package core

import (
	"math"
	"sort"

	"fbcache/internal/bundle"
	"fbcache/internal/invariant"
)

// Candidate is one request offered to the selection algorithm.
type Candidate struct {
	Bundle bundle.Bundle
	Value  float64
}

// SelectOptions configures OptCacheSelect.
type SelectOptions struct {
	// SizeOf reports file sizes. Required.
	SizeOf bundle.SizeFunc
	// DegreeOf reports d(f), the number of distinct requests using f.
	// Values below 1 are clamped to 1. Required.
	DegreeOf func(bundle.FileID) int
	// Resort enables the paper's "Note" improvement: after each pick, files
	// already selected cost zero and the remaining candidates re-rank.
	// When false the literal Algorithm 1 runs: a single static ranking, each
	// request charged its full bundle size (this is the variant analyzed in
	// Appendix A).
	Resort bool
	// Free lists files that occupy no selection budget (their space is
	// reserved elsewhere — OptFileBundle reserves the incoming request's
	// bundle this way).
	Free bundle.Bundle
}

// Selection is the outcome of OptCacheSelect.
type Selection struct {
	// Chosen holds indices into the candidate slice, in selection order.
	Chosen []int
	// Files is the union of the chosen candidates' files (Free files
	// included when they appear in chosen bundles).
	Files bundle.Bundle
	// Value is the total value of the chosen candidates.
	Value float64
	// SingleWinner reports that Step 3 replaced the greedy set with the
	// single highest-value request.
	SingleWinner bool
	// BudgetUsed is the cache space charged against capacity.
	BudgetUsed bundle.Size
}

// Select runs OptCacheSelect over cands with the given capacity.
// Candidates whose charged size exceeds the capacity are skipped, exactly as
// Step 2 skips requests with insufficient space.
func Select(cands []Candidate, capacity bundle.Size, opts SelectOptions) Selection {
	var s resortState
	return selectScratch(&s, cands, capacity, opts)
}

// selectScratch is Select against caller-held scratch, so per-admission
// callers (OptFileBundle) pay no selector allocations in steady state.
func selectScratch(s *resortState, cands []Candidate, capacity bundle.Size, opts SelectOptions) Selection {
	if opts.SizeOf == nil || opts.DegreeOf == nil {
		panic("core: SelectOptions requires SizeOf and DegreeOf")
	}
	if capacity < 0 {
		capacity = 0
	}
	var sel Selection
	if opts.Resort {
		sel = s.run(cands, capacity, opts, nil)
	} else {
		sel = selectLiteral(cands, capacity, opts)
	}
	if invariant.Enabled {
		invariant.Check(sel.BudgetUsed <= capacity,
			"core: selection charged %d bytes against capacity %d",
			sel.BudgetUsed, capacity)
	}
	return sel
}

// SelectSeeded implements the improved-bound variant sketched at the end of
// §4: every subset of up to k candidates is tried as a forced seed, the
// greedy completes each partial solution, and the best candidate solution
// wins. k = 1 or 2 gives the (1 − e^{−1/d}) bound at polynomial cost.
// k <= 0 degenerates to Select. The seeded variant always uses the resort
// greedy for completion.
func SelectSeeded(cands []Candidate, capacity bundle.Size, k int, opts SelectOptions) Selection {
	var s resortState
	return selectSeededScratch(&s, cands, capacity, k, opts)
}

// selectSeededScratch is SelectSeeded against caller-held scratch; one
// resortState serves the unseeded baseline and every seed trial.
func selectSeededScratch(s *resortState, cands []Candidate, capacity bundle.Size, k int, opts SelectOptions) Selection {
	best := cloneSelection(selectScratch(s, cands, capacity, opts))
	if k <= 0 {
		return best
	}
	// Every trial reuses s, so a kept Selection must be deep-copied before
	// the next run overwrites the scratch it aliases.
	consider := func(sel Selection, ok bool) {
		if ok && sel.Value > best.Value {
			best = cloneSelection(sel)
		}
	}
	// k = 1 seeds. selectWithSeeds only reads the seed slice, so one scratch
	// slice serves every trial instead of allocating per iteration.
	seed := make([]int, 2)
	for i := range cands {
		seed[0] = i
		consider(selectWithSeeds(s, cands, capacity, opts, seed[:1]))
	}
	if k >= 2 {
		for i := range cands {
			seed[0] = i
			for j := i + 1; j < len(cands); j++ {
				seed[1] = j
				consider(selectWithSeeds(s, cands, capacity, opts, seed[:2]))
			}
		}
	}
	return best
}

// selectWithSeeds forces the seed candidates into the solution (if they fit)
// and completes greedily. ok is false when the seeds alone overflow capacity.
func selectWithSeeds(s *resortState, cands []Candidate, capacity bundle.Size, opts SelectOptions, seeds []int) (Selection, bool) {
	opts.Resort = true
	sel := s.run(cands, capacity, opts, seeds)
	if sel.Chosen == nil && len(seeds) > 0 {
		return sel, false
	}
	// Verify all seeds made it (they might not fit). Chosen is small (and
	// seeds is ≤ 2 in practice), so a linear scan beats a per-trial map.
	for _, sd := range seeds {
		found := false
		for _, i := range sel.Chosen {
			if i == sd {
				found = true
				break
			}
		}
		if !found {
			return sel, false
		}
	}
	return sel, true
}

// cloneSelection deep-copies a Selection whose Chosen and Files alias
// selector scratch, so it stays valid across later runs on the same state.
// The nil-Chosen seed-failure sentinel is preserved.
func cloneSelection(sel Selection) Selection {
	if sel.Chosen != nil {
		sel.Chosen = append([]int(nil), sel.Chosen...)
	}
	if sel.Files != nil {
		sel.Files = sel.Files.Clone()
	}
	return sel
}

// adjustedDenominator computes Σ s'(f) over files of b not in skip,
// where s'(f) = s(f)/max(d(f),1).
func adjustedDenominator(b bundle.Bundle, opts SelectOptions, skip map[bundle.FileID]bool) float64 {
	var denom float64
	for _, f := range b {
		if skip != nil && skip[f] {
			continue
		}
		d := opts.DegreeOf(f)
		if d < 1 {
			d = 1
		}
		denom += float64(opts.SizeOf(f)) / float64(d)
	}
	return denom
}

// chargedSize computes the real bytes b adds beyond files in skip. It runs
// once per candidate per selection (step-three scan, literal ranking,
// reference rounds), so it must inline into its callers and stay
// allocation- and bounds-check-free.
//
//fbvet:inline hot per-candidate helper; must disappear into callers
//fbvet:noescape
//fbvet:nobce
func chargedSize(b bundle.Bundle, sizeOf bundle.SizeFunc, skip map[bundle.FileID]bool) bundle.Size {
	var total bundle.Size
	for _, f := range b {
		if skip != nil && skip[f] {
			continue
		}
		total += sizeOf(f)
	}
	return total
}

func freeSet(free bundle.Bundle) map[bundle.FileID]bool {
	if len(free) == 0 {
		return nil
	}
	m := make(map[bundle.FileID]bool, len(free))
	for _, f := range free {
		m[f] = true
	}
	return m
}

// selectLiteral is Algorithm 1 as printed: one static sort by v'(r), each
// selected request charged its full (non-Free) bundle size, then the Step-3
// single-request comparison.
func selectLiteral(cands []Candidate, capacity bundle.Size, opts SelectOptions) Selection {
	free := freeSet(opts.Free)
	type ranked struct {
		idx  int
		vrel float64
		size bundle.Size
	}
	order := make([]ranked, 0, len(cands))
	for i, c := range cands {
		denom := adjustedDenominator(c.Bundle, opts, free)
		size := chargedSize(c.Bundle, opts.SizeOf, free)
		vrel := math.Inf(1)
		if denom > 0 {
			vrel = c.Value / denom
		}
		order = append(order, ranked{idx: i, vrel: vrel, size: size})
	}
	sort.SliceStable(order, func(a, b int) bool { return order[a].vrel > order[b].vrel })
	if invariant.Enabled {
		// Algorithm 1 scans requests in non-increasing v'(r) order; a break in
		// monotonicity here means the ranking comparator is wrong.
		for i := 1; i < len(order); i++ {
			invariant.Check(order[i-1].vrel >= order[i].vrel,
				"core: v'(r) ranking not monotone at position %d: %g before %g",
				i, order[i-1].vrel, order[i].vrel)
		}
	}

	var sel Selection
	files := make(map[bundle.FileID]bool)
	budget := capacity
	for _, r := range order {
		if r.size > budget {
			continue // skip: insufficient space (Step 2)
		}
		budget -= r.size
		sel.BudgetUsed += r.size
		sel.Chosen = append(sel.Chosen, r.idx)
		sel.Value += cands[r.idx].Value
		for _, f := range cands[r.idx].Bundle {
			files[f] = true
		}
	}
	sel.Files = setToBundle(files)
	return applyStepThree(sel, cands, capacity, opts, free)
}

// selectResortReference is the direct transcription of the Note variant:
// after each pick, files already selected (or Free) cost nothing — both in
// the ranking denominator and in the budget — and remaining candidates
// re-rank. It recomputes candidate charges from scratch every round;
// selectResortFast (select_fast.go) is the incremental equivalent used in
// production, and the TestQuickFastMatchesReference property test keeps the
// two in lockstep.
func selectResortReference(cands []Candidate, capacity bundle.Size, opts SelectOptions, seeds []int) Selection {
	// skip holds Free files plus every file selected so far; such files are
	// charged neither space nor ranking denominator.
	skip := make(map[bundle.FileID]bool, len(opts.Free))
	for _, f := range opts.Free {
		skip[f] = true
	}
	chosenFiles := make(map[bundle.FileID]bool)

	var sel Selection
	budget := capacity
	taken := make([]bool, len(cands))

	pick := func(i int) bool {
		size := chargedSize(cands[i].Bundle, opts.SizeOf, skip)
		if size > budget {
			return false
		}
		budget -= size
		sel.BudgetUsed += size
		sel.Chosen = append(sel.Chosen, i)
		sel.Value += cands[i].Value
		taken[i] = true
		for _, f := range cands[i].Bundle {
			skip[f] = true
			chosenFiles[f] = true
		}
		return true
	}

	for _, s := range seeds {
		if s < 0 || s >= len(cands) || taken[s] {
			continue
		}
		if !pick(s) {
			// Seed does not fit: signal failure with nil Chosen.
			return Selection{}
		}
	}

	for {
		bestIdx, bestV := -1, math.Inf(-1)
		for i, c := range cands {
			if taken[i] {
				continue
			}
			size := chargedSize(c.Bundle, opts.SizeOf, skip)
			if size > budget {
				continue
			}
			denom := adjustedDenominator(c.Bundle, opts, skip)
			v := math.Inf(1)
			if denom > 0 {
				v = c.Value / denom
			}
			// Exact total order — v'(r) descending, v(r) descending, index
			// ascending (the scan order makes the index tie-break implicit).
			// This is the same comparator the incremental heap uses (better,
			// rankheap.go): a heap needs a strict weak order, which a tolerant
			// epsilon comparison cannot provide, and both implementations
			// compute denom with the identical float-operation sequence, so
			// their keys — and therefore their picks — match bit for bit.
			switch {
			case bestIdx < 0:
				bestIdx, bestV = i, v
			case v > bestV:
				bestIdx, bestV = i, v
			case v < bestV:
				// keep current best
			case c.Value > cands[bestIdx].Value:
				bestIdx, bestV = i, v
			}
		}
		if bestIdx < 0 {
			break
		}
		pick(bestIdx)
	}

	sel.Files = setToBundle(chosenFiles)
	return applyStepThree(sel, cands, capacity, opts, freeSet(opts.Free))
}

// applyStepThree implements Step 3: the answer is the max of the greedy set
// and the single highest-value request that fits by itself.
func applyStepThree(sel Selection, cands []Candidate, capacity bundle.Size, opts SelectOptions, free map[bundle.FileID]bool) Selection {
	bestIdx, bestVal := -1, 0.0
	for i, c := range cands {
		if c.Value <= bestVal {
			continue
		}
		if chargedSize(c.Bundle, opts.SizeOf, free) > capacity {
			continue
		}
		bestIdx, bestVal = i, c.Value
	}
	if bestIdx >= 0 && bestVal > sel.Value {
		files := make(map[bundle.FileID]bool)
		for _, f := range cands[bestIdx].Bundle {
			files[f] = true
		}
		return Selection{
			Chosen:       []int{bestIdx},
			Files:        setToBundle(files),
			Value:        bestVal,
			SingleWinner: true,
			BudgetUsed:   chargedSize(cands[bestIdx].Bundle, opts.SizeOf, free),
		}
	}
	return sel
}

func setToBundle(set map[bundle.FileID]bool) bundle.Bundle {
	out := make([]bundle.FileID, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	// Sort before handing the keys on: map iteration order is randomized, and
	// downstream consumers (eviction keep-sets, prefetch order) must see the
	// same sequence on every run.
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return bundle.FromSlice(out)
}
