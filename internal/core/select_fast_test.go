package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fbcache/internal/bundle"
)

// exactInstance draws instances whose adjusted sizes are exactly
// representable in binary floating point (sizes are small integers, degrees
// are powers of two), so the reference and incremental implementations make
// bit-identical arithmetic decisions and must produce identical selections.
func exactInstance(rng *rand.Rand) ([]Candidate, bundle.Size, SelectOptions, []int) {
	nFiles := 4 + rng.Intn(10)
	sizes := make([]bundle.Size, nFiles)
	degrees := make([]int, nFiles)
	pows := []int{1, 2, 4, 8}
	for i := range sizes {
		sizes[i] = bundle.Size(1 + rng.Intn(8))
		degrees[i] = pows[rng.Intn(len(pows))]
	}
	n := 1 + rng.Intn(10)
	cands := make([]Candidate, n)
	for i := range cands {
		k := 1 + rng.Intn(4)
		ids := make([]bundle.FileID, k)
		for j := range ids {
			ids[j] = bundle.FileID(rng.Intn(nFiles))
		}
		cands[i] = Candidate{Bundle: bundle.New(ids...), Value: float64(1 + rng.Intn(16))}
	}
	var free bundle.Bundle
	if rng.Intn(2) == 0 {
		free = bundle.New(bundle.FileID(rng.Intn(nFiles)))
	}
	opts := SelectOptions{
		SizeOf:   func(f bundle.FileID) bundle.Size { return sizes[f] },
		DegreeOf: func(f bundle.FileID) int { return degrees[f] },
		Resort:   true,
		Free:     free,
	}
	capacity := bundle.Size(2 + rng.Intn(25))
	var seeds []int
	if rng.Intn(3) == 0 && n > 0 {
		seeds = []int{rng.Intn(n)}
	}
	return cands, capacity, opts, seeds
}

func sameSelection(a, b Selection) bool {
	if a.Value != b.Value || a.SingleWinner != b.SingleWinner ||
		a.BudgetUsed != b.BudgetUsed || len(a.Chosen) != len(b.Chosen) {
		return false
	}
	for i := range a.Chosen {
		if a.Chosen[i] != b.Chosen[i] {
			return false
		}
	}
	return a.Files.Equal(b.Files)
}

// The central equivalence property: the incremental greedy is
// indistinguishable from the direct transcription of the paper's Note.
func TestQuickFastMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	f := func() bool {
		cands, capacity, opts, seeds := exactInstance(rng)
		ref := selectResortReference(cands, capacity, opts, seeds)
		fast := selectResortFast(cands, capacity, opts, seeds)
		if !sameSelection(ref, fast) {
			t.Logf("mismatch:\ncands=%+v cap=%d seeds=%v\nref =%+v\nfast=%+v",
				cands, capacity, seeds, ref, fast)
			return false
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestFastPaperExample(t *testing.T) {
	cands, opts := paperExample()
	opts.Resort = true
	sel := selectResortFast(cands, 3, opts, nil)
	if !sel.Files.Equal(bundle.New(1, 3, 5)) || sel.Value != 3 {
		t.Errorf("fast selection = %+v", sel)
	}
}

func BenchmarkSelectReference(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	cands, capacity, opts := largeInstance(rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = selectResortReference(cands, capacity, opts, nil)
	}
}

func BenchmarkSelectFast(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	cands, capacity, opts := largeInstance(rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = selectResortFast(cands, capacity, opts, nil)
	}
}

func largeInstance(rng *rand.Rand) ([]Candidate, bundle.Size, SelectOptions) {
	const nFiles, n = 400, 256
	sizes := make([]bundle.Size, nFiles)
	for i := range sizes {
		sizes[i] = bundle.Size(1 + rng.Intn(64))
	}
	cands := make([]Candidate, n)
	for i := range cands {
		k := 2 + rng.Intn(6)
		ids := make([]bundle.FileID, k)
		for j := range ids {
			ids[j] = bundle.FileID(rng.Intn(nFiles))
		}
		cands[i] = Candidate{Bundle: bundle.New(ids...), Value: float64(1 + rng.Intn(50))}
	}
	opts := SelectOptions{
		SizeOf:   func(f bundle.FileID) bundle.Size { return sizes[f] },
		DegreeOf: func(f bundle.FileID) int { return 1 + int(f)%4 },
		Resort:   true,
	}
	return cands, 2000, opts
}
