package metrics

import (
	"math"
	"testing"

	"fbcache/internal/policy"
)

func TestZeroValueCollector(t *testing.T) {
	var c Collector
	if c.HitRatio() != 0 || c.ByteMissRatio() != 0 || c.BytesPerRequest() != 0 {
		t.Error("zero-value ratios not 0")
	}
	if c.Jobs() != 0 || c.Serviced() != 0 {
		t.Error("zero-value counts not 0")
	}
}

func TestRatios(t *testing.T) {
	var c Collector
	c.Record(policy.Result{Hit: true, BytesRequested: 100})
	c.Record(policy.Result{Hit: false, BytesRequested: 100, BytesLoaded: 60, FilesLoaded: 2, FilesEvicted: 1})
	c.Record(policy.Result{Hit: false, BytesRequested: 200, BytesLoaded: 40, FilesLoaded: 1})
	c.Record(policy.Result{Unserviceable: true, BytesRequested: 999})

	if c.Jobs() != 4 || c.Serviced() != 3 || c.Unserviceable() != 1 {
		t.Errorf("jobs=%d serviced=%d unserv=%d", c.Jobs(), c.Serviced(), c.Unserviceable())
	}
	if got := c.HitRatio(); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("HitRatio = %v", got)
	}
	if got := c.MissRatio(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("MissRatio = %v", got)
	}
	if got := c.ByteMissRatio(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("ByteMissRatio = %v (100/400)", got)
	}
	if got := c.ByteHitRatio(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("ByteHitRatio = %v", got)
	}
	if got := c.BytesPerRequest(); math.Abs(got-100.0/3) > 1e-12 {
		t.Errorf("BytesPerRequest = %v", got)
	}
	if c.FilesLoaded() != 3 || c.FilesEvicted() != 1 {
		t.Errorf("files loaded=%d evicted=%d", c.FilesLoaded(), c.FilesEvicted())
	}
	if c.BytesLoaded() != 100 || c.BytesRequested() != 400 {
		t.Errorf("bytes loaded=%d requested=%d", c.BytesLoaded(), c.BytesRequested())
	}
	if c.String() == "" {
		t.Error("empty String")
	}
}

func TestUnserviceableExcludedFromByteRatios(t *testing.T) {
	var c Collector
	c.Record(policy.Result{Unserviceable: true, BytesRequested: 1000})
	if c.ByteMissRatio() != 0 || c.BytesRequested() != 0 {
		t.Error("unserviceable bytes leaked into ratios")
	}
}

func TestTimeSeries(t *testing.T) {
	c := Collector{Interval: 2}
	c.Record(policy.Result{Hit: true, BytesRequested: 10})
	c.Record(policy.Result{BytesRequested: 10, BytesLoaded: 10})
	c.Record(policy.Result{Hit: true, BytesRequested: 10})
	series := c.Series() // flushes the partial third window
	if len(series) != 2 {
		t.Fatalf("series len = %d, want 2", len(series))
	}
	if series[0].Jobs != 2 || math.Abs(series[0].HitRatio-0.5) > 1e-12 {
		t.Errorf("point 0 = %+v", series[0])
	}
	if math.Abs(series[0].ByteMissRatio-0.5) > 1e-12 {
		t.Errorf("point 0 byte miss = %v", series[0].ByteMissRatio)
	}
	if series[1].Jobs != 3 || series[1].HitRatio != 1 {
		t.Errorf("point 1 = %+v", series[1])
	}
	// Series must return a copy.
	series[0].Jobs = 999
	if got := c.Series(); got[0].Jobs == 999 {
		t.Error("Series aliases internal state")
	}
}

func TestNoSeriesWithoutInterval(t *testing.T) {
	var c Collector
	for i := 0; i < 10; i++ {
		c.Record(policy.Result{BytesRequested: 1, BytesLoaded: 1})
	}
	// Interval 0: only the final flush-on-demand point.
	if got := len(c.Series()); got != 1 {
		t.Errorf("series len = %d, want 1 (single flushed window)", got)
	}
}
