package metrics

import (
	"testing"

	"fbcache/internal/obs"
	"fbcache/internal/policy"
)

func TestCollectorExportTo(t *testing.T) {
	var c Collector
	c.Record(policy.Result{BytesRequested: 100, BytesLoaded: 100, FilesLoaded: 2})
	c.Record(policy.Result{BytesRequested: 50, Hit: true})
	c.Record(policy.Result{BytesRequested: 1000, Unserviceable: true})

	reg := obs.NewRegistry()
	c.ExportTo(reg)
	snap := reg.Snapshot()
	expect := map[string]float64{
		"fbcache_sim_jobs_total":            3,
		"fbcache_sim_unserviceable_total":   1,
		"fbcache_sim_hit_ratio":             0.5,
		"fbcache_sim_byte_miss_ratio":       100.0 / 150.0,
		"fbcache_sim_bytes_requested_total": 150,
		"fbcache_sim_bytes_loaded_total":    100,
		"fbcache_sim_files_loaded_total":    2,
		"fbcache_sim_files_evicted_total":   0,
	}
	for name, want := range expect {
		m, ok := snap.Get(name)
		if !ok {
			t.Errorf("metric %s missing", name)
			continue
		}
		if m.Value != want {
			t.Errorf("%s = %g, want %g", name, m.Value, want)
		}
	}

	// Func-backed metrics track the live collector.
	c.Record(policy.Result{BytesRequested: 10, Hit: true})
	if m, _ := reg.Snapshot().Get("fbcache_sim_jobs_total"); m.Value != 4 {
		t.Errorf("jobs after new record = %g, want 4", m.Value)
	}
}

func TestExportResilience(t *testing.T) {
	live := Resilience{Retries: 3, Failovers: 2, Timeouts: 1, FailedJobs: 4, Requeues: 5}
	reg := obs.NewRegistry()
	ExportResilience(reg, func() Resilience { return live })
	snap := reg.Snapshot()
	expect := map[string]float64{
		"fbcache_resilience_retries_total":     3,
		"fbcache_resilience_failovers_total":   2,
		"fbcache_resilience_timeouts_total":    1,
		"fbcache_resilience_failed_jobs_total": 4,
		"fbcache_resilience_requeues_total":    5,
	}
	for name, want := range expect {
		m, ok := snap.Get(name)
		if !ok {
			t.Errorf("metric %s missing", name)
			continue
		}
		if m.Value != want {
			t.Errorf("%s = %g, want %g", name, m.Value, want)
		}
	}
}

// Regression for the value-copy audit: Resilience is plain data, so every
// assignment is a snapshot. Verify both directions of isolation and that
// aggregation must go through Add, not assignment.
func TestResilienceCopySemantics(t *testing.T) {
	live := Resilience{Retries: 1}
	snap := live // value copy, as EventStats/srm.Snapshot do
	live.Retries++
	if snap.Retries != 1 {
		t.Errorf("copy tracked later updates: %d", snap.Retries)
	}
	snap.Failovers = 99
	if live.Failovers != 0 {
		t.Errorf("copy mutation leaked back: %d", live.Failovers)
	}

	var agg Resilience
	agg.Add(live)
	agg.Add(Resilience{Retries: 3, Requeues: 2})
	if agg.Retries != 5 || agg.Requeues != 2 {
		t.Errorf("Add accumulated %+v", agg)
	}
	if agg.Zero() {
		t.Error("non-empty aggregate reported Zero")
	}
	if !(Resilience{}).Zero() {
		t.Error("empty Resilience not Zero")
	}
}
