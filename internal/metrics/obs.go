package metrics

import "fbcache/internal/obs"

// ExportTo registers c's §1.2 measures on reg under fbcache_sim_* names,
// read through closures at snapshot time. The closures call c's accessors
// without locking, so export either a collector that is no longer being
// written (cachesim after a run) or one whose writers are externally
// serialized (the SRM holds its mutex around Record).
func (c *Collector) ExportTo(reg *obs.Registry) {
	reg.CounterFunc("fbcache_sim_jobs_total",
		"Jobs recorded, including unserviceable ones.",
		func() float64 { return float64(c.Jobs()) })
	reg.CounterFunc("fbcache_sim_unserviceable_total",
		"Jobs whose bundle exceeded the cache capacity.",
		func() float64 { return float64(c.Unserviceable()) })
	reg.GaugeFunc("fbcache_sim_hit_ratio",
		"Request-hit ratio over serviced jobs (every file resident).",
		c.HitRatio)
	reg.GaugeFunc("fbcache_sim_byte_miss_ratio",
		"Bytes loaded / bytes requested — the paper's main metric.",
		c.ByteMissRatio)
	reg.CounterFunc("fbcache_sim_bytes_requested_total",
		"Total demanded bytes.",
		func() float64 { return float64(c.BytesRequested()) })
	reg.CounterFunc("fbcache_sim_bytes_loaded_total",
		"Total miss traffic in bytes.",
		func() float64 { return float64(c.BytesLoaded()) })
	reg.CounterFunc("fbcache_sim_files_loaded_total",
		"File fetches.",
		func() float64 { return float64(c.FilesLoaded()) })
	reg.CounterFunc("fbcache_sim_files_evicted_total",
		"File evictions.",
		func() float64 { return float64(c.FilesEvicted()) })
}

// ExportResilience registers the five fault-handling counters on reg under
// fbcache_resilience_*_total. read must return a consistent copy of the
// counters (e.g. under the owner's lock); it is called once per counter per
// snapshot.
func ExportResilience(reg *obs.Registry, read func() Resilience) {
	field := func(f func(Resilience) int64) func() float64 {
		return func() float64 { return float64(f(read())) }
	}
	reg.CounterFunc("fbcache_resilience_retries_total",
		"Transfer or store operations repeated after a failed attempt.",
		field(func(r Resilience) int64 { return r.Retries }))
	reg.CounterFunc("fbcache_resilience_failovers_total",
		"Staging moved past the cheapest replica.",
		field(func(r Resilience) int64 { return r.Failovers }))
	reg.CounterFunc("fbcache_resilience_timeouts_total",
		"Staging deadlines or budgets exhausted.",
		field(func(r Resilience) int64 { return r.Timeouts }))
	reg.CounterFunc("fbcache_resilience_failed_jobs_total",
		"Jobs abandoned after retries, failovers and requeues ran out.",
		field(func(r Resilience) int64 { return r.FailedJobs }))
	reg.CounterFunc("fbcache_resilience_requeues_total",
		"Failed jobs returned to the queue for another attempt.",
		field(func(r Resilience) int64 { return r.Requeues }))
}

// ExportRecovery registers the per-outage recovery measures on reg under
// fbcache_sim_recovery_*. read must return a consistent snapshot of the
// records (e.g. RecoveryTracker.Finish output held by the owner); it is
// called once per metric per scrape.
func ExportRecovery(reg *obs.Registry, read func() []Recovery) {
	reg.CounterFunc("fbcache_sim_recovery_outages_total",
		"Outages whose recovery was measured.",
		func() float64 { return float64(len(read())) })
	reg.CounterFunc("fbcache_sim_recovery_recovered_total",
		"Outages whose windowed hit ratio returned to within epsilon of its pre-outage baseline.",
		func() float64 {
			n := 0
			for _, r := range read() {
				if r.Recovered {
					n++
				}
			}
			return float64(n)
		})
	reg.GaugeFunc("fbcache_sim_recovery_mean_seconds",
		"Mean recovery time over recovered outages (outage start to ratio return).",
		func() float64 {
			sum, n := 0.0, 0
			for _, r := range read() {
				if r.Recovered {
					sum += r.RecoverySec
					n++
				}
			}
			if n == 0 {
				return 0
			}
			return sum / float64(n)
		})
	reg.GaugeFunc("fbcache_sim_recovery_max_seconds",
		"Slowest recovery among recovered outages.",
		func() float64 {
			max := 0.0
			for _, r := range read() {
				if r.Recovered && r.RecoverySec > max {
					max = r.RecoverySec
				}
			}
			return max
		})
}
