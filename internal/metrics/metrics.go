// Package metrics accumulates the performance measures of §1.2 over a
// simulation run: request hit/miss ratios, byte hit/miss ratios, data moved
// per request, and eviction counts, plus optional per-interval time series
// for convergence plots.
package metrics

import (
	"fmt"

	"fbcache/internal/bundle"
	"fbcache/internal/policy"
)

// Collector accumulates admission results. The zero value is ready to use.
type Collector struct {
	jobs           int64
	hits           int64
	unserviceable  int64
	bytesRequested bundle.Size
	bytesLoaded    bundle.Size
	filesLoaded    int64
	filesEvicted   int64

	// Optional time series: one point every Interval jobs.
	Interval int
	series   []Point
	// window accumulators
	winJobs      int64
	winHits      int64
	winReqBytes  bundle.Size
	winLoadBytes bundle.Size
}

// Point is one time-series sample.
type Point struct {
	Jobs          int64   // jobs completed at sample time
	HitRatio      float64 // within the window
	ByteMissRatio float64 // within the window
}

// Record folds one admission result into the collector.
func (c *Collector) Record(r policy.Result) {
	c.jobs++
	if r.Unserviceable {
		c.unserviceable++
		return
	}
	if r.Hit {
		c.hits++
		c.winHits++
	}
	c.bytesRequested += r.BytesRequested
	c.bytesLoaded += r.BytesLoaded
	c.filesLoaded += int64(r.FilesLoaded)
	c.filesEvicted += int64(r.FilesEvicted)

	c.winJobs++
	c.winReqBytes += r.BytesRequested
	c.winLoadBytes += r.BytesLoaded
	if c.Interval > 0 && c.winJobs >= int64(c.Interval) {
		c.flushWindow()
	}
}

func (c *Collector) flushWindow() {
	if c.winJobs == 0 {
		return
	}
	p := Point{Jobs: c.jobs}
	p.HitRatio = float64(c.winHits) / float64(c.winJobs)
	if c.winReqBytes > 0 {
		p.ByteMissRatio = float64(c.winLoadBytes) / float64(c.winReqBytes)
	}
	c.series = append(c.series, p)
	c.winJobs, c.winHits, c.winReqBytes, c.winLoadBytes = 0, 0, 0, 0
}

// Series returns the accumulated time series (flushing any partial window).
func (c *Collector) Series() []Point {
	c.flushWindow()
	out := make([]Point, len(c.series))
	copy(out, c.series)
	return out
}

// Jobs reports the total number of recorded jobs (including unserviceable).
func (c *Collector) Jobs() int64 { return c.jobs }

// Serviced reports jobs that were actually processed.
func (c *Collector) Serviced() int64 { return c.jobs - c.unserviceable }

// Unserviceable reports jobs whose bundles exceeded the cache capacity.
func (c *Collector) Unserviceable() int64 { return c.unserviceable }

// HitRatio reports request-hits / serviced jobs (§1.2 ρ_hit, generalized to
// bundles: a hit needs every file resident).
func (c *Collector) HitRatio() float64 {
	if s := c.Serviced(); s > 0 {
		return float64(c.hits) / float64(s)
	}
	return 0
}

// MissRatio reports 1 − HitRatio.
func (c *Collector) MissRatio() float64 {
	if c.Serviced() == 0 {
		return 0
	}
	return 1 - c.HitRatio()
}

// ByteMissRatio reports bytes loaded / bytes requested — the paper's main
// metric (equivalently the average volume of data moved into the cache per
// requested byte).
func (c *Collector) ByteMissRatio() float64 {
	if c.bytesRequested > 0 {
		return float64(c.bytesLoaded) / float64(c.bytesRequested)
	}
	return 0
}

// ByteHitRatio reports 1 − ByteMissRatio.
func (c *Collector) ByteHitRatio() float64 {
	if c.bytesRequested == 0 {
		return 0
	}
	return 1 - c.ByteMissRatio()
}

// BytesPerRequest reports the mean bytes loaded per serviced request —
// the paper's "average volume of data transfers per request".
func (c *Collector) BytesPerRequest() float64 {
	if s := c.Serviced(); s > 0 {
		return float64(c.bytesLoaded) / float64(s)
	}
	return 0
}

// BytesLoaded reports total miss traffic.
func (c *Collector) BytesLoaded() bundle.Size { return c.bytesLoaded }

// BytesRequested reports total demanded bytes.
func (c *Collector) BytesRequested() bundle.Size { return c.bytesRequested }

// FilesLoaded reports the number of file fetches.
func (c *Collector) FilesLoaded() int64 { return c.filesLoaded }

// FilesEvicted reports the number of evictions.
func (c *Collector) FilesEvicted() int64 { return c.filesEvicted }

func (c *Collector) String() string {
	return fmt.Sprintf("jobs=%d hit=%.4f byteMiss=%.4f bytes/req=%s",
		c.jobs, c.HitRatio(), c.ByteMissRatio(), bundle.Size(c.BytesPerRequest()))
}

// Resilience counts fault-handling events: how often the retry/failover
// layer (internal/faults) had to intervene. Both the discrete-event
// simulator (simulate.EventStats) and the live SRM (srm.Snapshot) report
// one; all counters are zero in fault-free runs.
type Resilience struct {
	// Retries is the number of transfer or store operations repeated after
	// a failed attempt.
	Retries int64 `json:"retries,omitempty"`
	// Failovers is the number of times staging moved past the cheapest
	// replica to a more expensive reachable one.
	Failovers int64 `json:"failovers,omitempty"`
	// Timeouts is the number of staging deadlines or budgets exhausted.
	Timeouts int64 `json:"timeouts,omitempty"`
	// FailedJobs is the number of jobs abandoned after retries, failovers
	// and requeues were exhausted.
	FailedJobs int64 `json:"failed_jobs,omitempty"`
	// Requeues is the number of failed jobs returned to the queue for
	// another staging attempt.
	Requeues int64 `json:"requeues,omitempty"`
}

// Add accumulates o into r.
func (r *Resilience) Add(o Resilience) {
	r.Retries += o.Retries
	r.Failovers += o.Failovers
	r.Timeouts += o.Timeouts
	r.FailedJobs += o.FailedJobs
	r.Requeues += o.Requeues
}

// Zero reports whether no fault-handling event was recorded.
func (r Resilience) Zero() bool { return r == Resilience{} }

func (r Resilience) String() string {
	return fmt.Sprintf("retries=%d failovers=%d timeouts=%d failed=%d requeues=%d",
		r.Retries, r.Failovers, r.Timeouts, r.FailedJobs, r.Requeues)
}
