package metrics

import (
	"math"
	"testing"
)

// feed folds n completions at 1s intervals starting at t0, hit iff the
// supplied function says so.
func feed(tr *RecoveryTracker, t0 float64, n int, hit func(i int) bool) float64 {
	at := t0
	for i := 0; i < n; i++ {
		tr.ObserveJob(at, hit(i))
		at++
	}
	return at
}

func TestRecoveryTrackerMeasuresDipAndReturn(t *testing.T) {
	tr := NewRecoveryTracker([]Outage{{Site: 1, Start: 100, End: 120}}, 10, 0.05)
	// Pre-outage: steady 80% hits -> baseline 0.8.
	feed(tr, 0, 50, func(i int) bool { return i%5 != 0 })
	if r := tr.Ratio(); math.Abs(r-0.8) > 1e-9 {
		t.Fatalf("pre-outage ratio = %v", r)
	}
	// The outage delays misses: completions from 120 on are a miss burst.
	feed(tr, 120, 8, func(int) bool { return false })
	// Then hits refill the window.
	feed(tr, 128, 12, func(int) bool { return true })

	recs := tr.Finish()
	if len(recs) != 1 {
		t.Fatalf("records = %+v", recs)
	}
	r := recs[0]
	if r.Site != 1 || math.Abs(r.Baseline-0.8) > 1e-9 {
		t.Errorf("record = %+v, want site 1 baseline 0.8", r)
	}
	// RatioAtEnd reads once the window is all post-outage completions: ten
	// folds after End (t=129) the window holds the 8-miss burst plus 2 hits.
	if math.Abs(r.RatioAtEnd-0.2) > 1e-9 {
		t.Errorf("ratio at end = %v, want 0.2", r.RatioAtEnd)
	}
	if !r.Recovered {
		t.Fatalf("never recovered: %+v", r)
	}
	// Recovery needs the window back to >= 0.75: after the 8-miss burst the
	// window is 2/10, and each hit from t=128 raises it by 0.1 — eight hits
	// later (t=135) it reads 8/10 >= 0.75. Recovery is measured from Start.
	if r.RecoveredAt != 135 || r.RecoverySec != 35 {
		t.Errorf("recovered at %v (%.0fs), want t=135 (35s)", r.RecoveredAt, r.RecoverySec)
	}
	if r.HitAtEnd < r.Baseline-0.05 {
		t.Errorf("hit at recovery = %v below band", r.HitAtEnd)
	}
	// Time-weighted mean over (120, 139]: each 1s interval carries the ratio
	// left by the previous fold — the dip and the refill sum to 10.5 over 19s.
	if math.Abs(r.PostMeanRatio-10.5/19) > 1e-9 {
		t.Errorf("post-mean ratio = %v, want %v", r.PostMeanRatio, 10.5/19)
	}
}

func TestRecoveryTrackerUnrecovered(t *testing.T) {
	tr := NewRecoveryTracker([]Outage{{Site: 0, Start: 10, End: 20}}, 4, 0.01)
	feed(tr, 0, 8, func(int) bool { return true }) // baseline 1.0
	feed(tr, 20, 5, func(int) bool { return false })
	recs := tr.Finish()
	if len(recs) != 1 || recs[0].Recovered {
		t.Fatalf("records = %+v, want one unrecovered", recs)
	}
	if recs[0].HitAtEnd != 0 {
		t.Errorf("final ratio = %v, want 0 after the miss tail", recs[0].HitAtEnd)
	}
	if recs[0].Baseline != 1 {
		t.Errorf("baseline = %v", recs[0].Baseline)
	}
}

func TestRecoveryTrackerMultipleOutagesSorted(t *testing.T) {
	tr := NewRecoveryTracker([]Outage{
		{Site: 2, Start: 50, End: 60},
		{Site: 1, Start: 5, End: 8},
	}, 0, 0) // defaults: W=50, eps=0.02
	feed(tr, 0, 100, func(int) bool { return true })
	recs := tr.Finish()
	if len(recs) != 2 || recs[0].Site != 1 || recs[1].Site != 2 {
		t.Fatalf("records = %+v, want sorted by start", recs)
	}
	for _, r := range recs {
		if !r.Recovered {
			t.Errorf("all-hit stream failed to recover: %+v", r)
		}
	}
	// An outage the run never reached keeps a zero baseline and no recovery.
	tr2 := NewRecoveryTracker([]Outage{{Site: 0, Start: 1e9, End: 2e9}}, 4, 0.01)
	feed(tr2, 0, 4, func(int) bool { return true })
	if recs := tr2.Finish(); recs[0].Recovered || recs[0].Baseline != 0 {
		t.Errorf("unreached outage = %+v", recs[0])
	}
}
