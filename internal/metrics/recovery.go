package metrics

import "sort"

// Outage is one scheduled unusable interval of a site, as seen by the
// recovery tracker (faults.Injector.UnusableWindows flattened across sites).
type Outage struct {
	Site       int
	Start, End float64 // half-open [Start, End) in sim seconds
}

// Recovery is the measured recovery record of one outage: how long the
// windowed request-hit ratio took, counted from outage start, to return to
// within epsilon of its pre-outage baseline.
type Recovery struct {
	Site  int     `json:"site"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Baseline is the windowed hit ratio frozen at the last completion
	// before the outage began.
	Baseline float64 `json:"baseline"`
	// HitAtEnd is the windowed hit ratio at the moment recovery was declared
	// (or at the final observation, when the run ended unrecovered).
	HitAtEnd float64 `json:"hit_at_end"`
	// RatioAtEnd is the windowed hit ratio once the window holds only
	// completions from after the outage ended (or at the final observation,
	// when the run ended sooner) — the depth of the post-outage dip,
	// comparable across runs regardless of when (or whether) each recovered.
	RatioAtEnd float64 `json:"ratio_at_end"`
	// PostMeanRatio is the time-weighted mean windowed hit ratio from the
	// outage's end to the last observation: the integral view of post-outage
	// health. A run that dips deep or stays depressed for long scores lower
	// than one that sails through, even if both eventually recover.
	PostMeanRatio float64 `json:"post_mean_ratio"`
	// RecoveredAt is the completion time at which the ratio re-entered
	// [Baseline-eps, 1] to stay — a later drop out of the band voids the
	// record until the ratio returns. Meaningful only when Recovered.
	RecoveredAt float64 `json:"recovered_at,omitempty"`
	// RecoverySec is RecoveredAt - Start: the paper-style time-to-recover
	// measured from the moment the outage began, not from when it ended.
	RecoverySec float64 `json:"recovery_sec,omitempty"`
	// Recovered is false when the run ended before the ratio returned.
	Recovered bool `json:"recovered"`
}

// outageState is one outage's measurement in flight.
type outageState struct {
	rec          Recovery
	baselineSet  bool
	sinceEnd     int // completions folded since the outage ended
	atEndSet     bool
	postIntegral float64 // ∫ratio dt over (End, last observation]
	postSpan     float64
}

// RecoveryTracker measures per-outage recovery times from the stream of job
// completions. It keeps a sliding window of the last W jobs' hit flags; for
// each outage it freezes the windowed hit ratio observed just before the
// outage starts as the baseline, then — once the outage has ended — declares
// recovery at the first completion from which the windowed ratio stays
// within eps of that baseline: dropping back out of the band voids the
// record until the ratio returns, so the post-outage miss backlog draining
// through the window cannot hide behind a still-warm ratio at the moment the
// outage ends. Completions must be observed in nondecreasing time order
// (the discrete-event simulator's natural order). Not safe for concurrent
// use.
//
// During an outage the ratio often *rises* (misses stall on the dark site,
// so the completions that do land skew toward hits) and then dips below
// baseline while the queued-miss backlog drains — which is exactly the
// degradation the recovery time captures.
type RecoveryTracker struct {
	window []bool
	next   int
	filled int
	hits   int
	eps    float64
	lastAt float64

	states []outageState
}

// NewRecoveryTracker tracks the given outages with a W-job hit window and an
// epsilon band (both defaulted when <= 0: W=50, eps=0.02). Outages are
// processed independently, so overlapping windows each get a record.
func NewRecoveryTracker(outages []Outage, windowJobs int, eps float64) *RecoveryTracker {
	if windowJobs <= 0 {
		windowJobs = 50
	}
	if eps <= 0 {
		eps = 0.02
	}
	t := &RecoveryTracker{window: make([]bool, windowJobs)}
	sorted := make([]Outage, len(outages))
	copy(sorted, outages)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start { //fbvet:allow floateq — schedule endpoints are exact config values
			return sorted[i].Start < sorted[j].Start
		}
		if sorted[i].End != sorted[j].End { //fbvet:allow floateq — schedule endpoints are exact config values
			return sorted[i].End < sorted[j].End
		}
		return sorted[i].Site < sorted[j].Site
	})
	for _, o := range sorted {
		t.states = append(t.states, outageState{rec: Recovery{
			Site: o.Site, Start: o.Start, End: o.End,
		}})
	}
	t.eps = eps
	return t
}

// ObserveJob folds one completed job (at sim-time at, request-hit flag hit)
// into the window and advances every outage's measurement.
func (t *RecoveryTracker) ObserveJob(at float64, hit bool) {
	r0 := t.ratio()
	for i := range t.states {
		s := &t.states[i]
		if !s.baselineSet && at >= s.rec.Start {
			// Freeze the pre-outage baseline before folding this job, which
			// completed after the outage began.
			s.rec.Baseline = r0
			s.baselineSet = true
		}
		// Accumulate the post-outage dwell: between completions the window is
		// constant, so the pre-fold ratio held over (max(End, lastAt), at].
		if at > s.rec.End {
			from := s.rec.End
			if t.lastAt > from {
				from = t.lastAt
			}
			if at > from {
				s.postIntegral += r0 * (at - from)
				s.postSpan += at - from
			}
		}
	}

	// Fold the job into the sliding window.
	if t.window[t.next] {
		t.hits--
	}
	t.window[t.next] = hit
	if hit {
		t.hits++
	}
	t.next++
	if t.next == len(t.window) {
		t.next = 0
	}
	if t.filled < len(t.window) {
		t.filled++
	}

	r := t.ratio()
	for i := range t.states {
		s := &t.states[i]
		if !s.atEndSet && at >= s.rec.End {
			s.sinceEnd++
			if s.sinceEnd >= len(t.window) {
				// The window has fully turned over: every entry postdates the
				// outage, so this reading is the dip, not leftover warmth.
				s.rec.RatioAtEnd = r
				s.atEndSet = true
			}
		}
		if !s.baselineSet || at < s.rec.End {
			continue
		}
		if r >= s.rec.Baseline-t.eps {
			if !s.rec.Recovered {
				s.rec.Recovered = true
				s.rec.RecoveredAt = at
				s.rec.RecoverySec = at - s.rec.Start
				s.rec.HitAtEnd = r
			}
		} else if s.rec.Recovered {
			// The ratio fell back out of the band: the earlier "recovery" was
			// the pre-dip window still looking warm, not a real return.
			s.rec.Recovered = false
			s.rec.RecoveredAt = 0
			s.rec.RecoverySec = 0
			s.rec.HitAtEnd = 0
		}
	}
	t.lastAt = at
}

// ratio reports the windowed hit ratio (0 before any observation).
func (t *RecoveryTracker) ratio() float64 {
	if t.filled == 0 {
		return 0
	}
	return float64(t.hits) / float64(t.filled)
}

// Ratio exposes the current windowed hit ratio, for callers reporting
// post-outage health alongside the records.
func (t *RecoveryTracker) Ratio() float64 { return t.ratio() }

// Finish closes the measurement and returns one record per outage, sorted by
// (Start, End, Site). Unrecovered outages carry Recovered=false and the
// final windowed ratio in HitAtEnd; a baseline never frozen (the run ended
// before the outage started) reports Baseline 0.
func (t *RecoveryTracker) Finish() []Recovery {
	out := make([]Recovery, 0, len(t.states))
	for _, s := range t.states {
		if !s.rec.Recovered {
			s.rec.HitAtEnd = t.ratio()
		}
		if !s.atEndSet && s.sinceEnd > 0 {
			s.rec.RatioAtEnd = t.ratio()
		}
		if s.postSpan > 0 {
			s.rec.PostMeanRatio = s.postIntegral / s.postSpan
		}
		out = append(out, s.rec)
	}
	return out
}
