// Package trace serializes workloads so that experiments can be archived,
// replayed and exchanged. Two formats are supported:
//
//   - a self-describing JSON format (one header object, then one line per
//     job) that is diff-friendly and editable by hand, and
//   - a compact gob format for large traces.
//
// A trace file fully determines a simulation input: file sizes, the request
// pool, and the job arrival order. Real SRM logs can be converted into this
// format to replay production workloads, addressing the paper's observation
// (§5.1) that no bundle-level traces were available to the authors.
package trace

import (
	"bufio"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"

	"fbcache/internal/bundle"
	"fbcache/internal/workload"
)

// FormatVersion identifies the on-disk schema.
const FormatVersion = 1

// header is the first JSON line of a trace file.
type header struct {
	Version   int               `json:"version"`
	CacheSize bundle.Size       `json:"cache_size"`
	FileSizes []bundle.Size     `json:"file_sizes"`
	Requests  [][]bundle.FileID `json:"requests"`
	Jobs      int               `json:"jobs"`
}

// jobLine is one subsequent JSON line per job.
type jobLine struct {
	Request int `json:"r"`
}

// WriteJSON writes w as JSON-lines: a header object then one line per job.
func WriteJSON(dst io.Writer, w *workload.Workload) error {
	bw := bufio.NewWriter(dst)
	h := header{
		Version:   FormatVersion,
		CacheSize: w.Spec.CacheSize,
		Jobs:      len(w.Jobs),
	}
	for _, f := range w.Catalog.Files() {
		h.FileSizes = append(h.FileSizes, f.Size)
	}
	for _, r := range w.Requests {
		h.Requests = append(h.Requests, []bundle.FileID(r))
	}
	enc := json.NewEncoder(bw)
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, j := range w.Jobs {
		if err := enc.Encode(jobLine{Request: j}); err != nil {
			return fmt.Errorf("trace: write job: %w", err)
		}
	}
	return bw.Flush()
}

// ReadJSON reads a JSON-lines trace back into a workload. The returned
// workload's Spec carries only the cache size (the generator parameters are
// not stored; the trace itself is the ground truth).
func ReadJSON(src io.Reader) (*workload.Workload, error) {
	dec := json.NewDecoder(bufio.NewReader(src))
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if h.Version != FormatVersion {
		return nil, fmt.Errorf("trace: unsupported version %d (want %d)", h.Version, FormatVersion)
	}
	w, err := rebuild(h.CacheSize, h.FileSizes, h.Requests)
	if err != nil {
		return nil, err
	}
	for {
		var j jobLine
		if err := dec.Decode(&j); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: read job: %w", err)
		}
		if j.Request < 0 || j.Request >= len(w.Requests) {
			return nil, fmt.Errorf("trace: job references request %d of %d", j.Request, len(w.Requests))
		}
		w.Jobs = append(w.Jobs, j.Request)
	}
	if h.Jobs >= 0 && len(w.Jobs) != h.Jobs {
		return nil, fmt.Errorf("trace: header promises %d jobs, found %d", h.Jobs, len(w.Jobs))
	}
	return w, nil
}

// gobTrace is the compact binary schema.
type gobTrace struct {
	Version   int
	CacheSize bundle.Size
	FileSizes []bundle.Size
	Requests  [][]bundle.FileID
	Jobs      []int
}

// WriteGob writes w in the compact binary format.
func WriteGob(dst io.Writer, w *workload.Workload) error {
	g := gobTrace{Version: FormatVersion, CacheSize: w.Spec.CacheSize, Jobs: w.Jobs}
	for _, f := range w.Catalog.Files() {
		g.FileSizes = append(g.FileSizes, f.Size)
	}
	for _, r := range w.Requests {
		g.Requests = append(g.Requests, []bundle.FileID(r))
	}
	if err := gob.NewEncoder(dst).Encode(g); err != nil {
		return fmt.Errorf("trace: gob encode: %w", err)
	}
	return nil
}

// ReadGob reads a binary trace.
func ReadGob(src io.Reader) (*workload.Workload, error) {
	var g gobTrace
	if err := gob.NewDecoder(src).Decode(&g); err != nil {
		return nil, fmt.Errorf("trace: gob decode: %w", err)
	}
	if g.Version != FormatVersion {
		return nil, fmt.Errorf("trace: unsupported version %d (want %d)", g.Version, FormatVersion)
	}
	w, err := rebuild(g.CacheSize, g.FileSizes, g.Requests)
	if err != nil {
		return nil, err
	}
	for _, j := range g.Jobs {
		if j < 0 || j >= len(w.Requests) {
			return nil, fmt.Errorf("trace: job references request %d of %d", j, len(w.Requests))
		}
	}
	w.Jobs = g.Jobs
	return w, nil
}

func rebuild(cacheSize bundle.Size, fileSizes []bundle.Size, requests [][]bundle.FileID) (*workload.Workload, error) {
	if cacheSize <= 0 {
		return nil, fmt.Errorf("trace: non-positive cache size %d", cacheSize)
	}
	cat := bundle.NewCatalog()
	for _, s := range fileSizes {
		if s < 0 {
			return nil, fmt.Errorf("trace: negative file size %d", s)
		}
		cat.AddAnonymous(s)
	}
	w := &workload.Workload{
		Spec:    workload.Spec{CacheSize: cacheSize},
		Catalog: cat,
	}
	for i, ids := range requests {
		for _, f := range ids {
			if int(f) >= len(fileSizes) {
				return nil, fmt.Errorf("trace: request %d references file %d of %d", i, f, len(fileSizes))
			}
		}
		w.Requests = append(w.Requests, bundle.New(ids...))
	}
	return w, nil
}
