package trace

import (
	"bytes"
	"strings"
	"testing"

	"fbcache/internal/workload"
)

func genSmall(t *testing.T) *workload.Workload {
	t.Helper()
	spec := workload.DefaultSpec()
	spec.NumFiles = 20
	spec.NumRequests = 10
	spec.Jobs = 100
	w, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func assertEqualWorkloads(t *testing.T, a, b *workload.Workload) {
	t.Helper()
	if a.Spec.CacheSize != b.Spec.CacheSize {
		t.Errorf("cache size %d vs %d", a.Spec.CacheSize, b.Spec.CacheSize)
	}
	if a.Catalog.Len() != b.Catalog.Len() {
		t.Fatalf("catalog %d vs %d files", a.Catalog.Len(), b.Catalog.Len())
	}
	for _, f := range a.Catalog.Files() {
		if got := b.Catalog.Size(f.ID); got != f.Size {
			t.Fatalf("file %d size %d vs %d", f.ID, f.Size, got)
		}
	}
	if len(a.Requests) != len(b.Requests) {
		t.Fatalf("requests %d vs %d", len(a.Requests), len(b.Requests))
	}
	for i := range a.Requests {
		if !a.Requests[i].Equal(b.Requests[i]) {
			t.Fatalf("request %d differs", i)
		}
	}
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatalf("jobs %d vs %d", len(a.Jobs), len(b.Jobs))
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs", i)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	w := genSmall(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, w); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualWorkloads(t, w, got)
}

func TestGobRoundTrip(t *testing.T) {
	w := genSmall(t)
	var buf bytes.Buffer
	if err := WriteGob(&buf, w); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualWorkloads(t, w, got)
}

func TestGobSmallerThanJSON(t *testing.T) {
	w := genSmall(t)
	var j, g bytes.Buffer
	if err := WriteJSON(&j, w); err != nil {
		t.Fatal(err)
	}
	if err := WriteGob(&g, w); err != nil {
		t.Fatal(err)
	}
	if g.Len() >= j.Len() {
		t.Errorf("gob %d bytes not smaller than json %d", g.Len(), j.Len())
	}
}

func TestReadJSONRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"garbage":      "not json\n",
		"bad version":  `{"version":99,"cache_size":10,"file_sizes":[1],"requests":[[0]],"jobs":0}` + "\n",
		"bad job ref":  `{"version":1,"cache_size":10,"file_sizes":[1],"requests":[[0]],"jobs":1}` + "\n" + `{"r":5}` + "\n",
		"bad file ref": `{"version":1,"cache_size":10,"file_sizes":[1],"requests":[[7]],"jobs":0}` + "\n",
		"job mismatch": `{"version":1,"cache_size":10,"file_sizes":[1],"requests":[[0]],"jobs":3}` + "\n" + `{"r":0}` + "\n",
		"neg size":     `{"version":1,"cache_size":10,"file_sizes":[-1],"requests":[[0]],"jobs":0}` + "\n",
		"zero cache":   `{"version":1,"cache_size":0,"file_sizes":[1],"requests":[[0]],"jobs":0}` + "\n",
	}
	for name, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadGobRejectsGarbage(t *testing.T) {
	if _, err := ReadGob(strings.NewReader("garbage")); err == nil {
		t.Error("accepted garbage gob")
	}
}

func TestJSONIsLineOriented(t *testing.T) {
	w := genSmall(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, w); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 1+len(w.Jobs) {
		t.Errorf("%d lines, want %d (header + jobs)", lines, 1+len(w.Jobs))
	}
}

// mustSmallWorkload builds a tiny workload for fuzz seeds.
func mustSmallWorkload(tb testing.TB) *workload.Workload {
	spec := workload.DefaultSpec()
	spec.NumFiles = 8
	spec.NumRequests = 4
	spec.Jobs = 6
	w, err := workload.Generate(spec)
	if err != nil {
		tb.Fatal(err)
	}
	return w
}
