package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON ensures arbitrary input never panics the JSON trace reader —
// it must either produce a consistent workload or an error.
func FuzzReadJSON(f *testing.F) {
	// Seed with a valid trace.
	w := mustSmallWorkload(f)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, w); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add(`{"version":1}`)
	f.Add(`{"version":1,"cache_size":10,"file_sizes":[1],"requests":[[0]],"jobs":0}` + "\n")
	f.Fuzz(func(t *testing.T, input string) {
		got, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		// Successful parses must be internally consistent.
		for i, j := range got.Jobs {
			if j < 0 || j >= len(got.Requests) {
				t.Fatalf("job %d references request %d of %d", i, j, len(got.Requests))
			}
		}
		for i, r := range got.Requests {
			for _, id := range r {
				if int(id) >= got.Catalog.Len() {
					t.Fatalf("request %d references file %d of %d", i, id, got.Catalog.Len())
				}
			}
		}
	})
}

// FuzzReadGob ensures arbitrary input never panics the binary reader.
func FuzzReadGob(f *testing.F) {
	w := mustSmallWorkload(f)
	var buf bytes.Buffer
	if err := WriteGob(&buf, w); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, input []byte) {
		got, err := ReadGob(bytes.NewReader(input))
		if err != nil {
			return
		}
		for i, j := range got.Jobs {
			if j < 0 || j >= len(got.Requests) {
				t.Fatalf("job %d references request %d of %d", i, j, len(got.Requests))
			}
		}
	})
}
