package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockCheck enforces the repository's lock-layout convention on structs that
// carry a sync.Mutex or sync.RWMutex: the mutex guards every field declared
// after it (fields above the mutex are immutable after construction), and
// every exported method that touches a guarded field through the receiver
// must acquire that mutex somewhere in its body.
//
// Unexported methods are exempt — they are conventionally called with the
// lock already held — as are methods whose name ends in "Locked".
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc: "flag exported methods of mutex-bearing structs that access fields " +
		"declared after the mutex without acquiring it",
	Run: runLockCheck,
}

type lockedStruct struct {
	typeName   string
	mutexField *types.Var // nil when the mutex is embedded
	mutexName  string     // field name used in diagnostics ("mu")
	embedded   bool
	guarded    map[*types.Var]bool
}

func runLockCheck(pass *Pass) {
	locked := lockedStructs(pass.Pkg)
	if len(locked) == 0 {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil {
				continue
			}
			if !exportedName(fn.Name.Name) || strings.HasSuffix(fn.Name.Name, "Locked") {
				continue
			}
			checkLockedMethod(pass, locked, fn)
		}
	}
}

// lockedStructs finds every named struct type in pkg with a sync mutex field
// and records which fields it guards (those declared after it).
func lockedStructs(pkg *types.Package) map[*types.Named]*lockedStruct {
	out := make(map[*types.Named]*lockedStruct)
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		mutexIdx := -1
		for i := 0; i < st.NumFields(); i++ {
			if isSyncMutex(st.Field(i).Type()) {
				mutexIdx = i
				break
			}
		}
		if mutexIdx < 0 {
			continue
		}
		ls := &lockedStruct{
			typeName:   tn.Name(),
			mutexField: st.Field(mutexIdx),
			mutexName:  st.Field(mutexIdx).Name(),
			embedded:   st.Field(mutexIdx).Embedded(),
			guarded:    make(map[*types.Var]bool),
		}
		for i := mutexIdx + 1; i < st.NumFields(); i++ {
			ls.guarded[st.Field(i)] = true
		}
		if len(ls.guarded) > 0 {
			out[named] = ls
		}
	}
	return out
}

func checkLockedMethod(pass *Pass, locked map[*types.Named]*lockedStruct, fn *ast.FuncDecl) {
	if len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return // unnamed receiver cannot touch fields
	}
	recvIdent := fn.Recv.List[0].Names[0]
	recvVar, ok := pass.TypesInfo.Defs[recvIdent].(*types.Var)
	if !ok {
		return
	}
	recvType := recvVar.Type()
	if ptr, isPtr := recvType.(*types.Pointer); isPtr {
		recvType = ptr.Elem()
	} else {
		return // value receivers copy the mutex; `go vet -copylocks` owns that
	}
	named, ok := recvType.(*types.Named)
	if !ok {
		return
	}
	ls, ok := locked[named]
	if !ok {
		return
	}

	var firstAccess *ast.SelectorExpr
	var firstField *types.Var
	acquires := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if isLockAcquire(pass, e, recvVar, ls) {
				acquires = true
			}
		case *ast.SelectorExpr:
			id, isIdent := e.X.(*ast.Ident)
			if !isIdent || pass.TypesInfo.ObjectOf(id) != recvVar {
				return true
			}
			sel, known := pass.TypesInfo.Selections[e]
			if !known || sel.Kind() != types.FieldVal {
				return true
			}
			f, isVar := sel.Obj().(*types.Var)
			if !isVar || !ls.guarded[f] {
				return true
			}
			if firstAccess == nil || e.Pos() < firstAccess.Pos() {
				firstAccess, firstField = e, f
			}
		}
		return true
	})
	if firstAccess != nil && !acquires {
		pass.Reportf(fn.Name.Pos(),
			"exported method (*%s).%s accesses %q, which is guarded by %q, without acquiring the lock; "+
				"call %s.%s.Lock() (or rename the method with a Locked suffix if callers hold it)",
			ls.typeName, fn.Name.Name, firstField.Name(), ls.mutexName,
			recvIdent.Name, ls.mutexName)
	}
}

// isLockAcquire reports whether call acquires the struct's mutex through the
// receiver: recv.mu.Lock(), recv.mu.RLock(), or recv.Lock() when the mutex
// is embedded. TryLock variants count — the analyzer checks discipline, not
// whether the acquisition is unconditional.
func isLockAcquire(pass *Pass, call *ast.CallExpr, recvVar *types.Var, ls *lockedStruct) bool {
	fun, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch fun.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
	default:
		return false
	}
	switch x := fun.X.(type) {
	case *ast.SelectorExpr: // recv.mu.Lock()
		id, ok := x.X.(*ast.Ident)
		if !ok || pass.TypesInfo.ObjectOf(id) != recvVar {
			return false
		}
		sel, ok := pass.TypesInfo.Selections[x]
		return ok && sel.Obj() == ls.mutexField
	case *ast.Ident: // recv.Lock() via embedded mutex
		return ls.embedded && pass.TypesInfo.ObjectOf(x) == recvVar
	}
	return false
}

// isSyncMutex reports whether t is sync.Mutex, sync.RWMutex, or a pointer to
// either.
func isSyncMutex(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
