// Package hotalloc is golden-test input for the hotalloc analyzer:
// per-iteration allocations in hot loops.
package hotalloc

import "sort"

type item struct {
	key  int
	size int64
}

func observe(v any) {}

// ClosureInLoop allocates a closure header per iteration.
func ClosureInLoop(items []item) {
	for range items {
		f := func() int { return 1 } // want "function literal allocated every iteration"
		f()
	}
}

// HoistedClosure allocates once — no diagnostic.
func HoistedClosure(items []item) {
	f := func() int { return 1 }
	for range items {
		f()
	}
}

// MakeInLoop allocates a fresh map per iteration.
func MakeInLoop(items []item) {
	for range items {
		seen := make(map[int]bool) // want "make allocates every iteration"
		seen[1] = true
	}
}

// GrowingAppend grows an unsized slice inside the loop.
func GrowingAppend(items []item) []int {
	var out []int
	for _, it := range items {
		out = append(out, it.key) // want "append in loop grows"
	}
	return out
}

// PreallocatedAppend reserves capacity up front — no diagnostic.
func PreallocatedAppend(items []item) []int {
	out := make([]int, 0, len(items))
	for _, it := range items {
		out = append(out, it.key)
	}
	return out
}

// FreshPerIteration declares the slice inside the loop — a different
// pattern, not this analyzer's target.
func FreshPerIteration(items []item) {
	for range items {
		var tmp []int
		tmp = append(tmp, 1)
		_ = tmp
	}
}

// BoxingInLoop converts a concrete int to an interface per iteration.
func BoxingInLoop(items []item) {
	for _, it := range items {
		observe(it.key) // want "boxed into interface"
	}
}

// SliceLitInLoop allocates a slice literal per iteration.
func SliceLitInLoop(items []item) {
	for range items {
		pair := []int{1, 2} // want "literal allocates every iteration"
		_ = pair
	}
}

// SortOutsideLoop is fine: the closure and boxing happen once.
func SortOutsideLoop(items []item) {
	sort.Slice(items, func(i, j int) bool { return items[i].key < items[j].key })
}

// debugChecks stands in for a build-tag-gated constant like
// invariant.Enabled: false in this (untagged) compilation.
const debugChecks = false

// DeadBranchIsFree allocates only under a constant-false guard — the
// compiler deletes the branch, so the analyzer must too. The live else-path
// is still checked.
func DeadBranchIsFree(items []item) {
	for _, it := range items {
		if debugChecks {
			observe(it.key)            // dead code: no diagnostic
			seen := make(map[int]bool) // dead code: no diagnostic
			seen[it.key] = true
		} else {
			observe(it.key) // want "boxed into interface"
		}
	}
}
