// Package mapiter is golden-test input for the mapiter analyzer. The shapes
// mirror internal/core and internal/cache: map-keyed residency sets whose
// keys feed eviction and selection order.
package mapiter

import "sort"

type FileID uint32

func evict([]FileID)             {}
func sortIDs(ids []FileID)       { sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] }) }
func lookup(f FileID) int64      { return int64(f) }
func use(interface{})            {}

// evictionOrder returns map keys in randomized iteration order — the
// bug class: callers treat the result as an eviction sequence.
func evictionOrder(resident map[FileID]int64) []FileID {
	var out []FileID
	for f := range resident { // want "without a deterministic sort"
		out = append(out, f)
	}
	return out
}

// sortedOrder extracts keys and sorts before returning: fine.
func sortedOrder(resident map[FileID]int64) []FileID {
	out := make([]FileID, 0, len(resident))
	for f := range resident {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// helperSorted sorts through a helper whose name says so: fine.
func helperSorted(resident map[FileID]int64) []FileID {
	var out []FileID
	for f := range resident {
		out = append(out, f)
	}
	sortIDs(out)
	return out
}

// sumSizes only reduces over the accumulated slice; order-independent.
func sumSizes(resident map[FileID]int64) int64 {
	var sizes []int64
	for _, s := range resident {
		sizes = append(sizes, s)
	}
	var total int64
	for _, s := range sizes {
		total += s
	}
	return total
}

// passedUnsorted hands randomized order to the eviction path.
func passedUnsorted(resident map[FileID]int64) {
	var victims []FileID
	for f := range resident { // want "without a deterministic sort"
		victims = append(victims, f)
	}
	evict(victims)
}

// indexedUnsorted picks "the first" of a randomized sequence.
func indexedUnsorted(resident map[FileID]int64) FileID {
	var out []FileID
	for f := range resident { // want "without a deterministic sort"
		out = append(out, f)
	}
	if len(out) == 0 { // len is not an ordered use
		return 0
	}
	return out[0]
}

// sortedLate sorts only after the first ordered use: still flagged.
func sortedLate(resident map[FileID]int64) []FileID {
	var out []FileID
	for f := range resident { // want "without a deterministic sort"
		out = append(out, f)
	}
	use(out[0])
	sortIDs(out)
	return out
}
