// Package pkgdocok is the analyzer's clean fixture: a conventional package
// comment in the "Package <name> ..." form on a non-test file. pkgdoc must
// report nothing here.
package pkgdocok

// D keeps the package non-empty.
var D = 4
