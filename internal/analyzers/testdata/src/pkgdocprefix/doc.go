// Helpers for things. This comment is attached to the package clause but
// does not open with the canonical "Package pkgdocprefix" form, so go doc
// renders no synopsis for it.
package pkgdocprefix // want "should start with"

// C keeps the package non-empty.
var C = 3
