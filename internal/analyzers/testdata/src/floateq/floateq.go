// Package floateq is golden-test input for the floateq analyzer. The shapes
// mirror internal/core's relative values and internal/policy/landlord's
// credits.
package floateq

type credit = float64

// tieBreak compares greedy ranks exactly — rounding noise decides the tie.
func tieBreak(v, bestV float64) bool {
	return v == bestV // want "exact == comparison"
}

// notEqual is the same hazard with !=.
func creditsDiffer(a, b credit) bool {
	return a != b // want "exact != comparison"
}

// mixed flags even when only one side is float-typed after conversion.
func zeroCredit(c credit) bool {
	return c == 0 // want "exact == comparison"
}

// nanCheck is the x != x idiom: exempt.
func nanCheck(v float64) bool {
	return v != v
}

// ints are not the analyzer's business.
func intEqual(a, b int) bool {
	return a == b
}

// switchTag dispatches on a float value: every case is an exact comparison.
func switchTag(v float64) string {
	switch v { // want "switch on floating-point value"
	case 0:
		return "zero"
	case 1:
		return "one"
	}
	return "other"
}

// switchCond (no tag) is fine; the case expressions are ordinary booleans.
func switchCond(v float64) string {
	switch {
	case v < 0.5:
		return "low"
	}
	return "high"
}

// allowed demonstrates the //fbvet:allow escape hatch.
func allowed(a, b float64) bool {
	return a == b //fbvet:allow floateq — exercising the suppression directive
}
