// Package guardedby is golden-test input for fbvet's guarded-field
// analyzer: //fbvet:guardedby annotations must be enforced across helper
// calls, RLock must not cover writes, copies of annotated structs must be
// flagged, constructors are exempt, and //fbvet:allow must suppress.
package guardedby

import "sync"

type counter struct {
	mu sync.Mutex
	n  int //fbvet:guardedby mu
}

// newCounter initializes a fresh object: no lock exists to hold yet, and
// none is needed — the fresh-local exemption covers it.
func newCounter() *counter {
	c := &counter{}
	c.n = 1
	return c
}

func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) bad() int {
	return c.n // want "without holding mu"
}

// incLocked's contract — called with c.mu held — is proven from its
// callers by the interprocedural engine, not trusted from a comment.
func (c *counter) incLocked() {
	c.n += 2
}

func (c *counter) incViaHelper() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.incLocked()
}

func (c *counter) suppressed() int {
	//fbvet:allow guardedby — suppressed-case fixture: lock-free read is the point
	return c.n
}

// copyReceiver copies the mutex along with the fields it guards.
func (c counter) copyReceiver() {} // want "copies"

// snapshot copies the struct out from under its own lock.
func snapshot(c *counter) counter {
	return *c // want "dereference copies"
}

type gauge struct {
	rw sync.RWMutex
	v  int //fbvet:guardedby rw
}

func (g *gauge) get() int {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return g.v
}

func (g *gauge) badSet(v int) {
	g.rw.RLock()
	defer g.rw.RUnlock()
	g.v = v // want "RLock"
}

func (g *gauge) set(v int) {
	g.rw.Lock()
	defer g.rw.Unlock()
	g.v = v
}

// ring demonstrates the doc-comment annotation form.
type ring struct {
	mu sync.Mutex
	//fbvet:guardedby mu
	buf []int
}

func (r *ring) push(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = append(r.buf, v)
}

// broken demonstrates annotation validation: the named lock must exist.
type broken struct {
	n int /*fbvet:guardedby missing*/ // want "no field"
}

func (b *broken) get() int { return b.n }
