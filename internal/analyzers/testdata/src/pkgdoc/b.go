// This file also lacks a package doc comment (the comment above `package`
// here is separated by a blank line, so go/ast does not attach it as Doc).

package pkgdoc

// B exists so the package has more than one file: the diagnostic must attach
// to the alphabetically first file only, not repeat per file.
var B = 2
