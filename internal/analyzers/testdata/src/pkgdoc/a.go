package pkgdoc // want "has no package documentation comment"

// A declares something so the package is non-trivial; the package itself has
// no documentation comment on any file, which is the violation under test.
// This comment documents A, not the package (it is attached to the decl).
var A = 1
