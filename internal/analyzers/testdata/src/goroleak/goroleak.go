// Package goroleak is golden-test input for fbvet's goroutine-lifecycle
// analyzer: unbounded spawns in loops and unstoppable timers/tickers must
// be flagged; WaitGroup-bounded spawns, cancellation-aware goroutines,
// stopped or escaping timers, and //fbvet:allow-ed sites must not.
package goroleak

import (
	"sync"
	"time"
)

// unbounded spawns one goroutine per item with nothing ever joining or
// stopping them — the accept-loop bug this analyzer exists for.
func unbounded(work []func()) {
	for _, w := range work {
		w := w
		go w() // want "without a WaitGroup"
	}
}

// bounded follows the Add/Done/Wait discipline.
func bounded(work []func()) {
	var wg sync.WaitGroup
	for _, w := range work {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w()
		}()
	}
	wg.Wait()
}

// cancellable goroutines block on a done channel, so a shutdown path exists
// even without a WaitGroup.
func cancellable(done chan struct{}, work []func()) {
	for _, w := range work {
		w := w
		go func() {
			select {
			case <-done:
			default:
				w()
			}
		}()
	}
}

// tick uses the unstoppable convenience constructor.
func tick(out chan<- int) {
	n := 0
	for range time.Tick(time.Second) { // want "time.Tick"
		n++
		out <- n
	}
}

// leakyTicker holds the ticker in a local that is neither stopped nor
// handed to anyone who could stop it.
func leakyTicker(d time.Duration) {
	t := time.NewTicker(d) // want "never stopped"
	_ = t
}

// stoppedTicker is the canonical deferred-Stop shape.
func stoppedTicker(d time.Duration, out chan<- struct{}) {
	t := time.NewTicker(d)
	defer t.Stop()
	<-t.C
	out <- struct{}{}
}

// discarded drops the *Timer on the floor; nothing can ever stop it.
func discarded(d time.Duration, f func()) {
	time.AfterFunc(d, f) // want "discarded"
}

// handedOff transfers ownership: the caller receives the timer and with it
// the duty to stop it.
func handedOff(d time.Duration) *time.Timer {
	return time.NewTimer(d)
}

// suppressed demonstrates the allow contract.
func suppressed(work []func()) {
	for _, w := range work {
		w := w
		//fbvet:allow goroleak — suppressed-case fixture: spawn-per-item is the point
		go w()
	}
}
