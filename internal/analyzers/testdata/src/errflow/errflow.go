// Package errflow is golden-test input for the errflow analyzer: errors on
// simulator/cmd paths must be inspected, not dropped or overwritten.
package errflow

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func work() error             { return errors.New("boom") }
func workValue() (int, error) { return 0, errors.New("boom") }

// Dropped discards an error via an expression statement.
func Dropped() {
	work() // want "silently discarded"
}

// DroppedMethod drops a file-close error outside a defer.
func DroppedMethod(f *os.File) {
	f.Close() // want "silently discarded"
}

// DeferredCloseIsIdiom — deferred drops are deliberate, no diagnostic.
func DeferredCloseIsIdiom(f *os.File) {
	defer f.Close()
}

// ExplicitDiscard is deliberate, no diagnostic.
func ExplicitDiscard() {
	_ = work()
}

// FmtIsExempt — fmt's error returns are conventionally ignored.
func FmtIsExempt() {
	fmt.Println("hello")
	fmt.Fprintf(os.Stderr, "oops\n")
}

// BuilderIsExempt — strings.Builder documents err == nil.
func BuilderIsExempt(sb *strings.Builder) {
	sb.WriteString("x")
}

// Overwritten loses the first error before anything reads it.
func Overwritten() error {
	_, err := workValue()
	_, err = workValue() // want "overwritten before"
	return err
}

// CheckedBetween inspects the first error — no diagnostic.
func CheckedBetween() error {
	_, err := workValue()
	if err != nil {
		return err
	}
	_, err = workValue()
	return err
}

// ConditionalOverwriteIsMaybe — the nested write may not execute, so the
// linear pass must not flag the later assignment.
func ConditionalOverwriteIsMaybe(flip bool) error {
	_, err := workValue()
	if flip {
		_, err = workValue()
	}
	_, err = workValue()
	return err
}

// ReadByClosure counts as inspection — no diagnostic.
func ReadByClosure() error {
	_, err := workValue()
	report := func() { fmt.Println(err) }
	report()
	_, err = workValue()
	return err
}
