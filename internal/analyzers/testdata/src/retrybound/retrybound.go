// Package retrybound is golden-test input for the retrybound analyzer:
// retry loops must be attempt-bounded or deadline-bounded.
package retrybound

import (
	"errors"
	"time"
)

func op() error { return errors.New("transient") }

func retryOnce() error { return errors.New("nope") }

// UnboundedSleepRetry spins forever when the failure is persistent: the
// classic sleep-and-retry shape with nothing capping the attempts.
func UnboundedSleepRetry() {
	for { // want "unbounded retry loop"
		if err := op(); err == nil {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// UnboundedNamedRetry calls a retry-flavored helper in an infinite loop;
// the callee name alone marks the loop, sleep or not.
func UnboundedNamedRetry() {
	for { // want "unbounded retry loop"
		if retryOnce() == nil {
			break
		}
	}
}

// ForTrueRetry is the same hazard spelled with a constant condition.
func ForTrueRetry() {
	for true { // want "unbounded retry loop"
		if err := op(); err == nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
}

// BoundedByHeader is the conventional shape: the header caps the attempts.
func BoundedByHeader() error {
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		if err = op(); err == nil {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return err
}

// BoundedByGuard counts attempts inside a bare for and exits on the cap;
// the integer comparison in the branch condition is the recognized bound.
func BoundedByGuard() error {
	attempts := 0
	for {
		err := op()
		if err == nil {
			return nil
		}
		attempts++
		if attempts >= 5 {
			return err
		}
		time.Sleep(time.Millisecond)
	}
}

// BoundedByDeadline exits via a select on a timer channel: deadline-bounded,
// not attempt-bounded, and equally acceptable.
func BoundedByDeadline() error {
	deadline := time.After(time.Second)
	for {
		if err := op(); err == nil {
			return nil
		}
		select {
		case <-deadline:
			return errors.New("deadline exceeded")
		case <-time.After(time.Millisecond):
		}
	}
}

// EventLoop assigns an error every iteration but never sleeps and never
// names a retry: accept/decode-until-error loops are not retry loops.
func EventLoop(next func() (int, error)) {
	for {
		_, err := next()
		if err != nil {
			return
		}
	}
}

// SanctionedSpin shows the escape hatch for a deliberate wait-forever loop.
func SanctionedSpin() {
	for { //fbvet:allow retrybound — boot-time wait; the operator interrupts with a signal
		if err := op(); err == nil {
			return
		}
		time.Sleep(time.Second)
	}
}
