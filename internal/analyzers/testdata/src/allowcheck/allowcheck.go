// Package allowcheck is golden-test input for fbvet's self-check: allow
// directives must justify themselves.
package allowcheck

// Justified directives — em-dash and double-dash forms — are fine.
func Justified() {
	x := 1.0
	y := 1.0
	if x == y { //fbvet:allow floateq — comparing freshly assigned constants, no arithmetic involved
		_ = x
	}
	if x == y { //fbvet:allow floateq -- same as above, ASCII separator
		_ = y
	}
}

// Unjustified directives are flagged wherever they appear. (The directive is
// a block comment so the want marker can share its line.)
func Unjustified() {
	x := 1.0
	y := 1.0
	if x == y { /*fbvet:allow floateq */ // want "lacks a justification"
		_ = x
	}
}

/*fbvet:allow mapiter */   // want "lacks a justification"
func StandaloneDirective() {}

// An unjustified allow naming allowcheck itself must still be flagged: the
// self-check bypasses the suppression table, or it could silence itself —
// which also means the directive can never suppress anything, so the
// unused-allow audit flags it too.
/*fbvet:allow allowcheck */ // want "lacks a justification" "unused"
func SelfAllow()            {}

// A justified directive naming an analyzer that does not exist is dead
// weight (likely a typo hiding a live finding) and is flagged by the audit.
/*fbvet:allow nosuchpass — justified in form, but the name is wrong */ // want "unknown analyzer"
func UnknownName()                                                     {}

// Perf directives in a function doc comment are where the perf suite reads
// them: fine, with or without trailing rationale.
//
//fbvet:noescape
//fbvet:inline hot accessor
func PerfAnnotated(a int) int { return a + 1 }

// A perf directive anywhere else binds to nothing — the perf suite silently
// ignores it, so the contract it claims is not enforced.
func StrandedPerfDirectives() {
	/*fbvet:nobce*/ // want "not a function doc comment"
	xs := []int{1, 2, 3}
	_ = xs[1] /*fbvet:noescape*/ // want "not a function doc comment"
}

/*fbvet:inline*/ // want "not a function doc comment"
var notAFunc = 7

// A misspelled directive is a dead annotation hiding behind a typo.
/*fbvet:noescap*/ // want "unknown fbvet directive"
func Typo() {}
