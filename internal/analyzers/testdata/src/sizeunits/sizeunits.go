// Package sizeunits is golden-test input for the sizeunits analyzer. Size
// mirrors bundle.Size: an int64 byte count that must never pass through
// platform-int arithmetic.
package sizeunits

type Size int64

type FileID uint32

// truncateToInt narrows a 64-bit byte count to platform int.
func truncateToInt(s Size) int {
	return int(s) // want "narrowing conversion"
}

// truncateTo32 narrows explicitly.
func truncateTo32(n int64) int32 {
	return int32(n) // want "narrowing conversion"
}

// intToInt32 narrows a platform int. Deliberately out of scope: only
// explicitly 64-bit sources are flagged, so index/ID conversions like
// FileID(i) stay quiet.
func intToInt32(n int) int32 {
	return int32(n)
}

// lateWiden multiplies in int and widens the overflow-prone product.
func lateWiden(files, avgBytes int) Size {
	return Size(files * avgBytes) // want "widens after the *"
}

// lateShift is the shift-flavored variant.
func lateShift(megabytes int) int64 {
	return int64(megabytes << 20) // want "widens after the <<"
}

// earlyWiden converts the operands first: fine.
func earlyWiden(files, avgBytes int) Size {
	return Size(files) * Size(avgBytes)
}

// plainWiden of a single variable cannot overflow: fine.
func plainWiden(n int) int64 {
	return int64(n)
}

// constants are range-checked by the compiler: fine.
func constWiden() int64 {
	return int64(1 << 20)
}

// small-to-int fits on every platform: fine.
func idToInt(f FileID) int {
	return int(f)
}

// additions widen fine; only products and shifts outgrow their operands.
func sumWiden(a, b int) int64 {
	return int64(a + b)
}
