// Package ndtaint is golden-test input for the ndtaint analyzer: values
// derived from wall clocks, the global math/rand generator, or randomized
// map iteration order must not reach simulation state.
package ndtaint

import (
	"math/rand"
	"time"
)

// Sim stands in for simulation state.
type Sim struct {
	Started int64
	Jitter  float64
	Order   []int
}

var globalEpoch int64

// DirectFieldWrite stores a wall-clock read into state.
func DirectFieldWrite(s *Sim) {
	s.Started = time.Now().Unix() // want "time.Now()" "field write"
}

// FlowsThroughLocals launders the clock through locals and arithmetic; the
// taint engine must follow the chain.
func FlowsThroughLocals(s *Sim) {
	t := time.Now()
	u := t.Add(5 * time.Second)
	delta := u.Unix() - 3
	s.Started = delta // want "time.Now()" "field write"
}

// GlobalRandReturn returns a draw from the shared generator.
func GlobalRandReturn() float64 {
	v := rand.Float64()
	return v * 2 // want "global math/rand.Float64" "return value"
}

// GlobalRandArg passes global randomness onward.
func GlobalRandArg(s *Sim) {
	record(s, rand.Intn(10)) // want "global math/rand.Intn" "call argument"
}

// GlobalShuffle perturbs the shared generator even though nothing is read.
func GlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "mutates the shared generator"
}

// SeededIsSanctioned threads a seeded generator — no diagnostics.
func SeededIsSanctioned(s *Sim, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	s.Jitter = rng.Float64()
}

// MapFirstKey selects whichever key iteration yields first.
func MapFirstKey(m map[int]bool) int {
	for k := range m {
		return k // want "randomized map iteration order" "return value"
	}
	return -1
}

// MapBreakPick stores the element found when the loop breaks early.
func MapBreakPick(s *Sim, m map[int]int) {
	var pick int
	for _, v := range m {
		if v > 10 {
			pick = v
			break
		}
	}
	s.Started = int64(pick) // want "randomized map iteration order" "field write"
}

// ExhaustiveReduce visits every element — order-independent, no diagnostic.
func ExhaustiveReduce(m map[int]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// LocalOnlyClock keeps the clock value local (e.g. for a debug print that
// never lands in state) — no sink, no diagnostic.
func LocalOnlyClock() {
	t := time.Now()
	_ = t
}

// PackageVarWrite hits the package-level variable sink.
func PackageVarWrite() {
	globalEpoch = time.Now().UnixNano() // want "time.Now()" "package-level variable"
}

// RacyGoroutine shares a plain counter with its spawner.
func RacyGoroutine(s *Sim) int {
	n := 0
	go func() { // want "without synchronization"
		n++
	}()
	return n
}

// ChannelGoroutine communicates over a channel — sanctioned.
func ChannelGoroutine() int {
	ch := make(chan int, 1)
	go func() {
		ch <- 1
	}()
	return <-ch
}

func record(s *Sim, v int) {
	s.Order = append(s.Order, v)
}
