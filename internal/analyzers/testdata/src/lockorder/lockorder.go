// Package lockorder is golden-test input for fbvet's lock-ordering
// analyzer: conflicting acquisition orders — including one realized through
// a helper call — must surface as a potential-deadlock cycle, re-acquiring
// a held mutex must surface immediately, and //fbvet:allow must suppress.
package lockorder

import "sync"

// A and B form a deliberate lock-order conflict: ab takes (A).mu then
// (B).mu directly, while ba reaches (A).mu through lockA while holding
// (B).mu — the engine must see through the helper to witness the cycle.
type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

func ab(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want "potential deadlock" "via lockA"
	defer b.mu.Unlock()
}

func ba(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	lockA(a)
}

func lockA(a *A) {
	a.mu.Lock()
	defer a.mu.Unlock()
}

// Re-acquiring the same mutex exclusively deadlocks without needing a
// second goroutine: sync.Mutex is not reentrant.
func reacquire(a *A) {
	a.mu.Lock()
	a.mu.Lock() // want "self-deadlock"
	a.mu.Unlock()
	a.mu.Unlock()
}

// C and D conflict the same way A and B do, but the cycle's reported edge
// carries a justified allow, so nothing may surface for it.
type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

func cd(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	//fbvet:allow lockorder — suppressed-case fixture: the conflicting order is the point
	d.mu.Lock()
	defer d.mu.Unlock()
}

func dc(c *C, d *D) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
}
