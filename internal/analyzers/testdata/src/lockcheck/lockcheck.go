// Package lockcheck is golden-test input for the lockcheck analyzer. The
// shapes mirror internal/srm and internal/store: a service struct whose
// mutex guards the mutable fields declared after it, with immutable
// configuration above.
package lockcheck

import "sync"

type Cache struct {
	capacity int64 // immutable after construction: declared above the mutex

	mu     sync.Mutex
	used   int64
	pinned int
}

// Used reads a guarded field with no lock: the bug class.
func (c *Cache) Used() int64 { // want "without acquiring the lock"
	return c.used
}

// Add locks before touching guarded state: fine.
func (c *Cache) Add(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.used += n
}

// TryAdd uses TryLock: acquisition discipline is present.
func (c *Cache) TryAdd(n int64) bool {
	if !c.mu.TryLock() {
		return false
	}
	defer c.mu.Unlock()
	c.used += n
	return true
}

// Capacity reads an unguarded (pre-mutex, immutable) field: fine.
func (c *Cache) Capacity() int64 {
	return c.capacity
}

// UsedLocked declares that the caller holds the lock: exempt by suffix.
func (c *Cache) UsedLocked() int64 {
	return c.used
}

// snapshot is unexported: conventionally called with the lock held.
func (c *Cache) snapshot() (int64, int) {
	return c.used, c.pinned
}

// Stats goes through a closure; the receiver access is still visible.
func (c *Cache) Stats() int { // want "without acquiring the lock"
	get := func() int { return c.pinned }
	return get()
}

type Counter struct {
	sync.Mutex
	n int
}

// Inc acquires the embedded mutex through promotion: fine.
func (c *Counter) Inc() {
	c.Lock()
	defer c.Unlock()
	c.n++
}

// Get skips the embedded mutex.
func (c *Counter) Get() int { // want "without acquiring the lock"
	return c.n
}
