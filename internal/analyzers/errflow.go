package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrFlow enforces error discipline on the simulator and cmd/ paths with a
// flow-sensitive pass over each function body:
//
//  1. dropped errors — an expression statement calling a function whose
//     (last) result is an error discards it silently;
//  2. overwritten errors — an error variable is assigned and then reassigned
//     in the same block before anything inspects it, so the first failure is
//     lost.
//
// Deferred calls (defer f.Close()) and explicit discards (_ = f()) are
// deliberate idioms and exempt, as is package fmt (whose error returns are
// conventionally ignored) and the never-failing writers bytes.Buffer and
// strings.Builder.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc: "flag error values dropped by expression statements or overwritten " +
		"before inspection on simulator and cmd/ paths",
	Run: runErrFlow,
}

// errflowScope: every command and the simulation core. Library leaf packages
// (bundle, floats, stats) are exercised through these paths anyway.
var errflowScope = append([]string{"cmd/"}, ndtaintScope...)

func runErrFlow(pass *Pass) {
	if !inAnalyzerScope(pass, errflowScope) {
		return
	}
	funcBodies(pass, func(name string, body *ast.BlockStmt) {
		checkDroppedErrors(pass, body)
		checkOverwrittenErrors(pass, body)
	})
}

// checkDroppedErrors flags ExprStmt calls whose error result vanishes.
func checkDroppedErrors(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !callResultsError(pass, call) || errDropExempt(pass, call) {
			return true
		}
		pass.Reportf(es.Pos(), "%s returns an error that is silently discarded; "+
			"inspect it, or write `_ = ...` to discard it deliberately",
			types.ExprString(call.Fun))
		return true
	})
}

// errDropExempt lists conventional ignore-the-error callees.
func errDropExempt(pass *Pass, call *ast.CallExpr) bool {
	if pkg, _ := calleePackage(pass, call); pkg == "fmt" {
		return true
	}
	// Methods on bytes.Buffer / strings.Builder document err == nil.
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "bytes.Buffer", "strings.Builder":
		return true
	}
	return false
}

// checkOverwrittenErrors scans every block linearly: an error-typed variable
// assigned by one statement and reassigned by a later top-level statement of
// the same block, with no intervening read, lost its first value uninspected.
// Conditional writes in nested blocks conservatively clear tracking (the
// overwrite is only a maybe), and any read — including inside nested blocks
// or closures — clears it too.
func checkOverwrittenErrors(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		pending := make(map[types.Object]token.Pos)
		for _, stmt := range block.List {
			// Reads anywhere in the statement clear pending state. LHS idents
			// of the statement itself are writes, not reads.
			writes := topLevelErrWrites(pass, stmt)
			for obj := range readsOf(pass, stmt, writes) {
				delete(pending, obj)
			}
			// Nested (conditional) writes make the state unknown.
			for obj := range nestedWrites(pass, stmt) {
				delete(pending, obj)
			}
			for obj, pos := range writes {
				if prev, ok := pending[obj]; ok {
					pass.Reportf(pos, "error %q assigned at line %d is overwritten before "+
						"it is inspected; check or return the first error",
						obj.Name(), pass.Fset.Position(prev).Line)
				}
				pending[obj] = pos
			}
		}
		return true
	})
}

// topLevelErrWrites returns the error-typed objects written when stmt itself
// is a plain assignment (including := redeclarations of existing objects).
func topLevelErrWrites(pass *Pass, stmt ast.Stmt) map[types.Object]token.Pos {
	out := make(map[types.Object]token.Pos)
	asg, ok := stmt.(*ast.AssignStmt)
	if !ok {
		return out
	}
	for _, l := range asg.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil || !types.Identical(obj.Type(), errorType) {
			continue
		}
		out[obj] = id.Pos()
	}
	return out
}

// readsOf collects error-typed objects whose value stmt observes: every
// identifier use except the top-level write targets.
func readsOf(pass *Pass, stmt ast.Stmt, writes map[types.Object]token.Pos) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(stmt, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || !types.Identical(obj.Type(), errorType) {
			return true
		}
		if pos, isWrite := writes[obj]; isWrite && pos == id.Pos() {
			return true
		}
		out[obj] = true
		return true
	})
	return out
}

// nestedWrites collects error-typed objects assigned somewhere inside stmt
// other than stmt itself (branch arms, loop bodies, closures).
func nestedWrites(pass *Pass, stmt ast.Stmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(stmt, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || ast.Node(stmt) == n {
			return true
		}
		for _, l := range asg.Lhs {
			if id, ok := l.(*ast.Ident); ok {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil && types.Identical(obj.Type(), errorType) {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}
