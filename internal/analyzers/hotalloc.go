package analyzers

import (
	"go/ast"
	"go/types"
)

// HotAlloc flags per-iteration heap allocations inside the selection and
// replacement inner loops (internal/core, internal/policy/landlord) — the
// paths the future sharding/parallelism PRs must keep allocation-free:
//
//   - function literals created inside a loop (one closure header per
//     iteration);
//   - make(...) and map/slice composite literals inside a loop;
//   - append in a loop to a slice declared outside it without a capacity
//     hint (repeated growth reallocations);
//   - concrete values boxed into interface parameters inside a loop.
//
// The analyzer is intentionally scoped: cold paths elsewhere may allocate
// freely, and a justified //fbvet:allow hotalloc marks the loops whose
// allocation is the data structure itself (e.g. building an inverted index).
// Branches under a constant-false condition (`if invariant.Enabled { ... }`
// without the build tag) are dead code the compiler deletes, so they are
// skipped entirely.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "flag per-iteration allocations (closures, make, growing append, " +
		"interface boxing) in the OptCacheSelect/OptFileBundle/Landlord inner loops",
	Run: runHotAlloc,
}

var hotallocScope = []string{"internal/core", "internal/policy/landlord"}

func runHotAlloc(pass *Pass) {
	if !inAnalyzerScope(pass, hotallocScope) {
		return
	}
	funcBodies(pass, func(name string, body *ast.BlockStmt) {
		checkLoops(pass, body, nil)
	})
}

// checkLoops walks stmts, tracking the innermost enclosing loop (nil at
// function top level); allocation sites inside a loop are reported against
// that loop.
func checkLoops(pass *Pass, n ast.Node, loop ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil || m == n {
			return true
		}
		switch s := m.(type) {
		case *ast.IfStmt:
			if isConstFalse(pass, s.Cond) {
				// Dead branch (e.g. a disabled invariant.Enabled guard): the
				// compiler deletes it, so its allocations never run. Only the
				// else-path stays live.
				if s.Else != nil {
					checkLoops(pass, s.Else, loop)
				}
				return false
			}
		case *ast.ForStmt:
			checkLoops(pass, s.Body, s)
			return false
		case *ast.RangeStmt:
			checkLoops(pass, s.Body, s)
			return false
		case *ast.FuncLit:
			if loop != nil {
				pass.Reportf(s.Pos(), "function literal allocated every iteration; hoist the closure out of the loop")
			}
			// Keep scanning its body in the current loop context: the closure
			// runs (at least) once per iteration.
			checkLoops(pass, s.Body, loop)
			return false
		case *ast.CallExpr:
			if loop == nil {
				return true
			}
			if isBuiltinCall(pass, s, "make") {
				pass.Reportf(s.Pos(), "make allocates every iteration; hoist it or reuse a cleared buffer")
				return true
			}
			checkBoxing(pass, s, loop)
		case *ast.CompositeLit:
			if loop == nil {
				return true
			}
			if t := pass.TypeOf(s); t != nil {
				switch t.Underlying().(type) {
				case *types.Map, *types.Slice:
					pass.Reportf(s.Pos(), "map/slice literal allocates every iteration; hoist it out of the loop")
				}
			}
		case *ast.AssignStmt:
			if loop == nil {
				return true
			}
			checkGrowingAppend(pass, s, loop)
		}
		return true
	})
}

// isConstFalse reports whether the type-checker evaluated cond to the
// constant false (an untagged build-gate like invariant.Enabled).
func isConstFalse(pass *Pass, cond ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[cond]
	return ok && tv.Value != nil && tv.Value.String() == "false"
}

// checkGrowingAppend flags x = append(x, ...) inside a loop when x is a
// local slice declared outside the loop with no capacity hint, so the loop
// pays repeated growth reallocations that a make([]T, 0, n) would avoid.
func checkGrowingAppend(pass *Pass, asg *ast.AssignStmt, loop ast.Node) {
	if len(asg.Lhs) != len(asg.Rhs) {
		return
	}
	for i := range asg.Lhs {
		id, ok := asg.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		call, ok := asg.Rhs[i].(*ast.CallExpr)
		if !ok || !isBuiltinCall(pass, call, "append") || len(call.Args) == 0 {
			continue
		}
		base, ok := call.Args[0].(*ast.Ident)
		if !ok || pass.TypesInfo.ObjectOf(base) != pass.TypesInfo.ObjectOf(id) {
			continue
		}
		obj, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
		if !ok || obj == nil {
			continue
		}
		// Declared inside the loop: fresh slice per iteration, different issue.
		if obj.Pos() >= loop.Pos() && obj.Pos() < loop.End() {
			continue
		}
		if declLacksCapacity(pass, obj) {
			pass.Reportf(asg.Pos(), "append in loop grows %q, declared without a capacity hint; "+
				"preallocate with make(%s, 0, n)", id.Name, types.TypeString(obj.Type(), types.RelativeTo(pass.Pkg)))
		}
	}
}

// declLacksCapacity locates obj's declaration in the package AST and reports
// whether it pins no capacity: `var x []T`, `x := []T{}`, x := []T(nil), or
// `x := make([]T, 0)`. Parameters, fields, and declarations it cannot find
// are assumed intentional.
func declLacksCapacity(pass *Pass, obj *types.Var) bool {
	for _, file := range pass.Files {
		if file.Pos() > obj.Pos() || obj.Pos() > file.End() {
			continue
		}
		lacks := false
		ast.Inspect(file, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.ValueSpec:
				for i, name := range d.Names {
					if name.Pos() != obj.Pos() {
						continue
					}
					if len(d.Values) == 0 {
						lacks = true // var x []T
					} else if i < len(d.Values) {
						lacks = initLacksCapacity(pass, d.Values[i])
					}
					return false
				}
			case *ast.AssignStmt:
				if len(d.Lhs) != len(d.Rhs) {
					return true
				}
				for i, l := range d.Lhs {
					id, ok := l.(*ast.Ident)
					if !ok || id.Pos() != obj.Pos() {
						continue
					}
					lacks = initLacksCapacity(pass, d.Rhs[i])
					return false
				}
			}
			return true
		})
		return lacks
	}
	return false
}

// initLacksCapacity classifies a slice initializer expression.
func initLacksCapacity(pass *Pass, e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CompositeLit:
		return len(v.Elts) == 0 // []T{} — empty, no capacity
	case *ast.CallExpr:
		if isBuiltinCall(pass, v, "make") {
			if len(v.Args) >= 3 {
				return false // make([]T, n, c)
			}
			if len(v.Args) == 2 {
				// make([]T, n): sized is fine; make([]T, 0) is not.
				if tv, ok := pass.TypesInfo.Types[v.Args[1]]; ok && tv.Value != nil {
					return tv.Value.String() == "0"
				}
				return false
			}
		}
		// Conversion []T(nil) and the like.
		if tv, ok := pass.TypesInfo.Types[v.Fun]; ok && tv.IsType() && len(v.Args) == 1 {
			if tvArg, ok := pass.TypesInfo.Types[v.Args[0]]; ok && tvArg.IsNil() {
				return true
			}
		}
	case *ast.Ident:
		if tv, ok := pass.TypesInfo.Types[v]; ok && tv.IsNil() {
			return true // x := Bundle(nil) spelled via ident nil
		}
	}
	return false
}

// checkBoxing flags concrete values passed to interface parameters inside a
// loop — each such argument escapes to an interface header allocation.
// panic() arguments are exempt (cold path by definition).
func checkBoxing(pass *Pass, call *ast.CallExpr, loop ast.Node) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin); isBuiltin {
			return
		}
	}
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				param = sl.Elem()
			}
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		}
		if param == nil || !types.IsInterface(param) {
			continue
		}
		argType := pass.TypeOf(arg)
		if argType == nil || types.IsInterface(argType) {
			continue
		}
		if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.IsNil() {
			continue
		}
		pass.Reportf(arg.Pos(), "%s is boxed into interface parameter of %s every iteration; "+
			"use a concrete-typed helper on the hot path",
			types.ExprString(arg), types.ExprString(call.Fun))
	}
}
