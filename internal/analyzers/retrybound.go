package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// RetryBound enforces that retry loops are attempt-bounded. A loop with no
// exit condition in its header (`for { ... }` / `for true { ... }`) that
// keeps re-trying a fallible operation — it calls a retry-flavored helper, or
// it assigns an error and sleeps between iterations — will spin forever when
// the failure is persistent, turning one dead site into a hung job. Such a
// loop must either bound its attempts in the header, count attempts against a
// cap inside the body (any integer comparison in a branch condition counts as
// the guard), or wait on a channel deadline via select. The resilience layer
// gets this for free from faults.RetryPolicy.MaxAttempts; hand-rolled loops
// must match it.
var RetryBound = &Analyzer{
	Name: "retrybound",
	Doc: "flag unbounded retry loops: `for { retry }` with no attempt cap or " +
		"deadline on simulator and cmd/ paths",
	Run: runRetryBound,
}

// retryboundScope: everything under internal/ plus the commands — the whole
// tree hand-rolled retry loops could hide in.
var retryboundScope = []string{"internal/", "cmd/"}

func runRetryBound(pass *Pass) {
	if !inAnalyzerScope(pass, retryboundScope) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || !headerUnbounded(pass, loop) {
				return true
			}
			if !looksLikeRetry(pass, loop.Body) {
				return true
			}
			if bodyBoundsAttempts(pass, loop.Body) {
				return true
			}
			pass.Reportf(loop.Pos(), "unbounded retry loop: nothing caps the attempts; "+
				"bound the loop header, guard an attempt counter, or select on a deadline "+
				"(cf. faults.RetryPolicy.MaxAttempts)")
			return true
		})
	}
}

// headerUnbounded reports whether the for header places no bound on the loop:
// no condition at all, or a condition that is constantly true.
func headerUnbounded(pass *Pass, loop *ast.ForStmt) bool {
	if loop.Cond == nil {
		return true
	}
	tv, ok := pass.TypesInfo.Types[loop.Cond]
	return ok && tv.Value != nil && tv.Value.String() == "true"
}

// looksLikeRetry reports whether the loop body is re-trying a fallible
// operation: it calls something retry-flavored by name, or it both assigns an
// error and sleeps (the classic retry-with-pause shape). Plain event loops —
// accept/decode until error — assign errors but never sleep, and stay exempt.
func looksLikeRetry(pass *Pass, body *ast.BlockStmt) bool {
	assignsErr, sleeps, named := false, false, false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			name := calleeName(n)
			if isTimeSleep(pass, n) {
				sleeps = true
			} else if retryFlavored(name) {
				named = true
			}
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil && types.Identical(obj.Type(), errorType) {
						assignsErr = true
					}
				}
			}
		}
		return true
	})
	return named || (assignsErr && sleeps)
}

// retryFlavored matches callee names that announce a retry.
func retryFlavored(name string) bool {
	lower := strings.ToLower(name)
	for _, frag := range []string{"retry", "backoff", "redial", "reconnect"} {
		if strings.Contains(lower, frag) {
			return true
		}
	}
	return false
}

// calleeName extracts the bare function or method name of a call.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isTimeSleep reports whether call is time.Sleep.
func isTimeSleep(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sleep" {
		return false
	}
	pkg, _ := calleePackage(pass, call)
	return pkg == "time"
}

// bodyBoundsAttempts reports whether something inside the loop can cut the
// retries off: an integer comparison inside a branch condition (an attempt
// counter checked against a cap) or a select statement (a deadline or
// cancellation channel).
func bodyBoundsAttempts(pass *Pass, body *ast.BlockStmt) bool {
	bounded := false
	ast.Inspect(body, func(n ast.Node) bool {
		if bounded {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			bounded = true
			return false
		case *ast.IfStmt:
			if condComparesInt(pass, n.Cond) {
				bounded = true
				return false
			}
		case *ast.ForStmt:
			if n.Cond != nil && condComparesInt(pass, n.Cond) {
				bounded = true
				return false
			}
		case *ast.SwitchStmt:
			if n.Tag != nil && isIntType(pass.TypeOf(n.Tag)) {
				bounded = true
				return false
			}
			for _, clause := range n.Body.List {
				cc, ok := clause.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if condComparesInt(pass, e) {
						bounded = true
						return false
					}
				}
			}
		}
		return true
	})
	return bounded
}

// condComparesInt reports whether the expression contains a comparison with
// an integer-typed operand.
func condComparesInt(pass *Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if found {
			return false
		}
		bin, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch bin.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			if isIntType(pass.TypeOf(bin.X)) || isIntType(pass.TypeOf(bin.Y)) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isIntType reports whether t's underlying type is an integer basic.
func isIntType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
