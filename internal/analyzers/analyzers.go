// Package analyzers implements fbvet, a repo-specific static-analysis suite
// guarding the invariants the simulator's reproducibility depends on:
//
//   - mapiter: map iteration must not feed ordered decisions unsorted
//     (Go randomizes map range order per run).
//   - floateq: derived float64 values/credits must not be compared with
//     exact == / != (rounding noise would decide ties).
//   - lockcheck: exported methods of mutex-bearing structs must acquire the
//     lock before touching guarded fields (fields declared after the mutex).
//   - sizeunits: 64-bit byte counters must not be narrowed or computed in
//     platform-width int arithmetic.
//   - ndtaint: wall-clock reads, global math/rand draws, and map-order-
//     dependent selections must not flow into simulation state (dataflow.go
//     is the taint engine; a seeded *rand.Rand from config is sanctioned).
//   - errflow: error values on simulator and cmd/ paths must not be dropped
//     by expression statements or overwritten before inspection.
//   - hotalloc: the OptCacheSelect/OptFileBundle/Landlord inner loops must
//     not allocate per iteration (closures, make, growing append, boxing).
//   - retrybound: retry loops must be attempt-bounded — an unbounded
//     `for { retry }` hangs forever on a persistent fault.
//   - pkgdoc: every package must carry a package documentation comment
//     (opening "Package <name>" for library packages) stating the paper
//     section it implements and its pipeline role.
//   - allowcheck: every //fbvet:allow directive must carry a justification,
//     name real analyzers, and actually suppress something.
//   - lockorder: the lock-acquisition graph (followed through in-package
//     helper calls, see summary.go) must be acyclic — a cycle is a
//     potential deadlock — and no mutex may be re-acquired while held.
//   - guardedby: fields annotated //fbvet:guardedby mu may only be touched
//     with mu held on the same object, never written under RLock, and the
//     annotated struct must not be copied.
//   - goroleak: goroutines spawned in loops need a WaitGroup bound or a
//     cancellation path; timers and tickers need a reachable Stop.
//
// The suite runs over packages type-checked with the standard library's
// go/parser + go/types (loaded via `go list -export`, see load.go), so it
// needs no dependencies outside the Go toolchain; the flow-sensitive
// analyzers use the repo's own def-use taint engine (dataflow.go) in place
// of golang.org/x/tools/go/ssa. cmd/fbvet is the driver.
//
// A diagnostic can be suppressed by a `//fbvet:allow <analyzer>` comment on
// the flagged line or the line directly above it; use sparingly and state
// why in the same comment.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //fbvet:allow
	// directives.
	Name string
	// Doc is a one-paragraph description.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t, ok := p.TypesInfo.Types[e]; ok {
		return t.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.TypesInfo.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// All returns the full fbvet suite: the per-file AST checks of PR 1, the
// flow-sensitive dataflow analyzers (ndtaint, errflow, hotalloc — see
// dataflow.go), the interprocedural concurrency suite (lockorder,
// guardedby, goroleak — see summary.go), and the allow-directive
// self-check.
func All() []*Analyzer {
	return []*Analyzer{MapIter, FloatEq, LockCheck, SizeUnits, NDTaint, ErrFlow, HotAlloc, RetryBound, PkgDoc, LockOrder, GuardedBy, GoroLeak, AllowCheck}
}

// PerfNames lists the analyzers of the perf-contract suite
// (internal/analyzers/perf): they run under `fbvet -perf` — a separate mode,
// because they execute real compiler builds — but share the //fbvet:allow
// directive namespace with this suite, so the allow audit must know their
// names and allowcheck must know the function annotations they enforce
// (//fbvet:noescape, //fbvet:inline, //fbvet:nobce).
var PerfNames = []string{"noescape", "inline", "nobce", "hotcomplexity"}

// FuncDirectiveNames lists the fbvet directives that annotate function
// declarations with performance contracts checked by the perf suite. The
// directive text matches the analyzer that enforces it.
var FuncDirectiveNames = []string{"noescape", "inline", "nobce"}

// Allows returns a predicate reporting whether an //fbvet:allow directive in
// files suppresses analyzer name at pos (same line or the line above the
// directive). The perf suite (internal/analyzers/perf) runs outside Run but
// honours the same suppression mechanism.
func Allows(fset *token.FileSet, files []*ast.File) func(pos token.Position, name string) bool {
	_, allowed := collectAllows(fset, files)
	return func(pos token.Position, name string) bool {
		return allowed[allowKey{pos.Filename, pos.Line, name}]
	}
}

// SortDiagnostics orders diags by file, line, column, analyzer, message —
// the canonical order both the go/types suite and the perf suite report in.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// ByName resolves a comma-separated analyzer list ("mapiter,floateq").
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
	}
	return out, nil
}

// Run applies the analyzers to one loaded package and returns the surviving
// diagnostics sorted by position, with //fbvet:allow suppressions applied.
// When allowcheck is among the analyzers, directives that name unknown
// analyzers or suppress nothing (while the named analyzer ran) are
// themselves reported — a stale allow is a hole in the net, so it cannot
// linger silently.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	directives, allowed := collectAllows(pkg.Fset, pkg.Files)
	used := make(map[allowKey]bool)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			report: func(d Diagnostic) {
				// The self-check cannot be suppressed: an unjustified allow
				// must not be able to allow itself.
				if d.Analyzer != AllowCheck.Name &&
					allowed[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
					used[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] = true
					return
				}
				diags = append(diags, d)
			},
		}
		a.Run(pass)
	}
	diags = append(diags, auditAllows(directives, used, analyzers)...)
	SortDiagnostics(diags)
	return diags
}

type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowDirective is one //fbvet:allow comment with its parsed analyzer
// names, kept for the unused-allow audit.
type allowDirective struct {
	pos   token.Position
	names []string
}

// collectAllows indexes //fbvet:allow directives. A directive suppresses the
// named analyzers on its own line and on the following line (so it can sit
// above the flagged statement). Only directive-form comments count — the
// marker must lead the comment — so prose that mentions the syntax (like this
// package's doc) neither suppresses anything nor triggers allowcheck.
func collectAllows(fset *token.FileSet, files []*ast.File) ([]allowDirective, map[allowKey]bool) {
	var directives []allowDirective
	out := make(map[allowKey]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := directiveTail(c.Text)
				if !ok {
					continue
				}
				// A block comment's closing marker is not an analyzer name.
				rest = strings.TrimSuffix(strings.TrimSpace(rest), "*/")
				// Take words up to a comment-style separator; "--" or "—"
				// introduce the justification.
				if cut := strings.IndexAny(rest, "—"); cut >= 0 {
					rest = rest[:cut]
				}
				if cut := strings.Index(rest, "--"); cut >= 0 {
					rest = rest[:cut]
				}
				pos := fset.Position(c.Pos())
				names := strings.FieldsFunc(rest, func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				})
				directives = append(directives, allowDirective{pos: pos, names: names})
				for _, name := range names {
					out[allowKey{pos.Filename, pos.Line, name}] = true
					out[allowKey{pos.Filename, pos.Line + 1, name}] = true
				}
			}
		}
	}
	return directives, out
}

// auditAllows reports directives that name analyzers that do not exist, and
// directives that suppressed nothing even though the named analyzer ran.
// Only active when allowcheck itself is in the running suite, and a name is
// only called unused when its analyzer ran — `fbvet -run mapiter` must not
// condemn a perfectly live floateq allow.
func auditAllows(directives []allowDirective, used map[allowKey]bool, analyzers []*Analyzer) []Diagnostic {
	running := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		running[a.Name] = true
	}
	if !running[AllowCheck.Name] {
		return nil
	}
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	// The perf suite runs in its own fbvet mode but shares the directive
	// namespace: an allow naming one of its analyzers is legitimate here and
	// audited for staleness by the perf run instead.
	for _, name := range PerfNames {
		known[name] = true
	}
	var diags []Diagnostic
	for _, d := range directives {
		for _, name := range d.names {
			switch {
			case !known[name]:
				diags = append(diags, Diagnostic{
					Pos:      d.pos,
					Analyzer: AllowCheck.Name,
					Message:  fmt.Sprintf("//fbvet:allow names unknown analyzer %q", name),
				})
			case running[name] &&
				!used[allowKey{d.pos.Filename, d.pos.Line, name}] &&
				!used[allowKey{d.pos.Filename, d.pos.Line + 1, name}]:
				diags = append(diags, Diagnostic{
					Pos:      d.pos,
					Analyzer: AllowCheck.Name,
					Message:  fmt.Sprintf("unused //fbvet:allow %s: it suppresses no diagnostic; delete it", name),
				})
			}
		}
	}
	return diags
}

// isFloat reports whether t's underlying type is a floating-point basic.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// exportedName reports whether name is exported.
func exportedName(name string) bool {
	return name != "" && name[0] >= 'A' && name[0] <= 'Z'
}
