package perf

import (
	"go/ast"
	"path/filepath"
	"strings"

	"fbcache/internal/analyzers"
)

// AnnotFunc is one function declaration with its perf directives (possibly
// none) and the source range the compiler diagnostics are matched against.
type AnnotFunc struct {
	Decl *ast.FuncDecl
	// Name is the declaration rendered the way compiler diagnostics render
	// it: F for package functions, T.F for value-receiver methods, (*T).F
	// for pointer-receiver methods.
	Name string
	// File is the root-relative slash path of the declaring file.
	File string
	// StartLine..EndLine spans the declaration including its body.
	StartLine, EndLine int
	// Directives holds the perf contract names from //fbvet:<name> lines in
	// the doc comment, in analyzers.FuncDirectiveNames order.
	Directives []string
}

// Has reports whether the function carries the named directive.
func (f *AnnotFunc) Has(name string) bool {
	for _, d := range f.Directives {
		if d == name {
			return true
		}
	}
	return false
}

// collectFuncs gathers every function declaration of the package with its
// parsed directives. root anchors the relative file paths used to join
// against sweep diagnostics.
func collectFuncs(pkg *analyzers.Package, root string) []*AnnotFunc {
	var funcs []*AnnotFunc
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			start := pkg.Fset.Position(fd.Pos())
			end := pkg.Fset.Position(fd.End())
			rel := start.Filename
			if filepath.IsAbs(rel) {
				if r, err := filepath.Rel(root, rel); err == nil {
					rel = r
				}
			}
			funcs = append(funcs, &AnnotFunc{
				Decl:       fd,
				Name:       DiagName(fd),
				File:       filepath.ToSlash(filepath.Clean(rel)),
				StartLine:  start.Line,
				EndLine:    end.Line,
				Directives: FuncDirectives(fd),
			})
		}
	}
	return funcs
}

// FuncDirectives extracts the perf directive names from a declaration's doc
// comment. Only the canonical //fbvet:<name> spelling counts (the directive
// must lead the comment, matching the base suite's //fbvet:allow
// discipline); trailing text after a space is free-form rationale.
func FuncDirectives(fd *ast.FuncDecl) []string {
	if fd.Doc == nil {
		return nil
	}
	var out []string
	for _, name := range analyzers.FuncDirectiveNames {
		for _, c := range fd.Doc.List {
			rest, ok := strings.CutPrefix(c.Text, "//fbvet:"+name)
			if ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t') {
				out = append(out, name)
				break
			}
		}
	}
	return out
}

// DiagName renders a declaration the way gc diagnostics name it.
func DiagName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		return "(*" + typeName(star.X) + ")." + fd.Name.Name
	}
	return typeName(t) + "." + fd.Name.Name
}

func typeName(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver T[P]
		return typeName(t.X)
	case *ast.IndexListExpr:
		return typeName(t.X)
	}
	return ""
}
