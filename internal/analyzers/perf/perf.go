// Package perf implements fbvet's performance-contract suite: analyzers
// driven by the Go compiler's own diagnostics rather than go/types facts.
// A sweep (see sweep.go) compiles the target packages with
//
//	go build -gcflags='-m -m -d=ssa/check_bce/debug=1'
//
// and parses the escape-analysis, inlining, and bounds-check-elimination
// output into positioned findings (diag.go). Three contract analyzers then
// enforce function annotations on the hot paths:
//
//   - noescape: a function marked //fbvet:noescape must not move or leak any
//     value to the heap — no "moved to heap", "escapes to heap", or
//     heap-bound "leaking param" diagnostic inside its body. Benign leaks
//     (param flowing only to a result, or content leaks through an
//     already-heap pointee) are not violations.
//   - inline: a function marked //fbvet:inline must carry a "can inline"
//     verdict — every direct call site then gets it inlined. A "cannot
//     inline" verdict surfaces with the compiler's reason (cost, closures,
//     defer, ...).
//   - nobce: a function marked //fbvet:nobce must compile with zero bounds
//     checks ("Found IsInBounds"/"Found IsSliceInBounds") in its body — the
//     indexing must be hoisted or guarded so BCE proves every access.
//
// A fourth analyzer, hotcomplexity, needs no compiler output: it flags
// sort/rebuild calls inside loops and inside contract-annotated functions —
// the O(n log n)-per-admission re-sorts the incremental ranking heap
// (DESIGN.md §13) eliminated.
//
// The perf manifest (manifest.go) pins which hot-path functions MUST carry
// which contracts, so deleting an annotation is itself a finding rather
// than a silent hole in the gate. //fbvet:allow <analyzer> suppression works
// exactly as in the base suite. cmd/fbvet runs this suite under -perf; it is
// a separate mode because it executes real builds, which the pure go/types
// driver never does.
package perf

import (
	"fmt"
	"go/token"
	"path/filepath"
	"strings"

	"fbcache/internal/analyzers"
)

// Analyzer is one perf-contract check. It mirrors analyzers.Analyzer but
// runs with compiler-diagnostic input alongside the type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, //fbvet:allow directives,
	// and (for the contract analyzers) the function annotation it enforces.
	Name string
	// Doc is a one-paragraph description.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one type-checked package, the compiler-diagnostic sweep, and
// the package's annotated functions through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *analyzers.Package
	Sweep    *Sweep
	// Funcs lists every function declaration of the package with its parsed
	// perf directives (possibly none) and source range.
	Funcs []*AnnotFunc

	report func(analyzers.Diagnostic)
}

// Reportf records a finding at an explicit position (compiler diagnostics
// carry token.Position, not token.Pos).
func (p *Pass) Reportf(pos token.Position, format string, args ...any) {
	p.report(analyzers.Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportAt records a finding at an AST position.
func (p *Pass) ReportAt(pos token.Pos, format string, args ...any) {
	p.Reportf(p.Pkg.Fset.Position(pos), format, args...)
}

// All returns the perf suite: the three compiler-diagnostic contract
// analyzers plus the AST-level complexity check. The order and names must
// stay in sync with analyzers.PerfNames (the base suite's allow audit
// depends on it; TestSuiteMatchesPerfNames pins the correspondence).
func All() []*Analyzer {
	return []*Analyzer{NoEscape, Inline, NoBCE, HotComplexity}
}

// ByName resolves a comma-separated analyzer list ("noescape,nobce").
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown perf analyzer %q", name)
		}
	}
	return out, nil
}

// Run applies the perf analyzers to one loaded package against the sweep's
// compiler diagnostics, honouring //fbvet:allow suppressions, and returns
// the surviving findings in canonical order.
func Run(pkg *analyzers.Package, sw *Sweep, suite []*Analyzer) []analyzers.Diagnostic {
	funcs := collectFuncs(pkg, sw.Root)
	allowed := analyzers.Allows(pkg.Fset, pkg.Files)
	var diags []analyzers.Diagnostic
	for _, a := range suite {
		pass := &Pass{
			Analyzer: a,
			Pkg:      pkg,
			Sweep:    sw,
			Funcs:    funcs,
			report: func(d analyzers.Diagnostic) {
				if allowed(d.Pos, d.Analyzer) {
					return
				}
				diags = append(diags, d)
			},
		}
		a.Run(pass)
	}
	analyzers.SortDiagnostics(diags)
	return diags
}

// position converts a sweep diagnostic's root-relative location to the
// absolute form the loaded packages (and the SARIF emitter) use.
func (p *Pass) position(d Diag) token.Position {
	return token.Position{
		Filename: filepath.Join(p.Sweep.Root, filepath.FromSlash(d.File)),
		Line:     d.Line,
		Column:   d.Col,
	}
}
