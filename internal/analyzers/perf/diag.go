package perf

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind classifies one compiler diagnostic line.
type Kind int

const (
	// KindInfo is a recognised but contract-neutral diagnostic (devirtualization,
	// closure capture notes, self-assignment elision, parameter flow summaries).
	KindInfo Kind = iota
	// KindCanInline is an inlinability verdict: "can inline F [with cost N ...]".
	KindCanInline
	// KindCannotInline is the negative verdict with the compiler's reason.
	KindCannotInline
	// KindInlineCall marks an inlined call site: "inlining call to F".
	KindInlineCall
	// KindEscape is a heap escape: "moved to heap: x" or "x escapes to heap".
	KindEscape
	// KindLeakParam is a parameter leaking to the heap ("leaking param: x"
	// with no result destination) — an escape chargeable to the caller.
	KindLeakParam
	// KindLeakBenign is a non-heap leak: "leaking param: x to result ~rN"
	// (flows only to a return value) or "leaking param content: x" (the
	// pointee, already heap-reachable, is stored through — no new allocation).
	KindLeakBenign
	// KindNoEscape is the negative escape verdict: "x does not escape".
	KindNoEscape
	// KindBoundsCheck is an unproven index: "Found IsInBounds".
	KindBoundsCheck
	// KindSliceBoundsCheck is an unproven slice expression: "Found IsSliceInBounds".
	KindSliceBoundsCheck
)

// String names the kind for findings and test failures.
func (k Kind) String() string {
	switch k {
	case KindInfo:
		return "info"
	case KindCanInline:
		return "can-inline"
	case KindCannotInline:
		return "cannot-inline"
	case KindInlineCall:
		return "inline-call"
	case KindEscape:
		return "escape"
	case KindLeakParam:
		return "leaking-param"
	case KindLeakBenign:
		return "leak-benign"
	case KindNoEscape:
		return "no-escape"
	case KindBoundsCheck:
		return "bounds-check"
	case KindSliceBoundsCheck:
		return "slice-bounds-check"
	}
	return "unknown"
}

// Diag is one positioned compiler diagnostic.
type Diag struct {
	// File is the root-relative slash path the compiler reported.
	File string
	// Line and Col are 1-based.
	Line, Col int
	Kind      Kind
	// Name is the function the diagnostic is about, for inlining verdicts —
	// rendered the way the compiler renders it: F, T.F, (*T).F, F.func1.
	Name string
	// Detail is the reason clause ("function too complex: ...") for
	// cannot-inline verdicts.
	Detail string
	// Msg is the full message text after the position.
	Msg string
}

// classify maps one message (the text after "file:line:col: ") to its kind.
// It must recognise every shape the sweep's -gcflags combination emits; an
// unknown shape is a hard error in the caller, so a Go toolchain that
// changes its diagnostic format fails the gate loudly instead of silently
// matching nothing (the ISSUE's "empty gate" failure mode).
func classify(msg string) (kind Kind, name, detail string, ok bool) {
	switch {
	case strings.HasPrefix(msg, "can inline "):
		rest := strings.TrimPrefix(msg, "can inline ")
		// -m -m appends "with cost N as: <signature>"; plain -m does not.
		name, _, _ = strings.Cut(rest, " with cost ")
		return KindCanInline, strings.TrimSpace(name), "", true
	case strings.HasPrefix(msg, "cannot inline "):
		rest := strings.TrimPrefix(msg, "cannot inline ")
		name, detail, _ = strings.Cut(rest, ": ")
		return KindCannotInline, strings.TrimSpace(name), detail, true
	case strings.HasPrefix(msg, "inlining call to "):
		return KindInlineCall, strings.TrimPrefix(msg, "inlining call to "), "", true
	case strings.HasPrefix(msg, "moved to heap: "):
		return KindEscape, strings.TrimPrefix(msg, "moved to heap: "), "", true
	case strings.HasSuffix(msg, " escapes to heap") || strings.HasSuffix(msg, " escapes to heap:"):
		return KindEscape, "", "", true
	case strings.HasSuffix(msg, " does not escape"):
		return KindNoEscape, "", "", true
	case strings.HasPrefix(msg, "leaking param content: "):
		// The pointee is already heap-reachable; storing through it
		// allocates nothing new.
		return KindLeakBenign, strings.TrimPrefix(msg, "leaking param content: "), "", true
	case strings.HasPrefix(msg, "leaking param: "):
		rest := strings.TrimPrefix(msg, "leaking param: ")
		if strings.Contains(rest, " to result ") {
			// Flows only to a return value — the caller decides whether
			// that escapes.
			return KindLeakBenign, rest, "", true
		}
		return KindLeakParam, rest, "", true
	case strings.HasPrefix(msg, "parameter ") && strings.Contains(msg, " leaks to "):
		// -m -m flow summary expanding a leaking-param verdict; the verdict
		// line itself is what the contracts act on.
		return KindInfo, "", "", true
	case msg == "Found IsInBounds":
		return KindBoundsCheck, "", "", true
	case msg == "Found IsSliceInBounds":
		return KindSliceBoundsCheck, "", "", true
	case strings.Contains(msg, " capturing by value: ") || strings.Contains(msg, " capturing by ref: "):
		return KindInfo, "", "", true
	case strings.HasPrefix(msg, "devirtualizing "):
		return KindInfo, "", "", true
	case strings.Contains(msg, "ignoring self-assignment"):
		return KindInfo, "", "", true
	}
	return 0, "", "", false
}

// parsePos splits "file:line:col: msg" (or "file:line: msg"). reported=false
// means the line is not positioned at all (package headers, blank lines).
func parsePos(line string) (file string, ln, col int, msg string, ok bool) {
	// Scan for ":<digits>:" — the first such marker ends the file path
	// (repo paths contain no colons).
	i := strings.Index(line, ":")
	for i >= 0 {
		rest := line[i+1:]
		j := 0
		for j < len(rest) && rest[j] >= '0' && rest[j] <= '9' {
			j++
		}
		if j > 0 && j < len(rest) && rest[j] == ':' {
			file = line[:i]
			ln, _ = strconv.Atoi(rest[:j])
			rest = rest[j+1:]
			// Optional column.
			k := 0
			for k < len(rest) && rest[k] >= '0' && rest[k] <= '9' {
				k++
			}
			if k > 0 && k < len(rest) && rest[k] == ':' {
				col, _ = strconv.Atoi(rest[:k])
				rest = rest[k+1:]
			}
			msg = strings.TrimPrefix(rest, " ")
			return file, ln, col, msg, true
		}
		next := strings.Index(rest, ":")
		if next < 0 {
			break
		}
		i += 1 + next
	}
	return "", 0, 0, "", false
}

// parseDiagnostics parses the stderr of the sweep build. Unpositioned lines
// must be package headers ("# import/path"); positioned lines must classify;
// anything else is an error so format drift cannot silently pass the gate.
func parseDiagnostics(output string) ([]Diag, error) {
	var diags []Diag
	var unknown []string
	for _, raw := range strings.Split(output, "\n") {
		if raw == "" || strings.HasPrefix(raw, "# ") {
			continue
		}
		file, ln, col, msg, ok := parsePos(raw)
		if !ok {
			unknown = append(unknown, raw)
			continue
		}
		if strings.HasPrefix(file, "<autogenerated>") {
			continue
		}
		if msg == "" || msg[0] == ' ' || msg[0] == '\t' {
			// Indented detail line ("flow: ...", "from ... at ...")
			// expanding the preceding verdict.
			continue
		}
		kind, name, detail, ok := classify(msg)
		if !ok {
			unknown = append(unknown, raw)
			continue
		}
		diags = append(diags, Diag{
			File: file, Line: ln, Col: col,
			Kind: kind, Name: name, Detail: detail, Msg: msg,
		})
	}
	if len(unknown) > 0 {
		n := len(unknown)
		if n > 5 {
			unknown = unknown[:5]
		}
		return nil, fmt.Errorf(
			"perf sweep: %d unrecognised compiler diagnostic line(s) — -gcflags output shape changed (Go version bump?); first lines:\n  %s",
			n, strings.Join(unknown, "\n  "))
	}
	return diags, nil
}
