package perf

import (
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
)

// Sweep holds the parsed compiler diagnostics of one build of the target
// packages with escape-analysis, inlining, and BCE debugging enabled.
type Sweep struct {
	// Root is the absolute module root the build ran in; diagnostic file
	// paths are stored relative to it (slash-separated).
	Root string
	// ByFile indexes the diagnostics by root-relative slash path.
	ByFile map[string][]Diag
}

// sweepGcflags is the compiler flag set the contracts are defined against:
// -m -m for escape/inline verdicts with reasons, and the check_bce debug key
// for residual bounds checks. The flags apply to the named packages only
// (not dependencies), which is exactly the scope the contracts cover.
const sweepGcflags = "-gcflags=-m -m -d=ssa/check_bce/debug=1"

// SweepPackages builds patterns (e.g. "./...") from root with sweepGcflags
// and parses the diagnostics. The build artifacts are discarded; go build's
// cache replays the diagnostics of unchanged packages, so repeated sweeps
// are cheap.
func SweepPackages(root string, patterns []string) (*Sweep, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, fmt.Errorf("perf sweep: %w", err)
	}
	args := append([]string{"build", sweepGcflags}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = abs
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("perf sweep: go build failed: %w\n%s", err, out)
	}
	return ParseSweep(abs, string(out))
}

// ParseSweep parses raw sweep output against the given module root. Split
// from SweepPackages so the golden-fixture tests exercise the full pipeline
// without running a compiler.
//
// It enforces the gate's canary: a sweep that yields no inlining verdicts at
// all cannot be a real -m run over non-trivial packages — it means the
// toolchain stopped emitting the expected format, and the gate must fail
// loudly rather than pass vacuously.
func ParseSweep(root, output string) (*Sweep, error) {
	diags, err := parseDiagnostics(output)
	if err != nil {
		return nil, err
	}
	verdicts := 0
	byFile := make(map[string][]Diag)
	for _, d := range diags {
		if d.Kind == KindCanInline || d.Kind == KindCannotInline {
			verdicts++
		}
		f := d.File
		if filepath.IsAbs(f) {
			rel, err := filepath.Rel(root, f)
			if err != nil || strings.HasPrefix(rel, "..") {
				// Outside the module (vendored toolchain paths); the
				// contracts only cover module files.
				continue
			}
			f = rel
		}
		f = filepath.ToSlash(filepath.Clean(f))
		d.File = f
		byFile[f] = append(byFile[f], d)
	}
	if verdicts == 0 {
		return nil, fmt.Errorf("perf sweep: compiler emitted no inlining verdicts — -gcflags output shape changed (Go version bump?); refusing to run an empty gate")
	}
	return &Sweep{Root: root, ByFile: byFile}, nil
}

// InRange returns the diagnostics of file (root-relative slash path) whose
// line falls in [start, end].
func (s *Sweep) InRange(file string, start, end int) []Diag {
	var out []Diag
	for _, d := range s.ByFile[file] {
		if d.Line >= start && d.Line <= end {
			out = append(out, d)
		}
	}
	return out
}
