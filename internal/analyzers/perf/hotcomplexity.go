package perf

import (
	"go/ast"
	"go/types"
)

// HotComplexity flags full-collection re-sort calls in hot scopes: a sort
// inside a loop body, or anywhere inside a function carrying a perf
// directive. A per-admission re-sort is the O(n log n) step the incremental ranking
// heap (DESIGN.md §13, formerly ROADMAP item 2) replaced; this analyzer
// keeps one from creeping back in. It is AST-only (no compiler sweep needed) but runs with
// the perf suite because its target — per-admission cost — is the same
// contract.
var HotComplexity = &Analyzer{
	Name: "hotcomplexity",
	Doc: "flag sort.*/slices.Sort* calls inside loop bodies or inside functions " +
		"carrying a perf directive: a full re-sort per admission round is the " +
		"O(n log n) rebuild the incremental ranking heap (DESIGN.md §13) eliminated. " +
		"Hoist the sort out of the " +
		"loop or maintain the order incrementally.",
	Run: runHotComplexity,
}

// sortFuncs maps importable sorters to true. Predicates like IsSorted are
// O(n) scans, not rebuilds, and stay unflagged.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
		"Strings": true, "Ints": true, "Float64s": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

func runHotComplexity(pass *Pass) {
	for _, f := range pass.Funcs {
		hot := len(f.Directives) > 0
		// Track loop nesting with a mark stack: ast.Inspect calls the
		// callback with nil after a node's children when the callback
		// returned true, so pushes and pops pair exactly.
		depth := 0
		var loops []bool
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			if n == nil {
				if loops[len(loops)-1] {
					depth--
				}
				loops = loops[:len(loops)-1]
				return true
			}
			isLoop := false
			switch n := n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				isLoop = true
				depth++
			case *ast.CallExpr:
				if pkg, name, ok := sortCall(pass, n); ok && (depth > 0 || hot) {
					where := "inside a loop in " + f.Name
					if depth == 0 {
						where = "inside perf-contract function " + f.Name
					}
					pass.ReportAt(n.Pos(), "%s.%s %s: a full re-sort on the admission path is O(n log n) — hoist it or maintain the order incrementally (DESIGN.md §13)", pkg, name, where)
				}
			}
			loops = append(loops, isLoop)
			return true
		})
	}
}

// sortCall reports whether call is pkg.Func for a known sorter, resolving
// the selector through go/types so a local variable named "sort" cannot
// confuse it.
func sortCall(pass *Pass, call *ast.CallExpr) (pkg, name string, ok bool) {
	sel, selOK := call.Fun.(*ast.SelectorExpr)
	if !selOK {
		return "", "", false
	}
	id, idOK := sel.X.(*ast.Ident)
	if !idOK {
		return "", "", false
	}
	pn, pnOK := pass.Pkg.TypesInfo.Uses[id].(*types.PkgName)
	if !pnOK {
		return "", "", false
	}
	funcs := sortFuncs[pn.Imported().Path()]
	if funcs == nil || !funcs[sel.Sel.Name] {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}
