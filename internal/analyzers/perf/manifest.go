package perf

// Contract pins one hot-path function to the perf directives it must carry.
// The manifest exists so that DELETING an annotation is itself a finding: a
// refactor that drops //fbvet:noescape from OptCacheSelect's scan loop does
// not silently shrink the gate — the missing annotation is reported at the
// function's declaration.
type Contract struct {
	// Func is the function in compiler-diagnostic rendering (F, T.F, (*T).F).
	Func string
	// Directives lists the required annotations (subset of
	// analyzers.FuncDirectiveNames).
	Directives []string
}

// manifest maps import paths to their required contracts. Keep in sync with
// DESIGN.md §11, which documents why each function carries its contracts.
// Tests mutate this map (with cleanup) to exercise enforcement.
var manifest = map[string][]Contract{
	// The OptCacheSelect admission round (paper §3 step 2/3), now served by
	// the incremental ranking heap (DESIGN.md §13): the sift/repair
	// operations are the per-admission inner loop and must stay
	// allocation-free and bounds-check-free at 0 allocs/op steady state.
	"fbcache/internal/core": {
		{Func: "better", Directives: []string{"noescape", "inline"}},
		{Func: "(*rankHeap).push", Directives: []string{"noescape", "nobce"}},
		{Func: "(*rankHeap).popTop", Directives: []string{"noescape", "nobce"}},
		{Func: "(*rankHeap).fix", Directives: []string{"noescape", "nobce"}},
		{Func: "(*rankHeap).siftUp", Directives: []string{"noescape", "nobce"}},
		{Func: "(*rankHeap).siftDown", Directives: []string{"noescape", "nobce"}},
		{Func: "(*fileSet).has", Directives: []string{"noescape", "inline"}},
		{Func: "(*resortState).chargedSizeSkip", Directives: []string{"noescape", "nobce"}},
		{Func: "(*resortState).repair", Directives: []string{"noescape", "nobce"}},
		{Func: "rankOf", Directives: []string{"noescape", "inline"}},
		{Func: "chargedSize", Directives: []string{"noescape", "inline", "nobce"}},
		{Func: "(*OptFileBundle).RelativeValue", Directives: []string{"noescape", "nobce"}},
	},
	// Cache accessors sit inside every admission and eviction decision;
	// they must stay cheap enough to inline and must not force their
	// receiver or arguments onto the heap.
	"fbcache/internal/cache": {
		{Func: "(*Cache).Capacity", Directives: []string{"noescape", "inline"}},
		{Func: "(*Cache).Used", Directives: []string{"noescape", "inline"}},
		{Func: "(*Cache).Free", Directives: []string{"noescape", "inline"}},
		{Func: "(*Cache).Len", Directives: []string{"noescape", "inline"}},
		{Func: "(*Cache).Contains", Directives: []string{"noescape", "inline"}},
		{Func: "(*Cache).SizeOf", Directives: []string{"noescape", "inline"}},
		{Func: "(*Cache).Supports", Directives: []string{"noescape", "inline", "nobce"}},
		{Func: "(*Cache).Pinned", Directives: []string{"noescape", "inline"}},
	},
	// Landlord's credit read is on the ranking path of every admission.
	"fbcache/internal/policy/landlord": {
		{Func: "(*Landlord).Credit", Directives: []string{"noescape", "inline"}},
	},
	// The event loop's queue operations run once per simulated event; the
	// typed heap exists so they stay boxing-free and bounds-check-free.
	"fbcache/internal/simulate": {
		{Func: "(*eventQueue).push", Directives: []string{"noescape", "nobce"}},
		{Func: "(*eventQueue).pop", Directives: []string{"noescape", "nobce"}},
	},
}

// Contracts returns the required contracts of one import path (nil if the
// package carries none).
func Contracts(importPath string) []Contract {
	return manifest[importPath]
}
