package perf

import "strings"

// The three contract analyzers share one skeleton: for every function
// carrying the analyzer's directive, match the sweep diagnostics against the
// function's source range and report violations; then audit the package's
// manifest entries so a deleted annotation (or a renamed-away function) is a
// positioned finding rather than a silent hole.

// NoEscape enforces //fbvet:noescape: no value inside the function may move
// or leak to the heap.
var NoEscape = &Analyzer{
	Name: "noescape",
	Doc: "enforce //fbvet:noescape: the compiler's escape analysis must prove every " +
		"value in the function heap-free — no 'moved to heap', 'escapes to heap', or " +
		"heap-bound 'leaking param' diagnostic in the body. Leaks that flow only to " +
		"results or through already-heap pointees are benign and accepted.",
	Run: runNoEscape,
}

func runNoEscape(pass *Pass) {
	for _, f := range pass.Funcs {
		if !f.Has("noescape") {
			continue
		}
		// -m -m emits each escape twice — once with the flow detail (message
		// ends ":") and once as a bare summary; dedupe on the normalized
		// message per position.
		type key struct {
			line, col int
			msg       string
		}
		seen := make(map[key]bool)
		for _, d := range pass.Sweep.InRange(f.File, f.StartLine, f.EndLine) {
			if d.Kind != KindEscape && d.Kind != KindLeakParam {
				continue
			}
			k := key{d.Line, d.Col, strings.TrimSuffix(d.Msg, ":")}
			if seen[k] {
				continue
			}
			seen[k] = true
			switch d.Kind {
			case KindEscape:
				pass.Reportf(pass.position(d), "%s is //fbvet:noescape but the compiler reports %q", f.Name, k.msg)
			case KindLeakParam:
				pass.Reportf(pass.position(d), "%s is //fbvet:noescape but parameter leaks to heap: %q", f.Name, k.msg)
			}
		}
	}
	auditManifest(pass, "noescape")
}

// Inline enforces //fbvet:inline: the function must carry a positive
// inlinability verdict so every direct call site gets it inlined.
var Inline = &Analyzer{
	Name: "inline",
	Doc: "enforce //fbvet:inline: the function must be inlinable ('can inline' verdict); " +
		"a 'cannot inline' verdict is reported with the compiler's reason (cost over " +
		"budget, defer, recursion, ...). A missing verdict of either polarity is also " +
		"reported — it means the sweep did not see the function at all.",
	Run: runInline,
}

func runInline(pass *Pass) {
	for _, f := range pass.Funcs {
		if !f.Has("inline") {
			continue
		}
		verdict := false
		for _, d := range pass.Sweep.InRange(f.File, f.StartLine, f.EndLine) {
			if d.Name != f.Name {
				continue
			}
			switch d.Kind {
			case KindCanInline:
				verdict = true
			case KindCannotInline:
				verdict = true
				pass.Reportf(pass.position(d), "%s is //fbvet:inline but the compiler cannot inline it: %s", f.Name, d.Detail)
			}
		}
		if !verdict {
			pass.ReportAt(f.Decl.Name.Pos(), "%s is //fbvet:inline but the sweep has no inlining verdict for it — diagnostic name mismatch or output shape change", f.Name)
		}
	}
	auditManifest(pass, "inline")
}

// NoBCE enforces //fbvet:nobce: the function must compile with zero bounds
// checks.
var NoBCE = &Analyzer{
	Name: "nobce",
	Doc: "enforce //fbvet:nobce: the SSA bounds-check-elimination pass must prove every " +
		"index and slice expression in the function ('Found IsInBounds'/'Found " +
		"IsSliceInBounds' must not appear). Hoist the bound or restructure the loop " +
		"until BCE succeeds.",
	Run: runNoBCE,
}

func runNoBCE(pass *Pass) {
	for _, f := range pass.Funcs {
		if !f.Has("nobce") {
			continue
		}
		type pos struct{ line, col int }
		// The SSA pass emits one line per residual check and duplicates
		// positions across funcs split by inlining; dedupe per position.
		seen := make(map[pos]bool)
		for _, d := range pass.Sweep.InRange(f.File, f.StartLine, f.EndLine) {
			if d.Kind != KindBoundsCheck && d.Kind != KindSliceBoundsCheck {
				continue
			}
			p := pos{d.Line, d.Col}
			if seen[p] {
				continue
			}
			seen[p] = true
			pass.Reportf(pass.position(d), "%s is //fbvet:nobce but a bounds check survives BCE here (%s)", f.Name, d.Msg)
		}
	}
	auditManifest(pass, "nobce")
}

// auditManifest reports, for one directive, every manifest contract of the
// package that is no longer satisfied structurally: the function lost the
// annotation, or no longer exists under the pinned name.
func auditManifest(pass *Pass, directive string) {
	for _, c := range Contracts(pass.Pkg.ImportPath) {
		required := false
		for _, d := range c.Directives {
			if d == directive {
				required = true
				break
			}
		}
		if !required {
			continue
		}
		found := false
		for _, f := range pass.Funcs {
			if f.Name != c.Func {
				continue
			}
			found = true
			if !f.Has(directive) {
				pass.ReportAt(f.Decl.Name.Pos(), "%s must carry //fbvet:%s (perf manifest pins this hot-path contract; see internal/analyzers/perf/manifest.go)", c.Func, directive)
			}
		}
		if !found && len(pass.Pkg.Files) > 0 {
			pass.ReportAt(pass.Pkg.Files[0].Package, "perf manifest pins //fbvet:%s on %s, but no such function exists in %s — update manifest.go or restore the function", directive, c.Func, pass.Pkg.ImportPath)
		}
	}
}
