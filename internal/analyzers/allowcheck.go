package analyzers

import (
	"go/ast"
	"strings"
)

// AllowCheck is fbvet's self-check: every //fbvet:allow directive must carry
// a justification — a "—" or "--" separator followed by non-empty prose
// explaining why the finding is acceptable. Unjustified suppressions defeat
// the audit trail the suite exists to provide.
//
// It also audits the perf-contract function directives (//fbvet:noescape,
// //fbvet:inline, //fbvet:nobce): the perf suite only honours them in a
// function declaration's doc comment, so one left anywhere else — stranded
// by a refactor, or trailing a statement — is a contract that silently
// stopped being enforced, and any other //fbvet:<name> spelling is a typo
// hiding a dead directive.
//
// AllowCheck diagnostics cannot themselves be suppressed (Run bypasses the
// allow table for them); the only fix is writing the justification.
var AllowCheck = &Analyzer{
	Name: "allowcheck",
	Doc: "flag //fbvet:allow directives that lack a justification " +
		"(\"— why this is safe\" after the analyzer names), perf directives " +
		"(//fbvet:noescape|inline|nobce) that are not function doc comments " +
		"and so bind to nothing, and unknown //fbvet:<name> spellings",
	Run: runAllowCheck,
}

func runAllowCheck(pass *Pass) {
	for _, f := range pass.Files {
		docs := funcDocGroups(f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if rest, ok := directiveTail(c.Text); ok {
					if allowJustification(rest) == "" {
						pass.Reportf(c.Pos(), "fbvet:allow directive lacks a justification; "+
							"append \"— <why this finding is safe here>\"")
					}
					continue
				}
				name, ok := fbvetDirectiveName(c.Text)
				if !ok {
					continue
				}
				if !isFuncDirective(name) {
					pass.Reportf(c.Pos(), "unknown fbvet directive //fbvet:%s (known: allow, guardedby, %s)",
						name, strings.Join(FuncDirectiveNames, ", "))
					continue
				}
				if !docs[cg] {
					pass.Reportf(c.Pos(), "perf directive //fbvet:%s is not a function doc comment — "+
						"the perf suite only enforces it on a function declaration; move it onto the "+
						"function or delete the stale annotation", name)
				}
			}
		}
	}
}

// funcDocGroups returns the comment groups that are doc comments of function
// declarations — the only place the perf suite reads //fbvet:<directive>
// annotations from.
func funcDocGroups(f *ast.File) map[*ast.CommentGroup]bool {
	docs := make(map[*ast.CommentGroup]bool)
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
			docs[fd.Doc] = true
		}
	}
	return docs
}

// fbvetDirectiveName extracts <name> from a comment that IS an "//fbvet:<name>"
// directive other than allow (directiveTail handles it) and guardedby (a
// field-level directive the guardedby analyzer owns). Prose merely mentioning
// the syntax mid-sentence does not count: the marker must lead the comment.
func fbvetDirectiveName(comment string) (string, bool) {
	body := strings.TrimPrefix(strings.TrimPrefix(comment, "//"), "/*")
	body = strings.TrimLeft(body, " \t")
	rest, ok := strings.CutPrefix(body, "fbvet:")
	if !ok {
		return "", false
	}
	name := rest
	if i := strings.IndexAny(name, " \t"); i >= 0 {
		name = name[:i]
	}
	name = strings.TrimSuffix(name, "*/")
	if name == "" || name == "allow" || name == "guardedby" {
		return "", false
	}
	return name, true
}

func isFuncDirective(name string) bool {
	for _, d := range FuncDirectiveNames {
		if d == name {
			return true
		}
	}
	return false
}

// directiveTail returns the text after "fbvet:allow" when the comment IS a
// directive — the marker leads the comment — as opposed to prose that merely
// mentions one (doc comments quoting the syntax).
func directiveTail(comment string) (string, bool) {
	body := strings.TrimPrefix(strings.TrimPrefix(comment, "//"), "/*")
	body = strings.TrimLeft(body, " \t")
	if !strings.HasPrefix(body, "fbvet:allow") {
		return "", false
	}
	return body[len("fbvet:allow"):], true
}

// allowJustification extracts the justification text of a directive's tail
// (everything after the analyzer-name list), or "" when absent. The same
// separators collectAllows recognizes delimit it: an em-dash or "--".
func allowJustification(rest string) string {
	cut := -1
	if i := strings.Index(rest, "—"); i >= 0 {
		cut = i + len("—")
	}
	if i := strings.Index(rest, "--"); i >= 0 && (cut < 0 || i+2 < cut) {
		cut = i + 2
	}
	if cut < 0 || cut > len(rest) {
		return ""
	}
	return strings.TrimSpace(rest[cut:])
}
