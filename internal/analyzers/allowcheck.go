package analyzers

import (
	"strings"
)

// AllowCheck is fbvet's self-check: every //fbvet:allow directive must carry
// a justification — a "—" or "--" separator followed by non-empty prose
// explaining why the finding is acceptable. Unjustified suppressions defeat
// the audit trail the suite exists to provide.
//
// AllowCheck diagnostics cannot themselves be suppressed (Run bypasses the
// allow table for them); the only fix is writing the justification.
var AllowCheck = &Analyzer{
	Name: "allowcheck",
	Doc: "flag //fbvet:allow directives that lack a justification " +
		"(\"— why this is safe\" after the analyzer names)",
	Run: runAllowCheck,
}

func runAllowCheck(pass *Pass) {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := directiveTail(c.Text)
				if !ok {
					continue
				}
				if allowJustification(rest) == "" {
					pass.Reportf(c.Pos(), "fbvet:allow directive lacks a justification; "+
						"append \"— <why this finding is safe here>\"")
				}
			}
		}
	}
}

// directiveTail returns the text after "fbvet:allow" when the comment IS a
// directive — the marker leads the comment — as opposed to prose that merely
// mentions one (doc comments quoting the syntax).
func directiveTail(comment string) (string, bool) {
	body := strings.TrimPrefix(strings.TrimPrefix(comment, "//"), "/*")
	body = strings.TrimLeft(body, " \t")
	if !strings.HasPrefix(body, "fbvet:allow") {
		return "", false
	}
	return body[len("fbvet:allow"):], true
}

// allowJustification extracts the justification text of a directive's tail
// (everything after the analyzer-name list), or "" when absent. The same
// separators collectAllows recognizes delimit it: an em-dash or "--".
func allowJustification(rest string) string {
	cut := -1
	if i := strings.Index(rest, "—"); i >= 0 {
		cut = i + len("—")
	}
	if i := strings.Index(rest, "--"); i >= 0 && (cut < 0 || i+2 < cut) {
		cut = i + 2
	}
	if cut < 0 || cut > len(rest) {
		return ""
	}
	return strings.TrimSpace(rest[cut:])
}
