package analyzers

import (
	"go/ast"
	"sort"
	"strings"
)

// PkgDoc enforces the repository's documentation contract: every package must
// carry a package documentation comment on a non-test file, and for library
// packages the comment must open with the canonical "Package <name>" form so
// `go doc` renders it as the package synopsis. The contract exists because
// this repo reproduces a paper — each package comment is expected to state
// which paper section the package implements and where it sits in the
// simulate → policy → metrics pipeline, and a missing or malformed comment
// silently drops that map for the next reader.
//
// Test files are excluded (a doc comment on foo_test.go documents the test
// binary, not the package), and main packages are exempt from the prefix rule:
// their comments conventionally open "Command <name> ..." or lead with the
// scenario they demonstrate (the examples/ programs).
var PkgDoc = &Analyzer{
	Name: "pkgdoc",
	Doc: "require a package documentation comment on every package, opening " +
		"with \"Package <name>\" for library packages",
	Run: runPkgDoc,
}

func runPkgDoc(pass *Pass) {
	type src struct {
		file     *ast.File
		filename string
	}
	var files []src
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, src{f, name})
	}
	if len(files) == 0 {
		return // test-only package; nothing to document
	}
	// Deterministic anchor: diagnostics attach to the alphabetically first
	// file, matching where readers (and gofmt) expect the doc comment.
	sort.Slice(files, func(i, j int) bool { return files[i].filename < files[j].filename })

	for _, s := range files {
		// CommentGroup.Text strips //go:build and other directive-only
		// comments, so a build-constrained file with no prose still counts
		// as undocumented.
		if s.file.Doc == nil || strings.TrimSpace(s.file.Doc.Text()) == "" {
			continue
		}
		if pass.Pkg.Name() == "main" {
			return
		}
		want := "Package " + pass.Pkg.Name() + " "
		if !strings.HasPrefix(s.file.Doc.Text(), want) {
			pass.Reportf(s.file.Name.Pos(),
				"package comment should start with %q so go doc renders a synopsis",
				strings.TrimSpace(want))
		}
		return
	}
	pass.Reportf(files[0].file.Name.Pos(),
		"package %s has no package documentation comment; add one stating the "+
			"paper section it implements and its role in the pipeline",
		pass.Pkg.Name())
}
