package analyzers

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/types"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// loadTestdata parses and type-checks testdata/src/<name> against real
// standard-library export data, mirroring what the fbvet driver does for
// repo packages.
func loadTestdata(t *testing.T, name string) *Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}

	fset, imp, err := ExportImporter(".", []string{
		"sort", "sync", "time", "math/rand", "errors", "fmt", "os", "strings",
	})
	if err != nil {
		t.Fatalf("building importer: %v", err)
	}

	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", "amd64")}
	tpkg, err := conf.Check(name, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking %s: %v", name, err)
	}
	return &Package{ImportPath: name, Dir: dir, Fset: fset, Files: files, Types: tpkg, TypesInfo: info}
}

// collectWants indexes `// want "substring" ...` comments by file:line.
func collectWants(t *testing.T, pkg *Package) map[string][]string {
	t.Helper()
	wants := make(map[string][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				rest := strings.TrimPrefix(text, "want ")
				for {
					rest = strings.TrimSpace(rest)
					if !strings.HasPrefix(rest, "\"") {
						break
					}
					end := strings.Index(rest[1:], "\"")
					if end < 0 {
						t.Fatalf("%s: unterminated want string %q", key, rest)
					}
					s, err := strconv.Unquote(rest[:end+2])
					if err != nil {
						t.Fatalf("%s: bad want string: %v", key, err)
					}
					wants[key] = append(wants[key], s)
					rest = rest[end+2:]
				}
			}
		}
	}
	return wants
}

// runGolden runs one analyzer over its testdata package and checks the
// diagnostics against the want comments in both directions.
func runGolden(t *testing.T, a *Analyzer) {
	t.Helper()
	pkg := loadTestdata(t, a.Name)
	diags := Run(pkg, []*Analyzer{a})
	if len(diags) == 0 {
		t.Fatalf("%s produced no diagnostics on its testdata; the true-positive "+
			"demonstrations are gone", a.Name)
	}
	wants := collectWants(t, pkg)
	if len(wants) == 0 {
		t.Fatalf("testdata for %s has no want comments", a.Name)
	}

	got := make(map[string][]string)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		got[key] = append(got[key], d.Message)
	}

	for key, substrs := range wants {
		msgs := got[key]
		if len(msgs) == 0 {
			t.Errorf("%s: want diagnostic containing %q, got none", key, substrs)
			continue
		}
		for _, sub := range substrs {
			found := false
			for _, m := range msgs {
				if strings.Contains(m, sub) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: no diagnostic contains %q; got %q", key, sub, msgs)
			}
		}
	}
	for key, msgs := range got {
		if _, ok := wants[key]; !ok {
			t.Errorf("%s: unexpected diagnostic(s) %q", key, msgs)
		}
	}
}

func TestMapIterGolden(t *testing.T)    { runGolden(t, MapIter) }
func TestFloatEqGolden(t *testing.T)    { runGolden(t, FloatEq) }
func TestLockCheckGolden(t *testing.T)  { runGolden(t, LockCheck) }
func TestSizeUnitsGolden(t *testing.T)  { runGolden(t, SizeUnits) }
func TestNDTaintGolden(t *testing.T)    { runGolden(t, NDTaint) }
func TestErrFlowGolden(t *testing.T)    { runGolden(t, ErrFlow) }
func TestHotAllocGolden(t *testing.T)   { runGolden(t, HotAlloc) }
func TestRetryBoundGolden(t *testing.T) { runGolden(t, RetryBound) }
func TestAllowCheckGolden(t *testing.T) { runGolden(t, AllowCheck) }
func TestPkgDocGolden(t *testing.T)     { runGolden(t, PkgDoc) }
func TestLockOrderGolden(t *testing.T)  { runGolden(t, LockOrder) }
func TestGuardedByGolden(t *testing.T)  { runGolden(t, GuardedBy) }
func TestGoroLeakGolden(t *testing.T)   { runGolden(t, GoroLeak) }

// TestPkgDocPrefix checks the convention half of pkgdoc: a package whose
// comment exists but does not open "Package <name>" gets exactly one
// diagnostic, anchored to the package clause.
func TestPkgDocPrefix(t *testing.T) {
	pkg := loadTestdata(t, "pkgdocprefix")
	diags := Run(pkg, []*Analyzer{PkgDoc})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, `should start with "Package pkgdocprefix"`) {
		t.Errorf("unexpected message: %s", diags[0].Message)
	}
}

// TestPkgDocClean checks the analyzer stays silent on a conventionally
// documented package.
func TestPkgDocClean(t *testing.T) {
	pkg := loadTestdata(t, "pkgdocok")
	if diags := Run(pkg, []*Analyzer{PkgDoc}); len(diags) != 0 {
		t.Fatalf("clean package produced diagnostics: %v", diags)
	}
}

// TestAllowCheckUnsuppressable proves an unjustified directive cannot allow
// itself: the testdata contains `fbvet:allow allowcheck` with a want marker,
// so if Run ever honored suppressions for the self-check, the golden pass
// above would fail with a missing diagnostic. This test pins the fixture.
func TestAllowCheckUnsuppressable(t *testing.T) {
	pkg := loadTestdata(t, "allowcheck")
	found := false
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, "fbvet:allow allowcheck") {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("allowcheck testdata lost its self-allow fixture; the bypass path is untested")
	}
	runGolden(t, AllowCheck)
}

// TestSuppressionDirective proves //fbvet:allow silences exactly the named
// analyzer on the annotated line: the floateq testdata contains an exact
// comparison carrying the directive and no want comment, so runGolden's
// "unexpected diagnostic" check would fail if suppression broke.
func TestSuppressionDirective(t *testing.T) {
	pkg := loadTestdata(t, "floateq")
	found := false
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, "fbvet:allow floateq") {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("floateq testdata lost its fbvet:allow directive; the suppression path is untested")
	}
	runGolden(t, FloatEq)
}

// TestByName checks analyzer selection parsing.
func TestByName(t *testing.T) {
	got, err := ByName("mapiter, floateq")
	if err != nil || len(got) != 2 || got[0] != MapIter || got[1] != FloatEq {
		t.Fatalf("ByName = %v, %v", got, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName should reject unknown analyzers")
	}
}

// TestRepoIsClean runs the full suite over the whole repository — the
// determinism gate the CI lint job enforces. Any new finding must be fixed
// or explicitly suppressed with a justified //fbvet:allow.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide analysis is slow; run without -short")
	}
	pkgs, err := Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; pattern ./... should cover the repo", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, d := range Run(pkg, All()) {
			t.Errorf("%s", d)
		}
	}
}
