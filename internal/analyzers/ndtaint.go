package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NDTaint is the nondeterminism taint analyzer: inside the simulation
// packages it taints wall-clock reads (time.Now/Since/Until), calls to the
// global math/rand generator, and loop variables of map ranges that exit
// early (the element they hold was drawn under Go's randomized iteration
// order), then follows the dataflow engine (dataflow.go) and reports where a
// tainted value reaches simulation state: a field or indexed write, a
// package-level variable, a return value, a call argument, or a channel
// send. It also flags goroutines that share unsynchronized local state with
// their spawning function.
//
// The sanctioned randomness source is a seeded *rand.Rand threaded through
// configuration (rand.New(rand.NewSource(seed))); method calls on such a
// generator are not tainted.
var NDTaint = &Analyzer{
	Name: "ndtaint",
	Doc: "flag wall-clock, global math/rand, and map-order values flowing into " +
		"simulation state, and unsynchronized goroutine captures",
	Run: runNDTaint,
}

// ndtaintScope lists the package-path fragments that make up "simulation
// state" — everything that must be a deterministic function of the trace.
var ndtaintScope = []string{
	"internal/core", "internal/simulate", "internal/srm", "internal/mss",
	"internal/grid", "internal/cache", "internal/history", "internal/policy",
	"internal/solver",
}

// inAnalyzerScope reports whether the package is subject to a scoped
// analyzer. The golden-test package shares the analyzer's name, mirroring
// how testdata/src is laid out.
func inAnalyzerScope(pass *Pass, scope []string) bool {
	path := pass.Pkg.Path()
	if path == pass.Analyzer.Name {
		return true
	}
	for _, s := range scope {
		if strings.Contains(path, s) {
			return true
		}
	}
	return false
}

func runNDTaint(pass *Pass) {
	if !inAnalyzerScope(pass, ndtaintScope) {
		return
	}
	funcBodies(pass, func(name string, body *ast.BlockStmt) {
		seed := mapOrderSeeds(pass, body)
		tainted := propagateTaint(pass, body, ndSource, seed)
		reportTaintSinks(pass, body, tainted)
		checkGoroutineCaptures(pass, body)
	})
}

// ndSource classifies taint-introducing calls.
func ndSource(pass *Pass, e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	pkg, fn := calleePackage(pass, call)
	switch pkg {
	case "time":
		switch fn {
		case "Now", "Since", "Until":
			return "time." + fn + "()", true
		}
	case "math/rand", "math/rand/v2":
		// Constructors build the sanctioned seeded generator; everything else
		// at package level draws from the shared global source.
		switch fn {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return "", false
		}
		return "global " + pkg + "." + fn + "()", true
	}
	return "", false
}

// mapOrderSeeds pre-taints the key/value variables of map-range loops that
// can exit early: the element those variables hold when the loop breaks or
// returns was drawn under randomized iteration order. Exhaustive map ranges
// (order-independent reductions) are left alone; the mapiter analyzer owns
// the accumulate-then-order pattern.
func mapOrderSeeds(pass *Pass, body *ast.BlockStmt) taintSet {
	seed := make(taintSet)
	ast.Inspect(body, func(n ast.Node) bool {
		r, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if _, isMap := typeUnderlying[*types.Map](pass, r.X); !isMap {
			return true
		}
		if !rangeExitsEarly(r.Body) {
			return true
		}
		t := taint{src: r.Pos(), what: "an element drawn under randomized map iteration order"}
		for _, e := range []ast.Expr{r.Key, r.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					seed[obj] = t
				}
			}
		}
		return true
	})
	return seed
}

// rangeExitsEarly reports whether the loop body can stop before visiting
// every element: a break at the loop's own level or any return.
func rangeExitsEarly(body *ast.BlockStmt) bool {
	early := false
	var walk func(n ast.Node, breakTarget bool)
	walk = func(n ast.Node, breakTarget bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if early {
				return false
			}
			switch s := m.(type) {
			case *ast.FuncLit:
				return false // its returns/breaks are not ours
			case *ast.ReturnStmt:
				early = true
				return false
			case *ast.BranchStmt:
				if s.Tok == token.BREAK && breakTarget && s.Label == nil {
					early = true
				}
				return false
			case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
				if m != ast.Node(body) {
					// break inside binds to the nested statement; returns
					// still escape, so keep walking with breaks retargeted.
					walk(m, false)
					return false
				}
			}
			return true
		})
	}
	walk(body, true)
	return early
}

// reportTaintSinks walks one function body and reports every statement where
// a tainted value escapes into state another component can observe.
func reportTaintSinks(pass *Pass, body *ast.BlockStmt, tainted taintSet) {
	if len(tainted) == 0 && !hasDirectSource(pass, body) {
		return
	}
	report := func(pos token.Pos, t taint, sink string) {
		pass.Reportf(pos, "%s (from line %d) flows into %s; simulation state must be "+
			"deterministic — thread a seeded *rand.Rand (or trace-derived clock) through the config",
			t.what, pass.Fset.Position(t.src).Line, sink)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, l := range s.Lhs {
				rhs := s.Rhs[0]
				if len(s.Rhs) == len(s.Lhs) {
					rhs = s.Rhs[i]
				}
				t, ok := exprTaint(pass, rhs, tainted, ndSource)
				if !ok {
					continue
				}
				switch lv := l.(type) {
				case *ast.SelectorExpr:
					report(s.Pos(), t, "field write "+types.ExprString(l))
				case *ast.IndexExpr:
					report(s.Pos(), t, "indexed write "+types.ExprString(l))
				case *ast.StarExpr:
					report(s.Pos(), t, "pointer write "+types.ExprString(l))
				case *ast.Ident:
					if v, ok := pass.TypesInfo.ObjectOf(lv).(*types.Var); ok && v.Parent() == pass.Pkg.Scope() {
						report(s.Pos(), t, "package-level variable "+lv.Name)
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if t, ok := exprTaint(pass, r, tainted, ndSource); ok {
					report(s.Pos(), t, "a return value")
				}
			}
		case *ast.SendStmt:
			if t, ok := exprTaint(pass, s.Value, tainted, ndSource); ok {
				report(s.Pos(), t, "a channel send")
			}
		case *ast.CallExpr:
			// Passing a tainted value onward counts: the callee may store it.
			// Conversions and the source calls themselves are propagation,
			// not sinks.
			if tv, ok := pass.TypesInfo.Types[s.Fun]; ok && tv.IsType() {
				return true
			}
			if _, isSrc := ndSource(pass, s); isSrc {
				return true
			}
			for _, arg := range s.Args {
				if t, ok := exprTaint(pass, arg, tainted, ndSource); ok {
					report(arg.Pos(), t, "call argument of "+types.ExprString(s.Fun))
				}
			}
		}
		return true
	})
	// Global-generator mutators whose whole effect is nondeterministic state:
	// a discarded rand.Shuffle/Seed call never reaches a value sink but still
	// perturbs the run.
	ast.Inspect(body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkg, fn := calleePackage(pass, call); (pkg == "math/rand" || pkg == "math/rand/v2") &&
			(fn == "Shuffle" || fn == "Seed") {
			pass.Reportf(es.Pos(), "global %s.%s mutates the shared generator; "+
				"use the seeded *rand.Rand from the config", pkg, fn)
		}
		return true
	})
}

// hasDirectSource cheaply pre-screens a body for source calls so sink
// walking is skipped in the (common) clean case.
func hasDirectSource(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := ndSource(pass, call); ok {
				found = true
			}
		}
		return true
	})
	return found
}

// checkGoroutineCaptures flags `go func(){...}()` statements that share a
// captured local variable with the spawning function without visible
// synchronization: the goroutine writes a variable the function later reads
// (or vice versa). Channels, sync.* types, and closures that acquire a lock
// are exempt — the check targets plain shared counters and result slots,
// whose interleaving makes simulation output timing-dependent.
func checkGoroutineCaptures(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		if acquiresLock(lit.Body) {
			return true
		}
		for obj, name := range capturedVars(pass, body, lit) {
			if isSyncSafeType(obj.Type()) {
				continue
			}
			wIn := writesObj(pass, lit.Body, obj)
			rOut := accessesObjOutside(pass, body, lit, obj, g.End())
			wOut := writesObjOutsideAfter(pass, body, lit, obj, g.End())
			uIn := usesObj(pass, lit.Body, obj)
			if (wIn && rOut) || (wOut && uIn) {
				pass.Reportf(g.Pos(), "goroutine shares captured variable %q with its spawner "+
					"without synchronization; guard it with a mutex/channel or keep simulation "+
					"single-goroutine", name)
			}
		}
		return true
	})
}

// capturedVars lists local variables of the enclosing body that lit uses.
func capturedVars(pass *Pass, body *ast.BlockStmt, lit *ast.FuncLit) map[*types.Var]string {
	out := make(map[*types.Var]string)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured = declared in the enclosing body, outside the literal.
		if v.Pos() >= body.Pos() && v.Pos() < body.End() &&
			!(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			out[v] = id.Name
		}
		return true
	})
	return out
}

// isSyncSafeType reports types whose sharing is inherently synchronized or
// conventional: channels, sync.* primitives, sync/atomic values, and
// pointers to them.
func isSyncSafeType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	return pkg.Path() == "sync" || pkg.Path() == "sync/atomic"
}

// acquiresLock reports whether body contains a Lock/RLock call — a crude but
// effective signal that the closure participates in a locking protocol.
func acquiresLock(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Lock", "RLock", "TryLock", "TryRLock":
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func writesObj(pass *Pass, n ast.Node, obj *types.Var) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		switch s := m.(type) {
		case *ast.AssignStmt:
			for _, l := range s.Lhs {
				if id, ok := l.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if id, ok := s.X.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

func usesObj(pass *Pass, n ast.Node, obj *types.Var) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// accessesObjOutside reports a use of obj in body after pos, outside lit.
func accessesObjOutside(pass *Pass, body *ast.BlockStmt, lit *ast.FuncLit, obj *types.Var, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(m ast.Node) bool {
		if m == ast.Node(lit) {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && id.Pos() > pos && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// writesObjOutsideAfter reports an assignment to obj in body after pos,
// outside lit.
func writesObjOutsideAfter(pass *Pass, body *ast.BlockStmt, lit *ast.FuncLit, obj *types.Var, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(m ast.Node) bool {
		if m == ast.Node(lit) {
			return false
		}
		switch s := m.(type) {
		case *ast.AssignStmt:
			for _, l := range s.Lhs {
				if id, ok := l.(*ast.Ident); ok && id.Pos() > pos && pass.TypesInfo.ObjectOf(id) == obj {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if id, ok := s.X.(*ast.Ident); ok && id.Pos() > pos && pass.TypesInfo.ObjectOf(id) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}
