package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags exact equality on floating-point values: == and != between
// float operands, and switch statements dispatching on a float tag. The
// values this repository compares — request values v(r), relative values
// v'(r) = v/Σs'(f), Landlord credits — are quotients and decayed sums, so
// two mathematically equal quantities routinely differ in the last ulps and
// exact comparison turns rounding noise into divergent eviction decisions.
// Use floats.AlmostEqual / floats.AlmostZero (internal/floats) instead.
//
// The x != x NaN idiom is exempt; prefer math.IsNaN for readability.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "flag ==, != and switch on float64 expressions; " +
		"rounding noise must not decide ties — use internal/floats helpers",
	Run: runFloatEq,
}

func runFloatEq(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if e.Op != token.EQL && e.Op != token.NEQ {
					return true
				}
				if !isFloat(pass.TypeOf(e.X)) && !isFloat(pass.TypeOf(e.Y)) {
					return true
				}
				if types.ExprString(e.X) == types.ExprString(e.Y) {
					return true // x != x: the NaN self-test idiom
				}
				pass.Reportf(e.OpPos,
					"exact %s comparison of floating-point values %s and %s; "+
						"use floats.AlmostEqual or floats.AlmostZero so round-off cannot decide ties",
					e.Op, types.ExprString(e.X), types.ExprString(e.Y))
			case *ast.SwitchStmt:
				if e.Tag != nil && isFloat(pass.TypeOf(e.Tag)) {
					pass.Reportf(e.Switch,
						"switch on floating-point value %s compares cases exactly; "+
							"use if/else with floats.AlmostEqual",
						types.ExprString(e.Tag))
				}
			}
			return true
		})
	}
}
