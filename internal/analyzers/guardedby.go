package analyzers

// guardedby checks declared lock-field contracts. A struct field annotated
//
//	foo int //fbvet:guardedby mu
//
// (doc comment or line comment; mu names a sync.Mutex/RWMutex field of the
// same struct, embedded mutexes by their type name) may only be read or
// written while that lock is held on the same object the field is reached
// through. The interprocedural engine supplies the lock state, so a helper
// documented "called with s.mu held" is checked against its real callers
// rather than trusted; writes under RLock are flagged separately, as are
// copies of annotated structs (value receivers and pointer dereferences) —
// a lock on a copy serializes nothing.
//
// Accesses through freshly constructed locals (assigned only from &T{...},
// T{...}, or new(T)) are exempt: constructor-time initialization happens
// before the object is shared, when no lock can or need be held.

import (
	"go/ast"
	"go/types"
	"strings"
)

// GuardedBy enforces //fbvet:guardedby field annotations.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc: "flag accesses to //fbvet:guardedby-annotated struct fields made " +
		"without holding the guarding lock (through helper calls too), " +
		"writes under RLock, and copies of annotated structs",
	Run: runGuardedBy,
}

// guardAnnotation is one parsed //fbvet:guardedby directive.
type guardAnnotation struct {
	field *types.Var // the guarded field
	lock  *types.Var // the guarding mutex field in the same struct
	owner string     // owning struct type name, for messages
}

// guardedbyDirective extracts the lock name from a //fbvet:guardedby
// comment, mirroring directiveTail's strictness: the marker must lead the
// comment, so prose mentioning the syntax does not annotate anything.
func guardedbyDirective(comment string) (string, bool) {
	text := strings.TrimSpace(comment)
	switch {
	case strings.HasPrefix(text, "//"):
		text = text[2:]
	case strings.HasPrefix(text, "/*"):
		text = strings.TrimSuffix(text[2:], "*/")
	}
	text = strings.TrimSpace(text)
	const marker = "fbvet:guardedby"
	if !strings.HasPrefix(text, marker) {
		return "", false
	}
	fields := strings.Fields(text[len(marker):])
	if len(fields) == 0 {
		return "", false
	}
	return fields[0], true
}

// collectGuards parses every annotation in the package, reporting malformed
// ones (unknown or non-mutex lock fields) as findings.
func collectGuards(pass *Pass) map[*types.Var]guardAnnotation {
	guards := make(map[*types.Var]guardAnnotation)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			// Field names of this struct, for resolving the lock operand.
			byName := make(map[string]*types.Var)
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						byName[name.Name] = v
					}
				}
				if len(f.Names) == 0 { // embedded field, named by its type
					if id := firstIdent(f.Type); id != nil {
						if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
							byName[id.Name] = v
						} else if sel, ok := f.Type.(*ast.SelectorExpr); ok {
							// embedded qualified type like sync.Mutex
							if v, ok := pass.TypesInfo.Defs[sel.Sel].(*types.Var); ok {
								byName[sel.Sel.Name] = v
							}
						}
					}
				}
			}
			for _, f := range st.Fields.List {
				var lockName string
				var found bool
				var dirPos ast.Node = f
				for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
					if cg == nil {
						continue
					}
					for _, c := range cg.List {
						if name, ok := guardedbyDirective(c.Text); ok {
							lockName, found, dirPos = name, true, c
						}
					}
				}
				if !found {
					continue
				}
				lock, ok := byName[lockName]
				if !ok {
					pass.Reportf(dirPos.Pos(), "guardedby: %s has no field %q to guard with", ts.Name.Name, lockName)
					continue
				}
				if !isSyncMutex(lock.Type()) {
					pass.Reportf(dirPos.Pos(), "guardedby: field %q of %s is not a sync.Mutex or sync.RWMutex", lockName, ts.Name.Name)
					continue
				}
				for _, name := range f.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guards[v] = guardAnnotation{field: v, lock: lock, owner: ts.Name.Name}
					}
				}
			}
			return true
		})
	}
	return guards
}

func runGuardedBy(pass *Pass) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return
	}
	eng := newLockEngine(pass)
	reported := make(map[string]bool) // loop bodies are walked twice

	report := func(pos ast.Node, format string, args ...any) {
		key := pass.Fset.Position(pos.Pos()).String() + format
		if reported[key] {
			return
		}
		reported[key] = true
		pass.Reportf(pos.Pos(), format, args...)
	}

	for _, n := range eng.nodes {
		for _, acc := range eng.facts[n].accesses {
			g, ok := guards[acc.field]
			if !ok {
				continue
			}
			root := firstIdent(acc.sel.X)
			if root == nil {
				continue
			}
			obj := pass.TypesInfo.ObjectOf(root)
			v, isVar := obj.(*types.Var)
			if !isVar {
				continue // reached through a call or other non-variable root
			}
			if eng.fresh[v] {
				continue // constructor-time initialization of a fresh object
			}
			mode, held := acc.held[heldKey{base: v, field: g.lock}]
			action := "read"
			if acc.write {
				action = "write to"
			}
			switch {
			case !held:
				report(acc.sel, "%s field (%s).%s without holding %s (//fbvet:guardedby)",
					action, g.owner, acc.field.Name(), g.lock.Name())
			case acc.write && mode == modeRead:
				report(acc.sel, "write to field (%s).%s while holding only an RLock on %s",
					g.owner, acc.field.Name(), g.lock.Name())
			}
		}
	}

	checkCopies(pass, guards)
}

// checkCopies flags operations that copy an annotated struct by value: the
// copy carries its own mutex, so locking it serializes nothing.
func checkCopies(pass *Pass, guards map[*types.Var]guardAnnotation) {
	// Named struct types that carry at least one annotated field.
	annotated := make(map[types.Type]string)
	for _, g := range guards {
		if obj := pass.Pkg.Scope().Lookup(g.owner); obj != nil {
			annotated[obj.Type()] = g.owner
		}
	}
	isAnnotated := func(t types.Type) (string, bool) {
		if t == nil {
			return "", false
		}
		name, ok := annotated[t]
		return name, ok
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Recv != nil && len(fd.Recv.List) > 0 {
				recvType := pass.TypeOf(fd.Recv.List[0].Type)
				if name, ok := isAnnotated(recvType); ok {
					pass.Reportf(fd.Name.Pos(), "method %s copies %s by value (it has guarded fields); use a pointer receiver", fd.Name.Name, name)
				}
			}
			if fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				star, ok := n.(*ast.StarExpr)
				if !ok {
					return true
				}
				if name, ok := isAnnotated(pass.TypeOf(star)); ok {
					pass.Reportf(star.Pos(), "dereference copies %s by value (it has guarded fields)", name)
				}
				return true
			})
		}
	}
}
