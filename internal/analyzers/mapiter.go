package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapIter flags `for ... range <map>` loops that accumulate keys or values
// into a slice which is later used in an ordered way — returned, indexed,
// sliced, or passed to another function — without an intervening
// deterministic sort. Go randomizes map iteration order per run, so such
// slices silently make eviction and selection decisions nondeterministic.
//
// A use is considered sanctioned once the slice has been passed to the sort
// or slices packages (or any callee whose name contains "Sort"). Ranging
// over the slice locally is not flagged: order-independent reductions
// (sums, set rebuilds) are the common case and sorting them would be noise.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc: "flag map-range loops whose accumulated slice feeds ordered decisions " +
		"(return, call, index) without a deterministic sort in between",
	Run: runMapIter,
}

func runMapIter(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkMapIterBody(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkMapIterBody(pass, fn.Body)
			}
			return true
		})
	}
}

// checkMapIterBody analyzes one function body. Nested function literals are
// skipped while locating range statements (they get their own call), but are
// included when scanning for later uses, since closures observe the outer
// slice.
func checkMapIterBody(pass *Pass, body *ast.BlockStmt) {
	var ranges []*ast.RangeStmt
	inspectSkippingFuncLits(body, func(n ast.Node) {
		r, ok := n.(*ast.RangeStmt)
		if !ok {
			return
		}
		if _, isMap := typeUnderlying[*types.Map](pass, r.X); isMap {
			ranges = append(ranges, r)
		}
	})

	for _, r := range ranges {
		for v, name := range mapIterAccumulators(pass, r) {
			firstUse, firstSanction := token.NoPos, token.NoPos
			walkWithStack(body, func(n ast.Node, stack []ast.Node) {
				id, ok := n.(*ast.Ident)
				if !ok || id.Pos() <= r.End() || pass.TypesInfo.Uses[id] != v {
					return
				}
				switch pos, kind := classifySliceUse(pass, id, stack); kind {
				case sliceUseOrdered:
					if firstUse == token.NoPos || pos < firstUse {
						firstUse = pos
					}
				case sliceUseSanction:
					if firstSanction == token.NoPos || pos < firstSanction {
						firstSanction = pos
					}
				}
			})
			if firstUse != token.NoPos && (firstSanction == token.NoPos || firstSanction > firstUse) {
				pass.Reportf(r.Pos(),
					"range over map %s accumulates into %s, used for ordering at line %d "+
						"without a deterministic sort; sort the extracted keys first",
					types.ExprString(r.X), name, pass.Fset.Position(firstUse).Line)
			}
		}
	}
}

// mapIterAccumulators finds slice variables declared outside r that the loop
// body appends to, keyed by object with their display name.
func mapIterAccumulators(pass *Pass, r *ast.RangeStmt) map[*types.Var]string {
	out := make(map[*types.Var]string)
	ast.Inspect(r.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != len(asg.Rhs) {
			return true
		}
		for i := range asg.Lhs {
			lhs, ok := asg.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			call, ok := asg.Rhs[i].(*ast.CallExpr)
			if !ok || !isBuiltinCall(pass, call, "append") || len(call.Args) == 0 {
				continue
			}
			obj, ok := pass.TypesInfo.ObjectOf(lhs).(*types.Var)
			if !ok || obj == nil {
				continue
			}
			if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
				continue
			}
			// Only accumulators that outlive the loop matter.
			if obj.Pos() >= r.Pos() && obj.Pos() <= r.End() {
				continue
			}
			// append's first argument must be the same variable.
			if base, ok := call.Args[0].(*ast.Ident); ok && pass.TypesInfo.ObjectOf(base) == obj {
				out[obj] = lhs.Name
			}
		}
		return true
	})
	return out
}

type sliceUseKind int

const (
	sliceUseNone sliceUseKind = iota
	sliceUseOrdered
	sliceUseSanction
)

// classifySliceUse decides what one occurrence of the accumulator identifier
// means by climbing its ancestor chain.
func classifySliceUse(pass *Pass, id *ast.Ident, stack []ast.Node) (token.Pos, sliceUseKind) {
	child := ast.Node(id)
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.CallExpr:
			if child == p.Fun {
				return token.NoPos, sliceUseNone
			}
			if isSanctionedSort(pass, p) {
				return p.Pos(), sliceUseSanction
			}
			if isBuiltinCall(pass, p, "append") {
				// Appending further to the accumulator is still accumulation;
				// splicing it into another slice consumes its order.
				if len(p.Args) > 0 && containsPos(p.Args[0], id.Pos()) {
					return token.NoPos, sliceUseNone
				}
				return id.Pos(), sliceUseOrdered
			}
			if isBuiltinCall(pass, p, "len") || isBuiltinCall(pass, p, "cap") ||
				isBuiltinCall(pass, p, "delete") {
				return token.NoPos, sliceUseNone
			}
			return id.Pos(), sliceUseOrdered
		case *ast.IndexExpr:
			if child == p.X {
				return id.Pos(), sliceUseOrdered
			}
			child = p
		case *ast.SliceExpr:
			if child == p.X {
				return id.Pos(), sliceUseOrdered
			}
			child = p
		case *ast.RangeStmt:
			if child == p.X {
				return token.NoPos, sliceUseNone // local reduction, see Doc
			}
			child = p
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				return id.Pos(), sliceUseOrdered
			}
			child = p
		case *ast.AssignStmt:
			for _, l := range p.Lhs {
				if l == child {
					return token.NoPos, sliceUseNone // plain (re)assignment
				}
			}
			return id.Pos(), sliceUseOrdered // aliased into another variable
		case *ast.ReturnStmt:
			return id.Pos(), sliceUseOrdered
		case *ast.CompositeLit, *ast.KeyValueExpr:
			return id.Pos(), sliceUseOrdered
		case ast.Stmt:
			return token.NoPos, sliceUseNone
		default:
			child = p
		}
	}
	return token.NoPos, sliceUseNone
}

// isSanctionedSort reports whether call establishes a deterministic order:
// any call into the sort or slices packages, or any callee whose name
// mentions Sort.
func isSanctionedSort(pass *Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.ObjectOf(id).(*types.PkgName); ok {
				path := pn.Imported().Path()
				if path == "sort" || path == "slices" {
					return true
				}
			}
		}
		return containsSortName(fun.Sel.Name)
	case *ast.Ident:
		return containsSortName(fun.Name)
	}
	return false
}

func containsSortName(name string) bool {
	for i := 0; i+4 <= len(name); i++ {
		if c := name[i]; (c == 's' || c == 'S') &&
			name[i+1] == 'o' && name[i+2] == 'r' && name[i+3] == 't' {
			return true
		}
	}
	return false
}

// --- small AST utilities shared by the suite ---

// inspectSkippingFuncLits walks n without descending into nested function
// literals (other than n itself).
func inspectSkippingFuncLits(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		visit(m)
		return true
	})
}

// walkWithStack visits every node of root with its ancestor chain
// (outermost first, not including the node itself).
func walkWithStack(root ast.Node, visit func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		visit(n, stack)
		stack = append(stack, n)
		return true
	})
}

// isBuiltinCall reports whether call invokes the named predeclared builtin.
func isBuiltinCall(pass *Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

// containsPos reports whether node n's source range covers pos.
func containsPos(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos <= n.End()
}

// typeUnderlying returns e's underlying type as T.
func typeUnderlying[T types.Type](pass *Pass, e ast.Expr) (T, bool) {
	var zero T
	t := pass.TypeOf(e)
	if t == nil {
		return zero, false
	}
	u, ok := t.Underlying().(T)
	if !ok {
		return zero, false
	}
	return u, true
}
