package analyzers

// goroleak flags the two goroutine-lifecycle mistakes that matter for a
// long-running SRM daemon:
//
//   - goroutines spawned inside a loop with no visible bound: neither a
//     WaitGroup Add in the loop body nor, for go func literals, a
//     cancellation path inside the goroutine (a channel receive — which
//     covers <-ctx.Done() — or a WaitGroup Done). Every accepted
//     connection or queued job otherwise grows the goroutine count without
//     anything ever joining or stopping them.
//
//   - timers and tickers that can never be stopped: time.Tick (inherently
//     unstoppable — its ticker is unreachable), and time.AfterFunc /
//     NewTimer / NewTicker results that are discarded or held in a local
//     that neither has a Stop call anywhere in the function (a deferred
//     Stop is the usual shape) nor escapes to an owner who could stop it.
//
// "A Stop call anywhere in the function" is a deliberate approximation of
// the ISSUE's "Stop on every exit path": the walker-level path analysis
// would add little here because the dominant bug is the wholly missing
// Stop, and a conditional Stop is nearly always a deliberate handoff.

import (
	"go/ast"
	"go/types"
)

// GoroLeak flags unbounded goroutine spawns in loops and unstoppable
// timers/tickers.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc: "flag goroutines spawned in loops without a WaitGroup bound or " +
		"cancellation path, time.Tick, and AfterFunc/NewTimer/NewTicker " +
		"results that are never stopped and never escape",
	Run: runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoInLoops(pass, fd.Body)
			checkTimers(pass, fd.Body)
		}
	}
}

// checkGoInLoops inspects every go statement lexically inside a loop body.
func checkGoInLoops(pass *Pass, body *ast.BlockStmt) {
	var loops []*ast.BlockStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, x.Body)
		case *ast.RangeStmt:
			loops = append(loops, x.Body)
		}
		return true
	})
	if len(loops) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		// Innermost enclosing loop body, by position containment.
		var loop *ast.BlockStmt
		for _, l := range loops {
			if l.Pos() <= g.Pos() && g.End() <= l.End() {
				if loop == nil || (loop.Pos() <= l.Pos() && l.End() <= loop.End()) {
					loop = l
				}
			}
		}
		if loop == nil {
			return true
		}
		if loopHasWaitGroupAdd(pass, loop) {
			return true
		}
		if lit, ok := g.Call.Fun.(*ast.FuncLit); ok && closureHasCancellation(lit) {
			return true
		}
		pass.Reportf(g.Pos(), "goroutine spawned in a loop without a WaitGroup Add in the loop or a cancellation path in the goroutine")
		return true
	})
}

// loopHasWaitGroupAdd reports a call to Add on a sync.WaitGroup anywhere in
// the loop body — the spawn-side half of the Add/Done/Wait discipline.
func loopHasWaitGroupAdd(pass *Pass, loop *ast.BlockStmt) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		if isWaitGroup(pass.TypeOf(sel.X)) {
			found = true
		}
		return true
	})
	return found
}

// isWaitGroup matches sync.WaitGroup, by value or pointer.
func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// closureHasCancellation reports whether the goroutine body contains a
// channel receive (covering <-ctx.Done() and done-channel idioms, in plain
// expressions or select clauses) or a call to a Done method (WaitGroup).
func closureHasCancellation(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				found = true
			}
		}
		return true
	})
	return found
}

// checkTimers flags time.Tick and never-stopped timer/ticker constructions.
func checkTimers(pass *Pass, body *ast.BlockStmt) {
	// Calls whose results are consumed by a surrounding expression — passed
	// on, returned, stored, sent — escape to an owner who can stop them.
	assignedTo := make(map[*ast.CallExpr]*ast.Ident)
	escaped := make(map[ast.Node]bool)
	markEscapes := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			escaped[n] = true
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					rhs := unparen(x.Rhs[i])
					call, ok := rhs.(*ast.CallExpr)
					if !ok {
						continue
					}
					if id, ok := x.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
						assignedTo[call] = id
					} else if sel, ok := x.Lhs[i].(*ast.SelectorExpr); ok {
						_ = sel
						escaped[call] = true // stored into a struct field
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				markEscapes(r)
			}
		case *ast.CallExpr:
			for _, a := range x.Args {
				markEscapes(a)
			}
		case *ast.CompositeLit:
			for _, e := range x.Elts {
				markEscapes(e)
			}
		case *ast.SendStmt:
			markEscapes(x.Value)
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name := calleePackage(pass, call)
		if pkg != "time" {
			return true
		}
		switch name {
		case "Tick":
			pass.Reportf(call.Pos(), "time.Tick leaks its ticker (no Stop is possible); use time.NewTicker with a deferred Stop")
			return true
		case "AfterFunc", "NewTimer", "NewTicker":
		default:
			return true
		}
		if escaped[call] {
			return true
		}
		id, ok := assignedTo[call]
		if !ok {
			pass.Reportf(call.Pos(), "time.%s result is discarded, so the %s can never be stopped", name, timerKind(name))
			return true
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil || identIsStoppedOrEscapes(pass, body, obj) {
			return true
		}
		pass.Reportf(call.Pos(), "time.%s result %q is never stopped and never escapes; the %s leaks", name, id.Name, timerKind(name))
		return true
	})
}

func timerKind(ctor string) string {
	if ctor == "NewTicker" {
		return "ticker"
	}
	return "timer"
}

// identIsStoppedOrEscapes reports whether the timer/ticker variable has a
// Stop call anywhere in the function, or flows somewhere an owner could
// stop it (call argument, return value, composite literal, channel send,
// stored through a selector/index).
func identIsStoppedOrEscapes(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	usesObj := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
				found = true
			}
			return true
		})
		return found
	}
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, isSel := x.Fun.(*ast.SelectorExpr); isSel && sel.Sel.Name == "Stop" {
				if id := firstIdent(sel.X); id != nil && pass.TypesInfo.ObjectOf(id) == obj {
					ok = true
					return true
				}
			}
			for _, a := range x.Args {
				if usesObj(a) {
					ok = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if usesObj(r) {
					ok = true
				}
			}
		case *ast.CompositeLit:
			for _, e := range x.Elts {
				if usesObj(e) {
					ok = true
				}
			}
		case *ast.SendStmt:
			if usesObj(x.Value) {
				ok = true
			}
		case *ast.AssignStmt:
			for i, l := range x.Lhs {
				if _, isIdent := l.(*ast.Ident); isIdent {
					continue
				}
				if i < len(x.Rhs) && usesObj(x.Rhs[i]) {
					ok = true // stored through a field or element
				}
			}
		}
		return true
	})
	return ok
}
