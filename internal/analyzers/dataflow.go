package analyzers

// This file is the suite's flow-sensitive substrate: a self-contained,
// intra-procedural dataflow (taint-propagation) engine built directly on
// go/ast + go/types. It plays the role golang.org/x/tools/go/ssa would play
// in a dependency-bearing repo — def-use propagation to a fixed point over
// loops — without leaving the standard toolchain: values produced by a
// source expression taint the variables they are assigned to, taint flows
// through expressions, assignments, conversions, method calls on tainted
// receivers, and range statements, and analyzers then ask where tainted
// values reach their sinks (state writes, returns, call arguments).
//
// The engine is deliberately conservative in both directions: calls with
// tainted *arguments* do not taint their results (or every seeded
// rand.New(rand.NewSource(seed)) chain would light up), while any lexical
// derivation of a tainted value stays tainted. Analyzers provide the source
// predicate; the engine owns propagation.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// taint records where a tainted value originated.
type taint struct {
	src  token.Pos // position of the source expression
	what string    // human description ("time.Now()", "unseeded math/rand call")
}

// taintSet maps tainted objects (local variables, named results) to their
// origin. The first origin to reach a variable wins; diagnostics point at it.
type taintSet map[types.Object]taint

// sourceFunc reports whether expression e introduces taint, and describes it.
type sourceFunc func(pass *Pass, e ast.Expr) (string, bool)

// maxTaintIters bounds the propagation fixpoint. Each iteration can only
// grow the taint set through chains of local assignments, so the loop
// terminates long before the bound on any real function; the bound is a
// defensive backstop, not a tuning knob.
const maxTaintIters = 16

// propagateTaint computes the tainted variables of one function body by
// iterating assignment/declaration/range propagation to a fixed point, so
// taint survives arbitrary statement order and loop-carried flows
// (x := time.Now(); for { y = x; state = y }). seed pre-taints objects whose
// taint is positional rather than expressional (map-range loop variables);
// it may be nil.
func propagateTaint(pass *Pass, body *ast.BlockStmt, isSource sourceFunc, seed taintSet) taintSet {
	tainted := make(taintSet)
	for obj, t := range seed {
		tainted[obj] = t
	}
	for iter := 0; iter < maxTaintIters; iter++ {
		changed := false
		mark := func(id *ast.Ident, t taint) {
			obj := pass.TypesInfo.ObjectOf(id)
			if obj == nil || id.Name == "_" {
				return
			}
			if _, ok := tainted[obj]; !ok {
				tainted[obj] = t
				changed = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				taintAssign(pass, s, tainted, isSource, mark)
			case *ast.DeclStmt:
				gd, ok := s.Decl.(*ast.GenDecl)
				if !ok {
					return true
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							if t, ok := exprTaint(pass, vs.Values[i], tainted, isSource); ok {
								mark(name, t)
							}
						} else if len(vs.Values) == 1 {
							if t, ok := exprTaint(pass, vs.Values[0], tainted, isSource); ok {
								mark(name, t)
							}
						}
					}
				}
			case *ast.RangeStmt:
				// Ranging over a tainted collection taints the drawn elements.
				if t, ok := exprTaint(pass, s.X, tainted, isSource); ok {
					if id, ok := s.Key.(*ast.Ident); ok {
						mark(id, t)
					}
					if id, ok := s.Value.(*ast.Ident); ok {
						mark(id, t)
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return tainted
}

// taintAssign propagates taint through one assignment statement.
func taintAssign(pass *Pass, s *ast.AssignStmt, tainted taintSet, isSource sourceFunc, mark func(*ast.Ident, taint)) {
	switch {
	case len(s.Lhs) == len(s.Rhs):
		for i := range s.Lhs {
			id, ok := s.Lhs[i].(*ast.Ident)
			if !ok {
				continue // field/index writes are sinks, not propagation
			}
			if t, ok := exprTaint(pass, s.Rhs[i], tainted, isSource); ok {
				mark(id, t)
				continue
			}
			// Compound assignment (x += tainted) keeps x's own taint via the
			// RHS check above; x op= clean does not clear existing taint.
		}
	case len(s.Rhs) == 1:
		// Multi-value: x, y := f() — a tainted producer taints every LHS.
		if t, ok := exprTaint(pass, s.Rhs[0], tainted, isSource); ok {
			for _, l := range s.Lhs {
				if id, ok := l.(*ast.Ident); ok {
					mark(id, t)
				}
			}
		}
	}
}

// exprTaint reports whether e evaluates to a tainted value under the current
// taint set, walking the expression's own structure (not statements).
func exprTaint(pass *Pass, e ast.Expr, tainted taintSet, isSource sourceFunc) (taint, bool) {
	switch v := e.(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.ObjectOf(v); obj != nil {
			t, ok := tainted[obj]
			return t, ok
		}
	case *ast.CallExpr:
		if what, ok := isSource(pass, v); ok {
			return taint{src: v.Pos(), what: what}, true
		}
		// A conversion is value-preserving: T(tainted) stays tainted.
		if tv, ok := pass.TypesInfo.Types[v.Fun]; ok && tv.IsType() && len(v.Args) == 1 {
			return exprTaint(pass, v.Args[0], tainted, isSource)
		}
		// A method call on a tainted receiver derives from it (t.Unix(),
		// time.Now().UnixNano()). Calls with merely tainted arguments do not
		// taint their result — see the file comment. sel.X being directly a
		// package ident (rand.Float64) is a qualifier, not a receiver.
		if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
			isPkgQualifier := false
			if id, ok := sel.X.(*ast.Ident); ok {
				_, isPkgQualifier = pass.TypesInfo.ObjectOf(id).(*types.PkgName)
			}
			if !isPkgQualifier {
				if t, ok := exprTaint(pass, sel.X, tainted, isSource); ok {
					return t, true
				}
			}
		}
	case *ast.BinaryExpr:
		if t, ok := exprTaint(pass, v.X, tainted, isSource); ok {
			return t, ok
		}
		return exprTaint(pass, v.Y, tainted, isSource)
	case *ast.UnaryExpr:
		return exprTaint(pass, v.X, tainted, isSource)
	case *ast.ParenExpr:
		return exprTaint(pass, v.X, tainted, isSource)
	case *ast.StarExpr:
		return exprTaint(pass, v.X, tainted, isSource)
	case *ast.SelectorExpr:
		// Field of a tainted struct value.
		return exprTaint(pass, v.X, tainted, isSource)
	case *ast.IndexExpr:
		// Both the collection and the index key carry order/value taint:
		// m[taintedKey] selects an element under tainted control.
		if t, ok := exprTaint(pass, v.X, tainted, isSource); ok {
			return t, ok
		}
		return exprTaint(pass, v.Index, tainted, isSource)
	case *ast.SliceExpr:
		return exprTaint(pass, v.X, tainted, isSource)
	case *ast.TypeAssertExpr:
		return exprTaint(pass, v.X, tainted, isSource)
	case *ast.CompositeLit:
		for _, el := range v.Elts {
			if t, ok := exprTaint(pass, el, tainted, isSource); ok {
				return t, ok
			}
		}
	case *ast.KeyValueExpr:
		return exprTaint(pass, v.Value, tainted, isSource)
	}
	return taint{}, false
}

// firstIdent returns the leftmost identifier of a selector chain, or nil.
func firstIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.CallExpr:
			e = v.Fun
		default:
			return nil
		}
	}
}

// calleePackage resolves the package a call's function selector refers to
// ("time", "math/rand"), or "" for local/method calls.
func calleePackage(pass *Pass, call *ast.CallExpr) (pkgPath, funcName string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := pass.TypesInfo.ObjectOf(id).(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// callResultsError reports whether call's type is error or its last tuple
// member is error.
func callResultsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(tup.Len() - 1).Type()
	}
	return types.Identical(t, errorType)
}

// funcBodies visits every function body in the package (declarations and
// function literals are visited through their enclosing declaration once).
func funcBodies(pass *Pass, visit func(name string, body *ast.BlockStmt)) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			visit(fn.Name.Name, fn.Body)
		}
	}
}
