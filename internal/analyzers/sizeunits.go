package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SizeUnits polices byte-size accounting arithmetic. File and cache sizes in
// this repository are 64-bit (bundle.Size = int64, catalogs go to terabytes),
// so two conversion shapes are bugs waiting to happen:
//
//  1. Narrowing: converting an explicitly 64-bit value (int64, uint64, or a
//     named type over them such as bundle.Size) to a narrower integer —
//     including platform int, which is 32 bits on 32-bit targets —
//     truncates large byte counts silently. Keep size accounting in
//     int64 / bundle.Size end to end, or bounds-check and annotate.
//  2. Widening after the fact: int64(a * b) with int operands performs the
//     multiplication in platform int and widens the already-overflowed
//     product. Convert the operands first: int64(a) * int64(b).
//
// Only explicitly 64-bit sources trigger the narrowing rule: index- and
// ID-shaped conversions like FileID(i) with an int loop variable are the
// dominant legitimate narrowing in this codebase and drowning real size
// truncations in that noise would get the analyzer ignored. Constant
// conversions are exempt (the compiler range-checks them).
var SizeUnits = &Analyzer{
	Name: "sizeunits",
	Doc: "flag integer conversions that can truncate 64-bit byte counts or " +
		"widen an int product that may already have overflowed",
	Run: runSizeUnits,
}

func runSizeUnits(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			arg := call.Args[0]
			argTV, ok := pass.TypesInfo.Types[arg]
			if !ok || argTV.Value != nil {
				return true // constants are range-checked at compile time
			}
			dst, okDst := basicInt(tv.Type)
			src, okSrc := basicInt(argTV.Type)
			if !okDst || !okSrc {
				return true
			}

			if is64(src) && intWidth(dst, false) < 8 {
				pass.Reportf(call.Pos(),
					"narrowing conversion %s(%s) from %s may truncate a 64-bit byte count; "+
						"keep size accounting in int64/bundle.Size or bounds-check first",
					types.ExprString(call.Fun), types.ExprString(arg), argTV.Type.String())
				return true
			}
			if intWidth(dst, false) == 8 && !is64(src) {
				if mul := overflowingArith(arg); mul != nil {
					pass.Reportf(call.Pos(),
						"%s(%s) widens after the %s: the %s-typed arithmetic can overflow "+
							"before the conversion; convert the operands first",
						types.ExprString(call.Fun), types.ExprString(arg),
						mul.Op, argTV.Type.String())
				}
			}
			return true
		})
	}
}

// basicInt returns t's underlying basic type when it is a (typed) integer.
func basicInt(t types.Type) (*types.Basic, bool) {
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 || b.Info()&types.IsUntyped != 0 {
		return nil, false
	}
	return b, true
}

// intWidth reports the byte width of b. Platform-dependent kinds (int, uint,
// uintptr) are scored pessimistically: wide as a source (8, they may hold
// 64-bit counts) and narrow as a destination (4, they may only fit 32 bits).
func intWidth(b *types.Basic, asSource bool) int {
	switch b.Kind() {
	case types.Int8, types.Uint8:
		return 1
	case types.Int16, types.Uint16:
		return 2
	case types.Int32, types.Uint32:
		return 4
	case types.Int64, types.Uint64:
		return 8
	default: // Int, Uint, Uintptr
		if asSource {
			return 8
		}
		return 4
	}
}

func is64(b *types.Basic) bool {
	return b.Kind() == types.Int64 || b.Kind() == types.Uint64
}

// overflowingArith reports whether e (modulo parens) is a multiplication or
// left shift — the arithmetic shapes whose intermediate result outgrows its
// operands.
func overflowingArith(e ast.Expr) *ast.BinaryExpr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	if b, ok := e.(*ast.BinaryExpr); ok && (b.Op == token.MUL || b.Op == token.SHL) {
		return b
	}
	return nil
}
