package analyzers

import (
	"go/ast"
	"go/parser"
	"go/types"
	"strings"
	"testing"
)

// typecheckSrc type-checks one inline source file against real stdlib
// export data, for engine tests that are easier to read next to their
// assertions than as testdata files.
func typecheckSrc(t *testing.T, src string) *Package {
	t.Helper()
	fset, imp, err := ExportImporter(".", []string{"sync", "time"})
	if err != nil {
		t.Fatalf("building importer: %v", err)
	}
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", "amd64")}
	tpkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-checking: %v", err)
	}
	return &Package{ImportPath: "p", Fset: fset, Files: []*ast.File{f}, Types: tpkg, TypesInfo: info}
}

func enginePass(pkg *Package) *Pass {
	return &Pass{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, TypesInfo: pkg.TypesInfo}
}

func findNode(t *testing.T, e *lockEngine, name string) *funcNode {
	t.Helper()
	for _, n := range e.nodes {
		if n.name == name {
			return n
		}
	}
	t.Fatalf("no function node named %q", name)
	return nil
}

// entryLocks renders a node's converged entry state as lock-class IDs.
func entryLocks(e *lockEngine, n *funcNode) []string {
	return e.classSet(n.entry)
}

// TestEngineEntryStates drives the interprocedural entry-state fixpoint
// through its hard cases: self-recursion, mutual recursion, method values,
// and goroutine entry points.
func TestEngineEntryStates(t *testing.T) {
	const src = `package p

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

// Self-recursion: every call path into rec holds s.mu, including rec's own
// recursive call, so the fixpoint must converge to {(S).mu}.
func (s *S) RecEntry() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rec(3)
}

func (s *S) rec(d int) {
	if d == 0 {
		return
	}
	s.n++
	s.rec(d - 1)
}

// Mutual recursion: a and b only ever reach each other from MutualEntry's
// locked region; optimistic iteration must not get stuck at "unknown".
func (s *S) MutualEntry() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.a(0)
}

func (s *S) a(d int) {
	if d > 3 {
		return
	}
	s.n++
	s.b(d + 1)
}

func (s *S) b(d int) {
	s.a(d + 1)
}

// taken is referenced as a method value, so it can run from anywhere:
// its entry state must be pinned to nothing-held even though its only
// direct caller holds the lock.
func (s *S) TakenEntry() func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.taken()
	return s.taken
}

func (s *S) taken() {
	s.n++
}

// spawned runs on its own goroutine: the spawning caller's locks are not
// held there.
func (s *S) SpawnEntry() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go s.spawned()
}

func (s *S) spawned() {
	s.n++
}
`
	pkg := typecheckSrc(t, src)
	eng := newLockEngine(enginePass(pkg))

	cases := []struct {
		fn   string
		want []string
	}{
		{"(*S).rec", []string{"(S).mu"}},
		{"(*S).a", []string{"(S).mu"}},
		{"(*S).b", []string{"(S).mu"}},
		{"(*S).taken", nil},
		{"(*S).spawned", nil},
	}
	for _, tc := range cases {
		got := entryLocks(eng, findNode(t, eng, tc.fn))
		if strings.Join(got, ",") != strings.Join(tc.want, ",") {
			t.Errorf("%s entry = %v, want %v", tc.fn, got, tc.want)
		}
	}
}

// TestEngineDeferredUnlockInLoop checks the two-pass loop walk: a deferred
// unlock inside a loop keeps the lock held into the next iteration, so the
// re-acquisition must surface as a self-deadlock.
func TestEngineDeferredUnlockInLoop(t *testing.T) {
	const src = `package p

import "sync"

type S struct{ mu sync.Mutex }

func (s *S) loopDefer() {
	for i := 0; i < 4; i++ {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
}

// loopPaired releases within each iteration; no finding.
func (s *S) loopPaired() {
	for i := 0; i < 4; i++ {
		s.mu.Lock()
		s.mu.Unlock()
	}
}
`
	pkg := typecheckSrc(t, src)
	diags := Run(pkg, []*Analyzer{LockOrder})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "self-deadlock") {
		t.Errorf("unexpected message: %s", diags[0].Message)
	}
	if !strings.Contains(diags[0].Message, "loopDefer") {
		t.Errorf("diagnostic should name loopDefer: %s", diags[0].Message)
	}
}

// TestEngineTransitiveSummaries checks the upward fixpoint: an acquisition
// three helpers deep appears in the top caller's transitive summary with
// the full witnessing call chain.
func TestEngineTransitiveSummaries(t *testing.T) {
	const src = `package p

import "sync"

type S struct {
	mu sync.Mutex
	n  int
	ch chan int
}

func (s *S) h1() { s.h2() }
func (s *S) h2() { s.h3() }
func (s *S) h3() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

func (s *S) spawnAndClose() {
	go s.h1()
	go s.h1()
	close(s.ch)
}
`
	pkg := typecheckSrc(t, src)
	eng := newLockEngine(enginePass(pkg))

	h1 := eng.facts[findNode(t, eng, "(*S).h1")].summary
	wit, ok := h1.Transitive["(S).mu"]
	if !ok {
		t.Fatalf("h1 transitive summary misses (S).mu: %v", h1.Transitive)
	}
	if got := strings.Join(wit.path, " -> "); got != "(*S).h2 -> (*S).h3" {
		t.Errorf("witness path = %q, want %q", got, "(*S).h2 -> (*S).h3")
	}
	if len(h1.Acquires) != 0 {
		t.Errorf("h1 acquires directly: %v", h1.Acquires)
	}
	h3 := eng.facts[findNode(t, eng, "(*S).h3")].summary
	if _, ok := h3.Acquires["(S).mu"]; !ok {
		t.Errorf("h3 direct acquires missing (S).mu: %v", h3.Acquires)
	}
	if _, ok := h3.Releases["(S).mu"]; !ok {
		t.Errorf("h3 releases missing (S).mu: %v", h3.Releases)
	}
	if got := h3.Writes["(S).n"]; strings.Join(got, ",") != "(S).mu" {
		t.Errorf("h3 writes (S).n under %v, want [(S).mu]", got)
	}

	sac := eng.facts[findNode(t, eng, "(*S).spawnAndClose")].summary
	if sac.Spawns != 2 {
		t.Errorf("spawnAndClose Spawns = %d, want 2", sac.Spawns)
	}
	if sac.Closes != 1 {
		t.Errorf("spawnAndClose Closes = %d, want 1", sac.Closes)
	}
}

// TestEngineFuncLitEntries checks literal entry states: a literal passed
// synchronously to an in-package call inherits the creation-site locks; a
// deferred or go literal starts with nothing held.
func TestEngineFuncLitEntries(t *testing.T) {
	const src = `package p

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

func (s *S) withRetry(op func()) {
	for i := 0; i < 3; i++ {
		op()
	}
}

func (s *S) Update() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.withRetry(func() { s.n++ })
	go func() { s.helperUnlocked() }()
}

func (s *S) helperUnlocked() {}
`
	pkg := typecheckSrc(t, src)
	eng := newLockEngine(enginePass(pkg))

	inherited := findNode(t, eng, "(*S).Update.func1")
	if got := entryLocks(eng, inherited); strings.Join(got, ",") != "(S).mu" {
		t.Errorf("synchronous callback entry = %v, want [(S).mu]", got)
	}
	spawned := findNode(t, eng, "(*S).Update.func2")
	if got := entryLocks(eng, spawned); len(got) != 0 {
		t.Errorf("go-literal entry = %v, want empty", got)
	}
}
