package analyzers

// This file is the suite's interprocedural substrate, layered on the
// intra-procedural taint engine of dataflow.go: a package-level call graph
// plus per-function summaries (locks acquired and released, fields read and
// written under which locks, goroutines spawned, channels closed) so the
// concurrency analyzers (lockorder, guardedby) see through helper calls —
// the "Called with s.mu held" comments on helpers like srm.syncStore become
// checked facts instead of trusted prose.
//
// Two fixpoints run over the graph:
//
//   - entry states (downward, intersection): for every unexported function
//     reached only from inside the package, the locks that EVERY caller
//     holds at EVERY callsite, mapped through the receiver (x.helper() with
//     x.mu held means the helper's receiver holds mu). Exported functions,
//     functions taken as values (method values, callbacks), and goroutine
//     entry points start with nothing held. Iteration starts optimistic
//     (unresolved callers contribute nothing) and converges on
//     mutually-recursive helpers because entries only shrink once set.
//
//   - transitive acquisitions (upward, union): every class-level lock a
//     function can acquire through any chain of in-package calls, with a
//     witnessing call path for diagnostics.
//
// The lock-state walker underneath is flow-sensitive per statement:
// branches are walked separately and merged by intersection (a lock held on
// only one arm is not held after the merge), branches that terminate
// (return, panic, os.Exit) are excluded from the merge, a deferred Unlock
// keeps the lock held to function exit, and loop bodies are walked twice so
// state that survives one iteration — a deferred unlock inside a loop —
// meets its own re-acquisition. Function literals are never inlined: they
// run at an unknown time, so each is analyzed as its own function with
// nothing held at entry.
//
// sync.Cond needs no special casing: Wait atomically releases and
// re-acquires its locker, so "held across the Wait" is exactly what the
// walker models by not treating Wait as a lock operation.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
)

// lockMode distinguishes exclusive from shared acquisition.
type lockMode uint8

const (
	// modeWrite is Lock/TryLock — exclusive.
	modeWrite lockMode = iota
	// modeRead is RLock/TryRLock — shared; writes under it are a finding.
	modeRead
)

// heldKey names one mutex instance as precisely as the analysis can see it:
// the root object the lock was reached through (a receiver, a local, or the
// mutex variable itself) plus the mutex field within it.
type heldKey struct {
	base  types.Object // root identifier's object; the mutex var when field == nil
	field *types.Var   // mutex field; nil for a bare mutex variable
}

// lockSet is the set of locks held at a program point, with their modes.
type lockSet map[heldKey]lockMode

func (s lockSet) clone() lockSet {
	out := make(lockSet, len(s))
	for k, m := range s {
		out[k] = m
	}
	return out
}

// intersectLocks keeps locks held on both paths; a lock shared on either
// path merges to shared (only the weaker guarantee survives).
func intersectLocks(a, b lockSet) lockSet {
	out := make(lockSet)
	for k, ma := range a {
		if mb, ok := b[k]; ok {
			m := ma
			if mb == modeRead {
				m = modeRead
			}
			out[k] = m
		}
	}
	return out
}

func equalLocks(a, b lockSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k, m := range a {
		if mb, ok := b[k]; !ok || mb != m {
			return false
		}
	}
	return true
}

// funcNode is one analyzed body: a declared function or method, or a
// function literal (which gets its own node and an empty entry state).
type funcNode struct {
	name string
	fn   *types.Func // nil for function literals
	decl *ast.FuncDecl
	lit  *ast.FuncLit
	body *ast.BlockStmt
	recv *types.Var // named receiver variable, or nil

	entry    lockSet // locks held at entry after the fixpoint
	entryTop bool    // true while the entry state is still unresolved (⊤)
}

// acquireEvent is one lock acquisition observed in a body.
type acquireEvent struct {
	pos  token.Pos
	key  heldKey
	mode lockMode
	held lockSet // locks already held at the acquisition
}

// callEvent is one in-package callsite with the caller's lock state.
type callEvent struct {
	call   *ast.CallExpr
	callee *funcNode
	held   lockSet
	spawn  bool // go statement: the callee runs with nothing held
}

// accessEvent is one struct-field selector with the lock state it ran under.
type accessEvent struct {
	sel   *ast.SelectorExpr
	field *types.Var
	held  lockSet
	write bool
}

// acqWitness records where a transitively-reachable acquisition happens and
// the call chain that reaches it (empty for direct acquisitions).
type acqWitness struct {
	pos  token.Pos
	path []string
}

// funcSummary is the per-function digest of the ISSUE's engine contract:
// locks acquired/released, fields read/written under which locks,
// goroutines spawned, channels closed.
type funcSummary struct {
	Name       string
	Acquires   map[string]token.Pos  // class-level lock → first direct acquisition
	Releases   map[string]token.Pos  // class-level lock → first release
	Transitive map[string]acqWitness // acquires reachable through in-package calls
	Spawns     int                   // go statements in the body
	Closes     int                   // close(ch) calls in the body
	Reads      map[string][]string   // struct field → class-level locks held at some read
	Writes     map[string][]string   // struct field → class-level locks held at some write
}

// funcFacts bundles a node with everything one converged walk observed.
type funcFacts struct {
	node      *funcNode
	summary   *funcSummary
	acquires  []acquireEvent
	callsites []callEvent
	accesses  []accessEvent
}

// lockEngine ties the call graph, entry states, and summaries together for
// one package.
type lockEngine struct {
	pass     *Pass
	nodes    []*funcNode
	byFn     map[*types.Func]*funcNode
	owner    map[*types.Var]string // struct field → owning type name
	valueRef map[*funcNode]bool    // taken as a function/method value somewhere
	writes   map[ast.Expr]bool     // selector expressions in write position
	fresh    map[types.Object]bool // locals only ever assigned fresh composites
	facts    map[*funcNode]*funcFacts
}

// newLockEngine builds the engine and runs both fixpoints; facts are ready
// for the analyzers afterwards.
func newLockEngine(pass *Pass) *lockEngine {
	e := &lockEngine{
		pass:     pass,
		byFn:     make(map[*types.Func]*funcNode),
		owner:    make(map[*types.Var]string),
		valueRef: make(map[*funcNode]bool),
		writes:   make(map[ast.Expr]bool),
		fresh:    make(map[types.Object]bool),
		facts:    make(map[*funcNode]*funcFacts),
	}
	e.collectNodes()
	e.collectOwners()
	e.collectWrites()
	e.collectFresh()
	e.collectValueRefs()
	e.computeEntryStates()
	e.propagateLitEntries()
	e.collectFacts()
	e.computeTransitive()
	return e
}

// collectNodes enumerates declared functions and, separately, every function
// literal (lits are never inlined — see the file comment).
func (e *lockEngine) collectNodes() {
	for _, file := range e.pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			n := &funcNode{name: fd.Name.Name, decl: fd, body: fd.Body}
			if fn, ok := e.pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				n.fn = fn
				e.byFn[fn] = n
			}
			if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
				if v, ok := e.pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]].(*types.Var); ok {
					n.recv = v
				}
				if n.fn != nil {
					n.name = recvTypeName(n.fn) + "." + fd.Name.Name
				}
			}
			e.nodes = append(e.nodes, n)
			litN := 0
			ast.Inspect(fd.Body, func(x ast.Node) bool {
				if lit, ok := x.(*ast.FuncLit); ok {
					litN++
					e.nodes = append(e.nodes, &funcNode{
						name: n.name + ".func" + strconv.Itoa(litN),
						lit:  lit,
						body: lit.Body,
					})
				}
				return true
			})
		}
	}
}

// recvTypeName renders a method's receiver type ("(*SRM)" or "(Cache)").
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "(?)"
	}
	t := sig.Recv().Type()
	star := ""
	if p, ok := t.(*types.Pointer); ok {
		t, star = p.Elem(), "*"
	}
	if named, ok := t.(*types.Named); ok {
		return "(" + star + named.Obj().Name() + ")"
	}
	return "(?)"
}

// collectOwners indexes every struct field in the package to its owning type
// name, so lock and field identities render as "(*SRM).mu".
func (e *lockEngine) collectOwners() {
	scope := e.pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			e.owner[st.Field(i)] = tn.Name()
		}
	}
}

// classID renders a lock instance-blind: "(*SRM).mu" for fields, "var mu"
// for package-level or local mutex variables.
func (e *lockEngine) classID(k heldKey) string {
	if k.field == nil {
		return "var " + k.base.Name()
	}
	if o, ok := e.owner[k.field]; ok {
		return "(" + o + ")." + k.field.Name()
	}
	return "(?)." + k.field.Name()
}

// classSet renders a held set as sorted class IDs.
func (e *lockEngine) classSet(held lockSet) []string {
	out := make([]string, 0, len(held))
	for k := range held {
		out = append(out, e.classID(k))
	}
	sort.Strings(out)
	return out
}

// fieldID renders a struct field ("(Store).files").
func (e *lockEngine) fieldID(f *types.Var) string {
	if o, ok := e.owner[f]; ok {
		return "(" + o + ")." + f.Name()
	}
	return f.Name()
}

// collectWrites marks every selector expression in write position:
// assignment targets (through index/slice/star), ++/--, delete(m, k), and
// address-taken operands (conservatively a write — the pointer escapes).
func (e *lockEngine) collectWrites() {
	mark := func(l ast.Expr) {
		for {
			switch x := l.(type) {
			case *ast.ParenExpr:
				l = x.X
			case *ast.IndexExpr:
				l = x.X
			case *ast.SliceExpr:
				l = x.X
			case *ast.StarExpr:
				l = x.X
			case *ast.SelectorExpr:
				e.writes[x] = true
				return
			default:
				return
			}
		}
	}
	for _, file := range e.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for _, l := range x.Lhs {
					mark(l)
				}
			case *ast.IncDecStmt:
				mark(x.X)
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					mark(x.X)
				}
			case *ast.RangeStmt:
				mark(x.Key)
				mark(x.Value)
			case *ast.CallExpr:
				if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "delete" && len(x.Args) == 2 {
					if _, isBuiltin := e.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
						mark(x.Args[0])
					}
				}
			}
			return true
		})
	}
}

// collectFresh finds locals every assignment of which is a freshly built
// composite (&T{...}, T{...}, new(T)): accesses through them are
// constructor-time initialization no lock can or need guard.
func (e *lockEngine) collectFresh() {
	freshCand := make(map[types.Object]bool)
	notFresh := make(map[types.Object]bool)
	isFresh := func(r ast.Expr) bool {
		r = unparen(r)
		if u, ok := r.(*ast.UnaryExpr); ok && u.Op == token.AND {
			r = unparen(u.X)
		}
		if _, ok := r.(*ast.CompositeLit); ok {
			return true
		}
		if call, ok := r.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "new" {
				_, isBuiltin := e.pass.TypesInfo.Uses[id].(*types.Builtin)
				return isBuiltin
			}
		}
		return false
	}
	for _, file := range e.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, l := range as.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := e.pass.TypesInfo.ObjectOf(id)
				if obj == nil {
					continue
				}
				if len(as.Lhs) == len(as.Rhs) && isFresh(as.Rhs[i]) {
					freshCand[obj] = true
				} else {
					notFresh[obj] = true
				}
			}
			return true
		})
	}
	for obj := range freshCand {
		if !notFresh[obj] {
			e.fresh[obj] = true
		}
	}
}

// collectValueRefs finds functions referenced outside call position (method
// values, callbacks): they can run from anywhere, so their entry state is
// pinned to "nothing held".
func (e *lockEngine) collectValueRefs() {
	calleeIdents := make(map[*ast.Ident]bool)
	for _, file := range e.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch f := unparen(call.Fun).(type) {
			case *ast.Ident:
				calleeIdents[f] = true
			case *ast.SelectorExpr:
				calleeIdents[f.Sel] = true
			}
			return true
		})
	}
	for _, file := range e.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || calleeIdents[id] {
				return true
			}
			fn, ok := e.pass.TypesInfo.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			if node, ok := e.byFn[fn]; ok {
				e.valueRef[node] = true
			}
			return true
		})
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// staticCallee resolves a call to the *types.Func it statically names, or
// nil for dynamic calls (function values, interface methods).
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

func (e *lockEngine) calleeNode(call *ast.CallExpr) *funcNode {
	fn := staticCallee(e.pass.TypesInfo, call)
	if fn == nil {
		return nil
	}
	return e.byFn[fn]
}

// mapToCallee translates the caller's held set into the callee's frame:
// package-level locks survive unchanged; locks reached through the call's
// receiver (x.helper() with x.mu held) move onto the callee's receiver.
func (e *lockEngine) mapToCallee(call *ast.CallExpr, held lockSet, callee *funcNode) lockSet {
	out := make(lockSet)
	pkgScope := e.pass.Pkg.Scope()
	for k, m := range held {
		if k.base.Parent() == pkgScope {
			out[k] = m
		}
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || callee.recv == nil {
		return out
	}
	id, ok := unparen(sel.X).(*ast.Ident)
	if !ok {
		return out
	}
	xobj := e.pass.TypesInfo.ObjectOf(id)
	if xobj == nil {
		return out
	}
	for k, m := range held {
		if k.base == xobj && k.field != nil {
			out[heldKey{base: callee.recv, field: k.field}] = m
		}
	}
	return out
}

// maxSummaryIters bounds both interprocedural fixpoints. Entry states only
// shrink once set and transitive sets only grow within a finite lock
// universe, so real packages converge in a handful of rounds; the bound is
// a defensive backstop like maxTaintIters.
const maxSummaryIters = 16

// computeEntryStates runs the downward intersection fixpoint described in
// the file comment.
func (e *lockEngine) computeEntryStates() {
	cand := make(map[*funcNode]bool)
	for _, n := range e.nodes {
		eligible := n.decl != nil && n.fn != nil && !n.fn.Exported() &&
			!e.valueRef[n] && n.decl.Name.Name != "init" && n.decl.Name.Name != "main"
		if eligible {
			cand[n] = true
			n.entryTop = true
		} else {
			n.entry = make(lockSet)
		}
	}
	for iter := 0; iter < maxSummaryIters; iter++ {
		contrib := make(map[*funcNode][]lockSet)
		sawTop := make(map[*funcNode]bool)
		for _, caller := range e.nodes {
			callerTop := caller.entryTop
			e.walk(caller, walkHooks{
				call: func(call *ast.CallExpr, held lockSet) {
					callee := e.calleeNode(call)
					if callee == nil || !cand[callee] {
						return
					}
					if callerTop {
						sawTop[callee] = true
						return
					}
					contrib[callee] = append(contrib[callee], e.mapToCallee(call, held, callee))
				},
				goCall: func(call *ast.CallExpr, held lockSet) {
					callee := e.calleeNode(call)
					if callee == nil || !cand[callee] {
						return
					}
					// A spawned callee runs concurrently: nothing is held for it.
					contrib[callee] = append(contrib[callee], make(lockSet))
				},
			})
		}
		changed := false
		for n := range cand {
			sets := contrib[n]
			if len(sets) == 0 {
				// No resolved callers. If unresolved ones exist, stay ⊤ for now;
				// otherwise the function is unreached from in-package code.
				if !sawTop[n] && n.entryTop {
					n.entryTop = false
					n.entry = make(lockSet)
					changed = true
				}
				continue
			}
			next := sets[0].clone()
			for _, s := range sets[1:] {
				next = intersectLocks(next, s)
			}
			if n.entryTop || !equalLocks(n.entry, next) {
				n.entryTop = false
				n.entry = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Anything still ⊤ sits on an unreachable cycle; analyze it standalone.
	for n := range cand {
		if n.entryTop {
			n.entryTop = false
			n.entry = make(lockSet)
		}
	}
}

// propagateLitEntries refines the entry state of function literals that run
// synchronously where they are created: a literal passed directly as an
// argument to an in-package call (the retryStore(func() error {...}) shape)
// inherits the locks held at the callsite. Literals spawned with go,
// deferred, stored in variables, returned, or handed to other packages
// (time.AfterFunc) keep the empty entry — they run at an unknown time.
// Nodes are in source order (outer literals before the ones nested inside
// them), so an inherited entry is set before the literal itself is walked.
func (e *lockEngine) propagateLitEntries() {
	inherit := make(map[*ast.FuncLit]bool)
	for _, file := range e.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || e.calleeNode(call) == nil {
				return true
			}
			for _, a := range call.Args {
				if lit, ok := unparen(a).(*ast.FuncLit); ok {
					inherit[lit] = true
				}
			}
			return true
		})
	}
	byLit := make(map[*ast.FuncLit]*funcNode)
	for _, n := range e.nodes {
		if n.lit != nil {
			byLit[n.lit] = n
		}
	}
	for _, n := range e.nodes {
		e.walk(n, walkHooks{
			funcLit: func(lit *ast.FuncLit, held lockSet) {
				if ln := byLit[lit]; ln != nil && inherit[lit] {
					ln.entry = held.clone()
				}
			},
		})
	}
}

// collectFacts performs the single converged walk per function, recording
// acquisitions, callsites, field accesses, and the summary counters.
func (e *lockEngine) collectFacts() {
	for _, n := range e.nodes {
		f := &funcFacts{
			node: n,
			summary: &funcSummary{
				Name:       n.name,
				Acquires:   make(map[string]token.Pos),
				Releases:   make(map[string]token.Pos),
				Transitive: make(map[string]acqWitness),
				Reads:      make(map[string][]string),
				Writes:     make(map[string][]string),
			},
		}
		e.walk(n, walkHooks{
			acquire: func(pos token.Pos, k heldKey, mode lockMode, held lockSet) {
				f.acquires = append(f.acquires, acquireEvent{pos: pos, key: k, mode: mode, held: held.clone()})
				id := e.classID(k)
				if _, ok := f.summary.Acquires[id]; !ok {
					f.summary.Acquires[id] = pos
				}
				if _, ok := f.summary.Transitive[id]; !ok {
					f.summary.Transitive[id] = acqWitness{pos: pos}
				}
			},
			release: func(pos token.Pos, k heldKey) {
				id := e.classID(k)
				if _, ok := f.summary.Releases[id]; !ok {
					f.summary.Releases[id] = pos
				}
			},
			call: func(call *ast.CallExpr, held lockSet) {
				if callee := e.calleeNode(call); callee != nil {
					f.callsites = append(f.callsites, callEvent{call: call, callee: callee, held: held.clone()})
				}
			},
			goCall: func(call *ast.CallExpr, held lockSet) {
				f.summary.Spawns++
				if callee := e.calleeNode(call); callee != nil {
					f.callsites = append(f.callsites, callEvent{call: call, callee: callee, held: held.clone(), spawn: true})
				}
			},
			closeCh: func(call *ast.CallExpr, held lockSet) {
				f.summary.Closes++
			},
			access: func(sel *ast.SelectorExpr, held lockSet, write bool) {
				s, ok := e.pass.TypesInfo.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					return
				}
				fv, ok := s.Obj().(*types.Var)
				if !ok {
					return
				}
				f.accesses = append(f.accesses, accessEvent{sel: sel, field: fv, held: held.clone(), write: write})
				if _, owned := e.owner[fv]; owned {
					if write {
						f.summary.Writes[e.fieldID(fv)] = e.classSet(held)
					} else if _, ok := f.summary.Reads[e.fieldID(fv)]; !ok {
						f.summary.Reads[e.fieldID(fv)] = e.classSet(held)
					}
				}
			},
		})
		e.facts[n] = f
	}
}

// computeTransitive runs the upward union fixpoint: each function's
// transitive acquisitions absorb its in-package callees', with the call
// chain recorded for diagnostics. First witness wins, which both keeps
// messages stable and guarantees termination.
func (e *lockEngine) computeTransitive() {
	for iter := 0; iter < maxSummaryIters; iter++ {
		changed := false
		for _, n := range e.nodes {
			s := e.facts[n].summary
			for _, cs := range e.facts[n].callsites {
				for lock, w := range e.facts[cs.callee].summary.Transitive {
					if _, ok := s.Transitive[lock]; ok {
						continue
					}
					path := append([]string{cs.callee.name}, w.path...)
					s.Transitive[lock] = acqWitness{pos: cs.call.Pos(), path: path}
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
}

// walkHooks are the walker's observation points; any may be nil.
type walkHooks struct {
	acquire func(pos token.Pos, k heldKey, mode lockMode, held lockSet)
	release func(pos token.Pos, k heldKey)
	call    func(call *ast.CallExpr, held lockSet)
	goCall  func(call *ast.CallExpr, held lockSet)
	closeCh func(call *ast.CallExpr, held lockSet)
	access  func(sel *ast.SelectorExpr, held lockSet, write bool)
	funcLit func(lit *ast.FuncLit, held lockSet)
}

// walk runs the flow-sensitive lock-state walker over n's body, starting
// from its converged entry state.
func (e *lockEngine) walk(n *funcNode, hooks walkHooks) {
	w := &stmtWalker{engine: e, node: n, hooks: hooks}
	entry := make(lockSet)
	if n.entry != nil && !n.entryTop {
		entry = n.entry.clone()
	}
	w.stmts(n.body.List, entry)
}

type stmtWalker struct {
	engine *lockEngine
	node   *funcNode
	hooks  walkHooks
}

// stmts threads the lock state through a statement list; the bool reports
// whether the straight-line path terminated (return/panic/branch).
func (w *stmtWalker) stmts(list []ast.Stmt, held lockSet) (lockSet, bool) {
	for _, s := range list {
		var term bool
		held, term = w.stmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (w *stmtWalker) stmt(s ast.Stmt, held lockSet) (lockSet, bool) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if k, mode, acquire, ok := w.lockOp(call); ok {
				if acquire {
					if w.hooks.acquire != nil {
						w.hooks.acquire(call.Pos(), k, mode, held)
					}
					held[k] = mode
				} else {
					if w.hooks.release != nil {
						w.hooks.release(call.Pos(), k)
					}
					delete(held, k)
				}
				return held, false
			}
		}
		w.expr(st.X, held)
		return held, isTerminalCall(w.engine.pass, st.X)
	case *ast.DeferStmt:
		if _, _, acquire, ok := w.lockOp(st.Call); ok && !acquire {
			// defer x.mu.Unlock(): the lock stays held until function exit.
			return held, false
		}
		w.expr(st.Call.Fun, held)
		for _, a := range st.Call.Args {
			w.expr(a, held)
		}
		return held, false
	case *ast.GoStmt:
		if w.hooks.goCall != nil {
			w.hooks.goCall(st.Call, held)
		}
		w.expr(st.Call.Fun, held)
		for _, a := range st.Call.Args {
			w.expr(a, held)
		}
		return held, false
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			w.expr(r, held)
		}
		for _, l := range st.Lhs {
			w.expr(l, held)
		}
		return held, false
	case *ast.IncDecStmt:
		w.expr(st.X, held)
		return held, false
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, held)
					}
				}
			}
		}
		return held, false
	case *ast.SendStmt:
		w.expr(st.Chan, held)
		w.expr(st.Value, held)
		return held, false
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.expr(r, held)
		}
		return held, true
	case *ast.BranchStmt:
		// break/continue/goto leave the straight-line path; excluding them
		// from merges under-approximates loop exits, which is the safe
		// direction for "is the lock held here".
		return held, true
	case *ast.BlockStmt:
		return w.stmts(st.List, held)
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt, held)
	case *ast.IfStmt:
		if st.Init != nil {
			held, _ = w.stmt(st.Init, held)
		}
		w.expr(st.Cond, held)
		thenHeld, thenTerm := w.stmts(st.Body.List, held.clone())
		elseHeld, elseTerm := held.clone(), false
		if st.Else != nil {
			elseHeld, elseTerm = w.stmt(st.Else, elseHeld)
		}
		switch {
		case thenTerm && elseTerm:
			return held, st.Else != nil
		case thenTerm:
			return elseHeld, false
		case elseTerm:
			return thenHeld, false
		default:
			return intersectLocks(thenHeld, elseHeld), false
		}
	case *ast.ForStmt:
		if st.Init != nil {
			held, _ = w.stmt(st.Init, held)
		}
		if st.Cond != nil {
			w.expr(st.Cond, held)
		}
		return w.loopBody(st.Body, st.Post, held), false
	case *ast.RangeStmt:
		w.expr(st.X, held)
		w.expr(st.Key, held)
		w.expr(st.Value, held)
		return w.loopBody(st.Body, nil, held), false
	case *ast.SwitchStmt:
		if st.Init != nil {
			held, _ = w.stmt(st.Init, held)
		}
		w.expr(st.Tag, held)
		return w.caseBodies(st.Body, held)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			held, _ = w.stmt(st.Init, held)
		}
		if st.Assign != nil {
			held, _ = w.stmt(st.Assign, held)
		}
		return w.caseBodies(st.Body, held)
	case *ast.SelectStmt:
		return w.caseBodies(st.Body, held)
	}
	return held, false
}

// loopBody walks a loop body twice: the second pass starts from the state
// the first left behind, so a lock surviving an iteration (deferred unlock
// inside the loop) meets its own re-acquisition. The result merges with the
// pre-loop state because the body may run zero times.
func (w *stmtWalker) loopBody(body *ast.BlockStmt, post ast.Stmt, held lockSet) lockSet {
	h1, t1 := w.stmts(body.List, held.clone())
	if t1 {
		return held
	}
	if post != nil {
		h1, _ = w.stmt(post, h1)
	}
	h2, t2 := w.stmts(body.List, h1.clone())
	if !t2 && post != nil {
		w.stmt(post, h2)
	}
	return intersectLocks(held, h1)
}

// caseBodies walks each case of a switch/select from the same pre-state and
// intersects the survivors; a missing default keeps the pre-state as one of
// the merged paths.
func (w *stmtWalker) caseBodies(body *ast.BlockStmt, held lockSet) (lockSet, bool) {
	var results []lockSet
	hasDefault := false
	allTerm := true
	sawCase := false
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, x := range cc.List {
				w.expr(x, held)
			}
			if cc.List == nil {
				hasDefault = true
			}
			stmts = cc.Body
		case *ast.CommClause:
			if cc.Comm != nil {
				held, _ = w.stmt(cc.Comm, held.clone())
			} else {
				hasDefault = true
			}
			stmts = cc.Body
		default:
			continue
		}
		sawCase = true
		h, term := w.stmts(stmts, held.clone())
		if !term {
			allTerm = false
			results = append(results, h)
		}
	}
	if !hasDefault {
		results = append(results, held)
		allTerm = false
	}
	if len(results) == 0 {
		return held, sawCase && allTerm
	}
	out := results[0]
	for _, r := range results[1:] {
		out = intersectLocks(out, r)
	}
	return out, false
}

// expr visits an expression with the current lock state, firing access,
// call, close, and funcLit hooks. Function literals are not descended into.
func (w *stmtWalker) expr(e ast.Expr, held lockSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if w.hooks.funcLit != nil {
				w.hooks.funcLit(x, held)
			}
			return false
		case *ast.CallExpr:
			if id, ok := unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := w.engine.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					if w.hooks.closeCh != nil {
						w.hooks.closeCh(x, held)
					}
					return true
				}
			}
			if w.hooks.call != nil {
				w.hooks.call(x, held)
			}
		case *ast.SelectorExpr:
			if w.hooks.access != nil {
				w.hooks.access(x, held, w.engine.writes[x])
			}
		}
		return true
	})
}

// lockOp recognizes x.mu.Lock(), mu.RLock(), x.Lock() (embedded mutex) and
// their Try/Unlock variants, returning the lock's instance key.
func (w *stmtWalker) lockOp(call *ast.CallExpr) (heldKey, lockMode, bool, bool) {
	none := heldKey{}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return none, 0, false, false
	}
	var mode lockMode
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "TryLock":
		mode, acquire = modeWrite, true
	case "RLock", "TryRLock":
		mode, acquire = modeRead, true
	case "Unlock":
		mode, acquire = modeWrite, false
	case "RUnlock":
		mode, acquire = modeRead, false
	default:
		return none, 0, false, false
	}
	info := w.engine.pass.TypesInfo
	switch x := unparen(sel.X).(type) {
	case *ast.SelectorExpr: // base.mu.Lock()
		s, ok := info.Selections[x]
		if !ok || s.Kind() != types.FieldVal {
			return none, 0, false, false
		}
		f, ok := s.Obj().(*types.Var)
		if !ok || !isSyncMutex(f.Type()) {
			return none, 0, false, false
		}
		base := firstIdent(x.X)
		if base == nil {
			return none, 0, false, false
		}
		obj := info.ObjectOf(base)
		if obj == nil {
			return none, 0, false, false
		}
		return heldKey{base: obj, field: f}, mode, acquire, true
	case *ast.Ident: // mu.Lock() or x.Lock() via an embedded mutex
		obj := info.ObjectOf(x)
		v, ok := obj.(*types.Var)
		if !ok {
			return none, 0, false, false
		}
		if isSyncMutex(v.Type()) {
			return heldKey{base: obj}, mode, acquire, true
		}
		if f := embeddedMutexField(v.Type()); f != nil {
			return heldKey{base: obj, field: f}, mode, acquire, true
		}
	}
	return none, 0, false, false
}

// embeddedMutexField finds an embedded sync.Mutex/RWMutex field of t (after
// pointer indirection), or nil.
func embeddedMutexField(t types.Type) *types.Var {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Embedded() && isSyncMutex(f.Type()) {
			return f
		}
	}
	return nil
}

// isTerminalCall reports expression statements that never return: panic and
// os.Exit end the path like a return does.
func isTerminalCall(pass *Pass, e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
		return isBuiltin
	}
	if pkg, name := calleePackage(pass, call); pkg == "os" && name == "Exit" {
		return true
	}
	return false
}
