package analyzers

// lockorder builds the package's lock-acquisition graph — an edge H → A
// whenever some path acquires lock class A while already holding class H —
// and reports every cycle as a potential deadlock, with the two (or more)
// witnessing call paths that realize the conflicting orders. Edges come
// both from direct acquisitions (the walker knows what is held at each
// Lock call) and from in-package calls made while holding a lock, through
// the callee's transitive-acquisition summary, so an order violation hidden
// two helpers deep is still seen. Re-acquiring the very same mutex instance
// exclusively is reported immediately: sync.Mutex is not reentrant, so that
// path deadlocks against itself without needing a second goroutine.
//
// The graph is per package: lock classes acquired by other packages'
// methods (e.g. srm holding (*SRM).mu while calling into package store,
// which takes its own locks) are outside this analyzer's horizon — that
// boundary, and the repo-wide lock hierarchy it implies, is documented in
// DESIGN.md's "Concurrency model".

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// LockOrder reports cyclic lock-acquisition orders (potential deadlocks).
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "build the lock-acquisition graph (including acquisitions reached " +
		"through in-package helper calls) and report cycles as potential " +
		"deadlocks with witnessing paths, plus exclusive re-acquisition of a " +
		"mutex already held",
	Run: runLockOrder,
}

// lockEdge is one observed "acquired to while holding from" order.
type lockEdge struct {
	from, to string
}

// edgeWitness describes where and how an edge was realized.
type edgeWitness struct {
	pos    token.Pos
	posStr string // file:line of the acquisition or the call reaching it
	fn     string // function whose body witnesses the edge
	path   []string
}

func (w edgeWitness) describe() string {
	if len(w.path) == 0 {
		return fmt.Sprintf("%s at %s", w.fn, w.posStr)
	}
	return fmt.Sprintf("%s at %s via %s", w.fn, w.posStr, strings.Join(w.path, " -> "))
}

func runLockOrder(pass *Pass) {
	eng := newLockEngine(pass)

	edges := make(map[lockEdge]edgeWitness)
	addEdge := func(from, to string, w edgeWitness) {
		key := lockEdge{from: from, to: to}
		if _, ok := edges[key]; !ok {
			edges[key] = w
		}
	}
	reported := make(map[string]bool) // dedup: loop bodies are walked twice

	for _, n := range eng.nodes {
		facts := eng.facts[n]
		for _, acq := range facts.acquires {
			to := eng.classID(acq.key)
			for heldKey, heldMode := range acq.held {
				from := eng.classID(heldKey)
				if heldKey == acq.key {
					// Same instance: re-acquiring exclusively deadlocks on the
					// spot unless both sides are read locks.
					if acq.mode == modeWrite || heldMode == modeWrite {
						msg := fmt.Sprintf("%s acquired while already held in %s (self-deadlock: sync mutexes are not reentrant)", to, n.name)
						if !reported[msg+pass.Fset.Position(acq.pos).String()] {
							reported[msg+pass.Fset.Position(acq.pos).String()] = true
							pass.Reportf(acq.pos, "%s", msg)
						}
					}
					continue
				}
				addEdge(from, to, edgeWitness{
					pos:    acq.pos,
					posStr: pass.Fset.Position(acq.pos).String(),
					fn:     n.name,
				})
			}
		}
		for _, cs := range facts.callsites {
			if cs.spawn || len(cs.held) == 0 {
				continue
			}
			for lock, wit := range eng.facts[cs.callee].summary.Transitive {
				for heldKey := range cs.held {
					from := eng.classID(heldKey)
					if from == lock {
						continue
					}
					addEdge(from, lock, edgeWitness{
						pos:    cs.call.Pos(),
						posStr: pass.Fset.Position(cs.call.Pos()).String(),
						fn:     n.name,
						path:   append([]string{cs.callee.name}, wit.path...),
					})
				}
			}
		}
	}

	for _, cycle := range findLockCycles(edges) {
		var witnesses []string
		for i, from := range cycle {
			to := cycle[(i+1)%len(cycle)]
			w := edges[lockEdge{from: from, to: to}]
			witnesses = append(witnesses, fmt.Sprintf("path %d: %s acquires %s while holding %s (%s)",
				i+1, w.fn, to, from, w.describe()))
		}
		first := edges[lockEdge{from: cycle[0], to: cycle[1%len(cycle)]}]
		msg := fmt.Sprintf("potential deadlock: lock cycle %s -> %s; %s",
			strings.Join(cycle, " -> "), cycle[0], strings.Join(witnesses, "; "))
		if reported[msg] {
			continue
		}
		reported[msg] = true
		pass.Reportf(first.pos, "%s", msg)
	}
}

// findLockCycles returns every elementary cycle in the edge set, each
// rotated to start at its smallest vertex and deduplicated, in sorted order
// so diagnostics are deterministic.
func findLockCycles(edges map[lockEdge]edgeWitness) [][]string {
	adj := make(map[string][]string)
	for e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	for _, out := range adj {
		sort.Strings(out) //fbvet:allow hotcomplexity — canonicalizes diagnostic output; runs per vet invocation, not per admission
	}
	seen := make(map[string][]string)
	var stack []string
	onStack := make(map[string]int)
	var dfs func(v string)
	dfs = func(v string) {
		if depth, ok := onStack[v]; ok {
			cycle := canonicalCycle(stack[depth:])
			seen[strings.Join(cycle, "\x00")] = cycle
			return
		}
		onStack[v] = len(stack)
		stack = append(stack, v)
		for _, w := range adj[v] {
			dfs(w)
		}
		stack = stack[:len(stack)-1]
		delete(onStack, v)
	}
	roots := make([]string, 0, len(adj))
	for v := range adj {
		roots = append(roots, v)
	}
	sort.Strings(roots)
	for _, v := range roots {
		dfs(v)
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, seen[k])
	}
	return out
}

// canonicalCycle rotates a cycle to start at its lexically smallest vertex.
func canonicalCycle(c []string) []string {
	if len(c) == 0 {
		return nil
	}
	min := 0
	for i := range c {
		if c[i] < c[min] {
			min = i
		}
	}
	out := make([]string, 0, len(c))
	out = append(out, c[min:]...)
	out = append(out, c[:min]...)
	return out
}
