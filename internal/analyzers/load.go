package analyzers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listedPackage mirrors the subset of `go list -json` output the loader
// needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Standard   bool
	DepOnly    bool
	Export     string
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to dir) with
// `go list -export -deps`, then parses and type-checks every non-dependency
// match with go/parser + go/types. Imports — both standard library and
// module-internal — are resolved from the gc export data the go command
// produced, so the loader works offline and needs nothing beyond the
// toolchain.
//
// Test files are not loaded; `go vet` and `go test -race` cover them.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(listed))
	var targets []*listedPackage
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("fbvet: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		targets = append(targets, lp)
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("fbvet: no packages match %v", patterns)
	}

	fset := token.NewFileSet()
	imp := exportDataImporter(fset, exports)
	var pkgs []*Package
	for _, lp := range targets {
		pkg, err := typeCheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ExportImporter returns a types.Importer resolving the given packages (and
// their dependencies) from gc export data built by the go command. The
// golden-test harness uses it to type-check testdata sources against real
// standard-library packages.
func ExportImporter(dir string, pkgs []string) (*token.FileSet, types.Importer, error) {
	listed, err := goList(dir, pkgs)
	if err != nil {
		return nil, nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	fset := token.NewFileSet()
	return fset, exportDataImporter(fset, exports), nil
}

func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("fbvet: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var out []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("fbvet: decoding go list output: %v", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// exportDataImporter adapts the gc importer to read export data from the
// paths `go list -export` reported. The importer caches, so shared packages
// are loaded once per Load call.
func exportDataImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("fbvet: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func typeCheck(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("fbvet: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("fbvet: type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}
